/**
 * @file
 * Reproduces Fig. 15: latency and energy breakdowns of PointAcc,
 * Crescent, and FractalCloud executing PointNeXt segmentation on an
 * S3DIS-like scene with 33K input points.
 *
 * Paper shape: (a) point operations dominate PointAcc/Crescent
 * latency while FractalCloud shrinks them by >10x; (b) PointAcc is
 * DRAM-energy-bound, Crescent shifts energy into its large SRAM,
 * FractalCloud cuts both.
 */

#include "bench_common.h"

#include "accel/accelerator.h"
#include "nn/models.h"

namespace {

using namespace fc;

constexpr std::size_t kPoints = 33000;

void
BM_PointAccSim(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(kPoints);
    const nn::ModelConfig model = nn::pointNeXtSemSeg();
    const auto pa = accel::makePointAcc();
    for (auto _ : state)
        benchmark::DoNotOptimize(pa.run(model, cloud).totalCycles());
}
BENCHMARK(BM_PointAccSim)->Unit(benchmark::kMillisecond);

void
printTables()
{
    const data::PointCloud &cloud = fcb::scene(kPoints);
    const nn::ModelConfig model = nn::pointNeXtSemSeg();

    struct Entry
    {
        const char *name;
        accel::RunReport report;
    };
    const std::vector<Entry> entries = {
        {"PointAcc", accel::makePointAcc().run(model, cloud)},
        {"Crescent", accel::makeCrescent().run(model, cloud)},
        {"FractalCloud",
         accel::makeFractalCloud(256).run(model, cloud)},
    };

    Table lat({"accelerator", "point ops (ms)", "MLPs (ms)",
               "others (ms)", "total (ms)"});
    for (const Entry &e : entries) {
        lat.addRow({e.name,
                    Table::num(sim::cyclesToMs(e.report.pointOpCycles(),
                                               e.report.freq_ghz),
                               2),
                    Table::num(sim::cyclesToMs(e.report.mlpCycles(),
                                               e.report.freq_ghz),
                               2),
                    Table::num(sim::cyclesToMs(e.report.otherCycles(),
                                               e.report.freq_ghz),
                               2),
                    Table::num(e.report.totalLatencyMs(), 2)});
    }
    fcb::emit(lat, "fig15a_latency_breakdown",
              "Fig. 15(a): latency breakdown, PointNeXt (s) @ 33K");

    Table en({"accelerator", "compute (mJ)", "SRAM (mJ)", "DRAM (mJ)",
              "static (mJ)", "total (mJ)", "DRAM traffic (MB)"});
    for (const Entry &e : entries) {
        en.addRow({e.name, Table::num(e.report.compute_pj * 1e-9, 2),
                   Table::num(e.report.sram_pj * 1e-9, 2),
                   Table::num(e.report.dram_pj * 1e-9, 2),
                   Table::num(e.report.static_pj * 1e-9, 2),
                   Table::num(e.report.totalEnergyMj(), 2),
                   Table::num(static_cast<double>(
                                  e.report.dram_bytes) /
                                  1e6,
                              1)});
    }
    fcb::emit(en, "fig15b_energy_breakdown",
              "Fig. 15(b): energy breakdown, PointNeXt (s) @ 33K");

    // Headline factors quoted in §VI-B for the 33K case.
    const double pa_ms = entries[0].report.totalLatencyMs();
    const double cres_ms = entries[1].report.totalLatencyMs();
    const double fc_ms = entries[2].report.totalLatencyMs();
    Table sum({"metric", "measured", "paper"});
    sum.addRow({"FC latency reduction vs PA+Crescent (avg)",
                Table::mult(0.5 * (pa_ms + cres_ms) / fc_ms),
                "16.2x"});
    sum.addRow({"Crescent speedup over PointAcc",
                Table::mult(pa_ms / cres_ms), "1.1x"});
    sum.addRow(
        {"Crescent energy vs PointAcc",
         Table::mult(entries[1].report.totalEnergyMj() /
                     entries[0].report.totalEnergyMj()),
         "1.17x (17% more)"});
    fcb::emit(sum, "fig15_summary", "Fig. 15 headline factors");
}

} // namespace

FC_BENCH_MAIN(printTables)
