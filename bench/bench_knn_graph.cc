/**
 * @file
 * Extension experiment (paper §VI-D, "Potential Adaptations"):
 * Fractal-accelerated dynamic-graph construction for DGCNN-style
 * networks. Builds the k-NN graph exactly (all-to-all) and block-wise
 * (search space = parent block) and reports work reduction and edge
 * recall across scales, plus the density sensitivity of recall.
 */

#include "bench_common.h"

#include "ops/knn_graph.h"
#include "partition/fractal.h"

namespace {

using namespace fc;

void
BM_ExactGraph2k(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(2048);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ops::buildKnnGraph(cloud, 8).edges.data());
}
BENCHMARK(BM_ExactGraph2k)->Unit(benchmark::kMillisecond);

void
BM_BlockGraph2k(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(2048);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 128;
    const part::PartitionResult part = p.partition(cloud, config);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ops::buildBlockKnnGraph(cloud, part.tree, 8)
                .edges.data());
}
BENCHMARK(BM_BlockGraph2k)->Unit(benchmark::kMillisecond);

void
printTables()
{
    Table t({"points", "k", "exact dist evals", "block dist evals",
             "work reduction", "edge recall"});
    for (const std::size_t n : {1024ul, 2048ul, 4096ul, 8192ul}) {
        const data::PointCloud &cloud = fcb::scene(n);
        part::FractalPartitioner p;
        part::PartitionConfig config;
        config.threshold = 128;
        const part::PartitionResult part =
            p.partition(cloud, config);
        const ops::KnnGraph exact = ops::buildKnnGraph(cloud, 8);
        const ops::KnnGraph blocked =
            ops::buildBlockKnnGraph(cloud, part.tree, 8);
        t.addRow(
            {std::to_string(n), "8",
             std::to_string(exact.stats.distance_computations),
             std::to_string(blocked.stats.distance_computations),
             Table::mult(static_cast<double>(
                             exact.stats.distance_computations) /
                         static_cast<double>(
                             blocked.stats.distance_computations)),
             Table::num(100.0 * ops::graphEdgeRecall(exact, blocked),
                        1) +
                 "%"});
    }
    fcb::emit(t, "knn_graph_extension",
              "Extension (SVI-D): Fractal-accelerated DGCNN dynamic "
              "graph construction");

    // Recall vs threshold: bigger blocks buy recall with work.
    const data::PointCloud &cloud = fcb::scene(4096);
    const ops::KnnGraph exact = ops::buildKnnGraph(cloud, 8);
    Table t2({"threshold th", "blocks", "work reduction",
              "edge recall"});
    for (const std::uint32_t th : {32u, 64u, 128u, 256u, 512u}) {
        part::FractalPartitioner p;
        part::PartitionConfig config;
        config.threshold = th;
        const part::PartitionResult part =
            p.partition(cloud, config);
        const ops::KnnGraph blocked =
            ops::buildBlockKnnGraph(cloud, part.tree, 8);
        t2.addRow(
            {std::to_string(th),
             std::to_string(part.tree.leaves().size()),
             Table::mult(static_cast<double>(
                             exact.stats.distance_computations) /
                         static_cast<double>(
                             blocked.stats.distance_computations)),
             Table::num(100.0 * ops::graphEdgeRecall(exact, blocked),
                        1) +
                 "%"});
    }
    fcb::emit(t2, "knn_graph_threshold",
              "Dynamic-graph recall vs threshold (4K scene)");
}

} // namespace

FC_BENCH_MAIN(printTables)
