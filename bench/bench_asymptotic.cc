/**
 * @file
 * Reproduces the §VI-D discussion experiments:
 *   (1) asymptotic scaling to 500K and 1M points (paper: 105.7x over
 *       GPU at 1M on PointNeXt segmentation), and
 *   (2) the imbalance study — adversarial two-cluster scenes increase
 *       latency by only ~3% versus a balanced partition because the
 *       threshold bounds the largest block.
 */

#include "bench_common.h"

#include "accel/accelerator.h"
#include "nn/models.h"
#include "partition/partitioner.h"

namespace {

using namespace fc;

void
BM_FractalPartition1M(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(1000000);
    const auto p = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = 256;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            p->partition(cloud, config).tree.leaves().size());
}
BENCHMARK(BM_FractalPartition1M)->Unit(benchmark::kMillisecond);

void
printTables()
{
    const nn::ModelConfig model = nn::pointNeXtSemSeg();

    // --- Asymptotic scaling ----------------------------------------------
    Table t({"points", "GPU (ms)", "FractalCloud (ms)",
             "speedup vs GPU", "partition share"});
    for (const std::size_t n : {289000ul, 500000ul, 1000000ul}) {
        const data::PointCloud &cloud = fcb::scene(n);
        const accel::RunReport gpu = accel::gpuRun(model, n);
        const accel::RunReport ours =
            accel::makeFractalCloud(256).run(model, cloud);
        t.addRow({std::to_string(n / 1000) + "K",
                  Table::num(gpu.totalLatencyMs(), 0),
                  Table::num(ours.totalLatencyMs(), 1),
                  Table::mult(gpu.totalLatencyMs() /
                              ours.totalLatencyMs()),
                  Table::num(100.0 *
                                 ours.latencyMs(
                                     accel::Phase::Partition) /
                                 ours.totalLatencyMs(),
                             2) +
                      "%"});
    }
    fcb::emit(t, "asymptotic_scaling",
              "Asymptotic scaling (paper: 105.7x over GPU at 1M "
              "points)");

    // --- Imbalance study ----------------------------------------------------
    const std::size_t n = 131000;
    data::SceneOptions normal;
    data::SceneOptions adversarial;
    adversarial.adversarial_two_clusters = true;
    const data::PointCloud balanced = data::makeS3disScene(n, 7, normal);
    const data::PointCloud two_clusters =
        data::makeS3disScene(n, 7, adversarial);

    const accel::RunReport r_bal =
        accel::makeFractalCloud(256).run(model, balanced);
    const accel::RunReport r_adv =
        accel::makeFractalCloud(256).run(model, two_clusters);

    const auto frac = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig pconfig;
    pconfig.threshold = 256;
    const auto p_bal = frac->partition(balanced, pconfig);
    const auto p_adv = frac->partition(two_clusters, pconfig);

    Table imb({"scene", "max leaf", "leaf cv", "latency (ms)",
               "latency increase"});
    imb.addRow({"typical indoor scene",
                std::to_string(p_bal.tree.maxLeafSize()),
                Table::num(p_bal.tree.leafSizeCv(), 3),
                Table::num(r_bal.totalLatencyMs(), 2), "-"});
    imb.addRow(
        {"adversarial two-cluster",
         std::to_string(p_adv.tree.maxLeafSize()),
         Table::num(p_adv.tree.leafSizeCv(), 3),
         Table::num(r_adv.totalLatencyMs(), 2),
         Table::num(100.0 * (r_adv.totalLatencyMs() /
                                 r_bal.totalLatencyMs() -
                             1.0),
                    1) +
             "% (paper: ~3%)"});
    fcb::emit(imb, "imbalance_study",
              "Imbalance effect in Fractal (paper SVI-D: threshold "
              "bounds the damage)");
}

} // namespace

FC_BENCH_MAIN(printTables)
