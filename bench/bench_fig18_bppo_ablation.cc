/**
 * @file
 * Reproduces Fig. 18: the BPPO ablation waterfall on PointNeXt
 * segmentation at 289K points. Optimizations are enabled in the
 * paper's order: Baseline -> +delayed aggregation (Meso) -> +RSPU
 * (reuse/skip) -> +BWS -> +BWG -> +BWI -> +BWGa.
 *
 * Paper shape: Meso adds ~1.004x; RSPU 1.37x/1.48x; BWS 2.3x/2.5x;
 * BWG 2.2x/2.2x; BWI 20x/16x; BWGa 1.5x/1.4x; cumulatively 209x
 * speedup and 192x energy saving over the baseline.
 */

#include "bench_common.h"

#include <functional>

#include "accel/accelerator.h"
#include "nn/models.h"

namespace {

using namespace fc;

constexpr std::size_t kPoints = 289000;

void
BM_AblationSimStep(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(kPoints);
    const nn::ModelConfig model = nn::pointNeXtSemSeg();
    const auto fc_model = accel::makeFractalCloud(256);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            fc_model.run(model, cloud).totalCycles());
}
BENCHMARK(BM_AblationSimStep)->Unit(benchmark::kMillisecond);

void
printTables()
{
    const nn::ModelConfig model = nn::pointNeXtSemSeg();
    const data::PointCloud &cloud = fcb::scene(kPoints);

    // Start from our hardware with everything off (the "Baseline" of
    // Fig. 18: FractalCloud without optimizations).
    accel::Policy p;
    p.partition_method = part::Method::None;
    p.partition_threshold = 256;
    p.delayed_aggregation = false;
    p.block_parallel = false;
    p.block_sampling = false;
    p.block_grouping = false;
    p.block_interpolation = false;
    p.block_gathering = false;
    p.window_check = false;
    p.coord_reuse = false;

    struct Step
    {
        const char *name;
        std::function<void(accel::Policy &)> enable;
        const char *paper;
    };
    const std::vector<Step> steps = {
        {"Baseline", [](accel::Policy &) {}, "1x"},
        {"Baseline (Meso)",
         [](accel::Policy &q) { q.delayed_aggregation = true; },
         "1.004x"},
        {"+RSPU (reuse & skip)",
         [](accel::Policy &q) {
             q.window_check = true;
             q.coord_reuse = true;
         },
         "1.37x / 1.48x"},
        {"+BWS (block sampling)",
         [](accel::Policy &q) {
             q.partition_method = part::Method::Fractal;
             q.block_parallel = true;
             q.block_sampling = true;
         },
         "2.3x / 2.5x"},
        {"+BWG (block grouping)",
         [](accel::Policy &q) { q.block_grouping = true; },
         "2.2x / 2.2x"},
        {"+BWI (block interpolation)",
         [](accel::Policy &q) { q.block_interpolation = true; },
         "20x / 16x"},
        {"+BWGa (block gathering)",
         [](accel::Policy &q) { q.block_gathering = true; },
         "1.5x / 1.4x"},
    };

    Table t({"configuration", "latency (ms)", "energy (mJ)",
             "step speedup", "step energy saving",
             "paper step (lat/en)", "cumulative speedup"});
    double prev_ms = 0.0, prev_mj = 0.0, base_ms = 0.0;
    for (const Step &step : steps) {
        step.enable(p);
        const accel::RunReport r =
            accel::makeFractalCloudWithPolicy(p).run(model, cloud);
        const double ms = r.totalLatencyMs();
        const double mj = r.totalEnergyMj();
        if (base_ms == 0.0) {
            base_ms = ms;
            prev_ms = ms;
            prev_mj = mj;
        }
        t.addRow({step.name, Table::num(ms, 1), Table::num(mj, 1),
                  Table::mult(prev_ms / ms),
                  Table::mult(prev_mj / mj), step.paper,
                  Table::mult(base_ms / ms)});
        prev_ms = ms;
        prev_mj = mj;
    }
    t.addRow({"paper cumulative", "-", "-", "-", "-",
              "209x / 192x", "-"});
    fcb::emit(t, "fig18_bppo_ablation",
              "Fig. 18: BPPO ablation waterfall, PointNeXt (s) @ "
              "289K");
}

} // namespace

FC_BENCH_MAIN(printTables)
