/**
 * @file
 * Reproduces Fig. 1: memory access (MB) and inference latency (ms) of
 * the original baseline structure (global point operations, PointAcc-
 * style) versus FractalCloud, across 1K-289K input points, for
 * PointNeXt segmentation on S3DIS-like scenes.
 *
 * Paper shape: baseline memory/latency grow ~O(n^2) (10^0 -> 10^4 MB,
 * 10^0 -> 10^4 ms); FractalCloud stays orders of magnitude below with
 * near-linear growth.
 */

#include "bench_common.h"

#include "accel/accelerator.h"
#include "nn/models.h"
#include "ops/fps.h"
#include "partition/fractal.h"

namespace {

using namespace fc;

/** Microbenchmark: functional block-wise FPS on a 33K scene. */
void
BM_BlockFps33k(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(33000);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 256;
    const part::PartitionResult part = p.partition(cloud, config);
    for (auto _ : state) {
        auto r = ops::blockFarthestPointSample(cloud, part.tree, 0.25);
        benchmark::DoNotOptimize(r.indices.data());
    }
}
BENCHMARK(BM_BlockFps33k)->Unit(benchmark::kMillisecond);

void
printTables()
{
    const nn::ModelConfig model = nn::pointNeXtSemSeg();
    Table t({"points", "base access (MB)", "our access (MB)",
             "access reduction", "base latency (ms)",
             "our latency (ms)", "speedup"});
    for (const std::size_t n :
         {1000ul, 4000ul, 16000ul, 66000ul, 289000ul}) {
        const data::PointCloud &cloud = fcb::scene(n);
        const accel::RunReport base =
            accel::makePointAcc().run(model, cloud);
        const accel::RunReport ours =
            accel::makeFractalCloud(n <= 4000 ? 64 : 256)
                .run(model, cloud);
        const double base_mb =
            static_cast<double>(base.sram_bytes + base.dram_bytes) /
            1e6;
        const double ours_mb =
            static_cast<double>(ours.sram_bytes + ours.dram_bytes) /
            1e6;
        t.addRow({std::to_string(n / 1000) + "K",
                  Table::num(base_mb, 1), Table::num(ours_mb, 1),
                  Table::mult(base_mb / ours_mb),
                  Table::num(base.totalLatencyMs(), 2),
                  Table::num(ours.totalLatencyMs(), 2),
                  Table::mult(base.totalLatencyMs() /
                              ours.totalLatencyMs())});
    }
    fcb::emit(t, "fig01_scaling",
              "Fig. 1: memory access and latency, baseline (global "
              "search) vs FractalCloud");
}

} // namespace

FC_BENCH_MAIN(printTables)
