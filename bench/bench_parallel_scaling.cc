/**
 * @file
 * Thread-scaling bench for the block-parallel execution runtime.
 *
 * Reports throughput (clouds/s and points/s) at 1/2/4/8 threads on
 * synthetic scene-scale clouds, for
 *
 *   - single-cloud mode: one FractalCloudPipeline (partition + sample
 *     + group + gather), intra-cloud block parallelism only, and
 *   - batch mode: FractalCloudPipeline::runBatch over a batch of
 *     clouds, one cloud per work item (the serving shape).
 *
 * The determinism tests guarantee every row computes bit-identical
 * results; this table shows what the threads buy. Speedups are
 * relative to the 1-thread row of the same mode and are bounded by
 * the machine's actual core count (a 1-core container shows ~1x
 * everywhere).
 */

#include <chrono>

#include "bench_common.h"
#include "core/pipeline.h"

namespace {

constexpr std::size_t kSingleCloudPoints = 65536;
constexpr std::size_t kBatchClouds = 8;
constexpr std::size_t kBatchCloudPoints = 16384;

const unsigned kThreadSweep[] = {1, 2, 4, 8};

fc::PipelineOptions
options(unsigned threads)
{
    fc::PipelineOptions opt;
    opt.method = fc::part::Method::Fractal;
    opt.threshold = 256;
    opt.num_threads = threads;
    return opt;
}

/** One full single-cloud request: partition + sample + group + gather. */
void
runSingle(const fc::data::PointCloud &scene, unsigned threads)
{
    const fc::FractalCloudPipeline pipeline(scene, options(threads));
    const fc::ops::BlockSampleResult sampled = pipeline.sample(0.25);
    const fc::ops::NeighborResult grouped =
        pipeline.group(sampled, 0.2f, 32);
    const fc::ops::GatherResult gathered =
        pipeline.gather(sampled, grouped);
    benchmark::DoNotOptimize(gathered.values.data());
}

/** Best-of-reps wall seconds for @p fn. */
template <typename Fn>
double
bestSeconds(Fn &&fn, int reps)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

void
scalingTable()
{
    const fc::data::PointCloud &single = fcb::scene(kSingleCloudPoints);
    std::vector<fc::data::PointCloud> batch;
    for (std::size_t i = 0; i < kBatchClouds; ++i)
        batch.push_back(
            fc::data::makeS3disScene(kBatchCloudPoints, 100 + i));

    fc::BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.2f;
    request.neighbors = 32;

    fc::Table table({"mode", "threads", "ms", "clouds/s", "points/s",
                     "speedup"});
    double single_base = 0.0;
    double batch_base = 0.0;
    for (const unsigned threads : kThreadSweep) {
        const double single_s =
            bestSeconds([&] { runSingle(single, threads); }, 3);
        if (threads == 1)
            single_base = single_s;
        table.addRow(
            {"single-cloud", std::to_string(threads),
             fc::Table::num(single_s * 1e3),
             fc::Table::num(1.0 / single_s),
             fc::Table::num(static_cast<double>(kSingleCloudPoints) /
                            single_s / 1e6) +
                 "M",
             fc::Table::mult(single_base / single_s)});

        const double batch_s = bestSeconds(
            [&] {
                const auto results = fc::FractalCloudPipeline::runBatch(
                    batch, options(threads), request);
                benchmark::DoNotOptimize(results.data());
            },
            3);
        if (threads == 1)
            batch_base = batch_s;
        table.addRow(
            {"runBatch x" + std::to_string(kBatchClouds),
             std::to_string(threads), fc::Table::num(batch_s * 1e3),
             fc::Table::num(static_cast<double>(kBatchClouds) /
                            batch_s),
             fc::Table::num(static_cast<double>(kBatchClouds *
                                                kBatchCloudPoints) /
                            batch_s / 1e6) +
                 "M",
             fc::Table::mult(batch_base / batch_s)});
    }
    fcb::emit(table, "bench_parallel_scaling",
              "Block-parallel runtime scaling (hardware threads: " +
                  std::to_string(std::thread::hardware_concurrency()) +
                  ")");
}

/** Micro kernel: block FPS only, sequential vs pooled. */
void
BM_BlockFpsThreads(benchmark::State &state)
{
    const fc::data::PointCloud &scene = fcb::scene(16384);
    const unsigned threads = static_cast<unsigned>(state.range(0));
    const fc::FractalCloudPipeline pipeline(scene, options(threads));
    for (auto _ : state) {
        const fc::ops::BlockSampleResult sampled = pipeline.sample(0.25);
        benchmark::DoNotOptimize(sampled.indices.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(scene.size()));
}
BENCHMARK(BM_BlockFpsThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

FC_BENCH_MAIN(scalingTable)
