/**
 * @file
 * Reproduces Fig. 14: network accuracy under each accelerator's point
 * operations — Original/PointAcc (exact global ops, lossless),
 * Crescent (KD blocks), PNNPU (uniform blocks), octree, and
 * FractalCloud — via the fixed-weight accuracy proxy (DESIGN.md §4.2).
 *
 * Three proxy metrics:
 *  - classification OA: nearest-centroid over network embeddings on
 *    the procedural ModelNet40-like task (40 classes);
 *  - segmentation label-transfer mIoU: one-hot labels of the sampled
 *    set interpolated back to every point through the backend's
 *    sampling + interpolation path (probes BWS/BWI information loss);
 *  - feature fidelity: cosine similarity of per-point segmentation
 *    features against the exact global-ops pipeline.
 *
 * Paper shape: PointAcc lossless; FractalCloud within ~0.7 points;
 * KD-tree close; uniform (PNNPU) clearly worst (-8.8% seg), octree in
 * between (-3%).
 */

#include "bench_common.h"

#include <cmath>

#include "dataset/modelnet.h"
#include "nn/classifier.h"
#include "nn/network.h"
#include "ops/interpolate.h"

namespace {

using namespace fc;

constexpr int kClasses = 40;
constexpr int kTrainPerClass = 2;
constexpr int kTestPerClass = 1;
constexpr std::size_t kObjPts = 256;
constexpr std::size_t kScenePts = 8192;
constexpr double kSampleRate = 0.25;

void
BM_ClassificationInference(benchmark::State &state)
{
    const nn::Network net(nn::pointNet2Classification(), 42);
    const data::PointCloud obj =
        data::makeModelNetObject(0, kObjPts, 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(net.run(obj).total_macs);
}
BENCHMARK(BM_ClassificationInference)->Unit(benchmark::kMillisecond);

struct MethodSpec
{
    const char *name;
    nn::BackendOptions backend;
};

std::vector<MethodSpec>
methods(std::uint32_t threshold)
{
    nn::BackendOptions exact; // global ops
    nn::BackendOptions fractal;
    fractal.method = part::Method::Fractal;
    fractal.threshold = threshold;
    nn::BackendOptions kd = fractal;
    kd.method = part::Method::KdTree;
    nn::BackendOptions uniform = fractal;
    uniform.method = part::Method::Uniform;
    nn::BackendOptions octree = fractal;
    octree.method = part::Method::Octree;
    return {
        {"Original (PointAcc)", exact},
        {"Crescent (KD-tree)", kd},
        {"PNNPU (uniform)", uniform},
        {"Octree", octree},
        {"FractalCloud", fractal},
    };
}

/** Classification OA for one backend. */
double
classificationAccuracy(const nn::Network &net,
                       const nn::BackendOptions &backend)
{
    std::vector<float> train_feats;
    std::vector<int> train_labels;
    std::vector<float> test_feats;
    std::vector<int> test_labels;
    const std::size_t dim = net.outputDim();

    for (int c = 0; c < kClasses; ++c) {
        for (int i = 0; i < kTrainPerClass + kTestPerClass; ++i) {
            const std::uint64_t seed =
                1000 + static_cast<std::uint64_t>(c) * 31 +
                static_cast<std::uint64_t>(i);
            const data::PointCloud obj =
                data::makeModelNetObject(c, kObjPts, seed);
            const nn::InferenceResult r = net.run(obj, backend);
            auto &feats =
                i < kTrainPerClass ? train_feats : test_feats;
            auto &labels =
                i < kTrainPerClass ? train_labels : test_labels;
            for (std::size_t d = 0; d < dim; ++d)
                feats.push_back(r.embedding.at(0, d));
            labels.push_back(c);
        }
    }

    nn::NearestCentroid clf;
    clf.fit(train_feats, dim, train_labels, kClasses);
    std::vector<int> preds;
    for (std::size_t i = 0; i < test_labels.size(); ++i) {
        preds.push_back(clf.predict(
            {test_feats.data() + i * dim, dim}));
    }
    return nn::overallAccuracy(preds, test_labels);
}

/**
 * Segmentation label-transfer mIoU: sample 25% of the scene with the
 * backend's sampling path, then interpolate a one-hot label field of
 * the samples back to every point with the backend's interpolation
 * path. Measures how much per-point label information the combined
 * sampling + interpolation pipeline preserves.
 */
double
labelTransferMiou(const nn::BackendOptions &backend,
                  std::uint64_t seed)
{
    const data::PointCloud scene =
        data::makeS3disScene(kScenePts, seed);
    const std::size_t num_samples = static_cast<std::size_t>(
        kSampleRate * static_cast<double>(scene.size()));
    const int classes = data::kS3disNumClasses;

    std::vector<PointIdx> sampled;
    ops::InterpolateResult interp;

    if (backend.method == part::Method::None) {
        sampled =
            ops::farthestPointSample(scene, num_samples).indices;
        std::vector<float> onehot(sampled.size() * classes, 0.0f);
        for (std::size_t i = 0; i < sampled.size(); ++i)
            onehot[i * classes +
                   scene.labels()[sampled[i]]] = 1.0f;
        interp = ops::globalInterpolate(scene, onehot, classes,
                                        sampled);
    } else {
        const auto partitioner =
            part::makePartitioner(backend.method);
        part::PartitionConfig config;
        config.threshold = backend.threshold;
        const part::PartitionResult part =
            partitioner->partition(scene, config);
        ops::FpsOptions fps;
        fps.fixed_count_per_block =
            backend.fixed_count_sampling ||
            backend.method == part::Method::Uniform;
        const ops::BlockSampleResult bs =
            ops::blockFarthestPointSample(scene, part.tree,
                                          kSampleRate, fps);
        sampled = bs.indices;
        std::vector<float> onehot(sampled.size() * classes, 0.0f);
        for (std::size_t i = 0; i < sampled.size(); ++i)
            onehot[i * classes +
                   scene.labels()[sampled[i]]] = 1.0f;
        interp = ops::blockInterpolate(scene, part.tree, bs, onehot,
                                       classes);
    }

    std::vector<int> preds(scene.size(), 0);
    for (std::size_t i = 0; i < scene.size(); ++i) {
        const float *row = interp.values.data() + i * classes;
        int best = 0;
        for (int c = 1; c < classes; ++c)
            if (row[c] > row[best])
                best = c;
        preds[i] = best;
    }
    std::vector<int> labels(scene.labels().begin(),
                            scene.labels().end());
    return nn::meanIoU(preds, labels, classes);
}

double
avgLabelTransfer(const nn::BackendOptions &backend)
{
    double sum = 0.0;
    for (const std::uint64_t seed : {11ull, 23ull, 37ull})
        sum += labelTransferMiou(backend, seed);
    return sum / 3.0;
}

/** Mean per-point cosine of segmentation features vs global ops. */
double
featureFidelity(const nn::Network &net,
                const nn::BackendOptions &backend,
                const nn::Tensor &reference,
                const data::PointCloud &scene)
{
    const nn::InferenceResult r = net.run(scene, backend);
    double total = 0.0;
    for (std::size_t i = 0; i < scene.size(); ++i) {
        double dot = 0.0, na = 0.0, nb = 0.0;
        for (std::size_t c = 0; c < reference.cols(); ++c) {
            const double a = reference.at(i, c);
            const double b = r.point_features.at(i, c);
            dot += a * b;
            na += a * a;
            nb += b * b;
        }
        total += dot / (std::sqrt(na * nb) + 1e-12);
    }
    return total / static_cast<double>(scene.size());
}

void
printTables()
{
    const nn::Network cls_net(nn::pointNet2Classification(), 42);
    const nn::Network seg_net(nn::pointNet2SemSeg(), 42);
    const data::PointCloud fid_scene = data::makeS3disScene(2048, 51);
    const nn::Tensor reference =
        seg_net.run(fid_scene).point_features;

    Table t({"method", "classification OA (proxy)", "OA delta",
             "label-transfer mIoU", "mIoU delta",
             "feature fidelity"});
    double base_oa = -1.0, base_miou = -1.0;
    for (const MethodSpec &m : methods(32)) {
        nn::BackendOptions seg_backend = m.backend;
        if (seg_backend.method != part::Method::None)
            seg_backend.threshold = 256;
        const double oa =
            classificationAccuracy(cls_net, m.backend);
        const double miou = avgLabelTransfer(seg_backend);
        nn::BackendOptions fid_backend = m.backend;
        if (fid_backend.method != part::Method::None)
            fid_backend.threshold = 128;
        const double fidelity =
            featureFidelity(seg_net, fid_backend, reference,
                            fid_scene);
        if (base_oa < 0.0) {
            base_oa = oa;
            base_miou = miou;
        }
        t.addRow({m.name, Table::num(100.0 * oa, 1) + "%",
                  Table::num(100.0 * (oa - base_oa), 1),
                  Table::num(100.0 * miou, 1) + "%",
                  Table::num(100.0 * (miou - base_miou), 1),
                  Table::num(100.0 * fidelity, 1) + "%"});
    }
    fcb::emit(t, "fig14_accuracy",
              "Fig. 14: accuracy proxy by point-operation backend "
              "(fixed weights, nearest-centroid heads)");
}

} // namespace

FC_BENCH_MAIN(printTables)
