/**
 * @file
 * Latency-percentile bench for the async serving frontend.
 *
 * Sweeps offered load (burst size) on a fixed 4-thread serving pool
 * and reports per-request latency percentiles (submit -> terminal)
 * for the two scheduling policies:
 *
 *   - work-conserving: bursts smaller than the pool spill their
 *     intra-cloud block items into the idle slots, and
 *   - one-cloud-per-thread: PR 1's dispatch (work_conserving = false),
 *     which leaves pool slots idle whenever burst < threads.
 *
 * The interesting rows are burst < threads: there the spill policy
 * should win p50 and p99 (on real multicore hardware; a 1-core
 * container honestly reports ~1x). Results are bit-identical across
 * policies — the determinism tests enforce it — so the table measures
 * pure scheduling effect.
 */

#include <algorithm>
#include <chrono>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "serve/async_pipeline.h"

namespace {

constexpr unsigned kPoolThreads = 4;
constexpr std::size_t kCloudPoints = 4096;
constexpr std::size_t kMinSamplesPerRow = 32;
const std::size_t kBurstSizes[] = {1, 2, 4, 8};

fc::BatchRequest
request()
{
    fc::BatchRequest req;
    req.sample_rate = 0.25;
    req.radius = 0.2f;
    req.neighbors = 32;
    return req;
}

/** Millisecond latency at percentile @p p (nearest-rank). */
double
percentileMs(std::vector<double> &latencies, double p)
{
    std::sort(latencies.begin(), latencies.end());
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(rank, latencies.size() - 1)];
}

struct BurstMeasurement
{
    std::vector<double> latencies_ms;
    double wall_seconds = 0.0;
};

/** Submit bursts of @p burst clouds until >= kMinSamplesPerRow
 *  requests retire; returns submit->finish latencies and the total
 *  wall time spent (for throughput). */
BurstMeasurement
measureBursts(bool work_conserving, std::size_t burst,
              const std::vector<fc::data::PointCloud> &clouds)
{
    fc::serve::ServeOptions options;
    options.pipeline.num_threads = kPoolThreads;
    options.work_conserving = work_conserving;
    options.queue_capacity = burst;
    fc::serve::AsyncPipeline server(options);

    BurstMeasurement measurement;
    std::size_t next_cloud = 0;
    const auto start = std::chrono::steady_clock::now();
    while (measurement.latencies_ms.size() < kMinSamplesPerRow) {
        std::vector<fc::serve::Ticket> tickets;
        for (std::size_t i = 0; i < burst; ++i) {
            tickets.push_back(server.submit(
                clouds[next_cloud++ % clouds.size()], request()));
        }
        for (const fc::serve::Ticket ticket : tickets) {
            const fc::serve::RequestOutcome outcome =
                server.wait(ticket);
            const std::chrono::duration<double, std::milli> latency =
                outcome.timing.finished - outcome.timing.submitted;
            measurement.latencies_ms.push_back(latency.count());
        }
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    measurement.wall_seconds = elapsed.count();
    return measurement;
}

void
latencyTable()
{
    std::vector<fc::data::PointCloud> clouds;
    for (std::uint64_t seed = 0; seed < 8; ++seed)
        clouds.push_back(
            fc::data::makeS3disScene(kCloudPoints, 200 + seed));

    fc::Table table({"scheduler", "burst", "p50 ms", "p99 ms",
                     "clouds/s", "p99 vs pinned"});
    for (const std::size_t burst : kBurstSizes) {
        BurstMeasurement pinned = measureBursts(false, burst, clouds);
        BurstMeasurement spill = measureBursts(true, burst, clouds);
        const double pinned_p99 =
            percentileMs(pinned.latencies_ms, 0.99);
        const double spill_p99 = percentileMs(spill.latencies_ms, 0.99);

        const auto row = [&](const char *name, BurstMeasurement &m,
                             double p99, double vs) {
            table.addRow(
                {name, std::to_string(burst),
                 fc::Table::num(percentileMs(m.latencies_ms, 0.50)),
                 fc::Table::num(p99),
                 fc::Table::num(
                     static_cast<double>(m.latencies_ms.size()) /
                     m.wall_seconds),
                 fc::Table::mult(vs)});
        };
        row("one-cloud-per-thread", pinned, pinned_p99, 1.0);
        row("work-conserving", spill, spill_p99,
            pinned_p99 / spill_p99);
    }
    fcb::emit(table, "bench_serve_latency",
              "Async serving latency, " +
                  std::to_string(kPoolThreads) +
                  "-thread pool (hardware threads: " +
                  std::to_string(std::thread::hardware_concurrency()) +
                  ")");
}

/** Micro kernel: submit/wait round-trip overhead on a tiny cloud. */
void
BM_SubmitWaitRoundtrip(benchmark::State &state)
{
    fc::serve::ServeOptions options;
    options.pipeline.num_threads =
        static_cast<unsigned>(state.range(0));
    fc::serve::AsyncPipeline server(options);
    const fc::data::PointCloud cloud = fc::data::makeS3disScene(512, 3);
    for (auto _ : state) {
        const fc::serve::RequestOutcome outcome =
            server.wait(server.submit(cloud, request()));
        benchmark::DoNotOptimize(outcome.result.sampled.indices.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SubmitWaitRoundtrip)->Arg(1)->Arg(4);

} // namespace

FC_BENCH_MAIN(latencyTable)
