/**
 * @file
 * Shared helpers for the paper-reproduction bench binaries.
 *
 * Every bench binary:
 *   1. runs its google-benchmark kernels (micro timings of the
 *      functional implementations), then
 *   2. prints the paper's table/figure as ASCII and writes it as CSV
 *      next to the binary.
 */

#ifndef FC_BENCH_BENCH_COMMON_H
#define FC_BENCH_BENCH_COMMON_H

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <string>

#include "common/logging.h"
#include "common/table.h"
#include "dataset/s3dis.h"

namespace fcb {

/** Cached S3DIS-like scenes keyed by size (seed fixed at 1). */
inline const fc::data::PointCloud &
scene(std::size_t n)
{
    static std::map<std::size_t, fc::data::PointCloud> cache;
    auto it = cache.find(n);
    if (it == cache.end())
        it = cache.emplace(n, fc::data::makeS3disScene(n, 1)).first;
    return it->second;
}

/** Print a finished table and write `<name>.csv` beside the binary. */
inline void
emit(const fc::Table &table, const std::string &name,
     const std::string &caption)
{
    std::printf("\n=== %s ===\n%s\n", caption.c_str(),
                table.render().c_str());
    const std::string path = name + ".csv";
    if (table.writeCsv(path))
        std::printf("(rows also written to %s)\n", path.c_str());
}

/** Shared main: run registered google-benchmark kernels, then the
 *  table generator supplied by the binary. */
#define FC_BENCH_MAIN(table_fn)                                         \
    int                                                                 \
    main(int argc, char **argv)                                         \
    {                                                                   \
        fc::logLevel() = fc::LogLevel::Silent;                          \
        ::benchmark::Initialize(&argc, argv);                           \
        if (::benchmark::ReportUnrecognizedArguments(argc, argv))       \
            return 1;                                                   \
        ::benchmark::RunSpecifiedBenchmarks();                          \
        ::benchmark::Shutdown();                                        \
        table_fn();                                                     \
        return 0;                                                       \
    }

} // namespace fcb

#endif // FC_BENCH_BENCH_COMMON_H
