/**
 * @file
 * Reproduces Fig. 4: GPU inference latency and the share of point
 * operations vs MLPs, for the seven Table I workloads across input
 * scales.
 *
 * Paper shape: point-operation share rises from ~30-45% at 1K to
 * 97-99% at 289K; absolute latency grows superlinearly.
 */

#include "bench_common.h"

#include "accel/accelerator.h"
#include "nn/models.h"

namespace {

using namespace fc;

void
BM_GpuModel289k(benchmark::State &state)
{
    const nn::ModelConfig model = nn::pointNeXtSemSeg();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            accel::gpuRun(model, 289000).totalCycles());
}
BENCHMARK(BM_GpuModel289k);

void
printTables()
{
    Table t({"workload", "points", "GPU latency (ms)",
             "point ops (ms)", "MLPs (ms)", "point-op share"});

    struct Workload
    {
        nn::ModelConfig model;
        std::vector<std::size_t> sizes;
    };
    const std::vector<Workload> workloads = {
        {nn::pointNet2Classification(), {1000, 4000}},
        {nn::pointNeXtClassification(), {1000, 4000}},
        {nn::pointNet2PartSeg(), {2000, 4000}},
        {nn::pointNeXtPartSeg(), {2000, 4000}},
        {nn::pointNet2SemSeg(), {16000, 66000}},
        {nn::pointNeXtSemSeg(), {1000, 4000, 16000, 66000, 289000}},
        {nn::pointVectorSemSeg(), {16000, 66000, 289000}},
    };
    for (const Workload &w : workloads) {
        for (const std::size_t n : w.sizes) {
            const accel::RunReport r = accel::gpuRun(w.model, n);
            const double point_ms =
                sim::cyclesToMs(r.pointOpCycles(), r.freq_ghz);
            const double mlp_ms =
                sim::cyclesToMs(r.mlpCycles(), r.freq_ghz);
            const double share =
                100.0 * static_cast<double>(r.pointOpCycles()) /
                static_cast<double>(r.totalCycles());
            t.addRow({w.model.name, std::to_string(n / 1000) + "K",
                      Table::num(r.totalLatencyMs(), 1),
                      Table::num(point_ms, 1), Table::num(mlp_ms, 1),
                      Table::num(share, 0) + "%"});
        }
    }
    fcb::emit(t, "fig04_bottleneck",
              "Fig. 4: GPU latency and point-operation share across "
              "workloads and scales");
}

} // namespace

FC_BENCH_MAIN(printTables)
