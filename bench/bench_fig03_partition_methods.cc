/**
 * @file
 * Reproduces Fig. 3: the four partitioning regimes — none (PointAcc),
 * space-uniform (PNNPU), KD-tree (Crescent), Fractal (ours) — compared
 * on partitioning latency, complexity, block balance, and an accuracy
 * proxy (neighbor recall + sampling coverage vs exact global ops).
 *
 * Paper shape: uniform 0.03 ms / O(n) / imbalanced / -8.8% acc;
 * KD 4.03 ms / O(n log n) / strictly balanced / -0.3%; Fractal
 * 0.04 ms / O(n) / moderately balanced / -0.6%.
 */

#include "bench_common.h"

#include "accel/accelerator.h"
#include "ops/fps.h"
#include "ops/neighbor.h"
#include "ops/quality.h"
#include "partition/partitioner.h"
#include "sim/cycles.h"

namespace {

using namespace fc;

constexpr std::size_t kScenePts = 16384;
constexpr std::uint32_t kThreshold = 256;

void
BM_PartitionFractal(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(kScenePts);
    const auto p = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = kThreshold;
    for (auto _ : state)
        benchmark::DoNotOptimize(p->partition(cloud, config).tree
                                     .numPoints());
}
BENCHMARK(BM_PartitionFractal)->Unit(benchmark::kMillisecond);

void
BM_PartitionKdTree(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(kScenePts);
    const auto p = part::makePartitioner(part::Method::KdTree);
    part::PartitionConfig config;
    config.threshold = kThreshold;
    for (auto _ : state)
        benchmark::DoNotOptimize(p->partition(cloud, config).tree
                                     .numPoints());
}
BENCHMARK(BM_PartitionKdTree)->Unit(benchmark::kMillisecond);

/** Modelled on-chip partitioning latency (fractal-engine model). */
double
partitionLatencyMs(const part::PartitionResult &result,
                   const accel::Policy &policy)
{
    const part::PartitionStats &ps = result.stats;
    const double n = result.tree.numPoints();
    switch (result.method) {
      case part::Method::Uniform:
        return sim::cyclesToMs(
            static_cast<sim::Cycles>(ps.traversal_passes * n /
                                     policy.traverse_rate),
            1.0);
      case part::Method::Octree:
        return sim::cyclesToMs(
            static_cast<sim::Cycles>(1.5 * ps.traversal_passes * n /
                                     policy.traverse_rate),
            1.0);
      case part::Method::Fractal:
        return sim::cyclesToMs(
            static_cast<sim::Cycles>(ps.traversal_passes * n /
                                     policy.traverse_rate),
            1.0);
      case part::Method::KdTree:
        return sim::cyclesToMs(
            static_cast<sim::Cycles>(
                static_cast<double>(ps.sort_compares) /
                    policy.sorter_rate +
                64.0 * static_cast<double>(ps.num_sorts)),
            1.0);
      case part::Method::None:
        return 0.0;
    }
    return 0.0;
}

/** Accuracy proxy: block ops vs exact global ops. */
struct Proxy
{
    double recall;        ///< grouping neighbor recall
    double coverage_ratio; ///< block / global mean coverage (>= 1)
};

Proxy
accuracyProxy(const data::PointCloud &cloud,
              const part::PartitionResult &part)
{
    const ops::BlockSampleResult sampled =
        ops::blockFarthestPointSample(cloud, part.tree, 0.25);
    const ops::SampleResult global_s =
        ops::farthestPointSample(cloud, sampled.indices.size());
    // Stage-1 radius (0.1 m): neighborhoods rarely exceed k, so the
    // global and block tables describe the same well-defined sets and
    // recall measures genuine neighbor loss rather than tie-breaking.
    const ops::NeighborResult blocked =
        ops::blockBallQuery(cloud, part.tree, sampled, 0.1f, 16);
    const ops::NeighborResult global =
        ops::ballQuery(cloud, sampled.indices, 0.1f, 16);
    Proxy p;
    p.recall = ops::neighborRecall(global, blocked);
    p.coverage_ratio =
        ops::meanCoverage(cloud, sampled.indices) /
        ops::meanCoverage(cloud, global_s.indices);
    return p;
}

void
printTables()
{
    const data::PointCloud &cloud = fcb::scene(kScenePts);
    Table t({"strategy", "partition (ms, modelled)", "complexity",
             "balance (leaf cv)", "max/th", "group recall",
             "coverage ratio"});

    const accel::Policy policy = accel::makeFractalCloud().policy();
    part::PartitionConfig config;
    config.threshold = kThreshold;

    struct Row
    {
        part::Method method;
        const char *complexity;
    };
    for (const Row row :
         {Row{part::Method::None, "-"},
          Row{part::Method::Uniform, "O(n)"},
          Row{part::Method::KdTree, "O(n log n)"},
          Row{part::Method::Fractal, "O(n)"}}) {
        const auto p = part::makePartitioner(row.method);
        const part::PartitionResult result =
            p->partition(cloud, config);
        std::string recall = "1.000 (exact)";
        std::string coverage = "1.00 (exact)";
        if (row.method != part::Method::None) {
            const Proxy proxy = accuracyProxy(cloud, result);
            recall = Table::num(proxy.recall, 3);
            coverage = Table::num(proxy.coverage_ratio, 2);
        }
        t.addRow({part::methodName(row.method),
                  Table::num(partitionLatencyMs(result, policy), 3),
                  row.complexity,
                  Table::num(result.tree.leafSizeCv(), 3),
                  Table::num(static_cast<double>(
                                 result.tree.maxLeafSize()) /
                                 kThreshold,
                             2),
                  recall, coverage});
    }
    fcb::emit(t, "fig03_partition_methods",
              "Fig. 3: partitioning strategies on a 16K S3DIS-like "
              "scene (th=256)");
}

} // namespace

FC_BENCH_MAIN(printTables)
