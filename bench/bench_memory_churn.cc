/**
 * @file
 * Memory-churn bench: allocations/request and p50 latency for cold vs
 * warm workspaces.
 *
 * A global operator-new hook (binary-local) counts every heap
 * allocation, and the table contrasts three ways of running the same
 * inference request plus the serve path:
 *
 *   - value API: the historical per-call allocation behaviour (every
 *     intermediate freshly allocated),
 *   - workspace cold: first call on a fresh workspace (growth),
 *   - workspace warm: steady state — the headline row, which must
 *     report 0 allocations per request on the sequential executor,
 *   - pooled warm: the same steady state on a 2-thread pool — also
 *     0 allocations now that chunk tasks use the pool's inline task
 *     slots (no std::function closures) and parallelReduce stages
 *     per-chunk values on the stack,
 *   - serve warm: AsyncPipeline steady state via the value wait()
 *     API, where the moved-out result payload still allocates,
 *   - serve warm pooled outcome: submitShared + waitInto against the
 *     slab-recycled outcome pool — 0 allocations per request, and
 *     hard-gated (the bench exits nonzero on regression).
 *
 * The CSV is gated by scripts/check_bench_csv.sh in the Release
 * perf-smoke CI step; the latency numbers are hardware-bound and only
 * uploaded as artifacts.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "core/workspace.h"
#include "nn/models.h"
#include "nn/network.h"
#include "serve/async_pipeline.h"

// Shared counting hook replacing the global allocation operators
// binary-wide (src/common/alloc_hook.h): the same counting rules as
// the steady-state tests, so the two measurements cannot drift.
#include "common/alloc_hook.h"

namespace {

constexpr std::size_t kPoints = 2048;
constexpr int kReps = 7;

struct Sample
{
    std::uint64_t allocs = 0;
    double ms = 0.0;
};

/** Median-of-reps measurement of @p fn (allocs + wall ms). */
template <typename Fn>
Sample
measure(Fn &&fn, int reps)
{
    std::vector<std::uint64_t> allocs;
    std::vector<double> ms;
    for (int r = 0; r < reps; ++r) {
        const std::uint64_t before = fc::heapAllocCount();
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        allocs.push_back(fc::heapAllocCount() - before);
        ms.push_back(elapsed.count());
    }
    std::sort(allocs.begin(), allocs.end());
    std::sort(ms.begin(), ms.end());
    return {allocs[allocs.size() / 2], ms[ms.size() / 2]};
}

void
churnTable()
{
    const fc::data::PointCloud &scene = fcb::scene(kPoints);
    const fc::nn::Network network(fc::nn::pointNet2SemSeg(), 42);

    fc::PipelineOptions options;
    options.num_threads = 1; // the sequential executor: zero-alloc row
    options.threshold = 256;
    const fc::FractalCloudPipeline pipeline(scene, options);

    fc::Table table({"path", "allocs/req", "p50 ms", "reps"});

    // Standalone value API: a private workspace per call, so every
    // intermediate is allocated fresh — the historical churn.
    fc::nn::BackendOptions value_backend;
    value_backend.method = options.method;
    value_backend.threshold = options.threshold;
    const Sample value = measure(
        [&] {
            const fc::nn::InferenceResult result =
                network.run(scene, value_backend);
            benchmark::DoNotOptimize(result.embedding.data().data());
        },
        kReps);
    table.addRow({"run-value", std::to_string(value.allocs),
                  fc::Table::num(value.ms), std::to_string(kReps)});

    // Workspace cold: one fresh pipeline per rep, first infer() grows
    // the workspace (the price paid exactly once per shape).
    const Sample cold = measure(
        [&] {
            const fc::FractalCloudPipeline fresh(scene, options);
            fc::nn::InferenceResult out;
            fresh.infer(network, out);
            benchmark::DoNotOptimize(out.embedding.data().data());
        },
        3);
    table.addRow({"infer-ws-cold", std::to_string(cold.allocs),
                  fc::Table::num(cold.ms), "3"});

    // Workspace warm: the steady state. allocs/req must be 0.
    fc::nn::InferenceResult warm_out;
    pipeline.infer(network, warm_out);
    pipeline.infer(network, warm_out);
    const Sample warm = measure(
        [&] {
            pipeline.infer(network, warm_out);
            benchmark::DoNotOptimize(
                warm_out.embedding.data().data());
        },
        kReps);
    table.addRow({"infer-ws-warm", std::to_string(warm.allocs),
                  fc::Table::num(warm.ms), std::to_string(kReps)});

    // Pooled warm: the same steady state on a multi-thread pool.
    // Chunk closures ride the ThreadPool's inline task slots and
    // parallelReduce stages on the stack, so pooled dispatch no
    // longer allocates task closures — allocs/req must be 0 here
    // too (the ROADMAP's "pooled dispatch still allocates" item).
    fc::PipelineOptions pooled_options = options;
    pooled_options.num_threads = 2;
    const fc::FractalCloudPipeline pooled(scene, pooled_options);
    fc::nn::InferenceResult pooled_out;
    pooled.infer(network, pooled_out);
    pooled.infer(network, pooled_out);
    const Sample pooled_warm = measure(
        [&] {
            pooled.infer(network, pooled_out);
            benchmark::DoNotOptimize(
                pooled_out.embedding.data().data());
        },
        kReps);
    table.addRow({"infer-ws-warm-pooled",
                  std::to_string(pooled_warm.allocs),
                  fc::Table::num(pooled_warm.ms),
                  std::to_string(kReps)});

    // fp16 warm: the fp16 end-to-end mode holds the same guarantee —
    // its HalfTensor intermediates live in workspace slots and reuse
    // capacity exactly like the fp32 tensors they shadow.
    fc::nn::BackendOptions fp16_backend = value_backend;
    fp16_backend.precision = fc::nn::Precision::Fp16;
    fc::core::Workspace fp16_ws;
    fc::nn::InferenceResult fp16_out;
    network.run(scene, fp16_backend, fp16_ws, fp16_out);
    fp16_ws.reset();
    network.run(scene, fp16_backend, fp16_ws, fp16_out);
    const Sample fp16_warm = measure(
        [&] {
            fp16_ws.reset();
            network.run(scene, fp16_backend, fp16_ws, fp16_out);
            benchmark::DoNotOptimize(
                fp16_out.embedding.data().data());
        },
        kReps);
    table.addRow({"infer-ws-warm-fp16",
                  std::to_string(fp16_warm.allocs),
                  fc::Table::num(fp16_warm.ms),
                  std::to_string(kReps)});

    // Serve warm: pooled workspaces; only the result payload (and the
    // ticket bookkeeping) allocates per request.
    fc::serve::ServeOptions serve_options;
    serve_options.pipeline = options;
    fc::serve::AsyncPipeline server(serve_options);
    fc::BatchRequest request;
    request.network = &network;
    for (int i = 0; i < 2; ++i) { // warm the workspace pool
        fc::serve::RequestOutcome outcome =
            server.wait(server.submit(scene, request));
        benchmark::DoNotOptimize(outcome.state);
    }
    const Sample serve_warm = measure(
        [&] {
            fc::serve::RequestOutcome outcome =
                server.wait(server.submit(scene, request));
            benchmark::DoNotOptimize(
                outcome.result.gathered.values.data());
        },
        kReps);
    table.addRow({"serve-warm", std::to_string(serve_warm.allocs),
                  fc::Table::num(serve_warm.ms),
                  std::to_string(kReps)});

    // Serve warm, pooled outcome: the zero-alloc serve path. waitInto
    // copies the payload out of a slab-recycled outcome slot into a
    // caller buffer whose capacity persists across calls, so the warm
    // submit -> poll round trip performs no heap allocation at all.
    // This row is the PR's hard guarantee and is gated below.
    const auto shared_scene =
        std::make_shared<const fc::data::PointCloud>(scene);
    fc::serve::RequestOutcome pooled_outcome;
    for (int i = 0; i < 3; ++i) { // warm slot + caller buffer
        server.waitInto(server.submitShared(shared_scene, request),
                        pooled_outcome);
        benchmark::DoNotOptimize(pooled_outcome.state);
    }
    const Sample serve_pooled = measure(
        [&] {
            server.waitInto(server.submitShared(shared_scene, request),
                            pooled_outcome);
            benchmark::DoNotOptimize(
                pooled_outcome.result.gathered.values.data());
        },
        kReps);
    table.addRow({"serve-warm-pooled-outcome",
                  std::to_string(serve_pooled.allocs),
                  fc::Table::num(serve_pooled.ms),
                  std::to_string(kReps)});

    fcb::emit(table, "bench_memory_churn",
              "Heap allocations per request, cold vs warm workspaces "
              "(" + std::to_string(kPoints) + " points, seg model, " +
                  "sequential + 2-thread executors)");

    if (warm.allocs != 0)
        std::printf("WARNING: warm workspace path performed %llu "
                    "allocations per request (expected 0)\n",
                    static_cast<unsigned long long>(warm.allocs));
    if (pooled_warm.allocs != 0)
        std::printf("WARNING: pooled warm workspace path performed "
                    "%llu allocations per request (expected 0)\n",
                    static_cast<unsigned long long>(
                        pooled_warm.allocs));
    if (fp16_warm.allocs != 0)
        std::printf("WARNING: fp16 warm workspace path performed "
                    "%llu allocations per request (expected 0)\n",
                    static_cast<unsigned long long>(fp16_warm.allocs));
    if (serve_pooled.allocs != 0) {
        // Hard gate: the pooled-outcome serve path is advertised as
        // allocation-free; a regression here fails the perf-smoke CI
        // step, not just a warning in the log.
        std::printf("FAIL: pooled-outcome serve path performed %llu "
                    "allocations per request (expected 0)\n",
                    static_cast<unsigned long long>(
                        serve_pooled.allocs));
        std::exit(1);
    }
}

/** Micro kernel: warm steady-state infer under the benchmark timer. */
void
BM_WarmWorkspaceInfer(benchmark::State &state)
{
    const fc::data::PointCloud &scene = fcb::scene(2048);
    static const fc::nn::Network network(fc::nn::pointNet2SemSeg(), 42);
    fc::PipelineOptions options;
    options.num_threads = 1;
    options.threshold = 256;
    const fc::FractalCloudPipeline pipeline(scene, options);
    fc::nn::InferenceResult out;
    pipeline.infer(network, out); // warm up
    for (auto _ : state) {
        pipeline.infer(network, out);
        benchmark::DoNotOptimize(out.embedding.data().data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(scene.size()));
}
BENCHMARK(BM_WarmWorkspaceInfer);

} // namespace

FC_BENCH_MAIN(churnTable)
