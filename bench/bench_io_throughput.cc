/**
 * @file
 * Ingestion throughput: text parse vs pool-parallel parse vs mmap'd
 * .fcpc zero-copy load, on three dataset shapes.
 *
 * Three rows per dataset:
 *
 *   - text-serial: the chunked std::from_chars .xyz parser, no pool,
 *   - text-parallel: the SAME chunked parser on a 4-thread pool
 *     (bit-identical output by construction; see dataset/io.cc),
 *   - fcpc-mmap: FcpcReader open + zero-copy readBlock — the full
 *     cold path including the checksum/page-touch pass, so the number
 *     is honest about validation cost, not just the pointer binds.
 *
 * This binary is a HARD GATE, not a smoke test. It exits non-zero
 * when:
 *
 *   1. the mmap row is not strictly the fastest load on any dataset
 *      (the tentpole claim: binary columnar load beats text parse),
 *   2. a warm zero-copy readBlock performs ANY heap allocation
 *      (measured with the binary-local operator-new hook — the same
 *      counting rules as the StorageAlloc test),
 *   3. parallel parse drops below 0.8x serial throughput. The
 *      tolerance (rather than requiring >= 1.0x) is for single-core
 *      CI runners, where the pool adds scheduling overhead and no
 *      parallelism; on multi-core hosts parallel comfortably wins.
 *
 * Wall-clock MB/s values are hardware-bound and belong in the
 * uploaded artifacts; only the ORDERING above is gated.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/parallel.h"
#include "dataset/io.h"
#include "dataset/modelnet.h"
#include "dataset/s3dis.h"
#include "dataset/shapenet.h"
#include "storage/fcpc_reader.h"
#include "storage/fcpc_writer.h"

// Binary-local counting hook replacing the global allocation
// operators (src/common/alloc_hook.h) — one TU per binary.
#include "common/alloc_hook.h"

namespace {

constexpr int kReps = 5;
constexpr unsigned kParseThreads = 4;

struct Sample
{
    std::uint64_t allocs = 0;
    double ms = 0.0;
};

/** Median-of-reps measurement of @p fn (allocs + wall ms). */
template <typename Fn>
Sample
measure(Fn &&fn, int reps)
{
    std::vector<std::uint64_t> allocs;
    std::vector<double> ms;
    for (int r = 0; r < reps; ++r) {
        const std::uint64_t before = fc::heapAllocCount();
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        allocs.push_back(fc::heapAllocCount() - before);
        ms.push_back(elapsed.count());
    }
    std::sort(allocs.begin(), allocs.end());
    std::sort(ms.begin(), ms.end());
    return {allocs[allocs.size() / 2], ms[ms.size() / 2]};
}

std::size_t
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    return in ? static_cast<std::size_t>(in.tellg()) : 0;
}

std::string
mbPerSec(std::size_t bytes, double ms)
{
    if (ms <= 0.0)
        return "inf";
    return fc::Table::num(
        static_cast<double>(bytes) / (1024.0 * 1024.0) / (ms / 1e3),
        1);
}

std::string
allocsPerPoint(std::uint64_t allocs, std::size_t points)
{
    return fc::Table::num(
        static_cast<double>(allocs) / static_cast<double>(points), 4);
}

struct DatasetRows
{
    std::string name;
    Sample serial;
    Sample parallel;
    Sample mmap_cold;
    std::uint64_t mmap_warm_allocs = 0;
};

DatasetRows
benchDataset(const std::string &name, const fc::data::PointCloud &cloud,
             fc::Table &table)
{
    const std::string txt = "bench_io_" + name + ".xyz";
    const std::string bin = "bench_io_" + name + ".fcpc";
    if (!fc::data::saveXyz(cloud, txt) ||
        !fc::storage::writeFcpc({cloud}, bin)) {
        std::printf("FAIL: could not write scratch files for %s\n",
                    name.c_str());
        std::exit(1);
    }

    DatasetRows rows;
    rows.name = name;

    rows.serial = measure(
        [&] {
            fc::data::PointCloud loaded;
            if (!fc::data::loadXyz(loaded, txt))
                std::exit(1);
            benchmark::DoNotOptimize(loaded.size());
        },
        kReps);

    fc::core::ThreadPool pool(kParseThreads);
    rows.parallel = measure(
        [&] {
            fc::data::PointCloud loaded;
            if (!fc::data::loadXyz(loaded, txt, &pool))
                std::exit(1);
            benchmark::DoNotOptimize(loaded.size());
        },
        kReps);

    // Cold mmap load: open + validate + zero-copy bind, per rep. The
    // checksum pass touches every section byte, so this is the full
    // cost of trusting the file, not a cached best case.
    rows.mmap_cold = measure(
        [&] {
            fc::storage::FcpcReader reader;
            if (reader.open(bin) != fc::storage::FcpcStatus::Ok)
                std::exit(1);
            fc::data::PointCloud loaded;
            if (reader.readBlock(0, loaded) !=
                fc::storage::FcpcStatus::Ok)
                std::exit(1);
            benchmark::DoNotOptimize(loaded.size());
        },
        kReps);

    // Warm zero-copy readBlock: validation memoized, six pointer
    // binds. This is the gated allocation number — must be exactly 0.
    fc::storage::FcpcReader warm;
    if (warm.open(bin) != fc::storage::FcpcStatus::Ok)
        std::exit(1);
    {
        fc::data::PointCloud first;
        warm.readBlock(0, first); // pay validation outside the measure
    }
    rows.mmap_warm_allocs = measure(
                                [&] {
                                    fc::data::PointCloud loaded;
                                    warm.readBlock(0, loaded);
                                    benchmark::DoNotOptimize(
                                        loaded.size());
                                },
                                kReps)
                                .allocs;

    const std::size_t txt_bytes = fileBytes(txt);
    const std::size_t points = cloud.size();
    table.addRow({name, "text-serial", std::to_string(points),
                  fc::Table::num(rows.serial.ms),
                  mbPerSec(txt_bytes, rows.serial.ms),
                  allocsPerPoint(rows.serial.allocs, points)});
    table.addRow({name, "text-parallel", std::to_string(points),
                  fc::Table::num(rows.parallel.ms),
                  mbPerSec(txt_bytes, rows.parallel.ms),
                  allocsPerPoint(rows.parallel.allocs, points)});
    table.addRow({name, "fcpc-mmap", std::to_string(points),
                  fc::Table::num(rows.mmap_cold.ms),
                  mbPerSec(warm.mappedBytes(), rows.mmap_cold.ms),
                  allocsPerPoint(rows.mmap_cold.allocs, points)});

    std::remove(txt.c_str());
    std::remove(bin.c_str());
    return rows;
}

void
ioThroughputTable()
{
    fc::Table table({"dataset", "method", "points", "p50 ms", "MB/s",
                     "allocs/point"});

    std::vector<DatasetRows> all;
    all.push_back(
        benchDataset("s3dis", fc::data::makeS3disScene(60000, 1),
                     table));
    all.push_back(benchDataset(
        "shapenet", fc::data::makeShapeNetObject(3, 32000, 7), table));
    all.push_back(benchDataset(
        "modelnet", fc::data::makeModelNetObject(5, 24000, 9), table));

    fcb::emit(table, "bench_io_throughput",
              "Ingestion throughput: chunked text parse (serial / " +
                  std::to_string(kParseThreads) +
                  " threads) vs mmap'd .fcpc zero-copy load");

    bool failed = false;
    for (const DatasetRows &rows : all) {
        if (rows.mmap_cold.ms >= rows.serial.ms ||
            rows.mmap_cold.ms >= rows.parallel.ms) {
            std::printf("FAIL: %s: mmap load (%.3f ms) is not "
                        "strictly faster than text parse (serial "
                        "%.3f ms, parallel %.3f ms)\n",
                        rows.name.c_str(), rows.mmap_cold.ms,
                        rows.serial.ms, rows.parallel.ms);
            failed = true;
        }
        if (rows.mmap_warm_allocs != 0) {
            std::printf("FAIL: %s: warm zero-copy readBlock performed "
                        "%llu heap allocations (expected 0)\n",
                        rows.name.c_str(),
                        static_cast<unsigned long long>(
                            rows.mmap_warm_allocs));
            failed = true;
        }
        if (rows.parallel.ms > rows.serial.ms / 0.8) {
            std::printf("FAIL: %s: parallel parse (%.3f ms) fell "
                        "below 0.8x serial throughput (serial %.3f "
                        "ms)\n",
                        rows.name.c_str(), rows.parallel.ms,
                        rows.serial.ms);
            failed = true;
        }
    }
    if (failed)
        std::exit(1);
    // The micro kernel's scratch file (FC_BENCH_MAIN runs the
    // registered kernels before this table generator).
    std::remove("bench_io_kernel.fcpc");
}

/** Micro kernel: warm zero-copy readBlock under the benchmark timer. */
void
BM_FcpcWarmReadBlock(benchmark::State &state)
{
    static const std::string path = [] {
        const std::string p = "bench_io_kernel.fcpc";
        fc::storage::writeFcpc({fc::data::makeS3disScene(20000, 1)}, p);
        return p;
    }();
    fc::storage::FcpcReader reader;
    if (reader.open(path) != fc::storage::FcpcStatus::Ok) {
        state.SkipWithError("open failed");
        return;
    }
    fc::data::PointCloud warmup;
    reader.readBlock(0, warmup);
    for (auto _ : state) {
        fc::data::PointCloud loaded;
        reader.readBlock(0, loaded);
        benchmark::DoNotOptimize(loaded.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(reader.blockPoints(0)));
}
BENCHMARK(BM_FcpcWarmReadBlock);

} // namespace

FC_BENCH_MAIN(ioThroughputTable)
