/**
 * @file
 * Reproduces Table II (evaluated hardware accelerators) and Fig. 12
 * (FractalCloud chip specifications and area/power breakdown), and
 * demonstrates the RISC-V configuration path of §V-A.
 */

#include "bench_common.h"

#include "accel/accelerator.h"
#include "accel/config.h"
#include "sim/riscv.h"

namespace {

using namespace fc;

/** Microbenchmark: RV32IM interpreter throughput. */
void
BM_RiscvConfigProgram(benchmark::State &state)
{
    using namespace sim::rv;
    std::vector<Insn> program;
    for (const Insn i : li(1, 0x4000'0000u))
        program.push_back(i);
    for (int s = 0; s < 8; ++s) {
        for (const Insn i : li(2, 0x1234u + static_cast<unsigned>(s)))
            program.push_back(i);
        program.push_back(sw(2, 1, s * 4));
    }
    program.push_back(ecall());
    for (auto _ : state) {
        sim::RiscvCore core;
        core.loadProgram(program);
        benchmark::DoNotOptimize(core.run());
    }
}
BENCHMARK(BM_RiscvConfigProgram);

void
printTables()
{
    // --- Table II -------------------------------------------------------
    Table t2({"accelerator", "cores", "SRAM (KB)", "freq", "area (mm2)",
              "DRAM", "tech", "peak GOPS"});
    for (const accel::HardwareConfig &cfg :
         {accel::mesorasiConfig(), accel::pointAccConfig(),
          accel::crescentConfig(), accel::fractalCloudConfig()}) {
        t2.addRow({cfg.name,
                   std::to_string(cfg.pe_rows) + "x" +
                       std::to_string(cfg.pe_cols),
                   Table::num(cfg.sram_kb, 1),
                   Table::num(cfg.freq_ghz, 0) + " GHz",
                   Table::num(cfg.area_mm2, 2),
                   "DDR4-2133 " + Table::num(cfg.dram_gbps, 0) + " GB/s",
                   std::to_string(cfg.technology_nm) + " nm",
                   Table::num(cfg.peakGops(), 0)});
    }
    fcb::emit(t2, "table2_hardware",
              "Table II: evaluated hardware accelerators");

    // --- Fig. 12: floorplan ---------------------------------------------
    Table fp({"module", "area (mm2)", "area %", "power (mW)",
              "power %"});
    double area = 0.0, power = 0.0;
    for (const accel::ModuleBudget &m : accel::fractalCloudFloorplan()) {
        area += m.area_mm2;
        power += m.power_mw;
    }
    for (const accel::ModuleBudget &m : accel::fractalCloudFloorplan()) {
        fp.addRow({m.module, Table::num(m.area_mm2, 2),
                   Table::num(100.0 * m.area_mm2 / area, 1),
                   Table::num(m.power_mw, 0),
                   Table::num(100.0 * m.power_mw / power, 1)});
    }
    fp.addRow({"TOTAL (Table II: 1.5 mm2 / 0.58 W)", Table::num(area, 2),
               "100.0", Table::num(power, 0), "100.0"});
    fcb::emit(fp, "fig12_floorplan",
              "Fig. 12: FractalCloud 28nm area / average power "
              "breakdown");

    // --- RISC-V configuration demo --------------------------------------
    using namespace sim::rv;
    std::vector<Insn> program;
    for (const Insn i : li(1, 0x4000'0000u))
        program.push_back(i);
    const std::uint32_t csr[4] = {33000, 8250, 32, 256}; // n, m, k, th
    for (int s = 0; s < 4; ++s) {
        for (const Insn i : li(2, csr[s]))
            program.push_back(i);
        program.push_back(sw(2, 1, s * 4));
    }
    program.push_back(ecall());
    sim::RiscvCore core;
    core.loadProgram(program);
    const std::uint64_t retired = core.run();
    Table rv({"CSR address", "value", "meaning"});
    const char *meaning[4] = {"input points", "sampled centers",
                              "neighbors k", "fractal threshold"};
    for (std::size_t i = 0; i < core.mmioWrites().size(); ++i) {
        char addr[16];
        std::snprintf(addr, sizeof(addr), "0x%08x",
                      core.mmioWrites()[i].address);
        rv.addRow({addr, std::to_string(core.mmioWrites()[i].value),
                   meaning[i]});
    }
    fcb::emit(rv, "riscv_config",
              "RISC-V control core: unit CSR writes (" +
                  std::to_string(retired) + " instructions retired)");
}

} // namespace

FC_BENCH_MAIN(printTables)
