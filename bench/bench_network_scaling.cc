/**
 * @file
 * Thread-scaling bench for pool-driven nn::Network inference.
 *
 * Reports end-to-end Network::run latency at 1/2/4/8 threads on a
 * scene-scale cloud, for the Fractal block backend (per-stage
 * re-partition + block ops + MLPs + pooling all on the pool) and the
 * global (None) backend, whose MLP/pooling rows still dispatch over
 * the pool. The determinism tests guarantee every row computes a
 * bit-identical InferenceResult; this table shows what the threads
 * buy. Speedups are relative to the 1-thread row of the same mode and
 * are bounded by the machine's actual core count (a 1-core container
 * shows ~1x everywhere).
 */

#include <chrono>
#include <memory>

#include "bench_common.h"
#include "core/parallel.h"
#include "nn/models.h"
#include "nn/network.h"

namespace {

constexpr std::size_t kScenePoints = 8192;

const unsigned kThreadSweep[] = {1, 2, 4, 8};

const fc::nn::Network &
network()
{
    static const fc::nn::Network net(fc::nn::pointNet2SemSeg(), 42);
    return net;
}

fc::nn::BackendOptions
backend(fc::part::Method method, fc::core::ThreadPool *pool)
{
    fc::nn::BackendOptions options;
    options.method = method;
    options.threshold = 256;
    options.pool = pool;
    return options;
}

/** Best-of-reps wall seconds for @p fn. */
template <typename Fn>
double
bestSeconds(Fn &&fn, int reps)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

void
scalingTable()
{
    const fc::data::PointCloud &scene = fcb::scene(kScenePoints);
    const fc::nn::Network &net = network();

    struct Mode
    {
        const char *name;
        fc::part::Method method;
    };
    const Mode modes[] = {{"fractal-blocks", fc::part::Method::Fractal},
                          {"global-ops", fc::part::Method::None}};

    fc::Table table({"mode", "threads", "ms", "points/s", "Mmacs",
                     "speedup"});
    for (const Mode &mode : modes) {
        double base = 0.0;
        for (const unsigned threads : kThreadSweep) {
            std::unique_ptr<fc::core::ThreadPool> pool;
            if (threads > 1)
                pool = std::make_unique<fc::core::ThreadPool>(threads);
            fc::nn::InferenceResult result;
            const double seconds = bestSeconds(
                [&] {
                    result = net.run(
                        scene, backend(mode.method, pool.get()));
                    benchmark::DoNotOptimize(
                        result.point_features.data().data());
                },
                2);
            if (threads == 1)
                base = seconds;
            table.addRow(
                {mode.name, std::to_string(threads),
                 fc::Table::num(seconds * 1e3),
                 fc::Table::num(static_cast<double>(kScenePoints) /
                                seconds / 1e3) +
                     "K",
                 fc::Table::num(static_cast<double>(result.total_macs) /
                                1e6),
                 fc::Table::mult(base / seconds)});
        }
    }
    fcb::emit(table, "bench_network_scaling",
              "Pool-driven Network inference scaling (hardware "
              "threads: " +
                  std::to_string(std::thread::hardware_concurrency()) +
                  ")");
}

/** Micro kernel: one pooled SA-stage MLP forward. */
void
BM_NetworkInferThreads(benchmark::State &state)
{
    const fc::data::PointCloud &scene = fcb::scene(4096);
    const unsigned threads = static_cast<unsigned>(state.range(0));
    std::unique_ptr<fc::core::ThreadPool> pool;
    if (threads > 1)
        pool = std::make_unique<fc::core::ThreadPool>(threads);
    for (auto _ : state) {
        const fc::nn::InferenceResult result = network().run(
            scene, backend(fc::part::Method::Fractal, pool.get()));
        benchmark::DoNotOptimize(result.embedding.data().data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(scene.size()));
}
BENCHMARK(BM_NetworkInferThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

} // namespace

FC_BENCH_MAIN(scalingTable)
