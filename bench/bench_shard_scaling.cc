/**
 * @file
 * Shard-scaling bench for the sharded, priority-aware serving
 * runtime.
 *
 * Sweeps the executor shard count {1, 2, 4} at a fixed 2 threads per
 * shard and drives a mixed-priority workload (4 Interactive : 2
 * Batch : 1 Background per round, the shape of a service with bulk
 * traffic behind a foreground API). For every (shard count, class)
 * pair the table reports submit->terminal latency percentiles:
 *
 *   - p50/p99 per priority class: Interactive should hold the
 *     tightest tail — the weighted aging scheduler gives it an 8:4:1
 *     share of each shard under backlog — while Background trades
 *     latency for not being starved,
 *   - clouds/s per class (throughput share), and
 *   - how the tail moves as shards are added: on real multicore
 *     hardware, queue contention drops and p99 tightens; a 1-core
 *     container honestly reports ~flat.
 *
 * Two locality-ablation configs ride along at the widest shard
 * count: workers unpinned (pin_shards=false) and workspace pools
 * collapsed onto shard 0 (shard_local_workspaces=false), isolating
 * what NUMA pinning and shard-local pools buy on the same workload.
 *
 * Results are byte-identical at every shard count and in every
 * ablation config — the sharded determinism tests enforce it — so the
 * table measures pure placement/scheduling effect. The CSV is gated
 * by scripts/check_bench_csv.sh in the Release perf-smoke CI step (15
 * rows: (3 shard counts + 2 ablations) x 3 classes); the numbers
 * themselves are hardware-bound and only uploaded as artifacts.
 */

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/pipeline.h"
#include "serve/async_pipeline.h"

namespace {

constexpr unsigned kThreadsPerShard = 2;
constexpr std::size_t kCloudPoints = 1024;
constexpr std::size_t kMinSamplesPerClass = 24;
const unsigned kShardCounts[] = {1, 2, 4};

/** Mixed round: 4 Interactive, 2 Batch, 1 Background. */
constexpr fc::serve::Priority kRound[] = {
    fc::serve::Priority::Interactive, fc::serve::Priority::Interactive,
    fc::serve::Priority::Batch,       fc::serve::Priority::Interactive,
    fc::serve::Priority::Batch,       fc::serve::Priority::Interactive,
    fc::serve::Priority::Background,
};

fc::BatchRequest
request()
{
    fc::BatchRequest req;
    req.sample_rate = 0.25;
    req.radius = 0.2f;
    req.neighbors = 16;
    return req;
}

/** Millisecond latency at percentile @p p (nearest-rank). */
double
percentileMs(std::vector<double> &latencies, double p)
{
    std::sort(latencies.begin(), latencies.end());
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(latencies.size() - 1) + 0.5);
    return latencies[std::min(rank, latencies.size() - 1)];
}

struct ClassMeasurement
{
    std::vector<double> latencies_ms[fc::serve::kNumPriorities];
    double wall_seconds = 0.0;
};

/** Drive mixed-priority rounds until every class has at least
 *  kMinSamplesPerClass retired requests. */
ClassMeasurement
measureShards(unsigned num_shards,
              const std::vector<fc::data::PointCloud> &clouds,
              bool pin_shards = true,
              bool shard_local_workspaces = true)
{
    fc::serve::ServeOptions options;
    options.pipeline.num_threads = kThreadsPerShard;
    options.num_shards = num_shards;
    options.queue_capacity = 64;
    options.pin_shards = pin_shards;
    options.shard_local_workspaces = shard_local_workspaces;
    fc::serve::AsyncPipeline server(options);

    ClassMeasurement measurement;
    std::size_t next_cloud = 0;
    const auto start = std::chrono::steady_clock::now();
    const auto done = [&] {
        for (const auto &lat : measurement.latencies_ms)
            if (lat.size() < kMinSamplesPerClass)
                return false;
        return true;
    };
    while (!done()) {
        std::vector<std::pair<fc::serve::Ticket, unsigned>> tickets;
        for (const fc::serve::Priority priority : kRound) {
            tickets.emplace_back(
                server.submit(clouds[next_cloud++ % clouds.size()],
                              request(), std::nullopt, priority),
                static_cast<unsigned>(priority));
        }
        for (const auto &[ticket, cls] : tickets) {
            const fc::serve::RequestOutcome outcome =
                server.wait(ticket);
            const std::chrono::duration<double, std::milli> latency =
                outcome.timing.finished - outcome.timing.submitted;
            measurement.latencies_ms[cls].push_back(latency.count());
        }
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    measurement.wall_seconds = elapsed.count();
    return measurement;
}

void
shardTable()
{
    std::vector<fc::data::PointCloud> clouds;
    for (std::uint64_t seed = 0; seed < 8; ++seed)
        clouds.push_back(
            fc::data::makeS3disScene(kCloudPoints, 400 + seed));

    fc::Table table({"shards", "priority", "p50 ms", "p99 ms",
                     "clouds/s", "n"});
    const auto addRows = [&](const std::string &label,
                             ClassMeasurement &m) {
        for (unsigned cls = 0; cls < fc::serve::kNumPriorities;
             ++cls) {
            std::vector<double> &lat = m.latencies_ms[cls];
            table.addRow(
                {label,
                 fc::serve::priorityName(
                     static_cast<fc::serve::Priority>(cls)),
                 fc::Table::num(percentileMs(lat, 0.50)),
                 fc::Table::num(percentileMs(lat, 0.99)),
                 fc::Table::num(static_cast<double>(lat.size()) /
                                m.wall_seconds),
                 std::to_string(lat.size())});
        }
    };
    for (const unsigned shards : kShardCounts) {
        ClassMeasurement m = measureShards(shards, clouds);
        addRows(std::to_string(shards), m);
    }

    // Locality ablation at the widest shard count: the same workload
    // with worker pinning off, and with the per-shard workspace pools
    // collapsed onto shard 0. Results stay byte-identical in every
    // configuration (the locality tests enforce it); the delta these
    // rows show is pure placement effect — on single-node or 1-core
    // hardware an honest ~flat, on multi-socket hardware the cost of
    // cross-node traffic.
    const unsigned ablate_shards =
        kShardCounts[std::size(kShardCounts) - 1];
    ClassMeasurement nopin = measureShards(
        ablate_shards, clouds, /*pin_shards=*/false,
        /*shard_local_workspaces=*/true);
    addRows(std::to_string(ablate_shards) + "/nopin", nopin);
    ClassMeasurement shared_ws = measureShards(
        ablate_shards, clouds, /*pin_shards=*/true,
        /*shard_local_workspaces=*/false);
    addRows(std::to_string(ablate_shards) + "/shared-ws", shared_ws);
    fcb::emit(table, "bench_shard_scaling",
              "Sharded serving latency per priority class, " +
                  std::to_string(kThreadsPerShard) +
                  " threads/shard (hardware threads: " +
                  std::to_string(std::thread::hardware_concurrency()) +
                  ")");
}

/** Micro kernel: submit/wait round-trip across shard counts. */
void
BM_ShardedSubmitWaitRoundtrip(benchmark::State &state)
{
    fc::serve::ServeOptions options;
    options.pipeline.num_threads = kThreadsPerShard;
    options.num_shards = static_cast<unsigned>(state.range(0));
    fc::serve::AsyncPipeline server(options);
    const fc::data::PointCloud cloud = fc::data::makeS3disScene(512, 3);
    std::uint64_t key = 0;
    for (auto _ : state) {
        // Rotate the placement key so successive requests exercise
        // different shards (and their separate queues).
        const fc::serve::RequestOutcome outcome = server.wait(
            server.submit(cloud, request(), std::nullopt,
                          fc::serve::Priority::Interactive, ++key));
        benchmark::DoNotOptimize(outcome.result.sampled.indices.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedSubmitWaitRoundtrip)->Arg(1)->Arg(2)->Arg(4);

} // namespace

FC_BENCH_MAIN(shardTable)
