/**
 * @file
 * Reproduces Fig. 5: the serial sort count of the KD-tree workflow
 * versus the level-parallel traversal count of Fractal.
 *
 * Paper numbers: BS=64 at 1K points -> 15 sorts vs 4 traversals;
 * BS=256 at 289K points -> 2047 sorts vs 11 traversals.
 */

#include "bench_common.h"

#include "common/rng.h"
#include "partition/partitioner.h"

namespace {

using namespace fc;

data::PointCloud
uniformCloud(std::size_t n)
{
    Pcg32 rng(3);
    data::PointCloud cloud;
    for (std::size_t i = 0; i < n; ++i)
        cloud.addPoint({rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)});
    return cloud;
}

void
BM_FractalTraversal289k(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(289000);
    const auto p = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = 256;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            p->partition(cloud, config).stats.traversal_passes);
}
BENCHMARK(BM_FractalTraversal289k)->Unit(benchmark::kMillisecond);

void
printTables()
{
    Table t({"input", "block size", "KD-tree sorts",
             "KD sort compares", "fractal traversals",
             "fractal elements touched", "op-count ratio"});

    struct Case
    {
        std::size_t n;
        std::uint32_t bs;
        bool uniform; // the 1K case of Fig. 5 uses generic data
    };
    for (const Case c : {Case{1024, 64, true}, Case{289000, 256, false},
                         Case{16384, 256, false},
                         Case{66000, 256, false}}) {
        const data::PointCloud cloud =
            c.uniform ? uniformCloud(c.n)
                      : data::PointCloud(fcb::scene(c.n));
        part::PartitionConfig config;
        config.threshold = c.bs;
        const part::PartitionResult kd =
            part::makePartitioner(part::Method::KdTree)
                ->partition(cloud, config);
        const part::PartitionResult fractal =
            part::makePartitioner(part::Method::Fractal)
                ->partition(cloud, config);
        t.addRow({std::to_string(c.n / 1000) + "K (" +
                      (c.uniform ? "uniform" : "scene") + ")",
                  std::to_string(c.bs),
                  std::to_string(kd.stats.num_sorts),
                  std::to_string(kd.stats.sort_compares),
                  std::to_string(fractal.stats.traversal_passes),
                  std::to_string(fractal.stats.elements_traversed),
                  Table::mult(static_cast<double>(kd.stats.num_sorts) /
                              fractal.stats.traversal_passes)});
    }
    fcb::emit(t, "fig05_sort_vs_traverse",
              "Fig. 5: exclusive KD-tree sorting vs inclusive Fractal "
              "traversal");
}

} // namespace

FC_BENCH_MAIN(printTables)
