/**
 * @file
 * Reproduces Fig. 16: across the three dataset families, point-
 * operation speedup of each partitioning method (bars; uniform = 1x)
 * and preprocessing/partitioning speedup (dots; KD-tree = 1x).
 *
 * Paper shape: Fractal partitions 133x faster than KD-tree and 14.9x
 * faster than octree, and improves point operations 4.4x over uniform
 * and 2.1x over octree.
 */

#include "bench_common.h"

#include "accel/accelerator.h"
#include "dataset/modelnet.h"
#include "dataset/shapenet.h"
#include "nn/models.h"

namespace {

using namespace fc;

void
BM_OctreePartition(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(33000);
    const auto p = part::makePartitioner(part::Method::Octree);
    part::PartitionConfig config;
    config.threshold = 256;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            p->partition(cloud, config).tree.numPoints());
}
BENCHMARK(BM_OctreePartition)->Unit(benchmark::kMillisecond);

/** Per-method simulated run with the method swapped into our HW. */
accel::RunReport
runWithMethod(part::Method method, const nn::ModelConfig &model,
              const data::PointCloud &cloud, std::uint32_t threshold)
{
    accel::Policy p = accel::makeFractalCloud(threshold).policy();
    p.partition_method = method;
    return accel::makeFractalCloudWithPolicy(p).run(model, cloud);
}

void
printTables()
{
    struct Family
    {
        const char *name;
        data::PointCloud cloud;
        nn::ModelConfig model;
        std::uint32_t threshold;
    };
    std::vector<Family> families;
    families.push_back({"ModelNet40-like (1K)",
                        data::makeModelNetObject(4, 1024, 5),
                        nn::pointNet2Classification(), 64});
    families.push_back({"ShapeNet-like (2K)",
                        data::makeShapeNetObject(0, 2048, 5),
                        nn::pointNet2PartSeg(), 64});
    families.push_back({"S3DIS-like (33K)",
                        data::PointCloud(fcb::scene(33000)),
                        nn::pointNeXtSemSeg(), 256});

    Table t({"dataset", "method", "point-op speedup (vs uniform)",
             "partition speedup (vs KD-tree)"});
    for (Family &f : families) {
        std::map<part::Method, accel::RunReport> reports;
        for (const part::Method m :
             {part::Method::Uniform, part::Method::Octree,
              part::Method::KdTree, part::Method::Fractal}) {
            reports.emplace(
                m, runWithMethod(m, f.model, f.cloud, f.threshold));
        }
        const double uni_pointops = sim::cyclesToMs(
            reports.at(part::Method::Uniform).pointOpCycles(), 1.0);
        const double kd_partition =
            reports.at(part::Method::KdTree)
                .latencyMs(accel::Phase::Partition);
        for (const part::Method m :
             {part::Method::Uniform, part::Method::Octree,
              part::Method::KdTree, part::Method::Fractal}) {
            const accel::RunReport &r = reports.at(m);
            const double pointops =
                sim::cyclesToMs(r.pointOpCycles(), 1.0);
            const double partition =
                r.latencyMs(accel::Phase::Partition);
            t.addRow({f.name, part::methodName(m),
                      Table::mult(uni_pointops / pointops),
                      partition > 0.0
                          ? Table::mult(kd_partition / partition)
                          : "-"});
        }
    }
    fcb::emit(t, "fig16_partition_ablation",
              "Fig. 16: point-operation speedup (bars) and "
              "partitioning speedup (dots) by method");
}

} // namespace

FC_BENCH_MAIN(printTables)
