/**
 * @file
 * Metrics-overhead bench — the observability layer's cost contract.
 *
 * The serve path (partition -> block FPS -> ball query -> gather,
 * no network stage) is driven through AsyncPipeline twice: once with
 * metrics sampling off and once with it on, p50/p95 of per-request
 * latency measured for each. Per trial the p50 is the median of
 * kRequests sequential submit+wait round trips; per mode the
 * reported value is the best of kTrials trials (min-of-medians, the
 * standard noise-rejection reduction for CI runners).
 *
 * This binary is a HARD GATE, not a smoke test: it exits non-zero
 * when the instrumented p50 exceeds the uninstrumented p50 by more
 * than the documented bound
 *
 *     on_p50 <= off_p50 * 1.25 + 100 us
 *
 * (relative headroom for scheduler jitter on shared CI runners, plus
 * a small absolute allowance so sub-millisecond requests are not
 * gated on noise). The real overhead is a few relaxed atomic RMWs
 * per stage against millisecond-scale requests — orders of magnitude
 * inside the bound — so a failure means a regression in the metrics
 * hot path (e.g. a lock or an allocation crept in), not noise.
 *
 * The google-benchmark kernels additionally time the raw instrument
 * mutations (counter add, histogram record, and the sampling-off
 * no-op path) for the uploaded artifacts.
 */

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "core/metrics.h"
#include "serve/async_pipeline.h"

namespace {

namespace metrics = fc::core::metrics;

constexpr std::size_t kPoints = 2048;
constexpr int kTrials = 3;
constexpr int kRequests = 32;
constexpr double kRelBound = 1.25; // documented: on <= off*1.25+100us
constexpr double kAbsSlackUs = 100.0;

// ---- Micro kernels: raw instrument mutation cost ----------------------

void
BM_CounterAdd(benchmark::State &state)
{
    metrics::setSampling(true);
    metrics::Counter c;
    for (auto _ : state)
        c.add();
    benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAdd);

void
BM_CounterAddSamplingOff(benchmark::State &state)
{
    metrics::setSampling(false);
    metrics::Counter c;
    for (auto _ : state)
        c.add();
    metrics::setSampling(true);
    benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_CounterAddSamplingOff);

void
BM_HistogramRecord(benchmark::State &state)
{
    metrics::setSampling(true);
    metrics::Histogram h;
    std::uint64_t v = 1;
    for (auto _ : state) {
        h.record(v);
        v = (v * 2862933555777941757ull + 3037000493ull) >> 32;
    }
    benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_HistogramRecord);

// ---- Serve-path p50 under each mode -----------------------------------

struct LatencyStats
{
    double p50_us = 0.0;
    double p95_us = 0.0;
};

/** One trial: kRequests sequential submit+wait round trips. */
LatencyStats
runTrial(fc::serve::AsyncPipeline &pipeline,
         const std::shared_ptr<const fc::data::PointCloud> &cloud)
{
    std::vector<double> us;
    us.reserve(kRequests);
    for (int r = 0; r < kRequests; ++r) {
        const auto start = std::chrono::steady_clock::now();
        const fc::serve::Ticket ticket = pipeline.submitShared(cloud);
        const fc::serve::RequestOutcome outcome =
            pipeline.wait(ticket);
        const std::chrono::duration<double, std::micro> elapsed =
            std::chrono::steady_clock::now() - start;
        fc_assert(outcome.state == fc::serve::RequestState::Done,
                  "bench request failed");
        us.push_back(elapsed.count());
    }
    std::sort(us.begin(), us.end());
    return {us[us.size() / 2],
            us[static_cast<std::size_t>(
                static_cast<double>(us.size() - 1) * 0.95)]};
}

/** Best-of-kTrials p50/p95 with sampling set to @p sampling. */
LatencyStats
measureMode(bool sampling)
{
    metrics::setSampling(sampling);
    fc::serve::ServeOptions options;
    options.pipeline.num_threads = 2;
    options.pipeline.threshold = 256;
    options.num_shards = 1;
    const auto cloud =
        std::make_shared<const fc::data::PointCloud>(fcb::scene(kPoints));

    fc::serve::AsyncPipeline pipeline(options);
    // Warm-up: grow workspaces so trials measure steady state.
    for (int r = 0; r < 8; ++r)
        (void)pipeline.wait(pipeline.submitShared(cloud));

    LatencyStats best;
    for (int t = 0; t < kTrials; ++t) {
        const LatencyStats trial = runTrial(pipeline, cloud);
        if (t == 0 || trial.p50_us < best.p50_us)
            best = trial;
    }
    metrics::setSampling(true);
    return best;
}

void
overheadTable()
{
    const LatencyStats off = measureMode(false);
    const LatencyStats on = measureMode(true);
    const double bound_us = off.p50_us * kRelBound + kAbsSlackUs;
    const double ratio = on.p50_us / off.p50_us;

    fc::Table table(
        {"mode", "p50 us", "p95 us", "trials", "reqs/trial"});
    table.addRow({"serve-metrics-off", fc::Table::num(off.p50_us),
                  fc::Table::num(off.p95_us), std::to_string(kTrials),
                  std::to_string(kRequests)});
    table.addRow({"serve-metrics-on", fc::Table::num(on.p50_us),
                  fc::Table::num(on.p95_us), std::to_string(kTrials),
                  std::to_string(kRequests)});
    table.addRow({"overhead-ratio", fc::Table::num(ratio),
                  fc::Table::num(bound_us), std::to_string(kTrials),
                  std::to_string(kRequests)});
    fcb::emit(table, "bench_metrics_overhead",
              "Metrics overhead: serve p50 with sampling off vs on "
              "(gate: on <= off*1.25 + 100us)");

    if (on.p50_us > bound_us) {
        std::fprintf(stderr,
                     "FAIL: metrics-on p50 %.1f us exceeds bound "
                     "%.1f us (metrics-off p50 %.1f us, documented "
                     "bound off*%.2f + %.0f us)\n",
                     on.p50_us, bound_us, off.p50_us, kRelBound,
                     kAbsSlackUs);
        std::exit(1);
    }
    std::printf("metrics overhead gate OK: on p50 %.1f us vs off "
                "p50 %.1f us (bound %.1f us)\n",
                on.p50_us, off.p50_us, bound_us);
}

} // namespace

FC_BENCH_MAIN(overheadTable)
