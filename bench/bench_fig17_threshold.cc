/**
 * @file
 * Reproduces Fig. 17: the threshold (th) trade-off between hardware
 * speedup and network accuracy for PointNeXt segmentation.
 *
 * Paper shape: th=4K preserves accuracy with only 4.6x speedup; th=8
 * over-partitions (random-like sampling, >8% accuracy loss) despite
 * 21x speedup; th=256 is the large-scale sweet spot (th=64 for
 * object-scale inputs).
 */

#include "bench_common.h"

#include "accel/accelerator.h"
#include "nn/classifier.h"
#include "nn/network.h"

namespace {

using namespace fc;

constexpr std::size_t kSimPoints = 131000;  // hardware sweep
constexpr std::size_t kProxyPoints = 2048;  // accuracy proxy

void
BM_FractalThreshold256(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(kSimPoints);
    const auto p = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = 256;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            p->partition(cloud, config).tree.leaves().size());
}
BENCHMARK(BM_FractalThreshold256)->Unit(benchmark::kMillisecond);

/**
 * Feature-fidelity proxy: mean per-point cosine similarity of the
 * block-backend segmentation features against the exact global-ops
 * pipeline on the same scene. 100% = indistinguishable from global
 * ops; lower values correspond to accuracy loss after retraining.
 */
double
featureFidelity(const nn::Network &net,
                const nn::BackendOptions &backend,
                const nn::Tensor &reference,
                const data::PointCloud &scene)
{
    const nn::InferenceResult r = net.run(scene, backend);
    double total = 0.0;
    for (std::size_t i = 0; i < scene.size(); ++i) {
        double dot = 0.0, na = 0.0, nb = 0.0;
        for (std::size_t c = 0; c < reference.cols(); ++c) {
            const double a = reference.at(i, c);
            const double b = r.point_features.at(i, c);
            dot += a * b;
            na += a * a;
            nb += b * b;
        }
        total += dot / (std::sqrt(na * nb) + 1e-12);
    }
    return total / static_cast<double>(scene.size());
}

void
printTables()
{
    const nn::ModelConfig model = nn::pointNeXtSemSeg();
    const data::PointCloud &cloud = fcb::scene(kSimPoints);
    const nn::Network net(nn::pointNet2SemSeg(), 42);

    // Baseline: no fractal (global ops on our hardware).
    accel::Policy global_policy = accel::makeFractalCloud().policy();
    global_policy.partition_method = part::Method::None;
    global_policy.block_sampling = false;
    global_policy.block_grouping = false;
    global_policy.block_interpolation = false;
    global_policy.block_gathering = false;
    const double base_ms =
        accel::makeFractalCloudWithPolicy(global_policy)
            .run(model, cloud)
            .totalLatencyMs();
    const data::PointCloud proxy_scene =
        data::makeS3disScene(kProxyPoints, 51);
    const nn::Tensor reference =
        net.run(proxy_scene).point_features;

    Table t({"threshold th", "speedup (vs no fractal)",
             "feature fidelity", "fidelity delta"});
    t.addRow({"no fractal", "1.0x", "100.0%", "0.0"});
    for (const std::uint32_t th : {4096u, 1280u, 512u, 256u, 64u, 8u}) {
        const double ms = accel::makeFractalCloud(th)
                              .run(model, cloud)
                              .totalLatencyMs();
        nn::BackendOptions backend;
        backend.method = part::Method::Fractal;
        // The proxy scene is 16x smaller than the simulated scene;
        // scale th to keep blocks-per-cloud comparable.
        backend.threshold = std::max(2u, th / 16u);
        const double fidelity =
            featureFidelity(net, backend, reference, proxy_scene);
        t.addRow({std::to_string(th), Table::mult(base_ms / ms),
                  Table::num(100.0 * fidelity, 1) + "%",
                  Table::num(100.0 * (fidelity - 1.0), 1)});
    }
    fcb::emit(t, "fig17_threshold",
              "Fig. 17: threshold selection vs speedup and "
              "feature-fidelity proxy (PointNeXt seg sim @131K, "
              "fidelity on a 2K proxy scene)");
}

} // namespace

FC_BENCH_MAIN(printTables)
