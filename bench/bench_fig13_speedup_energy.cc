/**
 * @file
 * Reproduces Fig. 13 (and prints Table I): speedup and energy saving
 * of Mesorasi, PointAcc, Crescent, and FractalCloud over the GPU
 * baseline for the eleven workload points of the evaluation.
 *
 * Paper shape: at small scale every accelerator is >= GPU, ours
 * leads; at large scale PointAcc/Crescent fall to <= 1x while ours
 * grows to tens of x; energy savings are orders of magnitude for all
 * accelerators with ours far ahead.
 */

#include "bench_common.h"

#include "accel/accelerator.h"
#include "nn/models.h"

namespace {

using namespace fc;

void
BM_FullStackSim33k(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(33000);
    const nn::ModelConfig model = nn::pointNeXtSemSeg();
    const auto ours = accel::makeFractalCloud(256);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ours.run(model, cloud).totalCycles());
}
BENCHMARK(BM_FullStackSim33k)->Unit(benchmark::kMillisecond);

void
printTables()
{
    // --- Table I ---------------------------------------------------------
    Table t1({"model", "notation", "task", "dataset (synthetic)",
              "scene"});
    t1.addRow({"PointNet++", "PN++ (c)", "classification",
               "ModelNet40-like", "object"});
    t1.addRow({"PointNeXt", "PNXt (c)", "classification",
               "ModelNet40-like", "object"});
    t1.addRow({"PointNet++", "PN++ (ps)", "part segmentation",
               "ShapeNet-like", "object"});
    t1.addRow({"PointNeXt", "PNXt (ps)", "part segmentation",
               "ShapeNet-like", "object"});
    t1.addRow({"PointNet++", "PN++ (s)", "segmentation", "S3DIS-like",
               "indoor"});
    t1.addRow({"PointNeXt", "PNXt (s)", "segmentation", "S3DIS-like",
               "indoor"});
    t1.addRow({"PointVector", "PVr (s)", "segmentation", "S3DIS-like",
               "indoor"});
    fcb::emit(t1, "table1_workloads",
              "Table I: evaluated networks and datasets");

    // --- Fig. 13 ----------------------------------------------------------
    struct Point
    {
        nn::ModelConfig model;
        std::size_t n;
    };
    const std::vector<Point> points = {
        {nn::pointNet2Classification(), 1000},
        {nn::pointNeXtClassification(), 2000},
        {nn::pointNet2PartSeg(), 2000},
        {nn::pointNeXtPartSeg(), 4000},
        {nn::pointNet2SemSeg(), 33000},
        {nn::pointNeXtSemSeg(), 131000},
        {nn::pointVectorSemSeg(), 289000},
        {nn::pointNeXtSemSeg(), 8000},
        {nn::pointNeXtSemSeg(), 33000},
        {nn::pointNeXtSemSeg(), 289000},
        {nn::pointVectorSemSeg(), 33000},
        {nn::pointVectorSemSeg(), 131000},
    };

    Table t({"workload", "points", "GPU (ms)", "Meso speedup",
             "PA speedup", "Cres speedup", "FC speedup", "Meso energy",
             "PA energy", "Cres energy", "FC energy"});

    double geo_speedup = 1.0, geo_energy = 1.0;
    double geo_speedup_pa = 1.0, geo_speedup_cres = 1.0;
    int count = 0;

    for (const Point &pt : points) {
        const data::PointCloud &cloud = fcb::scene(pt.n);
        const std::uint32_t th = pt.n <= 4000 ? 64 : 256;

        const accel::RunReport gpu = accel::gpuRun(pt.model, pt.n);
        const accel::RunReport meso =
            accel::makeMesorasi().run(pt.model, cloud);
        const accel::RunReport pa =
            accel::makePointAcc().run(pt.model, cloud);
        const accel::RunReport cres =
            accel::makeCrescent().run(pt.model, cloud);
        const accel::RunReport ours =
            accel::makeFractalCloud(th).run(pt.model, cloud);

        const double g_lat = gpu.totalLatencyMs();
        const double g_e = gpu.totalEnergyMj();
        t.addRow({pt.model.name, std::to_string(pt.n / 1000) + "K",
                  Table::num(g_lat, 1),
                  Table::mult(g_lat / meso.totalLatencyMs()),
                  Table::mult(g_lat / pa.totalLatencyMs()),
                  Table::mult(g_lat / cres.totalLatencyMs()),
                  Table::mult(g_lat / ours.totalLatencyMs()),
                  Table::mult(g_e / meso.totalEnergyMj(), 0),
                  Table::mult(g_e / pa.totalEnergyMj(), 0),
                  Table::mult(g_e / cres.totalEnergyMj(), 0),
                  Table::mult(g_e / ours.totalEnergyMj(), 0)});

        geo_speedup *= g_lat / ours.totalLatencyMs();
        geo_energy *= g_e / ours.totalEnergyMj();
        geo_speedup_pa *= pa.totalLatencyMs() / ours.totalLatencyMs();
        geo_speedup_cres *=
            cres.totalLatencyMs() / ours.totalLatencyMs();
        ++count;
    }
    fcb::emit(t, "fig13_speedup_energy",
              "Fig. 13: speedup and energy saving vs GPU (higher is "
              "better)");

    Table avg({"summary metric", "value",
               "paper reference (average)"});
    avg.addRow({"FC geomean speedup vs GPU",
                Table::mult(std::pow(geo_speedup, 1.0 / count)),
                "19.4x small / 27.4x large"});
    avg.addRow({"FC geomean speedup vs PointAcc",
                Table::mult(std::pow(geo_speedup_pa, 1.0 / count)),
                "7.6x small / 63.4x large"});
    avg.addRow({"FC geomean speedup vs Crescent",
                Table::mult(std::pow(geo_speedup_cres, 1.0 / count)),
                "2.7x small / 27.8x large"});
    avg.addRow({"FC geomean energy saving vs GPU",
                Table::mult(std::pow(geo_energy, 1.0 / count), 0),
                "380x small / 1893x large"});
    fcb::emit(avg, "fig13_summary", "Fig. 13 summary (geomeans)");
}

} // namespace

FC_BENCH_MAIN(printTables)
