/**
 * @file
 * Reproduces the §VI-C RSPU ablation: the window-check mechanism's
 * effect on FPS (paper: 3.6x speedup, 3.4x memory-access reduction
 * over PointAcc-style iteration) and coordinate reuse's effect on
 * neighbor-search memory accesses (paper: 7.6x reduction), plus the
 * end-to-end contribution (1.37x speedup / 1.48x energy).
 */

#include "bench_common.h"

#include "accel/accelerator.h"
#include "nn/models.h"
#include "ops/fps.h"
#include "partition/fractal.h"

namespace {

using namespace fc;

constexpr std::size_t kPoints = 33000;

void
BM_FpsWindowCheckOn(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(4000);
    ops::FpsOptions opt;
    opt.window_check = true;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ops::farthestPointSample(cloud, 1000, opt).indices.size());
}
BENCHMARK(BM_FpsWindowCheckOn)->Unit(benchmark::kMillisecond);

void
BM_FpsWindowCheckOff(benchmark::State &state)
{
    const data::PointCloud &cloud = fcb::scene(4000);
    ops::FpsOptions opt;
    opt.window_check = false;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            ops::farthestPointSample(cloud, 1000, opt).indices.size());
}
BENCHMARK(BM_FpsWindowCheckOff)->Unit(benchmark::kMillisecond);

void
printTables()
{
    const nn::ModelConfig model = nn::pointNeXtSemSeg();
    const data::PointCloud &cloud = fcb::scene(kPoints);

    // --- Functional counter comparison (block FPS, high rate to make
    // skipping visible, mirroring deep sampling stages). -----------------
    part::FractalPartitioner fp;
    part::PartitionConfig pconfig;
    pconfig.threshold = 256;
    const part::PartitionResult part = fp.partition(cloud, pconfig);

    ops::FpsOptions with_skip;
    with_skip.window_check = true;
    ops::FpsOptions no_skip;
    no_skip.window_check = false;
    const auto skip_on =
        ops::blockFarthestPointSample(cloud, part.tree, 0.5, with_skip);
    const auto skip_off =
        ops::blockFarthestPointSample(cloud, part.tree, 0.5, no_skip);

    Table fnc({"metric", "window-check off", "window-check on",
               "reduction"});
    fnc.addRow(
        {"candidate visits (rate 0.5)",
         std::to_string(skip_off.stats.points_visited),
         std::to_string(skip_on.stats.points_visited),
         Table::mult(static_cast<double>(
                         skip_off.stats.points_visited) /
                     static_cast<double>(
                         skip_on.stats.points_visited))});
    fnc.addRow({"skipped candidates", "0",
                std::to_string(skip_on.stats.skipped), "-"});
    fcb::emit(fnc, "rspu_functional",
              "RSPU window-check: functional candidate-visit "
              "reduction");

    // --- Hardware-level ablation. ----------------------------------------
    accel::Policy full = accel::makeFractalCloud(256).policy();
    accel::Policy no_skip_p = full;
    no_skip_p.window_check = false;
    accel::Policy no_reuse = full;
    no_reuse.coord_reuse = false;
    accel::Policy neither = full;
    neither.window_check = false;
    neither.coord_reuse = false;

    const accel::RunReport r_full =
        accel::makeFractalCloudWithPolicy(full).run(model, cloud);
    const accel::RunReport r_noskip =
        accel::makeFractalCloudWithPolicy(no_skip_p).run(model, cloud);
    const accel::RunReport r_noreuse =
        accel::makeFractalCloudWithPolicy(no_reuse).run(model, cloud);
    const accel::RunReport r_neither =
        accel::makeFractalCloudWithPolicy(neither).run(model, cloud);

    Table hw({"configuration", "sample (ms)", "group+interp (ms)",
              "neighbor-search SRAM (MB)", "total (ms)",
              "energy (mJ)"});
    auto search_mb = [](const accel::RunReport &r) {
        return static_cast<double>(
                   r.sramBytes(accel::Phase::Group) +
                   r.sramBytes(accel::Phase::Interpolate)) /
               1e6;
    };
    auto add = [&](const char *name, const accel::RunReport &r) {
        hw.addRow({name, Table::num(r.latencyMs(accel::Phase::Sample), 3),
                   Table::num(r.latencyMs(accel::Phase::Group) +
                                  r.latencyMs(accel::Phase::Interpolate),
                              3),
                   Table::num(search_mb(r), 1),
                   Table::num(r.totalLatencyMs(), 2),
                   Table::num(r.totalEnergyMj(), 2)});
    };
    add("no reuse, no skip", r_neither);
    add("+ skip only", r_noreuse);
    add("+ reuse only", r_noskip);
    add("full RSPU", r_full);

    fcb::emit(hw, "rspu_ablation",
              "RSPU ablation (paper: skip 3.6x FPS speedup / 3.4x "
              "access cut; reuse 7.6x access cut; end-to-end 1.37x / "
              "1.48x)");

    Table sum({"metric", "measured", "paper"});
    sum.addRow({"neighbor-search SRAM traffic cut (reuse)",
                Table::mult(search_mb(r_noreuse) / search_mb(r_full)),
                "7.6x"});
    sum.addRow({"end-to-end speedup (full RSPU vs neither)",
                Table::mult(r_neither.totalLatencyMs() /
                            r_full.totalLatencyMs()),
                "1.37x"});
    sum.addRow({"end-to-end energy saving",
                Table::mult(r_neither.totalEnergyMj() /
                            r_full.totalEnergyMj()),
                "1.48x"});
    fcb::emit(sum, "rspu_summary", "RSPU ablation summary");
}

} // namespace

FC_BENCH_MAIN(printTables)
