/**
 * @file
 * Eager vs delayed set-abstraction execution (nn::Aggregation).
 *
 * For each Table I model the table reports both execution orders on
 * the same scene: end-to-end latency, the number of rows fed to the
 * SA MLPs (the delayed order's whole point — unique input points
 * instead of gathered (center, neighbor) pairs), total MACs, and the
 * derived row-reduction and speedup factors.
 *
 * The row counts are hardware-independent, so the binary doubles as
 * a correctness gate: it exits non-zero if any model's delayed run
 * does not execute strictly fewer SA MLP rows than its eager run.
 * Wall-clock speedup is machine-dependent and NOT gated (small
 * models on fast caches can hide the FLOP saving behind the gather).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "nn/models.h"
#include "nn/network.h"

namespace {

constexpr std::size_t kScenePoints = 4096;

/** Best-of-reps wall seconds for @p fn. */
template <typename Fn>
double
bestSeconds(Fn &&fn, int reps)
{
    double best = 1e30;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

void
delayedTable()
{
    const fc::data::PointCloud &scene = fcb::scene(kScenePoints);

    struct ModelRow
    {
        const char *name;
        fc::nn::ModelConfig config;
    };
    const ModelRow models[] = {
        {"pointnet2-cls", fc::nn::pointNet2Classification()},
        {"pointnet2-semseg", fc::nn::pointNet2SemSeg()},
        {"pointnext-semseg", fc::nn::pointNeXtSemSeg()},
    };

    fc::Table table({"model", "aggregation", "ms", "sa_mlp_rows",
                     "Mmacs", "row_reduction", "speedup"});
    bool rows_ok = true;
    for (const ModelRow &model : models) {
        const fc::nn::Network net(model.config, 42);
        double eager_s = 0.0;
        std::uint64_t eager_rows = 0;

        for (const fc::nn::Aggregation mode :
             {fc::nn::Aggregation::Eager,
              fc::nn::Aggregation::Delayed}) {
            fc::nn::BackendOptions backend;
            backend.method = fc::part::Method::Fractal;
            backend.threshold = 256;
            backend.aggregation = mode;

            fc::nn::InferenceResult result;
            const double seconds = bestSeconds(
                [&] {
                    result = net.run(scene, backend);
                    benchmark::DoNotOptimize(
                        result.embedding.data().data());
                },
                2);

            const bool eager = mode == fc::nn::Aggregation::Eager;
            if (eager) {
                eager_s = seconds;
                eager_rows = result.sa_mlp_rows;
            } else if (result.sa_mlp_rows >= eager_rows) {
                rows_ok = false;
            }
            table.addRow(
                {model.name, eager ? "eager" : "delayed",
                 fc::Table::num(seconds * 1e3),
                 std::to_string(result.sa_mlp_rows),
                 fc::Table::num(
                     static_cast<double>(result.total_macs) / 1e6),
                 eager ? "1x"
                       : fc::Table::mult(
                             static_cast<double>(eager_rows) /
                             static_cast<double>(result.sa_mlp_rows)),
                 eager ? "1x" : fc::Table::mult(eager_s / seconds)});
        }
    }
    fcb::emit(table, "bench_delayed_aggregation",
              "Eager vs delayed aggregation (unique-point MLPs before "
              "grouping), " +
                  std::to_string(kScenePoints) + "-point scene");
    if (!rows_ok) {
        std::fprintf(stderr,
                     "FAIL: delayed aggregation did not execute "
                     "strictly fewer SA MLP rows than eager\n");
        std::exit(1);
    }
}

/** Micro kernel: one end-to-end delayed inference. */
void
BM_DelayedInfer(benchmark::State &state)
{
    const fc::data::PointCloud &scene = fcb::scene(2048);
    static const fc::nn::Network net(fc::nn::pointNet2SemSeg(), 42);
    fc::nn::BackendOptions backend;
    backend.method = fc::part::Method::Fractal;
    backend.threshold = 256;
    backend.aggregation = state.range(0) == 0
                              ? fc::nn::Aggregation::Eager
                              : fc::nn::Aggregation::Delayed;
    for (auto _ : state) {
        const fc::nn::InferenceResult result = net.run(scene, backend);
        benchmark::DoNotOptimize(result.embedding.data().data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(scene.size()));
}
BENCHMARK(BM_DelayedInfer)->Arg(0)->Arg(1);

} // namespace

FC_BENCH_MAIN(delayedTable)
