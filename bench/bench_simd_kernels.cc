/**
 * @file
 * SIMD kernel bench: scalar vs dispatched kernels, per kernel and end
 * to end.
 *
 * Each kernel row times the same workload twice — once with the
 * dispatch level forced to Scalar, once at the best level the machine
 * supports — and prints both times plus the speedup. The end-to-end
 * rows contrast the Mixed and Fp16 inference modes at the default
 * level.
 *
 * CI contract (Release perf-smoke): the CSV shape is gated by
 * scripts/check_bench_csv.sh, and when the AVX2 kernels are active
 * this binary exits non-zero unless the FPS distance-update and
 * LinearRelu rows reach a 2x speedup over scalar — the floor the
 * ISSUE's perf target sets for the two paper-critical kernels. On
 * scalar-only machines the rows print with speedup 1.0 and nothing is
 * asserted.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "core/simd.h"
#include "nn/mlp.h"
#include "nn/network.h"

namespace {

namespace simd = fc::core::simd;

/** Best-of-reps wall time of @p fn, in milliseconds. */
template <typename Fn>
double
bestMs(Fn &&fn, int reps)
{
    double best = std::numeric_limits<double>::max();
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const std::chrono::duration<double, std::milli> elapsed =
            std::chrono::steady_clock::now() - start;
        best = std::min(best, elapsed.count());
    }
    return best;
}

/** One kernel row: run @p fn at Scalar and at the dispatched level. */
struct KernelTiming
{
    double scalar_ms = 0.0;
    double simd_ms = 0.0;

    double
    speedup() const
    {
        return simd_ms > 0.0 ? scalar_ms / simd_ms : 0.0;
    }
};

template <typename Fn>
KernelTiming
timeBothLevels(Fn &&fn, int reps)
{
    KernelTiming t;
    simd::setActiveLevel(simd::Level::Scalar);
    t.scalar_ms = bestMs(fn, reps);
    if (simd::avx2Available()) {
        simd::setActiveLevel(simd::Level::Avx2);
        t.simd_ms = bestMs(fn, reps);
        simd::setActiveLevel(simd::Level::Scalar);
    } else {
        t.simd_ms = t.scalar_ms;
    }
    return t;
}

constexpr std::size_t kPoints = 1 << 16;
constexpr std::size_t kDotDim = 128;
constexpr std::size_t kDotRows = 512;
constexpr int kReps = 5;

void
simdTable()
{
    fc::Pcg32 rng(1);
    const std::size_t n = kPoints;

    // Shared SoA candidate set.
    std::vector<float> xs(n), ys(n), zs(n);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = rng.uniform(-1.0f, 1.0f);
        ys[i] = rng.uniform(-1.0f, 1.0f);
        zs[i] = rng.uniform(-1.0f, 1.0f);
    }
    const simd::SoaView pts{xs.data(), ys.data(), zs.data()};
    const fc::Vec3 query(0.1f, -0.2f, 0.3f);

    fc::Table table(
        {"kernel", "scalar ms", "simd ms", "speedup", "level"});
    const char *level_name =
        simd::levelName(simd::avx2Available() ? simd::Level::Avx2
                                              : simd::Level::Scalar);
    const auto add_row = [&](const char *kernel,
                             const KernelTiming &t) {
        table.addRow({kernel, fc::Table::num(t.scalar_ms),
                      fc::Table::num(t.simd_ms),
                      fc::Table::num(t.speedup()), level_name});
    };

    // FPS distance update: the fused min-distance + argmax sweep.
    std::vector<float> min_dist(n);
    std::vector<std::uint8_t> sampled(n, 0);
    for (std::size_t i = 0; i < n; i += 37)
        sampled[i] = 1;
    const KernelTiming fps = timeBothLevels(
        [&] {
            std::fill(min_dist.begin(), min_dist.end(),
                      std::numeric_limits<float>::max());
            for (int sweep = 0; sweep < 16; ++sweep) {
                const simd::FpsPartial p = simd::fpsUpdate(
                    pts, nullptr, 0, query, min_dist.data(),
                    sampled.data(), 0,
                    static_cast<std::uint32_t>(n));
                benchmark::DoNotOptimize(p.best);
            }
        },
        kReps);
    add_row("fps-update", fps);

    // Neighbor distance screen.
    std::vector<float> dist_out(n);
    const KernelTiming screen = timeBothLevels(
        [&] {
            for (int sweep = 0; sweep < 16; ++sweep) {
                simd::distance2Range(pts, nullptr, 0, query, 0,
                                     static_cast<std::uint32_t>(n),
                                     dist_out.data());
                benchmark::DoNotOptimize(dist_out.data());
            }
        },
        kReps);
    add_row("distance2-range", screen);

    // LinearRelu, fp32 storage: the per-row dot kernel under its real
    // caller (weights quantized, activations fp16-rounded).
    const fc::nn::LinearRelu layer(kDotDim, kDotDim, 7);
    fc::nn::Tensor x(kDotRows, kDotDim);
    for (std::size_t r = 0; r < kDotRows; ++r)
        for (std::size_t c = 0; c < kDotDim; ++c)
            x.at(r, c) = rng.uniform(-1.0f, 1.0f);
    x.quantizeFp16();
    fc::nn::Tensor y;
    const KernelTiming linear = timeBothLevels(
        [&] {
            layer.forward(x, nullptr, y);
            benchmark::DoNotOptimize(y.data().data());
        },
        kReps);
    add_row("linear-relu-fp32", linear);

    // LinearRelu, fp16 storage (the Precision::Fp16 inner loop).
    fc::nn::HalfTensor hx, hy;
    fc::nn::toHalf(x, nullptr, hx);
    const KernelTiming linear_fp16 = timeBothLevels(
        [&] {
            layer.forward(hx, nullptr, hy);
            benchmark::DoNotOptimize(hy.data().data());
        },
        kReps);
    add_row("linear-relu-fp16", linear_fp16);

    // Interpolation blend (axpy).
    std::vector<float> blend_src(n, 0.5f), blend_dst(n, 0.0f);
    const KernelTiming blend = timeBothLevels(
        [&] {
            for (int sweep = 0; sweep < 16; ++sweep) {
                simd::axpy(0.25f, blend_src.data(), blend_dst.data(),
                           n);
                benchmark::DoNotOptimize(blend_dst.data());
            }
        },
        kReps);
    add_row("axpy", blend);

    // fp16 rounding (Tensor::quantizeFp16 / activation stores).
    std::vector<float> round_buf(n, 0.12345f);
    const KernelTiming rounding = timeBothLevels(
        [&] {
            for (int sweep = 0; sweep < 16; ++sweep) {
                simd::fp16RoundBuffer(round_buf.data(), n);
                benchmark::DoNotOptimize(round_buf.data());
            }
        },
        kReps);
    add_row("fp16-round", rounding);

    // End to end: Mixed vs Fp16 at the machine's default level (the
    // two must be bit-identical; the delta is pure bandwidth).
    if (simd::avx2Available())
        simd::setActiveLevel(simd::Level::Avx2);
    const fc::data::PointCloud &scene = fcb::scene(4096);
    const fc::nn::Network network(fc::nn::pointNet2SemSeg(), 42);
    for (const auto &[label, precision] :
         {std::pair{"e2e-mixed", fc::nn::Precision::Mixed},
          std::pair{"e2e-fp16", fc::nn::Precision::Fp16}}) {
        fc::nn::BackendOptions backend;
        backend.method = fc::part::Method::Fractal;
        backend.precision = precision;
        fc::core::Workspace ws;
        fc::nn::InferenceResult out;
        network.run(scene, backend, ws, out); // warm the workspace
        const double ms = bestMs(
            [&] {
                ws.reset();
                network.run(scene, backend, ws, out);
                benchmark::DoNotOptimize(
                    out.embedding.data().data());
            },
            3);
        table.addRow({label, "-", fc::Table::num(ms), "-",
                      simd::levelName(simd::activeLevel())});
    }

    fcb::emit(table, "bench_simd_kernels",
              "SIMD kernel layer: scalar vs dispatched (" +
                  std::to_string(kPoints) + " candidates, " +
                  std::to_string(kDotRows) + "x" +
                  std::to_string(kDotDim) + " MLP rows)");

    // The CI floor: the two paper-critical kernels must beat scalar
    // by 2x whenever the AVX2 path is in play.
    if (simd::avx2Available()) {
        bool ok = true;
        if (fps.speedup() < 2.0) {
            std::printf("FAIL: fps-update speedup %.2fx < 2x\n",
                        fps.speedup());
            ok = false;
        }
        if (linear.speedup() < 2.0) {
            std::printf("FAIL: linear-relu-fp32 speedup %.2fx < 2x\n",
                        linear.speedup());
            ok = false;
        }
        if (!ok)
            std::exit(1);
    }
}

/** Micro kernel: one FPS update sweep at the dispatched level. */
void
BM_FpsUpdateSweep(benchmark::State &state)
{
    const std::size_t n = 1 << 14;
    fc::Pcg32 rng(3);
    std::vector<float> xs(n), ys(n), zs(n),
        min_dist(n, std::numeric_limits<float>::max());
    std::vector<std::uint8_t> sampled(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = rng.uniform(-1.0f, 1.0f);
        ys[i] = rng.uniform(-1.0f, 1.0f);
        zs[i] = rng.uniform(-1.0f, 1.0f);
    }
    const simd::SoaView pts{xs.data(), ys.data(), zs.data()};
    const fc::Vec3 query(0.0f, 0.0f, 0.0f);
    for (auto _ : state) {
        const simd::FpsPartial p =
            simd::fpsUpdate(pts, nullptr, 0, query, min_dist.data(),
                            sampled.data(), 0,
                            static_cast<std::uint32_t>(n));
        benchmark::DoNotOptimize(p.best);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FpsUpdateSweep);

/** Micro kernel: one fp32 dot row at the dispatched level. */
void
BM_DotAccRow(benchmark::State &state)
{
    const std::size_t n = 256;
    fc::Pcg32 rng(5);
    std::vector<float> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = rng.uniform(-1.0f, 1.0f);
        b[i] = rng.uniform(-1.0f, 1.0f);
    }
    for (auto _ : state) {
        const float acc = simd::dotAcc(0.0f, a.data(), b.data(), n);
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_DotAccRow);

} // namespace

FC_BENCH_MAIN(simdTable)
