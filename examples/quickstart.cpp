/**
 * @file
 * Quickstart: a runnable tour of the FractalCloud library.
 *
 * Each numbered section is the minimal working form of one feature;
 * the prose lives in the docs tree:
 *
 *   docs/ARCHITECTURE.md — layer map, invariants, eager vs delayed
 *                          aggregation dataflow
 *   docs/SERVING.md      — shards, priority classes, placement keys,
 *                          /stats
 *   docs/STORAGE.md      — the .fcpc container, zero-copy loading,
 *                          prefetch ingestion
 *   docs/BENCHMARKS.md   — every bench binary and its CSV schema
 *
 * Build & run:  ./build/quickstart
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "core/simd.h"
#include "dataset/s3dis.h"
#include "nn/models.h"
#include "ops/quality.h"
#include "serve/async_pipeline.h"
#include "serve/ingest.h"
#include "serve/stats.h"
#include "storage/fcpc_reader.h"
#include "storage/fcpc_writer.h"

int
main()
{
    using namespace fc;

    // 1. Synthesize an indoor scene (S3DIS-like density contrast).
    const data::PointCloud scene = data::makeS3disScene(16384, 7);
    std::printf("scene: %zu points, %d semantic classes\n",
                scene.size(), data::kS3disNumClasses);

    // 2. Fractal partitioning. num_threads: 0 = all hardware threads,
    // 1 = sequential; results are bit-identical at every setting.
    PipelineOptions options;
    options.method = part::Method::Fractal;
    options.threshold = 256;
    options.num_threads = 0;
    FractalCloudPipeline pipeline(scene, options);

    const part::BlockTree &tree = pipeline.tree();
    std::printf("fractal: %zu blocks, depth %u, sizes [%u, %u], "
                "%u traversal passes, 0 sorts\n",
                tree.leaves().size(), tree.maxDepth(),
                tree.minLeafSize(), tree.maxLeafSize(),
                pipeline.partition().stats.traversal_passes);

    // 3. Block-parallel point operations: sample, group, gather.
    const ops::BlockSampleResult sampled = pipeline.sample(0.25);
    const ops::NeighborResult neighbors =
        pipeline.group(sampled, 0.2f, 32);
    const ops::GatherResult gathered =
        pipeline.gather(sampled, neighbors);
    std::printf("block ops: %zu samples, %zu neighbor rows, "
                "%zu gathered values\n",
                sampled.indices.size(), neighbors.num_centers,
                gathered.values.size());

    // 4. Quality and work vs exact global operations.
    const ops::SampleResult global =
        ops::farthestPointSample(scene, sampled.indices.size());
    const float cov_block =
        ops::meanCoverage(scene, sampled.indices);
    const float cov_global =
        ops::meanCoverage(scene, global.indices);
    std::printf("sampling quality: mean coverage %.4f (block) vs "
                "%.4f (global FPS) -> %.1f%% apart\n",
                cov_block, cov_global,
                100.0f * (cov_block / cov_global - 1.0f));
    std::printf("work: %llu block-wise distance evals vs %llu "
                "global (%.1fx less)\n",
                static_cast<unsigned long long>(
                    sampled.stats.distance_computations),
                static_cast<unsigned long long>(
                    global.stats.distance_computations),
                static_cast<double>(
                    global.stats.distance_computations) /
                    static_cast<double>(
                        sampled.stats.distance_computations));

    // 5. Hardware estimate on the FractalCloud accelerator model.
    const accel::RunReport report =
        pipeline.estimate(nn::pointNeXtSemSeg());
    std::printf("FractalCloud estimate (PointNeXt seg): %.2f ms, "
                "%.2f mJ (partition %.3f ms = %.2f%%)\n",
                report.totalLatencyMs(), report.totalEnergyMj(),
                report.latencyMs(accel::Phase::Partition),
                100.0 * report.latencyMs(accel::Phase::Partition) /
                    report.totalLatencyMs());

    // 6. Batched serving: the blocking wrapper over the async
    // frontend (docs/SERVING.md). Output order = input order; each
    // result is bit-identical to a sequential per-cloud run.
    std::vector<data::PointCloud> batch;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        batch.push_back(data::makeS3disScene(8192, seed));
    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.2f;
    request.neighbors = 32;
    const std::vector<BatchResult> results =
        FractalCloudPipeline::runBatch(batch, options, request);
    for (std::size_t i = 0; i < results.size(); ++i)
        std::printf("batch cloud %zu: %zu blocks, %zu samples, "
                    "%zu gathered values\n",
                    i, results[i].num_blocks,
                    results[i].sampled.indices.size(),
                    results[i].gathered.values.size());

    // 7. Async serving: submit/poll/wait with deadlines. The
    // deadline is generous so quickstart never prints "expired" on a
    // loaded machine; tight deadlines live in tests/test_serve.cc.
    serve::ServeOptions serve_options;
    serve_options.pipeline = options;
    serve_options.queue_capacity = 8;
    serve::AsyncPipeline server(serve_options);

    std::vector<serve::Ticket> tickets;
    for (const data::PointCloud &cloud : batch)
        tickets.push_back(
            server.submit(cloud, request, std::chrono::seconds(10)));
    std::size_t ready = 0;
    for (const serve::Ticket ticket : tickets)
        ready += server.poll(ticket); // non-blocking progress check
    std::printf("async: %zu submitted, %zu already done at first "
                "poll\n",
                tickets.size(), ready);
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        const serve::RequestOutcome outcome = server.wait(tickets[i]);
        const std::chrono::duration<double, std::milli> latency =
            outcome.timing.finished - outcome.timing.submitted;
        std::printf("async cloud %zu: %s in %.2f ms (%zu samples%s)\n",
                    i, serve::stateName(outcome.state),
                    latency.count(),
                    outcome.result.sampled.indices.size(),
                    outcome.spilled ? ", spilled" : "");
    }

    // 8. Threaded end-to-end inference, bit-identical to the
    // sequential path at any thread count.
    const nn::Network network(nn::pointNet2SemSeg(), 42);
    const auto infer_start = std::chrono::steady_clock::now();
    const nn::InferenceResult threaded = pipeline.infer(network);
    const std::chrono::duration<double, std::milli> infer_ms =
        std::chrono::steady_clock::now() - infer_start;

    nn::BackendOptions sequential_backend;
    sequential_backend.method = options.method;
    sequential_backend.threshold = options.threshold;
    sequential_backend.pool = nullptr; // exact sequential path
    const nn::InferenceResult sequential =
        network.run(scene, sequential_backend);
    const bool identical =
        threaded.point_features.data() ==
            sequential.point_features.data() &&
        threaded.embedding.data() == sequential.embedding.data();
    std::printf("inference: %zu points -> [%zu x %zu] features, "
                "%.1fM MACs, %.2f ms threaded, sequential replay "
                "%s\n",
                scene.size(), threaded.point_features.rows(),
                threaded.point_features.cols(),
                static_cast<double>(threaded.total_macs) / 1e6,
                infer_ms.count(),
                identical ? "bit-identical" : "DIVERGED (bug!)");

    // Delayed aggregation: run every set-abstraction MLP once per
    // unique point, then gather/pool features — far fewer MLP rows
    // (see docs/ARCHITECTURE.md for the dataflow and the equivalence
    // contract).
    nn::BackendOptions delayed_backend = sequential_backend;
    delayed_backend.aggregation = nn::Aggregation::Delayed;
    const nn::InferenceResult delayed =
        network.run(scene, delayed_backend);
    std::printf("delayed aggregation: %llu SA MLP rows vs %llu "
                "eager (%.1fx fewer), %.1fM vs %.1fM MACs\n",
                static_cast<unsigned long long>(delayed.sa_mlp_rows),
                static_cast<unsigned long long>(
                    sequential.sa_mlp_rows),
                static_cast<double>(sequential.sa_mlp_rows) /
                    static_cast<double>(delayed.sa_mlp_rows),
                static_cast<double>(delayed.total_macs) / 1e6,
                static_cast<double>(sequential.total_macs) / 1e6);

    // 9. The allocation-free steady state: warm same-shape infer()
    // performs zero heap allocations (proved in
    // tests/test_workspace.cc; docs/ARCHITECTURE.md, invariant 2).
    nn::InferenceResult reused;
    pipeline.infer(network, reused); // cold: grows the workspace
    const auto warm_start = std::chrono::steady_clock::now();
    pipeline.infer(network, reused); // warm: zero heap allocations
    const std::chrono::duration<double, std::milli> warm_ms =
        std::chrono::steady_clock::now() - warm_start;
    const bool reuse_identical =
        reused.point_features.data() == threaded.point_features.data();
    std::printf("workspace reuse: warm infer %.2f ms (cold %.2f ms), "
                "results %s\n",
                warm_ms.count(), infer_ms.count(),
                reuse_identical ? "bit-identical" : "DIVERGED (bug!)");

    // 10. Sharded, priority-aware serving: consistent-hash placement
    // keys, weighted priority classes, bounded waits
    // (docs/SERVING.md). Shard choice changes when a request runs,
    // never what it computes.
    serve::ServeOptions sharded_options;
    sharded_options.pipeline = options;
    sharded_options.num_shards = 2;
    sharded_options.queue_capacity = 16;
    serve::AsyncPipeline sharded(sharded_options);
    std::printf("sharded serving: %u shards x %u threads\n",
                sharded.numShards(), sharded.numThreads());

    constexpr std::uint64_t kSessionKey = 42; // placement affinity
    const serve::Ticket fg = sharded.submit(
        batch[0], request, std::chrono::seconds(10),
        serve::Priority::Interactive, kSessionKey);
    const serve::Ticket bg = sharded.submit(
        batch[1], request, std::chrono::seconds(10),
        serve::Priority::Background, kSessionKey);

    // waitFor does NOT cancel on timeout — the ticket stays live.
    if (auto early =
            sharded.waitFor(bg, std::chrono::milliseconds(1))) {
        std::printf("background done within 1 ms (%s)\n",
                    serve::stateName(early->state));
        (void)early;
    } else {
        std::printf("background not done after 1 ms -> still %s\n",
                    serve::stateName(sharded.state(bg)));
        const serve::RequestOutcome late = sharded.wait(bg);
        std::printf("background finished %s on shard %u (%s)\n",
                    serve::stateName(late.state), late.shard,
                    serve::priorityName(late.priority));
    }
    const serve::RequestOutcome fg_outcome = sharded.wait(fg);
    std::printf("interactive finished %s on shard %u — same shard, "
                "same session key\n",
                serve::stateName(fg_outcome.state), fg_outcome.shard);

    // 11. The SIMD kernel layer: runtime dispatch (AVX2 vs scalar;
    // force scalar with FC_FORCE_SCALAR=1) and the fp16 end-to-end
    // mode, bit-identical to Mixed (docs/ARCHITECTURE.md,
    // invariant 1).
    std::printf("simd: avx2 %s, active level %s\n",
                core::simd::avx2Available() ? "available"
                                            : "unavailable",
                core::simd::levelName(core::simd::activeLevel()));

    nn::BackendOptions fp16_backend = sequential_backend;
    fp16_backend.precision = nn::Precision::Fp16;
    const nn::InferenceResult half_run =
        network.run(scene, fp16_backend);
    const bool fp16_identical =
        half_run.point_features.data() ==
            sequential.point_features.data() &&
        half_run.embedding.data() == sequential.embedding.data();
    std::printf("fp16 mode: [%zu x %zu] features, vs mixed %s\n",
                half_run.point_features.rows(),
                half_run.point_features.cols(),
                fp16_identical ? "bit-identical" : "DIVERGED (bug!)");

    // 12. Observability: the metrics registry and the /stats export
    // (full instrument table in docs/SERVING.md).
    {
        serve::ServeOptions stats_options;
        stats_options.pipeline.num_threads = 2;
        stats_options.num_shards = 2;
        stats_options.priority_weights = {8, 4, 1};
        serve::AsyncPipeline observed(stats_options);
        const auto shared_scene =
            std::make_shared<const data::PointCloud>(
                data::makeS3disScene(2048, 11));
        std::vector<serve::Ticket> tickets;
        for (int i = 0; i < 4; ++i)
            tickets.push_back(observed.submitShared(
                shared_scene, {}, std::nullopt,
                i % 2 ? serve::Priority::Batch
                      : serve::Priority::Interactive,
                /*placement_key=*/static_cast<std::uint64_t>(i)));
        for (serve::Ticket t : tickets)
            (void)observed.wait(t);

        const std::string stats = serve::renderStats(observed);
        // Print the header plus a taste of the body; a real service
        // would write the whole string to its /stats socket.
        std::printf("\n/stats (%zu bytes, %zu lines):\n",
                    stats.size(),
                    static_cast<std::size_t>(std::count(
                        stats.begin(), stats.end(), '\n')));
        std::size_t shown = 0, pos = 0;
        while (shown < 6 && pos < stats.size()) {
            const std::size_t eol = stats.find('\n', pos);
            std::printf("  %.*s\n", static_cast<int>(eol - pos),
                        stats.c_str() + pos);
            pos = eol + 1;
            ++shown;
        }
        std::printf("  ... (full body includes wait/latency "
                    "histograms with p50/p95/p99 per shard+class)\n");
    }

    // 13. Storage + ingestion: the .fcpc binary columnar container
    // (docs/STORAGE.md). The file layout IS the in-memory layout, so
    // a zero-copy load is pointer binding, not parsing, and serving
    // from disk is byte-identical to serving preloaded clouds.
    {
        const std::string path = "quickstart_scratch.fcpc";
        storage::FcpcWriter writer;
        bool wrote = writer.open(path);
        for (const data::PointCloud &cloud : batch)
            wrote = wrote && writer.append(cloud);
        wrote = wrote && writer.finish();

        auto reader = std::make_shared<storage::FcpcReader>();
        if (!wrote ||
            reader->open(path) != storage::FcpcStatus::Ok) {
            std::printf("storage: scratch file failed (%s)\n",
                        storage::fcpcStatusName(reader->status()));
            std::remove(path.c_str());
            return 1;
        }
        data::PointCloud block;
        reader->readBlock(0, block); // zero-copy: aliases the mapping
        const bool bytes_match =
            block.size() == batch[0].size() &&
            std::memcmp(std::as_const(block).coords().data(),
                        std::as_const(batch[0]).coords().data(),
                        block.size() * sizeof(Vec3)) == 0;
        std::printf("storage: %zu blocks, %zu KiB %s, block 0 "
                    "aliases the file %s\n",
                    reader->blockCount(), reader->mappedBytes() / 1024,
                    reader->isMemoryMapped() ? "mmap'd"
                                             : "heap-read (fallback)",
                    bytes_match ? "bit-identical" : "DIVERGED (bug!)");

        // Stream every block through a fresh pipeline under each
        // block's on-disk placement key, prefetching ahead of the
        // consumer — and check the outcomes against section 6's
        // preloaded runBatch results.
        serve::AsyncPipeline ingest_server(serve_options);
        serve::StorageIngestor ingestor(ingest_server, reader);
        const std::vector<serve::IngestResult> ingested =
            ingestor.runAll(request);
        bool ingest_identical = ingested.size() == results.size();
        for (std::size_t i = 0;
             ingest_identical && i < ingested.size(); ++i)
            ingest_identical =
                ingested[i].storage_status == storage::FcpcStatus::Ok &&
                ingested[i].outcome.result.sampled.indices ==
                    results[i].sampled.indices &&
                ingested[i].outcome.result.gathered.values ==
                    results[i].gathered.values;
        const storage::PrefetchStats prefetch =
            ingestor.prefetchStats();
        std::printf("ingest: %zu blocks served from disk, prefetch "
                    "%zu hits / %zu waits, vs preloaded %s\n",
                    ingested.size(), prefetch.hits, prefetch.waits,
                    ingest_identical ? "bit-identical"
                                     : "DIVERGED (bug!)");
        std::remove(path.c_str());
    }
    return 0;
}
