/**
 * @file
 * Quickstart: the five-minute tour of the FractalCloud library.
 *
 *   1. synthesize an indoor scene (S3DIS-like),
 *   2. partition it with the Fractal method (Alg. 1),
 *   3. run the block-parallel point operations (sampling, grouping,
 *      gathering, interpolation),
 *   4. compare against exact global operations, and
 *   5. estimate latency/energy on the FractalCloud accelerator.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "core/pipeline.h"
#include "dataset/s3dis.h"
#include "nn/models.h"
#include "ops/quality.h"

int
main()
{
    using namespace fc;

    // 1. A 16K-point indoor scene with realistic density contrast.
    const data::PointCloud scene = data::makeS3disScene(16384, 7);
    std::printf("scene: %zu points, %d semantic classes\n",
                scene.size(), data::kS3disNumClasses);

    // 2. Fractal partitioning (threshold = 256 points per block).
    PipelineOptions options;
    options.method = part::Method::Fractal;
    options.threshold = 256;
    FractalCloudPipeline pipeline(scene, options);

    const part::BlockTree &tree = pipeline.tree();
    std::printf("fractal: %zu blocks, depth %u, sizes [%u, %u], "
                "%u traversal passes, 0 sorts\n",
                tree.leaves().size(), tree.maxDepth(),
                tree.minLeafSize(), tree.maxLeafSize(),
                pipeline.partition().stats.traversal_passes);

    // 3. Block-parallel point operations.
    const ops::BlockSampleResult sampled = pipeline.sample(0.25);
    const ops::NeighborResult neighbors =
        pipeline.group(sampled, 0.2f, 32);
    const ops::GatherResult gathered =
        pipeline.gather(sampled, neighbors);
    std::printf("block ops: %zu samples, %zu neighbor rows, "
                "%zu gathered values\n",
                sampled.indices.size(), neighbors.num_centers,
                gathered.values.size());

    // 4. Quality vs exact global operations.
    const ops::SampleResult global =
        ops::farthestPointSample(scene, sampled.indices.size());
    const float cov_block =
        ops::meanCoverage(scene, sampled.indices);
    const float cov_global =
        ops::meanCoverage(scene, global.indices);
    std::printf("sampling quality: mean coverage %.4f (block) vs "
                "%.4f (global FPS) -> %.1f%% apart\n",
                cov_block, cov_global,
                100.0f * (cov_block / cov_global - 1.0f));
    std::printf("work: %llu block-wise distance evals vs %llu "
                "global (%.1fx less)\n",
                static_cast<unsigned long long>(
                    sampled.stats.distance_computations),
                static_cast<unsigned long long>(
                    global.stats.distance_computations),
                static_cast<double>(
                    global.stats.distance_computations) /
                    static_cast<double>(
                        sampled.stats.distance_computations));

    // 5. Hardware estimate for a full PointNeXt segmentation pass.
    const accel::RunReport report =
        pipeline.estimate(nn::pointNeXtSemSeg());
    std::printf("FractalCloud estimate (PointNeXt seg): %.2f ms, "
                "%.2f mJ (partition %.3f ms = %.2f%%)\n",
                report.totalLatencyMs(), report.totalEnergyMj(),
                report.latencyMs(accel::Phase::Partition),
                100.0 * report.latencyMs(accel::Phase::Partition) /
                    report.totalLatencyMs());
    return 0;
}
