/**
 * @file
 * Quickstart: the five-minute tour of the FractalCloud library.
 *
 *   1. synthesize an indoor scene (S3DIS-like),
 *   2. partition it with the Fractal method (Alg. 1),
 *   3. run the block-parallel point operations (sampling, grouping,
 *      gathering, interpolation),
 *   4. compare against exact global operations,
 *   5. estimate latency/energy on the FractalCloud accelerator,
 *   6. process a batch of clouds over one shared thread pool,
 *   7. serve clouds asynchronously with submit/poll, deadlines, and
 *      the work-conserving scheduler,
 *   8. run threaded end-to-end network inference, bit-identical to
 *      the sequential path,
 *   9. reach the allocation-free steady state: warm workspace
 *      inference that never touches the heap allocator, and
 *  10. scale the serving runtime out: executor shards with
 *      consistent-hash placement, priority classes with weighted
 *      aging, and bounded waits, and
 *  11. inspect the SIMD kernel layer: which dispatch level is
 *      active, how to force the scalar reference path, and the fp16
 *      end-to-end inference mode, and
 *  12. read the serving runtime's observability surface: the
 *      per-(shard x class) metrics registry and the /stats export.
 *
 * Build & run:  ./build/quickstart
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "core/simd.h"
#include "dataset/s3dis.h"
#include "nn/models.h"
#include "ops/quality.h"
#include "serve/async_pipeline.h"
#include "serve/stats.h"

int
main()
{
    using namespace fc;

    // 1. A 16K-point indoor scene with realistic density contrast.
    const data::PointCloud scene = data::makeS3disScene(16384, 7);
    std::printf("scene: %zu points, %d semantic classes\n",
                scene.size(), data::kS3disNumClasses);

    // 2. Fractal partitioning (threshold = 256 points per block).
    //
    // Threading: num_threads sizes the pool every block-parallel
    // stage (partition construction, sampling, grouping, gathering,
    // interpolation) dispatches its per-block work items over.
    //   0 = use all hardware threads (default),
    //   1 = exact sequential path (no pool at all),
    //   n = a fixed pool of n.
    // Results are bit-identical at every setting — the knob trades
    // nothing but wall-clock time.
    PipelineOptions options;
    options.method = part::Method::Fractal;
    options.threshold = 256;
    options.num_threads = 0;
    FractalCloudPipeline pipeline(scene, options);

    const part::BlockTree &tree = pipeline.tree();
    std::printf("fractal: %zu blocks, depth %u, sizes [%u, %u], "
                "%u traversal passes, 0 sorts\n",
                tree.leaves().size(), tree.maxDepth(),
                tree.minLeafSize(), tree.maxLeafSize(),
                pipeline.partition().stats.traversal_passes);

    // 3. Block-parallel point operations.
    const ops::BlockSampleResult sampled = pipeline.sample(0.25);
    const ops::NeighborResult neighbors =
        pipeline.group(sampled, 0.2f, 32);
    const ops::GatherResult gathered =
        pipeline.gather(sampled, neighbors);
    std::printf("block ops: %zu samples, %zu neighbor rows, "
                "%zu gathered values\n",
                sampled.indices.size(), neighbors.num_centers,
                gathered.values.size());

    // 4. Quality vs exact global operations.
    const ops::SampleResult global =
        ops::farthestPointSample(scene, sampled.indices.size());
    const float cov_block =
        ops::meanCoverage(scene, sampled.indices);
    const float cov_global =
        ops::meanCoverage(scene, global.indices);
    std::printf("sampling quality: mean coverage %.4f (block) vs "
                "%.4f (global FPS) -> %.1f%% apart\n",
                cov_block, cov_global,
                100.0f * (cov_block / cov_global - 1.0f));
    std::printf("work: %llu block-wise distance evals vs %llu "
                "global (%.1fx less)\n",
                static_cast<unsigned long long>(
                    sampled.stats.distance_computations),
                static_cast<unsigned long long>(
                    global.stats.distance_computations),
                static_cast<double>(
                    global.stats.distance_computations) /
                    static_cast<double>(
                        sampled.stats.distance_computations));

    // 5. Hardware estimate for a full PointNeXt segmentation pass.
    const accel::RunReport report =
        pipeline.estimate(nn::pointNeXtSemSeg());
    std::printf("FractalCloud estimate (PointNeXt seg): %.2f ms, "
                "%.2f mJ (partition %.3f ms = %.2f%%)\n",
                report.totalLatencyMs(), report.totalEnergyMj(),
                report.latencyMs(accel::Phase::Partition),
                100.0 * report.latencyMs(accel::Phase::Partition) /
                    report.totalLatencyMs());

    // 6. Batched serving: many clouds over one pool. runBatch is the
    // blocking wrapper around the async frontend of section 7: each
    // cloud is one FIFO-dispatched request, the work-conserving
    // scheduler spills intra-cloud block items into idle slots at
    // the batch tail, output order matches input order, and each
    // per-cloud result is bit-identical to running that cloud
    // through its own sequential pipeline.
    std::vector<data::PointCloud> batch;
    for (std::uint64_t seed = 1; seed <= 4; ++seed)
        batch.push_back(data::makeS3disScene(8192, seed));
    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.2f;
    request.neighbors = 32;
    const std::vector<BatchResult> results =
        FractalCloudPipeline::runBatch(batch, options, request);
    for (std::size_t i = 0; i < results.size(); ++i)
        std::printf("batch cloud %zu: %zu blocks, %zu samples, "
                    "%zu gathered values\n",
                    i, results[i].num_blocks,
                    results[i].sampled.indices.size(),
                    results[i].gathered.values.size());

    // 7. Async serving: the submit/poll frontend a real service
    // integrates against. Each submit() admits one cloud into a
    // bounded FIFO queue and returns a Ticket immediately; poll()
    // checks progress without blocking, wait() collects the terminal
    // outcome. Per-request deadlines retire late work as Expired
    // instead of running it, cancel() retires unwanted work, and the
    // work-conserving scheduler spills a request's intra-cloud block
    // items into idle pool slots whenever in-flight requests number
    // fewer than pool threads — so a lone request still uses the
    // whole pool. Results are byte-identical to the blocking path at
    // any thread count.
    serve::ServeOptions serve_options;
    serve_options.pipeline = options;
    serve_options.queue_capacity = 8;
    serve::AsyncPipeline server(serve_options);

    // The deadline is deliberately generous: quickstart should never
    // print "expired" on a loaded single-core machine. Tight
    // deadlines are exercised in tests/test_serve.cc.
    std::vector<serve::Ticket> tickets;
    for (const data::PointCloud &cloud : batch)
        tickets.push_back(
            server.submit(cloud, request, std::chrono::seconds(10)));
    std::size_t ready = 0;
    for (const serve::Ticket ticket : tickets)
        ready += server.poll(ticket); // non-blocking progress check
    std::printf("async: %zu submitted, %zu already done at first "
                "poll\n",
                tickets.size(), ready);
    for (std::size_t i = 0; i < tickets.size(); ++i) {
        const serve::RequestOutcome outcome = server.wait(tickets[i]);
        const std::chrono::duration<double, std::milli> latency =
            outcome.timing.finished - outcome.timing.submitted;
        std::printf("async cloud %zu: %s in %.2f ms (%zu samples%s)\n",
                    i, serve::stateName(outcome.state),
                    latency.count(),
                    outcome.result.sampled.indices.size(),
                    outcome.spilled ? ", spilled" : "");
    }

    // 8. Threaded end-to-end inference. Network::run is pool-driven:
    // BackendOptions::pool threads one core::ThreadPool through every
    // stage — the per-stage on-chip re-partition (now with parallel
    // root splits), block-wise sampling/grouping/gathering/
    // interpolation, per-row MLP application, and per-group max
    // pooling. pipeline.infer() passes the pipeline's own pool, so
    // options.num_threads from step 2 already governs inference too;
    // shown here with an explicit pool for standalone Network users.
    // As everywhere in the runtime, the result is bit-identical to
    // the sequential path at any thread count.
    const nn::Network network(nn::pointNet2SemSeg(), 42);
    const auto infer_start = std::chrono::steady_clock::now();
    const nn::InferenceResult threaded = pipeline.infer(network);
    const std::chrono::duration<double, std::milli> infer_ms =
        std::chrono::steady_clock::now() - infer_start;

    nn::BackendOptions sequential_backend;
    sequential_backend.method = options.method;
    sequential_backend.threshold = options.threshold;
    sequential_backend.pool = nullptr; // exact sequential path
    const nn::InferenceResult sequential =
        network.run(scene, sequential_backend);
    const bool identical =
        threaded.point_features.data() ==
            sequential.point_features.data() &&
        threaded.embedding.data() == sequential.embedding.data();
    std::printf("inference: %zu points -> [%zu x %zu] features, "
                "%.1fM MACs, %.2f ms threaded, sequential replay "
                "%s\n",
                scene.size(), threaded.point_features.rows(),
                threaded.point_features.cols(),
                static_cast<double>(threaded.total_macs) / 1e6,
                infer_ms.count(),
                identical ? "bit-identical" : "DIVERGED (bug!)");

    // 9. The allocation-free steady state. Every FractalCloudPipeline
    // owns a core::Workspace (one arena for transient scratch plus
    // named slots for per-stage buffers); the out-parameter infer()
    // overload draws every intermediate from it and rewrites `result`
    // reusing its capacity. The first call grows the workspace to the
    // request's shape; the second and later same-shape calls perform
    // ZERO heap allocations on the sequential executor
    // (tests/test_workspace.cc proves it with an operator-new hook,
    // and bench_memory_churn reports allocs/request cold vs warm).
    //
    // Serving: fc::serve::AsyncPipeline keeps a free-list pool of
    // workspaces checked out per ticket, so repeated requests of the
    // same shape reuse warm memory. The pool never exceeds the
    // serving thread count — size num_threads to bound steady-state
    // memory at (threads x largest-shape footprint). Growth happens
    // only on first-seen larger shapes; results are byte-identical
    // warm or cold.
    nn::InferenceResult reused;
    pipeline.infer(network, reused); // cold: grows the workspace
    const auto warm_start = std::chrono::steady_clock::now();
    pipeline.infer(network, reused); // warm: zero heap allocations
    const std::chrono::duration<double, std::milli> warm_ms =
        std::chrono::steady_clock::now() - warm_start;
    const bool reuse_identical =
        reused.point_features.data() == threaded.point_features.data();
    std::printf("workspace reuse: warm infer %.2f ms (cold %.2f ms), "
                "results %s\n",
                warm_ms.count(), infer_ms.count(),
                reuse_identical ? "bit-identical" : "DIVERGED (bug!)");

    // 10. The sharded, priority-aware serving runtime. Three knobs
    // turn the single-pool frontend of section 7 into a multi-tenant
    // service core:
    //
    //   - num_shards: the executor becomes N independent ThreadPool
    //     shards (one per socket is the natural unit). Requests are
    //     placed by consistent hashing — by ticket id by default
    //     (uniform spread), or by the submit call's placement_key,
    //     which guarantees equal keys land on equal shards: a session
    //     that always sends key=42 keeps hitting the same shard's
    //     warm workspaces. Growing N moves only ~1/(N+1) of keys.
    //   - Priority (Interactive / Batch / Background): backlogged
    //     classes share each shard 8:4:1 under weighted aging. Bulk
    //     traffic cannot starve background work, and in admission
    //     order an Interactive request is never overtaken by more
    //     than the aged lower-class share. (Granularity caveat: a
    //     lower-class request already *running* — or spilling its
    //     block chunks onto an idle shard — finishes its current
    //     stage before yielding; preemption happens at stage
    //     boundaries, and idle-only borrowing keeps spilled chunks
    //     off shards with queued work.)
    //   - waitFor: a bounded wait() that does NOT cancel on timeout —
    //     poll loops with latency budgets keep the ticket live.
    //
    // Placement guarantee: shard choice and priority order change
    // WHEN a request runs, never WHAT it computes — results stay
    // byte-identical at any shard count (the sharded determinism
    // tests compare shards {1,2,4} x threads {1,2,8} bit for bit).
    // The work-conserving scheduler also spills cross-shard: a busy
    // shard borrows an idle neighbor's cores for its block items.
    //
    // bench_shard_scaling prints p50/p99 per (shard count, class):
    // read the interactive rows for the protected tail, the
    // background rows for the cost of not being starved, and the
    // shard sweep for how the tail tightens with added shards.
    serve::ServeOptions sharded_options;
    sharded_options.pipeline = options;
    sharded_options.num_shards = 2;
    sharded_options.queue_capacity = 16;
    serve::AsyncPipeline sharded(sharded_options);
    std::printf("sharded serving: %u shards x %u threads\n",
                sharded.numShards(), sharded.numThreads());

    constexpr std::uint64_t kSessionKey = 42; // placement affinity
    const serve::Ticket fg = sharded.submit(
        batch[0], request, std::chrono::seconds(10),
        serve::Priority::Interactive, kSessionKey);
    const serve::Ticket bg = sharded.submit(
        batch[1], request, std::chrono::seconds(10),
        serve::Priority::Background, kSessionKey);

    // Bounded wait: give the background ticket a 1 ms budget first —
    // usually not done yet (the interactive request leads), and the
    // timeout leaves it queued/running rather than cancelling it.
    if (auto early =
            sharded.waitFor(bg, std::chrono::milliseconds(1))) {
        std::printf("background done within 1 ms (%s)\n",
                    serve::stateName(early->state));
        (void)early;
    } else {
        std::printf("background not done after 1 ms -> still %s\n",
                    serve::stateName(sharded.state(bg)));
        const serve::RequestOutcome late = sharded.wait(bg);
        std::printf("background finished %s on shard %u (%s)\n",
                    serve::stateName(late.state), late.shard,
                    serve::priorityName(late.priority));
    }
    const serve::RequestOutcome fg_outcome = sharded.wait(fg);
    std::printf("interactive finished %s on shard %u — same shard, "
                "same session key\n",
                serve::stateName(fg_outcome.state), fg_outcome.shard);

    // 11. The SIMD kernel layer (core/simd.h). The hot inner loops —
    // the FPS min-distance update, the ball-query/KNN distance
    // screens, the per-row MLP dot products, and the fp16
    // conversions — dispatch once, at first use, to the best kernel
    // table the CPU supports: AVX2+FMA+F16C when available, else the
    // scalar reference path. Two ways to force scalar:
    //
    //   FC_FORCE_SCALAR=1 ./quickstart      (env: any value but "0")
    //   core::simd::setActiveLevel(...)     (tests/benches, below)
    //
    // The distance and blend kernels are bit-identical across
    // levels, so forcing scalar changes wall-clock only; the dot
    // kernels accumulate in a different order (documented ULP
    // bounds), which after fp16 activation rounding still leaves
    // results stable to <= 1 fp16 ULP (tests/test_simd.cc).
    //
    // Data layout: the kernels read coordinates through the
    // structure-of-arrays mirror data::PointCloud::soa() — three
    // contiguous float arrays (xs/ys/zs). The mirror rebuilds lazily
    // after any coordinate mutation; ops warm it serially before
    // fanning out, and code holding a SoaView across its own
    // mutations must call markCoordsDirty(). bench_simd_kernels
    // prints per-kernel scalar-vs-SIMD columns (ms and speedup; the
    // FPS-update and LinearRelu rows gate CI at >= 2x when AVX2 is
    // on) plus end-to-end Mixed-vs-Fp16 rows.
    std::printf("simd: avx2 %s, active level %s\n",
                core::simd::avx2Available() ? "available"
                                            : "unavailable",
                core::simd::levelName(core::simd::activeLevel()));

    // The fp16 end-to-end mode: activations live in binary16 the
    // whole way through the MLP pathway (half the tensor bandwidth),
    // accumulating in fp32 through the same core::simd scheme as the
    // default Mixed mode. Because every MLP input is already
    // fp16-valued in Mixed mode too, the two modes produce
    // bit-identical InferenceResults at either dispatch level.
    nn::BackendOptions fp16_backend = sequential_backend;
    fp16_backend.precision = nn::Precision::Fp16;
    const nn::InferenceResult half_run =
        network.run(scene, fp16_backend);
    const bool fp16_identical =
        half_run.point_features.data() ==
            sequential.point_features.data() &&
        half_run.embedding.data() == sequential.embedding.data();
    std::printf("fp16 mode: [%zu x %zu] features, vs mixed %s\n",
                half_run.point_features.rows(),
                half_run.point_features.cols(),
                fp16_identical ? "bit-identical" : "DIVERGED (bug!)");

    // 12. Observability: every AsyncPipeline owns a metrics registry
    // (core/metrics.h) that its layers instrument — per-(shard x
    // class) queue depth / wait / latency and terminal-state counters
    // from the scheduler, per-stage service-time histograms and
    // workspace-pool telemetry from the pipeline, per-shard task
    // counts from the executor, and (when requests carry a network)
    // the per-stage nn timings that reproduce the paper's bottleneck
    // split. serve::renderStats (serve/stats.h) renders it as the
    // stable line-oriented /stats text a socket frontend can serve
    // verbatim; renderStatsJson is the machine-readable twin.
    //
    // Cost model: mutation is relaxed striped atomics behind one
    // global switch — core::metrics::setSampling(false) freezes every
    // instrument, leaving a load + predicted branch per call site
    // (bench_metrics_overhead gates the sampling-on overhead in CI).
    // The aging weights are runtime config (ServeOptions::
    // priority_weights) and surface as serve.priority_weight gauges.
    {
        serve::ServeOptions stats_options;
        stats_options.pipeline.num_threads = 2;
        stats_options.num_shards = 2;
        stats_options.priority_weights = {8, 4, 1};
        serve::AsyncPipeline observed(stats_options);
        const auto shared_scene =
            std::make_shared<const data::PointCloud>(
                data::makeS3disScene(2048, 11));
        std::vector<serve::Ticket> tickets;
        for (int i = 0; i < 4; ++i)
            tickets.push_back(observed.submitShared(
                shared_scene, {}, std::nullopt,
                i % 2 ? serve::Priority::Batch
                      : serve::Priority::Interactive,
                /*placement_key=*/static_cast<std::uint64_t>(i)));
        for (serve::Ticket t : tickets)
            (void)observed.wait(t);

        const std::string stats = serve::renderStats(observed);
        // Print the header plus a taste of the body; a real service
        // would write the whole string to its /stats socket.
        std::printf("\n/stats (%zu bytes, %zu lines):\n",
                    stats.size(),
                    static_cast<std::size_t>(std::count(
                        stats.begin(), stats.end(), '\n')));
        std::size_t shown = 0, pos = 0;
        while (shown < 6 && pos < stats.size()) {
            const std::size_t eol = stats.find('\n', pos);
            std::printf("  %.*s\n", static_cast<int>(eol - pos),
                        stats.c_str() + pos);
            pos = eol + 1;
            ++shown;
        }
        std::printf("  ... (full body includes wait/latency "
                    "histograms with p50/p95/p99 per shard+class)\n");
    }
    return 0;
}
