/**
 * @file
 * Automotive LiDAR scenario: stream simulated spinning-LiDAR frames
 * (30K-120K points/frame, the regime the paper's introduction
 * motivates) through the Fractal pipeline and compare per-frame
 * processing estimates against the global-search baseline.
 *
 * Demonstrates: frame-rate feasibility of large-scale PNN inference
 * on the FractalCloud accelerator model vs a PointAcc-style design.
 *
 * Build & run:  ./build/examples/lidar_pipeline
 */

#include <cstdio>

#include "accel/accelerator.h"
#include "common/rng.h"
#include "core/pipeline.h"
#include "dataset/synthetic.h"
#include "nn/models.h"

int
main()
{
    using namespace fc;

    const nn::ModelConfig model = nn::pointNeXtSemSeg();
    const accel::AcceleratorModel ours = accel::makeFractalCloud(256);
    const accel::AcceleratorModel baseline = accel::makePointAcc();

    std::printf("%-7s %-9s %-8s %-14s %-14s %-10s %s\n", "frame",
                "points", "blocks", "FC (ms)", "PointAcc (ms)",
                "speedup", "FC fps");

    Pcg32 rng(2026);
    double total_fc = 0.0, total_pa = 0.0;
    const int frames = 6;
    for (int frame = 0; frame < frames; ++frame) {
        // Frame sizes sweep the automotive range.
        const std::size_t n = 30000 + 18000 * frame;
        const data::PointCloud cloud =
            data::makeLidarFrame(rng, n, 10 + frame * 2);

        PipelineOptions options;
        options.threshold = 256;
        FractalCloudPipeline pipeline(cloud, options);

        const accel::RunReport r_ours = pipeline.estimate(model);
        const accel::RunReport r_base = baseline.run(model, cloud);
        total_fc += r_ours.totalLatencyMs();
        total_pa += r_base.totalLatencyMs();

        std::printf("%-7d %-9zu %-8zu %-14.2f %-14.2f %-10.1f %.1f\n",
                    frame, cloud.size(),
                    pipeline.tree().leaves().size(),
                    r_ours.totalLatencyMs(), r_base.totalLatencyMs(),
                    r_base.totalLatencyMs() / r_ours.totalLatencyMs(),
                    1000.0 / r_ours.totalLatencyMs());
    }

    std::printf("\nsequence: FractalCloud %.1f ms total (%.1f fps "
                "average), PointAcc-style %.1f ms (%.1f fps)\n",
                total_fc, frames * 1000.0 / total_fc, total_pa,
                frames * 1000.0 / total_pa);
    std::printf("a 10 Hz LiDAR needs <100 ms/frame: FractalCloud %s, "
                "baseline %s\n",
                total_fc / frames < 100.0 ? "meets it" : "misses it",
                total_pa / frames < 100.0 ? "meets it" : "misses it");
    return 0;
}
