/**
 * @file
 * Indoor semantic segmentation scenario (the paper's S3DIS workload):
 * run a fixed-weight PointNet++ segmentation network over an indoor
 * scene with exact global operations and with block-parallel
 * operations, and measure what the approximation costs — per-point
 * feature fidelity and label-transfer quality — next to what it buys
 * (work reduction and simulated latency).
 *
 * Build & run:  ./build/examples/indoor_segmentation
 */

#include <cmath>
#include <cstdio>

#include "accel/accelerator.h"
#include "dataset/s3dis.h"
#include "nn/classifier.h"
#include "nn/network.h"

int
main()
{
    using namespace fc;

    const data::PointCloud scene = data::makeS3disScene(4096, 42);
    const nn::Network net(nn::pointNet2SemSeg(), 42);
    std::printf("scene: %zu points | network: %s\n", scene.size(),
                net.config().long_name.c_str());

    // Exact global point operations (the lossless reference).
    const nn::InferenceResult exact = net.run(scene);

    // Block-parallel operations under Fractal partitioning.
    nn::BackendOptions blocked;
    blocked.method = part::Method::Fractal;
    blocked.threshold = 128;
    const nn::InferenceResult approx = net.run(scene, blocked);

    // Feature fidelity: per-point cosine similarity.
    double fidelity = 0.0;
    for (std::size_t i = 0; i < scene.size(); ++i) {
        double dot = 0.0, na = 0.0, nb = 0.0;
        for (std::size_t c = 0; c < exact.point_features.cols();
             ++c) {
            const double a = exact.point_features.at(i, c);
            const double b = approx.point_features.at(i, c);
            dot += a * b;
            na += a * a;
            nb += b * b;
        }
        fidelity += dot / (std::sqrt(na * nb) + 1e-12);
    }
    fidelity /= static_cast<double>(scene.size());

    // Prediction agreement through a shared nearest-centroid head.
    nn::NearestCentroid head;
    std::vector<int> labels(scene.labels().begin(),
                            scene.labels().end());
    head.fit(exact.point_features.data(),
             exact.point_features.cols(), labels,
             data::kS3disNumClasses);
    std::size_t agree = 0;
    std::vector<int> preds_exact, preds_approx;
    for (std::size_t i = 0; i < scene.size(); ++i) {
        const int pe = head.predict(exact.point_features.row(i));
        const int pa = head.predict(approx.point_features.row(i));
        agree += pe == pa;
        preds_exact.push_back(pe);
        preds_approx.push_back(pa);
    }

    std::printf("\nfidelity of block-parallel features: %.2f%% "
                "cosine, %.2f%% identical head predictions\n",
                100.0 * fidelity,
                100.0 * static_cast<double>(agree) /
                    static_cast<double>(scene.size()));
    std::printf("head mIoU: %.1f%% (exact ops) vs %.1f%% (block "
                "ops)\n",
                100.0 * nn::meanIoU(preds_exact, labels,
                                    data::kS3disNumClasses),
                100.0 * nn::meanIoU(preds_approx, labels,
                                    data::kS3disNumClasses));
    std::printf("point-op work: %llu distance evals (exact) vs %llu "
                "(block) -> %.1fx less\n",
                static_cast<unsigned long long>(
                    exact.op_stats.distance_computations),
                static_cast<unsigned long long>(
                    approx.op_stats.distance_computations),
                static_cast<double>(
                    exact.op_stats.distance_computations) /
                    static_cast<double>(
                        approx.op_stats.distance_computations));

    // What it looks like on silicon at deployment scale.
    const data::PointCloud big = data::makeS3disScene(131000, 43);
    const accel::RunReport ours =
        accel::makeFractalCloud(256).run(net.config(), big);
    const accel::RunReport base =
        accel::makePointAcc().run(net.config(), big);
    std::printf("\nat 131K points on the accelerator model: "
                "FractalCloud %.1f ms / %.1f mJ, PointAcc-style "
                "%.1f ms / %.1f mJ (%.1fx faster, %.1fx less "
                "energy)\n",
                ours.totalLatencyMs(), ours.totalEnergyMj(),
                base.totalLatencyMs(), base.totalEnergyMj(),
                base.totalLatencyMs() / ours.totalLatencyMs(),
                base.totalEnergyMj() / ours.totalEnergyMj());
    return 0;
}
