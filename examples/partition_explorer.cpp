/**
 * @file
 * Partition explorer: visualize and compare the four partitioning
 * strategies on the same scene — an ASCII top-down heat map of block
 * occupancy plus the balance/work statistics behind Fig. 3 and
 * Fig. 5. Useful for building intuition about why shape-aware
 * midpoints beat space-uniform cuts and dodge KD-tree sorting.
 *
 * Build & run:  ./build/examples/partition_explorer
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "dataset/s3dis.h"
#include "partition/partitioner.h"

namespace {

using namespace fc;

/** Top-down (x-y) density map of leaf-block sizes. */
void
asciiBlockMap(const data::PointCloud &cloud,
              const part::BlockTree &tree)
{
    constexpr int kW = 64, kH = 20;
    // For every grid cell, find the size of the leaf owning its
    // densest point.
    std::vector<std::uint32_t> leaf_of_point(cloud.size());
    for (std::size_t li = 0; li < tree.leaves().size(); ++li) {
        const part::BlockNode &leaf = tree.node(tree.leaves()[li]);
        for (std::uint32_t pos = leaf.begin; pos < leaf.end; ++pos)
            leaf_of_point[tree.order()[pos]] =
                static_cast<std::uint32_t>(leaf.size());
    }
    const Aabb box = cloud.bounds();
    const Vec3 ext = box.extent();
    std::vector<std::uint32_t> cell(kW * kH, 0);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const int gx = std::min(
            kW - 1, static_cast<int>((cloud[i].x - box.lo.x) /
                                     ext.x * kW));
        const int gy = std::min(
            kH - 1, static_cast<int>((cloud[i].y - box.lo.y) /
                                     ext.y * kH));
        cell[gy * kW + gx] =
            std::max(cell[gy * kW + gx], leaf_of_point[i]);
    }
    // Shade by block size: big blocks (overflowing the threshold)
    // show up as '#'.
    const char *shades = " .:-=+*#";
    std::uint32_t max_size = 1;
    for (const std::uint32_t c : cell)
        max_size = std::max(max_size, c);
    for (int y = kH - 1; y >= 0; --y) {
        std::fputc('|', stdout);
        for (int x = 0; x < kW; ++x) {
            const std::uint32_t v = cell[y * kW + x];
            const int shade =
                v == 0 ? 0
                       : 1 + static_cast<int>(
                                 6.99 * v / static_cast<double>(
                                                max_size));
            std::fputc(shades[std::min(shade, 7)], stdout);
        }
        std::fputs("|\n", stdout);
    }
}

} // namespace

int
main()
{
    const data::PointCloud scene = data::makeS3disScene(16384, 3);
    part::PartitionConfig config;
    config.threshold = 256;

    std::printf("scene: %zu points, threshold %u\n\n", scene.size(),
                config.threshold);
    std::printf("%-9s %-8s %-7s %-11s %-11s %-12s %-10s %s\n",
                "method", "blocks", "depth", "leaf sizes", "cv",
                "traversals", "sorts", "compares");

    std::vector<std::pair<part::Method, part::PartitionResult>> all;
    for (const part::Method method :
         {part::Method::Uniform, part::Method::Octree,
          part::Method::KdTree, part::Method::Fractal}) {
        const auto p = part::makePartitioner(method);
        all.emplace_back(method, p->partition(scene, config));
        const part::PartitionResult &r = all.back().second;
        char sizes[32];
        std::snprintf(sizes, sizeof(sizes), "[%u, %u]",
                      r.tree.minLeafSize(), r.tree.maxLeafSize());
        std::printf("%-9s %-8zu %-7u %-11s %-11.3f %-12u %-10llu "
                    "%llu\n",
                    part::methodName(method).c_str(),
                    r.tree.leaves().size(), r.tree.maxDepth(), sizes,
                    r.tree.leafSizeCv(), r.stats.traversal_passes,
                    static_cast<unsigned long long>(r.stats.num_sorts),
                    static_cast<unsigned long long>(
                        r.stats.sort_compares));
    }

    for (const auto &[method, result] : all) {
        if (method != part::Method::Uniform &&
            method != part::Method::Fractal) {
            continue; // map the two extremes only
        }
        std::printf("\nblock map (%s): darker = larger owning block; "
                    "'#' marks threshold overflow\n",
                    part::methodName(method).c_str());
        asciiBlockMap(scene, result.tree);
    }
    std::printf("\nuniform cuts ignore the furniture clusters and "
                "overflow th; fractal splits track the occupied "
                "space and keep every block under th.\n");
    return 0;
}
