/**
 * @file
 * Unit tests for IEEE binary16 emulation.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/fp16.h"
#include "common/rng.h"

namespace fc {
namespace {

TEST(Fp16, ExactSmallIntegers)
{
    // All integers up to 2048 are exactly representable.
    for (int i = -2048; i <= 2048; ++i) {
        EXPECT_EQ(fp16Round(static_cast<float>(i)),
                  static_cast<float>(i))
            << "integer " << i;
    }
}

TEST(Fp16, KnownBitPatterns)
{
    EXPECT_EQ(fp32ToFp16Bits(0.0f), 0x0000u);
    EXPECT_EQ(fp32ToFp16Bits(-0.0f), 0x8000u);
    EXPECT_EQ(fp32ToFp16Bits(1.0f), 0x3c00u);
    EXPECT_EQ(fp32ToFp16Bits(-1.0f), 0xbc00u);
    EXPECT_EQ(fp32ToFp16Bits(2.0f), 0x4000u);
    EXPECT_EQ(fp32ToFp16Bits(0.5f), 0x3800u);
    EXPECT_EQ(fp32ToFp16Bits(65504.0f), 0x7bffu); // max normal
}

TEST(Fp16, OverflowToInfinity)
{
    EXPECT_EQ(fp32ToFp16Bits(1e6f), 0x7c00u);
    EXPECT_EQ(fp32ToFp16Bits(-1e6f), 0xfc00u);
    EXPECT_TRUE(std::isinf(fp16BitsToFp32(0x7c00u)));
}

TEST(Fp16, NanPropagates)
{
    const std::uint16_t bits =
        fp32ToFp16Bits(std::numeric_limits<float>::quiet_NaN());
    EXPECT_TRUE(std::isnan(fp16BitsToFp32(bits)));
}

TEST(Fp16, SubnormalsRoundTrip)
{
    // Smallest positive subnormal: 2^-24.
    const float tiny = std::ldexp(1.0f, -24);
    EXPECT_EQ(fp16Round(tiny), tiny);
    // Below half the smallest subnormal flushes to zero.
    EXPECT_EQ(fp16Round(std::ldexp(1.0f, -26)), 0.0f);
}

TEST(Fp16, RoundTripIsIdempotent)
{
    Pcg32 rng(7);
    for (int i = 0; i < 20000; ++i) {
        const float v = rng.uniform(-100.0f, 100.0f);
        const float once = fp16Round(v);
        EXPECT_EQ(fp16Round(once), once);
    }
}

TEST(Fp16, RelativeErrorBounded)
{
    // Round-to-nearest gives relative error <= 2^-11 for normals.
    Pcg32 rng(11);
    for (int i = 0; i < 20000; ++i) {
        const float v = rng.uniform(0.001f, 1000.0f);
        const float r = fp16Round(v);
        EXPECT_LE(std::abs(r - v) / v, 1.0f / 2048.0f + 1e-7f)
            << "value " << v;
    }
}

TEST(Fp16, ClassOperatorsRound)
{
    Fp16 h = 3.14159f;
    EXPECT_NEAR(static_cast<float>(h), 3.14159f, 3.14159f / 1024.0f);
    h = 0.1f;
    EXPECT_NE(static_cast<float>(h), 0.1f); // 0.1 is inexact
    EXPECT_NEAR(static_cast<float>(h), 0.1f, 1e-4f);
}

TEST(Fp16, RoundToNearestEvenTies)
{
    // 2049 is exactly between 2048 and 2050 in fp16; even mantissa
    // wins (2048).
    EXPECT_EQ(fp16Round(2049.0f), 2048.0f);
    EXPECT_EQ(fp16Round(2051.0f), 2052.0f);
}

} // namespace
} // namespace fc
