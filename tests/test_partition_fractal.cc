/**
 * @file
 * Unit and property tests for the Fractal partitioner (Alg. 1).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/s3dis.h"
#include "dataset/synthetic.h"
#include "partition/fractal.h"

namespace fc::part {
namespace {

data::PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    Pcg32 rng(seed);
    data::PointCloud cloud;
    for (std::size_t i = 0; i < n; ++i)
        cloud.addPoint({rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)});
    return cloud;
}

TEST(Fractal, PaperExampleShape)
{
    // The paper's Fig. 6: 80 points, th = 24 yields 4 leaf blocks via
    // 3 split iterations when the distribution is two-sided. Random
    // uniform data gives a similar small tree; verify the invariants
    // rather than exact counts.
    const data::PointCloud cloud = randomCloud(80, 1);
    FractalPartitioner p;
    PartitionConfig config;
    config.threshold = 24;
    const PartitionResult result = p.partition(cloud, config);
    result.tree.validate();
    EXPECT_GE(result.tree.leaves().size(), 4u);
    for (const NodeIdx leaf : result.tree.leaves())
        EXPECT_LE(result.tree.node(leaf).size(), 24u);
}

TEST(Fractal, SplitValueIsExtremaMidpoint)
{
    const data::PointCloud cloud = randomCloud(500, 2);
    FractalPartitioner p;
    PartitionConfig config;
    config.threshold = 64;
    const PartitionResult result = p.partition(cloud, config);
    const BlockTree &tree = result.tree;
    // Root split: midpoint of x extrema over all points.
    const BlockNode &root = tree.node(0);
    ASSERT_FALSE(root.isLeaf());
    float lo = 1e9f, hi = -1e9f;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        lo = std::min(lo, cloud[i][root.splitDim]);
        hi = std::max(hi, cloud[i][root.splitDim]);
    }
    EXPECT_FLOAT_EQ(root.splitValue, (lo + hi) * 0.5f);
    // Children actually respect the split.
    const BlockNode &l = tree.node(root.left);
    for (std::uint32_t pos = l.begin; pos < l.end; ++pos)
        EXPECT_LT(cloud[tree.order()[pos]][root.splitDim],
                  root.splitValue);
    const BlockNode &r = tree.node(root.right);
    for (std::uint32_t pos = r.begin; pos < r.end; ++pos)
        EXPECT_GE(cloud[tree.order()[pos]][root.splitDim],
                  root.splitValue);
}

TEST(Fractal, DimensionsCycle)
{
    const data::PointCloud cloud = randomCloud(2000, 3);
    FractalPartitioner p;
    PartitionConfig config;
    config.threshold = 128;
    const PartitionResult result = p.partition(cloud, config);
    const BlockTree &tree = result.tree;
    // Root splits on x (first_dim 0); its children on y (unless
    // degenerate, which uniform random data is not).
    const BlockNode &root = tree.node(0);
    EXPECT_EQ(root.splitDim, 0);
    if (!tree.node(root.left).isLeaf()) {
        EXPECT_EQ(tree.node(root.left).splitDim, 1);
    }
    if (!tree.node(root.right).isLeaf()) {
        EXPECT_EQ(tree.node(root.right).splitDim, 1);
    }
}

TEST(Fractal, HandlesCoincidentPoints)
{
    data::PointCloud cloud;
    for (int i = 0; i < 100; ++i)
        cloud.addPoint({1.0f, 2.0f, 3.0f});
    FractalPartitioner p;
    PartitionConfig config;
    config.threshold = 16;
    const PartitionResult result = p.partition(cloud, config);
    result.tree.validate();
    // Unsplittable: one oversized leaf, with degenerate retries
    // recorded.
    EXPECT_EQ(result.tree.leaves().size(), 1u);
    EXPECT_GT(result.stats.degenerate_retries, 0u);
}

TEST(Fractal, HandlesCoplanarPoints)
{
    // All points in the z = 0 plane: the z axis is never splittable,
    // but cycling falls through to x/y (paper §VI-D).
    Pcg32 rng(4);
    data::PointCloud cloud;
    for (int i = 0; i < 1000; ++i)
        cloud.addPoint({rng.uniform(-1, 1), rng.uniform(-1, 1), 0.0f});
    FractalPartitioner p;
    PartitionConfig config;
    config.threshold = 64;
    config.first_dim = 2; // start on the degenerate axis
    const PartitionResult result = p.partition(cloud, config);
    result.tree.validate();
    for (const NodeIdx leaf : result.tree.leaves())
        EXPECT_LE(result.tree.node(leaf).size(), 64u);
}

TEST(Fractal, NoSortsEver)
{
    const data::PointCloud cloud = randomCloud(4096, 5);
    FractalPartitioner p;
    PartitionConfig config;
    config.threshold = 64;
    const PartitionResult result = p.partition(cloud, config);
    EXPECT_EQ(result.stats.num_sorts, 0u);
    EXPECT_EQ(result.stats.sort_compares, 0u);
    EXPECT_GT(result.stats.elements_traversed, 0u);
}

TEST(Fractal, TraversalPassCountMatchesFig5)
{
    // 1K points at BS = 64 partitions in ~4 level passes (Fig. 5);
    // uniform random data is the best case the figure illustrates.
    const data::PointCloud cloud = randomCloud(1024, 6);
    FractalPartitioner p;
    PartitionConfig config;
    config.threshold = 64;
    const PartitionResult result = p.partition(cloud, config);
    EXPECT_GE(result.stats.traversal_passes, 4u);
    EXPECT_LE(result.stats.traversal_passes, 7u);
}

TEST(Fractal, ModeratelyBalancedOnScenes)
{
    const data::PointCloud scene = data::makeS3disScene(20000, 7);
    FractalPartitioner p;
    PartitionConfig config;
    config.threshold = 256;
    const PartitionResult result = p.partition(scene, config);
    result.tree.validate();
    // Threshold respected and imbalance bounded by th (paper §VI-D).
    EXPECT_LE(result.tree.maxLeafSize(), 256u);
    // Balance: coefficient of variation clearly below the uniform
    // partitioner's on the same scene (checked cross-method in
    // test_partition_others).
    EXPECT_LT(result.tree.leafSizeCv(), 1.0);
}

/** Property sweep: sizes x thresholds. */
class FractalSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t,
                                                 std::uint32_t>>
{};

TEST_P(FractalSweep, InvariantsHold)
{
    const auto [n, th] = GetParam();
    const data::PointCloud scene = data::makeS3disScene(n, 100 + n);
    FractalPartitioner p;
    PartitionConfig config;
    config.threshold = th;
    const PartitionResult result = p.partition(scene, config);
    result.tree.validate();
    std::uint64_t covered = 0;
    for (const NodeIdx leaf : result.tree.leaves()) {
        EXPECT_LE(result.tree.node(leaf).size(), th);
        covered += result.tree.node(leaf).size();
    }
    EXPECT_EQ(covered, scene.size());
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndThresholds, FractalSweep,
    ::testing::Combine(::testing::Values<std::size_t>(64, 1000, 4096,
                                                      16384),
                       ::testing::Values<std::uint32_t>(8, 64, 256,
                                                        1280)));

} // namespace
} // namespace fc::part
