/**
 * @file
 * Shard-local memory, proven:
 *
 *  - topology parsing / per-shard cpu carving (disjoint, node-major,
 *    deterministic wrap) and the FC_NO_PIN escape hatch,
 *  - served results bit-identical pinned vs unpinned across shard
 *    and thread counts,
 *  - per-shard workspace pools: creation counts stay flat per shard
 *    under pinned mixed-class load, and the foreign-return tripwire
 *    stays at zero,
 *  - the slab-recycled outcome pool: waitInto == wait byte for byte,
 *    recycled slots never alias a live result, and slot counts stay
 *    bounded by concurrency, and
 *  - per-class admission bounds reject exactly the bounded class.
 *
 * Suite names (ShardedLocality, AsyncPipelineOutcome,
 * SchedulerClassCapacity) are chosen to ride the CI TSan filter's
 * existing Sharded* / AsyncPipeline.* / Scheduler.* globs.
 */

#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/sharded_executor.h"
#include "core/topology.h"
#include "dataset/s3dis.h"
#include "serve/async_pipeline.h"
#include "serve/scheduler.h"

namespace {

using namespace fc;

// ---------------------------------------------------------------------
// Topology carving
// ---------------------------------------------------------------------

core::CpuTopology
twoNodeTopology()
{
    core::CpuTopology t;
    t.nodes = {{0, 1, 2, 3}, {4, 5, 6, 7}};
    return t;
}

TEST(ShardedLocality, DetectedTopologyIsNonEmpty)
{
    const core::CpuTopology t = core::detectCpuTopology();
    ASSERT_GE(t.nodes.size(), 1u);
    EXPECT_GE(t.cpuCount(), 1u);
    for (const std::vector<int> &node : t.nodes)
        for (const int cpu : node)
            EXPECT_GE(cpu, 0);
}

TEST(ShardedLocality, AssignmentPrefersHomeNodeAndStaysDisjoint)
{
    const auto sets =
        core::shardCpuAssignment(twoNodeTopology(), 2, 2);
    ASSERT_EQ(sets.size(), 2u);
    // Shard s prefers node s % nodes: shard 0 draws from node 0,
    // shard 1 from node 1.
    EXPECT_EQ(sets[0], (std::vector<int>{0, 1}));
    EXPECT_EQ(sets[1], (std::vector<int>{4, 5}));
}

TEST(ShardedLocality, AssignmentCoversEveryCpuOnceBeforeWrapping)
{
    const auto sets =
        core::shardCpuAssignment(twoNodeTopology(), 4, 2);
    ASSERT_EQ(sets.size(), 4u);
    std::set<int> seen;
    for (const std::vector<int> &cpus : sets) {
        ASSERT_EQ(cpus.size(), 2u);
        for (const int cpu : cpus)
            EXPECT_TRUE(seen.insert(cpu).second)
                << "cpu " << cpu << " assigned twice before the "
                << "topology was exhausted";
    }
    EXPECT_EQ(seen.size(), 8u);
}

TEST(ShardedLocality, OversubscribedAssignmentWrapsDeterministically)
{
    core::CpuTopology one_node;
    one_node.nodes = {{0, 1}};
    const auto first = core::shardCpuAssignment(one_node, 2, 4);
    const auto second = core::shardCpuAssignment(one_node, 2, 4);
    EXPECT_EQ(first, second); // pure function of its inputs
    for (const std::vector<int> &cpus : first) {
        ASSERT_EQ(cpus.size(), 4u);
        for (const int cpu : cpus)
            EXPECT_TRUE(cpu == 0 || cpu == 1);
    }
}

TEST(ShardedLocality, FcNoPinDisablesPinningAtRuntime)
{
    ASSERT_EQ(::setenv("FC_NO_PIN", "1", 1), 0);
    EXPECT_TRUE(core::pinningDisabled());
    {
        core::ShardedExecutor executor(2, 1, /*standalone=*/true,
                                       /*pin_workers=*/true);
        EXPECT_FALSE(executor.pinned());
    }
    // "0" means enabled — the knob is a boolean, not mere presence.
    ASSERT_EQ(::setenv("FC_NO_PIN", "0", 1), 0);
    EXPECT_FALSE(core::pinningDisabled());
    ASSERT_EQ(::unsetenv("FC_NO_PIN"), 0);
    EXPECT_FALSE(core::pinningDisabled());
    {
        core::ShardedExecutor executor(2, 1, /*standalone=*/true,
                                       /*pin_workers=*/true);
        EXPECT_TRUE(executor.pinned());
    }
    core::ShardedExecutor unpinned(2, 1, /*standalone=*/true,
                                   /*pin_workers=*/false);
    EXPECT_FALSE(unpinned.pinned());
}

// ---------------------------------------------------------------------
// Pinning never changes results
// ---------------------------------------------------------------------

TEST(ShardedLocality, ServedResultsIdenticalAcrossPinningShardsThreads)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 31);
    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.3f;
    request.neighbors = 8;

    PipelineOptions reference_options;
    reference_options.num_threads = 1;
    reference_options.threshold = 64;
    const std::vector<BatchResult> baseline =
        FractalCloudPipeline::runBatch({scene}, reference_options,
                                       request);
    ASSERT_EQ(baseline.size(), 1u);

    const auto cloud =
        std::make_shared<const data::PointCloud>(scene);
    for (const unsigned shards : {1u, 2u, 4u}) {
        for (const bool pin : {true, false}) {
            for (const unsigned threads : {1u, 2u, 8u}) {
                SCOPED_TRACE("shards=" + std::to_string(shards) +
                             " pin=" + std::to_string(pin) +
                             " threads=" + std::to_string(threads));
                serve::ServeOptions options;
                options.pipeline.num_threads = threads;
                options.pipeline.threshold = 64;
                options.num_shards = shards;
                options.pin_shards = pin;
                serve::AsyncPipeline server(options);
                // Distinct placement keys spread the requests over
                // shards; results must not care where they land.
                for (std::uint64_t key : {7ull, 8ull, 9ull}) {
                    serve::RequestOutcome outcome;
                    server.waitInto(
                        server.submitShared(cloud, request,
                                            std::nullopt,
                                            serve::Priority::Interactive,
                                            key),
                        outcome);
                    ASSERT_EQ(outcome.state,
                              serve::RequestState::Done);
                    EXPECT_EQ(outcome.result.sampled.indices,
                              baseline[0].sampled.indices);
                    EXPECT_EQ(outcome.result.grouped.indices,
                              baseline[0].grouped.indices);
                    EXPECT_EQ(outcome.result.gathered.values,
                              baseline[0].gathered.values);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Per-shard workspace pools
// ---------------------------------------------------------------------

TEST(ShardedLocality, WorkspacesStayFlatPerShardUnderMixedClassLoad)
{
    const auto cloud = std::make_shared<const data::PointCloud>(
        data::makeS3disScene(1024, 37));
    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.3f;
    request.neighbors = 8;

    serve::ServeOptions options;
    options.pipeline.num_threads = 1;
    options.pipeline.threshold = 64;
    options.num_shards = 2;
    options.pin_shards = true;
    serve::AsyncPipeline server(options);

    static constexpr serve::Priority kClasses[3] = {
        serve::Priority::Interactive, serve::Priority::Batch,
        serve::Priority::Background};
    const auto round = [&] {
        for (std::uint64_t key = 1; key <= 8; ++key) {
            const serve::Ticket ticket = server.submitShared(
                cloud, request, std::nullopt, kClasses[key % 3], key);
            ASSERT_EQ(server.wait(ticket).state,
                      serve::RequestState::Done);
        }
    };
    round(); // warm every shard's pool
    std::vector<std::size_t> created;
    for (unsigned s = 0; s < server.numShards(); ++s)
        created.push_back(server.workspacesCreated(s));
    round();
    round();
    for (unsigned s = 0; s < server.numShards(); ++s) {
        SCOPED_TRACE("shard=" + std::to_string(s));
        // Flat per shard: steady per-shard concurrency never creates
        // another workspace, proving checkouts stay on their shard.
        EXPECT_EQ(server.workspacesCreated(s), created[s]);
        EXPECT_LE(server.workspacesCreated(s), server.numThreads());
        EXPECT_EQ(server.metrics()
                      .counter("serve.workspace.foreign_return{shard=" +
                               std::to_string(s) + "}")
                      .value(),
                  0u);
    }
}

TEST(ShardedLocality, SharedPoolModeStillServesIdentically)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 41);
    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.3f;
    request.neighbors = 8;

    serve::ServeOptions local;
    local.pipeline.num_threads = 1;
    local.pipeline.threshold = 64;
    local.num_shards = 2;
    serve::ServeOptions global = local;
    global.shard_local_workspaces = false;

    serve::AsyncPipeline a(local);
    serve::AsyncPipeline b(global);
    const auto cloud =
        std::make_shared<const data::PointCloud>(scene);
    for (std::uint64_t key = 1; key <= 4; ++key) {
        SCOPED_TRACE("key=" + std::to_string(key));
        const serve::RequestOutcome oa = a.wait(a.submitShared(
            cloud, request, std::nullopt,
            serve::Priority::Interactive, key));
        const serve::RequestOutcome ob = b.wait(b.submitShared(
            cloud, request, std::nullopt,
            serve::Priority::Interactive, key));
        ASSERT_EQ(oa.state, serve::RequestState::Done);
        ASSERT_EQ(ob.state, serve::RequestState::Done);
        EXPECT_EQ(oa.result.sampled.indices, ob.result.sampled.indices);
        EXPECT_EQ(oa.result.gathered.values, ob.result.gathered.values);
    }
    // Shared mode routes every checkout to pool 0.
    for (unsigned s = 1; s < b.numShards(); ++s)
        EXPECT_EQ(b.workspacesCreated(s), 0u);
}

// ---------------------------------------------------------------------
// Outcome pool
// ---------------------------------------------------------------------

TEST(AsyncPipelineOutcome, WaitIntoMatchesValueWaitByteForByte)
{
    const auto cloud = std::make_shared<const data::PointCloud>(
        data::makeS3disScene(1024, 43));
    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.3f;
    request.neighbors = 8;

    serve::ServeOptions options;
    options.pipeline.num_threads = 2;
    options.pipeline.threshold = 64;
    serve::AsyncPipeline server(options);

    const serve::RequestOutcome value =
        server.wait(server.submitShared(cloud, request));
    ASSERT_EQ(value.state, serve::RequestState::Done);

    serve::RequestOutcome into;
    server.waitInto(server.submitShared(cloud, request), into);
    ASSERT_EQ(into.state, serve::RequestState::Done);
    EXPECT_EQ(into.result.sampled.indices, value.result.sampled.indices);
    EXPECT_EQ(into.result.grouped.indices, value.result.grouped.indices);
    EXPECT_EQ(into.result.gathered.values, value.result.gathered.values);
    EXPECT_EQ(into.result.num_blocks, value.result.num_blocks);

    // Dirty reuse: waitInto into the same outcome again (different
    // request shape) must fully overwrite it.
    BatchRequest wider = request;
    wider.neighbors = 4;
    server.waitInto(server.submitShared(cloud, wider), into);
    ASSERT_EQ(into.state, serve::RequestState::Done);
    EXPECT_NE(into.result.grouped.indices, value.result.grouped.indices);
}

TEST(AsyncPipelineOutcome, RecycledSlotsNeverAliasALiveResult)
{
    const auto cloud = std::make_shared<const data::PointCloud>(
        data::makeS3disScene(1024, 47));
    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.3f;
    request.neighbors = 8;

    serve::ServeOptions options;
    options.pipeline.num_threads = 1;
    options.pipeline.threshold = 64;
    serve::AsyncPipeline server(options);

    serve::RequestOutcome first;
    server.waitInto(server.submitShared(cloud, request), first);
    ASSERT_EQ(first.state, serve::RequestState::Done);
    const auto sampled_snapshot = first.result.sampled.indices;
    const auto gathered_snapshot = first.result.gathered.values;

    // The next request recycles the same slot and overwrites it with
    // a different shape; the consumed outcome must not change (it
    // was copied out, never aliased).
    BatchRequest other = request;
    other.sample_rate = 0.5;
    other.neighbors = 4;
    serve::RequestOutcome second;
    server.waitInto(server.submitShared(cloud, other), second);
    ASSERT_EQ(second.state, serve::RequestState::Done);
    EXPECT_EQ(first.result.sampled.indices, sampled_snapshot);
    EXPECT_EQ(first.result.gathered.values, gathered_snapshot);

    // Sequential traffic keeps the slab at one slot.
    EXPECT_EQ(server.outcomeSlotsCreated(), 1u);
}

TEST(AsyncPipelineOutcome, SlotCountBoundedByUnconsumedTickets)
{
    const auto cloud = std::make_shared<const data::PointCloud>(
        data::makeS3disScene(512, 53));
    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.3f;
    request.neighbors = 8;

    serve::ServeOptions options;
    options.pipeline.num_threads = 2;
    options.pipeline.threshold = 64;
    serve::AsyncPipeline server(options);

    // Hold several tickets un-consumed: each terminal-but-uncollected
    // request keeps its slot leased, so the slab must grow to cover
    // them — and stop there.
    std::vector<serve::Ticket> held;
    for (int i = 0; i < 6; ++i)
        held.push_back(server.submitShared(cloud, request));
    for (const serve::Ticket ticket : held)
        ASSERT_EQ(server.wait(ticket).state,
                  serve::RequestState::Done);
    const std::size_t peak = server.outcomeSlotsCreated();
    EXPECT_GE(peak, 1u);
    EXPECT_LE(peak, 6u);

    // Consumed promptly, the slab stops growing for good.
    for (int i = 0; i < 20; ++i) {
        serve::RequestOutcome out;
        server.waitInto(server.submitShared(cloud, request), out);
        ASSERT_EQ(out.state, serve::RequestState::Done);
    }
    EXPECT_EQ(server.outcomeSlotsCreated(), peak);

    // Discarded tickets recycle their slots too.
    for (int i = 0; i < 4; ++i)
        server.discard(server.submitShared(cloud, request));
    while (server.liveRecordCount() != 0 ||
           server.runningCount() != 0 || server.queuedCount() != 0)
        std::this_thread::yield();
    EXPECT_EQ(server.outcomeSlotsCreated(), peak);
}

// ---------------------------------------------------------------------
// Per-class admission bounds
// ---------------------------------------------------------------------

TEST(SchedulerClassCapacity, BoundsRejectOnlyTheBoundedClass)
{
    const auto cloud = std::make_shared<const data::PointCloud>(
        data::makeS3disScene(128, 59));
    BatchRequest request;
    request.neighbors = 8;

    core::metrics::Registry registry;
    std::array<std::size_t, serve::kNumPriorities> bounds{};
    bounds[static_cast<unsigned>(serve::Priority::Background)] = 1;
    serve::Scheduler scheduler(
        /*queue_capacity=*/8, /*num_threads=*/1,
        /*work_conserving=*/true, /*num_shards=*/1,
        serve::kPriorityWeight, &registry, bounds);

    const auto admit = [&](serve::Priority priority) {
        return scheduler.trySubmit(cloud, request, std::nullopt,
                                   priority);
    };
    const auto bg1 = admit(serve::Priority::Background);
    ASSERT_TRUE(bg1.has_value());
    // Second Background bounces off its class bound...
    EXPECT_FALSE(admit(serve::Priority::Background).has_value());
    EXPECT_EQ(registry
                  .counter("serve.rejected_class{class=background}")
                  .value(),
              1u);
    // ...while the unbounded classes sail through.
    const auto i1 = admit(serve::Priority::Interactive);
    const auto b1 = admit(serve::Priority::Batch);
    ASSERT_TRUE(i1.has_value());
    ASSERT_TRUE(b1.has_value());
    EXPECT_EQ(registry
                  .counter("serve.rejected_class{class=interactive}")
                  .value(),
              0u);

    // Draining the Background request frees its class allowance.
    // (Weighted aging pops Interactive and Batch first.)
    for (int i = 0; i < 3; ++i) {
        const auto job = scheduler.acquire(0);
        ASSERT_TRUE(job.has_value());
        scheduler.complete(job->id, BatchResult{});
    }
    const auto bg2 = admit(serve::Priority::Background);
    ASSERT_TRUE(bg2.has_value());

    // Retire everything so the scheduler can be destroyed cleanly.
    const auto last = scheduler.acquire(0);
    ASSERT_TRUE(last.has_value());
    scheduler.complete(last->id, BatchResult{});
    for (const auto &ticket : {bg1, i1, b1, bg2})
        scheduler.discard(*ticket);
}

TEST(SchedulerClassCapacity, ServePipelineSurfacesTheKnob)
{
    serve::ServeOptions options;
    options.pipeline.num_threads = 1;
    options.pipeline.threshold = 64;
    options.class_capacity[static_cast<unsigned>(
        serve::Priority::Background)] = 2;
    serve::AsyncPipeline server(options);
    EXPECT_EQ(server.metrics()
                  .gauge("serve.class_capacity{class=background}")
                  .value(),
              2);
    EXPECT_EQ(server.metrics()
                  .gauge("serve.class_capacity{class=interactive}")
                  .value(),
              0);
}

} // namespace
