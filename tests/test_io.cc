/**
 * @file
 * Tests for PLY / XYZ point-cloud file I/O.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>

#include "core/parallel.h"
#include "dataset/io.h"
#include "dataset/modelnet.h"
#include "dataset/s3dis.h"

namespace fc::data {
namespace {

class IoTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const std::string &name)
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        return ::testing::TempDir() + info->name() + "_" + name;
    }
};

TEST_F(IoTest, PlyRoundTripLabeled)
{
    const PointCloud original = makeModelNetObject(3, 128, 7);
    PointCloud labeled = original;
    labeled.labels().assign(labeled.size(), 0);
    for (std::size_t i = 0; i < labeled.size(); ++i)
        labeled.labels()[i] = static_cast<std::int32_t>(i % 5);

    const std::string path = tempPath("cloud.ply");
    ASSERT_TRUE(savePly(labeled, path));

    PointCloud loaded;
    ASSERT_TRUE(loadPly(loaded, path));
    ASSERT_EQ(loaded.size(), labeled.size());
    ASSERT_TRUE(loaded.hasLabels());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_NEAR(loaded[i].x, labeled[i].x, 1e-5f);
        EXPECT_NEAR(loaded[i].y, labeled[i].y, 1e-5f);
        EXPECT_NEAR(loaded[i].z, labeled[i].z, 1e-5f);
        EXPECT_EQ(loaded.labels()[i], labeled.labels()[i]);
    }
    std::remove(path.c_str());
}

TEST_F(IoTest, PlyRoundTripUnlabeled)
{
    PointCloud cloud;
    cloud.addPoint({1.5f, -2.25f, 0.125f});
    cloud.addPoint({0, 0, 0});
    const std::string path = tempPath("plain.ply");
    ASSERT_TRUE(savePly(cloud, path));
    PointCloud loaded;
    ASSERT_TRUE(loadPly(loaded, path));
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_FALSE(loaded.hasLabels());
    EXPECT_FLOAT_EQ(loaded[0].x, 1.5f);
    std::remove(path.c_str());
}

TEST_F(IoTest, PlyRejectsGarbage)
{
    const std::string path = tempPath("bad.ply");
    {
        std::ofstream out(path);
        out << "not a ply file\n";
    }
    PointCloud loaded;
    EXPECT_FALSE(loadPly(loaded, path));
    std::remove(path.c_str());
}

TEST_F(IoTest, PlyMissingFileFails)
{
    PointCloud loaded;
    EXPECT_FALSE(loadPly(loaded, "/nonexistent/nowhere.ply"));
    EXPECT_FALSE(savePly(loaded, "/nonexistent/nowhere.ply"));
}

TEST_F(IoTest, XyzRoundTrip)
{
    PointCloud cloud;
    cloud.addPoint({1, 2, 3}, 4);
    cloud.addPoint({-1, -2, -3}, 0);
    const std::string path = tempPath("cloud.xyz");
    ASSERT_TRUE(saveXyz(cloud, path));
    PointCloud loaded;
    ASSERT_TRUE(loadXyz(loaded, path));
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.labels()[0], 4);
    EXPECT_FLOAT_EQ(loaded[1].y, -2.0f);
    std::remove(path.c_str());
}

TEST_F(IoTest, XyzSkipsComments)
{
    const std::string path = tempPath("comments.xyz");
    {
        std::ofstream out(path);
        out << "# header comment\n1 2 3\n\n# another\n4 5 6\n";
    }
    PointCloud loaded;
    ASSERT_TRUE(loadXyz(loaded, path));
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_FLOAT_EQ(loaded[1].x, 4.0f);
    std::remove(path.c_str());
}

TEST_F(IoTest, XyzRejectsMalformedRow)
{
    const std::string path = tempPath("bad.xyz");
    {
        std::ofstream out(path);
        out << "1 2\n"; // only two coordinates
    }
    PointCloud loaded;
    EXPECT_FALSE(loadXyz(loaded, path));
    std::remove(path.c_str());
}

void
expectBitIdentical(const PointCloud &a, const PointCloud &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.hasLabels(), b.hasLabels());
    if (a.size() == 0)
        return;
    EXPECT_EQ(std::memcmp(a.coords().data(), b.coords().data(),
                          a.size() * sizeof(Vec3)),
              0);
    if (a.hasLabels()) {
        EXPECT_EQ(std::memcmp(a.labels().data(), b.labels().data(),
                              a.size() * sizeof(std::int32_t)),
                  0);
    }
}

TEST_F(IoTest, XyzParallelParseBitIdenticalToSerial)
{
    // Large enough for several 64 KiB parse chunks, so the splice
    // path actually runs.
    const PointCloud scene = makeS3disScene(30000, 5);
    const std::string path = tempPath("parallel.xyz");
    ASSERT_TRUE(saveXyz(scene, path));

    PointCloud serial;
    ASSERT_TRUE(loadXyz(serial, path));
    for (unsigned threads : {2u, 4u, 7u}) {
        core::ThreadPool pool(threads);
        PointCloud parallel;
        ASSERT_TRUE(loadXyz(parallel, path, &pool));
        expectBitIdentical(serial, parallel);
    }
    std::remove(path.c_str());
}

TEST_F(IoTest, PlyParallelParseBitIdenticalToSerial)
{
    const PointCloud scene = makeS3disScene(25000, 6);
    const std::string path = tempPath("parallel.ply");
    ASSERT_TRUE(savePly(scene, path));

    PointCloud serial;
    ASSERT_TRUE(loadPly(serial, path));
    for (unsigned threads : {2u, 4u, 7u}) {
        core::ThreadPool pool(threads);
        PointCloud parallel;
        ASSERT_TRUE(loadPly(parallel, path, &pool));
        expectBitIdentical(serial, parallel);
    }
    std::remove(path.c_str());
}

TEST_F(IoTest, ParallelParseRejectsMalformedRowMidFile)
{
    const PointCloud scene = makeS3disScene(20000, 7);
    const std::string path = tempPath("badrow.xyz");
    ASSERT_TRUE(saveXyz(scene, path));
    {
        std::ofstream out(path, std::ios::app);
        out << "1 2\n"; // malformed row in the last chunk
    }
    core::ThreadPool pool(4);
    PointCloud loaded;
    EXPECT_FALSE(loadXyz(loaded, path, &pool));
    std::remove(path.c_str());
}

TEST_F(IoTest, XyzMixedLabelsRejectedAtAnyThreadCount)
{
    const std::string path = tempPath("mixed.xyz");
    {
        std::ofstream out(path);
        out << "1 2 3 4\n5 6 7\n";
    }
    PointCloud loaded;
    EXPECT_FALSE(loadXyz(loaded, path));
    core::ThreadPool pool(4);
    EXPECT_FALSE(loadXyz(loaded, path, &pool));
    std::remove(path.c_str());
}

} // namespace
} // namespace fc::data
