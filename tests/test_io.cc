/**
 * @file
 * Tests for PLY / XYZ point-cloud file I/O.
 */

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

#include "dataset/io.h"
#include "dataset/modelnet.h"

namespace fc::data {
namespace {

class IoTest : public ::testing::Test
{
  protected:
    std::string
    tempPath(const std::string &name)
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        return ::testing::TempDir() + info->name() + "_" + name;
    }
};

TEST_F(IoTest, PlyRoundTripLabeled)
{
    const PointCloud original = makeModelNetObject(3, 128, 7);
    PointCloud labeled = original;
    labeled.labels().assign(labeled.size(), 0);
    for (std::size_t i = 0; i < labeled.size(); ++i)
        labeled.labels()[i] = static_cast<std::int32_t>(i % 5);

    const std::string path = tempPath("cloud.ply");
    ASSERT_TRUE(savePly(labeled, path));

    PointCloud loaded;
    ASSERT_TRUE(loadPly(loaded, path));
    ASSERT_EQ(loaded.size(), labeled.size());
    ASSERT_TRUE(loaded.hasLabels());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_NEAR(loaded[i].x, labeled[i].x, 1e-5f);
        EXPECT_NEAR(loaded[i].y, labeled[i].y, 1e-5f);
        EXPECT_NEAR(loaded[i].z, labeled[i].z, 1e-5f);
        EXPECT_EQ(loaded.labels()[i], labeled.labels()[i]);
    }
    std::remove(path.c_str());
}

TEST_F(IoTest, PlyRoundTripUnlabeled)
{
    PointCloud cloud;
    cloud.addPoint({1.5f, -2.25f, 0.125f});
    cloud.addPoint({0, 0, 0});
    const std::string path = tempPath("plain.ply");
    ASSERT_TRUE(savePly(cloud, path));
    PointCloud loaded;
    ASSERT_TRUE(loadPly(loaded, path));
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_FALSE(loaded.hasLabels());
    EXPECT_FLOAT_EQ(loaded[0].x, 1.5f);
    std::remove(path.c_str());
}

TEST_F(IoTest, PlyRejectsGarbage)
{
    const std::string path = tempPath("bad.ply");
    {
        std::ofstream out(path);
        out << "not a ply file\n";
    }
    PointCloud loaded;
    EXPECT_FALSE(loadPly(loaded, path));
    std::remove(path.c_str());
}

TEST_F(IoTest, PlyMissingFileFails)
{
    PointCloud loaded;
    EXPECT_FALSE(loadPly(loaded, "/nonexistent/nowhere.ply"));
    EXPECT_FALSE(savePly(loaded, "/nonexistent/nowhere.ply"));
}

TEST_F(IoTest, XyzRoundTrip)
{
    PointCloud cloud;
    cloud.addPoint({1, 2, 3}, 4);
    cloud.addPoint({-1, -2, -3}, 0);
    const std::string path = tempPath("cloud.xyz");
    ASSERT_TRUE(saveXyz(cloud, path));
    PointCloud loaded;
    ASSERT_TRUE(loadXyz(loaded, path));
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_EQ(loaded.labels()[0], 4);
    EXPECT_FLOAT_EQ(loaded[1].y, -2.0f);
    std::remove(path.c_str());
}

TEST_F(IoTest, XyzSkipsComments)
{
    const std::string path = tempPath("comments.xyz");
    {
        std::ofstream out(path);
        out << "# header comment\n1 2 3\n\n# another\n4 5 6\n";
    }
    PointCloud loaded;
    ASSERT_TRUE(loadXyz(loaded, path));
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_FLOAT_EQ(loaded[1].x, 4.0f);
    std::remove(path.c_str());
}

TEST_F(IoTest, XyzRejectsMalformedRow)
{
    const std::string path = tempPath("bad.xyz");
    {
        std::ofstream out(path);
        out << "1 2\n"; // only two coordinates
    }
    PointCloud loaded;
    EXPECT_FALSE(loadXyz(loaded, path));
    std::remove(path.c_str());
}

} // namespace
} // namespace fc::data
