/**
 * @file
 * Unit tests for the ASCII/CSV table renderer.
 */

#include <gtest/gtest.h>

#include "common/table.h"

namespace fc {
namespace {

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("| alpha"), std::string::npos);
    EXPECT_NE(out.find("22222"), std::string::npos);
    // Every line has equal width.
    std::size_t width = 0;
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t eol = out.find('\n', pos);
        const std::size_t len = eol - pos;
        if (width == 0)
            width = len;
        EXPECT_EQ(len, width);
        pos = eol + 1;
    }
}

TEST(Table, CsvEscapesSpecials)
{
    Table t({"a", "b"});
    t.addRow({"has,comma", "has\"quote"});
    const std::string csv = t.renderCsv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvRowStructure)
{
    Table t({"x", "y", "z"});
    t.addRow({"1", "2", "3"});
    EXPECT_EQ(t.renderCsv(), "x,y,z\n1,2,3\n");
}

TEST(Table, NumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::mult(21.66, 1), "21.7x");
}

TEST(Table, RowCount)
{
    Table t({"only"});
    EXPECT_EQ(t.rowCount(), 0u);
    t.addRow({"r"});
    t.addRow({"s"});
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableDeathTest, ArityMismatchPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

} // namespace
} // namespace fc
