/**
 * @file
 * Unit tests for the BlockTree structure.
 */

#include <gtest/gtest.h>

#include "dataset/point_cloud.h"
#include "partition/block_tree.h"
#include "partition/fractal.h"

namespace fc::part {
namespace {

/** Hand-built tree: root -> (left leaf, right internal -> 2 leaves). */
BlockTree
makeManualTree()
{
    BlockTree tree(10);
    BlockNode root;
    root.begin = 0;
    root.end = 10;
    tree.addNode(root);

    BlockNode l;
    l.begin = 0;
    l.end = 4;
    l.parent = 0;
    l.depth = 1;
    BlockNode r;
    r.begin = 4;
    r.end = 10;
    r.parent = 0;
    r.depth = 1;
    const NodeIdx li = tree.addNode(l);
    const NodeIdx ri = tree.addNode(r);
    tree.node(0).left = li;
    tree.node(0).right = ri;
    tree.node(0).splitDim = 0;

    BlockNode rl;
    rl.begin = 4;
    rl.end = 7;
    rl.parent = ri;
    rl.depth = 2;
    BlockNode rr;
    rr.begin = 7;
    rr.end = 10;
    rr.parent = ri;
    rr.depth = 2;
    const NodeIdx rli = tree.addNode(rl);
    const NodeIdx rri = tree.addNode(rr);
    tree.node(ri).left = rli;
    tree.node(ri).right = rri;
    tree.node(ri).splitDim = 1;

    tree.rebuildLeafList();
    return tree;
}

TEST(BlockTree, LeafListIsDepthFirst)
{
    const BlockTree tree = makeManualTree();
    ASSERT_EQ(tree.leaves().size(), 3u);
    EXPECT_EQ(tree.node(tree.leaves()[0]).begin, 0u);
    EXPECT_EQ(tree.node(tree.leaves()[1]).begin, 4u);
    EXPECT_EQ(tree.node(tree.leaves()[2]).begin, 7u);
}

TEST(BlockTree, SearchSpaceRule)
{
    const BlockTree tree = makeManualTree();
    // Depth-1 leaf searches itself.
    const NodeIdx depth1_leaf = tree.leaves()[0];
    EXPECT_EQ(tree.searchSpaceNode(depth1_leaf), depth1_leaf);
    // Depth-2 leaves search their parent.
    const NodeIdx depth2_leaf = tree.leaves()[1];
    EXPECT_EQ(tree.searchSpaceNode(depth2_leaf),
              tree.node(depth2_leaf).parent);
}

TEST(BlockTree, SizeStatistics)
{
    const BlockTree tree = makeManualTree();
    EXPECT_EQ(tree.maxDepth(), 2u);
    EXPECT_EQ(tree.maxLeafSize(), 4u);
    EXPECT_EQ(tree.minLeafSize(), 3u);
    EXPECT_GT(tree.leafSizeCv(), 0.0);
    EXPECT_LT(tree.leafSizeCv(), 1.0);
}

TEST(BlockTree, ValidatePassesOnManualTree)
{
    const BlockTree tree = makeManualTree();
    tree.validate(); // must not panic
}

TEST(BlockTreeDeathTest, ValidateCatchesBadTiling)
{
    BlockTree tree = makeManualTree();
    tree.node(tree.leaves()[1]).begin = 5; // hole in coverage
    EXPECT_DEATH(tree.validate(), "");
}

TEST(BlockTreeDeathTest, ValidateCatchesBadPermutation)
{
    BlockTree tree = makeManualTree();
    tree.order()[0] = tree.order()[1]; // duplicate entry
    EXPECT_DEATH(tree.validate(), "duplicated");
}

TEST(BlockTree, SummaryMentionsCounts)
{
    const BlockTree tree = makeManualTree();
    const std::string s = tree.summary();
    EXPECT_NE(s.find("10 points"), std::string::npos);
    EXPECT_NE(s.find("3 leaves"), std::string::npos);
}

} // namespace
} // namespace fc::part
