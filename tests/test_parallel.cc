/**
 * @file
 * Tests for the block-parallel execution runtime: ThreadPool /
 * TaskGroup / parallelFor semantics, and bit-identical determinism of
 * every parallelized layer (partition construction, block-wise ops,
 * batched pipeline) against the sequential path.
 */

#include <atomic>
#include <gtest/gtest.h>
#include <numeric>
#include <stdexcept>

#include "common/rng.h"
#include "core/parallel.h"
#include "core/pipeline.h"
#include "dataset/s3dis.h"
#include "ops/fps.h"
#include "ops/gather.h"
#include "ops/interpolate.h"
#include "ops/knn_graph.h"
#include "ops/neighbor.h"
#include "partition/detail.h"
#include "partition/partitioner.h"

namespace fc {
namespace {

using core::ThreadPool;

// ------------------------------------------------------------ pool basics

TEST(ThreadPool, ResolvesThreadCount)
{
    EXPECT_GE(ThreadPool::resolveThreadCount(0), 1u);
    EXPECT_EQ(ThreadPool::resolveThreadCount(1), 1u);
    EXPECT_EQ(ThreadPool::resolveThreadCount(7), 7u);
}

TEST(ThreadPool, SingleThreadPoolSpawnsNothingAndRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.numThreads(), 1u);
    std::vector<int> order;
    core::TaskGroup group(&pool);
    group.run([&] { order.push_back(1); });
    group.run([&] { order.push_back(2); });
    group.wait();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    core::parallelFor(&pool, 0, n, 7,
                      [&](std::size_t cb, std::size_t ce) {
                          for (std::size_t i = cb; i < ce; ++i)
                              hits[i].fetch_add(1);
                      });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, ChunkBoundariesIndependentOfThreadCount)
{
    // Chunk shape is a pure function of (begin, end, grain): every
    // thread count must observe the same cut points.
    auto boundaries = [](unsigned threads) {
        ThreadPool pool(threads);
        std::mutex mutex;
        std::vector<std::pair<std::size_t, std::size_t>> chunks;
        core::parallelFor(&pool, 3, 100, 13,
                          [&](std::size_t cb, std::size_t ce) {
                              std::lock_guard<std::mutex> lock(mutex);
                              chunks.emplace_back(cb, ce);
                          });
        std::sort(chunks.begin(), chunks.end());
        return chunks;
    };
    const auto seq = boundaries(1);
    EXPECT_EQ(seq.front().first, 3u);
    EXPECT_EQ(seq.back().second, 100u);
    EXPECT_EQ(boundaries(2), seq);
    EXPECT_EQ(boundaries(8), seq);
}

TEST(ParallelFor, PropagatesExceptions)
{
    ThreadPool pool(4);
    EXPECT_THROW(
        core::parallelFor(&pool, 0, 100, 1,
                          [&](std::size_t cb, std::size_t) {
                              if (cb == 42)
                                  throw std::runtime_error("boom");
                          }),
        std::runtime_error);
    // Null-pool (sequential) path propagates too.
    EXPECT_THROW(
        core::parallelFor(nullptr, 0, 10, 1,
                          [&](std::size_t, std::size_t) {
                              throw std::runtime_error("boom");
                          }),
        std::runtime_error);
}

TEST(ParallelFor, PoolSurvivesThrowingWork)
{
    // After an exception the pool must keep scheduling new work.
    ThreadPool pool(4);
    EXPECT_THROW(core::parallelFor(&pool, 0, 8, 1,
                                   [&](std::size_t, std::size_t) {
                                       throw std::runtime_error("x");
                                   }),
                 std::runtime_error);
    std::atomic<int> sum{0};
    core::parallelFor(&pool, 0, 100, 1,
                      [&](std::size_t cb, std::size_t) {
                          sum.fetch_add(static_cast<int>(cb));
                      });
    EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, WaiterHelpsChunksButNeverDetachedTasks)
{
    // Standalone pool, both workers parked: the only runnable thread
    // is the TaskGroup waiter. It must drain the fork/join lane (its
    // own chunk) but never the detached lane — a helper running a
    // whole unrelated request would nest that request's latency onto
    // the waiter's stack.
    ThreadPool pool(2, /*standalone=*/true);
    std::mutex mutex;
    std::condition_variable cv;
    bool release = false;
    std::atomic<int> parked{0};
    for (int w = 0; w < 2; ++w) {
        pool.submitDetached([&] {
            std::unique_lock<std::mutex> lock(mutex);
            parked.fetch_add(1);
            cv.notify_all();
            cv.wait(lock, [&] { return release; });
        });
    }
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [&] { return parked.load() == 2; });
    }

    std::atomic<bool> detached_ran{false};
    pool.submitDetached([&] { detached_ran.store(true); });
    std::atomic<bool> chunk_ran{false};
    core::TaskGroup group(&pool);
    group.run([&] { chunk_ran.store(true); });
    group.wait(); // only the waiter can make progress here
    EXPECT_TRUE(chunk_ran.load());
    EXPECT_FALSE(detached_ran.load())
        << "help-join must not execute detached work";

    {
        std::lock_guard<std::mutex> lock(mutex);
        release = true;
    }
    cv.notify_all();
    while (!detached_ran.load())
        std::this_thread::yield(); // a freed worker picks it up
}

TEST(TaskGroup, NestedSubmitDoesNotDeadlock)
{
    // Tasks forking subtasks onto the same pool is exactly what the
    // recursive partition builders do; waiting threads must help.
    ThreadPool pool(2);
    std::atomic<int> total{0};
    core::TaskGroup outer(&pool);
    for (int t = 0; t < 8; ++t) {
        outer.run([&] {
            core::TaskGroup inner(&pool);
            for (int s = 0; s < 8; ++s)
                inner.run([&] { total.fetch_add(1); });
            inner.wait();
        });
    }
    outer.wait();
    EXPECT_EQ(total.load(), 64);
}

TEST(ParallelReduce, FoldsInChunkOrder)
{
    ThreadPool pool(8);
    // Concatenation is non-commutative: any out-of-order fold shows.
    const std::vector<std::size_t> folded = core::parallelReduce(
        &pool, 0, 100, 9, std::vector<std::size_t>{},
        [](std::size_t cb, std::size_t ce) {
            std::vector<std::size_t> chunk;
            for (std::size_t i = cb; i < ce; ++i)
                chunk.push_back(i);
            return chunk;
        },
        [](std::vector<std::size_t> &acc,
           std::vector<std::size_t> &&chunk) {
            acc.insert(acc.end(), chunk.begin(), chunk.end());
        });
    std::vector<std::size_t> expect(100);
    std::iota(expect.begin(), expect.end(), 0);
    EXPECT_EQ(folded, expect);
}

// -------------------------------------------------------- determinism

void
expectStatsEqual(const ops::OpStats &a, const ops::OpStats &b)
{
    EXPECT_EQ(a.distance_computations, b.distance_computations);
    EXPECT_EQ(a.points_visited, b.points_visited);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.skipped, b.skipped);
    EXPECT_EQ(a.bytes_gathered, b.bytes_gathered);
}

void
expectTreesIdentical(const part::PartitionResult &a,
                     const part::PartitionResult &b)
{
    ASSERT_EQ(a.tree.numNodes(), b.tree.numNodes());
    EXPECT_EQ(a.tree.order(), b.tree.order());
    EXPECT_EQ(a.tree.leaves(), b.tree.leaves());
    for (std::size_t i = 0; i < a.tree.numNodes(); ++i) {
        const part::BlockNode &na =
            a.tree.node(static_cast<part::NodeIdx>(i));
        const part::BlockNode &nb =
            b.tree.node(static_cast<part::NodeIdx>(i));
        EXPECT_EQ(na.begin, nb.begin) << "node " << i;
        EXPECT_EQ(na.end, nb.end) << "node " << i;
        EXPECT_EQ(na.parent, nb.parent) << "node " << i;
        EXPECT_EQ(na.left, nb.left) << "node " << i;
        EXPECT_EQ(na.right, nb.right) << "node " << i;
        EXPECT_EQ(na.depth, nb.depth) << "node " << i;
        EXPECT_EQ(na.splitDim, nb.splitDim) << "node " << i;
        EXPECT_EQ(na.splitValue, nb.splitValue) << "node " << i;
    }
    EXPECT_EQ(a.stats.elements_traversed, b.stats.elements_traversed);
    EXPECT_EQ(a.stats.traversal_passes, b.stats.traversal_passes);
    EXPECT_EQ(a.stats.num_sorts, b.stats.num_sorts);
    EXPECT_EQ(a.stats.sort_compares, b.stats.sort_compares);
    EXPECT_EQ(a.stats.degenerate_retries, b.stats.degenerate_retries);
    EXPECT_EQ(a.stats.num_splits, b.stats.num_splits);
}

/** Thread counts every determinism test sweeps. */
const unsigned kThreadSweep[] = {1, 2, 8};

/** Partition methods with a tree worth checking. */
const part::Method kMethodSweep[] = {part::Method::Fractal,
                                     part::Method::KdTree,
                                     part::Method::Octree,
                                     part::Method::Uniform};

TEST(ParallelDeterminism, PartitionTreesMatchSequential)
{
    // 8192 points with th=256 forks subtree tasks well above the
    // builders' cutoff, so the parallel path is really exercised.
    const data::PointCloud scene = data::makeS3disScene(8192, 21);
    part::PartitionConfig config;
    config.threshold = 256;
    for (const part::Method method : kMethodSweep) {
        const auto partitioner = part::makePartitioner(method);
        const part::PartitionResult sequential =
            partitioner->partition(scene, config, nullptr);
        for (const unsigned threads : kThreadSweep) {
            ThreadPool pool(threads);
            const part::PartitionResult parallel =
                partitioner->partition(scene, config, &pool);
            SCOPED_TRACE(part::methodName(method) + " threads=" +
                         std::to_string(threads));
            expectTreesIdentical(sequential, parallel);
        }
    }
}

TEST(ParallelDeterminism, BlockOpsMatchSequential)
{
    const data::PointCloud scene = data::makeS3disScene(8192, 22);
    part::PartitionConfig config;
    config.threshold = 256;
    for (const part::Method method : kMethodSweep) {
        const auto partitioner = part::makePartitioner(method);
        const part::PartitionResult part =
            partitioner->partition(scene, config, nullptr);

        const ops::BlockSampleResult seq_sampled =
            ops::blockFarthestPointSample(scene, part.tree, 0.25, {},
                                          nullptr);
        const ops::NeighborResult seq_grouped = ops::blockBallQuery(
            scene, part.tree, seq_sampled, 0.2f, 16, nullptr);
        const ops::NeighborResult seq_knn = ops::blockKnnToSamples(
            scene, part.tree, seq_sampled, 3, nullptr);
        const ops::KnnGraph seq_graph =
            ops::buildBlockKnnGraph(scene, part.tree, 8, nullptr);

        for (const unsigned threads : kThreadSweep) {
            SCOPED_TRACE(part::methodName(method) + " threads=" +
                         std::to_string(threads));
            ThreadPool pool(threads);

            const ops::BlockSampleResult sampled =
                ops::blockFarthestPointSample(scene, part.tree, 0.25,
                                              {}, &pool);
            EXPECT_EQ(sampled.indices, seq_sampled.indices);
            EXPECT_EQ(sampled.positions, seq_sampled.positions);
            EXPECT_EQ(sampled.leaf_offsets, seq_sampled.leaf_offsets);
            expectStatsEqual(sampled.stats, seq_sampled.stats);

            const ops::NeighborResult grouped = ops::blockBallQuery(
                scene, part.tree, sampled, 0.2f, 16, &pool);
            EXPECT_EQ(grouped.indices, seq_grouped.indices);
            EXPECT_EQ(grouped.counts, seq_grouped.counts);
            expectStatsEqual(grouped.stats, seq_grouped.stats);

            const ops::NeighborResult knn = ops::blockKnnToSamples(
                scene, part.tree, sampled, 3, &pool);
            EXPECT_EQ(knn.indices, seq_knn.indices);
            EXPECT_EQ(knn.counts, seq_knn.counts);
            expectStatsEqual(knn.stats, seq_knn.stats);

            const ops::KnnGraph graph =
                ops::buildBlockKnnGraph(scene, part.tree, 8, &pool);
            EXPECT_EQ(graph.edges, seq_graph.edges);
            expectStatsEqual(graph.stats, seq_graph.stats);
        }
    }
}

TEST(ParallelDeterminism, GatherAndInterpolateMatchSequential)
{
    data::PointCloud scene = data::makeS3disScene(4096, 23);
    const auto partitioner = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = 128;
    const part::PartitionResult part =
        partitioner->partition(scene, config, nullptr);

    const ops::BlockSampleResult sampled =
        ops::blockFarthestPointSample(scene, part.tree, 0.25, {},
                                      nullptr);
    const ops::NeighborResult grouped =
        ops::blockBallQuery(scene, part.tree, sampled, 0.25f, 16,
                            nullptr);
    const ops::GatherResult seq_gathered =
        ops::blockGatherNeighborhoods(scene, part.tree, sampled.indices,
                                      sampled.leaf_offsets, grouped,
                                      nullptr);

    // Known features: one row per sampled point.
    constexpr std::size_t channels = 8;
    std::vector<float> known(sampled.indices.size() * channels);
    for (std::size_t i = 0; i < known.size(); ++i)
        known[i] = 0.01f * static_cast<float>(i % 97);
    const ops::InterpolateResult seq_interp =
        ops::blockInterpolate(scene, part.tree, sampled, known,
                              channels, 3, nullptr);

    for (const unsigned threads : kThreadSweep) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadPool pool(threads);

        const ops::GatherResult gathered =
            ops::blockGatherNeighborhoods(scene, part.tree,
                                          sampled.indices,
                                          sampled.leaf_offsets, grouped,
                                          &pool);
        // Bit-exact float comparison is intentional: the parallel
        // schedule must not change a single operation.
        EXPECT_EQ(gathered.values, seq_gathered.values);
        expectStatsEqual(gathered.stats, seq_gathered.stats);

        const ops::InterpolateResult interp =
            ops::blockInterpolate(scene, part.tree, sampled, known,
                                  channels, 3, &pool);
        EXPECT_EQ(interp.values, seq_interp.values);
        expectStatsEqual(interp.stats, seq_interp.stats);
    }
}

TEST(ParallelDeterminism, PipelineEndToEndMatchesSequential)
{
    const data::PointCloud scene = data::makeS3disScene(8192, 24);
    PipelineOptions sequential;
    sequential.num_threads = 1;
    const FractalCloudPipeline seq(scene, sequential);
    const ops::BlockSampleResult seq_sampled = seq.sample(0.25);

    for (const unsigned threads : kThreadSweep) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        PipelineOptions options;
        options.num_threads = threads;
        const FractalCloudPipeline pipeline(scene, options);
        EXPECT_EQ(pipeline.tree().order(), seq.tree().order());
        const ops::BlockSampleResult sampled = pipeline.sample(0.25);
        EXPECT_EQ(sampled.indices, seq_sampled.indices);
    }
}

// ------------------------------------------------- parallel splitRange

/** A cloud whose x coordinates come from @p xs (y = z = 0). */
data::PointCloud
cloudFromX(const std::vector<float> &xs)
{
    data::PointCloud cloud;
    for (const float x : xs)
        cloud.addPoint({x, 0.0f, 0.0f});
    return cloud;
}

/** Identity order [0, n). */
std::vector<PointIdx>
identityOrder(std::size_t n)
{
    std::vector<PointIdx> order(n);
    std::iota(order.begin(), order.end(), 0);
    return order;
}

/** Reference: plain std::partition over the whole slice. */
std::uint32_t
referenceSplit(std::vector<PointIdx> &order,
               const data::PointCloud &cloud, std::uint32_t begin,
               std::uint32_t end, float value)
{
    auto mid = std::partition(order.begin() + begin,
                              order.begin() + end, [&](PointIdx idx) {
                                  return cloud[idx][0] < value;
                              });
    return static_cast<std::uint32_t>(mid - order.begin());
}

TEST(SplitRangeParallel, ByteIdenticalToStdPartitionOnAdversarialInputs)
{
    // Above the parallel cutoff, on inputs where std::partition is
    // the identity — all-equal coordinates (the predicate is uniform)
    // and presorted slices — the chunked algorithm must reproduce its
    // arrangement byte for byte at every thread count.
    const std::uint32_t n = 3 * part::detail::kSplitParallelCutoff / 2;
    struct Case
    {
        const char *name;
        std::vector<float> xs;
        float value;
    };
    std::vector<Case> cases;
    cases.push_back({"all-equal-below", std::vector<float>(n, 1.0f),
                     2.0f}); // everything goes left
    cases.push_back({"all-equal-above", std::vector<float>(n, 1.0f),
                     0.5f}); // everything goes right
    {
        std::vector<float> sorted(n);
        for (std::uint32_t i = 0; i < n; ++i)
            sorted[i] = static_cast<float>(i);
        cases.push_back({"presorted", sorted,
                         static_cast<float>(n / 3)});
    }

    for (const Case &c : cases) {
        SCOPED_TRACE(c.name);
        const data::PointCloud cloud = cloudFromX(c.xs);
        std::vector<PointIdx> expect = identityOrder(n);
        const std::uint32_t expect_mid =
            referenceSplit(expect, cloud, 0, n, c.value);

        for (const unsigned threads : kThreadSweep) {
            SCOPED_TRACE("threads=" + std::to_string(threads));
            ThreadPool pool(threads);
            std::vector<PointIdx> order = identityOrder(n);
            const std::uint32_t mid = part::detail::splitRange(
                order, cloud, 0, n, 0, c.value, &pool);
            EXPECT_EQ(mid, expect_mid);
            EXPECT_EQ(order, expect);
        }
        // Null pool takes the same chunked path inline.
        std::vector<PointIdx> order = identityOrder(n);
        const std::uint32_t mid = part::detail::splitRange(
            order, cloud, 0, n, 0, c.value, nullptr);
        EXPECT_EQ(mid, expect_mid);
        EXPECT_EQ(order, expect);
    }
}

TEST(SplitRangeParallel, EmptyAndOnePointRanges)
{
    const data::PointCloud cloud =
        cloudFromX({0.5f, -1.0f, 2.0f, 0.0f});
    ThreadPool pool(4);
    std::vector<PointIdx> order = identityOrder(4);
    const std::vector<PointIdx> before = order;

    // Empty range: nothing moves, mid == begin.
    EXPECT_EQ(part::detail::splitRange(order, cloud, 2, 2, 0, 0.0f,
                                       &pool),
              2u);
    EXPECT_EQ(order, before);

    // One-point ranges: mid reflects the single comparison.
    EXPECT_EQ(part::detail::splitRange(order, cloud, 1, 2, 0, 0.0f,
                                       &pool),
              2u); // -1.0 < 0.0: left side
    EXPECT_EQ(part::detail::splitRange(order, cloud, 2, 3, 0, 0.0f,
                                       &pool),
              2u); // 2.0 >= 0.0: right side
    EXPECT_EQ(order, before);
}

TEST(SplitRangeParallel, MatchesNullPoolOnRandomInput)
{
    // General inputs: the arrangement is a pure function of the slice
    // (fixed chunking), so every thread count must agree with the
    // null-pool inline execution — and actually partition.
    const std::uint32_t n = 4 * part::detail::kSplitParallelCutoff;
    Pcg32 rng(99);
    std::vector<float> xs(n);
    for (auto &x : xs)
        x = rng.uniform(-1.0f, 1.0f);
    const data::PointCloud cloud = cloudFromX(xs);

    std::vector<PointIdx> baseline = identityOrder(n);
    const std::uint32_t base_mid = part::detail::splitRange(
        baseline, cloud, 0, n, 0, 0.25f, nullptr);
    ASSERT_GT(base_mid, 0u);
    ASSERT_LT(base_mid, n);
    for (std::uint32_t pos = 0; pos < n; ++pos)
        EXPECT_EQ(cloud[baseline[pos]][0] < 0.25f, pos < base_mid)
            << "position " << pos;

    for (const unsigned threads : kThreadSweep) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadPool pool(threads);
        std::vector<PointIdx> order = identityOrder(n);
        const std::uint32_t mid = part::detail::splitRange(
            order, cloud, 0, n, 0, 0.25f, &pool);
        EXPECT_EQ(mid, base_mid);
        EXPECT_EQ(order, baseline);
    }
}

TEST(SplitRangeParallel, MedianSplitDeterministicAndCorrect)
{
    const std::uint32_t n = 2 * part::detail::kSplitParallelCutoff + 7;
    Pcg32 rng(7);
    std::vector<float> xs(n);
    for (auto &x : xs)
        x = rng.uniform(-10.0f, 10.0f);
    const data::PointCloud cloud = cloudFromX(xs);
    const std::uint32_t median = n / 2;

    std::vector<PointIdx> baseline = identityOrder(n);
    part::detail::medianSplit(baseline, cloud, 0, n, 0, nullptr);

    // nth_element semantics: left side <= order[median] <= right side,
    // and the median value matches a full sort.
    std::vector<float> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(cloud[baseline[median]][0], sorted[median]);
    for (std::uint32_t pos = 0; pos < median; ++pos)
        EXPECT_LE(cloud[baseline[pos]][0], cloud[baseline[median]][0]);
    for (std::uint32_t pos = median; pos < n; ++pos)
        EXPECT_GE(cloud[baseline[pos]][0], cloud[baseline[median]][0]);

    for (const unsigned threads : kThreadSweep) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadPool pool(threads);
        std::vector<PointIdx> order = identityOrder(n);
        part::detail::medianSplit(order, cloud, 0, n, 0, &pool);
        EXPECT_EQ(order, baseline);
    }

    // All-equal coordinates: the quickselect must terminate (the
    // extrema collapse) and leave the slice untouched.
    const data::PointCloud flat =
        cloudFromX(std::vector<float>(n, 3.0f));
    ThreadPool pool(4);
    std::vector<PointIdx> order = identityOrder(n);
    part::detail::medianSplit(order, flat, 0, n, 0, &pool);
    EXPECT_EQ(order, identityOrder(n));
}

TEST(SplitRangeParallel, MedianSplitSurvivesHugeCoordinateRange)
{
    // A slice spanning more than FLT_MAX: the naive extrema midpoint
    // minv + (maxv - minv) * 0.5f overflows to inf, which would send
    // every element one way and hang the quickselect.
    const std::uint32_t n = part::detail::kSplitParallelCutoff + 64;
    Pcg32 rng(11);
    std::vector<float> xs(n);
    for (auto &x : xs)
        // Scale after drawing: uniform(-3e38, 3e38) itself would
        // overflow in its hi - lo span computation.
        x = rng.uniform(-1.0f, 1.0f) * 3e38f;
    const data::PointCloud cloud = cloudFromX(xs);
    const std::uint32_t median = n / 2;

    ThreadPool pool(4);
    std::vector<PointIdx> order = identityOrder(n);
    part::detail::medianSplit(order, cloud, 0, n, 0, &pool);

    std::vector<float> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(cloud[order[median]][0], sorted[median]);
    for (std::uint32_t pos = 0; pos < median; ++pos)
        EXPECT_LE(cloud[order[pos]][0], cloud[order[median]][0]);
    for (std::uint32_t pos = median; pos < n; ++pos)
        EXPECT_GE(cloud[order[pos]][0], cloud[order[median]][0]);
}

TEST(ParallelDeterminism, RunBatchMatchesSequentialPipelines)
{
    std::vector<data::PointCloud> clouds;
    for (std::uint64_t seed = 30; seed < 36; ++seed)
        clouds.push_back(data::makeS3disScene(2048, seed));

    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.25f;
    request.neighbors = 16;

    PipelineOptions sequential;
    sequential.num_threads = 1;
    const std::vector<BatchResult> baseline =
        FractalCloudPipeline::runBatch(clouds, sequential, request);
    ASSERT_EQ(baseline.size(), clouds.size());

    // Baseline itself must equal per-cloud sequential pipelines.
    for (std::size_t i = 0; i < clouds.size(); ++i) {
        const FractalCloudPipeline pipeline(clouds[i], sequential);
        const ops::BlockSampleResult sampled =
            pipeline.sample(request.sample_rate);
        EXPECT_EQ(baseline[i].sampled.indices, sampled.indices);
        EXPECT_EQ(baseline[i].num_blocks,
                  pipeline.tree().leaves().size());
    }

    for (const unsigned threads : kThreadSweep) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        PipelineOptions options;
        options.num_threads = threads;
        const std::vector<BatchResult> batch =
            FractalCloudPipeline::runBatch(clouds, options, request);
        ASSERT_EQ(batch.size(), clouds.size());
        for (std::size_t i = 0; i < clouds.size(); ++i) {
            EXPECT_EQ(batch[i].sampled.indices,
                      baseline[i].sampled.indices);
            EXPECT_EQ(batch[i].sampled.leaf_offsets,
                      baseline[i].sampled.leaf_offsets);
            EXPECT_EQ(batch[i].grouped.indices,
                      baseline[i].grouped.indices);
            EXPECT_EQ(batch[i].grouped.counts,
                      baseline[i].grouped.counts);
            EXPECT_EQ(batch[i].gathered.values,
                      baseline[i].gathered.values);
            EXPECT_EQ(batch[i].num_blocks, baseline[i].num_blocks);
            EXPECT_EQ(batch[i].partition_stats.num_splits,
                      baseline[i].partition_stats.num_splits);
        }
    }
}

} // namespace
} // namespace fc
