/**
 * @file
 * The core::simd accuracy contract, asserted.
 *
 *  - Dispatch resolution (FC_FORCE_SCALAR rule, setActiveLevel
 *    round-trips) as pure unit tests.
 *  - Scalar-vs-Avx2 equivalence for every kernel the contract calls
 *    bit-identical (fpsUpdate, distance2Range, axpy, the fp16
 *    converters), on adversarial inputs: all-equal points, denormal
 *    coordinates, and sizes straddling the 8-lane vector remainder.
 *  - ULP bounds for the dot kernels (bit-equal is impossible across
 *    accumulation orders) and the <= 1 fp16 ULP guarantee after
 *    binary16 output rounding.
 *  - End-to-end: FPS / ball query / KNN identical across levels, the
 *    fp16 inference mode bit-identical to Mixed, and thread-count
 *    determinism with SIMD active (SimdDeterminism, in the TSan CI
 *    filter).
 *
 * Every test that overrides the dispatch level restores it on exit —
 * dispatch is process-global state shared with the rest of the test
 * binary.
 */

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/fp16.h"
#include "common/rng.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "core/workspace.h"
#include "dataset/s3dis.h"
#include "nn/mlp.h"
#include "nn/network.h"
#include "ops/fps.h"
#include "ops/neighbor.h"

namespace fc {
namespace {

namespace simd = core::simd;

/** Restores the process-global dispatch level on scope exit. */
class LevelGuard
{
  public:
    LevelGuard() : saved_(simd::activeLevel()) {}
    ~LevelGuard() { simd::setActiveLevel(saved_); }
    LevelGuard(const LevelGuard &) = delete;
    LevelGuard &operator=(const LevelGuard &) = delete;

  private:
    simd::Level saved_;
};

/** Owning SoA triple + view over it. */
struct SoaCloud
{
    std::vector<float> xs, ys, zs;

    simd::SoaView
    view() const
    {
        return {xs.data(), ys.data(), zs.data()};
    }
};

SoaCloud
randomSoa(std::size_t n, std::uint64_t seed, float lo = -1.0f,
          float hi = 1.0f)
{
    Pcg32 rng(seed);
    SoaCloud c;
    c.xs.resize(n);
    c.ys.resize(n);
    c.zs.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        c.xs[i] = rng.uniform(lo, hi);
        c.ys[i] = rng.uniform(lo, hi);
        c.zs[i] = rng.uniform(lo, hi);
    }
    return c;
}

/** Monotone rank of an fp16 bit pattern (sign-magnitude unfolded),
 *  so ULP distance is a plain integer difference. */
int
fp16Rank(std::uint16_t bits)
{
    const int mag = bits & 0x7fff;
    return (bits & 0x8000) ? -mag : mag;
}

/** Sizes that straddle the 8-lane width: empty tail, full tail, and
 *  every remainder in between, plus multi-iteration lengths. */
const std::size_t kRemainderSizes[] = {1,  2,  3,  5,  7,  8,  9,
                                       11, 15, 16, 17, 64, 100, 129};

// ---------------------------------------------------------------------
// Dispatch resolution
// ---------------------------------------------------------------------

TEST(SimdDispatch, ResolveLevelRule)
{
    using simd::Level;
    using simd::resolveLevel;
    // Unset: hardware decides.
    EXPECT_EQ(resolveLevel(true, nullptr), Level::Avx2);
    EXPECT_EQ(resolveLevel(false, nullptr), Level::Scalar);
    // Set and truthy: scalar, even with AVX2 present.
    EXPECT_EQ(resolveLevel(true, "1"), Level::Scalar);
    EXPECT_EQ(resolveLevel(true, "yes"), Level::Scalar);
    EXPECT_EQ(resolveLevel(true, "00"), Level::Scalar);
    // Empty or exactly "0": not forced.
    EXPECT_EQ(resolveLevel(true, ""), Level::Avx2);
    EXPECT_EQ(resolveLevel(true, "0"), Level::Avx2);
    // Forcing scalar on a scalar-only machine is a no-op.
    EXPECT_EQ(resolveLevel(false, "1"), Level::Scalar);
}

TEST(SimdDispatch, LevelNames)
{
    EXPECT_STREQ(simd::levelName(simd::Level::Scalar), "scalar");
    EXPECT_STREQ(simd::levelName(simd::Level::Avx2), "avx2");
}

TEST(SimdDispatch, SetActiveLevelRoundTrip)
{
    LevelGuard guard;
    EXPECT_TRUE(simd::setActiveLevel(simd::Level::Scalar));
    EXPECT_EQ(simd::activeLevel(), simd::Level::Scalar);
    const bool honored = simd::setActiveLevel(simd::Level::Avx2);
    EXPECT_EQ(honored, simd::avx2Available());
    EXPECT_EQ(simd::activeLevel(), honored ? simd::Level::Avx2
                                           : simd::Level::Scalar);
}

// ---------------------------------------------------------------------
// Scalar-vs-Avx2 bit-identity
// ---------------------------------------------------------------------

#define FC_REQUIRE_AVX2()                                               \
    do {                                                                \
        if (!simd::avx2Available())                                     \
            GTEST_SKIP() << "AVX2 kernels not available";               \
    } while (0)

TEST(SimdEquivalence, FpsUpdateBitIdentical)
{
    FC_REQUIRE_AVX2();
    LevelGuard guard;
    for (const std::size_t n : kRemainderSizes) {
        const SoaCloud cloud = randomSoa(n + 16, n * 7 + 1);
        Pcg32 rng(n * 13 + 5);
        std::vector<std::uint8_t> sampled(n);
        std::vector<float> seed_dist(n);
        for (std::size_t i = 0; i < n; ++i) {
            sampled[i] = rng.uniform() < 0.2f ? 1 : 0;
            seed_dist[i] = rng.uniform(0.0f, 4.0f);
        }
        std::vector<PointIdx> order(n);
        for (std::size_t i = 0; i < n; ++i)
            order[i] = static_cast<PointIdx>((i * 5 + 3) % (n + 16));
        const Vec3 query(0.3f, -0.2f, 0.8f);

        // Identity view (offset base) and order view, both levels.
        for (const bool use_order : {false, true}) {
            const PointIdx *order_ptr =
                use_order ? order.data() : nullptr;
            const std::uint32_t base = use_order ? 0u : 4u;

            std::vector<float> dist_scalar = seed_dist;
            ASSERT_TRUE(simd::setActiveLevel(simd::Level::Scalar));
            const simd::FpsPartial ps = simd::fpsUpdate(
                cloud.view(), order_ptr, base, query,
                dist_scalar.data(), sampled.data(), 0,
                static_cast<std::uint32_t>(n));

            std::vector<float> dist_avx2 = seed_dist;
            ASSERT_TRUE(simd::setActiveLevel(simd::Level::Avx2));
            const simd::FpsPartial pa = simd::fpsUpdate(
                cloud.view(), order_ptr, base, query,
                dist_avx2.data(), sampled.data(), 0,
                static_cast<std::uint32_t>(n));

            EXPECT_EQ(ps.best, pa.best) << "n=" << n;
            EXPECT_EQ(ps.pos, pa.pos) << "n=" << n;
            EXPECT_EQ(ps.sampled, pa.sampled) << "n=" << n;
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(dist_scalar[i], dist_avx2[i])
                    << "n=" << n << " i=" << i;
        }
    }
}

TEST(SimdEquivalence, FpsUpdateAllEqualPointsTieBreak)
{
    FC_REQUIRE_AVX2();
    LevelGuard guard;
    // Every candidate at the same spot: every updated distance is
    // equal, so the argmax is decided purely by the tie-break (the
    // earliest index must win, as in the serial loop).
    for (const std::size_t n : kRemainderSizes) {
        SoaCloud cloud;
        cloud.xs.assign(n, 0.25f);
        cloud.ys.assign(n, -0.5f);
        cloud.zs.assign(n, 0.125f);
        std::vector<std::uint8_t> sampled(n, 0);
        sampled[0] = 1; // the tie must go to the first *unsampled*
        const Vec3 query(1.0f, 1.0f, 1.0f);

        for (const simd::Level level :
             {simd::Level::Scalar, simd::Level::Avx2}) {
            std::vector<float> dist(
                n, std::numeric_limits<float>::max());
            ASSERT_TRUE(simd::setActiveLevel(level));
            const simd::FpsPartial p = simd::fpsUpdate(
                cloud.view(), nullptr, 0, query, dist.data(),
                sampled.data(), 0, static_cast<std::uint32_t>(n));
            if (n == 1) {
                // Sole candidate is sampled: nothing updates.
                EXPECT_EQ(p.best, -1.0f);
                EXPECT_EQ(p.sampled, 1u);
            } else {
                EXPECT_EQ(p.pos, 1u)
                    << simd::levelName(level) << " n=" << n;
                EXPECT_EQ(p.sampled, 1u);
            }
        }
    }
}

TEST(SimdEquivalence, Distance2RangeBitIdenticalIncludingDenormals)
{
    FC_REQUIRE_AVX2();
    LevelGuard guard;
    for (const std::size_t n : kRemainderSizes) {
        // Denormal-magnitude coordinates: differences and squares run
        // through the gradual-underflow range.
        SoaCloud cloud = randomSoa(n, n + 31);
        const float denorm = std::ldexp(1.0f, -140);
        for (std::size_t i = 0; i < n; i += 3) {
            cloud.xs[i] = denorm * static_cast<float>(i + 1);
            cloud.ys[i] = -denorm;
            cloud.zs[i] = 0.0f;
        }
        const Vec3 query(denorm, 0.0f, 0.5f);
        std::vector<PointIdx> order(n);
        for (std::size_t i = 0; i < n; ++i)
            order[i] = static_cast<PointIdx>(n - 1 - i);

        for (const bool use_order : {false, true}) {
            std::vector<float> out_scalar(n), out_avx2(n);
            const PointIdx *order_ptr =
                use_order ? order.data() : nullptr;
            ASSERT_TRUE(simd::setActiveLevel(simd::Level::Scalar));
            simd::distance2Range(cloud.view(), order_ptr, 0, query, 0,
                                 static_cast<std::uint32_t>(n),
                                 out_scalar.data());
            ASSERT_TRUE(simd::setActiveLevel(simd::Level::Avx2));
            simd::distance2Range(cloud.view(), order_ptr, 0, query, 0,
                                 static_cast<std::uint32_t>(n),
                                 out_avx2.data());
            for (std::size_t i = 0; i < n; ++i)
                EXPECT_EQ(out_scalar[i], out_avx2[i])
                    << "n=" << n << " i=" << i
                    << " order=" << use_order;
        }
    }
}

TEST(SimdEquivalence, AxpyBitIdentical)
{
    FC_REQUIRE_AVX2();
    LevelGuard guard;
    for (const std::size_t n : kRemainderSizes) {
        Pcg32 rng(n * 3 + 17);
        std::vector<float> x(n), y_seed(n);
        for (std::size_t i = 0; i < n; ++i) {
            x[i] = rng.uniform(-2.0f, 2.0f);
            y_seed[i] = rng.uniform(-2.0f, 2.0f);
        }
        const float a = 0.37f;

        std::vector<float> y_scalar = y_seed;
        ASSERT_TRUE(simd::setActiveLevel(simd::Level::Scalar));
        simd::axpy(a, x.data(), y_scalar.data(), n);
        std::vector<float> y_avx2 = y_seed;
        ASSERT_TRUE(simd::setActiveLevel(simd::Level::Avx2));
        simd::axpy(a, x.data(), y_avx2.data(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(y_scalar[i], y_avx2[i]) << "n=" << n;
    }
}

TEST(SimdEquivalence, Fp16ConversionsExhaustiveNonNan)
{
    FC_REQUIRE_AVX2();
    LevelGuard guard;
    // Every one of the 2^16 binary16 patterns except NaN (payloads may
    // legitimately differ, see the header contract): widening must be
    // exact and re-narrowing must restore the original bits, on both
    // levels.
    std::vector<std::uint16_t> bits;
    bits.reserve(1u << 16);
    for (std::uint32_t b = 0; b < (1u << 16); ++b) {
        const bool is_nan =
            (b & 0x7c00u) == 0x7c00u && (b & 0x03ffu) != 0;
        if (!is_nan)
            bits.push_back(static_cast<std::uint16_t>(b));
    }
    std::vector<float> wide_scalar(bits.size()), wide_avx2(bits.size());
    std::vector<std::uint16_t> narrow(bits.size());

    ASSERT_TRUE(simd::setActiveLevel(simd::Level::Scalar));
    simd::fp16ToFp32Buffer(bits.data(), wide_scalar.data(),
                           bits.size());
    ASSERT_TRUE(simd::setActiveLevel(simd::Level::Avx2));
    simd::fp16ToFp32Buffer(bits.data(), wide_avx2.data(), bits.size());
    simd::fp32ToFp16Buffer(wide_avx2.data(), narrow.data(),
                           bits.size());

    for (std::size_t i = 0; i < bits.size(); ++i) {
        EXPECT_EQ(wide_scalar[i], wide_avx2[i]) << "bits " << bits[i];
        EXPECT_EQ(wide_avx2[i], fp16BitsToFp32(bits[i]))
            << "bits " << bits[i];
        EXPECT_EQ(narrow[i], bits[i]) << "round trip " << bits[i];
    }
}

TEST(SimdEquivalence, Fp32ToFp16MatchesSoftwareConverter)
{
    FC_REQUIRE_AVX2();
    LevelGuard guard;
    // Random floats across the full rounding range plus the edges:
    // zero signs, overflow, the max normal, fp16 subnormals, and
    // fp32 values far below fp16 range.
    std::vector<float> values = {0.0f,
                                 -0.0f,
                                 1.0f,
                                 65504.0f,
                                 65520.0f, // rounds to +inf
                                 -65520.0f,
                                 std::numeric_limits<float>::infinity(),
                                 -std::numeric_limits<float>::infinity(),
                                 std::ldexp(1.0f, -24),
                                 std::ldexp(1.0f, -25), // ties to even
                                 std::ldexp(1.0f, -26), // flushes
                                 1e-30f,
                                 std::ldexp(1.0f, -140)};
    Pcg32 rng(2026);
    for (int i = 0; i < 4096; ++i)
        values.push_back(rng.uniform(-70000.0f, 70000.0f));
    for (int i = 0; i < 4096; ++i)
        values.push_back(rng.uniform(-1.0f, 1.0f));

    std::vector<std::uint16_t> narrowed(values.size());
    std::vector<float> rounded = values;
    ASSERT_TRUE(simd::setActiveLevel(simd::Level::Avx2));
    simd::fp32ToFp16Buffer(values.data(), narrowed.data(),
                           values.size());
    simd::fp16RoundBuffer(rounded.data(), rounded.size());
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_EQ(narrowed[i], fp32ToFp16Bits(values[i]))
            << "value " << values[i];
        EXPECT_EQ(rounded[i], fp16Round(values[i]))
            << "value " << values[i];
    }
}

// ---------------------------------------------------------------------
// Dot kernels: ULP-bounded, not bit-equal
// ---------------------------------------------------------------------

TEST(SimdAccuracy, DotAccWithinDocumentedUlpBound)
{
    FC_REQUIRE_AVX2();
    LevelGuard guard;
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{8}, std::size_t{9},
                                std::size_t{64}, std::size_t{1000}}) {
        Pcg32 rng(n * 97 + 11);
        std::vector<float> a(n), b(n);
        double magnitude = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = rng.uniform(-1.0f, 1.0f);
            b[i] = rng.uniform(-1.0f, 1.0f);
            magnitude += std::abs(static_cast<double>(a[i]) *
                                  static_cast<double>(b[i]));
        }
        const float init = 0.5f;

        ASSERT_TRUE(simd::setActiveLevel(simd::Level::Scalar));
        const float sum_scalar = simd::dotAcc(init, a.data(), b.data(), n);
        ASSERT_TRUE(simd::setActiveLevel(simd::Level::Avx2));
        const float sum_avx2 = simd::dotAcc(init, a.data(), b.data(), n);

        // ~(n/8 + 8) float ULP of sum_i |a_i b_i| (see core/simd.h).
        const double ulp =
            static_cast<double>(std::nextafter(
                static_cast<float>(magnitude),
                std::numeric_limits<float>::infinity())) -
            magnitude;
        const double bound =
            (static_cast<double>(n) / 8.0 + 8.0) * ulp;
        EXPECT_NEAR(sum_scalar, sum_avx2, bound) << "n=" << n;

        // After binary16 output rounding the two levels agree to
        // <= 1 fp16 ULP — the form every stored activation takes.
        const int rank_scalar = fp16Rank(fp32ToFp16Bits(sum_scalar));
        const int rank_avx2 = fp16Rank(fp32ToFp16Bits(sum_avx2));
        EXPECT_LE(std::abs(rank_scalar - rank_avx2), 1) << "n=" << n;
    }
}

TEST(SimdAccuracy, DotVariantsShareAccumulationScheme)
{
    FC_REQUIRE_AVX2();
    LevelGuard guard;
    // fp16-valued operands stored both ways must produce bit-identical
    // sums per level — that is what makes the Fp16 inference mode
    // bit-identical to Mixed.
    for (const std::size_t n : kRemainderSizes) {
        Pcg32 rng(n * 41 + 3);
        std::vector<float> a(n), b(n);
        std::vector<std::uint16_t> ah(n), bh(n);
        for (std::size_t i = 0; i < n; ++i) {
            a[i] = fp16Round(rng.uniform(-1.0f, 1.0f));
            b[i] = fp16Round(rng.uniform(-1.0f, 1.0f));
            ah[i] = fp32ToFp16Bits(a[i]);
            bh[i] = fp32ToFp16Bits(b[i]);
        }
        for (const simd::Level level :
             {simd::Level::Scalar, simd::Level::Avx2}) {
            ASSERT_TRUE(simd::setActiveLevel(level));
            const float wide =
                simd::dotAcc(0.25f, a.data(), b.data(), n);
            const float half =
                simd::dotAccFp16(0.25f, ah.data(), bh.data(), n);
            EXPECT_EQ(wide, half)
                << simd::levelName(level) << " n=" << n;
        }
    }
}

TEST(SimdAccuracy, LinearReluLevelsAgreeWithinOneFp16Ulp)
{
    FC_REQUIRE_AVX2();
    LevelGuard guard;
    nn::LinearRelu layer(48, 32, 7);
    nn::Tensor x(5, 48);
    Pcg32 rng(99);
    for (std::size_t r = 0; r < x.rows(); ++r)
        for (std::size_t c = 0; c < x.cols(); ++c)
            x.at(r, c) = rng.uniform(-1.0f, 1.0f);
    x.quantizeFp16();

    ASSERT_TRUE(simd::setActiveLevel(simd::Level::Scalar));
    const nn::Tensor y_scalar = layer.forward(x);
    ASSERT_TRUE(simd::setActiveLevel(simd::Level::Avx2));
    const nn::Tensor y_avx2 = layer.forward(x);

    ASSERT_EQ(y_scalar.rows(), y_avx2.rows());
    ASSERT_EQ(y_scalar.cols(), y_avx2.cols());
    for (std::size_t r = 0; r < y_scalar.rows(); ++r)
        for (std::size_t c = 0; c < y_scalar.cols(); ++c) {
            // Outputs are fp16-rounded already; compare their ranks.
            const int rs = fp16Rank(fp32ToFp16Bits(y_scalar.at(r, c)));
            const int ra = fp16Rank(fp32ToFp16Bits(y_avx2.at(r, c)));
            EXPECT_LE(std::abs(rs - ra), 1)
                << "row " << r << " col " << c;
        }
}

// ---------------------------------------------------------------------
// End-to-end equivalence across levels and precisions
// ---------------------------------------------------------------------

TEST(SimdEquivalence, GeometryOpsIdenticalAcrossLevels)
{
    FC_REQUIRE_AVX2();
    LevelGuard guard;
    const data::PointCloud scene = data::makeS3disScene(512, 3);
    std::vector<PointIdx> all(scene.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = static_cast<PointIdx>(i);

    ASSERT_TRUE(simd::setActiveLevel(simd::Level::Scalar));
    const ops::SampleResult fps_scalar =
        ops::farthestPointSample(scene, 64, {}, nullptr);
    const ops::NeighborResult ball_scalar =
        ops::ballQuery(scene, fps_scalar.indices, 0.3f, 8, nullptr);
    const ops::NeighborResult knn_scalar =
        ops::knnSearch(scene, all, scene.coords(), 4);

    ASSERT_TRUE(simd::setActiveLevel(simd::Level::Avx2));
    const ops::SampleResult fps_avx2 =
        ops::farthestPointSample(scene, 64, {}, nullptr);
    const ops::NeighborResult ball_avx2 =
        ops::ballQuery(scene, fps_scalar.indices, 0.3f, 8, nullptr);
    const ops::NeighborResult knn_avx2 =
        ops::knnSearch(scene, all, scene.coords(), 4);

    EXPECT_EQ(fps_scalar.indices, fps_avx2.indices);
    EXPECT_EQ(ball_scalar.indices, ball_avx2.indices);
    EXPECT_EQ(ball_scalar.counts, ball_avx2.counts);
    EXPECT_EQ(knn_scalar.indices, knn_avx2.indices);
    EXPECT_EQ(knn_scalar.counts, knn_avx2.counts);
}

/** Tiny two-stage segmentation model (SA + FP + head). */
nn::ModelConfig
tinySegModel()
{
    nn::ModelConfig m;
    m.name = "tiny-seg";
    m.long_name = "tiny segmentation";
    m.task = nn::Task::SemanticSegmentation;
    nn::SaStageConfig s0;
    s0.sample_rate = 0.25;
    s0.radius = 0.3f;
    s0.k = 8;
    s0.mlp = {16, 16};
    nn::SaStageConfig s1;
    s1.sample_rate = 0.25;
    s1.radius = 0.6f;
    s1.k = 8;
    s1.mlp = {32, 32};
    m.sa = {s0, s1};
    nn::FpStageConfig f0;
    f0.mlp = {32};
    nn::FpStageConfig f1;
    f1.mlp = {16};
    m.fp = {f0, f1};
    m.head = {13};
    m.num_classes = 13;
    return m;
}

TEST(SimdAccuracy, Fp16ModeMatchesMixedBitwise)
{
    // Holds at either dispatch level (each run uses the current one):
    // every MLP input is already fp16-valued, the conversions are
    // exact, and both precisions share one accumulation scheme.
    const data::PointCloud scene = data::makeS3disScene(1024, 5);
    const nn::Network network(tinySegModel(), 42);

    nn::BackendOptions mixed;
    mixed.method = part::Method::Fractal;
    nn::BackendOptions fp16 = mixed;
    fp16.precision = nn::Precision::Fp16;

    const nn::InferenceResult a = network.run(scene, mixed);
    const nn::InferenceResult b = network.run(scene, fp16);

    ASSERT_EQ(a.embedding.rows(), b.embedding.rows());
    ASSERT_EQ(a.embedding.cols(), b.embedding.cols());
    EXPECT_EQ(a.embedding.data(), b.embedding.data());
    ASSERT_EQ(a.point_features.rows(), b.point_features.rows());
    EXPECT_EQ(a.point_features.data(), b.point_features.data());
    EXPECT_EQ(a.total_macs, b.total_macs);
}

// ---------------------------------------------------------------------
// Thread-count determinism with SIMD active (TSan CI filter)
// ---------------------------------------------------------------------

TEST(SimdDeterminism, FpsIdenticalAcrossThreadCounts)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 9);
    const ops::SampleResult serial =
        ops::farthestPointSample(scene, 256, {}, nullptr);
    for (const unsigned threads : {2u, 4u}) {
        core::ThreadPool pool(threads);
        const ops::SampleResult pooled =
            ops::farthestPointSample(scene, 256, {}, &pool);
        EXPECT_EQ(serial.indices, pooled.indices)
            << threads << " threads";
    }
}

TEST(SimdDeterminism, InferenceIdenticalAcrossThreadCounts)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 21);
    const nn::Network network(tinySegModel(), 7);
    for (const nn::Precision precision :
         {nn::Precision::Mixed, nn::Precision::Fp16}) {
        nn::BackendOptions backend;
        backend.method = part::Method::Fractal;
        backend.precision = precision;
        const nn::InferenceResult serial = network.run(scene, backend);
        for (const unsigned threads : {2u, 4u}) {
            core::ThreadPool pool(threads);
            nn::BackendOptions pooled_backend = backend;
            pooled_backend.pool = &pool;
            core::Workspace ws;
            nn::InferenceResult pooled;
            network.run(scene, pooled_backend, ws, pooled);
            EXPECT_EQ(serial.embedding.data(), pooled.embedding.data());
            EXPECT_EQ(serial.point_features.data(),
                      pooled.point_features.data());
        }
    }
}

} // namespace
} // namespace fc
