/**
 * @file
 * Unit tests for the PointCloud container and geometry types.
 */

#include <gtest/gtest.h>

#include "common/types.h"
#include "dataset/point_cloud.h"

namespace fc::data {
namespace {

PointCloud
makeCloud()
{
    PointCloud c;
    c.addPoint({0, 0, 0}, 0);
    c.addPoint({1, 0, 0}, 1);
    c.addPoint({0, 2, 0}, 2);
    c.addPoint({0, 0, 3}, 0);
    return c;
}

TEST(Vec3, Arithmetic)
{
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ((a + b), (Vec3{5, 7, 9}));
    EXPECT_EQ((b - a), (Vec3{3, 3, 3}));
    EXPECT_EQ((a * 2.0f), (Vec3{2, 4, 6}));
    EXPECT_FLOAT_EQ(distance2(a, b), 27.0f);
    EXPECT_FLOAT_EQ(a[0], 1.0f);
    EXPECT_FLOAT_EQ(a[1], 2.0f);
    EXPECT_FLOAT_EQ(a[2], 3.0f);
}

TEST(Aabb, ExtendAndContain)
{
    Aabb box;
    EXPECT_TRUE(box.empty());
    box.extend({1, 1, 1});
    box.extend({-1, 2, 0});
    EXPECT_FALSE(box.empty());
    EXPECT_TRUE(box.contains({0, 1.5f, 0.5f}));
    EXPECT_FALSE(box.contains({0, 3, 0}));
    EXPECT_FLOAT_EQ(box.midpoint(0), 0.0f);
    EXPECT_FLOAT_EQ(box.midpoint(1), 1.5f);
    EXPECT_EQ(box.longestAxis(), 0); // x extent 2 > y extent 1 ... tie
}

TEST(Aabb, LongestAxis)
{
    Aabb box;
    box.extend({0, 0, 0});
    box.extend({1, 5, 2});
    EXPECT_EQ(box.longestAxis(), 1);
}

TEST(PointCloud, BoundsCoverAllPoints)
{
    const PointCloud c = makeCloud();
    const Aabb box = c.bounds();
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_TRUE(box.contains(c[i]));
    EXPECT_FLOAT_EQ(box.hi.z, 3.0f);
}

TEST(PointCloud, PermutedMovesLabelsAndFeatures)
{
    PointCloud c = makeCloud();
    c.allocateFeatures(2);
    for (std::size_t i = 0; i < c.size(); ++i) {
        c.featureRow(i)[0] = static_cast<float>(i);
        c.featureRow(i)[1] = static_cast<float>(10 * i);
    }
    const std::vector<PointIdx> order{3, 1, 0, 2};
    const PointCloud p = c.permuted(order);
    ASSERT_EQ(p.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(p[i], c[order[i]]);
        EXPECT_EQ(p.labels()[i], c.labels()[order[i]]);
        EXPECT_FLOAT_EQ(p.featureRow(i)[0],
                        static_cast<float>(order[i]));
    }
}

TEST(PointCloud, SubsetSelectsRows)
{
    PointCloud c = makeCloud();
    const PointCloud s = c.subset({2, 2, 0});
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0], c[2]);
    EXPECT_EQ(s[1], c[2]);
    EXPECT_EQ(s[2], c[0]);
    EXPECT_EQ(s.labels()[2], 0);
}

TEST(PointCloud, NormalizeToUnitSphere)
{
    PointCloud c = makeCloud();
    c.normalizeToUnitSphere();
    float max_r = 0.0f;
    Vec3 centroid{0, 0, 0};
    for (std::size_t i = 0; i < c.size(); ++i) {
        max_r = std::max(max_r, c[i].norm());
        centroid += c[i];
    }
    EXPECT_NEAR(max_r, 1.0f, 1e-5f);
}

TEST(PointCloud, NormalizeDegenerateIsSafe)
{
    PointCloud c;
    c.addPoint({5, 5, 5});
    c.addPoint({5, 5, 5});
    c.normalizeToUnitSphere(); // must not divide by zero
    EXPECT_FLOAT_EQ(c[0].norm(), 0.0f);
}

TEST(PointCloud, FeatureAllocationZeroFills)
{
    PointCloud c = makeCloud();
    c.allocateFeatures(3);
    EXPECT_EQ(c.featureDim(), 3u);
    EXPECT_EQ(c.features().size(), 12u);
    for (const float v : c.features())
        EXPECT_EQ(v, 0.0f);
}

TEST(PointCloud, ByteAccounting)
{
    PointCloud c = makeCloud();
    c.allocateFeatures(4);
    EXPECT_EQ(c.coordBytesFp16(), 4u * 8u);
    EXPECT_EQ(c.featureBytesFp16(), 4u * 4u * 2u);
}

} // namespace
} // namespace fc::data
