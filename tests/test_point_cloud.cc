/**
 * @file
 * Unit tests for the PointCloud container and geometry types.
 */

#include <gtest/gtest.h>
#include <memory>
#include <thread>
#include <utility>

#include "common/types.h"
#include "dataset/point_cloud.h"

namespace fc::data {
namespace {

PointCloud
makeCloud()
{
    PointCloud c;
    c.addPoint({0, 0, 0}, 0);
    c.addPoint({1, 0, 0}, 1);
    c.addPoint({0, 2, 0}, 2);
    c.addPoint({0, 0, 3}, 0);
    return c;
}

TEST(Vec3, Arithmetic)
{
    const Vec3 a{1, 2, 3}, b{4, 5, 6};
    EXPECT_EQ((a + b), (Vec3{5, 7, 9}));
    EXPECT_EQ((b - a), (Vec3{3, 3, 3}));
    EXPECT_EQ((a * 2.0f), (Vec3{2, 4, 6}));
    EXPECT_FLOAT_EQ(distance2(a, b), 27.0f);
    EXPECT_FLOAT_EQ(a[0], 1.0f);
    EXPECT_FLOAT_EQ(a[1], 2.0f);
    EXPECT_FLOAT_EQ(a[2], 3.0f);
}

TEST(Aabb, ExtendAndContain)
{
    Aabb box;
    EXPECT_TRUE(box.empty());
    box.extend({1, 1, 1});
    box.extend({-1, 2, 0});
    EXPECT_FALSE(box.empty());
    EXPECT_TRUE(box.contains({0, 1.5f, 0.5f}));
    EXPECT_FALSE(box.contains({0, 3, 0}));
    EXPECT_FLOAT_EQ(box.midpoint(0), 0.0f);
    EXPECT_FLOAT_EQ(box.midpoint(1), 1.5f);
    EXPECT_EQ(box.longestAxis(), 0); // x extent 2 > y extent 1 ... tie
}

TEST(Aabb, LongestAxis)
{
    Aabb box;
    box.extend({0, 0, 0});
    box.extend({1, 5, 2});
    EXPECT_EQ(box.longestAxis(), 1);
}

TEST(PointCloud, BoundsCoverAllPoints)
{
    const PointCloud c = makeCloud();
    const Aabb box = c.bounds();
    for (std::size_t i = 0; i < c.size(); ++i)
        EXPECT_TRUE(box.contains(c[i]));
    EXPECT_FLOAT_EQ(box.hi.z, 3.0f);
}

TEST(PointCloud, PermutedMovesLabelsAndFeatures)
{
    PointCloud c = makeCloud();
    c.allocateFeatures(2);
    for (std::size_t i = 0; i < c.size(); ++i) {
        c.featureRow(i)[0] = static_cast<float>(i);
        c.featureRow(i)[1] = static_cast<float>(10 * i);
    }
    const std::vector<PointIdx> order{3, 1, 0, 2};
    const PointCloud p = c.permuted(order);
    ASSERT_EQ(p.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(p[i], c[order[i]]);
        EXPECT_EQ(p.labels()[i], c.labels()[order[i]]);
        EXPECT_FLOAT_EQ(p.featureRow(i)[0],
                        static_cast<float>(order[i]));
    }
}

TEST(PointCloud, SubsetSelectsRows)
{
    PointCloud c = makeCloud();
    const PointCloud s = c.subset({2, 2, 0});
    ASSERT_EQ(s.size(), 3u);
    EXPECT_EQ(s[0], c[2]);
    EXPECT_EQ(s[1], c[2]);
    EXPECT_EQ(s[2], c[0]);
    EXPECT_EQ(s.labels()[2], 0);
}

TEST(PointCloud, NormalizeToUnitSphere)
{
    PointCloud c = makeCloud();
    c.normalizeToUnitSphere();
    float max_r = 0.0f;
    Vec3 centroid{0, 0, 0};
    for (std::size_t i = 0; i < c.size(); ++i) {
        max_r = std::max(max_r, c[i].norm());
        centroid += c[i];
    }
    EXPECT_NEAR(max_r, 1.0f, 1e-5f);
}

TEST(PointCloud, NormalizeDegenerateIsSafe)
{
    PointCloud c;
    c.addPoint({5, 5, 5});
    c.addPoint({5, 5, 5});
    c.normalizeToUnitSphere(); // must not divide by zero
    EXPECT_FLOAT_EQ(c[0].norm(), 0.0f);
}

TEST(PointCloud, FeatureAllocationZeroFills)
{
    PointCloud c = makeCloud();
    c.allocateFeatures(3);
    EXPECT_EQ(c.featureDim(), 3u);
    EXPECT_EQ(c.features().size(), 12u);
    for (const float v : c.features())
        EXPECT_EQ(v, 0.0f);
}

TEST(PointCloud, ByteAccounting)
{
    PointCloud c = makeCloud();
    c.allocateFeatures(4);
    EXPECT_EQ(c.coordBytesFp16(), 4u * 8u);
    EXPECT_EQ(c.featureBytesFp16(), 4u * 4u * 2u);
}

TEST(PointCloudConcurrent, SoaFirstTouchFromManyThreads)
{
    // The ROADMAP SIMD gap: soa() used to require a serial pre-warm.
    // Now any number of threads may first-touch a shared dirty cloud;
    // the first one in rebuilds under the internal mutex (run under
    // TSan in CI).
    PointCloud cloud;
    for (int i = 0; i < 5000; ++i)
        cloud.addPoint({static_cast<float>(i),
                        static_cast<float>(2 * i),
                        static_cast<float>(3 * i)});

    std::vector<std::thread> threads;
    std::vector<int> mismatches(8, 0);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&cloud, &mismatches, t] {
            // Read through a const view: the non-const operator[] is
            // a mutator (detach + dirty-mark) and owner-only.
            const PointCloud &c = cloud;
            const core::simd::SoaView v = c.soa();
            for (std::size_t i = 0; i < c.size(); i += 97)
                if (v.xs[i] != c[i].x || v.ys[i] != c[i].y ||
                    v.zs[i] != c[i].z)
                    ++mismatches[t];
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (int m : mismatches)
        EXPECT_EQ(m, 0);
}

ExternalCloudView
viewOf(const PointCloud &cloud, const std::vector<float> &x,
       const std::vector<float> &y, const std::vector<float> &z)
{
    ExternalCloudView view;
    view.size = cloud.size();
    view.coords = cloud.coords().data();
    view.x = x.data();
    view.y = y.data();
    view.z = z.data();
    if (cloud.hasLabels())
        view.labels = cloud.labels().data();
    return view;
}

TEST(PointCloudExternal, BindReadsAliasDetachCopies)
{
    // Backing storage the external cloud aliases (stand-in for an
    // mmap'd block; the real binding lives in storage/fcpc_reader).
    auto backing = std::make_shared<PointCloud>(makeCloud());
    const core::simd::SoaView soa = backing->soa();
    std::vector<float> x(soa.xs, soa.xs + backing->size());
    std::vector<float> y(soa.ys, soa.ys + backing->size());
    std::vector<float> z(soa.zs, soa.zs + backing->size());

    PointCloud ext;
    ext.bindExternal(viewOf(*backing, x, y, z), backing);
    // Read through a const view: the non-const accessors are
    // mutators by contract (they detach a bound cloud).
    const PointCloud &cext = ext;
    EXPECT_TRUE(cext.isExternal());
    ASSERT_EQ(cext.size(), backing->size());
    EXPECT_EQ(cext.coords().data(),
              std::as_const(*backing).coords().data());
    EXPECT_EQ(cext.soa().xs, x.data());
    EXPECT_TRUE(cext.hasLabels());
    EXPECT_EQ(cext.labels()[2], 2);

    // Reads agree with the backing cloud.
    for (std::size_t i = 0; i < cext.size(); ++i)
        EXPECT_EQ(cext[i], (*backing)[i]);
    const Aabb box = cext.bounds();
    EXPECT_FLOAT_EQ(box.hi.z, 3.0f);

    // First mutation detaches: a deep copy, alias dropped.
    ext.addPoint({9, 9, 9}, 3);
    EXPECT_FALSE(cext.isExternal());
    EXPECT_EQ(cext.size(), backing->size() + 1);
    EXPECT_NE(cext.coords().data(),
              std::as_const(*backing).coords().data());
    EXPECT_EQ(cext[0], (*backing)[0]);
    EXPECT_EQ(cext.soa().xs[4], 9.0f);
}

TEST(PointCloudExternal, SubsetAndPermuteWorkOnExternalClouds)
{
    auto backing = std::make_shared<PointCloud>(makeCloud());
    const core::simd::SoaView soa = backing->soa();
    std::vector<float> x(soa.xs, soa.xs + backing->size());
    std::vector<float> y(soa.ys, soa.ys + backing->size());
    std::vector<float> z(soa.zs, soa.zs + backing->size());

    PointCloud ext;
    ext.bindExternal(viewOf(*backing, x, y, z), backing);

    const PointCloud sub = ext.subset({2, 0});
    EXPECT_FALSE(sub.isExternal());
    EXPECT_EQ(sub[0], (*backing)[2]);
    EXPECT_EQ(sub.labels()[1], 0);

    const PointCloud perm = ext.permuted({3, 2, 1, 0});
    EXPECT_EQ(perm[0], (*backing)[3]);
    EXPECT_EQ(perm.labels()[3], 0);

    // subsetInto must reset a previously-external output cloud to
    // owned storage instead of writing through the alias.
    PointCloud out;
    out.bindExternal(viewOf(*backing, x, y, z), backing);
    ext.subsetInto({1, 3}, out);
    EXPECT_FALSE(out.isExternal());
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[1], (*backing)[3]);
}

TEST(PointCloudExternal, KeepaliveOutlivesOwnerHandle)
{
    PointCloud ext;
    {
        auto backing = std::make_shared<PointCloud>(makeCloud());
        const core::simd::SoaView soa = backing->soa();
        // SoA columns owned by the keepalive target itself: bundle
        // everything whose lifetime matters into the owner token.
        struct Bundle
        {
            std::shared_ptr<PointCloud> cloud;
            std::vector<float> x, y, z;
        };
        auto bundle = std::make_shared<Bundle>();
        bundle->cloud = backing;
        bundle->x.assign(soa.xs, soa.xs + backing->size());
        bundle->y.assign(soa.ys, soa.ys + backing->size());
        bundle->z.assign(soa.zs, soa.zs + backing->size());
        ext.bindExternal(
            viewOf(*backing, bundle->x, bundle->y, bundle->z),
            bundle);
    } // local handles die; the cloud's keepalive holds the bundle
    const PointCloud &cext = ext;
    ASSERT_EQ(cext.size(), 4u);
    EXPECT_FLOAT_EQ(cext[3].z, 3.0f);
    EXPECT_FLOAT_EQ(cext.soa().zs[3], 3.0f);
}

} // namespace
} // namespace fc::data
