/**
 * @file
 * Unit tests for the tensor and MLP substrate.
 */

#include <gtest/gtest.h>

#include "nn/mlp.h"
#include "nn/tensor.h"

namespace fc::nn {
namespace {

TEST(Tensor, ShapeAndAccess)
{
    Tensor t(3, 4);
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 4u);
    t.at(1, 2) = 5.0f;
    EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
    EXPECT_FLOAT_EQ(t.row(1)[2], 5.0f);
}

TEST(Tensor, QuantizeFp16RoundsEveryElement)
{
    Tensor t(1, 2);
    t.at(0, 0) = 0.1f;
    t.at(0, 1) = 1.0f;
    t.quantizeFp16();
    EXPECT_NE(t.at(0, 0), 0.1f);
    EXPECT_EQ(t.at(0, 1), 1.0f);
}

TEST(LinearRelu, DeterministicWeights)
{
    LinearRelu a(8, 4, 99);
    LinearRelu b(8, 4, 99);
    Tensor x(2, 8);
    for (std::size_t c = 0; c < 8; ++c)
        x.at(0, c) = static_cast<float>(c);
    const Tensor ya = a.forward(x);
    const Tensor yb = b.forward(x);
    for (std::size_t c = 0; c < 4; ++c)
        EXPECT_EQ(ya.at(0, c), yb.at(0, c));
}

TEST(LinearRelu, DifferentSeedsDiffer)
{
    LinearRelu a(8, 4, 1);
    LinearRelu b(8, 4, 2);
    Tensor x(1, 8);
    for (std::size_t c = 0; c < 8; ++c)
        x.at(0, c) = 1.0f;
    const Tensor ya = a.forward(x);
    const Tensor yb = b.forward(x);
    bool any_diff = false;
    for (std::size_t c = 0; c < 4; ++c)
        any_diff |= ya.at(0, c) != yb.at(0, c);
    EXPECT_TRUE(any_diff);
}

TEST(LinearRelu, ReluClampsNegative)
{
    LinearRelu layer(4, 16, 3);
    Tensor x(8, 4);
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            x.at(r, c) = static_cast<float>(r) - 4.0f;
    const Tensor y = layer.forward(x);
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 16; ++c)
            EXPECT_GE(y.at(r, c), 0.0f);
}

TEST(LinearRelu, MacCount)
{
    LinearRelu layer(8, 4, 5);
    EXPECT_EQ(layer.macs(10), 10u * 8u * 4u);
}

TEST(Mlp, ChainsLayers)
{
    Mlp mlp({6, 12, 3}, 7);
    EXPECT_EQ(mlp.inDim(), 6u);
    EXPECT_EQ(mlp.outDim(), 3u);
    Tensor x(5, 6);
    const Tensor y = mlp.forward(x);
    EXPECT_EQ(y.rows(), 5u);
    EXPECT_EQ(y.cols(), 3u);
    EXPECT_EQ(mlp.macs(5), 5u * (6 * 12 + 12 * 3));
}

TEST(MaxPool, GroupReduction)
{
    Tensor x(6, 2);
    for (std::size_t r = 0; r < 6; ++r) {
        x.at(r, 0) = static_cast<float>(r);
        x.at(r, 1) = -static_cast<float>(r);
    }
    const Tensor y = maxPoolGroups(x, 3);
    ASSERT_EQ(y.rows(), 2u);
    EXPECT_FLOAT_EQ(y.at(0, 0), 2.0f);
    EXPECT_FLOAT_EQ(y.at(0, 1), 0.0f);
    EXPECT_FLOAT_EQ(y.at(1, 0), 5.0f);
    EXPECT_FLOAT_EQ(y.at(1, 1), -3.0f);
}

TEST(MaxPool, GlobalReduction)
{
    Tensor x(4, 3);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            x.at(r, c) = static_cast<float>(r * 3 + c);
    const Tensor y = globalMaxPool(x);
    ASSERT_EQ(y.rows(), 1u);
    EXPECT_FLOAT_EQ(y.at(0, 0), 9.0f);
    EXPECT_FLOAT_EQ(y.at(0, 2), 11.0f);
}

TEST(MaxPoolDeathTest, BadGroupSizePanics)
{
    Tensor x(5, 2);
    EXPECT_DEATH(maxPoolGroups(x, 3), "multiple");
}

} // namespace
} // namespace fc::nn
