/**
 * @file
 * Unit tests for the deterministic PCG32 generator.
 */

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fc {
namespace {

TEST(Pcg32, DeterministicAcrossInstances)
{
    Pcg32 a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 5);
}

TEST(Pcg32, UniformInRange)
{
    Pcg32 rng(42);
    for (int i = 0; i < 10000; ++i) {
        const float v = rng.uniform();
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(Pcg32, UniformBoundsRespected)
{
    Pcg32 rng(42);
    for (int i = 0; i < 10000; ++i) {
        const float v = rng.uniform(-3.0f, 7.0f);
        EXPECT_GE(v, -3.0f);
        EXPECT_LT(v, 7.0f);
    }
}

TEST(Pcg32, BoundedNoModuloEscape)
{
    Pcg32 rng(99);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.bounded(17), 17u);
    EXPECT_EQ(rng.bounded(0), 0u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Pcg32, BoundedCoversAllResidues)
{
    Pcg32 rng(5);
    std::vector<int> seen(13, 0);
    for (int i = 0; i < 13000; ++i)
        ++seen[rng.bounded(13)];
    for (int r = 0; r < 13; ++r)
        EXPECT_GT(seen[r], 500) << "residue " << r;
}

TEST(Pcg32, NormalMoments)
{
    Pcg32 rng(7);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sum_sq += v * v;
    }
    const double mean = sum / n;
    const double var = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Pcg32, NormalShiftScale)
{
    Pcg32 rng(8);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(5.0f, 2.0f);
    EXPECT_NEAR(sum / n, 5.0, 0.05);
}

} // namespace
} // namespace fc
