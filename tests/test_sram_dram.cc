/**
 * @file
 * Tests for the SRAM and DRAM memory models.
 */

#include <gtest/gtest.h>

#include "sim/dram.h"
#include "sim/sram.h"

namespace fc::sim {
namespace {

TEST(Sram, StreamedUsesAllBanks)
{
    Sram sram({274 * 1024, 16, 16});
    // 16 banks x 16 B = 256 B/cycle.
    EXPECT_EQ(sram.cycles(2560, AccessPattern::Streamed), 10u);
}

TEST(Sram, RandomSlowerThanStreamed)
{
    Sram sram({274 * 1024, 16, 16});
    const Cycles st = sram.cycles(65536, AccessPattern::Streamed);
    const Cycles rnd =
        sram.cycles(65536, AccessPattern::Random, 4);
    EXPECT_GT(rnd, st);
}

TEST(Sram, MoreRequestersMoreConflicts)
{
    Sram sram({274 * 1024, 16, 16});
    // Per-requester throughput degrades as collisions rise.
    const Cycles r4 = sram.cycles(65536, AccessPattern::Random, 4);
    const Cycles r16 = sram.cycles(65536, AccessPattern::Random, 16);
    // 16 requesters still finish sooner in aggregate...
    EXPECT_LT(r16, r4);
    // ...but not 4x sooner (conflicts eat the scaling).
    EXPECT_GT(r16 * 3, r4);
}

TEST(Sram, RecordsTraffic)
{
    Sram sram({1024, 4, 8});
    sram.record(100, AccessPattern::Streamed);
    sram.record(50, AccessPattern::Random);
    EXPECT_EQ(sram.totalBytes(), 150u);
    EXPECT_EQ(sram.randomBytes(), 50u);
    sram.reset();
    EXPECT_EQ(sram.totalBytes(), 0u);
}

TEST(Dram, StreamBandwidthMatchesConfig)
{
    Dram dram({17.0, 0.85, 64, 0.25, 45, 4, 1.0});
    // 17 GB/s * 0.85 = 14.45 B/cycle at 1 GHz.
    const Cycles c = dram.streamCycles(14'450'000);
    EXPECT_NEAR(static_cast<double>(c), 1e6, 1e4);
}

TEST(Dram, ZeroBytesZeroCycles)
{
    Dram dram;
    EXPECT_EQ(dram.streamCycles(0), 0u);
    EXPECT_EQ(dram.randomCycles(0, 64), 0u);
}

TEST(Dram, RandomCostsMoreThanStream)
{
    Dram dram;
    // 1000 random touches of 16 useful bytes move 64 B bursts each.
    const Cycles rnd = dram.randomCycles(1000, 16);
    const Cycles st = dram.streamCycles(16'000);
    EXPECT_GT(rnd, 3 * st);
}

TEST(Dram, RandomBytesAreBursts)
{
    Dram dram;
    EXPECT_EQ(dram.randomBytesMoved(10), 640u);
    dram.recordRandom(10);
    EXPECT_EQ(dram.randomBytes(), 640u);
    EXPECT_EQ(dram.randomAccesses(), 10u);
    dram.recordStream(100);
    EXPECT_EQ(dram.totalBytes(), 740u);
}

TEST(Dram, RowMissPenaltyVisible)
{
    DramConfig all_hit{17.0, 0.85, 64, 1.0, 45, 4, 1.0};
    DramConfig all_miss{17.0, 0.85, 64, 0.0, 45, 4, 1.0};
    Dram hit(all_hit), miss(all_miss);
    EXPECT_GT(miss.randomCycles(10000, 16),
              hit.randomCycles(10000, 16));
}

} // namespace
} // namespace fc::sim
