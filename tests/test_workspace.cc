/**
 * @file
 * The allocation-free steady state, proven.
 *
 *  - Arena / Workspace unit behaviour (alignment, reset reuse, slot
 *    persistence).
 *  - A global operator-new hook counts every heap allocation in the
 *    test binary; the steady-state tests assert the second-and-later
 *    same-shape infer() performs exactly zero.
 *  - Workspace-reuse determinism: warm results equal cold results
 *    byte for byte — value API vs workspace API, across thread
 *    counts, and through the serve path (which must also reuse its
 *    pooled workspaces rather than growing).
 *  - The pooled global FPS / ball-query fallbacks match their serial
 *    selves at every thread count (GlobalOpsParallel, in the TSan CI
 *    filter).
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "core/workspace.h"
#include "dataset/s3dis.h"
#include "nn/models.h"
#include "nn/network.h"
#include "ops/fps.h"
#include "ops/interpolate.h"
#include "ops/knn_graph.h"
#include "ops/neighbor.h"
#include "serve/async_pipeline.h"

// Counting allocator: shared hook replacing the global allocation
// operators binary-wide (see src/common/alloc_hook.h). Tests only
// read deltas around the calls they measure, so coexistence with
// gtest/sanitizer allocations is benign.
#include "common/alloc_hook.h"

namespace {

using namespace fc;

// ---------------------------------------------------------------------
// Fixtures
// ---------------------------------------------------------------------

/** Tiny two-stage segmentation network: covers SA, FP, and head. */
nn::ModelConfig
tinySegModel()
{
    nn::ModelConfig m;
    m.name = "tiny-seg";
    m.long_name = "tiny segmentation";
    m.task = nn::Task::SemanticSegmentation;
    nn::SaStageConfig s0;
    s0.sample_rate = 0.25;
    s0.radius = 0.3f;
    s0.k = 8;
    s0.mlp = {16, 16};
    nn::SaStageConfig s1;
    s1.sample_rate = 0.25;
    s1.radius = 0.6f;
    s1.k = 8;
    s1.mlp = {32, 32};
    m.sa = {s0, s1};
    nn::FpStageConfig f0;
    f0.mlp = {32};
    nn::FpStageConfig f1;
    f1.mlp = {16};
    m.fp = {f0, f1};
    m.head = {13};
    m.num_classes = 13;
    return m;
}

/** Tiny classification head (no FP pass). */
nn::ModelConfig
tinyClsModel()
{
    nn::ModelConfig m = tinySegModel();
    m.name = "tiny-cls";
    m.long_name = "tiny classification";
    m.task = nn::Task::Classification;
    m.fp.clear();
    m.head = {16, 10};
    m.num_classes = 10;
    return m;
}

void
expectIdenticalResults(const nn::InferenceResult &a,
                       const nn::InferenceResult &b)
{
    EXPECT_EQ(a.embedding.data(), b.embedding.data());
    EXPECT_EQ(a.embedding.rows(), b.embedding.rows());
    EXPECT_EQ(a.point_features.data(), b.point_features.data());
    EXPECT_EQ(a.point_features.rows(), b.point_features.rows());
    EXPECT_EQ(a.total_macs, b.total_macs);
    EXPECT_EQ(a.op_stats.distance_computations,
              b.op_stats.distance_computations);
    EXPECT_EQ(a.op_stats.points_visited, b.op_stats.points_visited);
    EXPECT_EQ(a.op_stats.iterations, b.op_stats.iterations);
    EXPECT_EQ(a.op_stats.bytes_gathered, b.op_stats.bytes_gathered);
    EXPECT_EQ(a.partition_stats.elements_traversed,
              b.partition_stats.elements_traversed);
    EXPECT_EQ(a.partition_stats.num_splits,
              b.partition_stats.num_splits);
}

// ---------------------------------------------------------------------
// Arena / Workspace units
// ---------------------------------------------------------------------

TEST(Arena, AlignsAndRoundsEveryAllocation)
{
    core::Arena arena;
    void *a = arena.allocate(1);
    void *b = arena.allocate(65);
    void *c = arena.allocate(64);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 64, 0u);
    // Sizes round up to the 64-byte granule, so the running total is
    // independent of allocation order.
    EXPECT_EQ(arena.bytesUsed(), 64u + 128u + 64u);
}

TEST(Arena, ResetReplaysIntoRetainedChunks)
{
    core::Arena arena;
    std::span<float> first = arena.allocSpan<float>(1000, 1.0f);
    const void *cold_ptr = first.data();
    const std::size_t reserved = arena.bytesReserved();
    const std::size_t chunks = arena.chunkCount();

    arena.reset();
    EXPECT_EQ(arena.bytesUsed(), 0u);
    std::span<float> second = arena.allocSpan<float>(1000, 2.0f);
    // Same request sequence lands in the same storage: no growth.
    EXPECT_EQ(static_cast<const void *>(second.data()), cold_ptr);
    EXPECT_EQ(arena.bytesReserved(), reserved);
    EXPECT_EQ(arena.chunkCount(), chunks);
}

TEST(Arena, GrowsOnlyOnFirstSeenLargerShapes)
{
    core::Arena arena;
    arena.allocSpan<std::uint8_t>(100);
    const std::size_t small_reserved = arena.bytesReserved();
    arena.reset();
    arena.allocSpan<std::uint8_t>(1 << 20); // larger shape: grows
    const std::size_t big_reserved = arena.bytesReserved();
    EXPECT_GT(big_reserved, small_reserved);
    arena.reset();
    arena.allocSpan<std::uint8_t>(1 << 20); // same shape: no growth
    EXPECT_EQ(arena.bytesReserved(), big_reserved);
}

TEST(Workspace, SlotsPersistAcrossReset)
{
    core::Workspace ws;
    std::vector<int> &v = ws.slot<std::vector<int>>("test.v");
    v.assign(100, 7);
    const void *data = v.data();
    ws.reset();
    std::vector<int> &again = ws.slot<std::vector<int>>("test.v");
    EXPECT_EQ(&again, &v);
    EXPECT_EQ(static_cast<const void *>(again.data()), data);
    EXPECT_EQ(again.size(), 100u);
    EXPECT_EQ(ws.slotCount(), 1u);
}

// ---------------------------------------------------------------------
// Zero heap allocations in steady state
// ---------------------------------------------------------------------

TEST(WorkspaceAlloc, SecondSegmentationInferIsAllocationFree)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 3);
    PipelineOptions options;
    options.num_threads = 1; // the sequential executor
    options.threshold = 64;
    const FractalCloudPipeline pipeline(scene, options);
    const nn::Network network(tinySegModel(), 42);

    nn::InferenceResult out;
    pipeline.infer(network, out); // cold: grows workspace + out

    const std::uint64_t before = fc::heapAllocCount();
    pipeline.infer(network, out); // second call: fully warm
    const std::uint64_t second = fc::heapAllocCount() - before;
    EXPECT_EQ(second, 0u);

    const std::uint64_t before3 = fc::heapAllocCount();
    pipeline.infer(network, out);
    EXPECT_EQ(fc::heapAllocCount() - before3, 0u);
}

TEST(WorkspaceAlloc, SecondClassificationInferIsAllocationFree)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 5);
    PipelineOptions options;
    options.num_threads = 1;
    options.threshold = 64;
    const FractalCloudPipeline pipeline(scene, options);
    const nn::Network network(tinyClsModel(), 42);

    nn::InferenceResult out;
    pipeline.infer(network, out);

    const std::uint64_t before = fc::heapAllocCount();
    pipeline.infer(network, out);
    EXPECT_EQ(fc::heapAllocCount() - before, 0u);
}

TEST(WorkspaceAlloc, SecondFp16InferIsAllocationFree)
{
    // The fp16 end-to-end mode keeps the steady-state guarantee: its
    // HalfTensor intermediates live in workspace slots and reuse
    // capacity exactly like the fp32 tensors they shadow.
    const data::PointCloud scene = data::makeS3disScene(1024, 3);
    const nn::Network network(tinySegModel(), 42);
    nn::BackendOptions backend;
    backend.method = part::Method::Fractal;
    backend.threshold = 64;
    backend.precision = nn::Precision::Fp16;

    core::Workspace ws;
    nn::InferenceResult out;
    network.run(scene, backend, ws, out); // cold: grows slots
    ws.reset();
    const std::uint64_t before = fc::heapAllocCount();
    network.run(scene, backend, ws, out); // warm
    EXPECT_EQ(fc::heapAllocCount() - before, 0u);
}

TEST(WorkspaceAlloc, SecondDelayedInferIsAllocationFree)
{
    // The delayed-aggregation order adds two workspace slots (the
    // unique-point MLP input and the pooled relative-coordinate
    // summary) and swaps the gather for a feature index-gather; the
    // warm same-shape guarantee must hold exactly as in eager mode.
    const data::PointCloud scene = data::makeS3disScene(1024, 3);
    const nn::Network network(tinySegModel(), 42);
    nn::BackendOptions backend;
    backend.method = part::Method::Fractal;
    backend.threshold = 64;
    backend.aggregation = nn::Aggregation::Delayed;

    core::Workspace ws;
    nn::InferenceResult out;
    network.run(scene, backend, ws, out); // cold: grows slots
    ws.reset();
    const std::uint64_t before = fc::heapAllocCount();
    network.run(scene, backend, ws, out); // warm
    EXPECT_EQ(fc::heapAllocCount() - before, 0u);
}

TEST(WorkspaceAlloc, WideReduceStagesPartialsInTheArena)
{
    // Above kReduceInlineChunks the pooled reduce historically fell
    // back to a heap vector for the per-chunk staging; with an arena
    // it must stay allocation-free warm.
    core::ThreadPool pool(2);
    core::Workspace ws;
    constexpr std::size_t n = 1000; // grain 1: 1000 chunks >> 64

    // Grow the pool's task ring past the reduce's worst-case backlog
    // deterministically: the ring only reallocates when the enqueued
    // backlog exceeds every backlog seen before, and how much of the
    // cold reduce's backlog the workers drain mid-enqueue is up to
    // the scheduler. Blocking the tasks until all are enqueued pins
    // the backlog at its maximum once, here, outside the measurement.
    {
        std::atomic<bool> release{false};
        core::TaskGroup group(&pool);
        for (std::size_t i = 0; i < n + 200; ++i)
            group.run([&release] {
                while (!release.load(std::memory_order_acquire))
                    std::this_thread::yield();
            });
        release.store(true, std::memory_order_release);
        group.wait();
    }
    const auto sum_below_n = [&] {
        return core::parallelReduce(
            &pool, 0, n, 1, std::uint64_t{0},
            [](std::size_t cb, std::size_t ce) {
                std::uint64_t s = 0;
                for (std::size_t i = cb; i < ce; ++i)
                    s += i;
                return s;
            },
            [](std::uint64_t &acc, std::uint64_t &&chunk) {
                acc += chunk;
            },
            &ws.arena());
    };
    const std::uint64_t expected = n * (n - 1) / 2;
    EXPECT_EQ(sum_below_n(), expected); // cold
    ws.reset();
    const std::uint64_t before = fc::heapAllocCount();
    EXPECT_EQ(sum_below_n(), expected); // warm
    EXPECT_EQ(fc::heapAllocCount() - before, 0u);
}

TEST(WorkspaceAlloc, WarmOpsDrawOnlyFromTheWorkspace)
{
    // The block ops' workspace overloads, exercised directly: cold
    // call grows, warm same-shape call is allocation-free.
    const data::PointCloud scene = data::makeS3disScene(2048, 7);
    const auto partitioner = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = 64;

    core::Workspace ws;
    part::PartitionResult part;
    ops::BlockSampleResult sampled;
    ops::NeighborResult grouped;
    ops::InterpolateResult interp;
    std::vector<float> known_feats;

    const auto run_all = [&] {
        partitioner->partitionInto(scene, config, nullptr, ws, part);
        ops::blockFarthestPointSample(scene, part.tree, 0.25, {},
                                      nullptr, ws, sampled);
        ops::blockBallQuery(scene, part.tree, sampled, 0.3f, 8,
                            nullptr, ws, grouped);
        known_feats.assign(sampled.indices.size() * 4, 0.5f);
        ops::blockInterpolate(scene, part.tree, sampled, known_feats,
                              4, 3, nullptr, ws, interp);
    };

    run_all(); // cold
    ws.reset();
    const std::uint64_t before = fc::heapAllocCount();
    run_all(); // warm
    EXPECT_EQ(fc::heapAllocCount() - before, 0u);
}

TEST(WorkspaceAlloc, WarmServeRoundTripIsAllocationFree)
{
    // The acceptance bar of the shard-local memory work: a warm
    // same-shape submitShared -> waitInto round trip touches the
    // heap exactly zero times — admission (recycled record node +
    // id ring), dispatch (InlineTask ring), processing (per-shard
    // workspace), the result payload (slab-recycled outcome slot),
    // and consumption (capacity-reusing copy) included.
    const auto scene = std::make_shared<const data::PointCloud>(
        data::makeS3disScene(2048, 61));
    const nn::Network network(tinySegModel(), 42);

    serve::ServeOptions options;
    options.pipeline.num_threads = 1;
    options.pipeline.threshold = 64;
    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.3f;
    request.neighbors = 8;
    request.network = &network;
    serve::AsyncPipeline server(options);

    serve::RequestOutcome out;
    for (int i = 0; i < 3; ++i) // warm pools, rings, and capacities
        server.waitInto(server.submitShared(scene, request), out);
    ASSERT_EQ(out.state, serve::RequestState::Done);

    const std::uint64_t before = fc::heapAllocCount();
    server.waitInto(server.submitShared(scene, request), out);
    EXPECT_EQ(fc::heapAllocCount() - before, 0u);

    ASSERT_EQ(out.state, serve::RequestState::Done);
    EXPECT_EQ(server.workspacesCreated(), 1u);
    EXPECT_EQ(server.outcomeSlotsCreated(), 1u);
}

// ---------------------------------------------------------------------
// Workspace-reuse determinism: warm == cold, byte for byte
// ---------------------------------------------------------------------

TEST(WorkspaceDeterminism, WarmEqualsColdAcrossThreadCounts)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 11);
    const nn::Network network(tinySegModel(), 42);

    nn::BackendOptions reference_backend;
    reference_backend.method = part::Method::Fractal;
    reference_backend.threshold = 64;
    const nn::InferenceResult reference =
        network.run(scene, reference_backend);

    for (const unsigned threads : {1u, 2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        std::unique_ptr<core::ThreadPool> pool;
        if (threads > 1)
            pool = std::make_unique<core::ThreadPool>(threads);
        nn::BackendOptions backend = reference_backend;
        backend.pool = pool.get();

        core::Workspace ws;
        nn::InferenceResult out;
        network.run(scene, backend, ws, out); // cold workspace
        expectIdenticalResults(out, reference);
        ws.reset();
        network.run(scene, backend, ws, out); // warm workspace
        expectIdenticalResults(out, reference);
    }
}

TEST(WorkspaceDeterminism, WorkspaceShapeChangesStayExact)
{
    // Shrinking then regrowing the request shape must not leak state
    // between runs: every result equals a fresh value-API run.
    const nn::Network network(tinyClsModel(), 42);
    core::Workspace ws;
    nn::InferenceResult out;
    for (const std::size_t n : {2048u, 512u, 1024u, 2048u}) {
        SCOPED_TRACE("points=" + std::to_string(n));
        const data::PointCloud cloud = data::makeS3disScene(n, 13);
        nn::BackendOptions backend;
        backend.method = part::Method::Fractal;
        backend.threshold = 64;
        ws.reset();
        network.run(cloud, backend, ws, out);
        expectIdenticalResults(out, network.run(cloud, backend));
    }
}

TEST(WorkspaceDeterminism, ServeReusesWorkspacesWithIdenticalResults)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 17);
    const nn::Network network(tinySegModel(), 42);

    PipelineOptions options;
    options.num_threads = 2;
    options.threshold = 64;
    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.3f;
    request.neighbors = 8;
    request.network = &network;

    // Blocking baseline for the same cloud.
    const std::vector<BatchResult> baseline =
        FractalCloudPipeline::runBatch({scene}, options, request);
    ASSERT_EQ(baseline.size(), 1u);
    ASSERT_TRUE(baseline[0].inference.has_value());

    serve::ServeOptions serve_options;
    serve_options.pipeline = options;
    serve::AsyncPipeline server(serve_options);

    // Sequential same-shape requests: one executor at a time, so one
    // workspace serves all of them — and every warm outcome is
    // byte-identical to the cold one and to the blocking path.
    for (int round = 0; round < 3; ++round) {
        SCOPED_TRACE("round=" + std::to_string(round));
        const serve::Ticket ticket = server.submit(scene, request);
        serve::RequestOutcome outcome = server.wait(ticket);
        ASSERT_EQ(outcome.state, serve::RequestState::Done);
        EXPECT_EQ(outcome.result.sampled.indices,
                  baseline[0].sampled.indices);
        EXPECT_EQ(outcome.result.grouped.indices,
                  baseline[0].grouped.indices);
        EXPECT_EQ(outcome.result.gathered.values,
                  baseline[0].gathered.values);
        ASSERT_TRUE(outcome.result.inference.has_value());
        expectIdenticalResults(*outcome.result.inference,
                               *baseline[0].inference);
    }
    EXPECT_EQ(server.workspacesCreated(), 1u);
}

TEST(WorkspaceDeterminism, PipelineInferOverloadsAgree)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 19);
    PipelineOptions options;
    options.num_threads = 1;
    options.threshold = 64;
    const FractalCloudPipeline pipeline(scene, options);
    const nn::Network network(tinySegModel(), 42);

    const nn::InferenceResult value = pipeline.infer(network);
    nn::InferenceResult out;
    pipeline.infer(network, out);
    expectIdenticalResults(out, value);
    pipeline.infer(network, out); // warm
    expectIdenticalResults(out, value);
}

// ---------------------------------------------------------------------
// Pooled global fallbacks (ROADMAP leftovers) stay bit-identical
// ---------------------------------------------------------------------

TEST(GlobalOpsParallel, FarthestPointSampleMatchesSerial)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 23);
    const ops::SampleResult serial =
        ops::farthestPointSample(scene, 300);
    for (const unsigned threads : {2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        core::ThreadPool pool(threads);
        const ops::SampleResult pooled =
            ops::farthestPointSample(scene, 300, {}, &pool);
        EXPECT_EQ(pooled.indices, serial.indices);
        EXPECT_EQ(pooled.stats.distance_computations,
                  serial.stats.distance_computations);
        EXPECT_EQ(pooled.stats.points_visited,
                  serial.stats.points_visited);
        EXPECT_EQ(pooled.stats.skipped, serial.stats.skipped);
        EXPECT_EQ(pooled.stats.iterations, serial.stats.iterations);
    }
}

TEST(GlobalOpsParallel, FarthestPointSampleNoWindowCheckMatchesSerial)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 29);
    ops::FpsOptions options;
    options.window_check = false;
    const ops::SampleResult serial =
        ops::farthestPointSample(scene, 200, options);
    core::ThreadPool pool(8);
    const ops::SampleResult pooled =
        ops::farthestPointSample(scene, 200, options, &pool);
    EXPECT_EQ(pooled.indices, serial.indices);
    EXPECT_EQ(pooled.stats.points_visited, serial.stats.points_visited);
    EXPECT_EQ(pooled.stats.distance_computations,
              serial.stats.distance_computations);
}

TEST(GlobalOpsParallel, BallQueryMatchesSerial)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 31);
    const ops::SampleResult centers =
        ops::farthestPointSample(scene, 256);
    const ops::NeighborResult serial =
        ops::ballQuery(scene, centers.indices, 0.3f, 16);
    for (const unsigned threads : {2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        core::ThreadPool pool(threads);
        const ops::NeighborResult pooled =
            ops::ballQuery(scene, centers.indices, 0.3f, 16, &pool);
        EXPECT_EQ(pooled.indices, serial.indices);
        EXPECT_EQ(pooled.counts, serial.counts);
        EXPECT_EQ(pooled.stats.distance_computations,
                  serial.stats.distance_computations);
        EXPECT_EQ(pooled.stats.iterations, serial.stats.iterations);
    }
}

// ---------------------------------------------------------------------
// Workspace overloads agree with the value APIs they back
// ---------------------------------------------------------------------

TEST(WorkspaceOverloads, OpsIntoVariantsMatchValueVariants)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 37);
    const auto partitioner = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = 64;
    const part::PartitionResult value_part =
        partitioner->partition(scene, config);

    core::Workspace ws;
    part::PartitionResult ws_part;
    partitioner->partitionInto(scene, config, nullptr, ws, ws_part);
    EXPECT_EQ(ws_part.tree.order(), value_part.tree.order());
    EXPECT_EQ(ws_part.tree.leaves(), value_part.tree.leaves());
    EXPECT_EQ(ws_part.stats.num_splits, value_part.stats.num_splits);
    EXPECT_EQ(ws_part.stats.elements_traversed,
              value_part.stats.elements_traversed);

    const ops::BlockSampleResult value_sampled =
        ops::blockFarthestPointSample(scene, value_part.tree, 0.25);
    ops::BlockSampleResult ws_sampled;
    ops::blockFarthestPointSample(scene, ws_part.tree, 0.25, {},
                                  nullptr, ws, ws_sampled);
    EXPECT_EQ(ws_sampled.indices, value_sampled.indices);
    EXPECT_EQ(ws_sampled.positions, value_sampled.positions);
    EXPECT_EQ(ws_sampled.leaf_offsets, value_sampled.leaf_offsets);

    const ops::NeighborResult value_grouped = ops::blockBallQuery(
        scene, value_part.tree, value_sampled, 0.3f, 8);
    ops::NeighborResult ws_grouped;
    ops::blockBallQuery(scene, ws_part.tree, ws_sampled, 0.3f, 8,
                        nullptr, ws, ws_grouped);
    EXPECT_EQ(ws_grouped.indices, value_grouped.indices);
    EXPECT_EQ(ws_grouped.counts, value_grouped.counts);

    const ops::KnnGraph value_graph =
        ops::buildBlockKnnGraph(scene, value_part.tree, 4);
    ops::KnnGraph ws_graph;
    ops::buildBlockKnnGraph(scene, ws_part.tree, 4, nullptr, ws,
                            ws_graph);
    EXPECT_EQ(ws_graph.edges, value_graph.edges);
}

TEST(WorkspaceOverloads, MakeBlockSampleIntoMatchesValue)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 41);
    const auto partitioner = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = 64;
    const part::PartitionResult part =
        partitioner->partition(scene, config);
    const ops::SampleResult sampled =
        ops::farthestPointSample(scene, 200);

    const ops::BlockSampleResult value =
        nn::makeBlockSample(part.tree, sampled.indices);
    core::Workspace ws;
    ops::BlockSampleResult into;
    nn::makeBlockSample(part.tree, sampled.indices, ws, into);
    EXPECT_EQ(into.indices, value.indices);
    EXPECT_EQ(into.positions, value.positions);
    EXPECT_EQ(into.leaf_offsets, value.leaf_offsets);
}

} // namespace
