/**
 * @file
 * Unit tests for the nearest-centroid heads and accuracy metrics.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "nn/classifier.h"

namespace fc::nn {
namespace {

TEST(NearestCentroid, SeparableClusters)
{
    // Three well-separated Gaussian clusters in 4-D.
    Pcg32 rng(1);
    std::vector<float> features;
    std::vector<int> labels;
    const float centers[3][4] = {
        {10, 0, 0, 0}, {0, 10, 0, 0}, {0, 0, 10, 0}};
    for (int c = 0; c < 3; ++c) {
        for (int i = 0; i < 50; ++i) {
            for (int d = 0; d < 4; ++d)
                features.push_back(
                    rng.normal(centers[c][d], 0.5f));
            labels.push_back(c);
        }
    }
    NearestCentroid clf;
    clf.fit(features, 4, labels, 3);

    // Fresh samples classify correctly.
    int correct = 0;
    for (int c = 0; c < 3; ++c) {
        for (int i = 0; i < 20; ++i) {
            float x[4];
            for (int d = 0; d < 4; ++d)
                x[d] = rng.normal(centers[c][d], 0.5f);
            correct += clf.predict({x, 4}) == c;
        }
    }
    EXPECT_GE(correct, 58); // ~97%+
}

TEST(NearestCentroid, UnseenClassNeverPredicted)
{
    std::vector<float> features{1, 0, 0, 1};
    std::vector<int> labels{0, 1};
    NearestCentroid clf;
    clf.fit(features, 2, labels, 5); // classes 2..4 unseen
    const float q[2] = {0.5f, 0.5f};
    const int pred = clf.predict({q, 2});
    EXPECT_TRUE(pred == 0 || pred == 1);
}

TEST(NearestCentroid, CosineNotMagnitude)
{
    // Centroids along axes; a scaled query keeps its direction.
    std::vector<float> features{1, 0, 0, 1};
    std::vector<int> labels{0, 1};
    NearestCentroid clf;
    clf.fit(features, 2, labels, 2);
    const float big[2] = {100.0f, 1.0f};
    EXPECT_EQ(clf.predict({big, 2}), 0);
    const float small[2] = {0.01f, 0.0001f};
    EXPECT_EQ(clf.predict({small, 2}), 0);
}

TEST(Accuracy, OverallAccuracy)
{
    EXPECT_DOUBLE_EQ(overallAccuracy({1, 2, 3}, {1, 2, 3}), 1.0);
    EXPECT_DOUBLE_EQ(overallAccuracy({1, 0, 3}, {1, 2, 3}), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(overallAccuracy({}, {}), 0.0);
}

TEST(Accuracy, MeanIoUPerfect)
{
    EXPECT_DOUBLE_EQ(meanIoU({0, 1, 1, 2}, {0, 1, 1, 2}, 3), 1.0);
}

TEST(Accuracy, MeanIoUKnownValue)
{
    // Class 0: pred {0}, label {0, 1st element}, one correct out of
    // union... construct: labels = [0,0,1,1], preds = [0,1,1,1].
    // class0: inter 1, union 2 -> 0.5; class1: inter 2, union 3 ->
    // 0.667; mIoU = 0.5833...
    const double miou = meanIoU({0, 1, 1, 1}, {0, 0, 1, 1}, 2);
    EXPECT_NEAR(miou, (0.5 + 2.0 / 3.0) / 2.0, 1e-12);
}

TEST(Accuracy, MeanIoUIgnoresAbsentClasses)
{
    // Class 2 never appears in labels; it must not dilute the mean.
    const double miou = meanIoU({0, 1}, {0, 1}, 3);
    EXPECT_DOUBLE_EQ(miou, 1.0);
}

} // namespace
} // namespace fc::nn
