/**
 * @file
 * Unit tests for farthest point sampling (global and block-wise).
 */

#include <algorithm>
#include <gtest/gtest.h>
#include <unordered_set>

#include "common/rng.h"
#include "dataset/s3dis.h"
#include "ops/fps.h"
#include "ops/quality.h"
#include "partition/fractal.h"

namespace fc::ops {
namespace {

data::PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    Pcg32 rng(seed);
    data::PointCloud cloud;
    for (std::size_t i = 0; i < n; ++i)
        cloud.addPoint({rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)});
    return cloud;
}

TEST(Fps, SamplesAreDistinct)
{
    const data::PointCloud cloud = randomCloud(500, 1);
    const SampleResult r = farthestPointSample(cloud, 100);
    ASSERT_EQ(r.indices.size(), 100u);
    std::unordered_set<PointIdx> set(r.indices.begin(),
                                     r.indices.end());
    EXPECT_EQ(set.size(), 100u);
}

TEST(Fps, StartsAtRequestedIndex)
{
    const data::PointCloud cloud = randomCloud(100, 2);
    FpsOptions opt;
    opt.start_index = 17;
    const SampleResult r = farthestPointSample(cloud, 10, opt);
    EXPECT_EQ(r.indices[0], 17u);
}

TEST(Fps, SecondSampleIsFarthestFromFirst)
{
    const data::PointCloud cloud = randomCloud(200, 3);
    const SampleResult r = farthestPointSample(cloud, 2);
    const Vec3 &p0 = cloud[r.indices[0]];
    float best = -1.0f;
    PointIdx best_idx = 0;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        const float d = distance2(p0, cloud[i]);
        if (d > best) {
            best = d;
            best_idx = static_cast<PointIdx>(i);
        }
    }
    EXPECT_EQ(r.indices[1], best_idx);
}

TEST(Fps, GreedyMaximinProperty)
{
    // Each new sample is at least as far from the sampled set as any
    // later-chosen point was at its selection time; equivalently, the
    // selection distances are non-increasing.
    const data::PointCloud cloud = randomCloud(300, 4);
    const SampleResult r = farthestPointSample(cloud, 50);
    std::vector<float> sel_dist;
    for (std::size_t s = 1; s < r.indices.size(); ++s) {
        float d = 1e30f;
        for (std::size_t t = 0; t < s; ++t)
            d = std::min(d, distance2(cloud[r.indices[s]],
                                      cloud[r.indices[t]]));
        sel_dist.push_back(d);
    }
    for (std::size_t i = 1; i < sel_dist.size(); ++i)
        EXPECT_LE(sel_dist[i], sel_dist[i - 1] + 1e-5f);
}

TEST(Fps, CoverageImprovesWithMoreSamples)
{
    const data::PointCloud cloud = randomCloud(1000, 5);
    const SampleResult a = farthestPointSample(cloud, 10);
    const SampleResult b = farthestPointSample(cloud, 100);
    EXPECT_LT(coverageRadius(cloud, b.indices),
              coverageRadius(cloud, a.indices));
}

TEST(Fps, ClampsToCloudSize)
{
    const data::PointCloud cloud = randomCloud(10, 6);
    const SampleResult r = farthestPointSample(cloud, 50);
    EXPECT_EQ(r.indices.size(), 10u);
}

TEST(Fps, WindowCheckSkipsSampledPoints)
{
    const data::PointCloud cloud = randomCloud(400, 7);
    FpsOptions with;
    with.window_check = true;
    FpsOptions without;
    without.window_check = false;
    const SampleResult a = farthestPointSample(cloud, 100, with);
    const SampleResult b = farthestPointSample(cloud, 100, without);
    // Identical result...
    EXPECT_EQ(a.indices, b.indices);
    // ...but the window check removes re-visits of sampled points.
    EXPECT_GT(a.stats.skipped, 0u);
    EXPECT_LT(a.stats.points_visited, b.stats.points_visited);
    EXPECT_EQ(a.stats.points_visited + a.stats.skipped,
              b.stats.points_visited);
}

TEST(BlockFps, FixedRatePerLeaf)
{
    const data::PointCloud scene = data::makeS3disScene(4096, 8);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 256;
    const part::PartitionResult part = p.partition(scene, config);

    const BlockSampleResult r =
        blockFarthestPointSample(scene, part.tree, 0.25);
    ASSERT_EQ(r.leaf_offsets.size(), part.tree.leaves().size() + 1);
    for (std::size_t li = 0; li < part.tree.leaves().size(); ++li) {
        const auto &leaf = part.tree.node(part.tree.leaves()[li]);
        const std::uint32_t got =
            r.leaf_offsets[li + 1] - r.leaf_offsets[li];
        if (leaf.size() == 0) {
            EXPECT_EQ(got, 0u);
        } else {
            const std::uint32_t want = std::clamp<std::uint32_t>(
                static_cast<std::uint32_t>(
                    std::llround(0.25 * leaf.size())),
                1u, leaf.size());
            EXPECT_EQ(got, want) << "leaf " << li;
        }
    }
}

TEST(BlockFps, PositionsMatchIndices)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 9);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 128;
    const part::PartitionResult part = p.partition(scene, config);
    const BlockSampleResult r =
        blockFarthestPointSample(scene, part.tree, 0.1);
    ASSERT_EQ(r.positions.size(), r.indices.size());
    for (std::size_t i = 0; i < r.indices.size(); ++i)
        EXPECT_EQ(part.tree.order()[r.positions[i]], r.indices[i]);
}

TEST(BlockFps, SamplesStayInTheirLeaf)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 10);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 128;
    const part::PartitionResult part = p.partition(scene, config);
    const BlockSampleResult r =
        blockFarthestPointSample(scene, part.tree, 0.25);
    for (std::size_t li = 0; li < part.tree.leaves().size(); ++li) {
        const auto &leaf = part.tree.node(part.tree.leaves()[li]);
        for (std::uint32_t s = r.leaf_offsets[li];
             s < r.leaf_offsets[li + 1]; ++s) {
            EXPECT_GE(r.positions[s], leaf.begin);
            EXPECT_LT(r.positions[s], leaf.end);
        }
    }
}

TEST(BlockFps, CoverageCloseToGlobalFps)
{
    // The accuracy argument of the paper: block-wise FPS tracks
    // global FPS coverage because Fractal blocks align with geometry.
    const data::PointCloud scene = data::makeS3disScene(4096, 11);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 256;
    const part::PartitionResult part = p.partition(scene, config);

    const BlockSampleResult blockwise =
        blockFarthestPointSample(scene, part.tree, 0.25);
    const SampleResult global = farthestPointSample(
        scene, blockwise.indices.size());

    // Mean coverage drives feature quality; the max (coverage radius)
    // is dominated by the outliers global FPS picks first, so it is
    // only loosely bounded.
    const float mean_block = meanCoverage(scene, blockwise.indices);
    const float mean_global = meanCoverage(scene, global.indices);
    EXPECT_LT(mean_block, mean_global * 1.5f)
        << "block-wise FPS coverage degraded too much";
    EXPECT_LT(coverageRadius(scene, blockwise.indices),
              coverageRadius(scene, global.indices) * 6.0f);
}

TEST(BlockFps, MuchLessWorkThanGlobal)
{
    const data::PointCloud scene = data::makeS3disScene(4096, 12);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 64;
    const part::PartitionResult part = p.partition(scene, config);
    const BlockSampleResult blockwise =
        blockFarthestPointSample(scene, part.tree, 0.25);
    const SampleResult global =
        farthestPointSample(scene, blockwise.indices.size());
    EXPECT_LT(blockwise.stats.distance_computations * 10,
              global.stats.distance_computations);
}

TEST(Fps, EmptyInputsAreSafe)
{
    data::PointCloud empty;
    const SampleResult r = farthestPointSample(empty, 10);
    EXPECT_TRUE(r.indices.empty());
    const data::PointCloud cloud = randomCloud(10, 13);
    const SampleResult zero = farthestPointSample(cloud, 0);
    EXPECT_TRUE(zero.indices.empty());
}

TEST(BlockFps, FixedCountModeEqualizesQuotas)
{
    // PNNPU-style fixed count per block: every non-empty leaf yields
    // the same quota (clamped by its size) regardless of density.
    const data::PointCloud scene = data::makeS3disScene(4096, 14);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 256;
    const part::PartitionResult part = p.partition(scene, config);

    FpsOptions opt;
    opt.fixed_count_per_block = true;
    const BlockSampleResult r =
        blockFarthestPointSample(scene, part.tree, 0.25, opt);

    std::size_t nonempty = 0;
    for (const part::NodeIdx leaf : part.tree.leaves())
        nonempty += part.tree.node(leaf).size() > 0;
    const std::uint32_t expect = static_cast<std::uint32_t>(
        std::llround(0.25 * 4096.0 / static_cast<double>(nonempty)));

    for (std::size_t li = 0; li < part.tree.leaves().size(); ++li) {
        const auto &leaf = part.tree.node(part.tree.leaves()[li]);
        const std::uint32_t got =
            r.leaf_offsets[li + 1] - r.leaf_offsets[li];
        if (leaf.size() == 0) {
            EXPECT_EQ(got, 0u);
        } else {
            EXPECT_EQ(got, std::min(leaf.size(),
                                    std::max(1u, expect)))
                << "leaf " << li << " size " << leaf.size();
        }
    }
}

TEST(BlockFps, FixedCountDistortsDensityOnImbalancedBlocks)
{
    // On a space-uniform partition of a clustered scene, fixed-count
    // sampling under-samples dense blocks relative to fixed-rate —
    // the density distortion behind PNNPU's accuracy loss.
    const data::PointCloud scene = data::makeS3disScene(8192, 15);
    const auto uniform = part::makePartitioner(part::Method::Uniform);
    part::PartitionConfig config;
    config.threshold = 256;
    const part::PartitionResult part =
        uniform->partition(scene, config);

    FpsOptions fixed;
    fixed.fixed_count_per_block = true;
    const BlockSampleResult count_based =
        blockFarthestPointSample(scene, part.tree, 0.25, fixed);
    const BlockSampleResult rate_based =
        blockFarthestPointSample(scene, part.tree, 0.25);

    // Find the densest leaf and compare its sample share.
    std::size_t densest = 0;
    for (std::size_t li = 0; li < part.tree.leaves().size(); ++li) {
        if (part.tree.node(part.tree.leaves()[li]).size() >
            part.tree.node(part.tree.leaves()[densest]).size())
            densest = li;
    }
    const std::uint32_t fixed_samples =
        count_based.leaf_offsets[densest + 1] -
        count_based.leaf_offsets[densest];
    const std::uint32_t rate_samples =
        rate_based.leaf_offsets[densest + 1] -
        rate_based.leaf_offsets[densest];
    EXPECT_LT(2 * fixed_samples, rate_samples)
        << "fixed-count should starve the densest block";
}

TEST(BlockFps, WorksOnEveryPartitionDepthLimit)
{
    // max_depth safety valve: partitioning stops early but sampling
    // still covers every point range.
    const data::PointCloud scene = data::makeS3disScene(2048, 16);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 2;
    config.max_depth = 4; // far too shallow for th=2
    const part::PartitionResult part = p.partition(scene, config);
    part.tree.validate();
    EXPECT_LE(part.tree.maxDepth(), 4u);
    const BlockSampleResult r =
        blockFarthestPointSample(scene, part.tree, 0.1);
    EXPECT_GT(r.indices.size(), 0u);
    EXPECT_EQ(r.leaf_offsets.size(), part.tree.leaves().size() + 1);
}

} // namespace
} // namespace fc::ops
