/**
 * @file
 * Delayed-aggregation (nn::Aggregation::Delayed) equivalence and
 * invariant matrix:
 *
 *  - Exactness pin: when every neighborhood collapses to its center
 *    (tiny radius), Eager and Delayed are bit-identical — the two
 *    orders compute literally the same rows.
 *  - Tolerance: the Eager/Delayed gap at the pooling step is bounded
 *    by the MLP's response to ||r_ij|| <= radius, so shrinking the
 *    radius shrinks the gap to zero.
 *  - Within Delayed, every runtime invariant holds: bit-identical
 *    across 1/2/8 threads, under forced-scalar dispatch, with
 *    root_partition reuse, Fp16 == Mixed bitwise, and through the
 *    serving path.
 *  - Row accounting: sa_mlp_rows counts unique points (Delayed) vs
 *    gathered rows (Eager), and Delayed is strictly smaller.
 *  - Ops level: blockGatherFeatureRows == gatherFeatureRows values;
 *    maxPoolRelativeCoords on a handcrafted neighborhood.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "core/simd.h"
#include "core/workspace.h"
#include "dataset/s3dis.h"
#include "nn/models.h"
#include "nn/network.h"
#include "ops/gather.h"
#include "ops/neighbor.h"
#include "partition/fractal.h"
#include "serve/async_pipeline.h"

namespace fc {
namespace {

namespace simd = core::simd;

/** Restores the process-global dispatch level on scope exit. */
class LevelGuard
{
  public:
    LevelGuard() : saved_(simd::activeLevel()) {}
    ~LevelGuard() { simd::setActiveLevel(saved_); }
    LevelGuard(const LevelGuard &) = delete;
    LevelGuard &operator=(const LevelGuard &) = delete;

  private:
    simd::Level saved_;
};

/** Compact two-stage segmentation model (SA + FP + head). */
nn::ModelConfig
tinySegModel(float radius0 = 0.3f, float radius1 = 0.6f)
{
    nn::ModelConfig m;
    m.name = "tiny-seg";
    m.long_name = "tiny segmentation (delayed-aggregation tests)";
    m.task = nn::Task::SemanticSegmentation;
    m.sa.resize(2);
    m.sa[0] = {0.25, radius0, 8, {16, 16}};
    m.sa[1] = {0.25, radius1, 8, {32, 32}};
    m.fp.resize(2);
    m.fp[0].mlp = {32};
    m.fp[1].mlp = {16};
    m.head = {13};
    m.num_classes = 13;
    return m;
}

/** Classification variant (global pool + head, no FP). */
nn::ModelConfig
tinyClsModel(float radius0 = 0.3f, float radius1 = 0.6f)
{
    nn::ModelConfig m = tinySegModel(radius0, radius1);
    m.name = "tiny-cls";
    m.long_name = "tiny classification (delayed-aggregation tests)";
    m.task = nn::Task::Classification;
    m.fp.clear();
    m.head = {16, 10};
    m.num_classes = 10;
    return m;
}

/** A well-separated grid cloud: nearest-neighbor distance is the
 *  grid step, so a tiny ball-query radius makes every neighborhood
 *  exactly {center}. */
data::PointCloud
gridCloud(std::size_t side)
{
    std::vector<Vec3> pts;
    pts.reserve(side * side * side);
    for (std::size_t x = 0; x < side; ++x)
        for (std::size_t y = 0; y < side; ++y)
            for (std::size_t z = 0; z < side; ++z)
                pts.emplace_back(static_cast<float>(x),
                                 static_cast<float>(y),
                                 static_cast<float>(z));
    return data::PointCloud(std::move(pts));
}

void
expectBitIdentical(const nn::InferenceResult &a,
                   const nn::InferenceResult &b)
{
    EXPECT_EQ(a.embedding.data(), b.embedding.data());
    EXPECT_EQ(a.point_features.data(), b.point_features.data());
    EXPECT_EQ(a.total_macs, b.total_macs);
    EXPECT_EQ(a.sa_mlp_rows, b.sa_mlp_rows);
}

float
maxAbsDiff(const nn::Tensor &a, const nn::Tensor &b)
{
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.cols(), b.cols());
    float worst = 0.0f;
    for (std::size_t i = 0; i < a.data().size(); ++i)
        worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
    return worst;
}

// ---------------------------------------------------------------------
// Eager vs Delayed equivalence
// ---------------------------------------------------------------------

TEST(DelayedAggregation, ExactWhenNeighborhoodsCollapse)
{
    // Radius far below the grid step: every ball query returns only
    // the center itself, so r_ij = 0 and the pooled rel-coord summary
    // is 0 — the eager rows and the delayed unique rows are literally
    // the same values and the two orders must agree bit for bit.
    const data::PointCloud cloud = gridCloud(10); // 1000 points, step 1
    const nn::Network seg(tinySegModel(1e-4f, 1e-4f), 42);
    const nn::Network cls(tinyClsModel(1e-4f, 1e-4f), 42);

    for (const nn::Network *net : {&seg, &cls}) {
        SCOPED_TRACE(net->config().name);
        nn::BackendOptions backend;
        backend.method = part::Method::Fractal;
        backend.threshold = 64;

        backend.aggregation = nn::Aggregation::Eager;
        const nn::InferenceResult eager = net->run(cloud, backend);
        backend.aggregation = nn::Aggregation::Delayed;
        const nn::InferenceResult delayed = net->run(cloud, backend);

        EXPECT_EQ(eager.embedding.data(), delayed.embedding.data());
        EXPECT_EQ(eager.point_features.data(),
                  delayed.point_features.data());
        // Work counters differ by design: fewer MLP rows, fewer MACs.
        EXPECT_LT(delayed.sa_mlp_rows, eager.sa_mlp_rows);
        EXPECT_LT(delayed.total_macs, eager.total_macs);
    }
}

TEST(DelayedAggregation, GapVanishesAsRadiusShrinks)
{
    // The documented tolerance at the pooling step is bounded by the
    // MLP's response to ||r_ij|| <= radius: shrinking the radius must
    // shrink the Eager/Delayed gap, down to exactly zero once every
    // neighborhood is {center}.
    const data::PointCloud scene = data::makeS3disScene(1024, 7);

    float prev_gap = -1.0f;
    for (const float radius : {0.3f, 1e-6f}) {
        const nn::Network net(tinySegModel(radius, 2 * radius), 42);
        nn::BackendOptions backend;
        backend.method = part::Method::Fractal;
        backend.threshold = 64;

        backend.aggregation = nn::Aggregation::Eager;
        const nn::InferenceResult eager = net.run(scene, backend);
        backend.aggregation = nn::Aggregation::Delayed;
        const nn::InferenceResult delayed = net.run(scene, backend);

        const float gap =
            maxAbsDiff(eager.point_features, delayed.point_features);
        EXPECT_TRUE(std::isfinite(gap));
        if (prev_gap >= 0.0f) {
            EXPECT_LE(gap, prev_gap);
        }
        prev_gap = gap;
    }
    EXPECT_EQ(prev_gap, 0.0f); // collapsed neighborhoods: exact
}

// ---------------------------------------------------------------------
// Invariants within Delayed
// ---------------------------------------------------------------------

TEST(DelayedAggregation, BitIdenticalAcrossThreadCounts)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 17);
    const nn::Network net(tinySegModel(), 42);
    nn::BackendOptions backend;
    backend.method = part::Method::Fractal;
    backend.threshold = 64;
    backend.aggregation = nn::Aggregation::Delayed;

    backend.pool = nullptr;
    const nn::InferenceResult sequential = net.run(scene, backend);
    EXPECT_GT(sequential.sa_mlp_rows, 0u);

    for (const unsigned threads : {1u, 2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        core::ThreadPool pool(threads);
        backend.pool = &pool;
        const nn::InferenceResult parallel = net.run(scene, backend);
        expectBitIdentical(sequential, parallel);
    }
}

TEST(DelayedAggregation, GlobalOpsPathMatchesItselfAcrossThreads)
{
    // method=None exercises the non-block gatherFeatureRows arm.
    const data::PointCloud scene = data::makeS3disScene(1024, 19);
    const nn::Network net(tinyClsModel(), 42);
    nn::BackendOptions backend;
    backend.method = part::Method::None;
    backend.aggregation = nn::Aggregation::Delayed;

    backend.pool = nullptr;
    const nn::InferenceResult sequential = net.run(scene, backend);
    for (const unsigned threads : {2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        core::ThreadPool pool(threads);
        backend.pool = &pool;
        expectBitIdentical(sequential, net.run(scene, backend));
    }
}

TEST(DelayedAggregation, ForcedScalarIsDeterministic)
{
    // Dispatch arms agree within one fp16 ulp, not bitwise, so the
    // scalar arm is checked for internal determinism: warm/cold and
    // threaded runs under forced-scalar must match bit for bit.
    LevelGuard guard;
    ASSERT_TRUE(simd::setActiveLevel(simd::Level::Scalar));

    const data::PointCloud scene = data::makeS3disScene(1024, 23);
    const nn::Network net(tinySegModel(), 42);
    nn::BackendOptions backend;
    backend.method = part::Method::Fractal;
    backend.threshold = 64;
    backend.aggregation = nn::Aggregation::Delayed;

    const nn::InferenceResult cold = net.run(scene, backend);

    core::Workspace ws;
    nn::InferenceResult warm;
    net.run(scene, backend, ws, warm); // grows slots
    ws.reset();
    net.run(scene, backend, ws, warm); // reuses them
    expectBitIdentical(cold, warm);

    core::ThreadPool pool(4);
    backend.pool = &pool;
    expectBitIdentical(cold, net.run(scene, backend));
}

TEST(DelayedAggregation, Fp16MatchesMixedBitwise)
{
    // Every delayed MLP input (pooled rel-coords included) is
    // fp16-valued before the forward, so the Fp16 activation path
    // must reproduce Mixed exactly — same contract as eager mode.
    const data::PointCloud scene = data::makeS3disScene(1024, 29);
    const nn::Network net(tinySegModel(), 42);
    nn::BackendOptions backend;
    backend.method = part::Method::Fractal;
    backend.threshold = 64;
    backend.aggregation = nn::Aggregation::Delayed;

    backend.precision = nn::Precision::Mixed;
    const nn::InferenceResult mixed = net.run(scene, backend);
    backend.precision = nn::Precision::Fp16;
    const nn::InferenceResult fp16 = net.run(scene, backend);
    expectBitIdentical(mixed, fp16);
}

TEST(DelayedAggregation, RootPartitionReuseIsInvisible)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 31);
    const nn::Network net(tinySegModel(), 42);

    part::PartitionConfig pconfig;
    pconfig.threshold = 64;
    const part::PartitionResult part =
        part::FractalPartitioner().partition(scene, pconfig);

    nn::BackendOptions backend;
    backend.method = part::Method::Fractal;
    backend.threshold = 64;
    backend.aggregation = nn::Aggregation::Delayed;

    const nn::InferenceResult fresh = net.run(scene, backend);
    backend.root_partition = &part;
    expectBitIdentical(fresh, net.run(scene, backend));
}

TEST(DelayedAggregation, ServePathMatchesDirectRun)
{
    // Per-request plumbing: BatchRequest::aggregation reaches the
    // network's backend, and the sharded serving path reproduces the
    // direct run bit for bit.
    const data::PointCloud scene = data::makeS3disScene(1024, 37);
    const nn::Network net(tinySegModel(), 42);

    nn::BackendOptions backend;
    backend.method = part::Method::Fractal;
    backend.threshold = 64;
    backend.aggregation = nn::Aggregation::Delayed;
    const nn::InferenceResult direct = net.run(scene, backend);

    serve::ServeOptions options;
    options.pipeline.method = part::Method::Fractal;
    options.pipeline.threshold = 64;
    options.pipeline.num_threads = 2;
    serve::AsyncPipeline server(options);

    BatchRequest request;
    request.network = &net;
    request.aggregation = nn::Aggregation::Delayed;
    const serve::RequestOutcome outcome =
        server.wait(server.submit(scene, request));
    ASSERT_EQ(outcome.state, serve::RequestState::Done)
        << outcome.error;
    ASSERT_TRUE(outcome.result.inference.has_value());
    expectBitIdentical(direct, *outcome.result.inference);

    // An eager request through the same server differs (same model,
    // different execution order ⇒ different row count).
    BatchRequest eager_request;
    eager_request.network = &net;
    const serve::RequestOutcome eager_outcome =
        server.wait(server.submit(scene, eager_request));
    ASSERT_EQ(eager_outcome.state, serve::RequestState::Done);
    ASSERT_TRUE(eager_outcome.result.inference.has_value());
    EXPECT_GT(eager_outcome.result.inference->sa_mlp_rows,
              direct.sa_mlp_rows);
}

TEST(DelayedAggregation, RowAccountingCountsUniquePoints)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 41);
    const nn::ModelConfig config = tinySegModel();
    const nn::Network net(config, 42);
    // Global sampling: level sizes are exactly round(rate * n).
    // (Block-wise FPS rounds per block, so the totals drift by a few
    // points — the strict inequality below is checked either way.)
    nn::BackendOptions backend;
    backend.method = part::Method::None;

    backend.aggregation = nn::Aggregation::Delayed;
    const nn::InferenceResult delayed = net.run(scene, backend);

    // Delayed: one MLP row per unique input point of each SA stage.
    std::uint64_t expected = 0;
    std::size_t level_n = scene.size();
    for (const nn::SaStageConfig &stage : config.sa) {
        expected += level_n;
        level_n = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::llround(
                   stage.sample_rate * static_cast<double>(level_n))));
    }
    EXPECT_EQ(delayed.sa_mlp_rows, expected);

    // Eager: one row per gathered (center, neighbor) pair.
    backend.aggregation = nn::Aggregation::Eager;
    const nn::InferenceResult eager = net.run(scene, backend);
    std::uint64_t eager_expected = 0;
    level_n = scene.size();
    for (const nn::SaStageConfig &stage : config.sa) {
        const std::size_t centers = std::max<std::size_t>(
            1, static_cast<std::size_t>(std::llround(
                   stage.sample_rate * static_cast<double>(level_n))));
        eager_expected += centers * stage.k;
        level_n = centers;
    }
    EXPECT_EQ(eager.sa_mlp_rows, eager_expected);
    EXPECT_LT(delayed.sa_mlp_rows, eager.sa_mlp_rows);

    // The inequality also holds on the block-sampled path.
    backend.method = part::Method::Fractal;
    backend.threshold = 64;
    backend.aggregation = nn::Aggregation::Delayed;
    const nn::InferenceResult block_delayed = net.run(scene, backend);
    backend.aggregation = nn::Aggregation::Eager;
    const nn::InferenceResult block_eager = net.run(scene, backend);
    EXPECT_LT(block_delayed.sa_mlp_rows, block_eager.sa_mlp_rows);
}

// ---------------------------------------------------------------------
// Ops level
// ---------------------------------------------------------------------

TEST(FeatureGather, BlockMatchesGlobalValues)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 43);
    PipelineOptions options;
    options.threshold = 64;
    options.num_threads = 2;
    const FractalCloudPipeline pipeline(scene, options);

    const ops::BlockSampleResult sampled = pipeline.sample(0.25);
    const ops::NeighborResult neighbors =
        pipeline.group(sampled, 0.3f, 16);

    // A synthetic per-point feature tensor (any row-major buffer).
    const std::size_t channels = 8;
    std::vector<float> features(scene.size() * channels);
    for (std::size_t i = 0; i < features.size(); ++i)
        features[i] = static_cast<float>((i * 2654435761u) % 997) -
                      498.0f;

    const ops::GatherResult global =
        ops::gatherFeatureRows(features, channels, neighbors);

    core::Workspace ws;
    ops::GatherResult block;
    ops::blockGatherFeatureRows(features, channels, pipeline.tree(),
                                sampled.leaf_offsets, neighbors,
                                pipeline.pool(), ws, block);
    EXPECT_EQ(global.values, block.values);
    EXPECT_EQ(global.num_centers, block.num_centers);
    EXPECT_EQ(global.k, block.k);
    EXPECT_EQ(global.channels, block.channels);
    // Block accounting streams leaf search spaces instead of random
    // access; both charge the same per-pair visit count.
    EXPECT_EQ(global.stats.points_visited, block.stats.points_visited);
}

TEST(FeatureGather, MaxPoolRelativeCoordsHandcrafted)
{
    // Center 0 at origin with real neighbors at (+1,0,0) and
    // (0,-2,+3); center 1 with itself only. Padding replicates the
    // first neighbor and must not change the max.
    std::vector<Vec3> pts = {{0, 0, 0}, {1, 0, 0}, {0, -2, 3},
                             {5, 5, 5}};
    const data::PointCloud cloud(std::move(pts));
    const std::vector<PointIdx> centers = {0, 3};

    ops::NeighborResult nbr;
    nbr.num_centers = 2;
    nbr.k = 4;
    nbr.indices = {0, 1, 2, 0,  // center 0: self, two real, pad
                   3, 3, 3, 3}; // center 1: self only + pads
    nbr.counts = {3, 1};

    core::Workspace ws;
    std::vector<float> pooled;
    ops::maxPoolRelativeCoords(cloud, centers, nbr, nullptr, ws,
                               pooled);
    ASSERT_EQ(pooled.size(), 6u);
    // Channel-wise max over {(0,0,0), (1,0,0), (0,-2,3)}.
    EXPECT_EQ(pooled[0], 1.0f);
    EXPECT_EQ(pooled[1], 0.0f);
    EXPECT_EQ(pooled[2], 3.0f);
    // Self-only neighborhood: all-zero summary.
    EXPECT_EQ(pooled[3], 0.0f);
    EXPECT_EQ(pooled[4], 0.0f);
    EXPECT_EQ(pooled[5], 0.0f);
}

} // namespace
} // namespace fc
