/**
 * @file
 * Tests for functional PNN inference with global and block-wise
 * backends.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "dataset/modelnet.h"
#include "dataset/s3dis.h"
#include "nn/network.h"

namespace fc::nn {
namespace {

double
cosine(const Tensor &a, const Tensor &b)
{
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
        dot += static_cast<double>(a.at(0, c)) * b.at(0, c);
        na += static_cast<double>(a.at(0, c)) * a.at(0, c);
        nb += static_cast<double>(b.at(0, c)) * b.at(0, c);
    }
    return dot / (std::sqrt(na) * std::sqrt(nb) + 1e-12);
}

TEST(Network, ClassificationShapes)
{
    const Network net(pointNet2Classification(), 42);
    const data::PointCloud obj = data::makeModelNetObject(5, 256, 1);
    const InferenceResult r = net.run(obj);
    EXPECT_EQ(r.embedding.rows(), 1u);
    EXPECT_EQ(r.embedding.cols(), net.outputDim());
    EXPECT_GT(r.total_macs, 0u);
    EXPECT_GT(r.op_stats.distance_computations, 0u);
}

TEST(Network, DeterministicInference)
{
    const Network net(pointNeXtClassification(), 7);
    const data::PointCloud obj = data::makeModelNetObject(3, 256, 2);
    const InferenceResult a = net.run(obj);
    const InferenceResult b = net.run(obj);
    for (std::size_t c = 0; c < a.embedding.cols(); ++c)
        EXPECT_EQ(a.embedding.at(0, c), b.embedding.at(0, c));
}

TEST(Network, SegmentationShapes)
{
    const Network net(pointNet2SemSeg(), 42);
    const data::PointCloud scene = data::makeS3disScene(512, 3);
    const InferenceResult r = net.run(scene);
    EXPECT_EQ(r.point_features.rows(), scene.size());
    EXPECT_EQ(r.point_features.cols(), net.outputDim());
}

TEST(Network, BlockBackendCloseToGlobal)
{
    // The crux of the accuracy story: block-wise ops perturb the
    // embedding only slightly under Fractal partitioning.
    const Network net(pointNet2Classification(), 42);
    const data::PointCloud obj = data::makeModelNetObject(11, 512, 4);

    const InferenceResult global = net.run(obj);

    BackendOptions fractal;
    fractal.method = part::Method::Fractal;
    fractal.threshold = 64;
    const InferenceResult blocked = net.run(obj, fractal);

    EXPECT_GT(cosine(global.embedding, blocked.embedding), 0.90)
        << "fractal block ops changed the embedding too much";
}

TEST(Network, UniformBackendDegradesMoreThanFractal)
{
    // Fig. 3/Fig. 14 ordering at the operator level: space-uniform
    // partitioning hurts more than Fractal on clustered scenes.
    const Network net(pointNet2Classification(), 42);
    double cos_fractal_sum = 0.0, cos_uniform_sum = 0.0;
    for (int i = 0; i < 5; ++i) {
        const data::PointCloud obj =
            data::makeModelNetObject(5 + i * 7, 512,
                                     static_cast<std::uint64_t>(i));
        const InferenceResult global = net.run(obj);
        BackendOptions fractal;
        fractal.method = part::Method::Fractal;
        fractal.threshold = 64;
        BackendOptions uniform = fractal;
        uniform.method = part::Method::Uniform;
        cos_fractal_sum +=
            cosine(global.embedding, net.run(obj, fractal).embedding);
        cos_uniform_sum +=
            cosine(global.embedding, net.run(obj, uniform).embedding);
    }
    EXPECT_GE(cos_fractal_sum, cos_uniform_sum - 0.05)
        << "fractal should track global at least as well as uniform";
}

TEST(Network, BlockOpsReduceWork)
{
    const Network net(pointNet2SemSeg(), 42);
    const data::PointCloud scene = data::makeS3disScene(2048, 5);
    const InferenceResult global = net.run(scene);
    BackendOptions blocked;
    blocked.method = part::Method::Fractal;
    blocked.threshold = 128;
    const InferenceResult block = net.run(scene, blocked);
    EXPECT_LT(block.op_stats.distance_computations,
              global.op_stats.distance_computations / 2);
}

TEST(Network, AblationTogglesAreIndependent)
{
    const Network net(pointNet2Classification(), 42);
    const data::PointCloud obj = data::makeModelNetObject(2, 256, 6);

    BackendOptions bws_only;
    bws_only.method = part::Method::Fractal;
    bws_only.threshold = 64;
    bws_only.block_sampling = true;
    bws_only.block_grouping = false;
    bws_only.block_interpolation = false;
    const InferenceResult r1 = net.run(obj, bws_only);
    EXPECT_EQ(r1.embedding.cols(), net.outputDim());

    BackendOptions bwg_only = bws_only;
    bwg_only.block_sampling = false;
    bwg_only.block_grouping = true;
    const InferenceResult r2 = net.run(obj, bwg_only);
    EXPECT_EQ(r2.embedding.cols(), net.outputDim());
}

TEST(MakeBlockSample, GroupsByLeaf)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 7);
    const auto partitioner = part::makePartitioner(
        part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = 128;
    const part::PartitionResult part =
        partitioner->partition(scene, config);

    const std::vector<PointIdx> picks{0, 100, 200, 300, 400, 500};
    const ops::BlockSampleResult bs =
        makeBlockSample(part.tree, picks);
    ASSERT_EQ(bs.indices.size(), picks.size());
    ASSERT_EQ(bs.leaf_offsets.size(), part.tree.leaves().size() + 1);
    // Every sample lies inside its leaf's range.
    for (std::size_t li = 0; li < part.tree.leaves().size(); ++li) {
        const auto &leaf = part.tree.node(part.tree.leaves()[li]);
        for (std::uint32_t s = bs.leaf_offsets[li];
             s < bs.leaf_offsets[li + 1]; ++s) {
            EXPECT_GE(bs.positions[s], leaf.begin);
            EXPECT_LT(bs.positions[s], leaf.end);
        }
    }
}

} // namespace
} // namespace fc::nn
