/**
 * @file
 * Tests for block-wise k-NN graph construction (the DGCNN extension
 * of paper §VI-D "Potential Adaptations").
 */

#include <gtest/gtest.h>
#include <unordered_set>

#include "common/rng.h"
#include "dataset/s3dis.h"
#include "ops/knn_graph.h"
#include "partition/fractal.h"

namespace fc::ops {
namespace {

data::PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    Pcg32 rng(seed);
    data::PointCloud cloud;
    for (std::size_t i = 0; i < n; ++i)
        cloud.addPoint({rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)});
    return cloud;
}

TEST(KnnGraph, ExactGraphMatchesBruteForce)
{
    const data::PointCloud cloud = randomCloud(100, 1);
    const KnnGraph graph = buildKnnGraph(cloud, 4);
    ASSERT_EQ(graph.edges.size(), 400u);
    for (std::size_t v = 0; v < 100; ++v) {
        // Reference: sort all other points by distance.
        std::vector<std::pair<float, PointIdx>> all;
        for (PointIdx j = 0; j < 100; ++j) {
            if (j != v)
                all.push_back({distance2(cloud[v], cloud[j]), j});
        }
        std::sort(all.begin(), all.end());
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_FLOAT_EQ(
                distance2(cloud[v], cloud[graph.neighbor(v, j)]),
                all[j].first)
                << "vertex " << v << " edge " << j;
        }
    }
}

TEST(KnnGraph, NoSelfEdges)
{
    const data::PointCloud cloud = randomCloud(64, 2);
    const KnnGraph graph = buildKnnGraph(cloud, 8);
    for (std::size_t v = 0; v < graph.num_vertices; ++v)
        for (std::size_t j = 0; j < graph.k; ++j)
            EXPECT_NE(graph.neighbor(v, j), static_cast<PointIdx>(v));
}

TEST(KnnGraph, BlockGraphHighRecall)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 3);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 128;
    const part::PartitionResult part = p.partition(scene, config);

    const KnnGraph exact = buildKnnGraph(scene, 8);
    const KnnGraph blocked = buildBlockKnnGraph(scene, part.tree, 8);
    const double recall = graphEdgeRecall(exact, blocked);
    EXPECT_GT(recall, 0.85)
        << "block-wise graph lost too many true edges";
}

TEST(KnnGraph, BlockGraphMuchCheaper)
{
    const data::PointCloud scene = data::makeS3disScene(4096, 4);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 128;
    const part::PartitionResult part = p.partition(scene, config);

    const KnnGraph exact = buildKnnGraph(scene, 8);
    const KnnGraph blocked = buildBlockKnnGraph(scene, part.tree, 8);
    EXPECT_LT(blocked.stats.distance_computations * 8,
              exact.stats.distance_computations);
}

TEST(KnnGraph, BlockEdgesStayInSearchSpace)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 5);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 64;
    const part::PartitionResult part = p.partition(scene, config);
    const KnnGraph blocked = buildBlockKnnGraph(scene, part.tree, 4);

    std::vector<std::uint32_t> inverse(part.tree.order().size());
    for (std::uint32_t pos = 0; pos < inverse.size(); ++pos)
        inverse[part.tree.order()[pos]] = pos;

    for (const part::NodeIdx leaf : part.tree.leaves()) {
        const auto &space =
            part.tree.node(part.tree.searchSpaceNode(leaf));
        const auto &node = part.tree.node(leaf);
        for (std::uint32_t pos = node.begin; pos < node.end; ++pos) {
            const PointIdx v = part.tree.order()[pos];
            for (std::size_t j = 0; j < blocked.k; ++j) {
                const PointIdx e = blocked.neighbor(v, j);
                if (e == kInvalidPoint)
                    continue;
                EXPECT_GE(inverse[e], space.begin);
                EXPECT_LT(inverse[e], space.end);
            }
        }
    }
}

TEST(KnnGraph, RecallIdentity)
{
    const data::PointCloud cloud = randomCloud(128, 6);
    const KnnGraph graph = buildKnnGraph(cloud, 4);
    EXPECT_DOUBLE_EQ(graphEdgeRecall(graph, graph), 1.0);
}

} // namespace
} // namespace fc::ops
