/**
 * @file
 * Tests for the RunReport accounting used by every bench table.
 */

#include <gtest/gtest.h>

#include "accel/report.h"

namespace fc::accel {
namespace {

RunReport
makeReport()
{
    RunReport r;
    // std::string temporaries (move-assigned) rather than const char*
    // assignment: gcc 12's inliner flags the char_traits copy of a
    // short literal with a bogus -Wrestrict, which -Werror promotes.
    r.accelerator = std::string("test");
    r.model = std::string("m");
    r.num_points = 10;
    r.freq_ghz = 1.0;
    r.addCycles(Phase::Sample, 1'000'000);
    r.addCycles(Phase::Group, 2'000'000);
    r.addCycles(Phase::Gather, 500'000);
    r.addCycles(Phase::Interpolate, 500'000);
    r.addCycles(Phase::Mlp, 3'000'000);
    r.addCycles(Phase::Partition, 100'000);
    r.addCycles(Phase::Other, 400'000);
    r.compute_pj = 1e9;
    r.sram_pj = 2e9;
    r.dram_pj = 3e9;
    r.static_pj = 4e9;
    return r;
}

TEST(RunReport, TotalsAndConversions)
{
    const RunReport r = makeReport();
    EXPECT_EQ(r.totalCycles(), 7'500'000u);
    EXPECT_DOUBLE_EQ(r.totalLatencyMs(), 7.5);
    EXPECT_DOUBLE_EQ(r.totalEnergyMj(), 10.0);
}

TEST(RunReport, PhaseGroupsMatchFig15)
{
    const RunReport r = makeReport();
    EXPECT_EQ(r.pointOpCycles(), 4'000'000u);
    EXPECT_EQ(r.mlpCycles(), 3'000'000u);
    EXPECT_EQ(r.otherCycles(), 500'000u);
    EXPECT_EQ(r.pointOpCycles() + r.mlpCycles() + r.otherCycles(),
              r.totalCycles());
}

TEST(RunReport, PerPhaseLatency)
{
    const RunReport r = makeReport();
    EXPECT_DOUBLE_EQ(r.latencyMs(Phase::Sample), 1.0);
    EXPECT_DOUBLE_EQ(r.latencyMs(Phase::Mlp), 3.0);
    // Frequency scaling halves latency at 2 GHz.
    RunReport fast = r;
    fast.freq_ghz = 2.0;
    EXPECT_DOUBLE_EQ(fast.latencyMs(Phase::Mlp), 1.5);
}

TEST(RunReport, AccumulateMultiFrame)
{
    RunReport a = makeReport();
    const RunReport b = makeReport();
    a += b;
    EXPECT_EQ(a.totalCycles(), 15'000'000u);
    EXPECT_DOUBLE_EQ(a.totalEnergyMj(), 20.0);
    EXPECT_EQ(a.num_points, 20u);
}

TEST(RunReport, PhaseSramBytes)
{
    RunReport r;
    r.phase_sram_bytes[Phase::Group] = 100;
    EXPECT_EQ(r.sramBytes(Phase::Group), 100u);
    EXPECT_EQ(r.sramBytes(Phase::Mlp), 0u);
}

TEST(RunReport, PhaseNamesComplete)
{
    for (const Phase p :
         {Phase::Partition, Phase::Sample, Phase::Group, Phase::Gather,
          Phase::Interpolate, Phase::Mlp, Phase::Other}) {
        EXPECT_FALSE(phaseName(p).empty());
    }
}

TEST(RunReport, SummaryMentionsKeyNumbers)
{
    const RunReport r = makeReport();
    const std::string s = r.summary();
    EXPECT_NE(s.find("test"), std::string::npos);
    EXPECT_NE(s.find("7.5"), std::string::npos);
}

} // namespace
} // namespace fc::accel
