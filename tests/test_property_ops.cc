/**
 * @file
 * Property-based sweeps: operator invariants must hold across every
 * partitioning method, threshold, and dataset family (TEST_P grids).
 */

#include <gtest/gtest.h>
#include <unordered_set>

#include "dataset/modelnet.h"
#include "dataset/s3dis.h"
#include "ops/fps.h"
#include "ops/neighbor.h"
#include "ops/quality.h"
#include "partition/partitioner.h"

namespace fc::ops {
namespace {

struct Sweep
{
    part::Method method;
    std::uint32_t threshold;
    int dataset; // 0 = modelnet object, 1 = s3dis scene
};

std::string
sweepName(const ::testing::TestParamInfo<Sweep> &info)
{
    return part::methodName(info.param.method) + "_th" +
           std::to_string(info.param.threshold) +
           (info.param.dataset == 0 ? "_object" : "_scene");
}

data::PointCloud
makeCloud(int dataset)
{
    if (dataset == 0)
        return data::makeModelNetObject(9, 1024, 77);
    return data::makeS3disScene(2048, 77);
}

class OpsSweep : public ::testing::TestWithParam<Sweep>
{
  protected:
    void
    SetUp() override
    {
        cloud_ = makeCloud(GetParam().dataset);
        const auto p = part::makePartitioner(GetParam().method);
        part::PartitionConfig config;
        config.threshold = GetParam().threshold;
        part_ = p->partition(cloud_, config);
    }

    data::PointCloud cloud_;
    part::PartitionResult part_;
};

TEST_P(OpsSweep, TreeInvariant)
{
    part_.tree.validate();
}

TEST_P(OpsSweep, BlockFpsProducesDistinctValidSamples)
{
    const BlockSampleResult r =
        blockFarthestPointSample(cloud_, part_.tree, 0.25);
    std::unordered_set<PointIdx> set;
    for (const PointIdx idx : r.indices) {
        EXPECT_LT(idx, cloud_.size());
        EXPECT_TRUE(set.insert(idx).second) << "duplicate sample";
    }
    // Fixed-rate sampling yields ~25% of points (within slack for
    // rounding at small leaves).
    EXPECT_GT(r.indices.size(), cloud_.size() / 8);
    EXPECT_LT(r.indices.size(), cloud_.size() * 3 / 4);
}

TEST_P(OpsSweep, BlockSamplingCoverageBounded)
{
    const BlockSampleResult block =
        blockFarthestPointSample(cloud_, part_.tree, 0.25);
    const SampleResult global =
        farthestPointSample(cloud_, block.indices.size());
    const float cov_block = coverageRadius(cloud_, block.indices);
    const float cov_global = coverageRadius(cloud_, global.indices);
    // Any partitioning keeps coverage within a moderate factor of
    // global FPS because every leaf contributes samples; the factor
    // differs by method (checked tighter for fractal elsewhere).
    EXPECT_LT(cov_block, cov_global * 4.0f + 1e-3f);
}

TEST_P(OpsSweep, BlockBallQueryRespectsRadius)
{
    const BlockSampleResult sampled =
        blockFarthestPointSample(cloud_, part_.tree, 0.25);
    const float radius = GetParam().dataset == 0 ? 0.3f : 0.5f;
    const NeighborResult r =
        blockBallQuery(cloud_, part_.tree, sampled, radius, 8);
    for (std::size_t c = 0; c < r.num_centers; ++c) {
        for (std::uint32_t j = 0; j < r.counts[c]; ++j) {
            EXPECT_LE(distance(cloud_[sampled.indices[c]],
                               cloud_[r.neighbor(c, j)]),
                      radius + 1e-5f);
        }
    }
}

TEST_P(OpsSweep, BlockKnnSelfNearest)
{
    const BlockSampleResult sampled =
        blockFarthestPointSample(cloud_, part_.tree, 0.25);
    const NeighborResult r =
        blockKnnToSamples(cloud_, part_.tree, sampled, 3);
    for (const PointIdx s : sampled.indices)
        EXPECT_EQ(r.neighbor(s, 0), s);
}

INSTANTIATE_TEST_SUITE_P(
    MethodsByThresholdsByData, OpsSweep,
    ::testing::Values(
        Sweep{part::Method::Fractal, 64, 0},
        Sweep{part::Method::Fractal, 64, 1},
        Sweep{part::Method::Fractal, 256, 1},
        Sweep{part::Method::KdTree, 64, 0},
        Sweep{part::Method::KdTree, 256, 1},
        Sweep{part::Method::Uniform, 64, 0},
        Sweep{part::Method::Uniform, 256, 1},
        Sweep{part::Method::Octree, 64, 0},
        Sweep{part::Method::Octree, 256, 1}),
    sweepName);

} // namespace
} // namespace fc::ops
