/**
 * @file
 * Tests for the serving observability layer: core::metrics registry
 * units (histogram bucket boundaries, percentile extraction, striped
 * counter aggregation, the global sampling switch, zero allocations
 * after registration), concurrent mutation (the MetricsConcurrent
 * suite runs under TSan in CI), and the /stats surface — rendered
 * after a mixed-priority serve run and parsed back: per-class
 * submitted/completed/expired/cancelled counters must match observed
 * outcomes, spill counters must fire under work-conserving load, and
 * the runtime-configured priority weights must be surfaced.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <gtest/gtest.h>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/alloc_count.h"
#include "core/metrics.h"
#include "dataset/s3dis.h"
#include "serve/async_pipeline.h"
#include "serve/scheduler.h"
#include "serve/stats.h"

namespace fc {
namespace {

namespace metrics = core::metrics;
using metrics::Counter;
using metrics::Gauge;
using metrics::Histogram;
using metrics::Registry;
using serve::AsyncPipeline;
using serve::Priority;
using serve::RequestOutcome;
using serve::RequestState;
using serve::ServeOptions;
using serve::Ticket;

/** RAII guard: force sampling on for a test, restore after. */
struct SamplingOn
{
    SamplingOn() { metrics::setSampling(true); }
    ~SamplingOn() { metrics::setSampling(true); }
};

// ---- Histogram buckets ------------------------------------------------

TEST(MetricsHistogram, BucketBoundariesExactBelowFirstOctave)
{
    // Values below 2^kSubBits map to their own exact bucket.
    for (std::uint64_t v = 0; v < (1ull << Histogram::kSubBits); ++v) {
        EXPECT_EQ(Histogram::bucketIndex(v), v);
        EXPECT_EQ(Histogram::bucketUpperBound(
                      Histogram::bucketIndex(v)),
                  v);
    }
}

TEST(MetricsHistogram, BucketIndexMonotonicAndCovering)
{
    // Sweep octave edges and mid-points across the full range:
    // bucketIndex must be monotone in v, within range, and every
    // value must be <= its bucket's upper bound (the percentile
    // read-out value).
    std::vector<std::uint64_t> values;
    for (unsigned k = 0; k < 64; ++k) {
        for (std::uint64_t off : {std::uint64_t{0}, std::uint64_t{1},
                                  (std::uint64_t{1} << k) / 3}) {
            const std::uint64_t v = (std::uint64_t{1} << k) + off;
            if (v >= (std::uint64_t{1} << k)) // overflow guard, k=63
                values.push_back(v);
        }
    }
    std::sort(values.begin(), values.end());
    unsigned prev = 0;
    for (std::uint64_t v : values) {
        const unsigned idx = Histogram::bucketIndex(v);
        ASSERT_LT(idx, Histogram::kBuckets) << "v=" << v;
        EXPECT_GE(idx, prev) << "v=" << v;
        prev = std::max(prev, idx);
        EXPECT_GE(Histogram::bucketUpperBound(idx), v);
    }
    EXPECT_EQ(Histogram::bucketIndex(~std::uint64_t{0}),
              Histogram::kBuckets - 1);
}

TEST(MetricsHistogram, BucketResolutionWithin25Percent)
{
    // The documented contract: reported values overshoot the true
    // value by at most one sub-bucket width = 2^(k - kSubBits), i.e.
    // <= 25% for any v >= 2^kSubBits.
    for (std::uint64_t v : {4ull, 5ull, 100ull, 999ull, 4096ull,
                            123456789ull, 1ull << 40}) {
        const std::uint64_t ub =
            Histogram::bucketUpperBound(Histogram::bucketIndex(v));
        EXPECT_GE(ub, v);
        EXPECT_LE(ub, v + v / 4) << "v=" << v << " ub=" << ub;
    }
}

TEST(MetricsHistogram, PercentileExtraction)
{
    SamplingOn on;
    Histogram h;
    EXPECT_EQ(h.percentile(0.5), 0u); // empty

    // 1..1000 once each: the q-quantile's true value is ~1000q, and
    // the histogram may overshoot by its 25% bucket resolution.
    for (std::uint64_t v = 1; v <= 1000; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_EQ(h.sum(), 500500u);
    EXPECT_EQ(h.max(), 1000u);
    for (double q : {0.5, 0.95, 0.99}) {
        const std::uint64_t truth =
            static_cast<std::uint64_t>(q * 1000.0);
        const std::uint64_t got = h.percentile(q);
        EXPECT_GE(got, truth) << "q=" << q;
        EXPECT_LE(got, truth + truth / 4 + 1) << "q=" << q;
    }
    // p100 = the max's bucket.
    EXPECT_GE(h.percentile(1.0), 1000u);

    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
}

TEST(MetricsHistogram, SingleValuePercentiles)
{
    SamplingOn on;
    Histogram h;
    h.record(777);
    const std::uint64_t ub =
        Histogram::bucketUpperBound(Histogram::bucketIndex(777));
    EXPECT_EQ(h.percentile(0.5), ub);
    EXPECT_EQ(h.percentile(0.99), ub);
    EXPECT_EQ(h.max(), 777u);
}

// ---- Counter / gauge --------------------------------------------------

TEST(MetricsCounter, StripedAggregation)
{
    SamplingOn on;
    Counter c;
    // More threads than stripes: totals must still be exact.
    constexpr unsigned kThreads = 2 * Counter::kStripes;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i)
                c.add();
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(MetricsGauge, SetAndAdd)
{
    SamplingOn on;
    Gauge g;
    g.set(42);
    EXPECT_EQ(g.value(), 42);
    g.add(-50);
    EXPECT_EQ(g.value(), -8);
    g.reset();
    EXPECT_EQ(g.value(), 0);
}

TEST(MetricsSampling, OffFreezesInstruments)
{
    SamplingOn on;
    Counter c;
    Gauge g;
    Histogram h;
    c.add(5);
    g.set(5);
    h.record(5);
    metrics::setSampling(false);
    c.add(100);
    g.set(100);
    h.record(100);
    metrics::setSampling(true);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(g.value(), 5);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 5u);
}

// ---- Registry ---------------------------------------------------------

TEST(MetricsRegistry, FindOrCreateIsIdempotent)
{
    Registry reg;
    Counter &a = reg.counter("x.count");
    Counter &b = reg.counter("x.count");
    EXPECT_EQ(&a, &b);
    Histogram &h1 = reg.histogram("x.lat{shard=0}");
    Histogram &h2 = reg.histogram("x.lat{shard=0}");
    EXPECT_EQ(&h1, &h2);
    // Distinct labels = distinct instruments.
    EXPECT_NE(&h1, &reg.histogram("x.lat{shard=1}"));
}

TEST(MetricsRegistry, ZeroAllocationsAfterRegistration)
{
    SamplingOn on;
    Registry reg;
    Counter &c = reg.counter("hot.count");
    Gauge &g = reg.gauge("hot.gauge");
    Histogram &h = reg.histogram("hot.lat");

    const std::uint64_t before = heapAllocCount();
    for (int i = 0; i < 1000; ++i) {
        c.add();
        g.set(i);
        h.record(static_cast<std::uint64_t>(i));
    }
    // Reads too: aggregation and percentile walks are alloc-free.
    (void)c.value();
    (void)h.percentile(0.99);
    // Re-lookup by name goes through the transparent comparator —
    // no temporary std::string.
    (void)reg.counter("hot.count");
    (void)reg.histogram("hot.lat");
    EXPECT_EQ(heapAllocCount() - before, 0u);
}

TEST(MetricsRegistry, RenderTextShapeAndOrder)
{
    SamplingOn on;
    Registry reg;
    reg.counter("b.count").add(3);
    reg.counter("a.count").add(1);
    reg.gauge("m.gauge").set(-7);
    reg.histogram("z.lat").record(100);

    std::string out;
    reg.renderText(out);
    std::vector<std::string> lines;
    std::istringstream is(out);
    for (std::string line; std::getline(is, line);)
        lines.push_back(line);
    ASSERT_EQ(lines.size(), 4u);
    // Counters first (sorted), then gauges, then histograms.
    EXPECT_EQ(lines[0], "a.count counter 1");
    EXPECT_EQ(lines[1], "b.count counter 3");
    EXPECT_EQ(lines[2], "m.gauge gauge -7");
    EXPECT_EQ(lines[3].substr(0, 16), "z.lat histogram ");
    EXPECT_NE(lines[3].find("count=1"), std::string::npos);
    EXPECT_NE(lines[3].find("sum=100"), std::string::npos);
    EXPECT_NE(lines[3].find("p50="), std::string::npos);
    EXPECT_NE(lines[3].find("p99="), std::string::npos);
    EXPECT_NE(lines[3].find("max=100"), std::string::npos);
}

TEST(MetricsRegistry, RenderJsonIsWellFormedEnough)
{
    SamplingOn on;
    Registry reg;
    reg.counter("c").add(2);
    reg.histogram("h").record(10);
    std::string out;
    reg.renderJson(out);
    EXPECT_EQ(out.front(), '{');
    EXPECT_EQ(out.back(), '}');
    EXPECT_NE(out.find("\"counters\""), std::string::npos);
    EXPECT_NE(out.find("\"gauges\""), std::string::npos);
    EXPECT_NE(out.find("\"histograms\""), std::string::npos);
    EXPECT_NE(out.find("\"c\":2"), std::string::npos);
}

// ---- Concurrency (runs under TSan in CI) ------------------------------

TEST(MetricsConcurrent, MixedMutationUnderContention)
{
    SamplingOn on;
    Registry reg;
    Counter &c = reg.counter("tsan.count");
    Gauge &g = reg.gauge("tsan.gauge");
    Histogram &h = reg.histogram("tsan.lat");

    constexpr unsigned kThreads = 8;
    constexpr std::uint64_t kIters = 5000;
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kThreads + 1);
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (std::uint64_t i = 0; i < kIters; ++i) {
                c.add();
                g.set(static_cast<std::int64_t>(i));
                h.record(t * kIters + i);
            }
        });
    // A concurrent reader: snapshots while writers run.
    threads.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) {
        }
        for (int i = 0; i < 50; ++i) {
            std::string out;
            reg.renderText(out);
            (void)c.value();
            (void)h.percentile(0.95);
        }
    });
    go.store(true, std::memory_order_release);
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(c.value(), kThreads * kIters);
    EXPECT_EQ(h.count(), kThreads * kIters);
}

TEST(MetricsConcurrent, RegistrationRaces)
{
    Registry reg;
    constexpr unsigned kThreads = 8;
    std::vector<Counter *> seen(kThreads, nullptr);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back(
            [&, t] { seen[t] = &reg.counter("race.count"); });
    for (std::thread &t : threads)
        t.join();
    for (unsigned t = 1; t < kThreads; ++t)
        EXPECT_EQ(seen[t], seen[0]);
}

// ---- /stats over a mixed-priority serve run ---------------------------

/** Parse the /stats text body: name -> rest-of-line. */
std::map<std::string, std::string>
parseStats(const std::string &body)
{
    std::map<std::string, std::string> out;
    std::istringstream is(body);
    for (std::string line; std::getline(is, line);) {
        if (line.empty() || line[0] == '#')
            continue;
        const std::size_t sp = line.find(' ');
        EXPECT_NE(sp, std::string::npos) << line;
        out[line.substr(0, sp)] = line.substr(sp + 1);
    }
    return out;
}

/** Numeric value of a "counter N" / "gauge N" stats line. */
std::int64_t
statValue(const std::map<std::string, std::string> &stats,
          const std::string &name)
{
    const auto it = stats.find(name);
    if (it == stats.end())
        return -1;
    const std::size_t sp = it->second.find(' ');
    return std::stoll(it->second.substr(sp + 1));
}

/** Sum a counter family over shards. */
std::int64_t
sumOverShards(const std::map<std::string, std::string> &stats,
              const std::string &base, unsigned num_shards,
              const std::string &cls)
{
    std::int64_t total = 0;
    for (unsigned s = 0; s < num_shards; ++s) {
        const std::string name = "serve." + base +
                                 "{shard=" + std::to_string(s) +
                                 ",class=" + cls + "}";
        const std::int64_t v = statValue(stats, name);
        EXPECT_GE(v, 0) << name << " missing from /stats";
        total += v;
    }
    return total;
}

TEST(ServeStats, MixedPriorityRunRendersAccurateCounters)
{
    SamplingOn on;
    ServeOptions options;
    options.pipeline.num_threads = 2;
    options.num_shards = 2;
    options.queue_capacity = 64;
    options.priority_weights = {6, 3, 2}; // non-default, must surface

    const auto cloud = std::make_shared<const data::PointCloud>(
        data::makeS3disScene(512, 7));

    unsigned done = 0, expired = 0, cancelled = 0;
    const unsigned kPerClass = 6;
    {
        AsyncPipeline pipeline(options);
        std::vector<Ticket> tickets;

        // Mixed-priority load: Interactive and Batch requests that
        // run, plus Background requests admitted with an
        // already-expired deadline — they must retire Expired.
        for (unsigned i = 0; i < kPerClass; ++i) {
            tickets.push_back(pipeline.submitShared(
                cloud, {}, std::nullopt, Priority::Interactive,
                /*placement_key=*/i + 1));
            tickets.push_back(pipeline.submitShared(
                cloud, {}, std::nullopt, Priority::Batch,
                /*placement_key=*/i + 1));
            tickets.push_back(pipeline.submitShared(
                cloud, {}, std::chrono::nanoseconds(0),
                Priority::Background, /*placement_key=*/i + 1));
        }
        for (Ticket t : tickets) {
            const RequestOutcome outcome = pipeline.wait(t);
            switch (outcome.state) {
              case RequestState::Done:
                ++done;
                break;
              case RequestState::Expired:
                ++expired;
                break;
              case RequestState::Cancelled:
                ++cancelled;
                break;
              default:
                FAIL() << "unexpected terminal state";
            }
        }

        const std::string body = serve::renderStats(pipeline);
        // Header line documents the runtime shape.
        EXPECT_EQ(body.substr(0, body.find('\n')),
                  "# fractalcloud serve/stats shards=2 "
                  "threads_per_shard=2 sampling=on");
        const auto stats = parseStats(body);

        // Admission counters match what we submitted, per class.
        EXPECT_EQ(sumOverShards(stats, "submitted", 2, "interactive"),
                  kPerClass);
        EXPECT_EQ(sumOverShards(stats, "submitted", 2, "batch"),
                  kPerClass);
        EXPECT_EQ(sumOverShards(stats, "submitted", 2, "background"),
                  kPerClass);

        // Terminal counters match observed outcomes.
        EXPECT_EQ(sumOverShards(stats, "completed", 2, "interactive") +
                      sumOverShards(stats, "completed", 2, "batch") +
                      sumOverShards(stats, "completed", 2,
                                    "background"),
                  done);
        EXPECT_EQ(sumOverShards(stats, "expired", 2, "background"),
                  expired);
        EXPECT_EQ(cancelled, 0u);

        // Every zero-deadline Background request expired.
        EXPECT_EQ(expired, kPerClass);
        EXPECT_EQ(done, 2 * kPerClass);

        // Latency/wait histograms saw every completed request.
        std::int64_t latency_count = 0;
        for (unsigned s = 0; s < 2; ++s)
            for (const char *cls : {"interactive", "batch"}) {
                const std::string name =
                    std::string("serve.latency_us{shard=") +
                    std::to_string(s) + ",class=" + cls + "}";
                const auto it = stats.find(name);
                ASSERT_NE(it, stats.end()) << name;
                const std::size_t pos = it->second.find("count=");
                ASSERT_NE(pos, std::string::npos);
                latency_count +=
                    std::stoll(it->second.substr(pos + 6));
            }
        EXPECT_EQ(latency_count, done);

        // Work-conserving spill fired: with 2 threads per shard and
        // sequential-ish load, at least one request ran with its
        // block items spilled (same-shard or borrowed).
        std::int64_t spills = 0;
        for (unsigned s = 0; s < 2; ++s) {
            spills += statValue(
                stats, "serve.spill_same{shard=" + std::to_string(s) +
                           "}");
            spills += statValue(
                stats, "serve.borrow_out{shard=" + std::to_string(s) +
                           "}");
        }
        EXPECT_GT(spills, 0);

        // Runtime-configured aging weights are surfaced.
        EXPECT_EQ(statValue(stats,
                            "serve.priority_weight{class=interactive}"),
                  6);
        EXPECT_EQ(statValue(stats, "serve.priority_weight{class=batch}"),
                  3);
        EXPECT_EQ(
            statValue(stats,
                      "serve.priority_weight{class=background}"),
            2);

        // The executor counted one task per admitted request.
        EXPECT_EQ(statValue(stats, "core.executor.tasks{shard=0}") +
                      statValue(stats, "core.executor.tasks{shard=1}"),
                  3 * kPerClass);

        // Workspace telemetry: every executed request checked one out.
        EXPECT_GE(statValue(stats, "serve.workspace_checkouts"),
                  static_cast<std::int64_t>(done));
        EXPECT_EQ(statValue(stats, "serve.workspaces_created"),
                  static_cast<std::int64_t>(
                      pipeline.workspacesCreated()));

        // JSON variant carries the same shape fields.
        const std::string json = serve::renderStatsJson(pipeline);
        EXPECT_EQ(json.front(), '{');
        EXPECT_EQ(json.back(), '}');
        EXPECT_NE(json.find("\"shards\":2"), std::string::npos);
        EXPECT_NE(json.find("\"metrics\":{"), std::string::npos);
        EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    }
}

TEST(ServeStats, CancelledQueuedRequestIsCounted)
{
    SamplingOn on;
    ServeOptions options;
    options.pipeline.num_threads = 1;
    options.num_shards = 1;
    options.queue_capacity = 16;

    const auto cloud = std::make_shared<const data::PointCloud>(
        data::makeS3disScene(1024, 3));

    AsyncPipeline pipeline(options);
    // Occupy the single worker, then cancel queued Background work
    // before it can start.
    std::vector<Ticket> busy;
    for (int i = 0; i < 3; ++i)
        busy.push_back(pipeline.submitShared(cloud, {}, std::nullopt,
                                             Priority::Interactive));
    Ticket victim = pipeline.submitShared(cloud, {}, std::nullopt,
                                          Priority::Background);
    const bool requested = pipeline.cancel(victim);
    unsigned cancelled = 0;
    if (pipeline.wait(victim).state == RequestState::Cancelled)
        ++cancelled;
    for (Ticket t : busy)
        (void)pipeline.wait(t);
    EXPECT_TRUE(requested);

    const auto stats = parseStats(serve::renderStats(pipeline));
    EXPECT_EQ(statValue(
                  stats,
                  "serve.cancelled{shard=0,class=background}"),
              static_cast<std::int64_t>(cancelled));
}

TEST(ServeStats, DefaultWeightsSurfacedAndAccessorAgrees)
{
    ServeOptions options;
    options.pipeline.num_threads = 1;
    AsyncPipeline pipeline(options);
    const auto stats = parseStats(serve::renderStats(pipeline));
    EXPECT_EQ(statValue(stats,
                        "serve.priority_weight{class=interactive}"),
              static_cast<std::int64_t>(serve::kPriorityWeight[0]));
    EXPECT_EQ(statValue(stats, "serve.priority_weight{class=batch}"),
              static_cast<std::int64_t>(serve::kPriorityWeight[1]));
    EXPECT_EQ(statValue(stats,
                        "serve.priority_weight{class=background}"),
              static_cast<std::int64_t>(serve::kPriorityWeight[2]));
}

} // namespace
} // namespace fc
