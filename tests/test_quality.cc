/**
 * @file
 * Unit tests for the accuracy-proxy quality metrics.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ops/quality.h"

namespace fc::ops {
namespace {

data::PointCloud
gridCloud()
{
    data::PointCloud cloud;
    for (int x = 0; x < 4; ++x)
        for (int y = 0; y < 4; ++y)
            cloud.addPoint({static_cast<float>(x),
                            static_cast<float>(y), 0.0f});
    return cloud;
}

TEST(Coverage, AllPointsSampledIsZero)
{
    const data::PointCloud cloud = gridCloud();
    std::vector<PointIdx> all;
    for (PointIdx i = 0; i < cloud.size(); ++i)
        all.push_back(i);
    EXPECT_FLOAT_EQ(coverageRadius(cloud, all), 0.0f);
    EXPECT_FLOAT_EQ(meanCoverage(cloud, all), 0.0f);
}

TEST(Coverage, SingleCornerSample)
{
    const data::PointCloud cloud = gridCloud();
    // Only corner (0,0): farthest point is (3,3), distance sqrt(18).
    const float r = coverageRadius(cloud, {0});
    EXPECT_NEAR(r, std::sqrt(18.0f), 1e-5f);
    EXPECT_GT(r, meanCoverage(cloud, {0}));
}

TEST(Coverage, EmptySamplesIsInfinite)
{
    const data::PointCloud cloud = gridCloud();
    EXPECT_TRUE(std::isinf(coverageRadius(cloud, {})));
}

NeighborResult
makeTable(std::size_t centers, std::size_t k,
          std::vector<PointIdx> idx, std::vector<std::uint32_t> counts)
{
    NeighborResult r;
    r.num_centers = centers;
    r.k = k;
    r.indices = std::move(idx);
    r.counts = std::move(counts);
    return r;
}

TEST(Recall, IdenticalTablesGiveOne)
{
    const NeighborResult a =
        makeTable(2, 2, {1, 2, 3, 4}, {2, 2});
    EXPECT_DOUBLE_EQ(neighborRecall(a, a), 1.0);
}

TEST(Recall, HalfOverlap)
{
    const NeighborResult ref = makeTable(1, 2, {1, 2}, {2});
    const NeighborResult test = makeTable(1, 2, {1, 9}, {2});
    EXPECT_DOUBLE_EQ(neighborRecall(ref, test), 0.5);
}

TEST(Recall, PaddingIgnored)
{
    // test table found only 1 real neighbor then padded with it.
    const NeighborResult ref = makeTable(1, 3, {1, 2, 3}, {3});
    const NeighborResult test = makeTable(1, 3, {2, 2, 2}, {1});
    EXPECT_NEAR(neighborRecall(ref, test), 1.0 / 3.0, 1e-12);
}

TEST(Recall, EmptyReferenceRowsSkipped)
{
    const NeighborResult ref =
        makeTable(2, 1, {kInvalidPoint, 5}, {0, 1});
    const NeighborResult test = makeTable(2, 1, {7, 5}, {1, 1});
    EXPECT_DOUBLE_EQ(neighborRecall(ref, test), 1.0);
}

TEST(FeatureError, ZeroForIdentical)
{
    const std::vector<float> a{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(featureRelativeError(a, a), 0.0);
}

TEST(FeatureError, KnownValue)
{
    const std::vector<float> ref{3.0f, 4.0f}; // norm 5
    const std::vector<float> test{3.0f, 4.5f}; // diff norm 0.5
    EXPECT_NEAR(featureRelativeError(ref, test), 0.1, 1e-9);
}

TEST(FeatureError, ZeroReferenceHandled)
{
    const std::vector<float> ref{0.0f, 0.0f};
    const std::vector<float> same{0.0f, 0.0f};
    const std::vector<float> diff{1.0f, 0.0f};
    EXPECT_DOUBLE_EQ(featureRelativeError(ref, same), 0.0);
    EXPECT_DOUBLE_EQ(featureRelativeError(ref, diff), 1.0);
}

} // namespace
} // namespace fc::ops
