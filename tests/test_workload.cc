/**
 * @file
 * Tests for network workload shapes and block summaries.
 */

#include <gtest/gtest.h>

#include "accel/workload.h"
#include "dataset/s3dis.h"
#include "nn/models.h"
#include "partition/partitioner.h"

namespace fc::accel {
namespace {

TEST(NetworkShape, StageSizesChain)
{
    const NetworkShape s =
        buildNetworkShape(nn::pointNet2Classification(), 1024);
    ASSERT_EQ(s.sa.size(), 2u);
    EXPECT_EQ(s.sa[0].n_in, 1024u);
    EXPECT_EQ(s.sa[0].n_out, 512u);
    EXPECT_EQ(s.sa[1].n_in, 512u);
    EXPECT_EQ(s.sa[1].n_out, 128u);
    EXPECT_EQ(s.sa[0].k, 32u);
    EXPECT_EQ(s.sa[1].k, 64u);
    // First GEMM input: 3 rel coords + (3 xyz features).
    EXPECT_EQ(s.sa[0].gemm.front().first, 6u);
    EXPECT_EQ(s.sa[0].c_out, 128u);
    EXPECT_EQ(s.sa[1].gemm.front().first, 3u + 128u);
}

TEST(NetworkShape, SegmentationHasFpStages)
{
    const NetworkShape s =
        buildNetworkShape(nn::pointNet2SemSeg(), 16384);
    ASSERT_EQ(s.fp.size(), 4u);
    // First FP: coarse = deepest level, fine = next level up.
    EXPECT_EQ(s.fp[0].n_coarse, s.sa.back().n_out);
    EXPECT_EQ(s.fp[0].n_fine, s.sa[s.sa.size() - 2].n_out);
    // Last FP lands on the input resolution.
    EXPECT_EQ(s.fp.back().n_fine, 16384u);
    EXPECT_EQ(s.head_rows, 16384u);
}

TEST(NetworkShape, DelayedAggregationReducesMacs)
{
    const NetworkShape s =
        buildNetworkShape(nn::pointNeXtSemSeg(), 8192);
    const std::uint64_t plain = s.totalMacs(false);
    const std::uint64_t delayed = s.totalMacs(true);
    EXPECT_LT(delayed, plain);
    // SA rows shrink from n_out*k to n_in: with rate 0.25 and k=32
    // that is an 8x reduction for stage GEMMs.
    EXPECT_LT(delayed * 3, plain);
}

TEST(NetworkShape, MacsGrowWithInput)
{
    const auto model = nn::pointNeXtSemSeg();
    const std::uint64_t small =
        buildNetworkShape(model, 1024).totalMacs(true);
    const std::uint64_t large =
        buildNetworkShape(model, 4096).totalMacs(true);
    EXPECT_GT(large, 3 * small);
    EXPECT_LT(large, 5 * small);
}

TEST(BlockSummary, MatchesTree)
{
    const data::PointCloud scene = data::makeS3disScene(4096, 1);
    const auto p = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = 256;
    const part::PartitionResult result = p->partition(scene, config);
    const BlockSummary s = summarizeBlocks(result);
    EXPECT_EQ(s.leaf_sizes.size(), result.tree.leaves().size());
    EXPECT_EQ(s.total_points, scene.size());
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < s.leaf_sizes.size(); ++i) {
        sum += s.leaf_sizes[i];
        EXPECT_GE(s.space_sizes[i], s.leaf_sizes[i])
            << "search space must contain the leaf";
    }
    EXPECT_EQ(sum, scene.size());
}

TEST(BlockSummary, ScaledShrinksProportionally)
{
    const data::PointCloud scene = data::makeS3disScene(4096, 2);
    const auto p = part::makePartitioner(part::Method::Fractal);
    part::PartitionConfig config;
    config.threshold = 256;
    const BlockSummary base =
        summarizeBlocks(p->partition(scene, config));
    const BlockSummary quarter = base.scaled(0.25);
    ASSERT_EQ(quarter.leaf_sizes.size(), base.leaf_sizes.size());
    for (std::size_t i = 0; i < base.leaf_sizes.size(); ++i) {
        if (base.leaf_sizes[i] == 0) {
            EXPECT_EQ(quarter.leaf_sizes[i], 0u);
        } else {
            EXPECT_GE(quarter.leaf_sizes[i], 1u);
            EXPECT_LE(quarter.leaf_sizes[i],
                      base.leaf_sizes[i] / 2 + 1);
        }
    }
    EXPECT_LT(quarter.total_points, base.total_points / 2);
}

TEST(NetworkShape, EveryModelBuilds)
{
    for (const auto &model : nn::allModels()) {
        const NetworkShape s = buildNetworkShape(model, 2048);
        EXPECT_EQ(s.n_points, 2048u) << model.name;
        EXPECT_FALSE(s.sa.empty()) << model.name;
        EXPECT_GT(s.totalMacs(true), 0u) << model.name;
    }
}

} // namespace
} // namespace fc::accel
