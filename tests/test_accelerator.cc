/**
 * @file
 * Tests for the accelerator timing models: internal consistency and
 * the qualitative orderings of the paper's evaluation.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "dataset/s3dis.h"
#include "nn/models.h"

namespace fc::accel {
namespace {

const data::PointCloud &
scene33k()
{
    static const data::PointCloud scene = data::makeS3disScene(33000, 1);
    return scene;
}

TEST(Configs, TableTwoValues)
{
    EXPECT_DOUBLE_EQ(pointAccConfig().sram_kb, 274.0);
    EXPECT_DOUBLE_EQ(crescentConfig().sram_kb, 1622.8);
    EXPECT_DOUBLE_EQ(mesorasiConfig().sram_kb, 1624.0);
    EXPECT_DOUBLE_EQ(fractalCloudConfig().sram_kb, 274.0);
    EXPECT_DOUBLE_EQ(fractalCloudConfig().area_mm2, 1.5);
    // 2 ops x 256 PEs x 1 GHz = 512 GOPS for every design.
    for (const auto &cfg :
         {mesorasiConfig(), pointAccConfig(), crescentConfig(),
          fractalCloudConfig()}) {
        EXPECT_DOUBLE_EQ(cfg.peakGops(), 512.0) << cfg.name;
    }
}

TEST(Floorplan, SumsToTableTwo)
{
    double area = 0.0, power = 0.0;
    for (const ModuleBudget &m : fractalCloudFloorplan()) {
        area += m.area_mm2;
        power += m.power_mw;
    }
    EXPECT_NEAR(area, 1.5, 0.01);
    EXPECT_NEAR(power, 580.0, 1.0);
}

TEST(Accelerator, ReportHasAllPhases)
{
    const auto fc = makeFractalCloud(256);
    const RunReport r = fc.run(nn::pointNeXtSemSeg(), scene33k());
    EXPECT_GT(r.latencyMs(Phase::Partition), 0.0);
    EXPECT_GT(r.latencyMs(Phase::Sample), 0.0);
    EXPECT_GT(r.latencyMs(Phase::Group), 0.0);
    EXPECT_GT(r.latencyMs(Phase::Interpolate), 0.0);
    EXPECT_GT(r.latencyMs(Phase::Mlp), 0.0);
    EXPECT_GT(r.totalEnergyMj(), 0.0);
    EXPECT_EQ(r.accelerator, "FractalCloud");
}

TEST(Accelerator, FractalCloudBeatsPointAccLargeScale)
{
    const RunReport ours =
        makeFractalCloud(256).run(nn::pointNeXtSemSeg(), scene33k());
    const RunReport pa =
        makePointAcc().run(nn::pointNeXtSemSeg(), scene33k());
    EXPECT_LT(5.0 * ours.totalLatencyMs(), pa.totalLatencyMs())
        << "expected >5x speedup over PointAcc at 33K";
    EXPECT_LT(3.0 * ours.totalEnergyMj(), pa.totalEnergyMj());
}

TEST(Accelerator, PointOpsDominatePointAccLargeScale)
{
    const RunReport pa =
        makePointAcc().run(nn::pointNeXtSemSeg(), scene33k());
    EXPECT_GT(static_cast<double>(pa.pointOpCycles()),
              0.6 * static_cast<double>(pa.totalCycles()));
}

TEST(Accelerator, CrescentPartitionCostVisible)
{
    const RunReport cres =
        makeCrescent().run(nn::pointNeXtSemSeg(), scene33k());
    const RunReport ours =
        makeFractalCloud(256).run(nn::pointNeXtSemSeg(), scene33k());
    // KD-tree partitioning costs orders of magnitude more than the
    // fractal engine (Fig. 16: 133x).
    EXPECT_GT(cres.latencyMs(Phase::Partition),
              20.0 * ours.latencyMs(Phase::Partition));
    // And Fractal partitioning stays below 1% of our total (paper:
    // <0.8%).
    EXPECT_LT(ours.latencyMs(Phase::Partition),
              0.02 * ours.totalLatencyMs());
}

TEST(Accelerator, GpuSlowestAtEnergy)
{
    const RunReport gpu = gpuRun(nn::pointNeXtSemSeg(), 33000);
    const RunReport ours =
        makeFractalCloud(256).run(nn::pointNeXtSemSeg(), scene33k());
    EXPECT_GT(gpu.totalEnergyMj(), 50.0 * ours.totalEnergyMj());
}

TEST(Accelerator, SpeedupGrowsWithScale)
{
    // The headline scaling claim: our advantage over PointAcc grows
    // with input size.
    const auto model = nn::pointNeXtSemSeg();
    const data::PointCloud small = data::makeS3disScene(4000, 2);
    const data::PointCloud large = data::makeS3disScene(64000, 3);
    const double speedup_small =
        makePointAcc().run(model, small).totalLatencyMs() /
        makeFractalCloud(64).run(model, small).totalLatencyMs();
    const double speedup_large =
        makePointAcc().run(model, large).totalLatencyMs() /
        makeFractalCloud(256).run(model, large).totalLatencyMs();
    EXPECT_GT(speedup_large, 1.5 * speedup_small);
}

TEST(Accelerator, AblationTogglesMonotone)
{
    // Fig. 18 direction: enabling each block-wise op reduces latency.
    const auto model = nn::pointNeXtSemSeg();
    const data::PointCloud &scene = scene33k();

    Policy p;
    p.partition_method = part::Method::Fractal;
    p.partition_threshold = 256;
    p.delayed_aggregation = true;
    p.block_parallel = true;
    p.window_check = true;
    p.coord_reuse = true;
    p.block_sampling = false;
    p.block_grouping = false;
    p.block_interpolation = false;
    p.block_gathering = false;

    const double base =
        makeFractalCloudWithPolicy(p).run(model, scene)
            .totalLatencyMs();
    p.block_sampling = true;
    const double bws =
        makeFractalCloudWithPolicy(p).run(model, scene)
            .totalLatencyMs();
    p.block_grouping = true;
    const double bwg =
        makeFractalCloudWithPolicy(p).run(model, scene)
            .totalLatencyMs();
    p.block_interpolation = true;
    const double bwi =
        makeFractalCloudWithPolicy(p).run(model, scene)
            .totalLatencyMs();
    p.block_gathering = true;
    const double bwga =
        makeFractalCloudWithPolicy(p).run(model, scene)
            .totalLatencyMs();

    EXPECT_LT(bws, base);
    EXPECT_LT(bwg, bws);
    EXPECT_LT(bwi, bwg);
    EXPECT_LE(bwga, bwi * 1.05);
}

TEST(Accelerator, WindowCheckSavesSampleTime)
{
    const auto model = nn::pointNet2SemSeg();
    const data::PointCloud &scene = scene33k();
    Policy with = makeFractalCloud(256).policy();
    Policy without = with;
    without.window_check = false;
    const double t_with = makeFractalCloudWithPolicy(with)
                              .run(model, scene)
                              .latencyMs(Phase::Sample);
    const double t_without = makeFractalCloudWithPolicy(without)
                                 .run(model, scene)
                                 .latencyMs(Phase::Sample);
    EXPECT_LT(t_with, t_without);
}

TEST(Gpu, LatencyScalesSuperlinearly)
{
    const auto model = nn::pointNeXtSemSeg();
    const double t16 = gpuRun(model, 16000).totalLatencyMs();
    const double t128 = gpuRun(model, 128000).totalLatencyMs();
    EXPECT_GT(t128, 8.0 * t16) << "global ops should scale ~n^2";
}

TEST(Gpu, PointOpShareGrowsWithScale)
{
    const auto model = nn::pointNeXtSemSeg();
    const RunReport small = gpuRun(model, 1000);
    const RunReport large = gpuRun(model, 289000);
    const double share_small =
        static_cast<double>(small.pointOpCycles()) /
        static_cast<double>(small.totalCycles());
    const double share_large =
        static_cast<double>(large.pointOpCycles()) /
        static_cast<double>(large.totalCycles());
    EXPECT_GT(share_large, share_small);
    EXPECT_GT(share_large, 0.9); // paper Fig. 4: >90% at 289K
}

} // namespace
} // namespace fc::accel
