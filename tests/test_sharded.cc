/**
 * @file
 * Tests for the sharded, priority-aware serving runtime:
 * core::ShardMap / core::ShardedExecutor placement, shard-count
 * determinism of served results (byte-identical to the unsharded
 * path at shard counts {1,2,4} x thread counts {1,2,8}), weighted
 * priority aging (no starvation under sustained Interactive load),
 * cancellation of queued low-priority tickets, cross-shard
 * work-conserving spill, and the waitFor timeout overload. The CI
 * TSan job runs this whole file (via the Sharded*, Priority*, and
 * WaitFor* filter entries).
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <gtest/gtest.h>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/pipeline.h"
#include "core/sharded_executor.h"
#include "dataset/s3dis.h"
#include "serve/async_pipeline.h"
#include "serve/scheduler.h"

namespace fc {
namespace {

using serve::AsyncPipeline;
using serve::Priority;
using serve::RequestOutcome;
using serve::RequestState;
using serve::Scheduler;
using serve::ServeOptions;
using serve::Stage;
using serve::Ticket;

std::shared_ptr<const data::PointCloud>
sharedScene(std::size_t n, std::uint64_t seed)
{
    return std::make_shared<const data::PointCloud>(
        data::makeS3disScene(n, seed));
}

/** Smallest key >= @p from that the map places on @p shard. */
std::uint64_t
keyOnShard(const core::ShardMap &map, unsigned shard,
           std::uint64_t from = 1)
{
    for (std::uint64_t key = from;; ++key) {
        if (map.shardFor(key) == shard)
            return key;
    }
}

/** One-shot gate: a worker parks in arriveAndWait() until release(). */
struct StageGate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool reached = false;
    bool released = false;

    void
    arriveAndWait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        reached = true;
        cv.notify_all();
        cv.wait(lock, [this] { return released; });
    }

    void
    awaitReached()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return reached; });
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mutex);
        released = true;
        cv.notify_all();
    }
};

// ----------------------------------------------------- ShardedExecutor

TEST(ShardedExecutor, SingleShardMapsEveryKeyToZero)
{
    const core::ShardMap map(1);
    for (std::uint64_t key = 0; key < 1000; ++key)
        EXPECT_EQ(map.shardFor(key), 0u);
}

TEST(ShardedExecutor, PlacementIsDeterministicAndBalanced)
{
    constexpr unsigned kShards = 4;
    constexpr std::uint64_t kKeys = 20000;
    const core::ShardMap a(kShards);
    const core::ShardMap b(kShards);

    std::vector<std::size_t> hits(kShards, 0);
    for (std::uint64_t key = 1; key <= kKeys; ++key) {
        const unsigned shard = a.shardFor(key);
        ASSERT_LT(shard, kShards);
        // Pure function of (key, shard count): identical across
        // instances (and therefore across scheduler and executor).
        EXPECT_EQ(shard, b.shardFor(key));
        ++hits[shard];
    }
    // Consistent hashing with 64 replicas is not perfectly uniform,
    // but no shard may be starved or dominant.
    for (unsigned s = 0; s < kShards; ++s) {
        EXPECT_GT(hits[s], kKeys / 20) << "shard " << s << " starved";
        EXPECT_LT(hits[s], kKeys / 2) << "shard " << s << " dominant";
    }
}

TEST(ShardedExecutor, GrowingTheRingMovesFewKeys)
{
    constexpr std::uint64_t kKeys = 20000;
    const core::ShardMap small(4);
    const core::ShardMap big(5);
    std::uint64_t moved = 0;
    for (std::uint64_t key = 1; key <= kKeys; ++key) {
        const unsigned before = small.shardFor(key);
        const unsigned after = big.shardFor(key);
        if (before != after) {
            ++moved;
            // Consistency: a key only ever moves TO the new shard —
            // shards 0-3 own the same ring points in both maps.
            EXPECT_EQ(after, 4u);
        }
    }
    // Expected ~1/5 of keys; anything under half proves the ring is
    // consistent rather than rehash-everything.
    EXPECT_LT(moved, kKeys / 2);
    EXPECT_GT(moved, 0u);
}

TEST(ShardedExecutor, ShardsRunIndependentPools)
{
    core::ShardedExecutor executor(/*num_shards=*/2,
                                   /*threads_per_shard=*/2,
                                   /*standalone=*/false);
    EXPECT_EQ(executor.numShards(), 2u);
    EXPECT_EQ(executor.threadsPerShard(), 2u);
    EXPECT_EQ(executor.totalThreads(), 4u);

    // Drive both shard pools concurrently from two caller threads;
    // each parallelFor must see only its own shard's queue.
    std::vector<int> a(4096, 0), b(4096, 0);
    std::thread ta([&] {
        core::parallelFor(&executor.shard(0), 0, a.size(), 64,
                          [&](std::size_t cb, std::size_t ce) {
                              for (std::size_t i = cb; i < ce; ++i)
                                  a[i] = static_cast<int>(i);
                          });
    });
    core::parallelFor(&executor.shard(1), 0, b.size(), 64,
                      [&](std::size_t cb, std::size_t ce) {
                          for (std::size_t i = cb; i < ce; ++i)
                              b[i] = static_cast<int>(2 * i);
                      });
    ta.join();
    for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i], static_cast<int>(i));
        ASSERT_EQ(b[i], static_cast<int>(2 * i));
    }
}

// ------------------------------------------------------- ShardedServe

/** Blocking-path baseline for one cloud (sequential pipeline). */
BatchResult
blockingBaseline(const data::PointCloud &cloud,
                 const BatchRequest &request)
{
    PipelineOptions options;
    options.num_threads = 1;
    const FractalCloudPipeline pipeline(cloud, options);
    BatchResult out;
    out.sampled = pipeline.sample(request.sample_rate);
    out.grouped =
        pipeline.group(out.sampled, request.radius, request.neighbors);
    out.gathered = pipeline.gather(out.sampled, out.grouped);
    out.partition_stats = pipeline.partition().stats;
    out.num_blocks = pipeline.tree().leaves().size();
    return out;
}

void
expectResultsIdentical(const BatchResult &a, const BatchResult &b)
{
    EXPECT_EQ(a.sampled.indices, b.sampled.indices);
    EXPECT_EQ(a.sampled.positions, b.sampled.positions);
    EXPECT_EQ(a.sampled.leaf_offsets, b.sampled.leaf_offsets);
    EXPECT_EQ(a.grouped.indices, b.grouped.indices);
    EXPECT_EQ(a.grouped.counts, b.grouped.counts);
    // Bit-exact float comparison is intentional: shard placement and
    // spill scheduling must not change a single operation.
    EXPECT_EQ(a.gathered.values, b.gathered.values);
    EXPECT_EQ(a.num_blocks, b.num_blocks);
    EXPECT_EQ(a.partition_stats.num_splits, b.partition_stats.num_splits);
}

TEST(ShardedServe, ResultsIdenticalAcrossShardAndThreadCounts)
{
    std::vector<data::PointCloud> clouds;
    for (std::uint64_t seed = 300; seed < 304; ++seed)
        clouds.push_back(data::makeS3disScene(1024, seed));

    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.25f;
    request.neighbors = 16;

    std::vector<BatchResult> baseline;
    for (const data::PointCloud &cloud : clouds)
        baseline.push_back(blockingBaseline(cloud, request));

    const Priority classes[] = {Priority::Interactive, Priority::Batch,
                                Priority::Background};
    for (const unsigned shards : {1u, 2u, 4u}) {
        for (const unsigned threads : {1u, 2u, 8u}) {
            SCOPED_TRACE("shards=" + std::to_string(shards) +
                         " threads=" + std::to_string(threads));
            ServeOptions options;
            options.pipeline.num_threads = threads;
            options.num_shards = shards;
            options.queue_capacity = clouds.size();
            AsyncPipeline server(options);
            EXPECT_EQ(server.numShards(), shards);
            EXPECT_EQ(server.numThreads(), threads);

            std::vector<Ticket> tickets;
            for (std::size_t i = 0; i < clouds.size(); ++i) {
                // Mix priority classes: the class may reorder
                // execution but never the per-request bytes.
                tickets.push_back(server.submit(
                    clouds[i], request, std::nullopt, classes[i % 3]));
            }
            for (std::size_t i = 0; i < tickets.size(); ++i) {
                const RequestOutcome outcome = server.wait(tickets[i]);
                ASSERT_EQ(outcome.state, RequestState::Done)
                    << outcome.error;
                EXPECT_LT(outcome.shard, shards);
                EXPECT_EQ(outcome.priority, classes[i % 3]);
                expectResultsIdentical(outcome.result, baseline[i]);
            }
        }
    }
}

TEST(ShardedServe, PlacementKeyPinsRequestsToOneShard)
{
    ServeOptions options;
    options.pipeline.num_threads = 1;
    options.num_shards = 4;
    options.queue_capacity = 16;
    AsyncPipeline server(options);

    const data::PointCloud cloud = data::makeS3disScene(512, 310);
    constexpr std::uint64_t kSessionKey = 0xfeedface;

    std::vector<Ticket> tickets;
    for (int i = 0; i < 6; ++i)
        tickets.push_back(server.submit(cloud, {}, std::nullopt,
                                        Priority::Interactive,
                                        kSessionKey));
    const unsigned expected =
        core::ShardMap(4).shardFor(kSessionKey);
    for (const Ticket t : tickets) {
        const RequestOutcome outcome = server.wait(t);
        ASSERT_EQ(outcome.state, RequestState::Done);
        EXPECT_EQ(outcome.shard, expected)
            << "equal placement keys must land on one shard";
    }
}

TEST(ShardedServe, CrossShardSpillBorrowsIdleNeighbor)
{
    // 2 shards x 2 threads at the scheduler level. Shard 0 is
    // saturated (3 requests in flight >= 2 threads) while shard 1 is
    // fully idle: the acquired request must borrow shard 1's pool
    // for its block items.
    Scheduler scheduler(/*queue_capacity=*/16, /*num_threads=*/2,
                        /*work_conserving=*/true, /*num_shards=*/2);
    const core::ShardMap map(2);
    const std::uint64_t key0 = keyOnShard(map, 0);
    const auto cloud = sharedScene(64, 311);

    std::vector<Ticket> tickets;
    for (int i = 0; i < 3; ++i)
        tickets.push_back(*scheduler.trySubmit(
            cloud, {}, std::nullopt, Priority::Interactive, key0));
    EXPECT_EQ(scheduler.queuedCount(0), 3u);
    EXPECT_EQ(scheduler.queuedCount(1), 0u);

    const auto job = scheduler.acquire(0);
    ASSERT_TRUE(job);
    EXPECT_EQ(job->shard, 0u);
    EXPECT_TRUE(job->spill) << "idle neighbor shard must be borrowed";
    EXPECT_EQ(job->spill_shard, 1);

    // Drain the rest: with 2 still in flight on shard 0 (== its
    // thread count) the second request keeps borrowing shard 1; the
    // last one, alone on its shard, spills to the home pool.
    scheduler.complete(job->id, BatchResult{});
    const auto second = scheduler.acquire(0);
    ASSERT_TRUE(second);
    EXPECT_EQ(second->spill_shard, 1);
    scheduler.complete(second->id, BatchResult{});
    const auto third = scheduler.acquire(0);
    ASSERT_TRUE(third);
    EXPECT_EQ(third->spill_shard, 0);
    scheduler.complete(third->id, BatchResult{});
    for (const Ticket t : tickets)
        EXPECT_TRUE(scheduler.wait(t).spilled);
}

TEST(ShardedServe, RunBatchUnchangedByShardedRuntime)
{
    // The blocking wrapper (now defined in serve/run_batch.cc) keeps
    // its exact semantics: output order == input order, results
    // bit-identical to sequential pipelines.
    std::vector<data::PointCloud> clouds;
    for (std::uint64_t seed = 320; seed < 323; ++seed)
        clouds.push_back(data::makeS3disScene(768, seed));
    BatchRequest request;
    request.neighbors = 16;

    PipelineOptions options;
    options.num_threads = 2;
    const std::vector<BatchResult> batch =
        FractalCloudPipeline::runBatch(clouds, options, request);
    ASSERT_EQ(batch.size(), clouds.size());
    for (std::size_t i = 0; i < clouds.size(); ++i)
        expectResultsIdentical(batch[i],
                               blockingBaseline(clouds[i], request));
}

// -------------------------------------------------- PriorityScheduling

TEST(PriorityScheduling, BackloggedClassesShareByWeight)
{
    // Single shard, all three classes backlogged. The aging credits
    // must interleave classes roughly 8:4:1 — and strictly FIFO
    // within each class.
    Scheduler scheduler(/*queue_capacity=*/64, /*num_threads=*/1,
                        /*work_conserving=*/false);
    const auto cloud = sharedScene(64, 330);

    std::map<std::uint64_t, Priority> submitted;
    for (int i = 0; i < 8; ++i) {
        for (const Priority p :
             {Priority::Interactive, Priority::Batch,
              Priority::Background}) {
            const auto t =
                scheduler.trySubmit(cloud, {}, std::nullopt, p);
            ASSERT_TRUE(t);
            submitted[t->id] = p;
        }
    }

    std::vector<Priority> order;
    std::map<Priority, std::vector<std::uint64_t>> per_class_ids;
    for (std::size_t i = 0; i < submitted.size(); ++i) {
        const auto job = scheduler.acquire(0);
        ASSERT_TRUE(job);
        const Priority p = submitted.at(job->id);
        order.push_back(p);
        per_class_ids[p].push_back(job->id);
        scheduler.complete(job->id, BatchResult{});
    }

    // FIFO within each class.
    for (const auto &[p, ids] : per_class_ids) {
        EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()))
            << "class " << serve::priorityName(p)
            << " must pop in admission order";
        EXPECT_EQ(ids.size(), 8u);
    }

    // The first pop goes to the most interactive class, and while
    // all classes are backlogged (first 14 pops: Background still
    // has >= 1 queued afterwards), Interactive must lead Batch must
    // lead Background in pop counts.
    EXPECT_EQ(order.front(), Priority::Interactive);
    std::map<Priority, int> counts;
    for (std::size_t i = 0; i < 14; ++i)
        ++counts[order[i]];
    EXPECT_GT(counts[Priority::Interactive], counts[Priority::Batch]);
    EXPECT_GE(counts[Priority::Batch], counts[Priority::Background]);
    EXPECT_GE(counts[Priority::Background], 1)
        << "aging must pull Background forward under backlog";

    for (const auto &[id, p] : submitted)
        EXPECT_EQ(scheduler.wait(Ticket{id}).priority, p);
}

TEST(PriorityScheduling, BackgroundNotStarvedUnderInteractiveLoad)
{
    // One worker; the first request parks at its Started boundary
    // while one Background and 20 Interactive requests queue behind
    // it. Under 8:1 weighted aging the Background request must start
    // within ~9 pops — never after the whole Interactive backlog.
    ServeOptions options;
    options.pipeline.num_threads = 1;
    options.queue_capacity = 32;
    StageGate gate;
    std::mutex order_mutex;
    std::vector<std::uint64_t> started_order;
    options.stage_observer = [&](Ticket t, Stage stage) {
        if (stage != Stage::Started)
            return;
        {
            std::lock_guard<std::mutex> lock(order_mutex);
            started_order.push_back(t.id);
        }
        if (t.id == 1)
            gate.arriveAndWait();
    };
    AsyncPipeline server(options);

    const data::PointCloud cloud = data::makeS3disScene(256, 331);
    const Ticket first = server.submit(cloud, {});
    gate.awaitReached();

    const Ticket background = server.submit(
        cloud, {}, std::nullopt, Priority::Background);
    std::vector<Ticket> interactive;
    for (int i = 0; i < 20; ++i)
        interactive.push_back(server.submit(cloud, {}, std::nullopt,
                                            Priority::Interactive));
    gate.release();

    EXPECT_EQ(server.wait(first).state, RequestState::Done);
    const RequestOutcome bg = server.wait(background);
    EXPECT_EQ(bg.state, RequestState::Done);
    EXPECT_EQ(bg.priority, Priority::Background);
    std::size_t done_after_bg = 0;
    for (const Ticket t : interactive) {
        const RequestOutcome outcome = server.wait(t);
        EXPECT_EQ(outcome.state, RequestState::Done);
        if (outcome.timing.started > bg.timing.started)
            ++done_after_bg;
    }

    // The whole backlog was queued before the gate released, so the
    // single worker popped it in one deterministic aging sequence:
    // 8 Interactive pops (credit 8 each) before Background's credit
    // (1/pop) exceeds them at pop 9.
    std::lock_guard<std::mutex> lock(order_mutex);
    const auto it = std::find(started_order.begin(),
                              started_order.end(), background.id);
    ASSERT_NE(it, started_order.end());
    const std::size_t position =
        static_cast<std::size_t>(it - started_order.begin());
    EXPECT_GE(position, 2u) << "weights must favor Interactive first";
    EXPECT_LE(position, 10u) << "aging must bound Background's wait";
    EXPECT_GE(done_after_bg, 10u)
        << "most of the Interactive backlog should start after the "
           "aged Background request";
}

TEST(PriorityScheduling, CancelQueuedBackgroundTickets)
{
    // Queued low-priority tickets are retired unrun when cancelled,
    // even while higher classes keep the shard busy.
    ServeOptions options;
    options.pipeline.num_threads = 1;
    options.queue_capacity = 16;
    StageGate gate;
    std::atomic<int> background_started{0};
    options.stage_observer = [&](Ticket t, Stage stage) {
        if (t.id == 1 && stage == Stage::Started)
            gate.arriveAndWait();
        if (t.id > 1 && stage == Stage::Started)
            background_started.fetch_add(1);
    };
    AsyncPipeline server(options);

    const data::PointCloud cloud = data::makeS3disScene(256, 332);
    const Ticket running = server.submit(cloud, {});
    gate.awaitReached();

    std::vector<Ticket> background;
    for (int i = 0; i < 4; ++i)
        background.push_back(server.submit(
            cloud, {}, std::nullopt, Priority::Background));
    for (const Ticket t : background)
        EXPECT_TRUE(server.cancel(t));
    gate.release();

    EXPECT_EQ(server.wait(running).state, RequestState::Done);
    for (const Ticket t : background) {
        const RequestOutcome outcome = server.wait(t);
        EXPECT_EQ(outcome.state, RequestState::Cancelled);
        EXPECT_TRUE(outcome.result.sampled.indices.empty());
    }
    EXPECT_EQ(background_started.load(), 0)
        << "cancelled queued Background tickets must never run";
    EXPECT_EQ(server.liveRecordCount(), 0u);
}

// ------------------------------------------------------------- WaitFor

TEST(WaitFor, TimesOutWhileQueuedWithoutCancelling)
{
    ServeOptions options;
    options.pipeline.num_threads = 1;
    options.queue_capacity = 4;
    StageGate gate;
    options.stage_observer = [&](Ticket t, Stage stage) {
        if (t.id == 1 && stage == Stage::Started)
            gate.arriveAndWait();
    };
    AsyncPipeline server(options);

    const data::PointCloud cloud = data::makeS3disScene(512, 340);
    const Ticket running = server.submit(cloud, {});
    gate.awaitReached();
    const Ticket queued = server.submit(cloud, {});

    // Bounded wait on queued work: expires without consuming the
    // ticket or cancelling the request.
    const auto blocked =
        server.waitFor(queued, std::chrono::milliseconds(50));
    EXPECT_FALSE(blocked.has_value());
    EXPECT_EQ(server.state(queued), RequestState::Queued);

    gate.release();
    const auto outcome =
        server.waitFor(queued, std::chrono::seconds(60));
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->state, RequestState::Done);
    EXPECT_EQ(server.wait(running).state, RequestState::Done);
}

TEST(WaitFor, TimesOutWhileRunningThenCollects)
{
    ServeOptions options;
    options.pipeline.num_threads = 1;
    StageGate gate;
    options.stage_observer = [&](Ticket t, Stage stage) {
        if (t.id == 1 && stage == Stage::Partitioned)
            gate.arriveAndWait();
    };
    AsyncPipeline server(options);

    const Ticket t = server.submit(data::makeS3disScene(512, 341), {});
    gate.awaitReached();
    EXPECT_EQ(server.state(t), RequestState::Running);

    const auto blocked =
        server.waitFor(t, std::chrono::milliseconds(50));
    EXPECT_FALSE(blocked.has_value());
    EXPECT_EQ(server.state(t), RequestState::Running)
        << "a timed-out waitFor must not cancel the request";

    gate.release();
    const auto outcome = server.waitFor(t, std::chrono::seconds(60));
    ASSERT_TRUE(outcome.has_value());
    EXPECT_EQ(outcome->state, RequestState::Done);
    EXPECT_FALSE(outcome->result.sampled.indices.empty());
}

TEST(WaitFor, ReturnsImmediatelyOnTerminalTickets)
{
    ServeOptions options;
    options.pipeline.num_threads = 1;
    AsyncPipeline server(options);
    const Ticket t = server.submit(data::makeS3disScene(512, 342), {});
    while (!server.poll(t))
        std::this_thread::yield();
    const auto outcome =
        server.waitFor(t, std::chrono::milliseconds(0));
    ASSERT_TRUE(outcome.has_value()) << "terminal outcome must be "
                                        "returned even with a zero "
                                        "timeout";
    EXPECT_EQ(outcome->state, RequestState::Done);
    EXPECT_EQ(server.liveRecordCount(), 0u);
}

} // namespace
} // namespace fc
