/**
 * @file
 * Unit tests for neighbor searching (ball query / KNN, global and
 * block-wise).
 */

#include <gtest/gtest.h>
#include <unordered_set>

#include "common/rng.h"
#include "dataset/s3dis.h"
#include "ops/fps.h"
#include "ops/neighbor.h"
#include "ops/quality.h"
#include "partition/fractal.h"

namespace fc::ops {
namespace {

data::PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    Pcg32 rng(seed);
    data::PointCloud cloud;
    for (std::size_t i = 0; i < n; ++i)
        cloud.addPoint({rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)});
    return cloud;
}

TEST(BallQuery, AllNeighborsWithinRadius)
{
    const data::PointCloud cloud = randomCloud(400, 1);
    const std::vector<PointIdx> centers{0, 5, 100, 399};
    const float radius = 0.4f;
    const NeighborResult r = ballQuery(cloud, centers, radius, 16);
    ASSERT_EQ(r.num_centers, 4u);
    for (std::size_t c = 0; c < centers.size(); ++c) {
        for (std::uint32_t j = 0; j < r.counts[c]; ++j) {
            const float d = distance(cloud[centers[c]],
                                     cloud[r.neighbor(c, j)]);
            EXPECT_LE(d, radius + 1e-5f);
        }
    }
}

TEST(BallQuery, CenterFindsItself)
{
    const data::PointCloud cloud = randomCloud(100, 2);
    const NeighborResult r = ballQuery(cloud, {42}, 0.1f, 8);
    bool found_self = false;
    for (std::uint32_t j = 0; j < r.counts[0]; ++j)
        found_self |= r.neighbor(0, j) == 42u;
    EXPECT_TRUE(found_self);
}

TEST(BallQuery, PaddingRepeatsFirstNeighbor)
{
    data::PointCloud cloud;
    cloud.addPoint({0, 0, 0});
    cloud.addPoint({0.01f, 0, 0});
    cloud.addPoint({10, 10, 10}); // out of radius
    const NeighborResult r = ballQuery(cloud, {0}, 0.5f, 5);
    EXPECT_EQ(r.counts[0], 2u);
    for (std::size_t j = 2; j < 5; ++j)
        EXPECT_EQ(r.neighbor(0, j), r.neighbor(0, 0));
}

TEST(BallQuery, StopsAtK)
{
    const data::PointCloud cloud = randomCloud(1000, 3);
    const NeighborResult r = ballQuery(cloud, {0}, 10.0f, 4);
    EXPECT_EQ(r.counts[0], 4u);
    EXPECT_EQ(r.indices.size(), 4u);
}

TEST(Knn, FindsExactNearest)
{
    const data::PointCloud cloud = randomCloud(300, 4);
    std::vector<PointIdx> candidates;
    for (PointIdx i = 0; i < 300; ++i)
        candidates.push_back(i);
    const std::vector<Vec3> queries{cloud[17], {0.5f, -0.2f, 0.9f}};
    const NeighborResult r = knnSearch(cloud, candidates, queries, 3);

    for (std::size_t q = 0; q < queries.size(); ++q) {
        // Brute-force reference.
        std::vector<std::pair<float, PointIdx>> all;
        for (const PointIdx c : candidates)
            all.push_back({distance2(queries[q], cloud[c]), c});
        std::sort(all.begin(), all.end());
        for (std::size_t j = 0; j < 3; ++j)
            EXPECT_FLOAT_EQ(distance2(queries[q],
                                      cloud[r.neighbor(q, j)]),
                            all[j].first);
    }
}

TEST(Knn, ResultsSortedByDistance)
{
    const data::PointCloud cloud = randomCloud(200, 5);
    std::vector<PointIdx> candidates;
    for (PointIdx i = 0; i < 200; ++i)
        candidates.push_back(i);
    const std::vector<Vec3> queries{{0, 0, 0}};
    const NeighborResult r = knnSearch(cloud, candidates, queries, 8);
    for (std::size_t j = 1; j < 8; ++j) {
        EXPECT_LE(distance2(queries[0], cloud[r.neighbor(0, j - 1)]),
                  distance2(queries[0], cloud[r.neighbor(0, j)]) +
                      1e-6f);
    }
}

TEST(Knn, FewerCandidatesThanK)
{
    const data::PointCloud cloud = randomCloud(10, 6);
    const std::vector<PointIdx> candidates{1, 2};
    const std::vector<Vec3> queries{{0, 0, 0}};
    const NeighborResult r = knnSearch(cloud, candidates, queries, 5);
    EXPECT_EQ(r.counts[0], 2u);
    // Padded with the nearest.
    EXPECT_EQ(r.neighbor(0, 4), r.neighbor(0, 0));
}

struct BlockSetup
{
    data::PointCloud scene;
    part::PartitionResult part;
    BlockSampleResult sampled;
};

BlockSetup
makeBlockSetup(std::size_t n, std::uint64_t seed, std::uint32_t th,
               double rate)
{
    BlockSetup s;
    s.scene = data::makeS3disScene(n, seed);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = th;
    s.part = p.partition(s.scene, config);
    s.sampled = blockFarthestPointSample(s.scene, s.part.tree, rate);
    return s;
}

TEST(BlockBallQuery, NeighborsWithinRadiusAndSpace)
{
    const BlockSetup s = makeBlockSetup(4096, 7, 256, 0.25);
    const float radius = 0.5f;
    const NeighborResult r =
        blockBallQuery(s.scene, s.part.tree, s.sampled, radius, 16);
    ASSERT_EQ(r.num_centers, s.sampled.indices.size());
    for (std::size_t c = 0; c < r.num_centers; ++c) {
        for (std::uint32_t j = 0; j < r.counts[c]; ++j) {
            EXPECT_LE(distance(s.scene[s.sampled.indices[c]],
                               s.scene[r.neighbor(c, j)]),
                      radius + 1e-5f);
        }
    }
}

TEST(BlockBallQuery, HighRecallVsGlobal)
{
    const BlockSetup s = makeBlockSetup(4096, 8, 256, 0.25);
    const float radius = 0.3f;
    const NeighborResult blocked =
        blockBallQuery(s.scene, s.part.tree, s.sampled, radius, 16);
    const NeighborResult global =
        ballQuery(s.scene, s.sampled.indices, radius, 16);
    // Global BQ truncates at k in scan order, so sets differ; but
    // counts should broadly agree and recall should be high (the
    // paper reports <0.6% accuracy impact after retraining).
    const double recall = neighborRecall(global, blocked);
    EXPECT_GT(recall, 0.55) << "block-wise grouping lost too many "
                               "of the global neighbors";
}

TEST(BlockBallQuery, SearchSpaceIsParentRange)
{
    const BlockSetup s = makeBlockSetup(2048, 9, 128, 0.2);
    const NeighborResult r =
        blockBallQuery(s.scene, s.part.tree, s.sampled, 10.0f, 4);
    // With a huge radius every neighbor must still come from the
    // center's search space (parent block).
    std::vector<std::uint32_t> inverse(s.part.tree.order().size());
    for (std::uint32_t pos = 0; pos < inverse.size(); ++pos)
        inverse[s.part.tree.order()[pos]] = pos;

    const auto &leaves = s.part.tree.leaves();
    for (std::size_t li = 0; li < leaves.size(); ++li) {
        const auto space = s.part.tree.node(
            s.part.tree.searchSpaceNode(leaves[li]));
        for (std::uint32_t c = s.sampled.leaf_offsets[li];
             c < s.sampled.leaf_offsets[li + 1]; ++c) {
            for (std::uint32_t j = 0; j < r.counts[c]; ++j) {
                const std::uint32_t pos =
                    inverse[r.neighbor(c, j)];
                EXPECT_GE(pos, space.begin);
                EXPECT_LT(pos, space.end);
            }
        }
    }
}

TEST(BlockKnn, RowsAlignedToOriginalOrder)
{
    const BlockSetup s = makeBlockSetup(1024, 10, 128, 0.25);
    const NeighborResult r =
        blockKnnToSamples(s.scene, s.part.tree, s.sampled, 3);
    ASSERT_EQ(r.num_centers, s.scene.size());
    // A sampled point's nearest sample is itself.
    for (std::size_t i = 0; i < s.sampled.indices.size(); ++i) {
        const PointIdx idx = s.sampled.indices[i];
        EXPECT_EQ(r.neighbor(idx, 0), idx);
    }
}

TEST(BlockKnn, NeighborsAreSamples)
{
    const BlockSetup s = makeBlockSetup(1024, 11, 128, 0.25);
    const NeighborResult r =
        blockKnnToSamples(s.scene, s.part.tree, s.sampled, 3);
    std::unordered_set<PointIdx> samples(s.sampled.indices.begin(),
                                         s.sampled.indices.end());
    for (std::size_t i = 0; i < r.num_centers; ++i)
        for (std::size_t j = 0; j < r.k; ++j)
            EXPECT_TRUE(samples.count(r.neighbor(i, j)));
}

TEST(BlockOps, WorkFarBelowGlobal)
{
    const BlockSetup s = makeBlockSetup(8192, 12, 256, 0.25);
    const NeighborResult blocked =
        blockBallQuery(s.scene, s.part.tree, s.sampled, 0.3f, 16);
    const NeighborResult global =
        ballQuery(s.scene, s.sampled.indices, 0.3f, 16);
    EXPECT_LT(blocked.stats.distance_computations * 4,
              global.stats.distance_computations);
}

} // namespace
} // namespace fc::ops
