/**
 * @file
 * Tests for the KD-tree, uniform, octree, and none partitioners, plus
 * the cross-method comparisons the paper's Fig. 3 is built on.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/s3dis.h"
#include "partition/partitioner.h"

namespace fc::part {
namespace {

data::PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    Pcg32 rng(seed);
    data::PointCloud cloud;
    for (std::size_t i = 0; i < n; ++i)
        cloud.addPoint({rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)});
    return cloud;
}

TEST(KdTree, StrictlyBalancedLeaves)
{
    const data::PointCloud scene = data::makeS3disScene(8192, 1);
    const auto p = makePartitioner(Method::KdTree);
    PartitionConfig config;
    config.threshold = 256;
    const PartitionResult result = p->partition(scene, config);
    result.tree.validate();
    // Median splits keep leaf sizes within a factor 2 overall.
    EXPECT_LE(result.tree.maxLeafSize(), 256u);
    EXPECT_GE(result.tree.minLeafSize(), 128u);
    EXPECT_LT(result.tree.leafSizeCv(), 0.25);
}

TEST(KdTree, SortCountMatchesFig5)
{
    // Fig. 5: 1K points at BS=64 costs 15 sorts (internal nodes of a
    // 16-leaf balanced tree).
    const data::PointCloud cloud = randomCloud(1024, 2);
    const auto p = makePartitioner(Method::KdTree);
    PartitionConfig config;
    config.threshold = 64;
    const PartitionResult result = p->partition(cloud, config);
    EXPECT_EQ(result.stats.num_sorts, 15u);
    EXPECT_EQ(result.tree.leaves().size(), 16u);
}

TEST(KdTree, LargeScaleSortCount)
{
    // Fig. 5: 289K points at BS=256 costs 2047 sorts. Our synthetic
    // scene reproduces the same tree arithmetic: ceil to the next
    // power-of-two leaf count.
    const data::PointCloud scene = data::makeS3disScene(289000, 3);
    const auto p = makePartitioner(Method::KdTree);
    PartitionConfig config;
    config.threshold = 256;
    const PartitionResult result = p->partition(scene, config);
    EXPECT_EQ(result.stats.num_sorts, 2047u);
}

TEST(Uniform, FixedDepthAndImbalance)
{
    const data::PointCloud scene = data::makeS3disScene(8192, 4);
    const auto p = makePartitioner(Method::Uniform);
    PartitionConfig config;
    config.threshold = 256;
    const PartitionResult result = p->partition(scene, config);
    result.tree.validate();
    // 8192/256 = 32 blocks -> every leaf at depth 5 (some possibly
    // empty).
    EXPECT_EQ(result.tree.leaves().size(), 32u);
    for (const NodeIdx leaf : result.tree.leaves())
        EXPECT_EQ(result.tree.node(leaf).depth, 5u);
    // Space-uniform splits on a clustered scene overflow the
    // threshold somewhere.
    EXPECT_GT(result.tree.maxLeafSize(), 256u);
}

TEST(Uniform, SplitsAtSpaceMidpoints)
{
    const data::PointCloud cloud = randomCloud(512, 5);
    const auto p = makePartitioner(Method::Uniform);
    PartitionConfig config;
    config.threshold = 128;
    const PartitionResult result = p->partition(cloud, config);
    const Aabb box = cloud.bounds();
    const BlockNode &root = result.tree.node(0);
    ASSERT_FALSE(root.isLeaf());
    EXPECT_FLOAT_EQ(root.splitValue, box.midpoint(root.splitDim));
}

TEST(Octree, ThresholdRespectedWhereSplittable)
{
    const data::PointCloud scene = data::makeS3disScene(8192, 6);
    const auto p = makePartitioner(Method::Octree);
    PartitionConfig config;
    config.threshold = 256;
    const PartitionResult result = p->partition(scene, config);
    result.tree.validate();
    for (const NodeIdx leaf : result.tree.leaves())
        EXPECT_LE(result.tree.node(leaf).size(), 256u);
}

TEST(Octree, AdaptiveDepthVariesWithDensity)
{
    const data::PointCloud scene = data::makeS3disScene(16384, 7);
    const auto p = makePartitioner(Method::Octree);
    PartitionConfig config;
    config.threshold = 256;
    const PartitionResult result = p->partition(scene, config);
    std::uint16_t min_depth = 64, max_depth = 0;
    for (const NodeIdx leaf : result.tree.leaves()) {
        min_depth = std::min(min_depth, result.tree.node(leaf).depth);
        max_depth = std::max(max_depth, result.tree.node(leaf).depth);
    }
    EXPECT_GT(max_depth, min_depth)
        << "octree should subdivide dense regions deeper";
}

TEST(None, SingleBlock)
{
    const data::PointCloud cloud = randomCloud(100, 8);
    const auto p = makePartitioner(Method::None);
    const PartitionResult result = p->partition(cloud, {});
    result.tree.validate();
    EXPECT_EQ(result.tree.leaves().size(), 1u);
    EXPECT_EQ(result.tree.node(0).size(), 100u);
}

TEST(CrossMethod, BalanceOrderingMatchesFig3)
{
    // KD-tree (density-aware) is strictly balanced; Fractal is
    // moderately balanced; uniform is imbalanced. Paper Fig. 3.
    const data::PointCloud scene = data::makeS3disScene(16384, 9);
    PartitionConfig config;
    config.threshold = 256;
    const double cv_kd =
        makePartitioner(Method::KdTree)
            ->partition(scene, config)
            .tree.leafSizeCv();
    const double cv_fractal =
        makePartitioner(Method::Fractal)
            ->partition(scene, config)
            .tree.leafSizeCv();
    const double cv_uniform =
        makePartitioner(Method::Uniform)
            ->partition(scene, config)
            .tree.leafSizeCv();
    EXPECT_LT(cv_kd, cv_fractal);
    EXPECT_LT(cv_fractal, cv_uniform);
}

TEST(CrossMethod, WorkOrderingMatchesFig5)
{
    // KD-tree pays thousands of serial sorts; Fractal pays a handful
    // of parallel traversal passes.
    const data::PointCloud scene = data::makeS3disScene(65536, 10);
    PartitionConfig config;
    config.threshold = 256;
    const PartitionResult kd =
        makePartitioner(Method::KdTree)->partition(scene, config);
    const PartitionResult fractal =
        makePartitioner(Method::Fractal)->partition(scene, config);
    // At 64K/BS256 the KD tree needs 255 serial sorts vs ~11-15
    // fractal passes; the gap widens with n (2047 vs 11 at 289K,
    // Fig. 5 -- covered by KdTree.LargeScaleSortCount).
    EXPECT_GT(kd.stats.traversal_passes,
              10 * fractal.stats.traversal_passes);
    EXPECT_GT(kd.stats.sort_compares, 0u);
    EXPECT_EQ(fractal.stats.sort_compares, 0u);
}

TEST(MethodNames, AllDistinct)
{
    EXPECT_EQ(methodName(Method::None), "none");
    EXPECT_EQ(methodName(Method::Uniform), "uniform");
    EXPECT_EQ(methodName(Method::Octree), "octree");
    EXPECT_EQ(methodName(Method::KdTree), "kdtree");
    EXPECT_EQ(methodName(Method::Fractal), "fractal");
}

/** Property sweep across every method. */
class MethodSweep : public ::testing::TestWithParam<Method>
{};

TEST_P(MethodSweep, TreeInvariants)
{
    const data::PointCloud scene = data::makeS3disScene(4096, 11);
    PartitionConfig config;
    config.threshold = 128;
    const PartitionResult result =
        makePartitioner(GetParam())->partition(scene, config);
    result.tree.validate();
    std::uint64_t covered = 0;
    for (const NodeIdx leaf : result.tree.leaves())
        covered += result.tree.node(leaf).size();
    EXPECT_EQ(covered, scene.size());
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MethodSweep,
                         ::testing::Values(Method::None, Method::Uniform,
                                           Method::Octree,
                                           Method::KdTree,
                                           Method::Fractal));

} // namespace
} // namespace fc::part
