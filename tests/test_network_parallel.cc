/**
 * @file
 * Bit-identical determinism of pool-driven nn::Network::run against
 * the sequential path, across every point-op backend and BWS/BWG/BWI
 * toggle set the paper ablates. These suites also run under TSan in
 * CI (with the parallel-splitRange suites) to catch data races in the
 * nn path.
 */

#include <gtest/gtest.h>
#include <string>

#include "core/parallel.h"
#include "core/pipeline.h"
#include "dataset/s3dis.h"
#include "nn/network.h"

namespace fc::nn {
namespace {

using core::ThreadPool;

/** Thread counts every determinism test sweeps. */
const unsigned kThreadSweep[] = {1, 2, 8};

/**
 * A compact segmentation network: two abstraction stages, two
 * propagation stages, and a head — every pool-driven code path
 * (sampling, grouping, gathering, MLP, pooling, interpolation, head)
 * at a fraction of the Table I models' cost.
 */
ModelConfig
tinySegModel()
{
    ModelConfig config;
    config.name = "tiny-seg";
    config.long_name = "compact segmentation network (tests)";
    config.task = Task::SemanticSegmentation;
    config.sa.resize(2);
    config.sa[0] = {0.25, 0.2f, 16, {16, 16}};
    config.sa[1] = {0.25, 0.4f, 16, {32, 32}};
    config.fp.resize(2);
    config.fp[0].mlp = {32};
    config.fp[1].mlp = {16};
    config.head = {8};
    config.num_classes = 8;
    return config;
}

/** Classification variant of the same scale. */
ModelConfig
tinyClsModel()
{
    ModelConfig config = tinySegModel();
    config.name = "tiny-cls";
    config.long_name = "compact classification network (tests)";
    config.task = Task::Classification;
    config.fp.clear();
    config.head = {32, 8};
    return config;
}

void
expectResultsIdentical(const InferenceResult &a,
                       const InferenceResult &b)
{
    // Bit-exact float comparison is intentional: the parallel
    // schedule must not change a single operation.
    EXPECT_EQ(a.embedding.data(), b.embedding.data());
    EXPECT_EQ(a.point_features.data(), b.point_features.data());
    EXPECT_EQ(a.total_macs, b.total_macs);

    EXPECT_EQ(a.op_stats.distance_computations,
              b.op_stats.distance_computations);
    EXPECT_EQ(a.op_stats.points_visited, b.op_stats.points_visited);
    EXPECT_EQ(a.op_stats.iterations, b.op_stats.iterations);
    EXPECT_EQ(a.op_stats.skipped, b.op_stats.skipped);
    EXPECT_EQ(a.op_stats.bytes_gathered, b.op_stats.bytes_gathered);

    EXPECT_EQ(a.partition_stats.elements_traversed,
              b.partition_stats.elements_traversed);
    EXPECT_EQ(a.partition_stats.traversal_passes,
              b.partition_stats.traversal_passes);
    EXPECT_EQ(a.partition_stats.num_sorts,
              b.partition_stats.num_sorts);
    EXPECT_EQ(a.partition_stats.sort_compares,
              b.partition_stats.sort_compares);
    EXPECT_EQ(a.partition_stats.degenerate_retries,
              b.partition_stats.degenerate_retries);
    EXPECT_EQ(a.partition_stats.num_splits,
              b.partition_stats.num_splits);
}

/** The BWS/BWG/BWI toggle sets of the BPPO ablation (Fig. 18). */
struct ToggleSet
{
    const char *name;
    bool bws, bwg, bwi;
};

const ToggleSet kToggleSweep[] = {
    {"all", true, true, true},
    {"bws-only", true, false, false},
    {"bwg-only", false, true, false},
    {"bwi-only", false, false, true},
};

TEST(NetworkParallelDeterminism, RunMatchesSequentialAcrossBackends)
{
    const Network net(tinySegModel(), 11);
    const data::PointCloud scene = data::makeS3disScene(4096, 31);

    const part::Method methods[] = {
        part::Method::None, part::Method::Fractal,
        part::Method::KdTree, part::Method::Octree};

    for (const part::Method method : methods) {
        const bool blocks = method != part::Method::None;
        for (const ToggleSet &toggles : kToggleSweep) {
            if (!blocks && std::string(toggles.name) != "all")
                continue; // None ignores the toggles.
            SCOPED_TRACE(part::methodName(method) + " " + toggles.name);

            BackendOptions backend;
            backend.method = method;
            backend.threshold = 128;
            backend.block_sampling = toggles.bws;
            backend.block_grouping = toggles.bwg;
            backend.block_interpolation = toggles.bwi;

            backend.pool = nullptr;
            const InferenceResult sequential = net.run(scene, backend);

            for (const unsigned threads : kThreadSweep) {
                SCOPED_TRACE("threads=" + std::to_string(threads));
                ThreadPool pool(threads);
                backend.pool = &pool;
                const InferenceResult parallel =
                    net.run(scene, backend);
                expectResultsIdentical(sequential, parallel);
            }
        }
    }
}

TEST(NetworkParallelDeterminism, ClassificationHeadMatchesSequential)
{
    const Network net(tinyClsModel(), 13);
    const data::PointCloud scene = data::makeS3disScene(2048, 32);

    BackendOptions backend;
    backend.method = part::Method::Fractal;
    backend.threshold = 64;

    backend.pool = nullptr;
    const InferenceResult sequential = net.run(scene, backend);
    ASSERT_EQ(sequential.embedding.cols(), net.outputDim());

    for (const unsigned threads : kThreadSweep) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ThreadPool pool(threads);
        backend.pool = &pool;
        expectResultsIdentical(sequential, net.run(scene, backend));
    }
}

TEST(NetworkParallelDeterminism, PipelineInferUsesThePipelinePool)
{
    // FractalCloudPipeline::infer passes its pool into the network;
    // the result must match a sequential pipeline bit for bit.
    const Network net(tinySegModel(), 17);
    const data::PointCloud scene = data::makeS3disScene(4096, 33);

    PipelineOptions sequential;
    sequential.threshold = 128;
    sequential.num_threads = 1;
    const InferenceResult baseline =
        FractalCloudPipeline(scene, sequential).infer(net);

    // infer() reuses the pipeline's partition for SA stage 0; that
    // must be invisible next to a from-scratch run (stats included).
    {
        BackendOptions scratch;
        scratch.method = part::Method::Fractal;
        scratch.threshold = 128;
        expectResultsIdentical(baseline, net.run(scene, scratch));
    }

    for (const unsigned threads : kThreadSweep) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        PipelineOptions options = sequential;
        options.num_threads = threads;
        const InferenceResult parallel =
            FractalCloudPipeline(scene, options).infer(net);
        expectResultsIdentical(baseline, parallel);
    }
}

TEST(NetworkParallelDeterminism, ServedInferenceMatchesBlockingInfer)
{
    // The serving path: runBatch with BatchRequest::network runs the
    // end-to-end inference stage on the serve pool; every per-cloud
    // InferenceResult must equal the blocking pipeline's.
    const Network net(tinySegModel(), 19);
    std::vector<data::PointCloud> clouds;
    for (std::uint64_t seed = 40; seed < 43; ++seed)
        clouds.push_back(data::makeS3disScene(2048, seed));

    PipelineOptions options;
    options.threshold = 128;
    options.num_threads = 1;
    BatchRequest request;
    request.network = &net;

    std::vector<InferenceResult> baseline;
    for (const data::PointCloud &cloud : clouds)
        baseline.push_back(
            FractalCloudPipeline(cloud, options).infer(net));

    for (const unsigned threads : kThreadSweep) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        PipelineOptions threaded = options;
        threaded.num_threads = threads;
        const std::vector<BatchResult> batch =
            FractalCloudPipeline::runBatch(clouds, threaded, request);
        ASSERT_EQ(batch.size(), clouds.size());
        for (std::size_t i = 0; i < clouds.size(); ++i) {
            SCOPED_TRACE("cloud " + std::to_string(i));
            ASSERT_TRUE(batch[i].inference.has_value());
            expectResultsIdentical(baseline[i], *batch[i].inference);
        }
    }
}

} // namespace
} // namespace fc::nn
