/**
 * @file
 * Tests for the async serving frontend: Scheduler protocol (FIFO
 * admission, capacity, deadlines, cancellation, work-conserving
 * spill) and AsyncPipeline end-to-end behavior — submit/poll/wait
 * determinism against the blocking path at 1/2/8 threads, deadline
 * expiry, admission-queue rejection, cancellation mid-flight, and a
 * concurrent stress run (the CI TSan job executes this whole file).
 */

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <gtest/gtest.h>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "core/pipeline.h"
#include "dataset/s3dis.h"
#include "serve/async_pipeline.h"
#include "serve/scheduler.h"

namespace fc {
namespace {

using serve::AsyncPipeline;
using serve::RequestOutcome;
using serve::RequestState;
using serve::Scheduler;
using serve::ServeOptions;
using serve::Stage;
using serve::Ticket;

std::shared_ptr<const data::PointCloud>
sharedScene(std::size_t n, std::uint64_t seed)
{
    return std::make_shared<const data::PointCloud>(
        data::makeS3disScene(n, seed));
}

/** One-shot gate: a worker parks in arriveAndWait() until release(). */
struct StageGate
{
    std::mutex mutex;
    std::condition_variable cv;
    bool reached = false;
    bool released = false;

    void
    arriveAndWait()
    {
        std::unique_lock<std::mutex> lock(mutex);
        reached = true;
        cv.notify_all();
        cv.wait(lock, [this] { return released; });
    }

    void
    awaitReached()
    {
        std::unique_lock<std::mutex> lock(mutex);
        cv.wait(lock, [this] { return reached; });
    }

    void
    release()
    {
        std::lock_guard<std::mutex> lock(mutex);
        released = true;
        cv.notify_all();
    }
};

// ---------------------------------------------------------- Scheduler

TEST(Scheduler, FifoOrderAndCapacity)
{
    Scheduler scheduler(/*queue_capacity=*/2, /*num_threads=*/4);
    const auto cloud = sharedScene(64, 1);

    const auto a = scheduler.trySubmit(cloud, {}, std::nullopt);
    const auto b = scheduler.trySubmit(cloud, {}, std::nullopt);
    ASSERT_TRUE(a && b);
    EXPECT_NE(a->id, b->id);

    // Queue full: third submission is rejected, not queued.
    EXPECT_FALSE(scheduler.trySubmit(cloud, {}, std::nullopt));
    EXPECT_EQ(scheduler.queuedCount(), 2u);

    // acquire() pops in admission order.
    const auto job_a = scheduler.acquire();
    ASSERT_TRUE(job_a);
    EXPECT_EQ(job_a->id, a->id);
    EXPECT_EQ(scheduler.state(*a), RequestState::Running);
    EXPECT_EQ(scheduler.state(*b), RequestState::Queued);

    // A slot freed: admission works again.
    const auto c = scheduler.trySubmit(cloud, {}, std::nullopt);
    ASSERT_TRUE(c);

    scheduler.complete(job_a->id, BatchResult{});
    EXPECT_TRUE(scheduler.poll(*a));
    EXPECT_EQ(scheduler.wait(*a).state, RequestState::Done);

    const auto job_b = scheduler.acquire();
    const auto job_c = scheduler.acquire();
    ASSERT_TRUE(job_b && job_c);
    EXPECT_EQ(job_b->id, b->id);
    EXPECT_EQ(job_c->id, c->id);
    scheduler.complete(job_b->id, BatchResult{});
    scheduler.complete(job_c->id, BatchResult{});
}

TEST(Scheduler, AcquireRetiresCancelledHead)
{
    Scheduler scheduler(4, 2);
    const auto cloud = sharedScene(64, 2);
    const auto t = scheduler.trySubmit(cloud, {}, std::nullopt);
    ASSERT_TRUE(t);
    EXPECT_TRUE(scheduler.cancel(*t));
    EXPECT_FALSE(scheduler.acquire()); // retired unrun
    const RequestOutcome outcome = scheduler.wait(*t);
    EXPECT_EQ(outcome.state, RequestState::Cancelled);
    // A terminal request cannot be cancelled again (and the ticket is
    // consumed, so cancel reports false rather than asserting).
    EXPECT_FALSE(scheduler.cancel(*t));
}

TEST(Scheduler, AcquireExpiresLateHead)
{
    Scheduler scheduler(4, 2);
    const auto cloud = sharedScene(64, 3);
    // Deadline already in the past at submission: the request is
    // admitted (rejection is for queue pressure) but must never run.
    const auto t = scheduler.trySubmit(
        cloud, {}, std::chrono::milliseconds(-1));
    ASSERT_TRUE(t);
    EXPECT_FALSE(scheduler.acquire());
    EXPECT_EQ(scheduler.wait(*t).state, RequestState::Expired);
}

TEST(Scheduler, CheckpointHonorsCancelAndDeadline)
{
    Scheduler scheduler(4, 2);
    const auto cloud = sharedScene(64, 4);

    const auto a = scheduler.trySubmit(cloud, {}, std::nullopt);
    auto job = scheduler.acquire();
    ASSERT_TRUE(job);
    EXPECT_TRUE(scheduler.checkpoint(job->id));
    EXPECT_TRUE(scheduler.cancel(*a));
    EXPECT_FALSE(scheduler.checkpoint(job->id));
    EXPECT_EQ(scheduler.wait(*a).state, RequestState::Cancelled);

    const auto b = scheduler.trySubmit(
        cloud, {}, std::chrono::milliseconds(1));
    job = scheduler.acquire();
    // Either outcome is legal depending on timing, but after the
    // deadline passes the request must end Expired.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (job) {
        EXPECT_FALSE(scheduler.checkpoint(job->id));
    }
    EXPECT_EQ(scheduler.wait(*b).state, RequestState::Expired);
}

TEST(Scheduler, SpillPolicyIsWorkConserving)
{
    // 4 pool threads: requests spill only while in-flight (queued +
    // running) stays under 4.
    Scheduler scheduler(16, /*num_threads=*/4);
    const auto cloud = sharedScene(64, 5);
    std::vector<Ticket> tickets;
    for (int i = 0; i < 6; ++i)
        tickets.push_back(
            *scheduler.trySubmit(cloud, {}, std::nullopt));

    // 6, 5, 4 in flight: saturated, no spill.
    for (int i = 0; i < 3; ++i) {
        const auto job = scheduler.acquire();
        ASSERT_TRUE(job);
        EXPECT_FALSE(job->spill) << "request " << i;
        scheduler.complete(job->id, BatchResult{});
    }
    // 3, 2, 1 in flight: idle slots exist, spill.
    for (int i = 3; i < 6; ++i) {
        const auto job = scheduler.acquire();
        ASSERT_TRUE(job);
        EXPECT_TRUE(job->spill) << "request " << i;
        scheduler.complete(job->id, BatchResult{});
        EXPECT_TRUE(scheduler.wait(tickets[i]).spilled);
    }
}

TEST(Scheduler, CheckpointRefreshesSpillAfterPoolDrains)
{
    // All four requests acquire at saturation (no spill); once three
    // complete, the survivor's next checkpoint switches it to spill.
    Scheduler scheduler(16, /*num_threads=*/4);
    const auto cloud = sharedScene(64, 7);
    std::vector<Ticket> tickets;
    std::vector<Scheduler::Job> jobs;
    for (int i = 0; i < 4; ++i)
        tickets.push_back(
            *scheduler.trySubmit(cloud, {}, std::nullopt));
    for (int i = 0; i < 4; ++i) {
        jobs.push_back(*scheduler.acquire());
        EXPECT_FALSE(jobs.back().spill) << "request " << i;
    }
    for (int i = 0; i < 3; ++i)
        scheduler.complete(jobs[i].id, BatchResult{});

    bool spill = jobs[3].spill;
    ASSERT_TRUE(scheduler.checkpoint(jobs[3].id, &spill));
    EXPECT_TRUE(spill) << "1 in flight < 4 threads must now spill";
    scheduler.complete(jobs[3].id, BatchResult{});
    EXPECT_TRUE(scheduler.wait(tickets[3]).spilled);
}

TEST(Scheduler, WorkConservingOffNeverSpills)
{
    Scheduler scheduler(4, 8, /*work_conserving=*/false);
    const auto cloud = sharedScene(64, 6);
    const auto t = scheduler.trySubmit(cloud, {}, std::nullopt);
    const auto job = scheduler.acquire();
    ASSERT_TRUE(t && job);
    EXPECT_FALSE(job->spill); // 1 in flight < 8 threads, but pinned
    scheduler.complete(job->id, BatchResult{});
    EXPECT_FALSE(scheduler.wait(*t).spilled);
}

// ------------------------------------------------------ AsyncPipeline

/** Blocking-path baseline for one cloud (sequential pipeline). */
BatchResult
blockingBaseline(const data::PointCloud &cloud,
                 const BatchRequest &request)
{
    PipelineOptions options;
    options.num_threads = 1;
    const FractalCloudPipeline pipeline(cloud, options);
    BatchResult out;
    out.sampled = pipeline.sample(request.sample_rate);
    out.grouped =
        pipeline.group(out.sampled, request.radius, request.neighbors);
    out.gathered = pipeline.gather(out.sampled, out.grouped);
    out.partition_stats = pipeline.partition().stats;
    out.num_blocks = pipeline.tree().leaves().size();
    return out;
}

void
expectResultsIdentical(const BatchResult &a, const BatchResult &b)
{
    EXPECT_EQ(a.sampled.indices, b.sampled.indices);
    EXPECT_EQ(a.sampled.positions, b.sampled.positions);
    EXPECT_EQ(a.sampled.leaf_offsets, b.sampled.leaf_offsets);
    EXPECT_EQ(a.grouped.indices, b.grouped.indices);
    EXPECT_EQ(a.grouped.counts, b.grouped.counts);
    // Bit-exact float comparison is intentional: the async schedule
    // must not change a single operation.
    EXPECT_EQ(a.gathered.values, b.gathered.values);
    EXPECT_EQ(a.num_blocks, b.num_blocks);
    EXPECT_EQ(a.partition_stats.num_splits, b.partition_stats.num_splits);
}

TEST(AsyncPipeline, SubmitPollWaitMatchesBlockingPath)
{
    std::vector<data::PointCloud> clouds;
    for (std::uint64_t seed = 40; seed < 45; ++seed)
        clouds.push_back(data::makeS3disScene(2048, seed));

    BatchRequest request;
    request.sample_rate = 0.25;
    request.radius = 0.25f;
    request.neighbors = 16;

    std::vector<BatchResult> baseline;
    for (const data::PointCloud &cloud : clouds)
        baseline.push_back(blockingBaseline(cloud, request));

    for (const unsigned threads : {1u, 2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ServeOptions options;
        options.pipeline.num_threads = threads;
        options.queue_capacity = clouds.size();
        AsyncPipeline server(options);
        EXPECT_EQ(server.numThreads(), threads);

        std::vector<Ticket> tickets;
        for (const data::PointCloud &cloud : clouds)
            tickets.push_back(server.submit(cloud, request));

        // poll() never lies: once true, wait() returns immediately
        // with a terminal outcome.
        for (std::size_t i = 0; i < tickets.size(); ++i) {
            while (!server.poll(tickets[i]))
                std::this_thread::yield();
            const RequestOutcome outcome = server.wait(tickets[i]);
            ASSERT_EQ(outcome.state, RequestState::Done)
                << outcome.error;
            expectResultsIdentical(outcome.result, baseline[i]);
            EXPECT_GE(outcome.timing.started,
                      outcome.timing.submitted);
            EXPECT_GE(outcome.timing.finished, outcome.timing.started);
        }
    }
}

TEST(AsyncPipeline, RunBatchMatchesAsyncSubmission)
{
    std::vector<data::PointCloud> clouds;
    for (std::uint64_t seed = 50; seed < 54; ++seed)
        clouds.push_back(data::makeS3disScene(1024, seed));
    BatchRequest request;
    request.neighbors = 16;

    PipelineOptions options;
    options.num_threads = 2;
    const std::vector<BatchResult> batch =
        FractalCloudPipeline::runBatch(clouds, options, request);

    ServeOptions serve_options;
    serve_options.pipeline = options;
    AsyncPipeline server(serve_options);
    for (std::size_t i = 0; i < clouds.size(); ++i) {
        const RequestOutcome outcome =
            server.wait(server.submit(clouds[i], request));
        ASSERT_EQ(outcome.state, RequestState::Done);
        expectResultsIdentical(outcome.result, batch[i]);
    }
}

TEST(AsyncPipeline, DeadlineExpiryRetiresQueuedWork)
{
    // One worker: request A parks at its first stage boundary while B
    // (whose deadline is already past) waits behind it, so B's
    // executor provably runs after the deadline.
    ServeOptions options;
    options.pipeline.num_threads = 1;
    options.queue_capacity = 4;
    StageGate gate;
    std::atomic<std::uint64_t> first_id{0};
    options.stage_observer = [&](Ticket t, Stage stage) {
        if (stage == Stage::Started) {
            std::uint64_t expect = 0;
            first_id.compare_exchange_strong(expect, t.id);
        }
        if (t.id == first_id.load() && stage == Stage::Partitioned)
            gate.arriveAndWait();
    };
    AsyncPipeline server(options);

    const Ticket a = server.submit(data::makeS3disScene(512, 60));
    gate.awaitReached();
    const auto b = server.trySubmit(data::makeS3disScene(512, 61), {},
                                    std::chrono::milliseconds(-1));
    ASSERT_TRUE(b);
    EXPECT_EQ(server.state(*b), RequestState::Queued);
    gate.release();

    EXPECT_EQ(server.wait(*b).state, RequestState::Expired);
    EXPECT_EQ(server.wait(a).state, RequestState::Done);
}

TEST(AsyncPipeline, DeadlineExpiryInterruptsRunningWork)
{
    // The observer out-sleeps the request's own deadline at a stage
    // boundary, so the following checkpoint must retire it. (If a
    // slow machine already expired it at acquire, the state is the
    // same — Expired without a complete result.)
    constexpr auto kDeadline = std::chrono::milliseconds(50);
    ServeOptions options;
    options.pipeline.num_threads = 1;
    options.stage_observer = [&](Ticket, Stage stage) {
        if (stage == Stage::Partitioned)
            std::this_thread::sleep_for(3 * kDeadline);
    };
    AsyncPipeline server(options);
    const Ticket t =
        server.submit(data::makeS3disScene(512, 62), {}, kDeadline);
    EXPECT_EQ(server.wait(t).state, RequestState::Expired);
}

TEST(AsyncPipeline, AdmissionQueueRejectsWhenFull)
{
    ServeOptions options;
    options.pipeline.num_threads = 1;
    options.queue_capacity = 1;
    StageGate gate;
    options.stage_observer = [&](Ticket t, Stage stage) {
        if (t.id == 1 && stage == Stage::Started)
            gate.arriveAndWait();
    };
    AsyncPipeline server(options);

    const Ticket a = server.submit(data::makeS3disScene(512, 63));
    gate.awaitReached(); // A running, queue empty
    const auto b = server.trySubmit(data::makeS3disScene(512, 64));
    ASSERT_TRUE(b); // fills the only slot
    EXPECT_FALSE(server.trySubmit(data::makeS3disScene(512, 65)))
        << "third request must be rejected, not queued";
    gate.release();

    EXPECT_EQ(server.wait(a).state, RequestState::Done);
    EXPECT_EQ(server.wait(*b).state, RequestState::Done);
}

TEST(AsyncPipeline, CancelMidPartitionStopsTheRequest)
{
    ServeOptions options;
    options.pipeline.num_threads = 1;
    StageGate gate;
    options.stage_observer = [&](Ticket t, Stage stage) {
        if (t.id == 1 && stage == Stage::Partitioned)
            gate.arriveAndWait();
    };
    AsyncPipeline server(options);

    const Ticket t = server.submit(data::makeS3disScene(2048, 66));
    gate.awaitReached();
    EXPECT_EQ(server.state(t), RequestState::Running);
    EXPECT_TRUE(server.cancel(t));
    gate.release();

    const RequestOutcome outcome = server.wait(t);
    EXPECT_EQ(outcome.state, RequestState::Cancelled);
    EXPECT_TRUE(outcome.result.sampled.indices.empty());
}

TEST(AsyncPipeline, CancelQueuedRequestNeverRuns)
{
    ServeOptions options;
    options.pipeline.num_threads = 1;
    StageGate gate;
    std::atomic<bool> second_started{false};
    options.stage_observer = [&](Ticket t, Stage stage) {
        if (t.id == 1 && stage == Stage::Started)
            gate.arriveAndWait();
        if (t.id == 2 && stage == Stage::Started)
            second_started.store(true);
    };
    AsyncPipeline server(options);

    const Ticket a = server.submit(data::makeS3disScene(512, 67));
    gate.awaitReached();
    const Ticket b = server.submit(data::makeS3disScene(512, 68));
    EXPECT_TRUE(server.cancel(b));
    gate.release();

    EXPECT_EQ(server.wait(b).state, RequestState::Cancelled);
    EXPECT_EQ(server.wait(a).state, RequestState::Done);
    EXPECT_FALSE(second_started.load())
        << "a cancelled queued request must be retired unrun";
}

TEST(AsyncPipeline, SingleRequestSpillsOnAMultiThreadPool)
{
    const data::PointCloud cloud = data::makeS3disScene(2048, 69);
    BatchRequest request;
    request.neighbors = 16;
    const BatchResult baseline = blockingBaseline(cloud, request);

    ServeOptions options;
    options.pipeline.num_threads = 4;
    {
        AsyncPipeline server(options);
        const RequestOutcome outcome =
            server.wait(server.submit(cloud, request));
        ASSERT_EQ(outcome.state, RequestState::Done);
        EXPECT_TRUE(outcome.spilled)
            << "1 request in flight < 4 threads must spill";
        expectResultsIdentical(outcome.result, baseline);
    }
    options.work_conserving = false;
    {
        AsyncPipeline server(options);
        const RequestOutcome outcome =
            server.wait(server.submit(cloud, request));
        ASSERT_EQ(outcome.state, RequestState::Done);
        EXPECT_FALSE(outcome.spilled);
        expectResultsIdentical(outcome.result, baseline);
    }
}

TEST(AsyncPipeline, DiscardReclaimsAbandonedTickets)
{
    ServeOptions options;
    options.pipeline.num_threads = 1;
    StageGate gate;
    options.stage_observer = [&](Ticket t, Stage stage) {
        if (t.id == 1 && stage == Stage::Started)
            gate.arriveAndWait();
    };
    AsyncPipeline server(options);

    const Ticket a = server.submit(data::makeS3disScene(512, 73));
    gate.awaitReached();
    const Ticket b = server.submit(data::makeS3disScene(512, 74));
    EXPECT_EQ(server.liveRecordCount(), 2u);

    // Fire-and-forget: B's record is reclaimed at retirement (it is
    // also flagged for cancellation, so it retires unrun), A's the
    // moment discard sees its terminal state.
    server.discard(b);
    server.discard(b); // idempotent
    gate.release();
    const RequestOutcome outcome = server.wait(a);
    EXPECT_EQ(outcome.state, RequestState::Done);
    while (server.liveRecordCount() != 0)
        std::this_thread::yield();
    server.discard(a); // consumed tickets are safe to discard
}

TEST(AsyncPipeline, FailedRequestCarriesTheException)
{
    ServeOptions options;
    options.pipeline.num_threads = 1;
    options.stage_observer = [](Ticket, Stage stage) {
        if (stage == Stage::Sampled)
            throw std::runtime_error("observer boom");
    };
    AsyncPipeline server(options);
    const RequestOutcome outcome =
        server.wait(server.submit(data::makeS3disScene(512, 72)));
    EXPECT_EQ(outcome.state, RequestState::Failed);
    EXPECT_EQ(outcome.error, "observer boom");
    ASSERT_TRUE(outcome.exception != nullptr);
    EXPECT_THROW(std::rethrow_exception(outcome.exception),
                 std::runtime_error);
}

TEST(AsyncPipeline, DestructorDrainsQueuedAndRunningWork)
{
    StageGate gate;
    {
        ServeOptions options;
        options.pipeline.num_threads = 1;
        options.stage_observer = [&](Ticket t, Stage stage) {
            if (t.id == 1 && stage == Stage::Started)
                gate.arriveAndWait();
        };
        AsyncPipeline server(options);
        server.submit(data::makeS3disScene(512, 70));
        gate.awaitReached();
        // Leave one request queued behind the gated one; the
        // destructor must cancel it and drain without hanging.
        server.submit(data::makeS3disScene(512, 71));
        gate.release();
    }
    SUCCEED();
}

TEST(AsyncPipeline, StressConcurrentSubmitPollCancel)
{
    constexpr int kSubmitters = 3;
    constexpr int kPerSubmitter = 8;
    constexpr std::size_t kPoints = 512;

    BatchRequest request;
    request.neighbors = 8;

    // Baselines for every seed, computed up front (blocking path).
    std::vector<BatchResult> baseline;
    for (int i = 0; i < kSubmitters * kPerSubmitter; ++i)
        baseline.push_back(blockingBaseline(
            data::makeS3disScene(kPoints, 80 + i), request));

    ServeOptions options;
    options.pipeline.num_threads = 4;
    options.queue_capacity = kSubmitters * kPerSubmitter;
    AsyncPipeline server(options);

    std::atomic<int> done{0};
    std::atomic<int> cancelled{0};
    std::vector<std::thread> submitters;
    for (int s = 0; s < kSubmitters; ++s) {
        submitters.emplace_back([&, s] {
            for (int i = 0; i < kPerSubmitter; ++i) {
                const int idx = s * kPerSubmitter + i;
                const Ticket ticket = server.submit(
                    data::makeS3disScene(kPoints, 80 + idx), request);
                if (idx % 3 == 0)
                    server.cancel(ticket);
                const RequestOutcome outcome = server.wait(ticket);
                if (outcome.state == RequestState::Done) {
                    done.fetch_add(1);
                    expectResultsIdentical(outcome.result,
                                           baseline[idx]);
                } else {
                    EXPECT_EQ(outcome.state, RequestState::Cancelled);
                    cancelled.fetch_add(1);
                }
            }
        });
    }
    for (std::thread &t : submitters)
        t.join();
    EXPECT_EQ(done.load() + cancelled.load(),
              kSubmitters * kPerSubmitter);
    EXPECT_GT(done.load(), 0);
}

} // namespace
} // namespace fc
