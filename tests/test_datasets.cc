/**
 * @file
 * Tests for the synthetic dataset generators (ModelNet40-, ShapeNet-,
 * S3DIS-like), checking the statistical structure the substitution
 * argument (DESIGN.md §4.1) relies on.
 */

#include <algorithm>
#include <gtest/gtest.h>

#include "dataset/modelnet.h"
#include "dataset/s3dis.h"
#include "dataset/shapenet.h"
#include "dataset/synthetic.h"

namespace fc::data {
namespace {

TEST(ModelNet, ShapeAndDeterminism)
{
    const PointCloud a = makeModelNetObject(7, 1024, 3);
    const PointCloud b = makeModelNetObject(7, 1024, 3);
    ASSERT_EQ(a.size(), 1024u);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]);
}

TEST(ModelNet, NormalizedToUnitSphere)
{
    for (int c = 0; c < kModelNetNumClasses; c += 7) {
        const PointCloud cloud = makeModelNetObject(c, 512, 11);
        float max_r = 0.0f;
        for (std::size_t i = 0; i < cloud.size(); ++i)
            max_r = std::max(max_r, cloud[i].norm());
        EXPECT_NEAR(max_r, 1.0f, 1e-4f) << "class " << c;
    }
}

TEST(ModelNet, InstancesOfSameClassDiffer)
{
    const PointCloud a = makeModelNetObject(3, 256, 1);
    const PointCloud b = makeModelNetObject(3, 256, 2);
    int identical = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        identical += a[i] == b[i];
    EXPECT_LT(identical, 10);
}

TEST(ModelNet, ClassNamesUniqueish)
{
    std::vector<std::string> names;
    for (int c = 0; c < kModelNetNumClasses; ++c)
        names.push_back(modelNetClassName(c));
    std::sort(names.begin(), names.end());
    EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(ModelNet, DatasetBalanced)
{
    const ObjectDataset ds = makeModelNetDataset(2, 64, 5);
    ASSERT_EQ(ds.clouds.size(),
              static_cast<std::size_t>(2 * kModelNetNumClasses));
    std::vector<int> counts(kModelNetNumClasses, 0);
    for (const int label : ds.labels)
        ++counts[static_cast<std::size_t>(label)];
    for (const int c : counts)
        EXPECT_EQ(c, 2);
}

TEST(ShapeNet, PartLabelsInRange)
{
    for (int cat = 0; cat < kShapeNetNumCategories; ++cat) {
        const int parts = shapeNetPartCount(cat);
        EXPECT_GE(parts, 2);
        EXPECT_LE(parts, kShapeNetMaxParts);
        const PointCloud obj = makeShapeNetObject(cat, 512, 17);
        ASSERT_EQ(obj.size(), 512u);
        ASSERT_TRUE(obj.hasLabels());
        std::vector<int> seen(static_cast<std::size_t>(parts), 0);
        for (const std::int32_t label : obj.labels()) {
            ASSERT_GE(label, 0);
            ASSERT_LT(label, parts);
            ++seen[static_cast<std::size_t>(label)];
        }
        // Every part should appear.
        for (int p = 0; p < parts; ++p)
            EXPECT_GT(seen[static_cast<std::size_t>(p)], 0)
                << shapeNetCategoryName(cat) << " part " << p;
    }
}

TEST(S3dis, SizeAndLabels)
{
    const PointCloud scene = makeS3disScene(5000, 42);
    ASSERT_EQ(scene.size(), 5000u);
    ASSERT_TRUE(scene.hasLabels());
    for (const std::int32_t label : scene.labels()) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label, kS3disNumClasses);
    }
}

TEST(S3dis, DensityIsNonUniform)
{
    // Split the room into an 8x8x4 grid and compare occupancy of the
    // densest and median cells: real scans are strongly non-uniform.
    const PointCloud scene = makeS3disScene(40000, 9);
    const Aabb box = scene.bounds();
    const int gx = 8, gy = 8, gz = 4;
    std::vector<int> cells(static_cast<std::size_t>(gx * gy * gz), 0);
    const Vec3 ext = box.extent();
    for (std::size_t i = 0; i < scene.size(); ++i) {
        const Vec3 p = scene[i] - box.lo;
        const int ix = std::min(gx - 1, static_cast<int>(
                                            p.x / ext.x * gx));
        const int iy = std::min(gy - 1, static_cast<int>(
                                            p.y / ext.y * gy));
        const int iz = std::min(gz - 1, static_cast<int>(
                                            p.z / ext.z * gz));
        ++cells[static_cast<std::size_t>((ix * gy + iy) * gz + iz)];
    }
    std::sort(cells.begin(), cells.end());
    const int densest = cells.back();
    const int median = cells[cells.size() / 2];
    EXPECT_GT(densest, 8 * std::max(1, median))
        << "scene is too uniform to exercise partition imbalance";
}

TEST(S3dis, AdversarialTwoClusters)
{
    SceneOptions opt;
    opt.adversarial_two_clusters = true;
    const PointCloud scene = makeS3disScene(2000, 3, opt);
    // All points belong to two well-separated blobs: distance from
    // scene centroid is bimodal and large.
    Vec3 centroid{0, 0, 0};
    for (std::size_t i = 0; i < scene.size(); ++i)
        centroid += scene[i];
    centroid = centroid * (1.0f / static_cast<float>(scene.size()));
    std::size_t near_center = 0;
    for (std::size_t i = 0; i < scene.size(); ++i)
        near_center += distance(scene[i], centroid) < 1.0f;
    EXPECT_LT(near_center, scene.size() / 20);
}

TEST(S3dis, OutlierFractionRespected)
{
    SceneOptions opt;
    opt.outlier_fraction = 0.02f;
    const PointCloud scene = makeS3disScene(50000, 21, opt);
    // Outliers live outside the room envelope (|z| > room_half.z).
    std::size_t outside = 0;
    for (std::size_t i = 0; i < scene.size(); ++i) {
        if (std::abs(scene[i].z) > opt.room_half.z * 1.02f)
            ++outside;
    }
    EXPECT_GT(outside, scene.size() / 400);  // > 0.25%
    EXPECT_LT(outside, scene.size() / 25);   // < 4%
}

TEST(Lidar, FrameStructure)
{
    Pcg32 rng(12);
    const PointCloud frame = makeLidarFrame(rng, 30000, 10);
    ASSERT_EQ(frame.size(), 30000u);
    ASSERT_TRUE(frame.hasLabels());
    // Ground points dominate and sit near z = 0.
    std::size_t ground = 0;
    for (std::size_t i = 0; i < frame.size(); ++i)
        ground += frame.labels()[i] == 0;
    EXPECT_GT(ground, frame.size() / 2);
}

TEST(SyntheticSamplers, OnSurface)
{
    Pcg32 rng(5);
    for (int i = 0; i < 500; ++i) {
        const Vec3 s = sampleSphereSurface(rng, 2.0f);
        EXPECT_NEAR(s.norm(), 2.0f, 1e-4f);
        const Vec3 c = sampleCylinderSurface(rng, 1.5f, 4.0f);
        EXPECT_NEAR(std::sqrt(c.x * c.x + c.y * c.y), 1.5f, 1e-4f);
        EXPECT_LE(std::abs(c.z), 2.0f + 1e-5f);
        const Vec3 t = sampleTorusSurface(rng, 2.0f, 0.5f);
        const float ring =
            std::sqrt(t.x * t.x + t.y * t.y) - 2.0f;
        EXPECT_NEAR(std::sqrt(ring * ring + t.z * t.z), 0.5f, 1e-3f);
    }
}

} // namespace
} // namespace fc::data
