/**
 * @file
 * Tests for the .fcpc binary columnar container: write → mmap → read
 * roundtrips for all three dataset families, corruption error paths,
 * zero-copy alias lifetime, allocation-free loads, and
 * prefetch-on == prefetch-off equality on the serve path across
 * shard counts.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>
#include <thread>

// Reads the binary-wide allocation counter installed by
// test_workspace.cc's alloc_hook TU.
#include "common/alloc_count.h"
#include "core/parallel.h"
#include "dataset/io.h"
#include "dataset/modelnet.h"
#include "dataset/s3dis.h"
#include "dataset/shapenet.h"
#include "serve/ingest.h"
#include "storage/convert.h"
#include "storage/fcpc_reader.h"
#include "storage/fcpc_writer.h"
#include "storage/prefetch.h"

namespace fc::storage {
namespace {

using data::PointCloud;

std::string
tempPath(const std::string &name)
{
    const ::testing::TestInfo *info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return ::testing::TempDir() + info->test_suite_name() + "_" +
           info->name() + "_" + name;
}

/** Bit-exact equality: the container must reproduce every byte of
 *  every array, not approximately-equal floats. */
void
expectCloudsBitIdentical(const PointCloud &a, const PointCloud &b)
{
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.featureDim(), b.featureDim());
    ASSERT_EQ(a.hasLabels(), b.hasLabels());
    if (a.size() == 0)
        return;
    EXPECT_EQ(std::memcmp(a.coords().data(), b.coords().data(),
                          a.size() * sizeof(Vec3)),
              0);
    const core::simd::SoaView sa = a.soa();
    const core::simd::SoaView sb = b.soa();
    EXPECT_EQ(
        std::memcmp(sa.xs, sb.xs, a.size() * sizeof(float)), 0);
    EXPECT_EQ(
        std::memcmp(sa.ys, sb.ys, a.size() * sizeof(float)), 0);
    EXPECT_EQ(
        std::memcmp(sa.zs, sb.zs, a.size() * sizeof(float)), 0);
    if (a.featureDim() > 0) {
        EXPECT_EQ(std::memcmp(a.features().data(),
                              b.features().data(),
                              a.features().size() * sizeof(float)),
                  0);
    }
    if (a.hasLabels()) {
        EXPECT_EQ(std::memcmp(a.labels().data(), b.labels().data(),
                              a.size() * sizeof(std::int32_t)),
                  0);
    }
}

/** Flip one byte of a file in place. */
void
corruptByte(const std::string &path, std::size_t offset)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f);
    f.seekg(static_cast<std::streamoff>(offset));
    char c = 0;
    f.read(&c, 1);
    c = static_cast<char>(c ^ 0x5a);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&c, 1);
}

/** Truncate a file to @p bytes. */
void
truncateFile(const std::string &path, std::size_t bytes)
{
    std::string contents;
    {
        std::ifstream in(path, std::ios::binary);
        ASSERT_TRUE(in);
        contents.assign(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    }
    ASSERT_LE(bytes, contents.size());
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(contents.data(), static_cast<std::streamsize>(bytes));
}

TEST(StorageRoundtrip, S3disSceneLabeled)
{
    const PointCloud original = data::makeS3disScene(3000, 11);
    ASSERT_TRUE(original.hasLabels());
    const std::string path = tempPath("s3dis.fcpc");
    ASSERT_TRUE(writeFcpc({original}, path));

    FcpcReader reader;
    ASSERT_EQ(reader.open(path), FcpcStatus::Ok);
    ASSERT_EQ(reader.blockCount(), 1u);
    PointCloud zero_copy;
    ASSERT_EQ(reader.readBlock(0, zero_copy, ReadMode::ZeroCopy),
              FcpcStatus::Ok);
    EXPECT_TRUE(zero_copy.isExternal());
    expectCloudsBitIdentical(original, zero_copy);

    PointCloud copied;
    ASSERT_EQ(reader.readBlock(0, copied, ReadMode::Copy),
              FcpcStatus::Ok);
    EXPECT_FALSE(copied.isExternal());
    expectCloudsBitIdentical(original, copied);
    std::remove(path.c_str());
}

TEST(StorageRoundtrip, ReadOptionsResidencyPoliciesPreserveContent)
{
    // willneed/populate are pure page-residency hints: every
    // combination must open Ok and read back identical bytes (the
    // behavioral difference — fault timing — is a perf property
    // benchmarked, not unit-tested).
    const PointCloud original = data::makeS3disScene(2000, 43);
    const std::string path = tempPath("residency.fcpc");
    ASSERT_TRUE(writeFcpc({original}, path));

    for (const bool willneed : {false, true}) {
        for (const bool populate : {false, true}) {
            SCOPED_TRACE("willneed=" + std::to_string(willneed) +
                         " populate=" + std::to_string(populate));
            ReadOptions options;
            options.willneed = willneed;
            options.populate = populate;
            FcpcReader reader;
            ASSERT_EQ(reader.open(path, options), FcpcStatus::Ok);
            ASSERT_EQ(reader.blockCount(), 1u);
            PointCloud cloud;
            ASSERT_EQ(reader.readBlock(0, cloud), FcpcStatus::Ok);
            expectCloudsBitIdentical(original, cloud);
        }
    }

    // A corrupt file is rejected before any residency work happens.
    corruptByte(path, 0);
    FcpcReader reader;
    ReadOptions eager;
    eager.willneed = true;
    eager.populate = true;
    EXPECT_NE(reader.open(path, eager), FcpcStatus::Ok);
    EXPECT_FALSE(reader.isOpen());
    std::remove(path.c_str());
}

TEST(StorageRoundtrip, ShapeNetObjectLabeled)
{
    const PointCloud original = data::makeShapeNetObject(2, 2000, 7);
    const std::string path = tempPath("shapenet.fcpc");
    ASSERT_TRUE(writeFcpc({original}, path));
    FcpcReader reader;
    ASSERT_EQ(reader.open(path), FcpcStatus::Ok);
    PointCloud loaded;
    ASSERT_EQ(reader.readBlock(0, loaded), FcpcStatus::Ok);
    expectCloudsBitIdentical(original, loaded);
    std::remove(path.c_str());
}

TEST(StorageRoundtrip, ModelNetObjectWithFeatures)
{
    PointCloud original = data::makeModelNetObject(5, 1000, 3);
    original.allocateFeatures(4);
    std::vector<float> &feats = original.features();
    for (std::size_t i = 0; i < feats.size(); ++i)
        feats[i] = static_cast<float>(i) * 0.25f - 100.0f;

    const std::string path = tempPath("modelnet.fcpc");
    ASSERT_TRUE(writeFcpc({original}, path));
    FcpcReader reader;
    ASSERT_EQ(reader.open(path), FcpcStatus::Ok);
    PointCloud loaded;
    ASSERT_EQ(reader.readBlock(0, loaded), FcpcStatus::Ok);
    EXPECT_EQ(loaded.featureDim(), 4u);
    expectCloudsBitIdentical(original, loaded);
    EXPECT_EQ(loaded.featureRow(3)[2], original.featureRow(3)[2]);
    std::remove(path.c_str());
}

TEST(StorageRoundtrip, MultiBlockIndexAndKeys)
{
    std::vector<PointCloud> clouds;
    for (int c = 0; c < 5; ++c)
        clouds.push_back(data::makeModelNetObject(c, 200 + 50 * c,
                                                  100 + c));
    const std::string path = tempPath("multi.fcpc");
    ASSERT_TRUE(writeFcpc(clouds, path));

    FcpcReader reader;
    ASSERT_EQ(reader.open(path), FcpcStatus::Ok);
    ASSERT_EQ(reader.blockCount(), clouds.size());
    for (std::size_t i = 0; i < clouds.size(); ++i) {
        EXPECT_EQ(reader.blockPoints(i), clouds[i].size());
        EXPECT_NE(reader.placementKey(i), 0u);
        PointCloud loaded;
        ASSERT_EQ(reader.readBlock(i, loaded), FcpcStatus::Ok);
        expectCloudsBitIdentical(clouds[i], loaded);
    }
    // Derived keys are deterministic: a second writer produces the
    // same keyspace.
    const std::string path2 = tempPath("multi2.fcpc");
    ASSERT_TRUE(writeFcpc(clouds, path2));
    FcpcReader reader2;
    ASSERT_EQ(reader2.open(path2), FcpcStatus::Ok);
    for (std::size_t i = 0; i < clouds.size(); ++i)
        EXPECT_EQ(reader.placementKey(i), reader2.placementKey(i));
    std::remove(path.c_str());
    std::remove(path2.c_str());
}

TEST(StorageErrors, MissingFile)
{
    FcpcReader reader;
    EXPECT_EQ(reader.open("/nonexistent/nowhere.fcpc"),
              FcpcStatus::IoError);
    EXPECT_FALSE(reader.isOpen());
}

TEST(StorageErrors, BadMagicRejected)
{
    const std::string path = tempPath("magic.fcpc");
    ASSERT_TRUE(writeFcpc({data::makeModelNetObject(0, 64, 1)}, path));
    corruptByte(path, 0);
    FcpcReader reader;
    EXPECT_EQ(reader.open(path), FcpcStatus::BadMagic);
    std::remove(path.c_str());
}

TEST(StorageErrors, NewerVersionRejected)
{
    const std::string path = tempPath("version.fcpc");
    ASSERT_TRUE(writeFcpc({data::makeModelNetObject(0, 64, 1)}, path));
    {
        std::fstream f(path, std::ios::binary | std::ios::in |
                                 std::ios::out);
        const std::uint32_t future = kFcpcVersion + 1;
        f.seekp(4); // FcpcFileHeader::version
        f.write(reinterpret_cast<const char *>(&future),
                sizeof future);
    }
    FcpcReader reader;
    EXPECT_EQ(reader.open(path), FcpcStatus::BadVersion);
    std::remove(path.c_str());
}

TEST(StorageErrors, TruncatedFileRejected)
{
    const std::string path = tempPath("trunc.fcpc");
    ASSERT_TRUE(writeFcpc({data::makeModelNetObject(0, 256, 1)}, path));
    truncateFile(path, 200);
    FcpcReader reader;
    EXPECT_EQ(reader.open(path), FcpcStatus::Truncated);
    std::remove(path.c_str());
}

TEST(StorageErrors, UnfinishedWriterOutputRejected)
{
    // A writer that never reached finish() leaves the blank header
    // placeholder; readers must refuse it (magic == 0).
    const std::string path = tempPath("unfinished.fcpc");
    {
        FcpcWriter writer;
        ASSERT_TRUE(writer.open(path));
        ASSERT_TRUE(
            writer.append(data::makeModelNetObject(0, 64, 1)));
        // no finish()
    }
    FcpcReader reader;
    EXPECT_EQ(reader.open(path), FcpcStatus::BadMagic);
    std::remove(path.c_str());
}

TEST(StorageErrors, CorruptIndexRejected)
{
    const std::string path = tempPath("index.fcpc");
    ASSERT_TRUE(writeFcpc({data::makeModelNetObject(0, 128, 1)}, path));
    // Index is the last sizeof(FcpcBlockDesc) bytes of the file.
    std::size_t file_bytes = 0;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        file_bytes = static_cast<std::size_t>(in.tellg());
    }
    corruptByte(path, file_bytes - sizeof(FcpcBlockDesc) / 2);
    FcpcReader reader;
    EXPECT_EQ(reader.open(path), FcpcStatus::BadIndex);
    std::remove(path.c_str());
}

TEST(StorageErrors, BadSectionChecksumRejectsBlockOnly)
{
    std::vector<PointCloud> clouds;
    clouds.push_back(data::makeModelNetObject(0, 128, 1));
    clouds.push_back(data::makeModelNetObject(1, 128, 2));
    const std::string path = tempPath("checksum.fcpc");
    ASSERT_TRUE(writeFcpc(clouds, path));
    // Block 0's first section (AoS coords) starts at the first
    // aligned offset after the header.
    corruptByte(path, sizeof(FcpcFileHeader));

    FcpcReader reader;
    ASSERT_EQ(reader.open(path), FcpcStatus::Ok);
    PointCloud loaded;
    EXPECT_EQ(reader.readBlock(0, loaded), FcpcStatus::BadChecksum);
    // The verdict is memoized.
    EXPECT_EQ(reader.validateBlock(0), FcpcStatus::BadChecksum);
    // The intact block still loads.
    EXPECT_EQ(reader.readBlock(1, loaded), FcpcStatus::Ok);
    expectCloudsBitIdentical(clouds[1], loaded);
    std::remove(path.c_str());
}

TEST(StorageAlias, CloudOutlivesReader)
{
    const PointCloud original = data::makeModelNetObject(2, 300, 9);
    const std::string path = tempPath("alias.fcpc");
    ASSERT_TRUE(writeFcpc({original}, path));

    PointCloud cloud;
    {
        auto reader = std::make_unique<FcpcReader>();
        ASSERT_EQ(reader->open(path), FcpcStatus::Ok);
        EXPECT_EQ(reader->liveAliases(), 0u);
        ASSERT_EQ(reader->readBlock(0, cloud), FcpcStatus::Ok);
        // The misuse diagnosis: one cloud still aliases the mapping.
        EXPECT_EQ(reader->liveAliases(), 1u);
        PointCloud second;
        ASSERT_EQ(reader->readBlock(0, second), FcpcStatus::Ok);
        EXPECT_EQ(reader->liveAliases(), 2u);
    } // reader destroyed; the keepalive keeps the mapping
    ASSERT_TRUE(cloud.isExternal());
    expectCloudsBitIdentical(original, cloud);

    // Copy-on-write detach still works with the reader gone.
    cloud[0] = Vec3{1.0f, 2.0f, 3.0f};
    EXPECT_FALSE(cloud.isExternal());
    EXPECT_FLOAT_EQ(cloud[0].x, 1.0f);
    std::remove(path.c_str());
}

TEST(StorageAlias, CopiesShareTheKeepalive)
{
    const PointCloud original = data::makeModelNetObject(2, 100, 9);
    const std::string path = tempPath("copies.fcpc");
    ASSERT_TRUE(writeFcpc({original}, path));
    FcpcReader reader;
    ASSERT_EQ(reader.open(path), FcpcStatus::Ok);
    PointCloud a;
    ASSERT_EQ(reader.readBlock(0, a), FcpcStatus::Ok);
    {
        const PointCloud b = a; // shares alias + keepalive, no copy
        EXPECT_TRUE(b.isExternal());
        EXPECT_EQ(reader.liveAliases(), 2u);
        expectCloudsBitIdentical(a, b);
    }
    EXPECT_EQ(reader.liveAliases(), 1u);
    std::remove(path.c_str());
}

TEST(StorageAlloc, ZeroCopyLoadAllocatesNothingPerPoint)
{
    // 20K points: if the load allocated per point (or copied into
    // fresh vectors) the hook would count thousands of allocations.
    const PointCloud original = data::makeS3disScene(20000, 21);
    const std::string path = tempPath("alloc.fcpc");
    ASSERT_TRUE(writeFcpc({original}, path));

    FcpcReader reader;
    ASSERT_EQ(reader.open(path), FcpcStatus::Ok);
    PointCloud warm; // constructed (and bound once) outside the
                     // measured window, like a reused serve slot
    ASSERT_EQ(reader.readBlock(0, warm), FcpcStatus::Ok);

    const std::uint64_t before = heapAllocCount();
    ASSERT_EQ(reader.readBlock(0, warm), FcpcStatus::Ok);
    const std::uint64_t after = heapAllocCount();
    EXPECT_EQ(after - before, 0u)
        << "zero-copy load must not touch the heap";
    expectCloudsBitIdentical(original, warm);
    std::remove(path.c_str());
}

TEST(StorageConcurrent, ParallelReadBlockAndFirstTouch)
{
    // Many threads materialize and soa()-touch the same blocks
    // concurrently: exercises the reader's atomic validation memo
    // and PointCloud's double-checked SoA rebuild (run under TSan in
    // CI).
    std::vector<PointCloud> clouds;
    for (int c = 0; c < 4; ++c)
        clouds.push_back(data::makeModelNetObject(c, 500, 50 + c));
    const std::string path = tempPath("concurrent.fcpc");
    ASSERT_TRUE(writeFcpc(clouds, path));

    auto reader = std::make_shared<FcpcReader>();
    ASSERT_EQ(reader->open(path), FcpcStatus::Ok);

    // A shared OWNED cloud whose lazy mirror all threads first-touch.
    auto shared_owned = std::make_shared<PointCloud>(
        data::makeModelNetObject(7, 2000, 99));

    std::vector<std::thread> threads;
    std::vector<int> failures(8, 0);
    for (int t = 0; t < 8; ++t) {
        threads.emplace_back([&, t] {
            for (int rep = 0; rep < 5; ++rep) {
                const std::size_t b =
                    static_cast<std::size_t>(t + rep) %
                    reader->blockCount();
                PointCloud cloud;
                if (reader->readBlock(b, cloud) != FcpcStatus::Ok) {
                    ++failures[t];
                    continue;
                }
                // Const reads only: the non-const operator[] is a
                // mutator (detach + dirty-mark) and owner-only.
                const PointCloud &c = cloud;
                const PointCloud &shared_c = *shared_owned;
                const core::simd::SoaView v = c.soa();
                const core::simd::SoaView w = shared_c.soa();
                if (v.xs[0] != c[0].x || w.xs[0] != shared_c[0].x)
                    ++failures[t];
            }
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (int f : failures)
        EXPECT_EQ(f, 0);
    std::remove(path.c_str());
}

TEST(StoragePrefetch, RingMatchesSynchronousReads)
{
    std::vector<PointCloud> clouds;
    for (int c = 0; c < 8; ++c)
        clouds.push_back(
            data::makeModelNetObject(c % 3, 400 + 30 * c, 70 + c));
    const std::string path = tempPath("ring.fcpc");
    ASSERT_TRUE(writeFcpc(clouds, path));

    auto reader = std::make_shared<FcpcReader>();
    ASSERT_EQ(reader->open(path), FcpcStatus::Ok);

    core::ThreadPool pool(2, /*standalone=*/true);
    PrefetchOptions on;
    on.depth = 3;
    on.pool = &pool;
    PrefetchOptions off;
    off.depth = 0;

    BlockPrefetcher with(reader, on);
    BlockPrefetcher without(reader, off);
    for (std::size_t i = 0; i < reader->blockCount(); ++i) {
        PointCloud a, b;
        ASSERT_EQ(with.get(i, a), FcpcStatus::Ok);
        ASSERT_EQ(without.get(i, b), FcpcStatus::Ok);
        expectCloudsBitIdentical(a, b);
        expectCloudsBitIdentical(clouds[i], a);
    }
    const PrefetchStats stats = with.stats();
    EXPECT_GT(stats.scheduled, 0u);
    EXPECT_EQ(with.shardFor(0), without.shardFor(0));
    std::remove(path.c_str());
}

TEST(StorageConvert, XyzAndPlyConvertersRoundTrip)
{
    PointCloud original = data::makeShapeNetObject(4, 600, 13);
    const std::string xyz = tempPath("conv.xyz");
    const std::string ply = tempPath("conv.ply");
    const std::string fcpc1 = tempPath("conv1.fcpc");
    const std::string fcpc2 = tempPath("conv2.fcpc");
    ASSERT_TRUE(data::saveXyz(original, xyz));
    ASSERT_TRUE(data::savePly(original, ply));

    core::ThreadPool pool(3);
    ASSERT_TRUE(convertXyzToFcpc(xyz, fcpc1, &pool));
    ASSERT_TRUE(convertPlyToFcpc(ply, fcpc2, &pool));

    // The converted container reproduces the PARSED cloud exactly
    // (text roundtrips lose float bits; the container must not lose
    // any more).
    PointCloud parsed;
    ASSERT_TRUE(data::loadXyz(parsed, xyz));
    FcpcReader reader;
    ASSERT_EQ(reader.open(fcpc1), FcpcStatus::Ok);
    PointCloud loaded;
    ASSERT_EQ(reader.readBlock(0, loaded), FcpcStatus::Ok);
    expectCloudsBitIdentical(parsed, loaded);

    PointCloud parsed_ply;
    ASSERT_TRUE(data::loadPly(parsed_ply, ply));
    FcpcReader reader2;
    ASSERT_EQ(reader2.open(fcpc2), FcpcStatus::Ok);
    PointCloud loaded2;
    ASSERT_EQ(reader2.readBlock(0, loaded2), FcpcStatus::Ok);
    expectCloudsBitIdentical(parsed_ply, loaded2);

    for (const std::string &p : {xyz, ply, fcpc1, fcpc2})
        std::remove(p.c_str());
}

void
expectResultsIdentical(const serve::RequestOutcome &a,
                       const serve::RequestOutcome &b)
{
    ASSERT_EQ(a.state, serve::RequestState::Done);
    ASSERT_EQ(b.state, serve::RequestState::Done);
    EXPECT_EQ(a.result.sampled.indices, b.result.sampled.indices);
    EXPECT_EQ(a.result.sampled.positions, b.result.sampled.positions);
    EXPECT_EQ(a.result.sampled.leaf_offsets,
              b.result.sampled.leaf_offsets);
    EXPECT_EQ(a.result.grouped.indices, b.result.grouped.indices);
    EXPECT_EQ(a.result.grouped.counts, b.result.grouped.counts);
    EXPECT_EQ(a.result.gathered.values, b.result.gathered.values);
    EXPECT_EQ(a.result.num_blocks, b.result.num_blocks);
}

TEST(StorageIngest, PrefetchedServingMatchesPreloadedAcrossShards)
{
    // The acceptance criterion: serving from prefetched storage is
    // byte-identical to serving preloaded in-memory clouds, at shard
    // counts 1, 2, and 4, with prefetch on and off.
    std::vector<PointCloud> clouds;
    for (std::uint64_t seed = 60; seed < 66; ++seed)
        clouds.push_back(data::makeS3disScene(1500, seed));
    const std::string path = tempPath("serve.fcpc");
    ASSERT_TRUE(writeFcpc(clouds, path));

    BatchRequest request; // default sample/group/gather pipeline

    for (unsigned shards : {1u, 2u, 4u}) {
        serve::ServeOptions options;
        options.num_shards = shards;
        options.pipeline.num_threads = 2;
        serve::AsyncPipeline pipeline(options);

        // Reference: preloaded in-memory clouds.
        std::vector<serve::RequestOutcome> reference;
        for (const PointCloud &cloud : clouds) {
            const serve::Ticket ticket =
                pipeline.submit(cloud, request);
            reference.push_back(pipeline.wait(ticket));
        }

        for (const std::size_t depth : {std::size_t{0},
                                        std::size_t{3}}) {
            auto reader = std::make_shared<FcpcReader>();
            ASSERT_EQ(reader->open(path), FcpcStatus::Ok);
            serve::IngestOptions iopt;
            iopt.prefetch_depth = depth;
            serve::StorageIngestor ingestor(pipeline, reader, iopt);
            const std::vector<serve::IngestResult> results =
                ingestor.runAll(request);
            ASSERT_EQ(results.size(), clouds.size());
            for (std::size_t i = 0; i < results.size(); ++i) {
                ASSERT_EQ(results[i].storage_status, FcpcStatus::Ok);
                expectResultsIdentical(reference[i],
                                       results[i].outcome);
            }
        }
    }
    std::remove(path.c_str());
}

TEST(StorageIngest, DamagedBlockReportedOthersServed)
{
    std::vector<PointCloud> clouds;
    for (int c = 0; c < 3; ++c)
        clouds.push_back(data::makeModelNetObject(c, 300, 80 + c));
    const std::string path = tempPath("damaged.fcpc");
    ASSERT_TRUE(writeFcpc(clouds, path));
    corruptByte(path, sizeof(FcpcFileHeader)); // block 0 coords

    serve::AsyncPipeline pipeline;
    auto reader = std::make_shared<FcpcReader>();
    ASSERT_EQ(reader->open(path), FcpcStatus::Ok);
    serve::StorageIngestor ingestor(pipeline, reader, {});
    const std::vector<serve::IngestResult> results =
        ingestor.runAll({});
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].storage_status, FcpcStatus::BadChecksum);
    for (std::size_t i = 1; i < 3; ++i) {
        EXPECT_EQ(results[i].storage_status, FcpcStatus::Ok);
        EXPECT_EQ(results[i].outcome.state,
                  serve::RequestState::Done);
    }
    EXPECT_EQ(pipeline.metrics()
                  .counter("serve.ingest.errors")
                  .value(),
              1u);
    EXPECT_EQ(pipeline.metrics()
                  .counter("serve.ingest.blocks")
                  .value(),
              2u);
    std::remove(path.c_str());
}

} // namespace
} // namespace fc::storage
