/**
 * @file
 * Tests for the RV32IM control-core interpreter.
 */

#include <gtest/gtest.h>

#include "sim/riscv.h"

namespace fc::sim {
namespace {

using namespace rv;

TEST(Riscv, AddiAndAdd)
{
    RiscvCore core;
    core.loadProgram({
        addi(1, 0, 5),
        addi(2, 0, 7),
        add(3, 1, 2),
        ecall(),
    });
    core.run();
    EXPECT_TRUE(core.halted());
    EXPECT_EQ(core.reg(3), 12u);
}

TEST(Riscv, X0IsHardwiredZero)
{
    RiscvCore core;
    core.loadProgram({addi(0, 0, 99), ecall()});
    core.run();
    EXPECT_EQ(core.reg(0), 0u);
}

TEST(Riscv, NegativeImmediates)
{
    RiscvCore core;
    core.loadProgram({addi(1, 0, -3), ecall()});
    core.run();
    EXPECT_EQ(core.reg(1), 0xfffffffdu);
}

TEST(Riscv, MulDivRem)
{
    RiscvCore core;
    core.loadProgram({
        addi(1, 0, 100),
        addi(2, 0, 7),
        mul(3, 1, 2),
        divu(4, 1, 2),
        remu(5, 1, 2),
        ecall(),
    });
    core.run();
    EXPECT_EQ(core.reg(3), 700u);
    EXPECT_EQ(core.reg(4), 14u);
    EXPECT_EQ(core.reg(5), 2u);
}

TEST(Riscv, DivideByZeroIsAllOnes)
{
    RiscvCore core;
    core.loadProgram({addi(1, 0, 42), divu(2, 1, 0), ecall()});
    core.run();
    EXPECT_EQ(core.reg(2), 0xffffffffu);
}

TEST(Riscv, ShiftAndLogic)
{
    RiscvCore core;
    core.loadProgram({
        addi(1, 0, 0b1100),
        slli(2, 1, 2),
        srli(3, 1, 2),
        andi(4, 1, 0b1010),
        ori(5, 1, 0b0011),
        xori(6, 1, 0b1111),
        ecall(),
    });
    core.run();
    EXPECT_EQ(core.reg(2), 0b110000u);
    EXPECT_EQ(core.reg(3), 0b11u);
    EXPECT_EQ(core.reg(4), 0b1000u);
    EXPECT_EQ(core.reg(5), 0b1111u);
    EXPECT_EQ(core.reg(6), 0b0011u);
}

TEST(Riscv, LoadStoreRoundTrip)
{
    RiscvCore core;
    core.loadProgram({
        addi(1, 0, 0x123),
        addi(2, 0, 0x400), // address
        sw(1, 2, 0),
        lw(3, 2, 0),
        ecall(),
    });
    core.run();
    EXPECT_EQ(core.reg(3), 0x123u);
    EXPECT_EQ(core.loadWord(0x400), 0x123u);
}

TEST(Riscv, BranchLoopSumsOneToTen)
{
    // x1 = counter, x2 = sum, x3 = limit.
    RiscvCore core;
    core.loadProgram({
        addi(1, 0, 1),        // 0x00
        addi(2, 0, 0),        // 0x04
        addi(3, 0, 11),       // 0x08
        add(2, 2, 1),         // 0x0c: loop body
        addi(1, 1, 1),        // 0x10
        bne(1, 3, -8),        // 0x14 -> 0x0c
        ecall(),              // 0x18
    });
    core.run();
    EXPECT_EQ(core.reg(2), 55u);
}

TEST(Riscv, JalAndJalr)
{
    RiscvCore core;
    core.loadProgram({
        jal(1, 12),          // 0x00 -> 0x0c, x1 = 0x04
        addi(2, 0, 111),     // 0x04 (return target)
        ecall(),             // 0x08
        addi(3, 0, 222),     // 0x0c (function body)
        jalr(0, 1, 0),       // 0x10 -> return to 0x04
    });
    core.run();
    EXPECT_EQ(core.reg(2), 111u);
    EXPECT_EQ(core.reg(3), 222u);
}

TEST(Riscv, LuiAndLiMaterializeConstants)
{
    RiscvCore core;
    std::vector<Insn> program;
    for (const Insn i : li(5, 0xdeadbeefu))
        program.push_back(i);
    for (const Insn i : li(6, 0x00000800u)) // crosses sign boundary
        program.push_back(i);
    program.push_back(ecall());
    core.loadProgram(program);
    core.run();
    EXPECT_EQ(core.reg(5), 0xdeadbeefu);
    EXPECT_EQ(core.reg(6), 0x800u);
}

TEST(Riscv, MmioWritesAreLogged)
{
    RiscvCore core;
    std::vector<Insn> program;
    for (const Insn i : li(1, 0x40000000u))
        program.push_back(i);
    program.push_back(addi(2, 0, 77));
    program.push_back(sw(2, 1, 0));
    program.push_back(addi(2, 0, 88));
    program.push_back(sw(2, 1, 4));
    program.push_back(ecall());
    core.loadProgram(program);
    core.run();
    ASSERT_EQ(core.mmioWrites().size(), 2u);
    EXPECT_EQ(core.mmioWrites()[0].address, 0x40000000u);
    EXPECT_EQ(core.mmioWrites()[0].value, 77u);
    EXPECT_EQ(core.mmioWrites()[1].address, 0x40000004u);
    EXPECT_EQ(core.mmioWrites()[1].value, 88u);
}

TEST(Riscv, SltComparisons)
{
    RiscvCore core;
    core.loadProgram({
        addi(1, 0, -1),
        addi(2, 0, 1),
        slt(3, 1, 2),  // signed: -1 < 1 -> 1
        sltu(4, 1, 2), // unsigned: 0xffffffff < 1 -> 0
        ecall(),
    });
    core.run();
    EXPECT_EQ(core.reg(3), 1u);
    EXPECT_EQ(core.reg(4), 0u);
}

TEST(Riscv, MaxInsnGuardStopsRunaway)
{
    RiscvCore core;
    core.loadProgram({jal(0, 0)}); // infinite self-loop
    const std::uint64_t retired = core.run(1000);
    EXPECT_EQ(retired, 1000u);
    EXPECT_FALSE(core.halted());
}

TEST(Riscv, CycleEstimateGrowsWithBranches)
{
    RiscvCore straight;
    straight.loadProgram({addi(1, 0, 1), addi(2, 0, 2), ecall()});
    straight.run();
    RiscvCore loopy;
    loopy.loadProgram({
        addi(1, 0, 0),
        addi(3, 0, 100),
        addi(1, 1, 1),
        bne(1, 3, -4),
        ecall(),
    });
    loopy.run();
    EXPECT_GT(loopy.cycleEstimate(), straight.cycleEstimate());
}

} // namespace
} // namespace fc::sim
