/**
 * @file
 * Unit tests for gathering (global and block-wise).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/s3dis.h"
#include "ops/fps.h"
#include "ops/gather.h"
#include "ops/neighbor.h"
#include "partition/fractal.h"

namespace fc::ops {
namespace {

data::PointCloud
featuredCloud(std::size_t n, std::uint64_t seed, std::size_t dim)
{
    Pcg32 rng(seed);
    data::PointCloud cloud;
    for (std::size_t i = 0; i < n; ++i)
        cloud.addPoint({rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)});
    cloud.allocateFeatures(dim);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t c = 0; c < dim; ++c)
            cloud.featureRow(i)[c] =
                static_cast<float>(i) + 0.1f * static_cast<float>(c);
    return cloud;
}

TEST(Gather, RelativeCoordsAndFeatures)
{
    const data::PointCloud cloud = featuredCloud(50, 1, 4);
    const std::vector<PointIdx> centers{3, 7};
    const NeighborResult nbr = ballQuery(cloud, centers, 1.0f, 4);
    const GatherResult g = gatherNeighborhoods(cloud, centers, nbr);
    ASSERT_EQ(g.channels, 7u); // 3 rel coords + 4 features
    for (std::size_t c = 0; c < centers.size(); ++c) {
        for (std::size_t j = 0; j < nbr.k; ++j) {
            const PointIdx nb = nbr.neighbor(c, j);
            if (nb == kInvalidPoint)
                continue;
            EXPECT_FLOAT_EQ(g.at(c, j, 0),
                            cloud[nb].x - cloud[centers[c]].x);
            EXPECT_FLOAT_EQ(g.at(c, j, 3), cloud.featureRow(nb)[0]);
            EXPECT_FLOAT_EQ(g.at(c, j, 6), cloud.featureRow(nb)[3]);
        }
    }
}

TEST(Gather, InvalidNeighborYieldsZeros)
{
    data::PointCloud cloud;
    cloud.addPoint({0, 0, 0});
    cloud.addPoint({100, 100, 100});
    cloud.allocateFeatures(2);
    // Center 1 has no neighbor within the radius except itself; make
    // a neighbor table manually with an invalid entry.
    NeighborResult nbr;
    nbr.num_centers = 1;
    nbr.k = 2;
    nbr.indices = {kInvalidPoint, kInvalidPoint};
    nbr.counts = {0};
    const GatherResult g = gatherNeighborhoods(cloud, {0}, nbr);
    for (std::size_t c = 0; c < g.channels; ++c)
        EXPECT_EQ(g.at(0, 0, c), 0.0f);
}

TEST(Gather, BlockMatchesGlobalValues)
{
    const data::PointCloud scene = [] {
        data::PointCloud s = data::makeS3disScene(2048, 2);
        s.allocateFeatures(8);
        Pcg32 rng(3);
        for (float &v : s.features())
            v = rng.uniform(-1, 1);
        return s;
    }();

    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 128;
    const part::PartitionResult part = p.partition(scene, config);
    const BlockSampleResult sampled =
        blockFarthestPointSample(scene, part.tree, 0.25);
    const NeighborResult nbr =
        blockBallQuery(scene, part.tree, sampled, 0.4f, 8);

    const GatherResult global =
        gatherNeighborhoods(scene, sampled.indices, nbr);
    const GatherResult blocked = blockGatherNeighborhoods(
        scene, part.tree, sampled.indices, sampled.leaf_offsets, nbr);

    // Identical values (the paper: gathering does not change
    // results), different memory accounting.
    ASSERT_EQ(global.values.size(), blocked.values.size());
    for (std::size_t i = 0; i < global.values.size(); ++i)
        EXPECT_EQ(global.values[i], blocked.values[i]);
}

TEST(Gather, ByteAccountingScalesWithK)
{
    const data::PointCloud cloud = featuredCloud(256, 4, 16);
    std::vector<PointIdx> centers;
    for (PointIdx i = 0; i < 32; ++i)
        centers.push_back(i);
    const NeighborResult nbr4 = ballQuery(cloud, centers, 2.0f, 4);
    const NeighborResult nbr16 = ballQuery(cloud, centers, 2.0f, 16);
    const GatherResult g4 = gatherNeighborhoods(cloud, centers, nbr4);
    const GatherResult g16 = gatherNeighborhoods(cloud, centers, nbr16);
    EXPECT_EQ(g16.stats.bytes_gathered, 4 * g4.stats.bytes_gathered);
}

} // namespace
} // namespace fc::ops
