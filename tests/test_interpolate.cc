/**
 * @file
 * Unit tests for feature interpolation (global and block-wise).
 */

#include <cmath>
#include <gtest/gtest.h>

#include "common/rng.h"
#include "dataset/s3dis.h"
#include "ops/fps.h"
#include "ops/interpolate.h"
#include "ops/quality.h"
#include "partition/fractal.h"

namespace fc::ops {
namespace {

data::PointCloud
randomCloud(std::size_t n, std::uint64_t seed)
{
    Pcg32 rng(seed);
    data::PointCloud cloud;
    for (std::size_t i = 0; i < n; ++i)
        cloud.addPoint({rng.uniform(-1, 1), rng.uniform(-1, 1),
                        rng.uniform(-1, 1)});
    return cloud;
}

TEST(Interpolate, ExactAtKnownPoints)
{
    const data::PointCloud cloud = randomCloud(200, 1);
    // Known points: every 4th point, feature = its own index.
    std::vector<PointIdx> known;
    std::vector<float> feats;
    for (PointIdx i = 0; i < 200; i += 4) {
        known.push_back(i);
        feats.push_back(static_cast<float>(i));
    }
    const InterpolateResult r =
        globalInterpolate(cloud, feats, 1, known);
    // At a known point the inverse-distance weight of itself
    // dominates (d ~ 0), so the value is (almost) reproduced.
    for (std::size_t i = 0; i < known.size(); ++i) {
        EXPECT_NEAR(r.values[known[i]], feats[i], 1e-2f)
            << "known point " << known[i];
    }
}

TEST(Interpolate, ValuesWithinNeighborRange)
{
    // IDW is a convex combination: values stay inside the min/max of
    // the contributing features.
    const data::PointCloud cloud = randomCloud(300, 2);
    std::vector<PointIdx> known;
    std::vector<float> feats;
    Pcg32 rng(3);
    for (PointIdx i = 0; i < 300; i += 3) {
        known.push_back(i);
        feats.push_back(rng.uniform(10.0f, 20.0f));
    }
    const InterpolateResult r =
        globalInterpolate(cloud, feats, 1, known);
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        EXPECT_GE(r.values[i], 10.0f - 1e-4f);
        EXPECT_LE(r.values[i], 20.0f + 1e-4f);
    }
}

TEST(Interpolate, ConstantFieldIsPreserved)
{
    const data::PointCloud cloud = randomCloud(150, 4);
    std::vector<PointIdx> known{10, 50, 90, 130};
    std::vector<float> feats(known.size() * 2, 7.5f);
    const InterpolateResult r =
        globalInterpolate(cloud, feats, 2, known);
    for (const float v : r.values)
        EXPECT_NEAR(v, 7.5f, 1e-4f);
}

TEST(BlockInterpolate, CloseToGlobal)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 5);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 128;
    const part::PartitionResult part = p.partition(scene, config);
    const BlockSampleResult sampled =
        blockFarthestPointSample(scene, part.tree, 0.25);

    // Smooth feature field: f(p) = p.x + 2 p.y - p.z.
    std::vector<float> known_feats;
    for (const PointIdx idx : sampled.indices) {
        const Vec3 &q = scene[idx];
        known_feats.push_back(q.x + 2.0f * q.y - q.z);
    }

    const InterpolateResult blocked = blockInterpolate(
        scene, part.tree, sampled, known_feats, 1);
    const InterpolateResult global = globalInterpolate(
        scene, known_feats, 1, sampled.indices);

    const double err =
        featureRelativeError(global.values, blocked.values);
    EXPECT_LT(err, 0.08) << "block-wise interpolation diverged from "
                            "global (paper: <0.2% accuracy impact)";
}

TEST(BlockInterpolate, MuchCheaperThanGlobal)
{
    const data::PointCloud scene = data::makeS3disScene(4096, 6);
    part::FractalPartitioner p;
    part::PartitionConfig config;
    config.threshold = 128;
    const part::PartitionResult part = p.partition(scene, config);
    const BlockSampleResult sampled =
        blockFarthestPointSample(scene, part.tree, 0.25);
    std::vector<float> known_feats(sampled.indices.size(), 1.0f);

    const InterpolateResult blocked = blockInterpolate(
        scene, part.tree, sampled, known_feats, 1);
    const InterpolateResult global = globalInterpolate(
        scene, known_feats, 1, sampled.indices);
    EXPECT_LT(blocked.stats.distance_computations * 4,
              global.stats.distance_computations);
}

TEST(Interpolate, WeightsAreInverseDistance)
{
    // Two known points, query halfway-ish: check the closed form.
    data::PointCloud cloud;
    cloud.addPoint({0, 0, 0});   // query
    cloud.addPoint({1, 0, 0});   // known A
    cloud.addPoint({0, 2, 0});   // known B
    const std::vector<PointIdx> known{1, 2};
    const std::vector<float> feats{10.0f, 20.0f};
    const InterpolateResult r =
        globalInterpolate(cloud, feats, 1, known, 2);
    // w_A = 1/1, w_B = 1/4 -> value = (10 + 5) / 1.25 = 12.
    EXPECT_NEAR(r.values[0], 12.0f, 1e-3f);
}

} // namespace
} // namespace fc::ops
