/**
 * @file
 * Integration tests for the FractalCloudPipeline public API.
 */

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "dataset/s3dis.h"
#include "nn/models.h"

namespace fc {
namespace {

TEST(Pipeline, EndToEndQuickstartFlow)
{
    const data::PointCloud scene = data::makeS3disScene(4096, 1);
    PipelineOptions options;
    options.threshold = 256;
    FractalCloudPipeline pipeline(scene, options);

    pipeline.tree().validate();
    EXPECT_EQ(pipeline.cloud().size(), 4096u);

    const ops::BlockSampleResult sampled = pipeline.sample(0.25);
    EXPECT_GT(sampled.indices.size(), 4096u / 8);
    EXPECT_LT(sampled.indices.size(), 4096u / 2);

    const ops::NeighborResult neighbors =
        pipeline.group(sampled, 0.4f, 16);
    EXPECT_EQ(neighbors.num_centers, sampled.indices.size());

    data::PointCloud featured = scene;
    featured.allocateFeatures(4);
    // Gather works on the pipeline's cloud (no features -> rel coords
    // only).
    const ops::GatherResult gathered =
        pipeline.gather(sampled, neighbors);
    EXPECT_EQ(gathered.channels, 3u);
    EXPECT_EQ(gathered.num_centers, sampled.indices.size());

    std::vector<float> known(sampled.indices.size(), 2.0f);
    const ops::InterpolateResult interp =
        pipeline.interpolate(sampled, known, 1);
    EXPECT_EQ(interp.num_points, scene.size());
    for (const float v : interp.values)
        EXPECT_NEAR(v, 2.0f, 1e-4f);
}

TEST(Pipeline, ReorderedIsDftLayout)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 2);
    FractalCloudPipeline pipeline(scene, {});
    const data::PointCloud dft = pipeline.reordered();
    ASSERT_EQ(dft.size(), scene.size());
    const auto &order = pipeline.tree().order();
    for (std::size_t i = 0; i < dft.size(); ++i)
        EXPECT_EQ(dft[i], scene[order[i]]);
}

TEST(Pipeline, InferMatchesNetworkBlockBackend)
{
    const data::PointCloud scene = data::makeS3disScene(1024, 3);
    PipelineOptions options;
    options.threshold = 128;
    FractalCloudPipeline pipeline(scene, options);
    const nn::Network net(nn::pointNet2SemSeg(), 42);
    const nn::InferenceResult via_pipeline = pipeline.infer(net);

    nn::BackendOptions backend;
    backend.method = part::Method::Fractal;
    backend.threshold = 128;
    const nn::InferenceResult direct = net.run(scene, backend);

    ASSERT_EQ(via_pipeline.point_features.rows(),
              direct.point_features.rows());
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_EQ(via_pipeline.point_features.at(i, 0),
                  direct.point_features.at(i, 0));
}

TEST(Pipeline, EstimateProducesReport)
{
    const data::PointCloud scene = data::makeS3disScene(8192, 4);
    FractalCloudPipeline pipeline(scene, {});
    const accel::RunReport report =
        pipeline.estimate(nn::pointNeXtSemSeg());
    EXPECT_GT(report.totalLatencyMs(), 0.0);
    EXPECT_GT(report.totalEnergyMj(), 0.0);
    EXPECT_EQ(report.accelerator, "FractalCloud");
    EXPECT_EQ(report.num_points, 8192u);
}

TEST(Pipeline, NonFractalMethodsWork)
{
    const data::PointCloud scene = data::makeS3disScene(2048, 5);
    for (const part::Method method :
         {part::Method::Uniform, part::Method::Octree,
          part::Method::KdTree}) {
        PipelineOptions options;
        options.method = method;
        options.threshold = 128;
        FractalCloudPipeline pipeline(scene, options);
        pipeline.tree().validate();
        const ops::BlockSampleResult s = pipeline.sample(0.25);
        EXPECT_GT(s.indices.size(), 0u)
            << part::methodName(method);
    }
}

TEST(PipelineDeathTest, EmptyCloudRejected)
{
    data::PointCloud empty;
    EXPECT_DEATH(
        { FractalCloudPipeline pipeline(empty, {}); }, "non-empty");
}

} // namespace
} // namespace fc
