/**
 * @file
 * Tests for the timed-resource and scheduling primitives.
 */

#include <gtest/gtest.h>

#include "sim/resource.h"
#include "sim/schedule.h"

namespace fc::sim {
namespace {

TEST(Resource, SerializesOverlappingRequests)
{
    Resource r("unit", 1.0);
    const Cycles f1 = r.acquire(0, 100);
    EXPECT_EQ(f1, 100u);
    // Second request issued at time 10 must wait.
    const Cycles f2 = r.acquire(10, 50);
    EXPECT_EQ(f2, 150u);
}

TEST(Resource, ThroughputScales)
{
    Resource fast("fast", 4.0);
    EXPECT_EQ(fast.acquire(0, 100), 25u);
}

TEST(Resource, PipelineLatencyAdds)
{
    Resource r("unit", 1.0, 10);
    EXPECT_EQ(r.acquire(0, 5), 15u);
}

TEST(Resource, UtilizationTracksBusyCycles)
{
    Resource r("unit", 1.0);
    r.acquire(0, 50);
    EXPECT_DOUBLE_EQ(r.utilization(100), 0.5);
    EXPECT_EQ(r.totalItems(), 50u);
}

TEST(Resource, ResetClears)
{
    Resource r("unit", 2.0);
    r.acquire(0, 100);
    r.reset();
    EXPECT_EQ(r.busyUntil(), 0u);
    EXPECT_EQ(r.busyCycles(), 0u);
}

TEST(Lpt, SingleLaneIsSerial)
{
    EXPECT_EQ(lptMakespan({10, 20, 30}, 1), 60u);
}

TEST(Lpt, PerfectSplit)
{
    EXPECT_EQ(lptMakespan({10, 10, 10, 10}, 4), 10u);
    EXPECT_EQ(lptMakespan({30, 10, 10, 10}, 2), 30u);
}

TEST(Lpt, BoundedByMaxAndAverage)
{
    const std::vector<Cycles> tasks{17, 3, 29, 8, 11, 5, 23, 2};
    const std::size_t lanes = 3;
    const Cycles makespan = lptMakespan(tasks, lanes);
    Cycles total = 0, longest = 0;
    for (const Cycles t : tasks) {
        total += t;
        longest = std::max(longest, t);
    }
    EXPECT_GE(makespan, std::max<Cycles>(longest, total / lanes));
    // LPT is a 4/3-approximation of optimal.
    EXPECT_LE(makespan,
              (std::max<Cycles>(longest, (total + lanes - 1) / lanes) *
                   4 + 2) / 3);
}

TEST(Lpt, EmptyTasksZero)
{
    EXPECT_EQ(lptMakespan({}, 4), 0u);
    EXPECT_EQ(serialLatency({}), 0u);
}

TEST(Serial, SumsTasks)
{
    EXPECT_EQ(serialLatency({1, 2, 3, 4}), 10u);
}

TEST(Cycles, Conversions)
{
    EXPECT_DOUBLE_EQ(cyclesToSeconds(1'000'000'000, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(cyclesToMs(2'000'000, 1.0), 2.0);
    EXPECT_DOUBLE_EQ(cyclesToMs(2'000'000, 2.0), 1.0);
    EXPECT_EQ(ceilDiv(10, 3), 4u);
    EXPECT_EQ(ceilDiv(9, 3), 3u);
}

} // namespace
} // namespace fc::sim
