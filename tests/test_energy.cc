/**
 * @file
 * Tests for the 28 nm energy model.
 */

#include <gtest/gtest.h>

#include "sim/energy.h"

namespace fc::sim {
namespace {

TEST(Energy, MacAccumulation)
{
    EnergyMeter m;
    m.addMacs(1000);
    EXPECT_DOUBLE_EQ(m.computePj(), 1000.0 * m.config().mac_pj);
}

TEST(Energy, DistanceAndCompareSeparate)
{
    EnergyMeter m;
    m.addDistances(10);
    m.addCompares(100);
    EXPECT_DOUBLE_EQ(m.computePj(),
                     10 * m.config().distance_pj +
                         100 * m.config().compare_pj);
}

TEST(Energy, SramSizeScaling)
{
    EnergyMeter m;
    m.addSramBytes(1000, 274 * 1024); // baseline macro
    const double base = m.sramPj();
    EnergyMeter big;
    big.addSramBytes(1000, 4 * 274 * 1024); // 4x macro -> 4x energy
    EXPECT_NEAR(big.sramPj(), 4.0 * base, 1e-9);
}

TEST(Energy, DramPerByte)
{
    EnergyMeter m;
    m.addDramBytes(1'000'000);
    EXPECT_DOUBLE_EQ(m.dramPj(),
                     1e6 * m.config().dram_pj_per_byte);
}

TEST(Energy, StaticScalesWithTime)
{
    EnergyMeter m;
    m.addStatic(1'000'000'000, 1.0); // 1 second at 1 GHz
    // 0.06 W for 1 s = 0.06 J = 6e10 pJ, plus control overhead.
    EXPECT_GT(m.staticPj(), 5.9e10);
    EXPECT_LT(m.staticPj(), 1.2e11);
}

TEST(Energy, TotalsAndReset)
{
    EnergyMeter m;
    m.addMacs(10);
    m.addDramBytes(10);
    m.addSramBytes(10, 274 * 1024);
    EXPECT_DOUBLE_EQ(m.totalPj(),
                     m.computePj() + m.sramPj() + m.dramPj() +
                         m.staticPj());
    EXPECT_GT(m.totalMj(), 0.0);
    m.reset();
    EXPECT_DOUBLE_EQ(m.totalPj(), 0.0);
}

TEST(Energy, DramDominatesSramPerByte)
{
    // Sanity: the technology constants preserve the DRAM >> SRAM
    // per-byte energy ordering every conclusion relies on.
    EnergyMeter m;
    EXPECT_GT(m.config().dram_pj_per_byte,
              20.0 * m.config().sram_pj_per_byte);
}

} // namespace
} // namespace fc::sim
