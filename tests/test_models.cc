/**
 * @file
 * Tests for the model zoo (Table I) configurations.
 */

#include <gtest/gtest.h>

#include "nn/models.h"

namespace fc::nn {
namespace {

TEST(Models, TableOneHasSevenWorkloads)
{
    const auto models = allModels();
    ASSERT_EQ(models.size(), 7u);
    EXPECT_EQ(models[0].name, "PN++ (c)");
    EXPECT_EQ(models[1].name, "PNXt (c)");
    EXPECT_EQ(models[2].name, "PN++ (ps)");
    EXPECT_EQ(models[3].name, "PNXt (ps)");
    EXPECT_EQ(models[4].name, "PN++ (s)");
    EXPECT_EQ(models[5].name, "PNXt (s)");
    EXPECT_EQ(models[6].name, "PVr (s)");
}

TEST(Models, ClassificationHasNoPropagation)
{
    EXPECT_TRUE(pointNet2Classification().fp.empty());
    EXPECT_TRUE(pointNeXtClassification().fp.empty());
    EXPECT_FALSE(pointNet2Classification().isSegmentation());
}

TEST(Models, SegmentationStagesPaired)
{
    for (const ModelConfig &m :
         {pointNet2SemSeg(), pointNeXtSemSeg(), pointVectorSemSeg(),
          pointNet2PartSeg()}) {
        EXPECT_FALSE(m.fp.empty()) << m.name;
        EXPECT_LE(m.fp.size(), m.sa.size()) << m.name;
        EXPECT_TRUE(m.isSegmentation()) << m.name;
    }
}

TEST(Models, SamplingRatesAreValid)
{
    for (const ModelConfig &m : allModels()) {
        for (const SaStageConfig &s : m.sa) {
            EXPECT_GT(s.sample_rate, 0.0) << m.name;
            EXPECT_LE(s.sample_rate, 1.0) << m.name;
            EXPECT_GT(s.radius, 0.0f) << m.name;
            EXPECT_GT(s.k, 0u) << m.name;
            EXPECT_FALSE(s.mlp.empty()) << m.name;
        }
    }
}

TEST(Models, RadiiGrowWithDepth)
{
    for (const ModelConfig &m : allModels()) {
        for (std::size_t i = 1; i < m.sa.size(); ++i)
            EXPECT_GE(m.sa[i].radius, m.sa[i - 1].radius) << m.name;
    }
}

TEST(Models, PointVectorIsWidest)
{
    const auto widest = [](const ModelConfig &m) {
        std::size_t w = 0;
        for (const auto &s : m.sa)
            for (const std::size_t width : s.mlp)
                w = std::max(w, width);
        return w;
    };
    EXPECT_GT(widest(pointVectorSemSeg()), widest(pointNeXtSemSeg()));
    EXPECT_GT(widest(pointVectorSemSeg()), widest(pointNet2SemSeg()));
}

TEST(Models, ScaledRadiiMultiplies)
{
    const ModelConfig base = pointNeXtSemSeg();
    const ModelConfig scaled = scaledRadii(base, 2.0f);
    for (std::size_t i = 0; i < base.sa.size(); ++i)
        EXPECT_FLOAT_EQ(scaled.sa[i].radius, 2.0f * base.sa[i].radius);
}

TEST(Models, TaskNames)
{
    EXPECT_EQ(taskName(Task::Classification), "classification");
    EXPECT_EQ(taskName(Task::PartSegmentation), "part segmentation");
    EXPECT_EQ(taskName(Task::SemanticSegmentation),
              "semantic segmentation");
}

} // namespace
} // namespace fc::nn
