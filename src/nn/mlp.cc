#include "nn/mlp.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "core/workspace.h"

namespace fc::nn {

LinearRelu::LinearRelu(std::size_t in, std::size_t out,
                       std::uint64_t seed, bool relu)
    : in_(in), out_(out), relu_(relu), weights_(out, in),
      bias_(out, 0.0f)
{
    fc_assert(in > 0 && out > 0, "degenerate layer %zux%zu", in, out);
    Pcg32 rng(seed, 0x2545f4914f6cdd1dULL);
    const float scale =
        std::sqrt(2.0f / static_cast<float>(in)); // He init
    for (std::size_t o = 0; o < out; ++o)
        for (std::size_t i = 0; i < in; ++i)
            weights_.at(o, i) = rng.normal(0.0f, scale);
    for (std::size_t o = 0; o < out; ++o)
        bias_[o] = rng.normal(0.0f, 0.01f);
    weights_.quantizeFp16();
    // Exact bit-for-bit mirror: weights_ is fp16-valued after the
    // quantize above, so this conversion loses nothing.
    weights_fp16_.resize(out * in);
    core::simd::fp32ToFp16Buffer(weights_.data().data(),
                                 weights_fp16_.data(), out * in);
}

void
LinearRelu::forward(const Tensor &x, core::ThreadPool *pool,
                    Tensor &y) const
{
    fc_assert(x.cols() == in_, "layer expects %zu channels, got %zu",
              in_, x.cols());
    fc_assert(&x != &y, "LinearRelu::forward cannot run in place");
    y.resize(x.rows(), out_);
    // Each row owns its output slice; the grain is a pure function of
    // the layer shape, so chunking never affects the arithmetic.
    core::parallelFor(
        pool, 0, x.rows(), core::costGrain(in_ * out_),
        [&](std::size_t rb, std::size_t re) {
            for (std::size_t r = rb; r < re; ++r) {
                const auto xin = x.row(r);
                auto yout = y.row(r);
                for (std::size_t o = 0; o < out_; ++o) {
                    // fp32 accumulation over fp16 operands, as in the
                    // PE array; the bias seeds the accumulator.
                    float acc = core::simd::dotAcc(
                        bias_[o], weights_.row(o).data(), xin.data(),
                        in_);
                    if (relu_ && acc < 0.0f)
                        acc = 0.0f;
                    yout[o] = acc;
                }
                core::simd::fp16RoundBuffer(yout.data(), out_);
            }
        });
}

Tensor
LinearRelu::forward(const Tensor &x, core::ThreadPool *pool) const
{
    Tensor y;
    forward(x, pool, y);
    return y;
}

void
LinearRelu::forward(const HalfTensor &x, core::ThreadPool *pool,
                    HalfTensor &y) const
{
    fc_assert(x.cols() == in_, "layer expects %zu channels, got %zu",
              in_, x.cols());
    fc_assert(&x != &y, "LinearRelu::forward cannot run in place");
    y.resize(x.rows(), out_);
    // Output neurons stage through a fixed stack tile so the binary16
    // store runs through the vector converter, keeping the row loop
    // allocation-free.
    constexpr std::size_t kOutTile = 128;
    core::parallelFor(
        pool, 0, x.rows(), core::costGrain(in_ * out_),
        [&](std::size_t rb, std::size_t re) {
            float tile[kOutTile];
            for (std::size_t r = rb; r < re; ++r) {
                const std::uint16_t *xin = x.row(r).data();
                std::uint16_t *yout = y.row(r).data();
                for (std::size_t ob = 0; ob < out_; ob += kOutTile) {
                    const std::size_t oe =
                        std::min(out_, ob + kOutTile);
                    for (std::size_t o = ob; o < oe; ++o) {
                        // Same fp32 accumulation scheme as the fp32-
                        // storage path (core/simd.h), so activations
                        // match it bit for bit.
                        float acc = core::simd::dotAccFp16(
                            bias_[o], weights_fp16_.data() + o * in_,
                            xin, in_);
                        if (relu_ && acc < 0.0f)
                            acc = 0.0f;
                        tile[o - ob] = acc;
                    }
                    core::simd::fp32ToFp16Buffer(tile, yout + ob,
                                                 oe - ob);
                }
            }
        });
}

Mlp::Mlp(const std::vector<std::size_t> &widths, std::uint64_t seed)
{
    fc_assert(widths.size() >= 2, "MLP needs at least in/out widths");
    layers_.reserve(widths.size() - 1);
    for (std::size_t i = 0; i + 1 < widths.size(); ++i)
        layers_.emplace_back(widths[i], widths[i + 1], seed + i);
}

Tensor
Mlp::forward(const Tensor &x, core::ThreadPool *pool) const
{
    fc_assert(!layers_.empty(), "forward through empty MLP");
    Tensor cur = layers_.front().forward(x, pool);
    for (std::size_t i = 1; i < layers_.size(); ++i)
        cur = layers_[i].forward(cur, pool);
    return cur;
}

void
Mlp::forward(const Tensor &x, core::ThreadPool *pool,
             core::Workspace &ws, Tensor &out) const
{
    fc_assert(!layers_.empty(), "forward through empty MLP");
    if (layers_.size() == 1) {
        layers_.front().forward(x, pool, out);
        return;
    }
    Tensor &ping = ws.slot<Tensor>("mlp.ping");
    Tensor &pong = ws.slot<Tensor>("mlp.pong");
    const Tensor *cur = &x;
    for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
        Tensor &dst = (i % 2 == 0) ? ping : pong;
        layers_[i].forward(*cur, pool, dst);
        cur = &dst;
    }
    layers_.back().forward(*cur, pool, out);
}

void
Mlp::forward(const HalfTensor &x, core::ThreadPool *pool,
             core::Workspace &ws, HalfTensor &out) const
{
    fc_assert(!layers_.empty(), "forward through empty MLP");
    if (layers_.size() == 1) {
        layers_.front().forward(x, pool, out);
        return;
    }
    HalfTensor &ping = ws.slot<HalfTensor>("mlp.hping");
    HalfTensor &pong = ws.slot<HalfTensor>("mlp.hpong");
    const HalfTensor *cur = &x;
    for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
        HalfTensor &dst = (i % 2 == 0) ? ping : pong;
        layers_[i].forward(*cur, pool, dst);
        cur = &dst;
    }
    layers_.back().forward(*cur, pool, out);
}

std::size_t
Mlp::inDim() const
{
    fc_assert(!layers_.empty(), "empty MLP");
    return layers_.front().inDim();
}

std::size_t
Mlp::outDim() const
{
    fc_assert(!layers_.empty(), "empty MLP");
    return layers_.back().outDim();
}

std::uint64_t
Mlp::macs(std::uint64_t rows) const
{
    std::uint64_t total = 0;
    for (const auto &layer : layers_)
        total += layer.macs(rows);
    return total;
}

void
maxPoolGroups(const Tensor &x, std::size_t group_size,
              core::ThreadPool *pool, Tensor &y)
{
    fc_assert(group_size > 0, "group size must be positive");
    fc_assert(x.rows() % group_size == 0,
              "rows %zu not a multiple of group size %zu", x.rows(),
              group_size);
    fc_assert(&x != &y, "maxPoolGroups cannot run in place");
    const std::size_t groups = x.rows() / group_size;
    y.resize(groups, x.cols());
    core::parallelFor(
        pool, 0, groups, core::costGrain(group_size * x.cols()),
        [&](std::size_t gb, std::size_t ge) {
            for (std::size_t g = gb; g < ge; ++g) {
                auto out = y.row(g);
                for (std::size_t c = 0; c < x.cols(); ++c)
                    out[c] = x.at(g * group_size, c);
                for (std::size_t j = 1; j < group_size; ++j) {
                    const auto in = x.row(g * group_size + j);
                    for (std::size_t c = 0; c < x.cols(); ++c)
                        out[c] = std::max(out[c], in[c]);
                }
            }
        });
}

Tensor
maxPoolGroups(const Tensor &x, std::size_t group_size,
              core::ThreadPool *pool)
{
    Tensor y;
    maxPoolGroups(x, group_size, pool, y);
    return y;
}

void
globalMaxPool(const Tensor &x, Tensor &y)
{
    fc_assert(x.rows() > 0, "global pool over empty tensor");
    fc_assert(&x != &y, "globalMaxPool cannot run in place");
    y.resize(1, x.cols());
    auto out = y.row(0);
    for (std::size_t c = 0; c < x.cols(); ++c)
        out[c] = x.at(0, c);
    for (std::size_t r = 1; r < x.rows(); ++r) {
        const auto in = x.row(r);
        for (std::size_t c = 0; c < x.cols(); ++c)
            out[c] = std::max(out[c], in[c]);
    }
}

Tensor
globalMaxPool(const Tensor &x)
{
    Tensor y;
    globalMaxPool(x, y);
    return y;
}

} // namespace fc::nn
