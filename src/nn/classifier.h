/**
 * @file
 * Nearest-centroid heads for the accuracy proxy (DESIGN.md §4.2).
 *
 * With fixed network weights, a nearest-centroid classifier over the
 * network's embeddings measures how much discriminative information
 * each point-operation pipeline preserves: degraded sampling or
 * grouping perturbs embeddings and lowers accuracy, reproducing the
 * paper's accuracy ordering without a training loop.
 */

#ifndef FC_NN_CLASSIFIER_H
#define FC_NN_CLASSIFIER_H

#include <cstdint>
#include <span>
#include <vector>

namespace fc::nn {

/** Cosine-distance nearest-centroid classifier. */
class NearestCentroid
{
  public:
    /**
     * Fit per-class centroids.
     *
     * @param features    row-major [n x dim]
     * @param dim         feature dimension
     * @param labels      n class labels in [0, num_classes)
     * @param num_classes class count
     */
    void fit(const std::vector<float> &features, std::size_t dim,
             const std::vector<int> &labels, int num_classes);

    /** Predict the class of one feature row. */
    int predict(std::span<const float> feature) const;

    std::size_t dim() const { return dim_; }
    int numClasses() const { return num_classes_; }

  private:
    std::size_t dim_ = 0;
    int num_classes_ = 0;
    std::vector<float> centroids_; ///< [num_classes x dim], L2-normed
    std::vector<bool> seen_;       ///< classes with >=1 training row
};

/** Overall accuracy (the paper's OA metric). */
double overallAccuracy(const std::vector<int> &predictions,
                       const std::vector<int> &labels);

/** Mean intersection-over-union (the paper's mIoU metric). */
double meanIoU(const std::vector<int> &predictions,
               const std::vector<int> &labels, int num_classes);

} // namespace fc::nn

#endif // FC_NN_CLASSIFIER_H
