/**
 * @file
 * The evaluated network zoo (paper Table I): PointNet++, PointNeXt,
 * and PointVector on classification, part segmentation, and semantic
 * segmentation. Stage shapes (sampling rates, radii, neighbor counts,
 * MLP widths) follow the published configurations of each network.
 */

#ifndef FC_NN_MODELS_H
#define FC_NN_MODELS_H

#include <cstdint>
#include <string>
#include <vector>

namespace fc::nn {

enum class Task
{
    Classification,
    PartSegmentation,
    SemanticSegmentation,
};

std::string taskName(Task task);

/** One set-abstraction stage. */
struct SaStageConfig
{
    /** Fraction of incoming points kept by sampling. */
    double sample_rate = 0.25;

    /** Ball-query radius (scene units). */
    float radius = 0.2f;

    /** Neighbors per center. */
    std::size_t k = 32;

    /** MLP widths applied per gathered point (excluding input dim). */
    std::vector<std::size_t> mlp;
};

/** One feature-propagation (interpolation) stage. */
struct FpStageConfig
{
    /** MLP widths applied after interpolation (excluding input dim). */
    std::vector<std::size_t> mlp;
};

/** A full network. */
struct ModelConfig
{
    std::string name;     ///< e.g. "PNXt (s)"
    std::string long_name; ///< e.g. "PointNeXt semantic segmentation"
    Task task = Task::Classification;

    std::vector<SaStageConfig> sa;

    /** Propagation stages (segmentation only), coarse-to-fine. */
    std::vector<FpStageConfig> fp;

    /** Head MLP widths (after global pool for classification). */
    std::vector<std::size_t> head;

    int num_classes = 40;

    /** Input feature channels in addition to xyz (0 = coords only). */
    std::size_t input_channels = 0;

    bool isSegmentation() const { return !fp.empty(); }
};

/** Table I rows. */
ModelConfig pointNet2Classification();
ModelConfig pointNeXtClassification();
ModelConfig pointNet2PartSeg();
ModelConfig pointNeXtPartSeg();
ModelConfig pointNet2SemSeg();
ModelConfig pointNeXtSemSeg();
ModelConfig pointVectorSemSeg();

/** All seven workloads of Table I, in the paper's order. */
std::vector<ModelConfig> allModels();

/** Scale every radius by @p factor (scene-size adaptation). */
ModelConfig scaledRadii(ModelConfig config, float factor);

} // namespace fc::nn

#endif // FC_NN_MODELS_H
