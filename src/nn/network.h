/**
 * @file
 * Functional PNN inference with pluggable point-operation backends.
 *
 * The same fixed-weight network can run with global point operations
 * (the lossless PointAcc baseline) or with any partition method plus
 * any subset of the block-wise operations (BWS / BWG / BWI toggles) —
 * exactly the knobs behind the paper's accuracy results (Fig. 14,
 * Fig. 17) and the functional half of the BPPO ablation (Fig. 18).
 *
 * Per paper §IV, block structure is derived from the stage's input
 * coordinates on-chip ("on-chip fractal"), so each abstraction stage
 * re-partitions its own input when block ops are enabled.
 *
 * Execution is pool-driven end to end: BackendOptions::pool threads a
 * core::ThreadPool through every stage — re-partitioning, block-wise
 * point ops, per-row MLPs, per-group pooling, interpolation — with
 * output bit-identical to the sequential path at any thread count
 * (the same determinism contract as the rest of the runtime).
 */

#ifndef FC_NN_NETWORK_H
#define FC_NN_NETWORK_H

#include <cstdint>
#include <memory>
#include <vector>

#include "dataset/point_cloud.h"
#include "nn/mlp.h"
#include "nn/models.h"
#include "ops/fps.h"
#include "ops/op_stats.h"
#include "partition/partitioner.h"

namespace fc::core {
class ThreadPool;
class Workspace;
namespace metrics {
class Registry;
}
}

namespace fc::nn {

/**
 * Numeric mode of the MLP pathway.
 *
 * Mixed is the historical path: activations live in fp32 tensors
 * whose values are fp16-rounded after every layer. Fp16 stores
 * activations as binary16 bits end to end (HalfTensor), halving
 * activation bandwidth like the accelerator's datapath. Both modes
 * accumulate in fp32 with the same core::simd scheme, and every MLP
 * input is fp16-valued before conversion, so the two modes produce
 * bit-identical results at a given dispatch level.
 */
enum class Precision
{
    Mixed,
    Fp16,
};

/**
 * Execution order of every set-abstraction stage (the
 * gather -> MLP -> pool pipeline of §II-A).
 *
 * Eager is the historical gather-then-compute order: neighbor
 * grouping materializes one [rel-coord, feature] row per
 * (center, neighbor) pair and the stage MLP runs on every one of the
 * k copies of each point — k-fold redundant FLOP work.
 *
 * Delayed is the Mesorasi-style compute-then-aggregate order: the
 * stage MLP runs once per *unique* input point, grouping becomes an
 * index-gather over the resulting feature tensor, and max-pool
 * aggregation follows. The per-pair relative coordinate the eager
 * MLP consumed is summarized at the pooling step instead
 * (ops::maxPoolRelativeCoords) and concatenated into the coordinate
 * channels of the *next* stage's unique-point MLP input (stage 0
 * feeds zeros — each point taken relative to itself). Semantics are
 * equivalent up to a radius-bounded tolerance at the pooling step:
 * the two orders agree exactly when every neighborhood collapses to
 * its center (r_ij = 0) and drift apart by at most the MLP's
 * Lipschitz response to ||r_ij|| <= radius otherwise (see
 * docs/ARCHITECTURE.md and tests/test_delayed_aggregation.cc).
 *
 * Within each mode every runtime invariant is preserved: results are
 * bit-identical across thread counts, shard counts, warm/cold
 * workspaces, and the Fp16/Mixed precision pair, and the warm
 * same-shape run performs zero heap allocations. Delayed executes
 * strictly fewer MLP row-forwards (InferenceResult::sa_mlp_rows:
 * unique-point count vs gathered count — bench_delayed_aggregation
 * reports both).
 */
enum class Aggregation
{
    Eager,
    Delayed,
};

/** Point-operation backend selection. */
struct BackendOptions
{
    /** Partition method for block ops (None = pure global ops). */
    part::Method method = part::Method::None;

    /** Block threshold th (64 small-scale / 256 large-scale). */
    std::uint32_t threshold = 64;

    /** Block-wise sampling (BWS). */
    bool block_sampling = true;

    /** Block-wise grouping / neighbor search (BWG). */
    bool block_grouping = true;

    /** Block-wise interpolation (BWI). */
    bool block_interpolation = true;

    /**
     * PNNPU-style fixed sample count per block instead of the paper's
     * fixed rate. Defaults to on for space-uniform partitioning
     * (matching the design being modelled) unless overridden.
     */
    bool fixed_count_sampling = false;

    /** Numeric mode of the MLP pathway (see Precision). */
    Precision precision = Precision::Mixed;

    /**
     * Execution order of the set-abstraction stages (see
     * Aggregation). Eager = gather-then-compute (historical);
     * Delayed = unique-point MLPs before grouping, max-pool after —
     * strictly fewer MLP row-forwards at a documented radius-bounded
     * tolerance. Orthogonal to every other option: composes with
     * block ops, precision, pool, root_partition, and metrics.
     */
    Aggregation aggregation = Aggregation::Eager;

    /**
     * Pool driving every stage of Network::run: the per-stage
     * on-chip re-partition, block-wise sampling / grouping /
     * gathering / interpolation, per-row MLP application, and
     * per-group max pooling. Null (or a single-thread pool) is the
     * exact sequential path; any thread count produces a
     * bit-identical InferenceResult. The pool is borrowed, never
     * owned — FractalCloudPipeline::infer passes its own pool, and
     * standalone users keep theirs alive across run() calls.
     */
    core::ThreadPool *pool = nullptr;

    /**
     * Optional precomputed partition of the *input* cloud, reused as
     * SA stage 0's on-chip partition when its method and threshold
     * match this backend (deeper stages always re-partition their own
     * input). Partition construction is deterministic, so reuse is a
     * pure wall-clock saving: the InferenceResult — including
     * partition_stats, which still charge stage 0's construction work
     * — is bit-identical to recomputing. Borrowed, never owned.
     * FractalCloudPipeline::infer and the serve inference stage pass
     * the partition they already built.
     */
    const part::PartitionResult *root_partition = nullptr;

    /**
     * Optional metrics sink. When set, run() records wall-clock time
     * per functional stage into nn.stage_us{stage=partition|fps|
     * neighbor|gather|mlp|interpolate} histograms — the measured
     * counterpart of the paper's Fig. 2 bottleneck split (neighbor
     * search and sampling dominating end-to-end latency). Under
     * Aggregation::Delayed the SA gather/mlp split is recorded as
     * nn.stage_us{stage=mlp_unique} (the unique-point MLP pass) and
     * nn.stage_us{stage=aggregate} (feature gather + max-pool +
     * rel-coord summary) instead, so the eager-vs-delayed shift is
     * directly measurable. Borrowed, never owned; instrument lookup
     * happens once per run() call, and recording is skipped entirely
     * when metrics sampling is off.
     */
    core::metrics::Registry *metrics = nullptr;

    bool
    anyBlockOp() const
    {
        return method != part::Method::None &&
               (block_sampling || block_grouping || block_interpolation);
    }
};

/** Output of one inference. */
struct InferenceResult
{
    /** Pooled embedding (classification) — [1 x c]. */
    Tensor embedding;

    /** Per-point features (segmentation) — [n x c]. */
    Tensor point_features;

    /** Aggregate functional work counters across all point ops. */
    ops::OpStats op_stats;

    /** Aggregate partitioning work across stages. */
    part::PartitionStats partition_stats;

    /** Total MLP multiply-accumulates. */
    std::uint64_t total_macs = 0;

    /**
     * Rows fed to the set-abstraction MLPs across all stages — the
     * measured half of the delayed-aggregation claim. Eager counts
     * the gathered rows (num_centers x k per stage), Delayed the
     * unique input points (n per stage); Delayed is strictly smaller
     * whenever any stage has sample_rate x k > 1 (every Table I
     * model). FP and head rows are identical in both modes and not
     * counted here.
     */
    std::uint64_t sa_mlp_rows = 0;
};

/**
 * A fixed-weight network instantiated from a ModelConfig.
 */
class Network
{
  public:
    /**
     * @param config stage configuration (Table I)
     * @param seed   weight seed; two Networks with equal config+seed
     *               have identical weights
     */
    Network(ModelConfig config, std::uint64_t seed = 42);

    /** Run inference over @p cloud using @p backend point ops. */
    InferenceResult run(const data::PointCloud &cloud,
                        const BackendOptions &backend = {}) const;

    /**
     * Workspace overload — the allocation-free steady-state path.
     * Every intermediate (per-stage partitions, level clouds and
     * feature tensors, gathered/grouped buffers, FP merge and
     * reorder scratch, MLP ping-pong rows) lives in named slots of
     * @p ws, and @p out is rewritten reusing its capacity. The
     * second and later calls with a same-shape cloud perform zero
     * heap allocations when running sequentially (pooled dispatch
     * still allocates its task closures). Results are bit-identical
     * to the value-returning form — which wraps this one — at any
     * thread count and any warm/cold state. @p ws is used
     * single-owner; call ws.reset() between requests.
     */
    void run(const data::PointCloud &cloud,
             const BackendOptions &backend, core::Workspace &ws,
             InferenceResult &out) const;

    const ModelConfig &config() const { return config_; }

    /** Output feature dimension of the embedding / point features. */
    std::size_t outputDim() const;

  private:
    ModelConfig config_;
    std::vector<Mlp> saMlps_;
    std::vector<Mlp> fpMlps_;
    Mlp headMlp_;

    /** Channel count entering SA stage i. */
    std::vector<std::size_t> levelChannels_;
};

/**
 * Group arbitrary sampled indices by leaf of @p tree, producing the
 * BlockSampleResult layout expected by block-wise neighbor search
 * (samples are reordered by DFT position).
 */
ops::BlockSampleResult
makeBlockSample(const part::BlockTree &tree,
                const std::vector<PointIdx> &indices);

/** Workspace overload: the inverse-permutation scratch comes from
 *  @p ws's arena and @p out reuses its capacity. */
void makeBlockSample(const part::BlockTree &tree,
                     const std::vector<PointIdx> &indices,
                     core::Workspace &ws,
                     ops::BlockSampleResult &out);

} // namespace fc::nn

#endif // FC_NN_NETWORK_H
