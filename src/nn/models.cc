#include "nn/models.h"

#include "common/logging.h"

namespace fc::nn {

std::string
taskName(Task task)
{
    switch (task) {
      case Task::Classification:
        return "classification";
      case Task::PartSegmentation:
        return "part segmentation";
      case Task::SemanticSegmentation:
        return "semantic segmentation";
    }
    fc_panic("unknown task");
}

ModelConfig
pointNet2Classification()
{
    // PointNet++ SSG (Qi et al. 2017), ModelNet40 @ 1K points.
    ModelConfig m;
    m.name = "PN++ (c)";
    m.long_name = "PointNet++ classification";
    m.task = Task::Classification;
    m.sa = {
        {0.5, 0.2f, 32, {64, 64, 128}},
        {0.25, 0.4f, 64, {128, 128, 256}},
    };
    m.head = {256, 512, 1024, 512, 256};
    m.num_classes = 40;
    return m;
}

ModelConfig
pointNeXtClassification()
{
    // PointNeXt-S (Qian et al. 2022): 4 stages, stride-4 sampling.
    ModelConfig m;
    m.name = "PNXt (c)";
    m.long_name = "PointNeXt classification";
    m.task = Task::Classification;
    m.sa = {
        {0.25, 0.15f, 32, {64, 64}},
        {0.25, 0.3f, 32, {128, 128}},
        {0.25, 0.6f, 32, {256, 256}},
        {0.25, 1.2f, 32, {512, 512}},
    };
    m.head = {512, 512, 256};
    m.num_classes = 40;
    return m;
}

ModelConfig
pointNet2PartSeg()
{
    // PointNet++ part segmentation, ShapeNet @ 2K points.
    ModelConfig m;
    m.name = "PN++ (ps)";
    m.long_name = "PointNet++ part segmentation";
    m.task = Task::PartSegmentation;
    m.sa = {
        {0.25, 0.2f, 32, {64, 64, 128}},
        {0.25, 0.4f, 64, {128, 128, 256}},
    };
    m.fp = {
        {{256, 256}},
        {{256, 128}},
    };
    m.head = {128, 128};
    m.num_classes = 5; // max parts per category
    return m;
}

ModelConfig
pointNeXtPartSeg()
{
    ModelConfig m;
    m.name = "PNXt (ps)";
    m.long_name = "PointNeXt part segmentation";
    m.task = Task::PartSegmentation;
    m.sa = {
        {0.25, 0.15f, 32, {64, 64}},
        {0.25, 0.3f, 32, {128, 128}},
        {0.25, 0.6f, 32, {256, 256}},
    };
    m.fp = {
        {{256, 256}},
        {{256, 128}},
        {{128, 128}},
    };
    m.head = {128, 64};
    m.num_classes = 5;
    return m;
}

ModelConfig
pointNet2SemSeg()
{
    // PointNet++ semantic segmentation, S3DIS.
    ModelConfig m;
    m.name = "PN++ (s)";
    m.long_name = "PointNet++ semantic segmentation";
    m.task = Task::SemanticSegmentation;
    m.sa = {
        {0.25, 0.1f, 32, {32, 32, 64}},
        {0.25, 0.2f, 32, {64, 64, 128}},
        {0.25, 0.4f, 32, {128, 128, 256}},
        {0.25, 0.8f, 32, {256, 256, 512}},
    };
    m.fp = {
        {{256, 256}},
        {{256, 256}},
        {{256, 128}},
        {{128, 128, 128}},
    };
    m.head = {128, 64};
    m.num_classes = 13;
    return m;
}

ModelConfig
pointNeXtSemSeg()
{
    // PointNeXt-S semantic segmentation.
    ModelConfig m;
    m.name = "PNXt (s)";
    m.long_name = "PointNeXt semantic segmentation";
    m.task = Task::SemanticSegmentation;
    m.sa = {
        {0.25, 0.1f, 32, {64, 64}},
        {0.25, 0.2f, 32, {128, 128}},
        {0.25, 0.4f, 32, {256, 256}},
        {0.25, 0.8f, 32, {512, 512}},
    };
    m.fp = {
        {{256, 256}},
        {{256, 256}},
        {{128, 128}},
        {{64, 64}},
    };
    m.head = {64, 32};
    m.num_classes = 13;
    return m;
}

ModelConfig
pointVectorSemSeg()
{
    // PointVector-L: vector representation, wider channels.
    ModelConfig m;
    m.name = "PVr (s)";
    m.long_name = "PointVector semantic segmentation";
    m.task = Task::SemanticSegmentation;
    m.sa = {
        {0.25, 0.1f, 32, {96, 96}},
        {0.25, 0.2f, 32, {192, 192}},
        {0.25, 0.4f, 32, {384, 384}},
        {0.25, 0.8f, 32, {768, 768}},
    };
    m.fp = {
        {{384, 384}},
        {{384, 192}},
        {{192, 96}},
        {{96, 96}},
    };
    m.head = {96, 48};
    m.num_classes = 13;
    return m;
}

std::vector<ModelConfig>
allModels()
{
    return {
        pointNet2Classification(), pointNeXtClassification(),
        pointNet2PartSeg(),        pointNeXtPartSeg(),
        pointNet2SemSeg(),         pointNeXtSemSeg(),
        pointVectorSemSeg(),
    };
}

ModelConfig
scaledRadii(ModelConfig config, float factor)
{
    for (auto &stage : config.sa)
        stage.radius *= factor;
    return config;
}

} // namespace fc::nn
