/**
 * @file
 * Minimal dense 2D tensor for the PNN substrate.
 *
 * Row-major float storage; the quantize() helper rounds every element
 * through IEEE binary16 to model the fp16 datapath of the accelerator
 * (weights and activations are fp16, accumulation fp32).
 */

#ifndef FC_NN_TENSOR_H
#define FC_NN_TENSOR_H

#include <cstddef>
#include <span>
#include <vector>

#include "common/fp16.h"
#include "common/logging.h"
#include "core/parallel.h"

namespace fc::nn {

class Tensor
{
  public:
    Tensor() = default;

    Tensor(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        fc_assert(data_.size() == rows_ * cols_,
                  "tensor data size %zu != %zu x %zu", data_.size(),
                  rows_, cols_);
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &
    at(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    float
    at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::span<float>
    row(std::size_t r)
    {
        return {data_.data() + r * cols_, cols_};
    }

    std::span<const float>
    row(std::size_t r) const
    {
        return {data_.data() + r * cols_, cols_};
    }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /**
     * Reshape in place to [rows x cols]. Capacity is reused (a
     * same-or-smaller reshape never allocates), which is what lets
     * workspace tensor slots serve repeated same-shape requests
     * without touching the heap. Retained elements keep their old
     * values (growth is zero-filled): every producer writes the full
     * buffer, so a clearing pass would be one wasted serial sweep
     * per stage on the steady-state path.
     */
    void
    resize(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    /**
     * Round every element through binary16. Elementwise, so the
     * chunks dispatch over @p pool with bit-identical results at any
     * thread count (null = the serial loop this always was).
     */
    void
    quantizeFp16(core::ThreadPool *pool = nullptr)
    {
        float *values = data_.data();
        core::parallelFor(pool, 0, data_.size(), core::costGrain(2),
                          [values](std::size_t cb, std::size_t ce) {
                              for (std::size_t i = cb; i < ce; ++i)
                                  values[i] = fp16Round(values[i]);
                          });
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace fc::nn

#endif // FC_NN_TENSOR_H
