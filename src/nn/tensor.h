/**
 * @file
 * Minimal dense 2D tensor for the PNN substrate.
 *
 * Row-major float storage; the quantize() helper rounds every element
 * through IEEE binary16 to model the fp16 datapath of the accelerator
 * (weights and activations are fp16, accumulation fp32).
 */

#ifndef FC_NN_TENSOR_H
#define FC_NN_TENSOR_H

#include <cstddef>
#include <span>
#include <vector>

#include "common/fp16.h"
#include "common/logging.h"

namespace fc::nn {

class Tensor
{
  public:
    Tensor() = default;

    Tensor(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        fc_assert(data_.size() == rows_ * cols_,
                  "tensor data size %zu != %zu x %zu", data_.size(),
                  rows_, cols_);
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &
    at(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    float
    at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::span<float>
    row(std::size_t r)
    {
        return {data_.data() + r * cols_, cols_};
    }

    std::span<const float>
    row(std::size_t r) const
    {
        return {data_.data() + r * cols_, cols_};
    }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Round every element through binary16. */
    void
    quantizeFp16()
    {
        for (float &v : data_)
            v = fp16Round(v);
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace fc::nn

#endif // FC_NN_TENSOR_H
