/**
 * @file
 * Minimal dense 2D tensor for the PNN substrate.
 *
 * Row-major float storage; the quantize() helper rounds every element
 * through IEEE binary16 to model the fp16 datapath of the accelerator
 * (weights and activations are fp16, accumulation fp32).
 *
 * HalfTensor is the storage-true variant: elements are binary16 bits
 * (std::uint16_t), halving activation bandwidth like the accelerator's
 * datapath. The fp16 end-to-end inference mode
 * (BackendOptions::precision == Precision::Fp16) runs every MLP on
 * HalfTensor activations; toHalf()/toFloat() convert at the
 * boundaries. Converting a Tensor that is already fp16-valued (the
 * invariant quantizeFp16 establishes) is exact, which is why the two
 * precision modes produce bit-identical activations per dispatch
 * level (see core/simd.h).
 */

#ifndef FC_NN_TENSOR_H
#define FC_NN_TENSOR_H

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/fp16.h"
#include "common/logging.h"
#include "core/parallel.h"
#include "core/simd.h"

namespace fc::nn {

class Tensor
{
  public:
    Tensor() = default;

    Tensor(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    Tensor(std::size_t rows, std::size_t cols, std::vector<float> data)
        : rows_(rows), cols_(cols), data_(std::move(data))
    {
        fc_assert(data_.size() == rows_ * cols_,
                  "tensor data size %zu != %zu x %zu", data_.size(),
                  rows_, cols_);
    }

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    float &
    at(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    float
    at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::span<float>
    row(std::size_t r)
    {
        return {data_.data() + r * cols_, cols_};
    }

    std::span<const float>
    row(std::size_t r) const
    {
        return {data_.data() + r * cols_, cols_};
    }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /**
     * Reshape in place to [rows x cols]. Capacity is reused (a
     * same-or-smaller reshape never allocates), which is what lets
     * workspace tensor slots serve repeated same-shape requests
     * without touching the heap. Retained elements keep their old
     * values (growth is zero-filled): every producer writes the full
     * buffer, so a clearing pass would be one wasted serial sweep
     * per stage on the steady-state path.
     */
    void
    resize(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

    /**
     * Round every element through binary16. Elementwise, so the
     * chunks dispatch over @p pool with bit-identical results at any
     * thread count (null = the serial loop this always was).
     */
    void
    quantizeFp16(core::ThreadPool *pool = nullptr)
    {
        float *values = data_.data();
        core::parallelFor(pool, 0, data_.size(), core::costGrain(2),
                          [values](std::size_t cb, std::size_t ce) {
                              core::simd::fp16RoundBuffer(values + cb,
                                                          ce - cb);
                          });
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/**
 * Dense 2D tensor stored as binary16 bits — the activation container
 * of the fp16 inference mode. Same shape/slot conventions as Tensor
 * (capacity-reusing resize for workspace slots); elements are raw
 * fp16 bit patterns, converted by the core::simd fp16 kernels.
 */
class HalfTensor
{
  public:
    HalfTensor() = default;

    HalfTensor(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    std::uint16_t &
    at(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }

    std::uint16_t
    at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    std::span<std::uint16_t>
    row(std::size_t r)
    {
        return {data_.data() + r * cols_, cols_};
    }

    std::span<const std::uint16_t>
    row(std::size_t r) const
    {
        return {data_.data() + r * cols_, cols_};
    }

    const std::vector<std::uint16_t> &data() const { return data_; }
    std::vector<std::uint16_t> &data() { return data_; }

    /** Capacity-reusing reshape (see Tensor::resize). */
    void
    resize(std::size_t rows, std::size_t cols)
    {
        rows_ = rows;
        cols_ = cols;
        data_.resize(rows * cols);
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<std::uint16_t> data_;
};

/**
 * Convert to binary16 storage (round-to-nearest-even; exact when
 * @p src is already fp16-valued). @p dst is reshaped reusing its
 * capacity; elementwise, so chunks dispatch over @p pool with
 * bit-identical results at any thread count.
 */
inline void
toHalf(const Tensor &src, core::ThreadPool *pool, HalfTensor &dst)
{
    dst.resize(src.rows(), src.cols());
    const float *in = src.data().data();
    std::uint16_t *out = dst.data().data();
    core::parallelFor(pool, 0, src.size(), core::costGrain(2),
                      [in, out](std::size_t cb, std::size_t ce) {
                          core::simd::fp32ToFp16Buffer(in + cb, out + cb,
                                                       ce - cb);
                      });
}

/** Widen binary16 storage back to float (exact). */
inline void
toFloat(const HalfTensor &src, core::ThreadPool *pool, Tensor &dst)
{
    dst.resize(src.rows(), src.cols());
    const std::uint16_t *in = src.data().data();
    float *out = dst.data().data();
    core::parallelFor(pool, 0, src.size(), core::costGrain(2),
                      [in, out](std::size_t cb, std::size_t ce) {
                          core::simd::fp16ToFp32Buffer(in + cb, out + cb,
                                                       ce - cb);
                      });
}

} // namespace fc::nn

#endif // FC_NN_TENSOR_H
