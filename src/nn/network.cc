#include "nn/network.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/parallel.h"
#include "ops/gather.h"
#include "ops/interpolate.h"
#include "ops/neighbor.h"

namespace fc::nn {

namespace {

/** Features of one abstraction level. */
struct Level
{
    data::PointCloud cloud;                ///< coordinates at this level
    Tensor features;                       ///< [n x c]
    std::vector<PointIdx> parent_indices;  ///< into the previous level
};

/** Copy a gather result into a tensor [centers*k x channels]. */
Tensor
gatherToTensor(const ops::GatherResult &gathered)
{
    Tensor t(gathered.num_centers * gathered.k, gathered.channels,
             gathered.values);
    return t;
}

} // namespace

ops::BlockSampleResult
makeBlockSample(const part::BlockTree &tree,
                const std::vector<PointIdx> &indices)
{
    ops::BlockSampleResult result;

    std::vector<std::uint32_t> inverse(tree.order().size());
    for (std::uint32_t pos = 0;
         pos < static_cast<std::uint32_t>(tree.order().size()); ++pos)
        inverse[tree.order()[pos]] = pos;

    // Sort samples by DFT position: leaves are contiguous ranges, so
    // the sorted list is automatically grouped by leaf.
    std::vector<std::uint32_t> positions;
    positions.reserve(indices.size());
    for (const PointIdx idx : indices)
        positions.push_back(inverse[idx]);
    std::sort(positions.begin(), positions.end());

    result.positions = positions;
    result.indices.reserve(positions.size());
    for (const std::uint32_t pos : positions)
        result.indices.push_back(tree.order()[pos]);

    // Leaf offsets via a scan over leaves.
    const auto &leaves = tree.leaves();
    result.leaf_offsets.reserve(leaves.size() + 1);
    std::size_t cursor = 0;
    result.leaf_offsets.push_back(0);
    for (const part::NodeIdx leaf : leaves) {
        const part::BlockNode &node = tree.node(leaf);
        while (cursor < positions.size() &&
               positions[cursor] < node.end)
            ++cursor;
        result.leaf_offsets.push_back(
            static_cast<std::uint32_t>(cursor));
    }
    return result;
}

Network::Network(ModelConfig config, std::uint64_t seed)
    : config_(std::move(config)), headMlp_()
{
    // Channel bookkeeping. Initial per-point features are the raw
    // coordinates (3 channels) plus any dataset channels.
    std::size_t channels = 3 + config_.input_channels;
    levelChannels_.push_back(channels);
    std::uint64_t layer_seed = seed * 7919ULL;

    for (std::size_t i = 0; i < config_.sa.size(); ++i) {
        const SaStageConfig &stage = config_.sa[i];
        fc_assert(!stage.mlp.empty(), "SA stage %zu has empty MLP", i);
        std::vector<std::size_t> widths;
        widths.push_back(3 + channels); // rel. coords + features
        widths.insert(widths.end(), stage.mlp.begin(), stage.mlp.end());
        saMlps_.emplace_back(widths, layer_seed);
        layer_seed += 101;
        channels = stage.mlp.back();
        levelChannels_.push_back(channels);
    }

    if (config_.isSegmentation()) {
        fc_assert(config_.fp.size() == config_.sa.size(),
                  "FP stage count %zu != SA stage count %zu",
                  config_.fp.size(), config_.sa.size());
        std::size_t cur = channels;
        for (std::size_t i = 0; i < config_.fp.size(); ++i) {
            const std::size_t skip_c =
                levelChannels_[config_.sa.size() - 1 - i];
            std::vector<std::size_t> widths;
            widths.push_back(cur + skip_c);
            widths.insert(widths.end(), config_.fp[i].mlp.begin(),
                          config_.fp[i].mlp.end());
            fpMlps_.emplace_back(widths, layer_seed);
            layer_seed += 101;
            cur = config_.fp[i].mlp.back();
        }
        channels = cur;
    }

    if (!config_.head.empty()) {
        std::vector<std::size_t> widths;
        widths.push_back(channels);
        widths.insert(widths.end(), config_.head.begin(),
                      config_.head.end());
        headMlp_ = Mlp(widths, layer_seed);
    }
}

std::size_t
Network::outputDim() const
{
    if (!config_.head.empty())
        return config_.head.back();
    if (config_.isSegmentation())
        return config_.fp.back().mlp.back();
    return config_.sa.back().mlp.back();
}

InferenceResult
Network::run(const data::PointCloud &cloud,
             const BackendOptions &backend) const
{
    fc_assert(!cloud.empty(), "inference over empty cloud");
    InferenceResult result;

    core::ThreadPool *pool = backend.pool;
    const bool use_blocks = backend.anyBlockOp();
    std::unique_ptr<part::Partitioner> partitioner;
    if (use_blocks)
        partitioner = part::makePartitioner(backend.method);
    part::PartitionConfig pconfig;
    pconfig.threshold = backend.threshold;

    // ---- Abstraction stages -------------------------------------------
    std::vector<Level> levels;
    {
        Level base;
        base.cloud = cloud;
        base.features = Tensor(cloud.size(), 3 + config_.input_channels);
        core::parallelFor(
            pool, 0, cloud.size(),
            core::costGrain(3 + config_.input_channels),
            [&](std::size_t rb, std::size_t re) {
                for (std::size_t i = rb; i < re; ++i) {
                    auto row = base.features.row(i);
                    row[0] = cloud[i].x;
                    row[1] = cloud[i].y;
                    row[2] = cloud[i].z;
                    for (std::size_t c = 0; c < config_.input_channels;
                         ++c)
                        row[3 + c] = cloud.featureRow(i)[c];
                }
            });
        base.features.quantizeFp16();
        levels.push_back(std::move(base));
    }

    // Per-level partitions, kept for the propagation pass.
    std::vector<part::PartitionResult> partitions(config_.sa.size());

    for (std::size_t si = 0; si < config_.sa.size(); ++si) {
        const SaStageConfig &stage = config_.sa[si];
        Level &cur = levels.back();
        const std::size_t n = cur.cloud.size();
        const std::size_t num_samples = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::llround(stage.sample_rate *
                                static_cast<double>(n))));

        if (use_blocks) {
            // On-chip re-partition of this stage's input, over the
            // same pool (subtree tasks + chunked root splits). Stage
            // 0 may reuse a caller-provided partition of the input
            // cloud — construction is deterministic, so the reuse is
            // invisible in the result (stats included).
            const part::PartitionResult *precomputed =
                backend.root_partition;
            if (si == 0 && precomputed != nullptr &&
                precomputed->method == backend.method &&
                precomputed->config.threshold == pconfig.threshold &&
                precomputed->config.first_dim == pconfig.first_dim &&
                precomputed->config.max_depth == pconfig.max_depth &&
                precomputed->tree.order().size() == n) {
                partitions[si] = *precomputed;
            } else {
                partitions[si] =
                    partitioner->partition(cur.cloud, pconfig, pool);
            }
            result.partition_stats.elements_traversed +=
                partitions[si].stats.elements_traversed;
            result.partition_stats.num_sorts +=
                partitions[si].stats.num_sorts;
            result.partition_stats.sort_compares +=
                partitions[si].stats.sort_compares;
            result.partition_stats.traversal_passes +=
                partitions[si].stats.traversal_passes;
            result.partition_stats.num_splits +=
                partitions[si].stats.num_splits;
        }

        // --- Sampling ---------------------------------------------------
        std::vector<PointIdx> sampled;
        ops::BlockSampleResult block_sampled;
        if (use_blocks && backend.block_sampling) {
            ops::FpsOptions fps;
            fps.fixed_count_per_block =
                backend.fixed_count_sampling ||
                backend.method == part::Method::Uniform;
            block_sampled = ops::blockFarthestPointSample(
                cur.cloud, partitions[si].tree, stage.sample_rate,
                fps, pool);
            sampled = block_sampled.indices;
            result.op_stats += block_sampled.stats;
        } else {
            ops::SampleResult s =
                ops::farthestPointSample(cur.cloud, num_samples);
            sampled = std::move(s.indices);
            result.op_stats += s.stats;
            if (use_blocks && backend.block_grouping) {
                block_sampled =
                    makeBlockSample(partitions[si].tree, sampled);
                sampled = block_sampled.indices;
            }
        }

        // --- Grouping (ball query) ---------------------------------------
        ops::NeighborResult neighbors;
        if (use_blocks && backend.block_grouping) {
            if (block_sampled.indices.empty())
                block_sampled =
                    makeBlockSample(partitions[si].tree, sampled);
            neighbors = ops::blockBallQuery(
                cur.cloud, partitions[si].tree, block_sampled,
                stage.radius, stage.k, pool);
        } else {
            neighbors = ops::ballQuery(cur.cloud, sampled, stage.radius,
                                       stage.k);
        }
        result.op_stats += neighbors.stats;

        // --- Gathering ----------------------------------------------------
        // Attach current features to the cloud for gathering.
        data::PointCloud feat_cloud = cur.cloud;
        feat_cloud.allocateFeatures(cur.features.cols());
        std::copy(cur.features.data().begin(),
                  cur.features.data().end(),
                  feat_cloud.features().begin());

        ops::GatherResult gathered;
        if (use_blocks && backend.block_grouping) {
            gathered = ops::blockGatherNeighborhoods(
                feat_cloud, partitions[si].tree, sampled,
                block_sampled.leaf_offsets, neighbors, pool);
        } else {
            gathered =
                ops::gatherNeighborhoods(feat_cloud, sampled, neighbors);
        }
        result.op_stats += gathered.stats;

        // --- Feature computation: MLP + max pool -------------------------
        Tensor grouped = gatherToTensor(gathered);
        grouped.quantizeFp16();
        Tensor transformed = saMlps_[si].forward(grouped, pool);
        result.total_macs += saMlps_[si].macs(grouped.rows());
        Tensor pooled = maxPoolGroups(transformed, stage.k, pool);

        Level next;
        next.cloud = cur.cloud.subset(sampled);
        next.features = std::move(pooled);
        next.parent_indices = std::move(sampled);
        levels.push_back(std::move(next));
    }

    // ---- Readout -------------------------------------------------------
    if (!config_.isSegmentation()) {
        Tensor pooled = globalMaxPool(levels.back().features);
        if (!config_.head.empty()) {
            result.embedding = headMlp_.forward(pooled, pool);
            result.total_macs += headMlp_.macs(1);
        } else {
            result.embedding = std::move(pooled);
        }
        return result;
    }

    // ---- Propagation stages ---------------------------------------------
    Tensor coarse = levels.back().features;
    for (std::size_t fi = 0; fi < config_.fp.size(); ++fi) {
        const std::size_t level_idx = config_.sa.size() - fi; // coarse
        const Level &coarse_level = levels[level_idx];
        const Level &fine_level = levels[level_idx - 1];

        // Interpolate coarse features onto the fine points.
        ops::InterpolateResult interp;
        if (use_blocks && backend.block_interpolation) {
            const part::BlockTree &tree =
                partitions[level_idx - 1].tree;
            ops::BlockSampleResult known =
                makeBlockSample(tree, coarse_level.parent_indices);
            // Reorder the coarse feature rows to match the reordered
            // sample list.
            std::vector<float> known_feats(known.indices.size() *
                                           coarse.cols());
            // Map parent index -> coarse feature row.
            std::vector<std::int64_t> row_of(
                fine_level.cloud.size(), -1);
            for (std::size_t r = 0;
                 r < coarse_level.parent_indices.size(); ++r)
                row_of[coarse_level.parent_indices[r]] =
                    static_cast<std::int64_t>(r);
            core::parallelFor(
                pool, 0, known.indices.size(),
                core::costGrain(coarse.cols()),
                [&](std::size_t ib, std::size_t ie) {
                    for (std::size_t i = ib; i < ie; ++i) {
                        const std::int64_t r = row_of[known.indices[i]];
                        fc_assert(r >= 0,
                                  "sample %u missing coarse feature",
                                  known.indices[i]);
                        std::copy(
                            coarse.row(static_cast<std::size_t>(r))
                                .begin(),
                            coarse.row(static_cast<std::size_t>(r))
                                .end(),
                            known_feats.begin() + i * coarse.cols());
                    }
                });
            interp = ops::blockInterpolate(fine_level.cloud, tree,
                                           known, known_feats,
                                           coarse.cols(), 3, pool);
        } else {
            interp = ops::globalInterpolate(
                fine_level.cloud, coarse.data(), coarse.cols(),
                coarse_level.parent_indices);
        }
        result.op_stats += interp.stats;

        // Concat with the fine level's skip features and apply MLP.
        const std::size_t fine_c = fine_level.features.cols();
        Tensor merged(fine_level.cloud.size(),
                      coarse.cols() + fine_c);
        core::parallelFor(
            pool, 0, fine_level.cloud.size(),
            core::costGrain(coarse.cols() + fine_c),
            [&](std::size_t rb, std::size_t re) {
                for (std::size_t i = rb; i < re; ++i) {
                    auto out = merged.row(i);
                    const float *src =
                        interp.values.data() + i * coarse.cols();
                    for (std::size_t c = 0; c < coarse.cols(); ++c)
                        out[c] = src[c];
                    const auto skip = fine_level.features.row(i);
                    for (std::size_t c = 0; c < fine_c; ++c)
                        out[coarse.cols() + c] = skip[c];
                }
            });
        merged.quantizeFp16();
        coarse = fpMlps_[fi].forward(merged, pool);
        result.total_macs += fpMlps_[fi].macs(merged.rows());
    }

    if (!config_.head.empty()) {
        result.point_features = headMlp_.forward(coarse, pool);
        result.total_macs += headMlp_.macs(coarse.rows());
    } else {
        result.point_features = std::move(coarse);
    }
    // Segmentation embedding: global pool of the point features (used
    // by scene-level diagnostics).
    result.embedding = globalMaxPool(result.point_features);
    return result;
}

} // namespace fc::nn
