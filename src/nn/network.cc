#include "nn/network.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <span>
#include <string>

#include "common/logging.h"
#include "core/metrics.h"
#include "core/parallel.h"
#include "core/workspace.h"
#include "ops/gather.h"
#include "ops/interpolate.h"
#include "ops/neighbor.h"

namespace fc::nn {

namespace {

/**
 * Features of one abstraction level. Levels live in a workspace slot
 * and are assigned into (never reconstructed), so their cloud/tensor
 * buffers stay warm across same-shape runs.
 */
struct Level
{
    data::PointCloud cloud;                ///< coordinates at this level
    Tensor features;                       ///< [n x c]
    std::vector<PointIdx> parent_indices;  ///< into the previous level
};

} // namespace

void
makeBlockSample(const part::BlockTree &tree,
                const std::vector<PointIdx> &indices,
                core::Workspace &ws, ops::BlockSampleResult &out)
{
    out.stats = {};
    core::Arena &arena = ws.arena();

    std::span<std::uint32_t> inverse =
        arena.allocSpan<std::uint32_t>(tree.order().size());
    for (std::uint32_t pos = 0;
         pos < static_cast<std::uint32_t>(tree.order().size()); ++pos)
        inverse[tree.order()[pos]] = pos;

    // Sort samples by DFT position: leaves are contiguous ranges, so
    // the sorted list is automatically grouped by leaf.
    std::span<std::uint32_t> positions =
        arena.allocSpan<std::uint32_t>(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        positions[i] = inverse[indices[i]];
    std::sort(positions.begin(), positions.end());

    out.positions.assign(positions.begin(), positions.end());
    out.indices.resize(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i)
        out.indices[i] = tree.order()[positions[i]];

    // Leaf offsets via a scan over leaves.
    const auto &leaves = tree.leaves();
    out.leaf_offsets.clear();
    out.leaf_offsets.reserve(leaves.size() + 1);
    std::size_t cursor = 0;
    out.leaf_offsets.push_back(0);
    for (const part::NodeIdx leaf : leaves) {
        const part::BlockNode &node = tree.node(leaf);
        while (cursor < positions.size() &&
               positions[cursor] < node.end)
            ++cursor;
        out.leaf_offsets.push_back(static_cast<std::uint32_t>(cursor));
    }
}

ops::BlockSampleResult
makeBlockSample(const part::BlockTree &tree,
                const std::vector<PointIdx> &indices)
{
    core::Workspace ws;
    ops::BlockSampleResult out;
    makeBlockSample(tree, indices, ws, out);
    return out;
}

Network::Network(ModelConfig config, std::uint64_t seed)
    : config_(std::move(config)), headMlp_()
{
    // Channel bookkeeping. Initial per-point features are the raw
    // coordinates (3 channels) plus any dataset channels.
    std::size_t channels = 3 + config_.input_channels;
    levelChannels_.push_back(channels);
    std::uint64_t layer_seed = seed * 7919ULL;

    for (std::size_t i = 0; i < config_.sa.size(); ++i) {
        const SaStageConfig &stage = config_.sa[i];
        fc_assert(!stage.mlp.empty(), "SA stage %zu has empty MLP", i);
        std::vector<std::size_t> widths;
        widths.push_back(3 + channels); // rel. coords + features
        widths.insert(widths.end(), stage.mlp.begin(), stage.mlp.end());
        saMlps_.emplace_back(widths, layer_seed);
        layer_seed += 101;
        channels = stage.mlp.back();
        levelChannels_.push_back(channels);
    }

    if (config_.isSegmentation()) {
        fc_assert(config_.fp.size() == config_.sa.size(),
                  "FP stage count %zu != SA stage count %zu",
                  config_.fp.size(), config_.sa.size());
        std::size_t cur = channels;
        for (std::size_t i = 0; i < config_.fp.size(); ++i) {
            const std::size_t skip_c =
                levelChannels_[config_.sa.size() - 1 - i];
            std::vector<std::size_t> widths;
            widths.push_back(cur + skip_c);
            widths.insert(widths.end(), config_.fp[i].mlp.begin(),
                          config_.fp[i].mlp.end());
            fpMlps_.emplace_back(widths, layer_seed);
            layer_seed += 101;
            cur = config_.fp[i].mlp.back();
        }
        channels = cur;
    }

    if (!config_.head.empty()) {
        std::vector<std::size_t> widths;
        widths.push_back(channels);
        widths.insert(widths.end(), config_.head.begin(),
                      config_.head.end());
        headMlp_ = Mlp(widths, layer_seed);
    }
}

std::size_t
Network::outputDim() const
{
    if (!config_.head.empty())
        return config_.head.back();
    if (config_.isSegmentation())
        return config_.fp.back().mlp.back();
    return config_.sa.back().mlp.back();
}

void
Network::run(const data::PointCloud &cloud,
             const BackendOptions &backend, core::Workspace &ws,
             InferenceResult &out) const
{
    fc_assert(!cloud.empty(), "inference over empty cloud");
    out.op_stats = {};
    out.partition_stats = {};
    out.total_macs = 0;
    out.sa_mlp_rows = 0;

    core::ThreadPool *pool = backend.pool;
    const bool use_blocks = backend.anyBlockOp();
    const bool delayed = backend.aggregation == Aggregation::Delayed;

    // One MLP application in the selected precision. Every input is
    // fp16-valued by construction (quantizeFp16 before SA/FP calls;
    // head inputs are max-pools or MLP outputs of fp16-rounded
    // values), so the Fp16 mode's conversions are exact and the two
    // modes match bit for bit at a given simd dispatch level.
    HalfTensor &hin = ws.slot<HalfTensor>("nn.hin");
    HalfTensor &hout = ws.slot<HalfTensor>("nn.hout");
    const auto applyMlp = [&](const Mlp &mlp, const Tensor &input,
                              Tensor &output) {
        if (backend.precision == Precision::Fp16) {
            toHalf(input, pool, hin);
            mlp.forward(hin, pool, ws, hout);
            toFloat(hout, pool, output);
        } else {
            mlp.forward(input, pool, ws, output);
        }
    };
    part::PartitionerCache &pcache =
        ws.slot<part::PartitionerCache>("nn.pcache");
    part::PartitionConfig pconfig;
    pconfig.threshold = backend.threshold;

    // Per-stage wall-clock attribution (the measured counterpart of
    // the paper's bottleneck split): a rolling mark charges each code
    // section to one of six functional stages, accumulated across SA
    // and FP levels and recorded once per run. All of it is skipped —
    // including the clock reads — unless a registry is attached and
    // sampling is on at run() entry.
    using StageClock = std::chrono::steady_clock;
    enum
    {
        kStPartition = 0,
        kStFps,
        kStNeighbor,
        kStGather,
        kStMlp,
        kStInterpolate,
        kStMlpUnique,
        kStAggregate,
        kNumStages
    };
    std::array<std::uint64_t, kNumStages> stage_acc{};
    StageClock::time_point stage_mark{};
    const bool timed = backend.metrics != nullptr &&
                       core::metrics::samplingEnabled();
    const auto lapInto = [&](std::size_t stage) {
        if (!timed)
            return;
        const StageClock::time_point now = StageClock::now();
        if (now > stage_mark)
            stage_acc[stage] += static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    now - stage_mark)
                    .count());
        stage_mark = now;
    };
    // Stage-histogram pointers are resolved once per (workspace,
    // registry) pair and cached in a slot: the name-building and
    // registry lookup allocate, and a warm serve round trip must not.
    struct StageHistograms
    {
        core::metrics::Registry *registry = nullptr;
        std::array<core::metrics::Histogram *, kNumStages> h{};
    };
    const auto recordStages = [&] {
        if (!timed)
            return;
        static constexpr const char *kStageLabels[kNumStages] = {
            "partition", "fps",         "neighbor",
            "gather",    "mlp",         "interpolate",
            "mlp_unique", "aggregate"};
        StageHistograms &hists =
            ws.slot<StageHistograms>("nn.stage_hists");
        if (hists.registry != backend.metrics) {
            for (std::size_t i = 0; i < kNumStages; ++i)
                hists.h[i] = &backend.metrics->histogram(
                    std::string("nn.stage_us{stage=") +
                    kStageLabels[i] + "}");
            hists.registry = backend.metrics;
        }
        for (std::size_t i = 0; i < kNumStages; ++i)
            hists.h[i]->record(stage_acc[i]);
    };

    // ---- Abstraction stages -------------------------------------------
    // Levels and per-level partitions persist in workspace slots and
    // are assigned into: a same-shape run resizes within warm
    // capacity and never allocates.
    std::vector<Level> &levels = ws.slot<std::vector<Level>>("nn.levels");
    levels.resize(config_.sa.size() + 1);
    {
        Level &base = levels[0];
        base.cloud = cloud;
        base.features.resize(cloud.size(), 3 + config_.input_channels);
        base.parent_indices.clear();
        core::parallelFor(
            pool, 0, cloud.size(),
            core::costGrain(3 + config_.input_channels),
            [&](std::size_t rb, std::size_t re) {
                for (std::size_t i = rb; i < re; ++i) {
                    auto row = base.features.row(i);
                    row[0] = cloud[i].x;
                    row[1] = cloud[i].y;
                    row[2] = cloud[i].z;
                    for (std::size_t c = 0; c < config_.input_channels;
                         ++c)
                        row[3 + c] = cloud.featureRow(i)[c];
                }
            });
        base.features.quantizeFp16(pool);
    }

    // Per-level partitions, kept for the propagation pass.
    std::vector<part::PartitionResult> &partitions =
        ws.slot<std::vector<part::PartitionResult>>("nn.parts");
    partitions.resize(config_.sa.size());

    ops::BlockSampleResult &block_sampled =
        ws.slot<ops::BlockSampleResult>("nn.bs");
    std::vector<PointIdx> &sampled =
        ws.slot<std::vector<PointIdx>>("nn.sampled");
    ops::SampleResult &global_sampled =
        ws.slot<ops::SampleResult>("nn.gs");
    ops::NeighborResult &neighbors =
        ws.slot<ops::NeighborResult>("nn.nbr");
    data::PointCloud &feat_cloud =
        ws.slot<data::PointCloud>("nn.fcloud");
    ops::GatherResult &gathered = ws.slot<ops::GatherResult>("nn.gath");
    Tensor &grouped = ws.slot<Tensor>("nn.grouped");
    Tensor &transformed = ws.slot<Tensor>("nn.trans");
    // Delayed-aggregation scratch: the per-level unique-point MLP
    // input and the pooled relative-coordinate summary carried into
    // the next stage's coordinate channels (see Aggregation).
    Tensor &unique_in = ws.slot<Tensor>("nn.uin");
    std::vector<float> &relpool =
        ws.slot<std::vector<float>>("nn.relpool");

    if (timed)
        stage_mark = StageClock::now(); // base setup is uncounted

    for (std::size_t si = 0; si < config_.sa.size(); ++si) {
        const SaStageConfig &stage = config_.sa[si];
        Level &cur = levels[si];
        const std::size_t n = cur.cloud.size();
        const std::size_t num_samples = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   std::llround(stage.sample_rate *
                                static_cast<double>(n))));

        if (use_blocks) {
            // On-chip re-partition of this stage's input, over the
            // same pool (subtree tasks + chunked root splits). Stage
            // 0 may reuse a caller-provided partition of the input
            // cloud — construction is deterministic, so the reuse is
            // invisible in the result (stats included).
            const part::PartitionResult *precomputed =
                backend.root_partition;
            if (si == 0 && precomputed != nullptr &&
                precomputed->method == backend.method &&
                precomputed->config.threshold == pconfig.threshold &&
                precomputed->config.first_dim == pconfig.first_dim &&
                precomputed->config.max_depth == pconfig.max_depth &&
                precomputed->tree.order().size() == n) {
                partitions[si] = *precomputed;
            } else {
                pcache.get(backend.method)
                    .partitionInto(cur.cloud, pconfig, pool, ws,
                                   partitions[si]);
            }
            out.partition_stats.elements_traversed +=
                partitions[si].stats.elements_traversed;
            out.partition_stats.num_sorts +=
                partitions[si].stats.num_sorts;
            out.partition_stats.sort_compares +=
                partitions[si].stats.sort_compares;
            out.partition_stats.traversal_passes +=
                partitions[si].stats.traversal_passes;
            out.partition_stats.num_splits +=
                partitions[si].stats.num_splits;
        }
        lapInto(kStPartition);

        // --- Sampling ---------------------------------------------------
        bool have_block_sampled = false;
        if (use_blocks && backend.block_sampling) {
            ops::FpsOptions fps;
            fps.fixed_count_per_block =
                backend.fixed_count_sampling ||
                backend.method == part::Method::Uniform;
            ops::blockFarthestPointSample(cur.cloud,
                                          partitions[si].tree,
                                          stage.sample_rate, fps, pool,
                                          ws, block_sampled);
            have_block_sampled = true;
            sampled = block_sampled.indices;
            out.op_stats += block_sampled.stats;
        } else {
            ops::farthestPointSample(cur.cloud, num_samples, {}, pool,
                                     ws, global_sampled);
            sampled = global_sampled.indices;
            out.op_stats += global_sampled.stats;
            if (use_blocks && backend.block_grouping) {
                makeBlockSample(partitions[si].tree, sampled, ws,
                                block_sampled);
                have_block_sampled = true;
                sampled = block_sampled.indices;
            }
        }
        lapInto(kStFps);

        // --- Grouping (ball query) ---------------------------------------
        if (use_blocks && backend.block_grouping) {
            if (!have_block_sampled || block_sampled.indices.empty())
                makeBlockSample(partitions[si].tree, sampled, ws,
                                block_sampled);
            ops::blockBallQuery(cur.cloud, partitions[si].tree,
                                block_sampled, stage.radius, stage.k,
                                pool, ws, neighbors);
        } else {
            ops::ballQuery(cur.cloud, sampled, stage.radius, stage.k,
                           pool, ws, neighbors);
        }
        out.op_stats += neighbors.stats;
        lapInto(kStNeighbor);

        if (delayed) {
            // --- Unique-point MLP (compute before aggregate) -------------
            // The stage MLP runs once per unique input point instead of
            // once per gathered (center, neighbor) pair. Coordinate
            // channels carry the previous stage's pooled relative-
            // coordinate summary (stage 0 feeds zeros: each point
            // relative to itself); feature channels are this level's
            // features.
            const std::size_t c_in = cur.features.cols();
            unique_in.resize(n, 3 + c_in);
            core::parallelFor(
                pool, 0, n, core::costGrain(3 + c_in),
                [&](std::size_t rb, std::size_t re) {
                    for (std::size_t i = rb; i < re; ++i) {
                        auto row = unique_in.row(i);
                        if (si == 0) {
                            row[0] = row[1] = row[2] = 0.0f;
                        } else {
                            const float *rp = relpool.data() + i * 3;
                            row[0] = rp[0];
                            row[1] = rp[1];
                            row[2] = rp[2];
                        }
                        const auto feat = cur.features.row(i);
                        for (std::size_t c = 0; c < c_in; ++c)
                            row[3 + c] = feat[c];
                    }
                });
            unique_in.quantizeFp16(pool);
            applyMlp(saMlps_[si], unique_in, transformed);
            out.total_macs += saMlps_[si].macs(n);
            out.sa_mlp_rows += n;
            lapInto(kStMlpUnique);

            // --- Aggregation: feature gather + max pool ------------------
            // Grouping is now a pure index-gather over the unique-point
            // feature tensor (no raw-coordinate rows), followed by the
            // same per-group max pool. The relative-coordinate summary
            // for the next stage is pooled alongside.
            const std::span<const float> feat_span(
                transformed.data().data(), transformed.data().size());
            if (use_blocks && backend.block_grouping) {
                ops::blockGatherFeatureRows(
                    feat_span, transformed.cols(), partitions[si].tree,
                    block_sampled.leaf_offsets, neighbors, pool, ws,
                    gathered);
            } else {
                ops::gatherFeatureRows(feat_span, transformed.cols(),
                                       neighbors, ws, gathered);
            }
            out.op_stats += gathered.stats;
            grouped.resize(gathered.num_centers * gathered.k,
                           gathered.channels);
            std::copy(gathered.values.begin(), gathered.values.end(),
                      grouped.data().begin());
            Level &next = levels[si + 1];
            maxPoolGroups(grouped, stage.k, pool, next.features);
            ops::maxPoolRelativeCoords(cur.cloud, sampled, neighbors,
                                       pool, ws, relpool);
            cur.cloud.subsetInto(sampled, next.cloud);
            next.parent_indices = sampled;
            lapInto(kStAggregate);
            continue;
        }

        // --- Gathering ----------------------------------------------------
        // Attach current features to the cloud for gathering.
        feat_cloud = cur.cloud;
        feat_cloud.allocateFeatures(cur.features.cols());
        std::copy(cur.features.data().begin(),
                  cur.features.data().end(),
                  feat_cloud.features().begin());

        if (use_blocks && backend.block_grouping) {
            ops::blockGatherNeighborhoods(
                feat_cloud, partitions[si].tree, sampled,
                block_sampled.leaf_offsets, neighbors, pool, ws,
                gathered);
        } else {
            ops::gatherNeighborhoods(feat_cloud, sampled, neighbors,
                                     ws, gathered);
        }
        out.op_stats += gathered.stats;
        lapInto(kStGather);

        // --- Feature computation: MLP + max pool -------------------------
        grouped.resize(gathered.num_centers * gathered.k,
                       gathered.channels);
        std::copy(gathered.values.begin(), gathered.values.end(),
                  grouped.data().begin());
        grouped.quantizeFp16(pool);
        applyMlp(saMlps_[si], grouped, transformed);
        out.total_macs += saMlps_[si].macs(grouped.rows());
        out.sa_mlp_rows += grouped.rows();

        Level &next = levels[si + 1];
        maxPoolGroups(transformed, stage.k, pool, next.features);
        cur.cloud.subsetInto(sampled, next.cloud);
        next.parent_indices = sampled;
        lapInto(kStMlp);
    }

    // ---- Readout -------------------------------------------------------
    if (!config_.isSegmentation()) {
        Tensor &pooled = ws.slot<Tensor>("nn.pooled");
        globalMaxPool(levels.back().features, pooled);
        if (!config_.head.empty()) {
            applyMlp(headMlp_, pooled, out.embedding);
            out.total_macs += headMlp_.macs(1);
        } else {
            out.embedding = pooled;
        }
        out.point_features.resize(0, 0);
        lapInto(kStMlp); // head readout
        recordStages();
        return;
    }

    // ---- Propagation stages ---------------------------------------------
    Tensor &coarse = ws.slot<Tensor>("nn.coarse");
    coarse = levels.back().features;
    ops::BlockSampleResult &known =
        ws.slot<ops::BlockSampleResult>("nn.known");
    std::vector<float> &known_feats =
        ws.slot<std::vector<float>>("nn.kfeat");
    ops::InterpolateResult &interp =
        ws.slot<ops::InterpolateResult>("nn.interp");
    Tensor &merged = ws.slot<Tensor>("nn.merged");

    for (std::size_t fi = 0; fi < config_.fp.size(); ++fi) {
        const std::size_t level_idx = config_.sa.size() - fi; // coarse
        const Level &coarse_level = levels[level_idx];
        const Level &fine_level = levels[level_idx - 1];

        // Interpolate coarse features onto the fine points.
        if (use_blocks && backend.block_interpolation) {
            const part::BlockTree &tree =
                partitions[level_idx - 1].tree;
            makeBlockSample(tree, coarse_level.parent_indices, ws,
                            known);
            // Reorder the coarse feature rows to match the reordered
            // sample list.
            known_feats.resize(known.indices.size() * coarse.cols());
            // Map parent index -> coarse feature row (arena table).
            std::span<std::int64_t> row_of =
                ws.arena().allocSpan<std::int64_t>(
                    fine_level.cloud.size(), std::int64_t{-1});
            for (std::size_t r = 0;
                 r < coarse_level.parent_indices.size(); ++r)
                row_of[coarse_level.parent_indices[r]] =
                    static_cast<std::int64_t>(r);
            core::parallelFor(
                pool, 0, known.indices.size(),
                core::costGrain(coarse.cols()),
                [&](std::size_t ib, std::size_t ie) {
                    for (std::size_t i = ib; i < ie; ++i) {
                        const std::int64_t r = row_of[known.indices[i]];
                        fc_assert(r >= 0,
                                  "sample %u missing coarse feature",
                                  known.indices[i]);
                        std::copy(
                            coarse.row(static_cast<std::size_t>(r))
                                .begin(),
                            coarse.row(static_cast<std::size_t>(r))
                                .end(),
                            known_feats.begin() + i * coarse.cols());
                    }
                });
            ops::blockInterpolate(fine_level.cloud, tree, known,
                                  known_feats, coarse.cols(), 3, pool,
                                  ws, interp);
        } else {
            ops::globalInterpolate(fine_level.cloud, coarse.data(),
                                   coarse.cols(),
                                   coarse_level.parent_indices, 3, ws,
                                   interp);
        }
        out.op_stats += interp.stats;
        lapInto(kStInterpolate);

        // Concat with the fine level's skip features and apply MLP.
        const std::size_t fine_c = fine_level.features.cols();
        merged.resize(fine_level.cloud.size(),
                      coarse.cols() + fine_c);
        core::parallelFor(
            pool, 0, fine_level.cloud.size(),
            core::costGrain(coarse.cols() + fine_c),
            [&](std::size_t rb, std::size_t re) {
                for (std::size_t i = rb; i < re; ++i) {
                    auto mrow = merged.row(i);
                    const float *src =
                        interp.values.data() + i * coarse.cols();
                    for (std::size_t c = 0; c < coarse.cols(); ++c)
                        mrow[c] = src[c];
                    const auto skip = fine_level.features.row(i);
                    for (std::size_t c = 0; c < fine_c; ++c)
                        mrow[coarse.cols() + c] = skip[c];
                }
            });
        merged.quantizeFp16(pool);
        applyMlp(fpMlps_[fi], merged, coarse);
        out.total_macs += fpMlps_[fi].macs(merged.rows());
        lapInto(kStMlp);
    }

    if (!config_.head.empty()) {
        applyMlp(headMlp_, coarse, out.point_features);
        out.total_macs += headMlp_.macs(coarse.rows());
    } else {
        out.point_features = coarse;
    }
    // Segmentation embedding: global pool of the point features (used
    // by scene-level diagnostics).
    globalMaxPool(out.point_features, out.embedding);
    lapInto(kStMlp); // head + final pooling
    recordStages();
}

InferenceResult
Network::run(const data::PointCloud &cloud,
             const BackendOptions &backend) const
{
    core::Workspace ws;
    InferenceResult out;
    run(cloud, backend, ws, out);
    return out;
}

} // namespace fc::nn
