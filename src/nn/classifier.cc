#include "nn/classifier.h"

#include <cmath>

#include "common/logging.h"

namespace fc::nn {

void
NearestCentroid::fit(const std::vector<float> &features, std::size_t dim,
                     const std::vector<int> &labels, int num_classes)
{
    fc_assert(dim > 0, "feature dim must be positive");
    fc_assert(num_classes > 0, "need at least one class");
    fc_assert(features.size() == labels.size() * dim,
              "feature matrix shape mismatch (%zu values, %zu labels, "
              "dim %zu)",
              features.size(), labels.size(), dim);

    dim_ = dim;
    num_classes_ = num_classes;
    centroids_.assign(static_cast<std::size_t>(num_classes) * dim, 0.0f);
    seen_.assign(static_cast<std::size_t>(num_classes), false);
    std::vector<std::size_t> counts(
        static_cast<std::size_t>(num_classes), 0);

    for (std::size_t i = 0; i < labels.size(); ++i) {
        const int y = labels[i];
        fc_assert(y >= 0 && y < num_classes, "label %d out of range", y);
        float *centroid =
            centroids_.data() + static_cast<std::size_t>(y) * dim;
        const float *row = features.data() + i * dim;
        for (std::size_t c = 0; c < dim; ++c)
            centroid[c] += row[c];
        ++counts[static_cast<std::size_t>(y)];
        seen_[static_cast<std::size_t>(y)] = true;
    }

    for (int y = 0; y < num_classes; ++y) {
        if (counts[static_cast<std::size_t>(y)] == 0)
            continue;
        float *centroid =
            centroids_.data() + static_cast<std::size_t>(y) * dim;
        double norm2 = 0.0;
        for (std::size_t c = 0; c < dim; ++c)
            norm2 += static_cast<double>(centroid[c]) * centroid[c];
        const float inv =
            norm2 > 0.0
                ? static_cast<float>(1.0 / std::sqrt(norm2))
                : 0.0f;
        for (std::size_t c = 0; c < dim; ++c)
            centroid[c] *= inv;
    }
}

int
NearestCentroid::predict(std::span<const float> feature) const
{
    fc_assert(feature.size() == dim_, "feature dim %zu != %zu",
              feature.size(), dim_);
    double norm2 = 0.0;
    for (const float v : feature)
        norm2 += static_cast<double>(v) * v;
    const double inv = norm2 > 0.0 ? 1.0 / std::sqrt(norm2) : 0.0;

    int best_class = 0;
    double best_score = -2.0;
    for (int y = 0; y < num_classes_; ++y) {
        if (!seen_[static_cast<std::size_t>(y)])
            continue;
        const float *centroid =
            centroids_.data() + static_cast<std::size_t>(y) * dim_;
        double dot = 0.0;
        for (std::size_t c = 0; c < dim_; ++c)
            dot += static_cast<double>(centroid[c]) * feature[c] * inv;
        if (dot > best_score) {
            best_score = dot;
            best_class = y;
        }
    }
    return best_class;
}

double
overallAccuracy(const std::vector<int> &predictions,
                const std::vector<int> &labels)
{
    fc_assert(predictions.size() == labels.size(),
              "prediction/label size mismatch");
    if (predictions.empty())
        return 0.0;
    std::size_t hits = 0;
    for (std::size_t i = 0; i < predictions.size(); ++i)
        hits += predictions[i] == labels[i];
    return static_cast<double>(hits) /
           static_cast<double>(predictions.size());
}

double
meanIoU(const std::vector<int> &predictions,
        const std::vector<int> &labels, int num_classes)
{
    fc_assert(predictions.size() == labels.size(),
              "prediction/label size mismatch");
    fc_assert(num_classes > 0, "need classes");
    std::vector<std::uint64_t> inter(
        static_cast<std::size_t>(num_classes), 0);
    std::vector<std::uint64_t> uni(static_cast<std::size_t>(num_classes),
                                   0);
    std::vector<bool> present(static_cast<std::size_t>(num_classes),
                              false);
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        const int p = predictions[i];
        const int y = labels[i];
        if (y >= 0 && y < num_classes)
            present[static_cast<std::size_t>(y)] = true;
        if (p == y) {
            ++inter[static_cast<std::size_t>(y)];
            ++uni[static_cast<std::size_t>(y)];
        } else {
            if (p >= 0 && p < num_classes)
                ++uni[static_cast<std::size_t>(p)];
            if (y >= 0 && y < num_classes)
                ++uni[static_cast<std::size_t>(y)];
        }
    }
    double sum = 0.0;
    int counted = 0;
    for (int y = 0; y < num_classes; ++y) {
        if (!present[static_cast<std::size_t>(y)])
            continue;
        const std::uint64_t u = uni[static_cast<std::size_t>(y)];
        sum += u == 0 ? 0.0
                      : static_cast<double>(
                            inter[static_cast<std::size_t>(y)]) /
                            static_cast<double>(u);
        ++counted;
    }
    return counted == 0 ? 0.0 : sum / counted;
}

} // namespace fc::nn
