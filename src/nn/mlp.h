/**
 * @file
 * Shared-weight multi-layer perceptron (the "MLPs" of the paper's
 * feature-computation pathway, §II-A).
 *
 * Weights are deterministic (He-initialized from a seeded PCG32) —
 * the accuracy proxy (DESIGN.md §4.2) compares *operator pipelines*
 * under identical fixed weights, so no training loop exists anywhere
 * in the library. Every layer applies y = relu(W x + b) row-wise with
 * fp16 rounding on weights and activations.
 */

#ifndef FC_NN_MLP_H
#define FC_NN_MLP_H

#include <cstdint>
#include <vector>

#include "nn/tensor.h"

namespace fc::core {
class ThreadPool;
class Workspace;
}

namespace fc::nn {

/** One linear + ReLU layer with fixed random weights. */
class LinearRelu
{
  public:
    /**
     * @param in    input channels
     * @param out   output channels
     * @param seed  weight seed (deterministic)
     * @param relu  apply ReLU (disabled for final logits layers)
     */
    LinearRelu(std::size_t in, std::size_t out, std::uint64_t seed,
               bool relu = true);

    /**
     * Apply to every row of @p x; returns [rows x out]. Rows are
     * independent, so they dispatch in chunks over @p pool (null =
     * sequential); every row's arithmetic is unchanged, making the
     * result bit-identical at any thread count.
     */
    Tensor forward(const Tensor &x,
                   core::ThreadPool *pool = nullptr) const;

    /** In-place overload: @p out is reshaped reusing its capacity
     *  (the allocation-free steady-state path). @p out must not
     *  alias @p x. */
    void forward(const Tensor &x, core::ThreadPool *pool,
                 Tensor &out) const;

    /**
     * fp16-storage overload (Precision::Fp16): activations stay in
     * binary16 end to end, accumulation in fp32 via the shared
     * core::simd dot scheme — bit-identical activations to the fp32-
     * storage path at either dispatch level, half the bandwidth.
     */
    void forward(const HalfTensor &x, core::ThreadPool *pool,
                 HalfTensor &out) const;

    std::size_t inDim() const { return in_; }
    std::size_t outDim() const { return out_; }

    /** MAC count to process @p rows rows. */
    std::uint64_t
    macs(std::uint64_t rows) const
    {
        return rows * in_ * out_;
    }

  private:
    std::size_t in_;
    std::size_t out_;
    bool relu_;
    Tensor weights_; // [out x in], fp16-rounded
    // Same weights as binary16 bits (exact conversion — weights_ is
    // already fp16-valued) for the fp16-storage forward.
    std::vector<std::uint16_t> weights_fp16_;
    std::vector<float> bias_;
};

/** A stack of LinearRelu layers. */
class Mlp
{
  public:
    Mlp() = default;

    /**
     * @param widths [c_in, h1, h2, ..., c_out]
     * @param seed   base weight seed; layer i uses seed + i
     */
    Mlp(const std::vector<std::size_t> &widths, std::uint64_t seed);

    /** Row-chunked over @p pool, layer by layer (see LinearRelu). */
    Tensor forward(const Tensor &x,
                   core::ThreadPool *pool = nullptr) const;

    /**
     * In-place overload: inter-layer activations ping-pong between
     * two tensor slots of @p ws ("mlp.ping"/"mlp.pong" — shared by
     * every Mlp drawing from the workspace, sized to the largest
     * layer seen), and @p out is reshaped reusing its capacity.
     * @p x and @p out must not be those slots (network code passes
     * its own stage slots).
     */
    void forward(const Tensor &x, core::ThreadPool *pool,
                 core::Workspace &ws, Tensor &out) const;

    /** fp16-storage overload; ping-pongs through the
     *  "mlp.hping"/"mlp.hpong" workspace slots. */
    void forward(const HalfTensor &x, core::ThreadPool *pool,
                 core::Workspace &ws, HalfTensor &out) const;

    std::size_t inDim() const;
    std::size_t outDim() const;

    std::uint64_t macs(std::uint64_t rows) const;

    const std::vector<LinearRelu> &layers() const { return layers_; }

  private:
    std::vector<LinearRelu> layers_;
};

/**
 * Max-pool groups of @p group_size consecutive rows:
 * [groups * group_size x c] -> [groups x c]. The pooling-unit
 * operation that reduces each gathered neighborhood to one feature.
 * Groups own disjoint output rows and dispatch in chunks over
 * @p pool; results are bit-identical at any thread count.
 */
Tensor maxPoolGroups(const Tensor &x, std::size_t group_size,
                     core::ThreadPool *pool = nullptr);

/** In-place overload of maxPoolGroups (capacity-reusing @p out). */
void maxPoolGroups(const Tensor &x, std::size_t group_size,
                   core::ThreadPool *pool, Tensor &out);

/** Column-wise max over all rows: [n x c] -> [1 x c]. Sequential and
 *  deterministic (fold in row order). */
Tensor globalMaxPool(const Tensor &x);

/** In-place overload of globalMaxPool: @p out reuses capacity —
 *  allocation-free once warm. */
void globalMaxPool(const Tensor &x, Tensor &out);

} // namespace fc::nn

#endif // FC_NN_MLP_H
