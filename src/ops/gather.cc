#include "ops/gather.h"

#include <algorithm>

#include "common/logging.h"
#include "core/parallel.h"
#include "core/workspace.h"

namespace fc::ops {

namespace {

void
gatherRow(const data::PointCloud &cloud, PointIdx center_idx,
          const NeighborResult &neighbors, std::size_t row,
          std::size_t channels, std::vector<float> &values)
{
    const std::size_t k = neighbors.k;
    const std::size_t fdim = cloud.featureDim();
    const Vec3 &center_pt = cloud[center_idx];
    for (std::size_t j = 0; j < k; ++j) {
        const PointIdx nb = neighbors.neighbor(row, j);
        float *out = values.data() + (row * k + j) * channels;
        if (nb == kInvalidPoint) {
            for (std::size_t c = 0; c < channels; ++c)
                out[c] = 0.0f;
            continue;
        }
        const Vec3 &nb_pt = cloud[nb];
        out[0] = nb_pt.x - center_pt.x;
        out[1] = nb_pt.y - center_pt.y;
        out[2] = nb_pt.z - center_pt.z;
        if (fdim > 0) {
            const auto feat = cloud.featureRow(nb);
            for (std::size_t c = 0; c < fdim; ++c)
                out[3 + c] = feat[c];
        }
    }
}

} // namespace

void
gatherNeighborhoods(const data::PointCloud &cloud,
                    const std::vector<PointIdx> &centers,
                    const NeighborResult &neighbors, core::Workspace &,
                    GatherResult &out)
{
    fc_assert(centers.size() == neighbors.num_centers,
              "centers (%zu) and neighbor rows (%zu) disagree",
              centers.size(), neighbors.num_centers);
    out.stats = {};
    out.num_centers = neighbors.num_centers;
    out.k = neighbors.k;
    out.channels = 3 + cloud.featureDim();
    out.values.resize(out.num_centers * out.k * out.channels);

    const std::size_t bytes_per_row =
        out.k * (cloud.featureDim() * 2 + 8); // fp16 features + coords
    for (std::size_t row = 0; row < out.num_centers; ++row) {
        gatherRow(cloud, centers[row], neighbors, row, out.channels,
                  out.values);
        // Global gather: every neighbor row is a random access into
        // the full feature space.
        out.stats.points_visited += out.k;
        out.stats.bytes_gathered += bytes_per_row;
    }
}

GatherResult
gatherNeighborhoods(const data::PointCloud &cloud,
                    const std::vector<PointIdx> &centers,
                    const NeighborResult &neighbors)
{
    core::Workspace ws;
    GatherResult out;
    gatherNeighborhoods(cloud, centers, neighbors, ws, out);
    return out;
}

void
blockGatherNeighborhoods(
    const data::PointCloud &cloud, const part::BlockTree &tree,
    const std::vector<PointIdx> &centers,
    const std::vector<std::uint32_t> &center_leaf_offsets,
    const NeighborResult &neighbors, core::ThreadPool *pool,
    core::Workspace &, GatherResult &out)
{
    fc_assert(centers.size() == neighbors.num_centers,
              "centers (%zu) and neighbor rows (%zu) disagree",
              centers.size(), neighbors.num_centers);
    const auto &leaves = tree.leaves();
    fc_assert(center_leaf_offsets.size() == leaves.size() + 1,
              "leaf offsets do not match tree");

    out.stats = {};
    out.num_centers = neighbors.num_centers;
    out.k = neighbors.k;
    out.channels = 3 + cloud.featureDim();
    out.values.resize(out.num_centers * out.k * out.channels);

    // Values are identical to the global gather; what changes is the
    // access pattern: per leaf, the search-space blocks are streamed
    // once into SRAM and every center of the leaf reads from there.
    // Per-leaf work items write disjoint value rows; per-chunk stats
    // fold in chunk order.
    out.stats += core::parallelReduce(
        pool, 0, leaves.size(), 1, OpStats{},
        [&](std::size_t lb, std::size_t le) {
            OpStats stats;
            for (std::size_t li = lb; li < le; ++li) {
                const part::BlockNode &space =
                    tree.node(tree.searchSpaceNode(leaves[li]));
                const std::uint32_t first = center_leaf_offsets[li];
                const std::uint32_t last =
                    center_leaf_offsets[li + 1];
                if (first == last)
                    continue;
                // One streamed fetch of the search space per leaf
                // (parent data shared across siblings is accounted by
                // the hardware model; here we charge the leaf-local
                // stream).
                stats.bytes_gathered +=
                    static_cast<std::uint64_t>(space.size()) *
                    (cloud.featureDim() * 2 + 8);
                for (std::uint32_t row = first; row < last; ++row) {
                    gatherRow(cloud, centers[row], neighbors, row,
                              out.channels, out.values);
                    stats.points_visited += out.k;
                }
            }
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; });
}

GatherResult
blockGatherNeighborhoods(
    const data::PointCloud &cloud, const part::BlockTree &tree,
    const std::vector<PointIdx> &centers,
    const std::vector<std::uint32_t> &center_leaf_offsets,
    const NeighborResult &neighbors, core::ThreadPool *pool)
{
    core::Workspace ws;
    GatherResult out;
    blockGatherNeighborhoods(cloud, tree, centers, center_leaf_offsets,
                             neighbors, pool, ws, out);
    return out;
}

namespace {

/** Copy the k neighbor feature rows of one center into @p values. */
void
gatherFeatureRow(std::span<const float> features, std::size_t channels,
                 const NeighborResult &neighbors, std::size_t row,
                 std::vector<float> &values)
{
    const std::size_t k = neighbors.k;
    for (std::size_t j = 0; j < k; ++j) {
        const PointIdx nb = neighbors.neighbor(row, j);
        float *out = values.data() + (row * k + j) * channels;
        if (nb == kInvalidPoint) {
            for (std::size_t c = 0; c < channels; ++c)
                out[c] = 0.0f;
            continue;
        }
        const float *src = features.data() +
                           static_cast<std::size_t>(nb) * channels;
        for (std::size_t c = 0; c < channels; ++c)
            out[c] = src[c];
    }
}

} // namespace

void
gatherFeatureRows(std::span<const float> features, std::size_t channels,
                  const NeighborResult &neighbors, core::Workspace &,
                  GatherResult &out)
{
    out.stats = {};
    out.num_centers = neighbors.num_centers;
    out.k = neighbors.k;
    out.channels = channels;
    out.values.resize(out.num_centers * out.k * out.channels);

    // Feature rows are fp16-valued on the inference path, hence 2
    // bytes per channel — the bandwidth the eager order re-reads
    // k-fold and the delayed order reads once per pair.
    const std::size_t bytes_per_row = out.k * channels * 2;
    for (std::size_t row = 0; row < out.num_centers; ++row) {
        gatherFeatureRow(features, channels, neighbors, row,
                         out.values);
        out.stats.points_visited += out.k;
        out.stats.bytes_gathered += bytes_per_row;
    }
}

GatherResult
gatherFeatureRows(std::span<const float> features, std::size_t channels,
                  const NeighborResult &neighbors)
{
    core::Workspace ws;
    GatherResult out;
    gatherFeatureRows(features, channels, neighbors, ws, out);
    return out;
}

void
blockGatherFeatureRows(std::span<const float> features,
                       std::size_t channels, const part::BlockTree &tree,
                       const std::vector<std::uint32_t> &center_leaf_offsets,
                       const NeighborResult &neighbors,
                       core::ThreadPool *pool, core::Workspace &,
                       GatherResult &out)
{
    const auto &leaves = tree.leaves();
    fc_assert(center_leaf_offsets.size() == leaves.size() + 1,
              "leaf offsets do not match tree");

    out.stats = {};
    out.num_centers = neighbors.num_centers;
    out.k = neighbors.k;
    out.channels = channels;
    out.values.resize(out.num_centers * out.k * out.channels);

    // Same values as the global form; the accounting streams each
    // leaf's search-space slice of the feature tensor once (the DFT
    // layout makes it contiguous) instead of charging random access.
    out.stats += core::parallelReduce(
        pool, 0, leaves.size(), 1, OpStats{},
        [&](std::size_t lb, std::size_t le) {
            OpStats stats;
            for (std::size_t li = lb; li < le; ++li) {
                const part::BlockNode &space =
                    tree.node(tree.searchSpaceNode(leaves[li]));
                const std::uint32_t first = center_leaf_offsets[li];
                const std::uint32_t last = center_leaf_offsets[li + 1];
                if (first == last)
                    continue;
                stats.bytes_gathered +=
                    static_cast<std::uint64_t>(space.size()) *
                    channels * 2;
                for (std::uint32_t row = first; row < last; ++row) {
                    gatherFeatureRow(features, channels, neighbors,
                                     row, out.values);
                    stats.points_visited += out.k;
                }
            }
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; });
}

void
maxPoolRelativeCoords(const data::PointCloud &cloud,
                      const std::vector<PointIdx> &centers,
                      const NeighborResult &neighbors,
                      core::ThreadPool *pool, core::Workspace &,
                      std::vector<float> &out)
{
    fc_assert(centers.size() == neighbors.num_centers,
              "centers (%zu) and neighbor rows (%zu) disagree",
              centers.size(), neighbors.num_centers);
    out.resize(centers.size() * 3);
    core::parallelFor(
        pool, 0, centers.size(), core::costGrain(neighbors.k),
        [&](std::size_t rb, std::size_t re) {
            for (std::size_t row = rb; row < re; ++row) {
                const Vec3 &center_pt = cloud[centers[row]];
                float *dst = out.data() + row * 3;
                dst[0] = dst[1] = dst[2] = 0.0f;
                const std::uint32_t count = neighbors.counts[row];
                for (std::uint32_t j = 0; j < count; ++j) {
                    const PointIdx nb = neighbors.neighbor(row, j);
                    const Vec3 &nb_pt = cloud[nb];
                    const float d[3] = {nb_pt.x - center_pt.x,
                                        nb_pt.y - center_pt.y,
                                        nb_pt.z - center_pt.z};
                    if (j == 0) {
                        dst[0] = d[0];
                        dst[1] = d[1];
                        dst[2] = d[2];
                    } else {
                        dst[0] = std::max(dst[0], d[0]);
                        dst[1] = std::max(dst[1], d[1]);
                        dst[2] = std::max(dst[2], d[2]);
                    }
                }
            }
        });
}

} // namespace fc::ops
