#include "ops/gather.h"

#include "common/logging.h"
#include "core/parallel.h"

namespace fc::ops {

namespace {

void
gatherRow(const data::PointCloud &cloud, PointIdx center_idx,
          const NeighborResult &neighbors, std::size_t row,
          std::size_t channels, std::vector<float> &values)
{
    const std::size_t k = neighbors.k;
    const std::size_t fdim = cloud.featureDim();
    const Vec3 &center_pt = cloud[center_idx];
    for (std::size_t j = 0; j < k; ++j) {
        const PointIdx nb = neighbors.neighbor(row, j);
        float *out = values.data() + (row * k + j) * channels;
        if (nb == kInvalidPoint) {
            for (std::size_t c = 0; c < channels; ++c)
                out[c] = 0.0f;
            continue;
        }
        const Vec3 &nb_pt = cloud[nb];
        out[0] = nb_pt.x - center_pt.x;
        out[1] = nb_pt.y - center_pt.y;
        out[2] = nb_pt.z - center_pt.z;
        if (fdim > 0) {
            const auto feat = cloud.featureRow(nb);
            for (std::size_t c = 0; c < fdim; ++c)
                out[3 + c] = feat[c];
        }
    }
}

} // namespace

GatherResult
gatherNeighborhoods(const data::PointCloud &cloud,
                    const std::vector<PointIdx> &centers,
                    const NeighborResult &neighbors)
{
    fc_assert(centers.size() == neighbors.num_centers,
              "centers (%zu) and neighbor rows (%zu) disagree",
              centers.size(), neighbors.num_centers);
    GatherResult result;
    result.num_centers = neighbors.num_centers;
    result.k = neighbors.k;
    result.channels = 3 + cloud.featureDim();
    result.values.resize(result.num_centers * result.k *
                         result.channels);

    const std::size_t bytes_per_row =
        result.k * (cloud.featureDim() * 2 + 8); // fp16 features + coords
    for (std::size_t row = 0; row < result.num_centers; ++row) {
        gatherRow(cloud, centers[row], neighbors, row, result.channels,
                  result.values);
        // Global gather: every neighbor row is a random access into
        // the full feature space.
        result.stats.points_visited += result.k;
        result.stats.bytes_gathered += bytes_per_row;
    }
    return result;
}

GatherResult
blockGatherNeighborhoods(
    const data::PointCloud &cloud, const part::BlockTree &tree,
    const std::vector<PointIdx> &centers,
    const std::vector<std::uint32_t> &center_leaf_offsets,
    const NeighborResult &neighbors, core::ThreadPool *pool)
{
    fc_assert(centers.size() == neighbors.num_centers,
              "centers (%zu) and neighbor rows (%zu) disagree",
              centers.size(), neighbors.num_centers);
    const auto &leaves = tree.leaves();
    fc_assert(center_leaf_offsets.size() == leaves.size() + 1,
              "leaf offsets do not match tree");

    GatherResult result;
    result.num_centers = neighbors.num_centers;
    result.k = neighbors.k;
    result.channels = 3 + cloud.featureDim();
    result.values.resize(result.num_centers * result.k *
                         result.channels);

    // Values are identical to the global gather; what changes is the
    // access pattern: per leaf, the search-space blocks are streamed
    // once into SRAM and every center of the leaf reads from there.
    // Per-leaf work items write disjoint value rows; per-chunk stats
    // fold in chunk order.
    result.stats += core::parallelReduce(
        pool, 0, leaves.size(), 1, OpStats{},
        [&](std::size_t lb, std::size_t le) {
            OpStats stats;
            for (std::size_t li = lb; li < le; ++li) {
                const part::BlockNode &space =
                    tree.node(tree.searchSpaceNode(leaves[li]));
                const std::uint32_t first = center_leaf_offsets[li];
                const std::uint32_t last =
                    center_leaf_offsets[li + 1];
                if (first == last)
                    continue;
                // One streamed fetch of the search space per leaf
                // (parent data shared across siblings is accounted by
                // the hardware model; here we charge the leaf-local
                // stream).
                stats.bytes_gathered +=
                    static_cast<std::uint64_t>(space.size()) *
                    (cloud.featureDim() * 2 + 8);
                for (std::uint32_t row = first; row < last; ++row) {
                    gatherRow(cloud, centers[row], neighbors, row,
                              result.channels, result.values);
                    stats.points_visited += result.k;
                }
            }
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; });
    return result;
}

} // namespace fc::ops
