/**
 * @file
 * Farthest Point Sampling: global (paper §II-B) and block-wise
 * (paper §IV-B, "Block-Wise Sampling").
 *
 * Global FPS is the O(n^2) baseline: every iteration updates the
 * distance of all points to the sampled set and picks the argmax.
 * Block-wise FPS runs an independent FPS inside every leaf block of a
 * BlockTree with one fixed sampling rate, and concatenates the
 * results — the decomposition that makes sampling block-parallel.
 *
 * Block-wise FPS dispatches its per-leaf work items over an optional
 * core::ThreadPool; per-leaf quotas are prefix-summed up front so
 * every leaf writes a disjoint slice of the output directly, and the
 * result is bit-identical to the sequential path at any thread count.
 */

#ifndef FC_OPS_FPS_H
#define FC_OPS_FPS_H

#include <cstdint>
#include <vector>

#include "dataset/point_cloud.h"
#include "ops/op_stats.h"
#include "partition/block_tree.h"

namespace fc::core {
class ThreadPool;
class Workspace;
}

namespace fc::ops {

/** Result of a global sampling operation. */
struct SampleResult
{
    /** Sampled point indices (into the original cloud). */
    std::vector<PointIdx> indices;
    OpStats stats;
};

/** Result of block-wise sampling. */
struct BlockSampleResult
{
    /** Sampled point indices (into the original cloud). */
    std::vector<PointIdx> indices;

    /** DFT positions of the samples (parallel to indices). */
    std::vector<std::uint32_t> positions;

    /**
     * Per-leaf offsets into indices/positions: samples of leaf i are
     * [leaf_offsets[i], leaf_offsets[i+1]).
     */
    std::vector<std::uint32_t> leaf_offsets;

    OpStats stats;
};

/** Options common to both FPS variants. */
struct FpsOptions
{
    /** Deterministic choice of the initial point (paper uses random;
     *  we default to index 0 for reproducibility). */
    PointIdx start_index = 0;

    /**
     * Model the RSPU window-check: already-sampled points are skipped
     * instead of re-visited. Does not change the result, only the
     * work counters (stats.skipped / points_visited).
     */
    bool window_check = true;

    /**
     * Block-quota policy for block-wise FPS. The paper's method uses
     * one fixed *rate* for every block (enabled by Fractal's balanced
     * blocks, §IV-B); PNNPU-style space-uniform designs assign a
     * fixed *count* per block, which distorts density on imbalanced
     * partitions — the root of their segmentation accuracy loss.
     */
    bool fixed_count_per_block = false;
};

/**
 * Global farthest point sampling over the whole cloud.
 *
 * The per-iteration distance-update/argmax sweep dispatches in chunks
 * over @p pool; chunk-local maxima fold in chunk order with the same
 * strictly-greater comparison as the serial loop, so the sampled set
 * is bit-identical at any thread count.
 *
 * @param cloud       input points
 * @param num_samples sampled-set size (clamped to cloud size)
 * @param pool        optional thread pool; null = sequential
 */
SampleResult farthestPointSample(const data::PointCloud &cloud,
                                 std::size_t num_samples,
                                 const FpsOptions &options = {},
                                 core::ThreadPool *pool = nullptr);

/**
 * Workspace overload: writes into @p out (reusing its capacity) and
 * draws the distance/flag scratch from @p ws's arena — the
 * allocation-free steady-state path (zero heap allocations on warm
 * same-shape calls with a null pool). Identical output to the
 * value-returning form, which wraps this one.
 */
void farthestPointSample(const data::PointCloud &cloud,
                         std::size_t num_samples,
                         const FpsOptions &options,
                         core::ThreadPool *pool, core::Workspace &ws,
                         SampleResult &out);

/**
 * Block-wise FPS: per-leaf independent FPS at one fixed rate.
 *
 * Each leaf contributes round(rate * leaf_size) samples (at least one
 * for non-empty leaves, so no region disappears), matching the paper's
 * fixed-rate scheme that relies on Fractal's balanced blocks.
 *
 * @param cloud  input points (original order)
 * @param tree   partition (DFT layout)
 * @param rate   target sampling rate in (0, 1]
 * @param pool   optional thread pool; null = sequential
 */
BlockSampleResult blockFarthestPointSample(const data::PointCloud &cloud,
                                           const part::BlockTree &tree,
                                           double rate,
                                           const FpsOptions &options = {},
                                           core::ThreadPool *pool = nullptr);

/** Workspace overload of block-wise FPS (see farthestPointSample). */
void blockFarthestPointSample(const data::PointCloud &cloud,
                              const part::BlockTree &tree, double rate,
                              const FpsOptions &options,
                              core::ThreadPool *pool,
                              core::Workspace &ws,
                              BlockSampleResult &out);

} // namespace fc::ops

#endif // FC_OPS_FPS_H
