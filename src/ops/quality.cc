#include "ops/quality.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "common/logging.h"

namespace fc::ops {

namespace {

float
nearestSampleDistance2(const data::PointCloud &cloud,
                       const std::vector<PointIdx> &samples,
                       const Vec3 &p)
{
    float best = std::numeric_limits<float>::max();
    for (const PointIdx s : samples)
        best = std::min(best, distance2(p, cloud[s]));
    return best;
}

} // namespace

float
coverageRadius(const data::PointCloud &cloud,
               const std::vector<PointIdx> &samples)
{
    if (samples.empty() || cloud.empty())
        return std::numeric_limits<float>::infinity();
    float worst = 0.0f;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        worst = std::max(
            worst, nearestSampleDistance2(cloud, samples, cloud[i]));
    }
    return std::sqrt(worst);
}

float
meanCoverage(const data::PointCloud &cloud,
             const std::vector<PointIdx> &samples)
{
    if (samples.empty() || cloud.empty())
        return std::numeric_limits<float>::infinity();
    double sum = 0.0;
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        sum += std::sqrt(
            nearestSampleDistance2(cloud, samples, cloud[i]));
    }
    return static_cast<float>(sum / static_cast<double>(cloud.size()));
}

double
neighborRecall(const NeighborResult &reference,
               const NeighborResult &test)
{
    fc_assert(reference.num_centers == test.num_centers,
              "recall tables disagree on centers (%zu vs %zu)",
              reference.num_centers, test.num_centers);
    if (reference.num_centers == 0)
        return 1.0;

    double total = 0.0;
    std::size_t counted = 0;
    std::unordered_set<PointIdx> ref_set;
    for (std::size_t row = 0; row < reference.num_centers; ++row) {
        ref_set.clear();
        const std::uint32_t ref_n = reference.counts[row];
        for (std::uint32_t j = 0; j < ref_n; ++j) {
            const PointIdx idx = reference.neighbor(row, j);
            if (idx != kInvalidPoint)
                ref_set.insert(idx);
        }
        if (ref_set.empty())
            continue;
        std::size_t hit = 0;
        const std::uint32_t test_n = test.counts[row];
        std::unordered_set<PointIdx> seen;
        for (std::uint32_t j = 0; j < test_n; ++j) {
            const PointIdx idx = test.neighbor(row, j);
            if (idx == kInvalidPoint || !seen.insert(idx).second)
                continue;
            if (ref_set.count(idx))
                ++hit;
        }
        total += static_cast<double>(hit) /
                 static_cast<double>(ref_set.size());
        ++counted;
    }
    return counted == 0 ? 1.0 : total / static_cast<double>(counted);
}

double
featureRelativeError(const std::vector<float> &reference,
                     const std::vector<float> &test)
{
    fc_assert(reference.size() == test.size(),
              "feature matrices disagree in size (%zu vs %zu)",
              reference.size(), test.size());
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < reference.size(); ++i) {
        const double d = static_cast<double>(reference[i]) - test[i];
        num += d * d;
        den += static_cast<double>(reference[i]) * reference[i];
    }
    if (den <= 0.0)
        return num > 0.0 ? 1.0 : 0.0;
    return std::sqrt(num / den);
}

} // namespace fc::ops
