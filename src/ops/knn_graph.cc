#include "ops/knn_graph.h"

#include <algorithm>

#include "common/logging.h"
#include "core/parallel.h"
#include "core/workspace.h"
#include "ops/topk.h"

namespace fc::ops {

namespace {

/** Vertices per parallel chunk of the exact builder. */
constexpr std::size_t kGraphGrain = 256;

} // namespace

void
buildKnnGraph(const data::PointCloud &cloud, std::size_t k,
              core::ThreadPool *pool, core::Workspace &, KnnGraph &out)
{
    fc_assert(k > 0, "graph needs k > 0");
    out.stats = {};
    out.num_vertices = cloud.size();
    out.k = k;
    out.edges.resize(cloud.size() * k);

    out.stats += core::parallelReduce(
        pool, 0, cloud.size(), kGraphGrain, ops::OpStats{},
        [&](std::size_t cb, std::size_t ce) {
            OpStats stats;
            for (std::size_t i = cb; i < ce; ++i) {
                TopK top(k);
                for (std::size_t j = 0; j < cloud.size(); ++j) {
                    if (j == i)
                        continue;
                    ++stats.points_visited;
                    ++stats.distance_computations;
                    top.offer(distance2(cloud[i], cloud[j]),
                              static_cast<PointIdx>(j));
                }
                top.emitRow(out.edges.data() + i * k);
                ++stats.iterations;
            }
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; });
}

KnnGraph
buildKnnGraph(const data::PointCloud &cloud, std::size_t k,
              core::ThreadPool *pool)
{
    core::Workspace ws;
    KnnGraph out;
    buildKnnGraph(cloud, k, pool, ws, out);
    return out;
}

void
buildBlockKnnGraph(const data::PointCloud &cloud,
                   const part::BlockTree &tree, std::size_t k,
                   core::ThreadPool *pool, core::Workspace &,
                   KnnGraph &out)
{
    fc_assert(k > 0, "graph needs k > 0");
    fc_assert(tree.numPoints() == cloud.size(),
              "tree (%u points) does not match cloud (%zu)",
              tree.numPoints(), cloud.size());
    out.stats = {};
    out.num_vertices = cloud.size();
    out.k = k;
    out.edges.assign(cloud.size() * k, kInvalidPoint);

    // Per-leaf work items; every vertex owns the edge row of its
    // original id, so leaves write disjoint rows.
    const auto &leaves = tree.leaves();
    out.stats += core::parallelReduce(
        pool, 0, leaves.size(), 1, ops::OpStats{},
        [&](std::size_t lb, std::size_t le) {
            OpStats stats;
            for (std::size_t li = lb; li < le; ++li) {
                const part::BlockNode &space =
                    tree.node(tree.searchSpaceNode(leaves[li]));
                const part::BlockNode &node = tree.node(leaves[li]);
                for (std::uint32_t pos = node.begin; pos < node.end;
                     ++pos) {
                    const PointIdx self = tree.order()[pos];
                    TopK top(k);
                    for (std::uint32_t cand = space.begin;
                         cand < space.end; ++cand) {
                        const PointIdx other = tree.order()[cand];
                        if (other == self)
                            continue;
                        ++stats.points_visited;
                        ++stats.distance_computations;
                        top.offer(distance2(cloud[self], cloud[other]),
                                  other);
                    }
                    // Rows are written at the vertex's original id so
                    // the graph layout matches the exact builder.
                    top.emitRow(out.edges.data() + self * k);
                    ++stats.iterations;
                }
            }
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; });
}

KnnGraph
buildBlockKnnGraph(const data::PointCloud &cloud,
                   const part::BlockTree &tree, std::size_t k,
                   core::ThreadPool *pool)
{
    core::Workspace ws;
    KnnGraph out;
    buildBlockKnnGraph(cloud, tree, k, pool, ws, out);
    return out;
}

double
graphEdgeRecall(const KnnGraph &exact, const KnnGraph &test)
{
    fc_assert(exact.num_vertices == test.num_vertices &&
                  exact.k == test.k,
              "graphs are not comparable");
    if (exact.num_vertices == 0)
        return 1.0;
    std::size_t hits = 0, total = 0;
    std::vector<PointIdx> row;
    for (std::size_t v = 0; v < exact.num_vertices; ++v) {
        row.assign(test.edges.begin() + v * test.k,
                   test.edges.begin() + (v + 1) * test.k);
        std::sort(row.begin(), row.end());
        for (std::size_t j = 0; j < exact.k; ++j) {
            const PointIdx e = exact.neighbor(v, j);
            if (e == kInvalidPoint)
                continue;
            ++total;
            hits += std::binary_search(row.begin(), row.end(), e);
        }
    }
    return total == 0 ? 1.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
}

} // namespace fc::ops
