/**
 * @file
 * Feature interpolation for the propagation stage (paper §II-A,
 * Fig. 2(c)): each dense point receives the inverse-distance-weighted
 * average of the features of its K nearest sampled points (K = 3 in
 * PointNet++ and descendants).
 *
 * The block-wise variant (paper "Block-Wise Interpolation", part of
 * BWI in Fig. 18) restricts the candidate sampled points to the
 * query's block search space.
 */

#ifndef FC_OPS_INTERPOLATE_H
#define FC_OPS_INTERPOLATE_H

#include <vector>

#include "dataset/point_cloud.h"
#include "ops/fps.h"
#include "ops/neighbor.h"
#include "partition/block_tree.h"

namespace fc::core {
class ThreadPool;
class Workspace;
}

namespace fc::ops {

/** Interpolated feature matrix. */
struct InterpolateResult
{
    std::size_t num_points = 0;
    std::size_t channels = 0;

    /** Row-major [num_points x channels]. */
    std::vector<float> values;

    OpStats stats;
};

/**
 * Inverse-distance-weighted interpolation from a known neighbor table.
 *
 * @param cloud          target points (row per point)
 * @param known_features row-major [num_known x channels], aligned with
 *                       @p known_indices
 * @param known_indices  cloud indices of the known (sampled) points
 * @param neighbors      KNN table: rows = cloud points, entries =
 *                       cloud indices that MUST appear in
 *                       @p known_indices
 */
InterpolateResult
interpolateFeatures(const data::PointCloud &cloud,
                    const std::vector<float> &known_features,
                    std::size_t channels,
                    const std::vector<PointIdx> &known_indices,
                    const NeighborResult &neighbors,
                    core::ThreadPool *pool = nullptr);

/** Workspace overload: the known-point lookup table comes from
 *  @p ws's arena and @p out reuses its capacity (the allocation-free
 *  steady-state path; see core/workspace.h). */
void interpolateFeatures(const data::PointCloud &cloud,
                         const std::vector<float> &known_features,
                         std::size_t channels,
                         const std::vector<PointIdx> &known_indices,
                         const NeighborResult &neighbors,
                         core::ThreadPool *pool, core::Workspace &ws,
                         InterpolateResult &out);

/**
 * Convenience wrapper: global 3-NN then interpolation.
 */
InterpolateResult
globalInterpolate(const data::PointCloud &cloud,
                  const std::vector<float> &known_features,
                  std::size_t channels,
                  const std::vector<PointIdx> &known_indices,
                  std::size_t k = 3);

/** Workspace overload of globalInterpolate (the KNN table lives in a
 *  workspace slot; @p out reuses capacity). */
void globalInterpolate(const data::PointCloud &cloud,
                       const std::vector<float> &known_features,
                       std::size_t channels,
                       const std::vector<PointIdx> &known_indices,
                       std::size_t k, core::Workspace &ws,
                       InterpolateResult &out);

/**
 * Block-wise interpolation: 3-NN restricted to each leaf's search
 * space via blockKnnToSamples, then the same weighted average. Both
 * stages dispatch over @p pool; each output row is owned by exactly
 * one work item, so results match sequential execution bit-for-bit.
 */
InterpolateResult
blockInterpolate(const data::PointCloud &cloud,
                 const part::BlockTree &tree,
                 const BlockSampleResult &sampled,
                 const std::vector<float> &known_features,
                 std::size_t channels, std::size_t k = 3,
                 core::ThreadPool *pool = nullptr);

/** Workspace overload of blockInterpolate (the KNN table lives in a
 *  workspace slot; @p out reuses capacity). */
void blockInterpolate(const data::PointCloud &cloud,
                      const part::BlockTree &tree,
                      const BlockSampleResult &sampled,
                      const std::vector<float> &known_features,
                      std::size_t channels, std::size_t k,
                      core::ThreadPool *pool, core::Workspace &ws,
                      InterpolateResult &out);

} // namespace fc::ops

#endif // FC_OPS_INTERPOLATE_H
