/**
 * @file
 * Shared insertion-based top-k selection (ascending distance) used by
 * the KNN row kernels of neighbor search and k-NN graph construction.
 *
 * k is small in every PNN/DGCNN configuration (3..64), so candidates
 * live in a fixed inline buffer and offering a candidate performs no
 * heap allocation — a requirement of the allocation-free steady state
 * (core/workspace.h). Larger k (foreign callers) falls back to one
 * heap buffer per TopK instance.
 *
 * Insertion semantics match the historical per-op implementations
 * exactly: a candidate is placed at the lower_bound of its distance
 * (ties insert *before* existing equal-distance entries) and the
 * worst entry is dropped, so every migrated call site stays
 * bit-identical.
 */

#ifndef FC_OPS_TOPK_H
#define FC_OPS_TOPK_H

#include <algorithm>
#include <array>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/types.h"

namespace fc::ops {

class TopK
{
  public:
    /** Largest k served from the inline buffer. */
    static constexpr std::size_t kInline = 64;

    explicit TopK(std::size_t k) : k_(k)
    {
        if (k_ > kInline)
            overflow_.resize(k_);
    }

    /** Offer one candidate; keeps the k nearest seen so far.
     *  Deterministic: result depends only on the offer sequence
     *  (ties keep earlier-offered entries ahead); never allocates
     *  for k <= kInline. */
    void
    offer(float dist, PointIdx idx)
    {
        std::pair<float, PointIdx> *buf = data();
        if (count_ == k_ && dist >= buf[count_ - 1].first)
            return;
        const auto *pos = std::lower_bound(
            buf, buf + count_, dist,
            [](const std::pair<float, PointIdx> &a, float d) {
                return a.first < d;
            });
        const std::size_t at = static_cast<std::size_t>(pos - buf);
        const std::size_t last =
            count_ < k_ ? count_ : k_ - 1; // drop the worst when full
        for (std::size_t j = last; j > at; --j)
            buf[j] = buf[j - 1];
        buf[at] = {dist, idx};
        if (count_ < k_)
            ++count_;
    }

    /**
     * Offer a tile of candidates: dists[i] pairs with idxs[i].
     * Equivalent to offering each in order — the cheap worst-entry
     * screen at the top of offer() makes far candidates cost one
     * compare, so feeding whole core::simd::distance2Range tiles
     * through here keeps the scan branch-light.
     */
    void
    offerBatch(const float *dists, const PointIdx *idxs, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            offer(dists[i], idxs[i]);
    }

    std::size_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    const std::pair<float, PointIdx> *
    data() const
    {
        return k_ <= kInline ? inline_.data() : overflow_.data();
    }

    /** Write exactly @p k entries into @p row, padding empty slots
     *  with the nearest entry (kInvalidPoint when none was found). */
    void
    emitRow(PointIdx *row) const
    {
        const std::pair<float, PointIdx> *buf = data();
        std::size_t col = 0;
        for (; col < count_; ++col)
            row[col] = buf[col].second;
        const PointIdx pad = count_ > 0 ? buf[0].second : kInvalidPoint;
        for (; col < k_; ++col)
            row[col] = pad;
    }

  private:
    std::pair<float, PointIdx> *
    data()
    {
        return k_ <= kInline ? inline_.data() : overflow_.data();
    }

    std::size_t k_;
    std::size_t count_ = 0;
    std::array<std::pair<float, PointIdx>, kInline> inline_;
    std::vector<std::pair<float, PointIdx>> overflow_;
};

} // namespace fc::ops

#endif // FC_OPS_TOPK_H
