/**
 * @file
 * Work counters shared by all point operations.
 *
 * Functional implementations count the abstract events (distance
 * computations, candidate reads, FPS iterations) that the hardware
 * models later convert to cycles and energy. Keeping the counts next
 * to the functional code means timing always reflects the work the
 * operation actually did on the actual data.
 */

#ifndef FC_OPS_OP_STATS_H
#define FC_OPS_OP_STATS_H

#include <cstdint>

namespace fc::ops {

struct OpStats
{
    /** Euclidean distance evaluations. */
    std::uint64_t distance_computations = 0;

    /** Candidate point reads (coordinate fetches). */
    std::uint64_t points_visited = 0;

    /** Sequential outer iterations (e.g. FPS rounds). */
    std::uint64_t iterations = 0;

    /** Candidates skipped by the window-check mechanism (§V-C). */
    std::uint64_t skipped = 0;

    /** Feature bytes moved by gathering. */
    std::uint64_t bytes_gathered = 0;

    OpStats &
    operator+=(const OpStats &o)
    {
        distance_computations += o.distance_computations;
        points_visited += o.points_visited;
        iterations += o.iterations;
        skipped += o.skipped;
        bytes_gathered += o.bytes_gathered;
        return *this;
    }
};

} // namespace fc::ops

#endif // FC_OPS_OP_STATS_H
