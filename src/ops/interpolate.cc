#include "ops/interpolate.h"

#include <unordered_map>

#include "common/logging.h"
#include "core/parallel.h"

namespace fc::ops {

namespace {

/** Rows per parallel chunk of the blend loop. */
constexpr std::size_t kBlendGrain = 1024;

/**
 * Weighted blend of neighbor feature rows into the result for rows
 * [row_begin, row_end). Writes only those value rows and @p stats.
 */
void
blendRows(const data::PointCloud &cloud,
          const std::vector<float> &known_features, std::size_t channels,
          const std::unordered_map<PointIdx, std::size_t> &known_row,
          const NeighborResult &neighbors, std::size_t row_begin,
          std::size_t row_end, InterpolateResult &result,
          OpStats &stats)
{
    constexpr float kEps = 1e-8f;
    for (std::size_t row = row_begin; row < row_end; ++row) {
        float *out = result.values.data() + row * channels;
        const Vec3 &query = cloud[static_cast<PointIdx>(row)];
        float weight_sum = 0.0f;
        float weights[64];
        fc_assert(neighbors.k <= 64, "interpolation k too large");
        for (std::size_t j = 0; j < neighbors.k; ++j) {
            const PointIdx nb = neighbors.neighbor(row, j);
            if (nb == kInvalidPoint) {
                weights[j] = 0.0f;
                continue;
            }
            const float d2 = distance2(query, cloud[nb]);
            weights[j] = 1.0f / (d2 + kEps);
            weight_sum += weights[j];
        }
        if (weight_sum <= 0.0f)
            continue; // leave zeros
        const float inv = 1.0f / weight_sum;
        for (std::size_t j = 0; j < neighbors.k; ++j) {
            if (weights[j] <= 0.0f)
                continue;
            const PointIdx nb = neighbors.neighbor(row, j);
            const auto it = known_row.find(nb);
            fc_assert(it != known_row.end(),
                      "neighbor %u is not a known point", nb);
            const float *src =
                known_features.data() + it->second * channels;
            const float w = weights[j] * inv;
            for (std::size_t c = 0; c < channels; ++c)
                out[c] += w * src[c];
            stats.bytes_gathered += channels * 2; // fp16 row
        }
        ++stats.iterations;
    }
}

std::unordered_map<PointIdx, std::size_t>
buildKnownRowMap(const std::vector<PointIdx> &known_indices)
{
    std::unordered_map<PointIdx, std::size_t> map;
    map.reserve(known_indices.size());
    for (std::size_t i = 0; i < known_indices.size(); ++i)
        map.emplace(known_indices[i], i);
    return map;
}

} // namespace

InterpolateResult
interpolateFeatures(const data::PointCloud &cloud,
                    const std::vector<float> &known_features,
                    std::size_t channels,
                    const std::vector<PointIdx> &known_indices,
                    const NeighborResult &neighbors,
                    core::ThreadPool *pool)
{
    fc_assert(known_features.size() == known_indices.size() * channels,
              "known feature matrix shape mismatch");
    fc_assert(neighbors.num_centers == cloud.size(),
              "neighbor table rows (%zu) != cloud size (%zu)",
              neighbors.num_centers, cloud.size());

    InterpolateResult result;
    result.num_points = cloud.size();
    result.channels = channels;
    result.values.assign(result.num_points * channels, 0.0f);
    result.stats += neighbors.stats;

    // Row chunks write disjoint value rows; per-chunk stats fold in
    // chunk order.
    const auto known_row = buildKnownRowMap(known_indices);
    result.stats += core::parallelReduce(
        pool, 0, neighbors.num_centers, kBlendGrain, OpStats{},
        [&](std::size_t cb, std::size_t ce) {
            OpStats stats;
            blendRows(cloud, known_features, channels, known_row,
                      neighbors, cb, ce, result, stats);
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; });
    return result;
}

InterpolateResult
globalInterpolate(const data::PointCloud &cloud,
                  const std::vector<float> &known_features,
                  std::size_t channels,
                  const std::vector<PointIdx> &known_indices,
                  std::size_t k)
{
    std::vector<Vec3> queries = cloud.coords();
    const NeighborResult neighbors =
        knnSearch(cloud, known_indices, queries, k);
    return interpolateFeatures(cloud, known_features, channels,
                               known_indices, neighbors);
}

InterpolateResult
blockInterpolate(const data::PointCloud &cloud,
                 const part::BlockTree &tree,
                 const BlockSampleResult &sampled,
                 const std::vector<float> &known_features,
                 std::size_t channels, std::size_t k,
                 core::ThreadPool *pool)
{
    const NeighborResult neighbors =
        blockKnnToSamples(cloud, tree, sampled, k, pool);
    return interpolateFeatures(cloud, known_features, channels,
                               sampled.indices, neighbors, pool);
}

} // namespace fc::ops
