#include "ops/interpolate.h"

#include <unordered_map>

#include "common/logging.h"

namespace fc::ops {

namespace {

/** Weighted blend of neighbor feature rows into the result. */
void
blendRows(const data::PointCloud &cloud,
          const std::vector<float> &known_features, std::size_t channels,
          const std::unordered_map<PointIdx, std::size_t> &known_row,
          const NeighborResult &neighbors, InterpolateResult &result)
{
    constexpr float kEps = 1e-8f;
    for (std::size_t row = 0; row < neighbors.num_centers; ++row) {
        float *out = result.values.data() + row * channels;
        const Vec3 &query = cloud[static_cast<PointIdx>(row)];
        float weight_sum = 0.0f;
        float weights[64];
        fc_assert(neighbors.k <= 64, "interpolation k too large");
        for (std::size_t j = 0; j < neighbors.k; ++j) {
            const PointIdx nb = neighbors.neighbor(row, j);
            if (nb == kInvalidPoint) {
                weights[j] = 0.0f;
                continue;
            }
            const float d2 = distance2(query, cloud[nb]);
            weights[j] = 1.0f / (d2 + kEps);
            weight_sum += weights[j];
        }
        if (weight_sum <= 0.0f)
            continue; // leave zeros
        const float inv = 1.0f / weight_sum;
        for (std::size_t j = 0; j < neighbors.k; ++j) {
            if (weights[j] <= 0.0f)
                continue;
            const PointIdx nb = neighbors.neighbor(row, j);
            const auto it = known_row.find(nb);
            fc_assert(it != known_row.end(),
                      "neighbor %u is not a known point", nb);
            const float *src =
                known_features.data() + it->second * channels;
            const float w = weights[j] * inv;
            for (std::size_t c = 0; c < channels; ++c)
                out[c] += w * src[c];
            result.stats.bytes_gathered += channels * 2; // fp16 row
        }
        ++result.stats.iterations;
    }
}

std::unordered_map<PointIdx, std::size_t>
buildKnownRowMap(const std::vector<PointIdx> &known_indices)
{
    std::unordered_map<PointIdx, std::size_t> map;
    map.reserve(known_indices.size());
    for (std::size_t i = 0; i < known_indices.size(); ++i)
        map.emplace(known_indices[i], i);
    return map;
}

} // namespace

InterpolateResult
interpolateFeatures(const data::PointCloud &cloud,
                    const std::vector<float> &known_features,
                    std::size_t channels,
                    const std::vector<PointIdx> &known_indices,
                    const NeighborResult &neighbors)
{
    fc_assert(known_features.size() == known_indices.size() * channels,
              "known feature matrix shape mismatch");
    fc_assert(neighbors.num_centers == cloud.size(),
              "neighbor table rows (%zu) != cloud size (%zu)",
              neighbors.num_centers, cloud.size());

    InterpolateResult result;
    result.num_points = cloud.size();
    result.channels = channels;
    result.values.assign(result.num_points * channels, 0.0f);
    result.stats += neighbors.stats;

    const auto known_row = buildKnownRowMap(known_indices);
    blendRows(cloud, known_features, channels, known_row, neighbors,
              result);
    return result;
}

InterpolateResult
globalInterpolate(const data::PointCloud &cloud,
                  const std::vector<float> &known_features,
                  std::size_t channels,
                  const std::vector<PointIdx> &known_indices,
                  std::size_t k)
{
    std::vector<Vec3> queries = cloud.coords();
    const NeighborResult neighbors =
        knnSearch(cloud, known_indices, queries, k);
    return interpolateFeatures(cloud, known_features, channels,
                               known_indices, neighbors);
}

InterpolateResult
blockInterpolate(const data::PointCloud &cloud,
                 const part::BlockTree &tree,
                 const BlockSampleResult &sampled,
                 const std::vector<float> &known_features,
                 std::size_t channels, std::size_t k)
{
    const NeighborResult neighbors =
        blockKnnToSamples(cloud, tree, sampled, k);
    return interpolateFeatures(cloud, known_features, channels,
                               sampled.indices, neighbors);
}

} // namespace fc::ops
