#include "ops/interpolate.h"

#include <cstdint>
#include <span>

#include "common/logging.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "core/workspace.h"

namespace fc::ops {

namespace {

/** Rows per parallel chunk of the blend loop. */
constexpr std::size_t kBlendGrain = 1024;

/**
 * Weighted blend of neighbor feature rows into the result for rows
 * [row_begin, row_end). Writes only those value rows and @p stats.
 * @p known_row maps a cloud index to its row in known_features
 * (-1 = not a known point) — a dense arena table, replacing the
 * per-call hash map so warm calls never touch the heap.
 */
void
blendRows(const data::PointCloud &cloud,
          const std::vector<float> &known_features, std::size_t channels,
          std::span<const std::int64_t> known_row,
          const NeighborResult &neighbors, std::size_t row_begin,
          std::size_t row_end, InterpolateResult &result,
          OpStats &stats)
{
    constexpr float kEps = 1e-8f;
    for (std::size_t row = row_begin; row < row_end; ++row) {
        float *out = result.values.data() + row * channels;
        const Vec3 &query = cloud[static_cast<PointIdx>(row)];
        float weight_sum = 0.0f;
        float weights[64];
        fc_assert(neighbors.k <= 64, "interpolation k too large");
        for (std::size_t j = 0; j < neighbors.k; ++j) {
            const PointIdx nb = neighbors.neighbor(row, j);
            if (nb == kInvalidPoint) {
                weights[j] = 0.0f;
                continue;
            }
            const float d2 = distance2(query, cloud[nb]);
            weights[j] = 1.0f / (d2 + kEps);
            weight_sum += weights[j];
        }
        if (weight_sum <= 0.0f)
            continue; // leave zeros
        const float inv = 1.0f / weight_sum;
        for (std::size_t j = 0; j < neighbors.k; ++j) {
            if (weights[j] <= 0.0f)
                continue;
            const PointIdx nb = neighbors.neighbor(row, j);
            const std::int64_t r = known_row[nb];
            fc_assert(r >= 0, "neighbor %u is not a known point", nb);
            const float *src =
                known_features.data() +
                static_cast<std::size_t>(r) * channels;
            const float w = weights[j] * inv;
            // Elementwise mul+add — bit-identical at every dispatch
            // level (core/simd.h).
            core::simd::axpy(w, src, out, channels);
            stats.bytes_gathered += channels * 2; // fp16 row
        }
        ++stats.iterations;
    }
}

} // namespace

void
interpolateFeatures(const data::PointCloud &cloud,
                    const std::vector<float> &known_features,
                    std::size_t channels,
                    const std::vector<PointIdx> &known_indices,
                    const NeighborResult &neighbors,
                    core::ThreadPool *pool, core::Workspace &ws,
                    InterpolateResult &out)
{
    fc_assert(known_features.size() == known_indices.size() * channels,
              "known feature matrix shape mismatch");
    fc_assert(neighbors.num_centers == cloud.size(),
              "neighbor table rows (%zu) != cloud size (%zu)",
              neighbors.num_centers, cloud.size());

    out.stats = {};
    out.num_points = cloud.size();
    out.channels = channels;
    out.values.assign(out.num_points * channels, 0.0f);
    out.stats += neighbors.stats;

    // Dense cloud-index -> known-row table (arena scratch). Same
    // lookups as the historical hash map, none of its per-node heap
    // churn.
    std::span<std::int64_t> known_row = ws.arena().allocSpan<std::int64_t>(
        cloud.size(), std::int64_t{-1});
    for (std::size_t i = 0; i < known_indices.size(); ++i)
        known_row[known_indices[i]] = static_cast<std::int64_t>(i);

    // Row chunks write disjoint value rows; per-chunk stats fold in
    // chunk order.
    out.stats += core::parallelReduce(
        pool, 0, neighbors.num_centers, kBlendGrain, OpStats{},
        [&](std::size_t cb, std::size_t ce) {
            OpStats stats;
            blendRows(cloud, known_features, channels, known_row,
                      neighbors, cb, ce, out, stats);
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; },
        &ws.arena());
}

InterpolateResult
interpolateFeatures(const data::PointCloud &cloud,
                    const std::vector<float> &known_features,
                    std::size_t channels,
                    const std::vector<PointIdx> &known_indices,
                    const NeighborResult &neighbors,
                    core::ThreadPool *pool)
{
    core::Workspace ws;
    InterpolateResult out;
    interpolateFeatures(cloud, known_features, channels, known_indices,
                        neighbors, pool, ws, out);
    return out;
}

void
globalInterpolate(const data::PointCloud &cloud,
                  const std::vector<float> &known_features,
                  std::size_t channels,
                  const std::vector<PointIdx> &known_indices,
                  std::size_t k, core::Workspace &ws,
                  InterpolateResult &out)
{
    NeighborResult &neighbors =
        ws.slot<NeighborResult>("ops.gi.nbr");
    knnSearch(cloud, known_indices, cloud.coords(), k, ws, neighbors);
    interpolateFeatures(cloud, known_features, channels, known_indices,
                        neighbors, nullptr, ws, out);
}

InterpolateResult
globalInterpolate(const data::PointCloud &cloud,
                  const std::vector<float> &known_features,
                  std::size_t channels,
                  const std::vector<PointIdx> &known_indices,
                  std::size_t k)
{
    core::Workspace ws;
    InterpolateResult out;
    globalInterpolate(cloud, known_features, channels, known_indices, k,
                      ws, out);
    return out;
}

void
blockInterpolate(const data::PointCloud &cloud,
                 const part::BlockTree &tree,
                 const BlockSampleResult &sampled,
                 const std::vector<float> &known_features,
                 std::size_t channels, std::size_t k,
                 core::ThreadPool *pool, core::Workspace &ws,
                 InterpolateResult &out)
{
    NeighborResult &neighbors =
        ws.slot<NeighborResult>("ops.bi.nbr");
    blockKnnToSamples(cloud, tree, sampled, k, pool, ws, neighbors);
    interpolateFeatures(cloud, known_features, channels,
                        sampled.indices, neighbors, pool, ws, out);
}

InterpolateResult
blockInterpolate(const data::PointCloud &cloud,
                 const part::BlockTree &tree,
                 const BlockSampleResult &sampled,
                 const std::vector<float> &known_features,
                 std::size_t channels, std::size_t k,
                 core::ThreadPool *pool)
{
    core::Workspace ws;
    InterpolateResult out;
    blockInterpolate(cloud, tree, sampled, known_features, channels, k,
                     pool, ws, out);
    return out;
}

} // namespace fc::ops
