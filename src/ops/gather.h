/**
 * @file
 * Gathering: retrieve feature rows by neighbor indices (paper §II-B),
 * with relative-coordinate augmentation as used by set-abstraction
 * layers, plus the block-wise access-pattern accounting of §IV-B
 * ("Block-Wise Gathering").
 *
 * Functionally, global and block-wise gathering return identical
 * values (the paper notes gathering "has no impact on network
 * accuracy"); they differ in memory behaviour, which the stats
 * capture: global gathering performs random accesses over the whole
 * feature space, block-wise gathering streams only the blocks of each
 * search space.
 */

#ifndef FC_OPS_GATHER_H
#define FC_OPS_GATHER_H

#include <cstdint>
#include <span>
#include <vector>

#include "dataset/point_cloud.h"
#include "ops/neighbor.h"
#include "partition/block_tree.h"

namespace fc::core {
class ThreadPool;
class Workspace;
}

namespace fc::ops {

/** Gathered neighborhood tensor. */
struct GatherResult
{
    std::size_t num_centers = 0;
    std::size_t k = 0;
    std::size_t channels = 0; ///< 3 (rel. coords) + featureDim

    /** Row-major [num_centers x k x channels]. */
    std::vector<float> values;

    OpStats stats;

    float
    at(std::size_t center, std::size_t j, std::size_t c) const
    {
        return values[(center * k + j) * channels + c];
    }
};

/**
 * Gather neighbor features for each (center, neighbor) pair.
 *
 * Channel layout per neighbor: [dx, dy, dz, features...] where the
 * delta is neighbor minus center coordinate (the standard PointNet++
 * grouping layout). Padded neighbor slots replicate the pad index;
 * rows with no neighbors at all yield zeros.
 *
 * @param cloud     source of coordinates and features
 * @param centers   center indices (per neighbor-table row)
 * @param neighbors the neighbor table to gather
 */
GatherResult gatherNeighborhoods(const data::PointCloud &cloud,
                                 const std::vector<PointIdx> &centers,
                                 const NeighborResult &neighbors);

/** Workspace overload: writes into @p out reusing its capacity (the
 *  allocation-free steady-state path; see core/workspace.h). */
void gatherNeighborhoods(const data::PointCloud &cloud,
                         const std::vector<PointIdx> &centers,
                         const NeighborResult &neighbors,
                         core::Workspace &ws, GatherResult &out);

/**
 * Same values as gatherNeighborhoods but with block-wise memory
 * accounting: accesses are counted per block as streamed reads (the
 * DFT layout makes each block contiguous). Per-leaf work items run
 * over @p pool; rows are disjoint, so the values are bit-identical to
 * sequential execution.
 */
GatherResult blockGatherNeighborhoods(
    const data::PointCloud &cloud, const part::BlockTree &tree,
    const std::vector<PointIdx> &centers,
    const std::vector<std::uint32_t> &center_leaf_offsets,
    const NeighborResult &neighbors, core::ThreadPool *pool = nullptr);

/** Workspace overload of blockGatherNeighborhoods (capacity-reusing
 *  @p out). */
void blockGatherNeighborhoods(
    const data::PointCloud &cloud, const part::BlockTree &tree,
    const std::vector<PointIdx> &centers,
    const std::vector<std::uint32_t> &center_leaf_offsets,
    const NeighborResult &neighbors, core::ThreadPool *pool,
    core::Workspace &ws, GatherResult &out);

// ---------------------------------------------------------------------
// Feature-indexed gathering (delayed-aggregation inference)
// ---------------------------------------------------------------------
//
// The eager execution order gathers raw [rel-coord, feature] rows and
// runs the per-point MLP on every one of the k neighbor copies of a
// point. The delayed order (Mesorasi-style; see nn::Aggregation and
// docs/ARCHITECTURE.md) runs the MLP once per unique point first, so
// grouping becomes a pure index-gather over the resulting *feature
// tensor* — these overloads are that gather. They know nothing about
// coordinates: @p features is any row-major [n x channels] buffer and
// the neighbor table supplies the row indices.

/**
 * Index-gather feature rows for each (center, neighbor) pair:
 * out.values is row-major [num_centers x k x channels] with row
 * (i, j) = features[neighbors.neighbor(i, j)]. Padded neighbor slots
 * replicate the pad index (so a following max-pool is unaffected);
 * kInvalidPoint slots yield zero rows, mirroring gatherNeighborhoods.
 *
 * Deterministic (pure indexing) and allocation-free once @p out has
 * warm capacity; @p features must hold at least
 * (max neighbor index + 1) * channels floats. Global-access
 * accounting: every row is a random access into the feature space.
 */
void gatherFeatureRows(std::span<const float> features,
                       std::size_t channels,
                       const NeighborResult &neighbors,
                       core::Workspace &ws, GatherResult &out);

/** Value-returning wrapper of gatherFeatureRows. */
GatherResult gatherFeatureRows(std::span<const float> features,
                               std::size_t channels,
                               const NeighborResult &neighbors);

/**
 * Block-wise twin of gatherFeatureRows: identical values, block-wise
 * memory accounting (each leaf streams its search-space block of the
 * feature tensor once), per-leaf work items dispatched over @p pool.
 * Every center owns a disjoint output range, so the result is
 * bit-identical to the sequential path at any thread count;
 * allocation-free once @p out has warm capacity.
 */
void blockGatherFeatureRows(
    std::span<const float> features, std::size_t channels,
    const part::BlockTree &tree,
    const std::vector<std::uint32_t> &center_leaf_offsets,
    const NeighborResult &neighbors, core::ThreadPool *pool,
    core::Workspace &ws, GatherResult &out);

/**
 * The aggregation-step coordinate summary of the delayed order:
 * for every center i, the channel-wise max over its real neighbors j
 * of the relative coordinate (p_j - p_i) — the same max-pool applied
 * to the gathered feature rows, applied to the 3 relative-coordinate
 * channels the unique-point MLP did not see. @p out is resized to
 * centers.size() * 3 reusing capacity (zeros for centers with no real
 * neighbors). Center rows dispatch in chunks over @p pool;
 * per-center output rows are disjoint, so the result is bit-identical
 * at any thread count, and the warm path performs no heap allocation.
 */
void maxPoolRelativeCoords(const data::PointCloud &cloud,
                           const std::vector<PointIdx> &centers,
                           const NeighborResult &neighbors,
                           core::ThreadPool *pool, core::Workspace &ws,
                           std::vector<float> &out);

} // namespace fc::ops

#endif // FC_OPS_GATHER_H
