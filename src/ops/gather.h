/**
 * @file
 * Gathering: retrieve feature rows by neighbor indices (paper §II-B),
 * with relative-coordinate augmentation as used by set-abstraction
 * layers, plus the block-wise access-pattern accounting of §IV-B
 * ("Block-Wise Gathering").
 *
 * Functionally, global and block-wise gathering return identical
 * values (the paper notes gathering "has no impact on network
 * accuracy"); they differ in memory behaviour, which the stats
 * capture: global gathering performs random accesses over the whole
 * feature space, block-wise gathering streams only the blocks of each
 * search space.
 */

#ifndef FC_OPS_GATHER_H
#define FC_OPS_GATHER_H

#include <cstdint>
#include <vector>

#include "dataset/point_cloud.h"
#include "ops/neighbor.h"
#include "partition/block_tree.h"

namespace fc::core {
class ThreadPool;
class Workspace;
}

namespace fc::ops {

/** Gathered neighborhood tensor. */
struct GatherResult
{
    std::size_t num_centers = 0;
    std::size_t k = 0;
    std::size_t channels = 0; ///< 3 (rel. coords) + featureDim

    /** Row-major [num_centers x k x channels]. */
    std::vector<float> values;

    OpStats stats;

    float
    at(std::size_t center, std::size_t j, std::size_t c) const
    {
        return values[(center * k + j) * channels + c];
    }
};

/**
 * Gather neighbor features for each (center, neighbor) pair.
 *
 * Channel layout per neighbor: [dx, dy, dz, features...] where the
 * delta is neighbor minus center coordinate (the standard PointNet++
 * grouping layout). Padded neighbor slots replicate the pad index;
 * rows with no neighbors at all yield zeros.
 *
 * @param cloud     source of coordinates and features
 * @param centers   center indices (per neighbor-table row)
 * @param neighbors the neighbor table to gather
 */
GatherResult gatherNeighborhoods(const data::PointCloud &cloud,
                                 const std::vector<PointIdx> &centers,
                                 const NeighborResult &neighbors);

/** Workspace overload: writes into @p out reusing its capacity (the
 *  allocation-free steady-state path; see core/workspace.h). */
void gatherNeighborhoods(const data::PointCloud &cloud,
                         const std::vector<PointIdx> &centers,
                         const NeighborResult &neighbors,
                         core::Workspace &ws, GatherResult &out);

/**
 * Same values as gatherNeighborhoods but with block-wise memory
 * accounting: accesses are counted per block as streamed reads (the
 * DFT layout makes each block contiguous). Per-leaf work items run
 * over @p pool; rows are disjoint, so the values are bit-identical to
 * sequential execution.
 */
GatherResult blockGatherNeighborhoods(
    const data::PointCloud &cloud, const part::BlockTree &tree,
    const std::vector<PointIdx> &centers,
    const std::vector<std::uint32_t> &center_leaf_offsets,
    const NeighborResult &neighbors, core::ThreadPool *pool = nullptr);

/** Workspace overload of blockGatherNeighborhoods (capacity-reusing
 *  @p out). */
void blockGatherNeighborhoods(
    const data::PointCloud &cloud, const part::BlockTree &tree,
    const std::vector<PointIdx> &centers,
    const std::vector<std::uint32_t> &center_leaf_offsets,
    const NeighborResult &neighbors, core::ThreadPool *pool,
    core::Workspace &ws, GatherResult &out);

} // namespace fc::ops

#endif // FC_OPS_GATHER_H
