#include "ops/fps.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "core/parallel.h"

namespace fc::ops {

namespace {

/**
 * FPS over an index view. @p view maps dense positions [0, view_size)
 * to original point indices. Writes exactly min(num_samples, n)
 * original indices to @p out — callers size their output ranges from
 * the same formula, so disjoint leaves can write one shared buffer.
 */
void
fpsOverView(const data::PointCloud &cloud,
            const std::vector<PointIdx> &order, std::uint32_t begin,
            std::uint32_t end, std::size_t num_samples,
            std::uint32_t start_offset, bool window_check,
            PointIdx *out, OpStats &stats)
{
    const std::uint32_t n = end - begin;
    if (n == 0 || num_samples == 0)
        return;
    num_samples = std::min<std::size_t>(num_samples, n);

    std::vector<float> min_dist(n, std::numeric_limits<float>::max());
    std::vector<bool> sampled(n, false);

    std::uint32_t current = std::min(start_offset, n - 1);
    sampled[current] = true;
    *out++ = order[begin + current];

    for (std::size_t s = 1; s < num_samples; ++s) {
        ++stats.iterations;
        const Vec3 &cur_pt = cloud[order[begin + current]];
        float best = -1.0f;
        std::uint32_t best_pos = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            if (sampled[i]) {
                // The window-check module (paper Fig. 11(c)) filters
                // sampled points out of the candidate stream entirely;
                // without it the hardware still reads and re-compares
                // them.
                if (window_check)
                    ++stats.skipped;
                else
                    ++stats.points_visited;
                continue;
            }
            ++stats.points_visited;
            ++stats.distance_computations;
            const float d =
                distance2(cur_pt, cloud[order[begin + i]]);
            if (d < min_dist[i])
                min_dist[i] = d;
            if (min_dist[i] > best) {
                best = min_dist[i];
                best_pos = i;
            }
        }
        current = best_pos;
        sampled[current] = true;
        *out++ = order[begin + current];
    }
    // Final iteration bookkeeping: the first sample costs one setup
    // iteration as well.
    ++stats.iterations;
}

} // namespace

SampleResult
farthestPointSample(const data::PointCloud &cloud,
                    std::size_t num_samples, const FpsOptions &options)
{
    SampleResult result;
    if (cloud.empty() || num_samples == 0)
        return result;

    // Identity view over the whole cloud. Per-call scratch: an O(n)
    // fill is noise next to the O(n^2) sampling loop, and unlike a
    // thread_local cache it holds no memory past the call and no
    // stale state on pool threads.
    std::vector<PointIdx> identity(cloud.size());
    std::iota(identity.begin(), identity.end(), PointIdx{0});
    result.indices.resize(std::min(num_samples, cloud.size()));
    fpsOverView(cloud, identity, 0,
                static_cast<std::uint32_t>(cloud.size()), num_samples,
                options.start_index, options.window_check,
                result.indices.data(), result.stats);
    return result;
}

BlockSampleResult
blockFarthestPointSample(const data::PointCloud &cloud,
                         const part::BlockTree &tree, double rate,
                         const FpsOptions &options,
                         core::ThreadPool *pool)
{
    fc_assert(rate > 0.0 && rate <= 1.0,
              "sampling rate %f outside (0, 1]", rate);
    BlockSampleResult result;
    const auto &leaves = tree.leaves();
    result.leaf_offsets.reserve(leaves.size() + 1);
    result.leaf_offsets.push_back(0);

    // Fixed-count mode: split the total budget evenly over non-empty
    // leaves (PNNPU-style, see FpsOptions).
    std::size_t nonempty = 0;
    for (const part::NodeIdx leaf : leaves)
        nonempty += tree.node(leaf).size() > 0;
    const double per_block_count =
        nonempty == 0
            ? 0.0
            : rate * static_cast<double>(tree.numPoints()) /
                  static_cast<double>(nonempty);

    // Every quota is a pure function of the leaf size and the
    // options, so the per-leaf output ranges are known before any
    // sampling runs: prefix-summing the quotas yields leaf_offsets up
    // front, and each leaf then writes its disjoint slice of
    // result.indices directly — no per-leaf buffers, no merge copy.
    std::vector<std::size_t> quotas(leaves.size());
    for (std::size_t li = 0; li < leaves.size(); ++li) {
        const std::uint32_t size = tree.node(leaves[li]).size();
        if (size == 0) {
            quotas[li] = 0;
        } else {
            // Fixed rate, rounded to nearest; at least one sample so
            // sparse regions stay represented.
            const std::size_t quota =
                static_cast<std::size_t>(std::llround(
                    options.fixed_count_per_block
                        ? per_block_count
                        : rate * static_cast<double>(size)));
            quotas[li] = std::clamp<std::size_t>(quota, 1, size);
        }
        result.leaf_offsets.push_back(
            result.leaf_offsets[li] +
            static_cast<std::uint32_t>(quotas[li]));
    }
    result.indices.resize(result.leaf_offsets.back());

    std::vector<OpStats> leaf_stats(leaves.size());
    core::parallelFor(
        pool, 0, leaves.size(), 1,
        [&](std::size_t lb, std::size_t le) {
            for (std::size_t li = lb; li < le; ++li) {
                if (quotas[li] == 0)
                    continue;
                const part::BlockNode &node = tree.node(leaves[li]);
                fpsOverView(cloud, tree.order(), node.begin, node.end,
                            quotas[li], options.start_index,
                            options.window_check,
                            result.indices.data() +
                                result.leaf_offsets[li],
                            leaf_stats[li]);
            }
        });
    for (std::size_t li = 0; li < leaves.size(); ++li)
        result.stats += leaf_stats[li];

    // Recover DFT positions with one inverse-permutation pass.
    std::vector<std::uint32_t> inverse(tree.order().size());
    core::parallelFor(pool, 0, tree.order().size(), 65536,
                      [&](std::size_t cb, std::size_t ce) {
                          for (std::size_t pos = cb; pos < ce; ++pos)
                              inverse[tree.order()[pos]] =
                                  static_cast<std::uint32_t>(pos);
                      });
    result.positions.resize(result.indices.size());
    for (std::size_t i = 0; i < result.indices.size(); ++i)
        result.positions[i] = inverse[result.indices[i]];

    return result;
}

} // namespace fc::ops
