#include "ops/fps.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "common/logging.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "core/workspace.h"

namespace fc::ops {

namespace {

/** View index: an empty order span means the identity view. */
inline PointIdx
viewIdx(std::span<const PointIdx> order, std::uint32_t pos)
{
    return order.empty() ? pos : order[pos];
}

/** Chunk-local argmax candidate of one FPS sweep. */
struct FpsBest
{
    float dist = -1.0f;
    std::uint32_t pos = 0;
    std::uint64_t visited = 0;  ///< candidate reads
    std::uint64_t computed = 0; ///< distance evaluations
    std::uint64_t skipped = 0;  ///< window-check filtered
};

/**
 * FPS over an index view. @p order maps dense positions to original
 * point indices (empty = identity). Writes exactly
 * min(num_samples, n) original indices to @p out — callers size their
 * output ranges from the same formula, so disjoint leaves can write
 * one shared buffer. Scratch (distance table + sampled flags) comes
 * from @p arena; the per-iteration sweep dispatches over @p pool
 * (block-wise callers pass null — their parallelism is per leaf).
 *
 * The parallel sweep is bit-identical to the serial one: chunk
 * boundaries depend only on (n, grain), each chunk tracks its best
 * with the serial loop's strictly-greater comparison, and chunks fold
 * in ascending order, so the earliest maximal position always wins —
 * exactly the serial tie-break.
 */
void
fpsOverView(const data::PointCloud &cloud,
            std::span<const PointIdx> order, std::uint32_t begin,
            std::uint32_t end, std::size_t num_samples,
            std::uint32_t start_offset, bool window_check,
            PointIdx *out, OpStats &stats, core::ThreadPool *pool,
            core::Arena &arena)
{
    const std::uint32_t n = end - begin;
    if (n == 0 || num_samples == 0)
        return;
    num_samples = std::min<std::size_t>(num_samples, n);

    std::span<float> min_dist =
        arena.allocSpan<float>(n, std::numeric_limits<float>::max());
    std::span<std::uint8_t> sampled =
        arena.allocSpan<std::uint8_t>(n, std::uint8_t{0});

    std::uint32_t current = std::min(start_offset, n - 1);
    sampled[current] = 1;
    *out++ = viewIdx(order, begin + current);

    // Pre-offset the order view so kernel-local positions index
    // min_dist/sampled directly (core/simd.h addressing convention);
    // the identity view passes `begin` as the base instead.
    const core::simd::SoaView pts = cloud.soa();
    const PointIdx *order_ptr =
        order.empty() ? nullptr : order.data() + begin;

    const std::size_t grain = core::costGrain(8);
    for (std::size_t s = 1; s < num_samples; ++s) {
        ++stats.iterations;
        const Vec3 &cur_pt = cloud[viewIdx(order, begin + current)];
        const FpsBest best = core::parallelReduce(
            pool, 0, n, grain, FpsBest{},
            [&](std::size_t cb, std::size_t ce) {
                const core::simd::FpsPartial p = core::simd::fpsUpdate(
                    pts, order_ptr, begin, cur_pt, min_dist.data(),
                    sampled.data(), static_cast<std::uint32_t>(cb),
                    static_cast<std::uint32_t>(ce));
                FpsBest local;
                local.dist = p.best;
                local.pos = p.pos;
                // The window-check module (paper Fig. 11(c)) filters
                // sampled points out of the candidate stream entirely;
                // without it the hardware still reads and re-compares
                // them. Either way only unsampled candidates cost a
                // distance evaluation.
                const std::uint64_t len = ce - cb;
                local.computed = len - p.sampled;
                local.visited = window_check ? len - p.sampled : len;
                local.skipped = window_check ? p.sampled : 0;
                return local;
            },
            [](FpsBest &acc, FpsBest &&chunk) {
                // Strictly greater: the earliest chunk (and within a
                // chunk the earliest index) wins ties, matching the
                // serial sweep.
                if (chunk.dist > acc.dist) {
                    acc.dist = chunk.dist;
                    acc.pos = chunk.pos;
                }
                acc.visited += chunk.visited;
                acc.computed += chunk.computed;
                acc.skipped += chunk.skipped;
            },
            &arena);
        stats.points_visited += best.visited;
        stats.distance_computations += best.computed;
        stats.skipped += best.skipped;
        current = best.pos;
        sampled[current] = 1;
        *out++ = viewIdx(order, begin + current);
    }
    // Final iteration bookkeeping: the first sample costs one setup
    // iteration as well.
    ++stats.iterations;
}

} // namespace

void
farthestPointSample(const data::PointCloud &cloud,
                    std::size_t num_samples, const FpsOptions &options,
                    core::ThreadPool *pool, core::Workspace &ws,
                    SampleResult &out)
{
    out.stats = {};
    if (cloud.empty() || num_samples == 0) {
        out.indices.clear();
        return;
    }
    out.indices.resize(std::min(num_samples, cloud.size()));
    // The identity view is implicit (empty order span): no O(n) index
    // fill, no per-call buffer.
    fpsOverView(cloud, {}, 0, static_cast<std::uint32_t>(cloud.size()),
                num_samples, options.start_index, options.window_check,
                out.indices.data(), out.stats, pool, ws.arena());
}

SampleResult
farthestPointSample(const data::PointCloud &cloud,
                    std::size_t num_samples, const FpsOptions &options,
                    core::ThreadPool *pool)
{
    core::Workspace ws;
    SampleResult out;
    farthestPointSample(cloud, num_samples, options, pool, ws, out);
    return out;
}

void
blockFarthestPointSample(const data::PointCloud &cloud,
                         const part::BlockTree &tree, double rate,
                         const FpsOptions &options,
                         core::ThreadPool *pool, core::Workspace &ws,
                         BlockSampleResult &out)
{
    fc_assert(rate > 0.0 && rate <= 1.0,
              "sampling rate %f outside (0, 1]", rate);
    out.stats = {};
    core::Arena &arena = ws.arena();
    const auto &leaves = tree.leaves();
    out.leaf_offsets.clear();
    out.leaf_offsets.reserve(leaves.size() + 1);
    out.leaf_offsets.push_back(0);

    // Fixed-count mode: split the total budget evenly over non-empty
    // leaves (PNNPU-style, see FpsOptions).
    std::size_t nonempty = 0;
    for (const part::NodeIdx leaf : leaves)
        nonempty += tree.node(leaf).size() > 0;
    const double per_block_count =
        nonempty == 0
            ? 0.0
            : rate * static_cast<double>(tree.numPoints()) /
                  static_cast<double>(nonempty);

    // Every quota is a pure function of the leaf size and the
    // options, so the per-leaf output ranges are known before any
    // sampling runs: prefix-summing the quotas yields leaf_offsets up
    // front, and each leaf then writes its disjoint slice of
    // out.indices directly — no per-leaf buffers, no merge copy.
    std::span<std::size_t> quotas =
        arena.allocSpan<std::size_t>(leaves.size());
    for (std::size_t li = 0; li < leaves.size(); ++li) {
        const std::uint32_t size = tree.node(leaves[li]).size();
        if (size == 0) {
            quotas[li] = 0;
        } else {
            // Fixed rate, rounded to nearest; at least one sample so
            // sparse regions stay represented.
            const std::size_t quota =
                static_cast<std::size_t>(std::llround(
                    options.fixed_count_per_block
                        ? per_block_count
                        : rate * static_cast<double>(size)));
            quotas[li] = std::clamp<std::size_t>(quota, 1, size);
        }
        out.leaf_offsets.push_back(
            out.leaf_offsets[li] +
            static_cast<std::uint32_t>(quotas[li]));
    }
    out.indices.resize(out.leaf_offsets.back());

    // Warm the SoA mirror serially: the per-leaf tasks below all call
    // cloud.soa(), which must not rebuild concurrently.
    (void)cloud.soa();

    std::span<OpStats> leaf_stats =
        arena.allocSpan<OpStats>(leaves.size(), OpStats{});
    core::parallelFor(
        pool, 0, leaves.size(), 1,
        [&](std::size_t lb, std::size_t le) {
            for (std::size_t li = lb; li < le; ++li) {
                if (quotas[li] == 0)
                    continue;
                const part::BlockNode &node = tree.node(leaves[li]);
                fpsOverView(cloud, tree.order(), node.begin, node.end,
                            quotas[li], options.start_index,
                            options.window_check,
                            out.indices.data() + out.leaf_offsets[li],
                            leaf_stats[li], nullptr, arena);
            }
        });
    for (std::size_t li = 0; li < leaves.size(); ++li)
        out.stats += leaf_stats[li];

    // Recover DFT positions with one inverse-permutation pass.
    std::span<std::uint32_t> inverse =
        arena.allocSpan<std::uint32_t>(tree.order().size());
    core::parallelFor(pool, 0, tree.order().size(), 65536,
                      [&](std::size_t cb, std::size_t ce) {
                          for (std::size_t pos = cb; pos < ce; ++pos)
                              inverse[tree.order()[pos]] =
                                  static_cast<std::uint32_t>(pos);
                      });
    out.positions.resize(out.indices.size());
    for (std::size_t i = 0; i < out.indices.size(); ++i)
        out.positions[i] = inverse[out.indices[i]];
}

BlockSampleResult
blockFarthestPointSample(const data::PointCloud &cloud,
                         const part::BlockTree &tree, double rate,
                         const FpsOptions &options,
                         core::ThreadPool *pool)
{
    core::Workspace ws;
    BlockSampleResult out;
    blockFarthestPointSample(cloud, tree, rate, options, pool, ws, out);
    return out;
}

} // namespace fc::ops
