/**
 * @file
 * Quality metrics that quantify how closely block-wise operations
 * track their global counterparts. These drive the accuracy proxy of
 * Fig. 14 / Fig. 17 (DESIGN.md §4.2): the paper retrains networks and
 * reports task accuracy; we measure the operator-level degradation
 * that accuracy differences stem from.
 */

#ifndef FC_OPS_QUALITY_H
#define FC_OPS_QUALITY_H

#include <vector>

#include "dataset/point_cloud.h"
#include "ops/neighbor.h"

namespace fc::ops {

/**
 * Coverage radius of a sampled set: max over all points of the
 * distance to the nearest sample. FPS approximately minimizes this;
 * worse sampling (imbalanced blocks, random-like FPS) increases it.
 */
float coverageRadius(const data::PointCloud &cloud,
                     const std::vector<PointIdx> &samples);

/** Mean (rather than max) distance to the nearest sample. */
float meanCoverage(const data::PointCloud &cloud,
                   const std::vector<PointIdx> &samples);

/**
 * Per-center neighbor recall of @p test against @p reference:
 * |test ∩ reference| / |reference| averaged over centers (padding and
 * invalid entries ignored). Both tables must share center ordering.
 */
double neighborRecall(const NeighborResult &reference,
                      const NeighborResult &test);

/** Mean relative L2 error between two row-major feature matrices. */
double featureRelativeError(const std::vector<float> &reference,
                            const std::vector<float> &test);

} // namespace fc::ops

#endif // FC_OPS_QUALITY_H
