#include "ops/neighbor.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/logging.h"
#include "core/parallel.h"

namespace fc::ops {

namespace {

/**
 * Ball query for one center over a view of candidate positions.
 * Writes exactly k entries (padded) into @p row; returns the number
 * of real neighbors found.
 */
std::uint32_t
ballQueryRow(const data::PointCloud &cloud, const Vec3 &center_pt,
             const std::vector<PointIdx> &order, std::uint32_t begin,
             std::uint32_t end, float radius2, std::size_t k,
             PointIdx *row, OpStats &stats)
{
    std::uint32_t found = 0;
    for (std::uint32_t pos = begin; pos < end && found < k; ++pos) {
        const PointIdx idx = order[pos];
        ++stats.points_visited;
        ++stats.distance_computations;
        if (distance2(center_pt, cloud[idx]) <= radius2)
            row[found++] = idx;
    }
    // PointNet++ padding: repeat the first neighbor; centers with no
    // neighbor at all (possible when the center is not among the
    // candidates) repeat kInvalidPoint.
    const PointIdx pad = found > 0 ? row[0] : kInvalidPoint;
    for (std::size_t j = found; j < k; ++j)
        row[j] = pad;
    return found;
}

/** Insertion-based top-k (k is small: 3..64), ascending distance. */
struct TopK
{
    std::size_t k;
    std::vector<std::pair<float, PointIdx>> heap; // sorted ascending

    explicit TopK(std::size_t kk) : k(kk) { heap.reserve(kk + 1); }

    void
    offer(float dist, PointIdx idx)
    {
        if (heap.size() == k && dist >= heap.back().first)
            return;
        auto it = std::lower_bound(
            heap.begin(), heap.end(), dist,
            [](const auto &a, float d) { return a.first < d; });
        heap.insert(it, {dist, idx});
        if (heap.size() > k)
            heap.pop_back();
    }
};

/**
 * KNN for one query over an explicit candidate list. Writes exactly k
 * entries (padded) into @p row; returns the real neighbor count.
 */
std::uint32_t
knnRow(const data::PointCloud &cloud, const Vec3 &query,
       const std::vector<PointIdx> &candidates, std::size_t k,
       PointIdx *row, OpStats &stats)
{
    TopK top(k);
    for (const PointIdx idx : candidates) {
        ++stats.points_visited;
        ++stats.distance_computations;
        top.offer(distance2(query, cloud[idx]), idx);
    }
    const std::uint32_t found =
        static_cast<std::uint32_t>(top.heap.size());
    std::size_t j = 0;
    for (const auto &[dist, idx] : top.heap)
        row[j++] = idx;
    const PointIdx pad = found > 0 ? top.heap[0].second : kInvalidPoint;
    for (; j < k; ++j)
        row[j] = pad;
    return found;
}

} // namespace

NeighborResult
ballQuery(const data::PointCloud &cloud,
          const std::vector<PointIdx> &centers, float radius,
          std::size_t k)
{
    fc_assert(k > 0, "ball query needs k > 0");
    NeighborResult result;
    result.num_centers = centers.size();
    result.k = k;
    result.indices.resize(centers.size() * k);
    result.counts.resize(centers.size());

    // Identity view over the whole cloud (per-call scratch; no cached
    // thread-local state).
    std::vector<PointIdx> identity(cloud.size());
    std::iota(identity.begin(), identity.end(), PointIdx{0});

    const float r2 = radius * radius;
    for (std::size_t ci = 0; ci < centers.size(); ++ci) {
        result.counts[ci] = ballQueryRow(
            cloud, cloud[centers[ci]], identity, 0,
            static_cast<std::uint32_t>(cloud.size()), r2, k,
            result.indices.data() + ci * k, result.stats);
        ++result.stats.iterations;
    }
    return result;
}

NeighborResult
knnSearch(const data::PointCloud &cloud,
          const std::vector<PointIdx> &candidates,
          const std::vector<Vec3> &queries, std::size_t k)
{
    fc_assert(k > 0, "knn needs k > 0");
    NeighborResult result;
    result.num_centers = queries.size();
    result.k = k;
    result.indices.resize(queries.size() * k);
    result.counts.resize(queries.size());
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        result.counts[qi] =
            knnRow(cloud, queries[qi], candidates, k,
                   result.indices.data() + qi * k, result.stats);
        ++result.stats.iterations;
    }
    return result;
}

NeighborResult
blockBallQuery(const data::PointCloud &cloud, const part::BlockTree &tree,
               const BlockSampleResult &centers, float radius,
               std::size_t k, core::ThreadPool *pool)
{
    fc_assert(k > 0, "ball query needs k > 0");
    NeighborResult result;
    result.num_centers = centers.indices.size();
    result.k = k;
    result.indices.resize(result.num_centers * k);
    result.counts.resize(result.num_centers);
    const float r2 = radius * radius;

    const auto &leaves = tree.leaves();
    fc_assert(centers.leaf_offsets.size() == leaves.size() + 1,
              "center table does not match tree (%zu offsets, %zu "
              "leaves)",
              centers.leaf_offsets.size(), leaves.size());

    // Per-leaf work items. Every center owns one fixed k-wide row of
    // indices, so leaves write disjoint slots; per-chunk stats fold
    // in chunk order.
    result.stats += core::parallelReduce(
        pool, 0, leaves.size(), 1, OpStats{},
        [&](std::size_t lb, std::size_t le) {
            OpStats stats;
            for (std::size_t li = lb; li < le; ++li) {
                const part::BlockNode &space =
                    tree.node(tree.searchSpaceNode(leaves[li]));
                for (std::uint32_t ci = centers.leaf_offsets[li];
                     ci < centers.leaf_offsets[li + 1]; ++ci) {
                    const Vec3 &center_pt =
                        cloud[centers.indices[ci]];
                    result.counts[ci] = ballQueryRow(
                        cloud, center_pt, tree.order(), space.begin,
                        space.end, r2, k,
                        result.indices.data() +
                            static_cast<std::size_t>(ci) * k,
                        stats);
                    ++stats.iterations;
                }
            }
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; });
    return result;
}

NeighborResult
blockKnnToSamples(const data::PointCloud &cloud,
                  const part::BlockTree &tree,
                  const BlockSampleResult &sampled, std::size_t k,
                  core::ThreadPool *pool)
{
    fc_assert(k > 0, "knn needs k > 0");
    NeighborResult result;
    result.num_centers = cloud.size();
    result.k = k;
    result.indices.resize(cloud.size() * k);
    result.counts.resize(cloud.size());

    // Sorted copy of sampled DFT positions for range extraction
    // (shared, read-only during the parallel phase).
    std::vector<std::uint32_t> sorted_pos = sampled.positions;
    std::sort(sorted_pos.begin(), sorted_pos.end());
    std::vector<PointIdx> sorted_idx(sorted_pos.size());
    for (std::size_t i = 0; i < sorted_pos.size(); ++i)
        sorted_idx[i] = tree.order()[sorted_pos[i]];

    // Per-leaf work items; every query writes the row of its original
    // point id, so rows come out in original order directly (the
    // sequential version's final permutation pass is no longer
    // needed). The candidate list is per-chunk scratch; per-chunk
    // stats fold in chunk order.
    const auto &leaves = tree.leaves();
    result.stats += core::parallelReduce(
        pool, 0, leaves.size(), 1, OpStats{},
        [&](std::size_t lb, std::size_t le) {
            OpStats stats;
            std::vector<PointIdx> local_candidates;
            for (std::size_t li = lb; li < le; ++li) {
                const part::NodeIdx leaf_idx = leaves[li];
                const part::BlockNode &leaf = tree.node(leaf_idx);
                const part::BlockNode &space =
                    tree.node(tree.searchSpaceNode(leaf_idx));

                // Sampled points whose DFT position falls inside the
                // search space range.
                local_candidates.clear();
                const auto lo =
                    std::lower_bound(sorted_pos.begin(),
                                     sorted_pos.end(), space.begin);
                const auto hi =
                    std::lower_bound(sorted_pos.begin(),
                                     sorted_pos.end(), space.end);
                for (auto it = lo; it != hi; ++it)
                    local_candidates.push_back(
                        sorted_idx[static_cast<std::size_t>(
                            it - sorted_pos.begin())]);
                if (local_candidates.empty() && !sorted_idx.empty()) {
                    // Degenerate foreign tree: fall back to all
                    // samples.
                    local_candidates = sorted_idx;
                }

                for (std::uint32_t pos = leaf.begin; pos < leaf.end;
                     ++pos) {
                    const PointIdx query_idx = tree.order()[pos];
                    result.counts[query_idx] = knnRow(
                        cloud, cloud[query_idx], local_candidates, k,
                        result.indices.data() +
                            static_cast<std::size_t>(query_idx) * k,
                        stats);
                    ++stats.iterations;
                }
            }
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; });
    return result;
}

} // namespace fc::ops
