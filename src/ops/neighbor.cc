#include "ops/neighbor.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace fc::ops {

namespace {

/**
 * Ball query for one center over a view of candidate positions.
 * Appends exactly k entries (padded) to result.indices.
 */
void
ballQueryOne(const data::PointCloud &cloud, const Vec3 &center_pt,
             const std::vector<PointIdx> &order, std::uint32_t begin,
             std::uint32_t end, float radius2, std::size_t k,
             NeighborResult &result)
{
    const std::size_t row_start = result.indices.size();
    std::uint32_t found = 0;
    for (std::uint32_t pos = begin; pos < end && found < k; ++pos) {
        const PointIdx idx = order[pos];
        ++result.stats.points_visited;
        ++result.stats.distance_computations;
        if (distance2(center_pt, cloud[idx]) <= radius2) {
            result.indices.push_back(idx);
            ++found;
        }
    }
    result.counts.push_back(found);
    // PointNet++ padding: repeat the first neighbor; centers with no
    // neighbor at all (possible when the center is not among the
    // candidates) repeat kInvalidPoint.
    const PointIdx pad =
        found > 0 ? result.indices[row_start] : kInvalidPoint;
    for (std::size_t j = found; j < k; ++j)
        result.indices.push_back(pad);
}

/** Insertion-based top-k (k is small: 3..64), ascending distance. */
struct TopK
{
    std::size_t k;
    std::vector<std::pair<float, PointIdx>> heap; // sorted ascending

    explicit TopK(std::size_t kk) : k(kk) { heap.reserve(kk + 1); }

    void
    offer(float dist, PointIdx idx)
    {
        if (heap.size() == k && dist >= heap.back().first)
            return;
        auto it = std::lower_bound(
            heap.begin(), heap.end(), dist,
            [](const auto &a, float d) { return a.first < d; });
        heap.insert(it, {dist, idx});
        if (heap.size() > k)
            heap.pop_back();
    }
};

void
knnOne(const data::PointCloud &cloud, const Vec3 &query,
       const std::vector<PointIdx> &candidates, std::size_t k,
       NeighborResult &result)
{
    TopK top(k);
    for (const PointIdx idx : candidates) {
        ++result.stats.points_visited;
        ++result.stats.distance_computations;
        top.offer(distance2(query, cloud[idx]), idx);
    }
    const std::uint32_t found =
        static_cast<std::uint32_t>(top.heap.size());
    result.counts.push_back(found);
    for (const auto &[dist, idx] : top.heap)
        result.indices.push_back(idx);
    const PointIdx pad = found > 0 ? top.heap[0].second : kInvalidPoint;
    for (std::size_t j = found; j < k; ++j)
        result.indices.push_back(pad);
}

} // namespace

NeighborResult
ballQuery(const data::PointCloud &cloud,
          const std::vector<PointIdx> &centers, float radius,
          std::size_t k)
{
    fc_assert(k > 0, "ball query needs k > 0");
    NeighborResult result;
    result.num_centers = centers.size();
    result.k = k;
    result.indices.reserve(centers.size() * k);
    result.counts.reserve(centers.size());

    static thread_local std::vector<PointIdx> identity;
    if (identity.size() < cloud.size()) {
        const std::size_t old = identity.size();
        identity.resize(cloud.size());
        for (std::size_t i = old; i < cloud.size(); ++i)
            identity[i] = static_cast<PointIdx>(i);
    }

    const float r2 = radius * radius;
    for (const PointIdx c : centers) {
        ballQueryOne(cloud, cloud[c], identity, 0,
                     static_cast<std::uint32_t>(cloud.size()), r2, k,
                     result);
        ++result.stats.iterations;
    }
    return result;
}

NeighborResult
knnSearch(const data::PointCloud &cloud,
          const std::vector<PointIdx> &candidates,
          const std::vector<Vec3> &queries, std::size_t k)
{
    fc_assert(k > 0, "knn needs k > 0");
    NeighborResult result;
    result.num_centers = queries.size();
    result.k = k;
    result.indices.reserve(queries.size() * k);
    result.counts.reserve(queries.size());
    for (const Vec3 &q : queries) {
        knnOne(cloud, q, candidates, k, result);
        ++result.stats.iterations;
    }
    return result;
}

NeighborResult
blockBallQuery(const data::PointCloud &cloud, const part::BlockTree &tree,
               const BlockSampleResult &centers, float radius,
               std::size_t k)
{
    fc_assert(k > 0, "ball query needs k > 0");
    NeighborResult result;
    result.num_centers = centers.indices.size();
    result.k = k;
    result.indices.reserve(result.num_centers * k);
    result.counts.reserve(result.num_centers);
    const float r2 = radius * radius;

    const auto &leaves = tree.leaves();
    fc_assert(centers.leaf_offsets.size() == leaves.size() + 1,
              "center table does not match tree (%zu offsets, %zu "
              "leaves)",
              centers.leaf_offsets.size(), leaves.size());

    for (std::size_t li = 0; li < leaves.size(); ++li) {
        const part::NodeIdx space_idx =
            tree.searchSpaceNode(leaves[li]);
        const part::BlockNode &space = tree.node(space_idx);
        for (std::uint32_t ci = centers.leaf_offsets[li];
             ci < centers.leaf_offsets[li + 1]; ++ci) {
            const Vec3 &center_pt = cloud[centers.indices[ci]];
            ballQueryOne(cloud, center_pt, tree.order(), space.begin,
                         space.end, r2, k, result);
            ++result.stats.iterations;
        }
    }
    return result;
}

NeighborResult
blockKnnToSamples(const data::PointCloud &cloud,
                  const part::BlockTree &tree,
                  const BlockSampleResult &sampled, std::size_t k)
{
    fc_assert(k > 0, "knn needs k > 0");
    NeighborResult result;
    result.num_centers = cloud.size();
    result.k = k;
    result.indices.reserve(cloud.size() * k);
    result.counts.reserve(cloud.size());

    // Sorted copy of sampled DFT positions for range extraction.
    std::vector<std::uint32_t> sorted_pos = sampled.positions;
    std::sort(sorted_pos.begin(), sorted_pos.end());
    std::vector<PointIdx> sorted_idx(sorted_pos.size());
    for (std::size_t i = 0; i < sorted_pos.size(); ++i)
        sorted_idx[i] = tree.order()[sorted_pos[i]];

    const auto &leaves = tree.leaves();
    std::vector<PointIdx> local_candidates;
    for (std::size_t li = 0; li < leaves.size(); ++li) {
        const part::NodeIdx leaf_idx = leaves[li];
        const part::BlockNode &leaf = tree.node(leaf_idx);
        const part::BlockNode &space =
            tree.node(tree.searchSpaceNode(leaf_idx));

        // Sampled points whose DFT position falls inside the search
        // space range.
        local_candidates.clear();
        const auto lo = std::lower_bound(sorted_pos.begin(),
                                         sorted_pos.end(), space.begin);
        const auto hi = std::lower_bound(sorted_pos.begin(),
                                         sorted_pos.end(), space.end);
        for (auto it = lo; it != hi; ++it)
            local_candidates.push_back(
                sorted_idx[static_cast<std::size_t>(
                    it - sorted_pos.begin())]);
        if (local_candidates.empty() && !sorted_idx.empty()) {
            // Degenerate foreign tree: fall back to all samples.
            local_candidates = sorted_idx;
        }

        for (std::uint32_t pos = leaf.begin; pos < leaf.end; ++pos) {
            const PointIdx query_idx = tree.order()[pos];
            knnOne(cloud, cloud[query_idx], local_candidates, k,
                   result);
            ++result.stats.iterations;
        }
    }

    // Rows were appended in DFT order; permute back to original order
    // so row i describes cloud point i.
    std::vector<PointIdx> indices(result.indices.size());
    std::vector<std::uint32_t> counts(result.counts.size());
    for (std::uint32_t pos = 0;
         pos < static_cast<std::uint32_t>(tree.order().size()); ++pos) {
        const PointIdx orig = tree.order()[pos];
        counts[orig] = result.counts[pos];
        for (std::size_t j = 0; j < k; ++j)
            indices[orig * k + j] = result.indices[pos * k + j];
    }
    result.indices = std::move(indices);
    result.counts = std::move(counts);
    return result;
}

} // namespace fc::ops
