#include "ops/neighbor.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "core/parallel.h"
#include "core/simd.h"
#include "core/workspace.h"
#include "ops/topk.h"

namespace fc::ops {

namespace {

/**
 * Distance-screen tile width: small enough for the stack (512 B), big
 * enough that core::simd::distance2Range runs full-width. Using a
 * fixed stack tile (not arena scratch) keeps the per-row kernels
 * allocation-free and reentrant inside pool tasks.
 */
constexpr std::uint32_t kScreenTile = 128;

/**
 * Ball query for one center over a view of candidate positions (an
 * empty order span is the identity view). Writes exactly k entries
 * (padded) into @p row; returns the number of real neighbors found.
 *
 * Distances are screened one kScreenTile at a time through
 * core::simd::distance2Range; the scalar scan over the tile keeps the
 * historical semantics — early stop at k neighbors, stats counted per
 * examined position only.
 */
std::uint32_t
ballQueryRow(const core::simd::SoaView &pts, const Vec3 &center_pt,
             std::span<const PointIdx> order, std::uint32_t begin,
             std::uint32_t end, float radius2, std::size_t k,
             PointIdx *row, OpStats &stats)
{
    const PointIdx *order_ptr = order.empty() ? nullptr : order.data();
    float dist_tile[kScreenTile];
    std::uint32_t found = 0;
    for (std::uint32_t tb = begin; tb < end && found < k;
         tb += kScreenTile) {
        const std::uint32_t te = std::min(end, tb + kScreenTile);
        core::simd::distance2Range(pts, order_ptr, 0, center_pt, tb, te,
                                   dist_tile);
        for (std::uint32_t pos = tb; pos < te && found < k; ++pos) {
            ++stats.points_visited;
            ++stats.distance_computations;
            if (dist_tile[pos - tb] <= radius2)
                row[found++] =
                    order_ptr != nullptr ? order_ptr[pos] : pos;
        }
    }
    // PointNet++ padding: repeat the first neighbor; centers with no
    // neighbor at all (possible when the center is not among the
    // candidates) repeat kInvalidPoint.
    const PointIdx pad = found > 0 ? row[0] : kInvalidPoint;
    for (std::size_t j = found; j < k; ++j)
        row[j] = pad;
    return found;
}

/**
 * KNN for one query over an explicit candidate list. Writes exactly k
 * entries (padded) into @p row; returns the real neighbor count.
 * Distances come from core::simd::distance2Range tiles feeding the
 * inline top-k (ops/topk.h) — no per-row heap use.
 */
std::uint32_t
knnRow(const core::simd::SoaView &pts, const Vec3 &query,
       std::span<const PointIdx> candidates, std::size_t k,
       PointIdx *row, OpStats &stats)
{
    TopK top(k);
    float dist_tile[kScreenTile];
    const std::uint32_t n =
        static_cast<std::uint32_t>(candidates.size());
    for (std::uint32_t tb = 0; tb < n; tb += kScreenTile) {
        const std::uint32_t te = std::min(n, tb + kScreenTile);
        core::simd::distance2Range(pts, candidates.data(), 0, query, tb,
                                   te, dist_tile);
        top.offerBatch(dist_tile, candidates.data() + tb, te - tb);
    }
    stats.points_visited += n;
    stats.distance_computations += n;
    top.emitRow(row);
    return static_cast<std::uint32_t>(top.count());
}

} // namespace

void
ballQuery(const data::PointCloud &cloud,
          const std::vector<PointIdx> &centers, float radius,
          std::size_t k, core::ThreadPool *pool, core::Workspace &ws,
          NeighborResult &out)
{
    fc_assert(k > 0, "ball query needs k > 0");
    out.stats = {};
    out.num_centers = centers.size();
    out.k = k;
    out.indices.resize(centers.size() * k);
    out.counts.resize(centers.size());

    const float r2 = radius * radius;
    // Serial SoA warm-up: the row tasks below share the view
    // read-only.
    const core::simd::SoaView pts = cloud.soa();
    // Center rows are disjoint k-wide slots; per-chunk stats fold in
    // chunk order. The candidate view is the identity (whole cloud).
    out.stats += core::parallelReduce(
        pool, 0, centers.size(),
        core::costGrain(std::max<std::size_t>(1, cloud.size()) * 6),
        OpStats{},
        [&](std::size_t cb, std::size_t ce) {
            OpStats stats;
            for (std::size_t ci = cb; ci < ce; ++ci) {
                out.counts[ci] = ballQueryRow(
                    pts, cloud[centers[ci]], {}, 0,
                    static_cast<std::uint32_t>(cloud.size()), r2, k,
                    out.indices.data() + ci * k, stats);
                ++stats.iterations;
            }
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; },
        &ws.arena());
}

NeighborResult
ballQuery(const data::PointCloud &cloud,
          const std::vector<PointIdx> &centers, float radius,
          std::size_t k, core::ThreadPool *pool)
{
    core::Workspace ws;
    NeighborResult out;
    ballQuery(cloud, centers, radius, k, pool, ws, out);
    return out;
}

void
knnSearch(const data::PointCloud &cloud,
          const std::vector<PointIdx> &candidates,
          std::span<const Vec3> queries, std::size_t k,
          core::Workspace &, NeighborResult &out)
{
    fc_assert(k > 0, "knn needs k > 0");
    out.stats = {};
    out.num_centers = queries.size();
    out.k = k;
    out.indices.resize(queries.size() * k);
    out.counts.resize(queries.size());
    const core::simd::SoaView pts = cloud.soa();
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
        out.counts[qi] = knnRow(pts, queries[qi], candidates, k,
                                out.indices.data() + qi * k, out.stats);
        ++out.stats.iterations;
    }
}

NeighborResult
knnSearch(const data::PointCloud &cloud,
          const std::vector<PointIdx> &candidates,
          std::span<const Vec3> queries, std::size_t k)
{
    core::Workspace ws;
    NeighborResult out;
    knnSearch(cloud, candidates, queries, k, ws, out);
    return out;
}

void
blockBallQuery(const data::PointCloud &cloud, const part::BlockTree &tree,
               const BlockSampleResult &centers, float radius,
               std::size_t k, core::ThreadPool *pool,
               core::Workspace &ws, NeighborResult &out)
{
    fc_assert(k > 0, "ball query needs k > 0");
    out.stats = {};
    out.num_centers = centers.indices.size();
    out.k = k;
    out.indices.resize(out.num_centers * k);
    out.counts.resize(out.num_centers);
    const float r2 = radius * radius;

    const auto &leaves = tree.leaves();
    fc_assert(centers.leaf_offsets.size() == leaves.size() + 1,
              "center table does not match tree (%zu offsets, %zu "
              "leaves)",
              centers.leaf_offsets.size(), leaves.size());

    // Serial SoA warm-up: the row tasks below share the view
    // read-only.
    const core::simd::SoaView pts = cloud.soa();

    // Per-leaf work items. Every center owns one fixed k-wide row of
    // indices, so leaves write disjoint slots; per-chunk stats fold
    // in chunk order.
    out.stats += core::parallelReduce(
        pool, 0, leaves.size(), 1, OpStats{},
        [&](std::size_t lb, std::size_t le) {
            OpStats stats;
            for (std::size_t li = lb; li < le; ++li) {
                const part::BlockNode &space =
                    tree.node(tree.searchSpaceNode(leaves[li]));
                for (std::uint32_t ci = centers.leaf_offsets[li];
                     ci < centers.leaf_offsets[li + 1]; ++ci) {
                    const Vec3 &center_pt =
                        cloud[centers.indices[ci]];
                    out.counts[ci] = ballQueryRow(
                        pts, center_pt, tree.order(), space.begin,
                        space.end, r2, k,
                        out.indices.data() +
                            static_cast<std::size_t>(ci) * k,
                        stats);
                    ++stats.iterations;
                }
            }
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; },
        &ws.arena());
}

NeighborResult
blockBallQuery(const data::PointCloud &cloud, const part::BlockTree &tree,
               const BlockSampleResult &centers, float radius,
               std::size_t k, core::ThreadPool *pool)
{
    core::Workspace ws;
    NeighborResult out;
    blockBallQuery(cloud, tree, centers, radius, k, pool, ws, out);
    return out;
}

void
blockKnnToSamples(const data::PointCloud &cloud,
                  const part::BlockTree &tree,
                  const BlockSampleResult &sampled, std::size_t k,
                  core::ThreadPool *pool, core::Workspace &ws,
                  NeighborResult &out)
{
    fc_assert(k > 0, "knn needs k > 0");
    out.stats = {};
    out.num_centers = cloud.size();
    out.k = k;
    out.indices.resize(cloud.size() * k);
    out.counts.resize(cloud.size());

    // Sorted copy of sampled DFT positions for range extraction
    // (arena scratch, shared read-only during the parallel phase).
    core::Arena &arena = ws.arena();
    std::span<std::uint32_t> sorted_pos =
        arena.allocSpan<std::uint32_t>(sampled.positions.size());
    std::copy(sampled.positions.begin(), sampled.positions.end(),
              sorted_pos.begin());
    std::sort(sorted_pos.begin(), sorted_pos.end());
    std::span<PointIdx> sorted_idx =
        arena.allocSpan<PointIdx>(sorted_pos.size());
    for (std::size_t i = 0; i < sorted_pos.size(); ++i)
        sorted_idx[i] = tree.order()[sorted_pos[i]];

    // Serial SoA warm-up: the row tasks below share the view
    // read-only.
    const core::simd::SoaView pts = cloud.soa();

    // Per-leaf work items; every query writes the row of its original
    // point id, so rows come out in original order directly. Each
    // leaf's candidate list is a contiguous subrange of sorted_idx —
    // a span, not a copy — so the per-chunk loop never allocates.
    const auto &leaves = tree.leaves();
    out.stats += core::parallelReduce(
        pool, 0, leaves.size(), 1, OpStats{},
        [&](std::size_t lb, std::size_t le) {
            OpStats stats;
            for (std::size_t li = lb; li < le; ++li) {
                const part::NodeIdx leaf_idx = leaves[li];
                const part::BlockNode &leaf = tree.node(leaf_idx);
                const part::BlockNode &space =
                    tree.node(tree.searchSpaceNode(leaf_idx));

                // Sampled points whose DFT position falls inside the
                // search space range.
                const auto lo =
                    std::lower_bound(sorted_pos.begin(),
                                     sorted_pos.end(), space.begin);
                const auto hi =
                    std::lower_bound(sorted_pos.begin(),
                                     sorted_pos.end(), space.end);
                std::span<const PointIdx> candidates = sorted_idx.subspan(
                    static_cast<std::size_t>(lo - sorted_pos.begin()),
                    static_cast<std::size_t>(hi - lo));
                if (candidates.empty() && !sorted_idx.empty()) {
                    // Degenerate foreign tree: fall back to all
                    // samples.
                    candidates = sorted_idx;
                }

                for (std::uint32_t pos = leaf.begin; pos < leaf.end;
                     ++pos) {
                    const PointIdx query_idx = tree.order()[pos];
                    out.counts[query_idx] = knnRow(
                        pts, cloud[query_idx], candidates, k,
                        out.indices.data() +
                            static_cast<std::size_t>(query_idx) * k,
                        stats);
                    ++stats.iterations;
                }
            }
            return stats;
        },
        [](OpStats &acc, OpStats &&chunk) { acc += chunk; },
        &arena);
}

NeighborResult
blockKnnToSamples(const data::PointCloud &cloud,
                  const part::BlockTree &tree,
                  const BlockSampleResult &sampled, std::size_t k,
                  core::ThreadPool *pool)
{
    core::Workspace ws;
    NeighborResult out;
    blockKnnToSamples(cloud, tree, sampled, k, pool, ws, out);
    return out;
}

} // namespace fc::ops
