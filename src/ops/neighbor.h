/**
 * @file
 * Neighbor searching: Ball Query (grouping) and K-Nearest-Neighbors
 * (interpolation), in global and block-wise forms (paper §II-B and
 * §IV-B, "Block-Wise Neighbor Searching").
 *
 * Ball Query selects up to K points within radius R of a center (the
 * first K in scan order, PointNet++ semantics; empty slots are padded
 * with the first neighbor). KNN selects the K closest points with no
 * radius bound.
 *
 * Block-wise variants restrict the candidate set of a center in leaf L
 * to the range of searchSpaceNode(L) — the leaf itself at depth <= 1,
 * otherwise its immediate parent (paper Fig. 7(a)).
 *
 * The block-wise variants dispatch per-leaf work items over an
 * optional core::ThreadPool. Every center owns a fixed k-wide output
 * row, so parallel execution writes disjoint slots and the result is
 * bit-identical to the sequential path at any thread count.
 */

#ifndef FC_OPS_NEIGHBOR_H
#define FC_OPS_NEIGHBOR_H

#include <cstdint>
#include <span>
#include <vector>

#include "dataset/point_cloud.h"
#include "ops/fps.h"
#include "ops/op_stats.h"
#include "partition/block_tree.h"

namespace fc::core {
class ThreadPool;
class Workspace;
}

namespace fc::ops {

/** Dense [num_centers x k] neighbor table. */
struct NeighborResult
{
    std::size_t num_centers = 0;
    std::size_t k = 0;

    /** Row-major neighbor indices (original cloud ids), padded. */
    std::vector<PointIdx> indices;

    /** Number of real (un-padded) neighbors per center. */
    std::vector<std::uint32_t> counts;

    OpStats stats;

    PointIdx
    neighbor(std::size_t center, std::size_t j) const
    {
        return indices[center * k + j];
    }
};

/**
 * Global ball query: candidates are the whole cloud.
 *
 * Center rows are independent and dispatch in chunks over @p pool;
 * every center owns a fixed k-wide output row, so the table is
 * bit-identical to the sequential path at any thread count.
 *
 * @param cloud   candidate points
 * @param centers center indices into @p cloud
 * @param radius  search radius R
 * @param k       maximum neighbors per center
 * @param pool    optional thread pool; null = sequential
 */
NeighborResult ballQuery(const data::PointCloud &cloud,
                         const std::vector<PointIdx> &centers,
                         float radius, std::size_t k,
                         core::ThreadPool *pool = nullptr);

/** Workspace overload: writes into @p out reusing its capacity (the
 *  allocation-free steady-state path; see core/workspace.h). */
void ballQuery(const data::PointCloud &cloud,
               const std::vector<PointIdx> &centers, float radius,
               std::size_t k, core::ThreadPool *pool,
               core::Workspace &ws, NeighborResult &out);

/**
 * Global KNN: the k nearest candidates for each query coordinate.
 *
 * @param cloud      candidate points
 * @param candidates candidate indices into @p cloud
 * @param queries    query coordinates
 * @param k          neighbor count
 */
NeighborResult knnSearch(const data::PointCloud &cloud,
                         const std::vector<PointIdx> &candidates,
                         std::span<const Vec3> queries, std::size_t k);

/** Workspace overload of knnSearch (capacity-reusing @p out). */
void knnSearch(const data::PointCloud &cloud,
               const std::vector<PointIdx> &candidates,
               std::span<const Vec3> queries, std::size_t k,
               core::Workspace &ws, NeighborResult &out);

/**
 * Block-wise ball query. Centers come from block-wise sampling; the
 * candidate range of each center is its leaf's search-space node.
 */
NeighborResult blockBallQuery(const data::PointCloud &cloud,
                              const part::BlockTree &tree,
                              const BlockSampleResult &centers,
                              float radius, std::size_t k,
                              core::ThreadPool *pool = nullptr);

/** Workspace overload of blockBallQuery (capacity-reusing @p out). */
void blockBallQuery(const data::PointCloud &cloud,
                    const part::BlockTree &tree,
                    const BlockSampleResult &centers, float radius,
                    std::size_t k, core::ThreadPool *pool,
                    core::Workspace &ws, NeighborResult &out);

/**
 * Block-wise KNN used by interpolation: for every point of every leaf
 * (the queries), find the k nearest *sampled* points within the leaf's
 * search space. @p sampled must hold DFT positions sorted per leaf
 * (as produced by blockFarthestPointSample).
 *
 * Falls back to the nearest sampled point overall when a search space
 * contains no samples (cannot happen with >=1 sample per leaf, but
 * kept for safety with foreign trees).
 */
NeighborResult blockKnnToSamples(const data::PointCloud &cloud,
                                 const part::BlockTree &tree,
                                 const BlockSampleResult &sampled,
                                 std::size_t k,
                                 core::ThreadPool *pool = nullptr);

/** Workspace overload of blockKnnToSamples: sorted-candidate scratch
 *  comes from @p ws's arena, @p out reuses capacity. */
void blockKnnToSamples(const data::PointCloud &cloud,
                       const part::BlockTree &tree,
                       const BlockSampleResult &sampled, std::size_t k,
                       core::ThreadPool *pool, core::Workspace &ws,
                       NeighborResult &out);

} // namespace fc::ops

#endif // FC_OPS_NEIGHBOR_H
