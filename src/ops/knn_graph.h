/**
 * @file
 * Block-wise k-NN graph construction — the paper's "Potential
 * Adaptations" extension (§VI-D): dynamic-graph networks (DGCNN)
 * rebuild a k-NN graph over intermediate features every layer, an
 * all-to-all O(n^2) operation with the same global-search pathology
 * as the PNN point operations. Fractal's spatial locality bounds each
 * vertex's neighbor search to its block's search space.
 */

#ifndef FC_OPS_KNN_GRAPH_H
#define FC_OPS_KNN_GRAPH_H

#include <cstdint>
#include <vector>

#include "dataset/point_cloud.h"
#include "ops/op_stats.h"
#include "partition/block_tree.h"

namespace fc::core {
class ThreadPool;
class Workspace;
}

namespace fc::ops {

/** Directed k-NN graph: edge (i -> neighbors of i). */
struct KnnGraph
{
    std::size_t num_vertices = 0;
    std::size_t k = 0;

    /** Row-major [num_vertices x k] neighbor ids (self excluded). */
    std::vector<PointIdx> edges;

    OpStats stats;

    PointIdx
    neighbor(std::size_t vertex, std::size_t j) const
    {
        return edges[vertex * k + j];
    }
};

/**
 * Exact global k-NN graph (self-edges excluded); the DGCNN baseline.
 * O(n^2) distance evaluations. Vertex rows are independent and
 * dispatch in chunks over @p pool.
 */
KnnGraph buildKnnGraph(const data::PointCloud &cloud, std::size_t k,
                       core::ThreadPool *pool = nullptr);

/** Workspace overload: writes into @p out reusing its capacity (the
 *  allocation-free steady-state path; see core/workspace.h). */
void buildKnnGraph(const data::PointCloud &cloud, std::size_t k,
                   core::ThreadPool *pool, core::Workspace &ws,
                   KnnGraph &out);

/**
 * Block-wise k-NN graph: every vertex searches only its leaf's
 * search-space node (parent block). O(n * search_space) work. Edge
 * recall against the exact graph is high because Fractal blocks align
 * with the geometry that k-NN locality follows. Per-leaf work items
 * dispatch over @p pool; each vertex owns its edge row, so the graph
 * is bit-identical to sequential construction.
 */
KnnGraph buildBlockKnnGraph(const data::PointCloud &cloud,
                            const part::BlockTree &tree, std::size_t k,
                            core::ThreadPool *pool = nullptr);

/** Workspace overload of buildBlockKnnGraph (capacity-reusing
 *  @p out). */
void buildBlockKnnGraph(const data::PointCloud &cloud,
                        const part::BlockTree &tree, std::size_t k,
                        core::ThreadPool *pool, core::Workspace &ws,
                        KnnGraph &out);

/** Fraction of exact-graph edges present in the test graph. */
double graphEdgeRecall(const KnnGraph &exact, const KnnGraph &test);

} // namespace fc::ops

#endif // FC_OPS_KNN_GRAPH_H
