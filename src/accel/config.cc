#include "accel/config.h"

namespace fc::accel {

HardwareConfig
mesorasiConfig()
{
    HardwareConfig c;
    c.name = "Mesorasi";
    c.sram_kb = 1624.0;
    c.area_mm2 = 4.59;
    return c;
}

HardwareConfig
pointAccConfig()
{
    HardwareConfig c;
    c.name = "PointAcc";
    c.sram_kb = 274.0;
    c.area_mm2 = 1.91;
    return c;
}

HardwareConfig
crescentConfig()
{
    HardwareConfig c;
    c.name = "Crescent";
    c.sram_kb = 1622.8;
    c.area_mm2 = 4.75;
    return c;
}

HardwareConfig
fractalCloudConfig()
{
    HardwareConfig c;
    c.name = "FractalCloud";
    c.sram_kb = 274.0;
    c.area_mm2 = 1.5;
    return c;
}

std::vector<ModuleBudget>
fractalCloudFloorplan()
{
    // 28 nm unit-cost model; area sums to the 1.5 mm^2 core of
    // Table II, power averages 0.58 W under PointNeXt segmentation.
    return {
        {"PE array (16x16, fp16)", 0.42, 182.0},
        {"RSPU cluster (16 lanes)", 0.26, 118.0},
        {"Fractal engine", 0.05, 21.0},
        {"Gather units", 0.08, 34.0},
        {"Pooling unit", 0.03, 12.0},
        {"Global buffer (274 KB)", 0.48, 146.0},
        {"NoC + DMA", 0.10, 38.0},
        {"RISC-V core + config", 0.08, 29.0},
    };
}

} // namespace fc::accel
