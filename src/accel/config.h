/**
 * @file
 * Accelerator hardware configurations (paper Table II) and the 28 nm
 * area/power breakdown model behind Fig. 12.
 */

#ifndef FC_ACCEL_CONFIG_H
#define FC_ACCEL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace fc::accel {

/** Table II row. */
struct HardwareConfig
{
    std::string name;

    /** PE array geometry (16x16 for every design). */
    std::uint32_t pe_rows = 16;
    std::uint32_t pe_cols = 16;

    /** Point-operation lanes (distance units / sorter lanes). */
    std::uint32_t point_lanes = 16;

    /** Global buffer capacity in KB. */
    double sram_kb = 274.0;

    /** SRAM banks. */
    std::uint32_t sram_banks = 16;

    /** Core frequency in GHz. */
    double freq_ghz = 1.0;

    /** Post-layout core area in mm^2 (Table II). */
    double area_mm2 = 1.5;

    /** DRAM peak bandwidth in GB/s (DDR4-2133). */
    double dram_gbps = 17.0;

    /** Technology node. */
    std::uint32_t technology_nm = 28;

    /** Peak performance in GOPS (2 ops/MAC x PEs x freq). */
    double
    peakGops() const
    {
        return 2.0 * pe_rows * pe_cols * freq_ghz;
    }

    std::uint64_t
    sramBytes() const
    {
        return static_cast<std::uint64_t>(sram_kb * 1024.0);
    }
};

/** Table II entries. */
HardwareConfig mesorasiConfig();
HardwareConfig pointAccConfig();
HardwareConfig crescentConfig();
HardwareConfig fractalCloudConfig();

/** One module of the Fig. 12 area/power breakdown. */
struct ModuleBudget
{
    std::string module;
    double area_mm2 = 0.0;
    double power_mw = 0.0;
};

/**
 * FractalCloud's on-chip budget (chip layout of Fig. 12): PE array,
 * RSPUs, fractal engine, gather/pooling units, global buffer, NoC/DMA,
 * RISC-V. Derived from per-module unit costs at 28 nm; totals match
 * Table II (1.5 mm^2, 0.58 W average).
 */
std::vector<ModuleBudget> fractalCloudFloorplan();

} // namespace fc::accel

#endif // FC_ACCEL_CONFIG_H
