#include "accel/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fc::accel {

std::uint64_t
NetworkShape::totalMacs(bool delayed_aggregation) const
{
    std::uint64_t total = 0;
    for (const SaShape &s : sa) {
        const std::uint64_t rows =
            delayed_aggregation ? s.n_in : s.n_out * s.k;
        for (const auto &[in, out] : s.gemm)
            total += rows * in * out;
    }
    for (const FpShape &s : fp) {
        for (const auto &[in, out] : s.gemm)
            total += s.n_fine * in * out;
    }
    for (const auto &[in, out] : head)
        total += head_rows * in * out;
    return total;
}

NetworkShape
buildNetworkShape(const nn::ModelConfig &model, std::uint64_t n_points)
{
    fc_assert(n_points > 0, "empty workload");
    NetworkShape shape;
    shape.model = model.name;
    shape.task = model.task;
    shape.n_points = n_points;

    std::uint64_t n = n_points;
    std::uint64_t channels = 3 + model.input_channels;
    std::vector<std::uint64_t> level_n{n};
    std::vector<std::uint64_t> level_c{channels};

    for (const nn::SaStageConfig &stage : model.sa) {
        SaShape s;
        s.n_in = n;
        s.n_out = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   std::llround(stage.sample_rate *
                                static_cast<double>(n))));
        s.k = stage.k;
        s.radius = stage.radius;
        s.c_in = channels;
        std::uint64_t cur = 3 + channels; // rel-coords + features
        for (const std::size_t width : stage.mlp) {
            s.gemm.emplace_back(cur, width);
            cur = width;
        }
        s.c_out = cur;
        shape.sa.push_back(std::move(s));
        n = shape.sa.back().n_out;
        channels = cur;
        level_n.push_back(n);
        level_c.push_back(channels);
    }

    if (model.isSegmentation()) {
        std::uint64_t c_coarse = channels;
        for (std::size_t i = 0; i < model.fp.size(); ++i) {
            const std::size_t level = model.sa.size() - i;
            FpShape f;
            f.n_coarse = level_n[level];
            f.n_fine = level_n[level - 1];
            f.c_in = c_coarse + level_c[level - 1];
            std::uint64_t cur = f.c_in;
            for (const std::size_t width : model.fp[i].mlp) {
                f.gemm.emplace_back(cur, width);
                cur = width;
            }
            f.c_out = cur;
            shape.fp.push_back(std::move(f));
            c_coarse = cur;
        }
        channels = c_coarse;
        shape.head_rows = n_points;
    } else {
        shape.head_rows = 1;
    }

    std::uint64_t cur = channels;
    for (const std::size_t width : model.head) {
        shape.head.emplace_back(cur, width);
        cur = width;
    }
    return shape;
}

BlockSummary
BlockSummary::scaled(double rate) const
{
    fc_assert(rate > 0.0 && rate <= 1.0, "bad scale rate %f", rate);
    BlockSummary out;
    out.max_depth = max_depth;
    out.stats = stats;
    out.leaf_sizes.reserve(leaf_sizes.size());
    out.space_sizes.reserve(space_sizes.size());
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < leaf_sizes.size(); ++i) {
        const std::uint32_t ls =
            leaf_sizes[i] == 0
                ? 0u
                : std::max<std::uint32_t>(
                      1, static_cast<std::uint32_t>(std::llround(
                             rate * static_cast<double>(leaf_sizes[i]))));
        const std::uint32_t ss = std::max<std::uint32_t>(
            ls, static_cast<std::uint32_t>(std::llround(
                    rate * static_cast<double>(space_sizes[i]))));
        out.leaf_sizes.push_back(ls);
        out.space_sizes.push_back(ss);
        total += ls;
    }
    out.total_points = total;
    return out;
}

BlockSummary
summarizeBlocks(const part::PartitionResult &result)
{
    BlockSummary summary;
    const part::BlockTree &tree = result.tree;
    summary.leaf_sizes.reserve(tree.leaves().size());
    summary.space_sizes.reserve(tree.leaves().size());
    for (const part::NodeIdx leaf : tree.leaves()) {
        summary.leaf_sizes.push_back(tree.node(leaf).size());
        summary.space_sizes.push_back(
            tree.node(tree.searchSpaceNode(leaf)).size());
    }
    summary.max_depth = tree.maxDepth();
    summary.stats = result.stats;
    summary.total_points = tree.numPoints();
    return summary;
}

} // namespace fc::accel
