#include "accel/accelerator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "sim/riscv.h"
#include "sim/schedule.h"

namespace fc::accel {

namespace {

using sim::Cycles;

/** Fraction of a working set that cannot stay resident on-chip. */
double
spillFraction(double working_set_bytes, double budget_bytes)
{
    if (working_set_bytes <= budget_bytes)
        return 0.0;
    return 1.0 - budget_bytes / working_set_bytes;
}

/** Coordinate record size: xyz fp16 padded to 8 B, plus 2 B state. */
constexpr double kCoordBytes = 10.0;

/**
 * The per-run simulation engine. Owns the memory models and the
 * report being built; each phase method charges compute and memory
 * and takes the max (pipelined double-buffering), as the RTL does.
 */
class Engine
{
  public:
    Engine(const HardwareConfig &hw, const Policy &policy,
           const NetworkShape &shape, const BlockSummary &blocks)
        : hw_(hw), policy_(policy), shape_(shape), blocks_(blocks),
          sram_({hw.sramBytes(), hw.sram_banks, 16}),
          dram_({hw.dram_gbps, 0.85, 64, 0.25, 45, 4, hw.freq_ghz})
    {
        report_.accelerator = hw.name;
        report_.model = shape.model;
        report_.num_points = shape.n_points;
        report_.freq_ghz = hw.freq_ghz;
    }

    RunReport
    run()
    {
        const bool partitioned =
            policy_.partition_method != part::Method::None;

        if (policy_.simulate_riscv)
            riscvConfigPhase();
        if (partitioned)
            partitionPhase();

        double cumulative_rate = 1.0;
        for (const SaShape &s : shape_.sa) {
            const BlockSummary stage_blocks =
                partitioned ? blocks_.scaled(cumulative_rate)
                            : BlockSummary{};
            const double stage_rate =
                static_cast<double>(s.n_out) /
                static_cast<double>(s.n_in);
            stageIoPhase(s.n_in, s.c_in);
            samplePhase(s, stage_blocks, stage_rate);
            groupPhase(s, stage_blocks, stage_rate);
            gatherPhase(s, stage_blocks);
            mlpPhase(policy_.delayed_aggregation ? s.n_in
                                                 : s.n_out * s.k,
                     s.gemm);
            poolPhase(s.n_out, s.k, s.c_out);
            report_.addCycles(Phase::Other, policy_.stage_overhead);
            cumulative_rate *= stage_rate;
        }

        for (const FpShape &f : shape_.fp) {
            cumulative_rate = static_cast<double>(f.n_fine) /
                              static_cast<double>(shape_.n_points);
            const BlockSummary fine_blocks =
                partitioned ? blocks_.scaled(cumulative_rate)
                            : BlockSummary{};
            stageIoPhase(f.n_fine, f.c_in);
            interpolatePhase(f, fine_blocks);
            mlpPhase(f.n_fine, f.gemm);
            report_.addCycles(Phase::Other, policy_.stage_overhead);
        }

        if (!shape_.head.empty())
            mlpPhase(shape_.head_rows, shape_.head);

        energy_.addStatic(report_.totalCycles(), hw_.freq_ghz);
        report_.compute_pj = energy_.computePj();
        report_.sram_pj = energy_.sramPj();
        report_.dram_pj = energy_.dramPj();
        report_.static_pj = energy_.staticPj();
        report_.dram_bytes = dram_.totalBytes();
        report_.sram_bytes = sram_.totalBytes();
        return report_;
    }

  private:
    /** Total distance throughput, evaluations per cycle. */
    double
    laneRateTotal() const
    {
        return policy_.point_lane_rate * hw_.point_lanes;
    }

    /** SRAM byte budget usable by one operation's working set. */
    double
    budget() const
    {
        return 0.8 * static_cast<double>(hw_.sramBytes());
    }

    void
    chargeSram(Phase phase, double bytes, sim::AccessPattern pattern)
    {
        sram_.record(static_cast<std::uint64_t>(bytes), pattern);
        energy_.addSramBytes(static_cast<std::uint64_t>(bytes),
                             hw_.sramBytes());
        report_.phase_sram_bytes[phase] +=
            static_cast<std::uint64_t>(bytes);
    }

    void
    chargeDramStream(double bytes)
    {
        dram_.recordStream(static_cast<std::uint64_t>(bytes));
        energy_.addDramBytes(static_cast<std::uint64_t>(bytes));
    }

    void
    chargeDramRandom(double accesses)
    {
        const auto n = static_cast<std::uint64_t>(accesses);
        dram_.recordRandom(n);
        energy_.addDramBytes(dram_.randomBytesMoved(n));
        energy_.addDramActivations(static_cast<std::uint64_t>(
            accesses * (1.0 - dram_.config().random_row_hit)));
    }

    /**
     * The RISC-V core writes each unit's configuration registers
     * before execution; its retired cycles land in Phase::Other.
     */
    void
    riscvConfigPhase()
    {
        using namespace sim::rv;
        std::vector<Insn> program;
        const std::uint32_t mmio = 0x4000'0000u;
        auto emit_li = [&](int rd, std::uint32_t value) {
            for (const Insn i : li(rd, value))
                program.push_back(i);
        };
        emit_li(1, mmio);
        std::uint32_t offset = 0;
        for (const SaShape &s : shape_.sa) {
            // Unit CSRs: n_in, n_out, k, radius(fx16), c_in, c_out.
            const std::uint32_t values[6] = {
                static_cast<std::uint32_t>(s.n_in),
                static_cast<std::uint32_t>(s.n_out),
                static_cast<std::uint32_t>(s.k),
                static_cast<std::uint32_t>(s.radius * 65536.0f),
                static_cast<std::uint32_t>(s.c_in),
                static_cast<std::uint32_t>(s.c_out)};
            for (const std::uint32_t v : values) {
                emit_li(2, v);
                program.push_back(sw(2, 1, static_cast<std::int32_t>(
                                               offset & 0x7ff)));
                offset += 4;
            }
        }
        program.push_back(ecall());

        sim::RiscvCore core;
        core.loadProgram(program);
        core.run();
        fc_assert(core.halted(), "config program did not halt");
        report_.addCycles(Phase::Other, core.cycleEstimate());
    }

    void
    partitionPhase()
    {
        const double n = static_cast<double>(shape_.n_points);
        const part::PartitionStats &ps = blocks_.stats;
        Cycles compute = 0;
        double sram_bytes = 0.0;
        double dram_bytes = 0.0;
        const double ws = n * kCoordBytes;
        const double spill = spillFraction(ws, budget());

        switch (policy_.partition_method) {
          case part::Method::Fractal: {
            // Level-parallel pipelined traversal: midpoint and
            // partition units overlap (Fig. 9(c)); one pass per level.
            compute = static_cast<Cycles>(
                ps.traversal_passes *
                std::ceil(n / policy_.traverse_rate));
            energy_.addCompares(ps.elements_traversed * 2);
            sram_bytes = static_cast<double>(ps.elements_traversed) *
                         2.0 * 8.0;
            dram_bytes = ps.traversal_passes * ws * spill;
            break;
          }
          case part::Method::Uniform:
          case part::Method::Octree: {
            const double control =
                policy_.partition_method == part::Method::Octree ? 1.5
                                                                 : 1.0;
            compute = static_cast<Cycles>(
                control * ps.traversal_passes *
                std::ceil(n / policy_.traverse_rate));
            energy_.addCompares(ps.elements_traversed);
            sram_bytes =
                static_cast<double>(ps.elements_traversed) * 2.0 * 8.0;
            dram_bytes = ps.traversal_passes * ws * spill;
            break;
          }
          case part::Method::KdTree: {
            // Exclusive serial sorts on a merge network; every sort
            // has a drain/fill penalty and cannot overlap the next.
            compute = static_cast<Cycles>(
                static_cast<double>(ps.sort_compares) /
                    policy_.sorter_rate +
                static_cast<double>(ps.num_sorts) * 64.0);
            energy_.addCompares(ps.sort_compares);
            sram_bytes = static_cast<double>(ps.sort_compares) * 8.0;
            // Out-of-core merge passes re-stream spilled data.
            const double passes =
                std::max(1.0, std::log2(std::max(
                                  2.0, n / policy_.partition_threshold)));
            dram_bytes = passes * ws * spill;
            break;
          }
          case part::Method::None:
            return;
        }

        chargeSram(Phase::Partition, sram_bytes,
                   sim::AccessPattern::Streamed);
        chargeDramStream(dram_bytes);
        const Cycles mem = std::max(
            sram_.cycles(static_cast<std::uint64_t>(sram_bytes),
                         sim::AccessPattern::Streamed),
            dram_.streamCycles(static_cast<std::uint64_t>(dram_bytes)));
        report_.addCycles(Phase::Partition, std::max(compute, mem));
    }

    /** Per-stage input/output movement when the stage spills. */
    void
    stageIoPhase(std::uint64_t n, std::uint64_t channels)
    {
        const double ws =
            static_cast<double>(n) *
            (kCoordBytes + 2.0 * static_cast<double>(channels));
        const double spill = spillFraction(ws, budget());
        if (spill <= 0.0)
            return;
        const double bytes = ws * spill;
        chargeDramStream(bytes);
        report_.addCycles(
            Phase::Other,
            dram_.streamCycles(static_cast<std::uint64_t>(bytes)));
    }

    void
    samplePhase(const SaShape &s, const BlockSummary &blocks,
                double stage_rate)
    {
        const bool blocked =
            policy_.block_sampling && !blocks.leaf_sizes.empty();
        if (!blocked) {
            // Global FPS: m serial iterations, each scanning the
            // unsampled candidates across all lanes.
            const double n = static_cast<double>(s.n_in);
            const double m = static_cast<double>(s.n_out);
            const double avg_cand =
                policy_.window_check ? n - m * 0.5 : n;
            const double dist = m * avg_cand;
            const Cycles compute = static_cast<Cycles>(
                dist / laneRateTotal() + m * 8.0 /* argmax tree */);
            energy_.addDistances(static_cast<std::uint64_t>(dist));

            const double ws = n * kCoordBytes;
            const double spill = spillFraction(ws, budget());
            const double touched = dist * kCoordBytes;
            // The sequential dependence of FPS forbids candidate
            // tiling; the spilled fraction re-streams from DRAM each
            // iteration, discounted by row-buffer/prefetch locality.
            const double dram_b = touched * spill * 0.45;
            const double sram_b = touched - dram_b;
            chargeSram(Phase::Sample, sram_b,
                       sim::AccessPattern::Streamed);
            chargeDramStream(dram_b);
            const Cycles mem = std::max(
                sram_.cycles(static_cast<std::uint64_t>(sram_b),
                             sim::AccessPattern::Streamed),
                dram_.streamCycles(
                    static_cast<std::uint64_t>(dram_b)));
            report_.addCycles(Phase::Sample, std::max(compute, mem));
            return;
        }

        // Block-wise FPS: independent FPS per leaf at the fixed rate.
        std::vector<Cycles> tasks;
        tasks.reserve(blocks.leaf_sizes.size());
        double total_dist = 0.0;
        for (const std::uint32_t size : blocks.leaf_sizes) {
            if (size == 0)
                continue;
            const double sb = size;
            const double qb = std::max(
                1.0, std::round(stage_rate * sb));
            const double dist =
                policy_.window_check ? qb * sb - 0.5 * qb * qb
                                     : qb * sb;
            total_dist += dist;
            tasks.push_back(static_cast<Cycles>(
                dist / policy_.point_lane_rate + qb * 4.0));
        }
        energy_.addDistances(static_cast<std::uint64_t>(total_dist));
        const Cycles compute =
            policy_.block_parallel
                ? sim::lptMakespan(tasks, hw_.point_lanes)
                : static_cast<Cycles>(
                      static_cast<double>(sim::serialLatency(tasks)) /
                      hw_.point_lanes);
        const double sram_b = total_dist * kCoordBytes;
        chargeSram(Phase::Sample, sram_b,
                   sim::AccessPattern::Streamed);
        // Blocks always fit on-chip; no DRAM during sampling.
        report_.addCycles(Phase::Sample, compute);
    }

    void
    groupPhase(const SaShape &s, const BlockSummary &blocks,
               double stage_rate)
    {
        const bool blocked =
            policy_.block_grouping && !blocks.leaf_sizes.empty();
        if (!blocked) {
            const double n = static_cast<double>(s.n_in);
            const double m = static_cast<double>(s.n_out);
            const double dist = m * n;
            const Cycles compute =
                static_cast<Cycles>(dist / laneRateTotal());
            energy_.addDistances(static_cast<std::uint64_t>(dist));

            // Centers tile on-chip; candidates stream once per tile.
            const double ws = n * kCoordBytes;
            const double resident_centers =
                std::max(1.0, budget() * 0.5 / 16.0);
            const double passes = std::ceil(m / resident_centers);
            const double spill = spillFraction(ws, budget() * 0.5);
            const double dram_b = passes * ws * spill;
            const double sram_b = dist * kCoordBytes - dram_b;
            chargeSram(Phase::Group, std::max(0.0, sram_b),
                       sim::AccessPattern::Streamed);
            chargeDramStream(dram_b);
            const Cycles mem = dram_.streamCycles(
                static_cast<std::uint64_t>(dram_b));
            report_.addCycles(Phase::Group, std::max(compute, mem));
            return;
        }

        // Block-wise ball query with parent search space.
        std::vector<Cycles> tasks;
        tasks.reserve(blocks.leaf_sizes.size());
        double total_dist = 0.0;
        double sram_b = 0.0;
        for (std::size_t b = 0; b < blocks.leaf_sizes.size(); ++b) {
            const double sb = blocks.leaf_sizes[b];
            if (sb <= 0.0)
                continue;
            const double cb = std::max(1.0, std::round(stage_rate * sb));
            const double space = std::max<double>(
                blocks.space_sizes[b], blocks.leaf_sizes[b]);
            const double dist = cb * space;
            total_dist += dist;
            tasks.push_back(static_cast<Cycles>(
                dist / policy_.point_lane_rate));
            // Coordinate reuse: the search space is fetched once per
            // block and shared across its centers (and across sibling
            // leaves via the DFT order).
            sram_b += policy_.coord_reuse
                          ? (space + cb) * kCoordBytes
                          : dist * kCoordBytes;
        }
        energy_.addDistances(static_cast<std::uint64_t>(total_dist));
        const Cycles compute =
            policy_.block_parallel
                ? sim::lptMakespan(tasks, hw_.point_lanes)
                : static_cast<Cycles>(
                      static_cast<double>(sim::serialLatency(tasks)) /
                      hw_.point_lanes);
        chargeSram(Phase::Group, sram_b,
                   sim::AccessPattern::Streamed);
        const Cycles mem = sram_.cycles(
            static_cast<std::uint64_t>(sram_b),
            sim::AccessPattern::Streamed);
        report_.addCycles(Phase::Group, std::max(compute, mem));
    }

    void
    gatherPhase(const SaShape &s, const BlockSummary &blocks)
    {
        // Delayed aggregation gathers post-MLP features (wider).
        const double c_g = static_cast<double>(
            policy_.delayed_aggregation ? s.c_out : s.c_in);
        const double accesses =
            static_cast<double>(s.n_out) * static_cast<double>(s.k);
        const double useful = c_g * 2.0;
        const double table_bytes =
            static_cast<double>(s.n_in) * c_g * 2.0;

        const bool blocked =
            policy_.block_gathering && !blocks.leaf_sizes.empty();
        if (!blocked) {
            const double spill = spillFraction(table_bytes, budget());
            const double hit_bytes = accesses * useful * (1.0 - spill);
            const double miss_accesses = accesses * spill;
            chargeSram(Phase::Gather, hit_bytes,
                       sim::AccessPattern::Random);
            chargeDramRandom(miss_accesses);
            const Cycles sram_cyc = sram_.cycles(
                static_cast<std::uint64_t>(hit_bytes),
                sim::AccessPattern::Random, hw_.point_lanes);
            const Cycles dram_cyc = dram_.randomCycles(
                static_cast<std::uint64_t>(miss_accesses),
                static_cast<std::uint32_t>(useful));
            report_.addCycles(Phase::Gather, sram_cyc + dram_cyc);
            return;
        }

        // Block-wise gather: stream each leaf's search space once;
        // DFT sibling reuse halves parent refetches.
        double stream_bytes = 0.0;
        for (std::size_t b = 0; b < blocks.space_sizes.size(); ++b) {
            stream_bytes += static_cast<double>(blocks.space_sizes[b]) *
                            useful * (policy_.coord_reuse ? 0.6 : 1.0);
        }
        stream_bytes += accesses * useful; // the reads themselves
        chargeSram(Phase::Gather, stream_bytes,
                   sim::AccessPattern::Streamed);
        double dram_b = 0.0;
        if (table_bytes > budget()) {
            dram_b = table_bytes; // one streamed pass over features
            chargeDramStream(dram_b);
        }
        const Cycles mem = std::max(
            sram_.cycles(static_cast<std::uint64_t>(stream_bytes),
                         sim::AccessPattern::Streamed),
            dram_.streamCycles(static_cast<std::uint64_t>(dram_b)));
        report_.addCycles(Phase::Gather, mem);
    }

    void
    interpolatePhase(const FpShape &f, const BlockSummary &blocks)
    {
        const double blend_macs = static_cast<double>(f.n_fine) *
                                  static_cast<double>(f.k) *
                                  static_cast<double>(f.c_in);
        const bool blocked =
            policy_.block_interpolation && !blocks.leaf_sizes.empty();
        if (!blocked) {
            const double dist = static_cast<double>(f.n_fine) *
                                static_cast<double>(f.n_coarse);
            const Cycles compute =
                static_cast<Cycles>(dist / laneRateTotal());
            energy_.addDistances(static_cast<std::uint64_t>(dist));
            energy_.addMacs(static_cast<std::uint64_t>(blend_macs));

            const double ws =
                static_cast<double>(f.n_coarse) * kCoordBytes;
            const double resident_queries =
                std::max(1.0, budget() * 0.5 / 16.0);
            const double passes =
                std::ceil(static_cast<double>(f.n_fine) /
                          resident_queries);
            const double spill = spillFraction(ws, budget() * 0.5);
            const double dram_b = passes * ws * spill;
            chargeSram(Phase::Interpolate,
                       std::max(0.0, dist * kCoordBytes - dram_b),
                       sim::AccessPattern::Streamed);
            chargeDramStream(dram_b);
            const Cycles mem = dram_.streamCycles(
                static_cast<std::uint64_t>(dram_b));
            report_.addCycles(Phase::Interpolate,
                              std::max(compute, mem));
            return;
        }

        // Block-wise interpolation: queries are every point of a
        // leaf; candidates are the sampled points of the search
        // space (coarse rate of it).
        const double coarse_rate =
            static_cast<double>(f.n_coarse) /
            static_cast<double>(f.n_fine);
        std::vector<Cycles> tasks;
        tasks.reserve(blocks.leaf_sizes.size());
        double total_dist = 0.0;
        double sram_b = 0.0;
        for (std::size_t b = 0; b < blocks.leaf_sizes.size(); ++b) {
            const double sb = blocks.leaf_sizes[b];
            if (sb <= 0.0)
                continue;
            const double space = std::max<double>(
                blocks.space_sizes[b], blocks.leaf_sizes[b]);
            const double cand =
                std::max(1.0, std::round(coarse_rate * space));
            const double dist = sb * cand;
            total_dist += dist;
            tasks.push_back(static_cast<Cycles>(
                dist / policy_.point_lane_rate));
            sram_b += policy_.coord_reuse ? (space + sb) * kCoordBytes
                                          : dist * kCoordBytes;
        }
        energy_.addDistances(static_cast<std::uint64_t>(total_dist));
        energy_.addMacs(static_cast<std::uint64_t>(blend_macs));
        const Cycles compute =
            policy_.block_parallel
                ? sim::lptMakespan(tasks, hw_.point_lanes)
                : static_cast<Cycles>(
                      static_cast<double>(sim::serialLatency(tasks)) /
                      hw_.point_lanes);
        chargeSram(Phase::Interpolate, sram_b,
                   sim::AccessPattern::Streamed);
        report_.addCycles(Phase::Interpolate, compute);
    }

    void
    mlpPhase(std::uint64_t rows,
             const std::vector<std::pair<std::uint64_t,
                                         std::uint64_t>> &gemm)
    {
        if (rows == 0 || gemm.empty())
            return;
        const double pe_per_cycle =
            static_cast<double>(hw_.pe_rows) * hw_.pe_cols;
        Cycles compute = 0;
        double sram_b = 0.0;
        double dram_b = 0.0;
        std::uint64_t macs = 0;
        for (const auto &[c_in, c_out] : gemm) {
            const std::uint64_t layer_macs = rows * c_in * c_out;
            macs += layer_macs;
            // Systolic utilization drops for thin tiles.
            const double util =
                std::min({policy_.pe_util_cap,
                          static_cast<double>(rows) /
                              (static_cast<double>(rows) + 32.0),
                          static_cast<double>(c_out) / 16.0});
            compute += static_cast<Cycles>(
                static_cast<double>(layer_macs) /
                (pe_per_cycle * std::max(0.05, util)));
            const double act_bytes =
                static_cast<double>(rows) *
                static_cast<double>(c_in + c_out) * 2.0;
            sram_b += act_bytes;
            sram_b += static_cast<double>(c_in * c_out) * 2.0; // weights
            const double spill = spillFraction(
                static_cast<double>(rows) * c_out * 2.0, budget());
            dram_b += act_bytes * spill;
            dram_b += static_cast<double>(c_in * c_out) * 2.0;
        }
        energy_.addMacs(macs);
        chargeSram(Phase::Mlp, sram_b,
                   sim::AccessPattern::Streamed);
        chargeDramStream(dram_b);
        const Cycles mem = std::max(
            sram_.cycles(static_cast<std::uint64_t>(sram_b),
                         sim::AccessPattern::Streamed),
            dram_.streamCycles(static_cast<std::uint64_t>(dram_b)));
        report_.addCycles(Phase::Mlp, std::max(compute, mem));
    }

    void
    poolPhase(std::uint64_t centers, std::uint64_t k,
              std::uint64_t channels)
    {
        const std::uint64_t compares = centers * k * channels;
        energy_.addCompares(compares);
        report_.addCycles(Phase::Other,
                          sim::ceilDiv(compares, 256));
    }

    const HardwareConfig &hw_;
    const Policy &policy_;
    const NetworkShape &shape_;
    const BlockSummary &blocks_;
    sim::Sram sram_;
    sim::Dram dram_;
    sim::EnergyMeter energy_;
    RunReport report_;
};

} // namespace

AcceleratorModel::AcceleratorModel(HardwareConfig hw, Policy policy)
    : hw_(std::move(hw)), policy_(policy)
{}

RunReport
AcceleratorModel::run(const nn::ModelConfig &model,
                      const data::PointCloud &cloud) const
{
    const NetworkShape shape =
        buildNetworkShape(model, cloud.size());
    BlockSummary blocks;
    if (policy_.partition_method != part::Method::None) {
        const auto partitioner =
            part::makePartitioner(policy_.partition_method);
        part::PartitionConfig pc;
        pc.threshold = policy_.partition_threshold;
        blocks = summarizeBlocks(partitioner->partition(cloud, pc));
    }
    return runShape(shape, blocks);
}

RunReport
AcceleratorModel::runShape(const NetworkShape &shape,
                           const BlockSummary &blocks) const
{
    Engine engine(hw_, policy_, shape, blocks);
    return engine.run();
}

AcceleratorModel
makeMesorasi()
{
    Policy p;
    p.delayed_aggregation = true;
    // Mesorasi's aggregation hardware is not pipelined against the
    // MLP datapath; point units run at half rate relative to the
    // dedicated engines of later designs.
    p.point_lane_rate = 0.5;
    p.pe_util_cap = 0.45;
    p.stage_overhead = 20'000;
    return {mesorasiConfig(), p};
}

AcceleratorModel
makePointAcc()
{
    Policy p;
    // Global point operations, no partitioning, no delayed
    // aggregation; dedicated full-rate point units.
    p.point_lane_rate = 1.0;
    return {pointAccConfig(), p};
}

AcceleratorModel
makeCrescent()
{
    Policy p;
    p.partition_method = part::Method::KdTree;
    p.partition_threshold = 256;
    p.delayed_aggregation = true;
    // Crescent searches locally within KD blocks but executes blocks
    // serially, and its sampling engine (borrowed from PointAcc, per
    // the paper's methodology) remains a global FPS.
    p.block_parallel = false;
    p.block_sampling = false;
    p.block_grouping = true;
    p.block_interpolation = true;
    // Delayed aggregation widens gathered rows and its search space;
    // Crescent's gathers stay random-access against the big buffer
    // (the SRAM-energy cost visible in Fig. 15(b)).
    p.block_gathering = false;
    p.coord_reuse = false;
    p.pe_util_cap = 0.55;
    p.stage_overhead = 20'000;
    return {crescentConfig(), p};
}

AcceleratorModel
makeFractalCloud(std::uint32_t threshold)
{
    Policy p;
    p.partition_method = part::Method::Fractal;
    p.partition_threshold = threshold;
    p.delayed_aggregation = true;
    p.block_parallel = true;
    p.block_sampling = true;
    p.block_grouping = true;
    p.block_interpolation = true;
    p.block_gathering = true;
    p.window_check = true;
    p.coord_reuse = true;
    return {fractalCloudConfig(), p};
}

AcceleratorModel
makeFractalCloudWithPolicy(const Policy &policy)
{
    return {fractalCloudConfig(), policy};
}

RunReport
gpuRun(const nn::ModelConfig &model, std::uint64_t n_points,
       const GpuConfig &gpu)
{
    const NetworkShape shape = buildNetworkShape(model, n_points);
    RunReport report;
    report.accelerator = "GPU";
    report.model = shape.model;
    report.num_points = n_points;
    report.freq_ghz = 1.0; // report cycles at 1 GHz equivalents

    auto to_cycles = [](double seconds) {
        return static_cast<sim::Cycles>(seconds * 1e9);
    };
    const double launch = gpu.kernel_launch_us * 1e-6;
    const double framework = gpu.framework_overhead_us * 1e-6;

    double total_s = 0.0;
    for (const SaShape &s : shape.sa) {
        // FPS: serialized iterations.
        const double iter_s = std::max(
            gpu.fps_iteration_us * 1e-6,
            static_cast<double>(s.n_in) / gpu.dist_geval_per_s);
        const double fps_s =
            static_cast<double>(s.n_out) * iter_s + launch;
        report.addCycles(Phase::Sample, to_cycles(fps_s));

        // Ball query: brute force over all candidates.
        const double bq_s = static_cast<double>(s.n_out) *
                                static_cast<double>(s.n_in) /
                                gpu.dist_geval_per_s +
                            launch;
        report.addCycles(Phase::Group, to_cycles(bq_s));

        // Gather: memory-bound scattered reads (fp32 on GPU).
        const double bytes = static_cast<double>(s.n_out) *
                             static_cast<double>(s.k) *
                             static_cast<double>(s.c_in + 3) * 4.0;
        const double gather_s =
            bytes / (gpu.mem_gbps * 1e9 * 0.35) + launch;
        report.addCycles(Phase::Gather, to_cycles(gather_s));

        // MLP (no delayed aggregation in the reference stacks).
        double macs = 0.0;
        for (const auto &[c_in, c_out] : s.gemm)
            macs += static_cast<double>(s.n_out) *
                    static_cast<double>(s.k) *
                    static_cast<double>(c_in) *
                    static_cast<double>(c_out);
        const double mlp_s =
            2.0 * macs / (gpu.mlp_tflops * 1e12) +
            (launch + gpu.mlp_layer_overhead_us * 1e-6) *
                static_cast<double>(s.gemm.size());
        report.addCycles(Phase::Mlp, to_cycles(mlp_s));
        report.addCycles(Phase::Other, to_cycles(framework));
        total_s += fps_s + bq_s + gather_s + mlp_s + framework;
    }
    for (const FpShape &f : shape.fp) {
        const double knn_s = static_cast<double>(f.n_fine) *
                                 static_cast<double>(f.n_coarse) /
                                 gpu.dist_geval_per_s +
                             launch;
        report.addCycles(Phase::Interpolate, to_cycles(knn_s));
        double macs = 0.0;
        for (const auto &[c_in, c_out] : f.gemm)
            macs += static_cast<double>(f.n_fine) *
                    static_cast<double>(c_in) *
                    static_cast<double>(c_out);
        const double mlp_s =
            2.0 * macs / (gpu.mlp_tflops * 1e12) +
            (launch + gpu.mlp_layer_overhead_us * 1e-6) *
                static_cast<double>(f.gemm.size());
        report.addCycles(Phase::Mlp, to_cycles(mlp_s));
        report.addCycles(Phase::Other, to_cycles(framework));
        total_s += knn_s + mlp_s + framework;
    }
    double head_macs = 0.0;
    for (const auto &[c_in, c_out] : shape.head)
        head_macs += static_cast<double>(shape.head_rows) *
                     static_cast<double>(c_in) *
                     static_cast<double>(c_out);
    const double head_s =
        2.0 * head_macs / (gpu.mlp_tflops * 1e12) + launch;
    report.addCycles(Phase::Mlp, to_cycles(head_s));
    total_s += head_s;

    // Board energy: average power times latency.
    const double joules = gpu.power_watts * total_s;
    report.compute_pj = joules * 1e12 * 0.55;
    report.dram_pj = joules * 1e12 * 0.35;
    report.sram_pj = joules * 1e12 * 0.10;
    report.dram_bytes = static_cast<std::uint64_t>(
        total_s * gpu.mem_gbps * 1e9 * 0.3);
    return report;
}

} // namespace fc::accel
