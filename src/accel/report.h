/**
 * @file
 * Latency/energy report for one simulated inference, with the phase
 * and component breakdowns that Figs. 13, 15, and 18 are built from.
 */

#ifndef FC_ACCEL_REPORT_H
#define FC_ACCEL_REPORT_H

#include <cstdint>
#include <map>
#include <string>

#include "sim/cycles.h"

namespace fc::accel {

/** Latency phases (paper Fig. 15(a) groups these into 3 bars). */
enum class Phase
{
    Partition,
    Sample,
    Group,
    Gather,
    Interpolate,
    Mlp,
    Other,
};

std::string phaseName(Phase phase);

struct RunReport
{
    std::string accelerator;
    std::string model;
    std::uint64_t num_points = 0;
    double freq_ghz = 1.0;

    /** Cycles per phase. */
    std::map<Phase, sim::Cycles> phase_cycles;

    /** Energy breakdown in pJ (paper Fig. 15(b)). */
    double compute_pj = 0.0;
    double sram_pj = 0.0;
    double dram_pj = 0.0;
    double static_pj = 0.0;

    /** Memory traffic. */
    std::uint64_t dram_bytes = 0;
    std::uint64_t sram_bytes = 0;

    /** SRAM traffic attributed to each phase. */
    std::map<Phase, std::uint64_t> phase_sram_bytes;

    std::uint64_t
    sramBytes(Phase phase) const
    {
        const auto it = phase_sram_bytes.find(phase);
        return it == phase_sram_bytes.end() ? 0 : it->second;
    }

    sim::Cycles totalCycles() const;
    double totalLatencyMs() const;
    double totalEnergyMj() const;

    /** Point operations = sample + group + gather + interpolate. */
    sim::Cycles pointOpCycles() const;
    sim::Cycles mlpCycles() const;
    sim::Cycles otherCycles() const;

    double
    latencyMs(Phase phase) const
    {
        const auto it = phase_cycles.find(phase);
        return it == phase_cycles.end()
                   ? 0.0
                   : sim::cyclesToMs(it->second, freq_ghz);
    }

    void
    addCycles(Phase phase, sim::Cycles cycles)
    {
        phase_cycles[phase] += cycles;
    }

    /** Element-wise accumulate (multi-frame totals). */
    RunReport &operator+=(const RunReport &other);

    /** Human-readable multi-line summary. */
    std::string summary() const;
};

} // namespace fc::accel

#endif // FC_ACCEL_REPORT_H
