#include "accel/report.h"

#include <sstream>

#include "common/logging.h"

namespace fc::accel {

std::string
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Partition:
        return "partition";
      case Phase::Sample:
        return "sample";
      case Phase::Group:
        return "group";
      case Phase::Gather:
        return "gather";
      case Phase::Interpolate:
        return "interpolate";
      case Phase::Mlp:
        return "mlp";
      case Phase::Other:
        return "other";
    }
    fc_panic("unknown phase");
}

sim::Cycles
RunReport::totalCycles() const
{
    sim::Cycles total = 0;
    for (const auto &[phase, cycles] : phase_cycles)
        total += cycles;
    return total;
}

double
RunReport::totalLatencyMs() const
{
    return sim::cyclesToMs(totalCycles(), freq_ghz);
}

double
RunReport::totalEnergyMj() const
{
    return (compute_pj + sram_pj + dram_pj + static_pj) * 1e-9;
}

sim::Cycles
RunReport::pointOpCycles() const
{
    sim::Cycles total = 0;
    for (const Phase p : {Phase::Sample, Phase::Group, Phase::Gather,
                          Phase::Interpolate}) {
        const auto it = phase_cycles.find(p);
        if (it != phase_cycles.end())
            total += it->second;
    }
    return total;
}

sim::Cycles
RunReport::mlpCycles() const
{
    const auto it = phase_cycles.find(Phase::Mlp);
    return it == phase_cycles.end() ? 0 : it->second;
}

sim::Cycles
RunReport::otherCycles() const
{
    sim::Cycles total = 0;
    for (const Phase p : {Phase::Partition, Phase::Other}) {
        const auto it = phase_cycles.find(p);
        if (it != phase_cycles.end())
            total += it->second;
    }
    return total;
}

RunReport &
RunReport::operator+=(const RunReport &other)
{
    for (const auto &[phase, cycles] : other.phase_cycles)
        phase_cycles[phase] += cycles;
    compute_pj += other.compute_pj;
    sram_pj += other.sram_pj;
    dram_pj += other.dram_pj;
    static_pj += other.static_pj;
    dram_bytes += other.dram_bytes;
    sram_bytes += other.sram_bytes;
    num_points += other.num_points;
    return *this;
}

std::string
RunReport::summary() const
{
    std::ostringstream os;
    os << accelerator << " / " << model << " @ " << num_points
       << " pts: " << totalLatencyMs() << " ms, " << totalEnergyMj()
       << " mJ\n";
    for (const auto &[phase, cycles] : phase_cycles) {
        os << "  " << phaseName(phase) << ": "
           << sim::cyclesToMs(cycles, freq_ghz) << " ms\n";
    }
    os << "  energy pJ: compute " << compute_pj << ", sram " << sram_pj
       << ", dram " << dram_pj << ", static " << static_pj << "\n";
    os << "  dram bytes " << dram_bytes << ", sram bytes " << sram_bytes;
    return os.str();
}

} // namespace fc::accel
