/**
 * @file
 * Network workload shapes: the per-stage operation sizes the
 * accelerator timing models consume.
 *
 * The functional library measures its own work counters on real data;
 * for the O(n^2) global baselines at 289K points the simulator instead
 * times *shapes* (how many candidates, centers, channels each stage
 * touches) which are exact functions of the model configuration and
 * input size. Block-structure information comes from an actual
 * partition of the input cloud (BlockSummary).
 */

#ifndef FC_ACCEL_WORKLOAD_H
#define FC_ACCEL_WORKLOAD_H

#include <cstdint>
#include <vector>

#include "nn/models.h"
#include "partition/partitioner.h"

namespace fc::accel {

/** One set-abstraction stage's sizes. */
struct SaShape
{
    std::uint64_t n_in = 0;   ///< candidate points entering the stage
    std::uint64_t n_out = 0;  ///< sampled centers
    std::uint64_t k = 0;      ///< neighbors per center
    float radius = 0.0f;
    std::uint64_t c_in = 0;   ///< feature channels entering
    std::uint64_t c_out = 0;  ///< feature channels leaving

    /** GEMM layers as (in, out) channel pairs. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> gemm;
};

/** One feature-propagation stage's sizes. */
struct FpShape
{
    std::uint64_t n_fine = 0;   ///< interpolation queries
    std::uint64_t n_coarse = 0; ///< known (sampled) points
    std::uint64_t k = 3;
    std::uint64_t c_in = 0;  ///< channels after concat
    std::uint64_t c_out = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> gemm;
};

/** Whole-network workload. */
struct NetworkShape
{
    std::string model;
    nn::Task task = nn::Task::Classification;
    std::uint64_t n_points = 0;
    std::vector<SaShape> sa;
    std::vector<FpShape> fp;

    /** Head GEMM layers; rows = 1 (classification) or n (seg). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> head;
    std::uint64_t head_rows = 1;

    /** Total MLP MACs with and without delayed aggregation. */
    std::uint64_t totalMacs(bool delayed_aggregation) const;
};

/** Build the shape of @p model over @p n_points inputs. */
NetworkShape buildNetworkShape(const nn::ModelConfig &model,
                               std::uint64_t n_points);

/**
 * Block structure digest handed to the timing models: leaf sizes and
 * per-leaf search-space sizes, in DFT order, plus the partitioning
 * work record.
 */
struct BlockSummary
{
    std::vector<std::uint32_t> leaf_sizes;
    std::vector<std::uint32_t> space_sizes;
    std::uint32_t max_depth = 0;
    part::PartitionStats stats;
    std::uint64_t total_points = 0;

    /**
     * Stage-scaled copy: after fixed-rate sampling at cumulative rate
     * @p rate each leaf holds about rate * size points (>= 1 for
     * non-empty leaves). Mirrors the on-chip refractal of deeper
     * stages without re-partitioning.
     */
    BlockSummary scaled(double rate) const;
};

/** Digest an actual partition result. */
BlockSummary summarizeBlocks(const part::PartitionResult &result);

} // namespace fc::accel

#endif // FC_ACCEL_WORKLOAD_H
