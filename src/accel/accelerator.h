/**
 * @file
 * Whole-accelerator timing/energy models.
 *
 * One transaction-level engine (AcceleratorModel) simulates every
 * modelled design; a Policy record captures what differs between them:
 * partitioning method, delayed aggregation, which point operations are
 * block-wise, block-level parallelism, and the RSPU reuse/skip
 * features. Named factories produce the paper's four designs
 * (Mesorasi, PointAcc, Crescent, FractalCloud), and every Fig. 18
 * ablation point is a Policy edit away.
 *
 * Phase models charge cycles against shared timed resources (point
 * lanes, PE array, SRAM, DRAM) and energy against the 28 nm meter;
 * per-phase latency is the maximum of compute and memory service
 * (double-buffered pipelines), summed across phases.
 */

#ifndef FC_ACCEL_ACCELERATOR_H
#define FC_ACCEL_ACCELERATOR_H

#include <memory>
#include <string>

#include "accel/config.h"
#include "accel/report.h"
#include "accel/workload.h"
#include "dataset/point_cloud.h"
#include "nn/models.h"
#include "partition/partitioner.h"
#include "sim/dram.h"
#include "sim/energy.h"
#include "sim/sram.h"

namespace fc::accel {

/** Behavioural switches distinguishing the modelled designs. */
struct Policy
{
    /** Partitioning strategy run before point operations. */
    part::Method partition_method = part::Method::None;

    /** Block threshold th for the partitioner. */
    std::uint32_t partition_threshold = 256;

    /** Mesorasi-style delayed aggregation for MLPs. */
    bool delayed_aggregation = false;

    /** Point operations run block-parallel across lanes (BPPO). */
    bool block_parallel = false;

    /** Block-wise sampling (BWS). */
    bool block_sampling = false;

    /** Block-wise grouping / neighbor search (BWG). */
    bool block_grouping = false;

    /** Block-wise interpolation (BWI). */
    bool block_interpolation = false;

    /** Block-wise gathering (BWGa). */
    bool block_gathering = false;

    /** RSPU window-check: skip already-sampled FPS candidates. */
    bool window_check = false;

    /** RSPU search-space reuse across centers of a block. */
    bool coord_reuse = false;

    /** Distance evaluations per lane per cycle. */
    double point_lane_rate = 1.0;

    /** KD sorter throughput, elements/cycle (serial merge network). */
    double sorter_rate = 0.6;

    /** Fractal traverser throughput, elements/cycle (parallel). */
    double traverse_rate = 16.0;

    /**
     * PE-array utilization ceiling. FractalCloud's streamed dataflow
     * sustains ~0.92; Mesorasi/Crescent stall their delayed-
     * aggregation pipeline against the MLP datapath (the deficit
     * behind the paper's small-scale speedups over both).
     */
    double pe_util_cap = 0.92;

    /** Fixed per-stage control/DMA serialization overhead (cycles). */
    sim::Cycles stage_overhead = 2'000;

    /** Simulate the RISC-V configuration program per stage. */
    bool simulate_riscv = true;
};

/** A modelled accelerator: hardware config + behavioural policy. */
class AcceleratorModel
{
  public:
    AcceleratorModel(HardwareConfig hw, Policy policy);

    /**
     * Simulate one inference of @p model over @p cloud.
     *
     * The cloud's actual coordinates drive the block structure (the
     * partitioner really runs); operation sizes come from the network
     * shape.
     */
    RunReport run(const nn::ModelConfig &model,
                  const data::PointCloud &cloud) const;

    /**
     * Shape-only variant for very large synthetic sweeps: block
     * structure is taken from @p blocks instead of partitioning a
     * real cloud (pass std::nullopt-like empty summary for global
     * designs).
     */
    RunReport runShape(const NetworkShape &shape,
                       const BlockSummary &blocks) const;

    const HardwareConfig &hardware() const { return hw_; }
    const Policy &policy() const { return policy_; }

  private:
    HardwareConfig hw_;
    Policy policy_;
};

/** Paper Table II designs. */
AcceleratorModel makeMesorasi();
AcceleratorModel makePointAcc();
AcceleratorModel makeCrescent();

/**
 * FractalCloud with every optimization on; @p threshold is th
 * (64 small-scale / 256 large-scale per §VI-B).
 */
AcceleratorModel makeFractalCloud(std::uint32_t threshold = 256);

/** FractalCloud with an arbitrary policy (ablations). */
AcceleratorModel makeFractalCloudWithPolicy(const Policy &policy);

/** GPU baseline (NVIDIA TITAN RTX class) roofline model. */
struct GpuConfig
{
    double dist_geval_per_s = 12e9; ///< brute-force distance throughput
    double mlp_tflops = 14.0;       ///< effective fp16 GEMM
    double mem_gbps = 550.0;
    double fps_iteration_us = 2.5;  ///< serialized FPS step latency
    double kernel_launch_us = 10.0;

    /**
     * Per-MLP-layer dispatch cost (conv + norm + activation are
     * separate kernels in the reference PyTorch stacks); dominates
     * MLP time at small batch sizes.
     */
    double mlp_layer_overhead_us = 150.0;

    /** Framework (PyTorch dispatch) overhead per network stage. */
    double framework_overhead_us = 120.0;

    /**
     * Average board power during inference. Point operations keep
     * occupancy low, so this sits well below the 280 W TDP.
     */
    double power_watts = 120.0;
};

/** Simulate GPU inference latency/energy for a network shape. */
RunReport gpuRun(const nn::ModelConfig &model, std::uint64_t n_points,
                 const GpuConfig &gpu = {});

} // namespace fc::accel

#endif // FC_ACCEL_ACCELERATOR_H
