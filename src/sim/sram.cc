#include "sim/sram.h"

#include "common/logging.h"

namespace fc::sim {

Cycles
Sram::cycles(std::uint64_t bytes, AccessPattern pattern,
             std::uint32_t requesters) const
{
    if (bytes == 0)
        return 0;
    const std::uint64_t full_bw = static_cast<std::uint64_t>(
        config_.num_banks) * config_.bytes_per_port;
    switch (pattern) {
      case AccessPattern::Streamed:
        return ceilDiv(bytes, full_bw);
      case AccessPattern::Random: {
        // Random: each requester achieves at most one port per cycle,
        // degraded by expected bank collisions.
        const double conflict =
            1.0 + static_cast<double>(requesters > 0 ? requesters - 1
                                                     : 0) /
                      static_cast<double>(config_.num_banks);
        const std::uint64_t eff_bw = static_cast<std::uint64_t>(
            std::max(1.0, static_cast<double>(requesters) *
                              config_.bytes_per_port / conflict));
        return ceilDiv(bytes, eff_bw);
      }
    }
    fc_panic("unknown access pattern");
}

void
Sram::record(std::uint64_t bytes, AccessPattern pattern)
{
    total_bytes_ += bytes;
    if (pattern == AccessPattern::Random)
        random_bytes_ += bytes;
}

} // namespace fc::sim
