/**
 * @file
 * Multi-bank global-buffer SRAM model.
 *
 * The global buffer (274 KB in PointAcc / FractalCloud, 1622.8 KB in
 * Crescent) is split into banks with one port each. Streamed accesses
 * interleave perfectly across banks; random accesses collide — the
 * model charges an expected conflict factor that grows with the
 * number of concurrent requesters, reproducing the bank-conflict
 * behaviour the paper attributes to unpartitioned point clouds
 * (§IV-A: "multiple compute units access different addresses within
 * the same memory bank").
 */

#ifndef FC_SIM_SRAM_H
#define FC_SIM_SRAM_H

#include <cstdint>
#include <string>

#include "common/stats.h"
#include "sim/cycles.h"

namespace fc::sim {

/** Access pattern classes. */
enum class AccessPattern
{
    Streamed, ///< sequential, bank-interleaved
    Random,   ///< data-dependent scatter/gather
};

struct SramConfig
{
    std::uint64_t capacity_bytes = 274 * 1024;
    std::uint32_t num_banks = 16;
    std::uint32_t bytes_per_port = 16; ///< per bank per cycle
};

class Sram
{
  public:
    explicit Sram(SramConfig config) : config_(config) {}

    const SramConfig &config() const { return config_; }

    /**
     * Cycles to move @p bytes with @p requesters concurrent units.
     *
     * Streamed: all banks cooperate at full port width.
     * Random: each access touches a random bank; with R requesters
     * over B banks the expected serialization factor is the expected
     * maximum bin load, approximated as 1 + (R - 1) / B.
     */
    Cycles cycles(std::uint64_t bytes, AccessPattern pattern,
                  std::uint32_t requesters = 1) const;

    /** Record an access into the running totals. */
    void record(std::uint64_t bytes, AccessPattern pattern);

    std::uint64_t totalBytes() const { return total_bytes_; }
    std::uint64_t randomBytes() const { return random_bytes_; }

    void
    reset()
    {
        total_bytes_ = 0;
        random_bytes_ = 0;
    }

  private:
    SramConfig config_;
    std::uint64_t total_bytes_ = 0;
    std::uint64_t random_bytes_ = 0;
};

} // namespace fc::sim

#endif // FC_SIM_SRAM_H
