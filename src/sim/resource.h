/**
 * @file
 * A timed, pipelined hardware resource.
 *
 * Transactions request service of a number of items at a start cycle;
 * the resource serializes overlapping requests (busy-until semantics)
 * and reports the finish cycle, occupancy, and utilization. This is
 * the basic contention primitive from which unit models are composed.
 */

#ifndef FC_SIM_RESOURCE_H
#define FC_SIM_RESOURCE_H

#include <algorithm>
#include <string>

#include "common/logging.h"
#include "sim/cycles.h"

namespace fc::sim {

class Resource
{
  public:
    /**
     * @param name             for reports
     * @param items_per_cycle  pipelined throughput
     * @param latency          fixed pipeline fill latency per request
     */
    Resource(std::string name, double items_per_cycle,
             Cycles latency = 0)
        : name_(std::move(name)), throughput_(items_per_cycle),
          latency_(latency)
    {
        fc_assert(throughput_ > 0.0, "resource '%s' needs throughput",
                  name_.c_str());
    }

    /**
     * Request service for @p items starting no earlier than @p start.
     * @return the finish cycle.
     */
    Cycles
    acquire(Cycles start, std::uint64_t items)
    {
        const Cycles begin = std::max(start, busyUntil_);
        const Cycles service = latency_ + static_cast<Cycles>(
            static_cast<double>(items) / throughput_ + 0.999999);
        busyUntil_ = begin + service;
        busyCycles_ += service;
        totalItems_ += items;
        return busyUntil_;
    }

    Cycles busyUntil() const { return busyUntil_; }
    Cycles busyCycles() const { return busyCycles_; }
    std::uint64_t totalItems() const { return totalItems_; }
    const std::string &name() const { return name_; }

    /** Utilization relative to an elapsed window. */
    double
    utilization(Cycles elapsed) const
    {
        return elapsed == 0
                   ? 0.0
                   : static_cast<double>(busyCycles_) /
                         static_cast<double>(elapsed);
    }

    void
    reset()
    {
        busyUntil_ = 0;
        busyCycles_ = 0;
        totalItems_ = 0;
    }

  private:
    std::string name_;
    double throughput_;
    Cycles latency_;
    Cycles busyUntil_ = 0;
    Cycles busyCycles_ = 0;
    std::uint64_t totalItems_ = 0;
};

} // namespace fc::sim

#endif // FC_SIM_RESOURCE_H
