#include "sim/energy.h"

#include <cmath>

namespace fc::sim {

void
EnergyMeter::addSramBytes(std::uint64_t bytes,
                          std::uint64_t capacity_bytes)
{
    const double base_capacity = 274.0 * 1024.0;
    const double scale = std::pow(
        std::max(1.0, static_cast<double>(capacity_bytes) /
                          base_capacity),
        config_.sram_size_exponent);
    sram_pj_ += static_cast<double>(bytes) * config_.sram_pj_per_byte *
                scale;
}

void
EnergyMeter::addStatic(Cycles cycles, double freq_ghz)
{
    const double seconds = cyclesToSeconds(cycles, freq_ghz);
    static_pj_ += config_.static_watts * seconds * 1e12;
    static_pj_ += static_cast<double>(cycles) / 1000.0 *
                  config_.control_pj_per_kcycle;
}

} // namespace fc::sim
