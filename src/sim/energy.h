/**
 * @file
 * 28 nm energy/area cost model.
 *
 * Per-event energies follow published 28 nm figures (Horowitz ISSCC'14
 * scaling, CACTI-class SRAM numbers, DDR4 interface energy); the same
 * constants apply to every modelled accelerator, matching the paper's
 * same-technology normalization (§VI-A). Values are picojoules.
 */

#ifndef FC_SIM_ENERGY_H
#define FC_SIM_ENERGY_H

#include <cstdint>

#include "sim/cycles.h"

namespace fc::sim {

struct EnergyConfig
{
    /** fp16 multiply-accumulate in the PE array. */
    double mac_pj = 1.1;

    /** One 3D Euclidean distance evaluation (8 fp16 ops + compare). */
    double distance_pj = 3.2;

    /** Comparator / sorter element op. */
    double compare_pj = 0.35;

    /** SRAM access, per byte (multi-bank global buffer). */
    double sram_pj_per_byte = 0.65;

    /**
     * Extra per-byte cost for large SRAM macros: charged per byte
     * scaled by (capacity / 274KB)^exponent — bigger arrays burn more
     * per access (longer bitlines and interconnect), which is how
     * Crescent's 1.6 MB buffer costs it energy (Fig. 15).
     */
    double sram_size_exponent = 1.0;

    /** DRAM transfer energy per byte (DDR4 incl. I/O). */
    double dram_pj_per_byte = 62.5; // ~500 pJ per 64-bit word

    /** DRAM row activation. */
    double dram_activate_pj = 909.0;

    /** Static/leakage power of the core in watts. */
    double static_watts = 0.06;

    /** RISC-V core + NoC control overhead per kilocycle. */
    double control_pj_per_kcycle = 18.0;
};

/** Accumulating energy meter. */
class EnergyMeter
{
  public:
    explicit EnergyMeter(EnergyConfig config = {}) : config_(config) {}

    const EnergyConfig &config() const { return config_; }

    void
    addMacs(std::uint64_t macs)
    {
        compute_pj_ += static_cast<double>(macs) * config_.mac_pj;
    }

    void
    addDistances(std::uint64_t count)
    {
        compute_pj_ +=
            static_cast<double>(count) * config_.distance_pj;
    }

    void
    addCompares(std::uint64_t count)
    {
        compute_pj_ += static_cast<double>(count) * config_.compare_pj;
    }

    /** @param capacity_bytes the SRAM macro size (scaling factor). */
    void addSramBytes(std::uint64_t bytes, std::uint64_t capacity_bytes);

    void
    addDramBytes(std::uint64_t bytes)
    {
        dram_pj_ += static_cast<double>(bytes) * config_.dram_pj_per_byte;
    }

    void
    addDramActivations(std::uint64_t count)
    {
        dram_pj_ +=
            static_cast<double>(count) * config_.dram_activate_pj;
    }

    /** Charge leakage + control for an elapsed latency. */
    void addStatic(Cycles cycles, double freq_ghz);

    double computePj() const { return compute_pj_; }
    double sramPj() const { return sram_pj_; }
    double dramPj() const { return dram_pj_; }
    double staticPj() const { return static_pj_; }

    double
    totalPj() const
    {
        return compute_pj_ + sram_pj_ + dram_pj_ + static_pj_;
    }

    double totalMj() const { return totalPj() * 1e-9; }

    void
    reset()
    {
        compute_pj_ = sram_pj_ = dram_pj_ = static_pj_ = 0.0;
    }

  private:
    EnergyConfig config_;
    double compute_pj_ = 0.0;
    double sram_pj_ = 0.0;
    double dram_pj_ = 0.0;
    double static_pj_ = 0.0;
};

} // namespace fc::sim

#endif // FC_SIM_ENERGY_H
