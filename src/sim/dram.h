/**
 * @file
 * DDR4-2133 DRAM channel model (17 GB/s, as in Table II).
 *
 * A burst-and-row-buffer model in the spirit of DRAMsim3, reduced to
 * the quantities the accelerator comparison depends on: streamed
 * transfers run at a fixed fraction of peak bandwidth; random
 * transfers fetch whole 64 B bursts per touch and pay an expected
 * row-miss penalty. Energy is charged per bit plus per activation.
 */

#ifndef FC_SIM_DRAM_H
#define FC_SIM_DRAM_H

#include <cstdint>

#include "sim/cycles.h"

namespace fc::sim {

struct DramConfig
{
    /** Peak bandwidth (DDR4-2133 single channel). */
    double peak_gbps = 17.0;

    /** Fraction of peak achieved by streamed transfers. */
    double streamed_efficiency = 0.85;

    /** Burst (cache-line) size fetched per random touch. */
    std::uint32_t burst_bytes = 64;

    /** Row-buffer hit rate for random accesses. */
    double random_row_hit = 0.25;

    /** Row activate+precharge penalty in core cycles (1 GHz core). */
    Cycles row_miss_penalty = 45;

    /** Random-access requests served in parallel (banks/queues). */
    std::uint32_t parallelism = 4;

    /** Core frequency the cycle counts refer to. */
    double core_ghz = 1.0;
};

class Dram
{
  public:
    explicit Dram(DramConfig config = {}) : config_(config) {}

    const DramConfig &config() const { return config_; }

    /** Cycles to stream @p bytes sequentially. */
    Cycles streamCycles(std::uint64_t bytes) const;

    /**
     * Cycles for @p accesses random touches of @p useful_bytes each
     * (whole bursts are fetched regardless).
     */
    Cycles randomCycles(std::uint64_t accesses,
                        std::uint32_t useful_bytes) const;

    /** Bytes actually moved by @p accesses random touches. */
    std::uint64_t
    randomBytesMoved(std::uint64_t accesses) const
    {
        return accesses * config_.burst_bytes;
    }

    void
    recordStream(std::uint64_t bytes)
    {
        streamed_bytes_ += bytes;
    }

    void
    recordRandom(std::uint64_t accesses)
    {
        random_bytes_ += randomBytesMoved(accesses);
        random_accesses_ += accesses;
    }

    std::uint64_t streamedBytes() const { return streamed_bytes_; }
    std::uint64_t randomBytes() const { return random_bytes_; }
    std::uint64_t randomAccesses() const { return random_accesses_; }
    std::uint64_t
    totalBytes() const
    {
        return streamed_bytes_ + random_bytes_;
    }

    void
    reset()
    {
        streamed_bytes_ = 0;
        random_bytes_ = 0;
        random_accesses_ = 0;
    }

  private:
    DramConfig config_;
    std::uint64_t streamed_bytes_ = 0;
    std::uint64_t random_bytes_ = 0;
    std::uint64_t random_accesses_ = 0;
};

} // namespace fc::sim

#endif // FC_SIM_DRAM_H
