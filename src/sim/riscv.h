/**
 * @file
 * RV32IM interpreter: the configuration core of FractalCloud (§V-A).
 *
 * The paper uses a six-stage RV32IMAC core to write unit configuration
 * registers and orchestrate transfers. This interpreter executes the
 * RV32I base set plus the M extension, with a memory-mapped I/O window
 * through which configuration programs write unit CSRs; the
 * accelerator model consumes the resulting write log. A small
 * instruction-encoding toolkit doubles as the assembler used by tests
 * and by the config-program generator.
 */

#ifndef FC_SIM_RISCV_H
#define FC_SIM_RISCV_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace fc::sim {

/** Encoders for the instruction formats the control programs need. */
namespace rv {

using Insn = std::uint32_t;

Insn addi(int rd, int rs1, std::int32_t imm);
Insn add(int rd, int rs1, int rs2);
Insn sub(int rd, int rs1, int rs2);
Insn mul(int rd, int rs1, int rs2);
Insn mulhu(int rd, int rs1, int rs2);
Insn divu(int rd, int rs1, int rs2);
Insn remu(int rd, int rs1, int rs2);
Insn andi(int rd, int rs1, std::int32_t imm);
Insn ori(int rd, int rs1, std::int32_t imm);
Insn xori(int rd, int rs1, std::int32_t imm);
Insn slli(int rd, int rs1, int shamt);
Insn srli(int rd, int rs1, int shamt);
Insn and_(int rd, int rs1, int rs2);
Insn or_(int rd, int rs1, int rs2);
Insn xor_(int rd, int rs1, int rs2);
Insn slt(int rd, int rs1, int rs2);
Insn sltu(int rd, int rs1, int rs2);
Insn lui(int rd, std::int32_t imm20);
Insn auipc(int rd, std::int32_t imm20);
Insn lw(int rd, int rs1, std::int32_t offset);
Insn sw(int rs2, int rs1, std::int32_t offset);
Insn beq(int rs1, int rs2, std::int32_t offset);
Insn bne(int rs1, int rs2, std::int32_t offset);
Insn blt(int rs1, int rs2, std::int32_t offset);
Insn bgeu(int rs1, int rs2, std::int32_t offset);
Insn jal(int rd, std::int32_t offset);
Insn jalr(int rd, int rs1, std::int32_t offset);
Insn ecall();

/** Materialize an arbitrary 32-bit constant into rd (lui+addi pair). */
std::vector<Insn> li(int rd, std::uint32_t value);

} // namespace rv

/** A recorded MMIO store (unit configuration write). */
struct MmioWrite
{
    std::uint32_t address = 0;
    std::uint32_t value = 0;
};

/**
 * The interpreter. Memory is a flat little-endian array; addresses at
 * or above mmio_base are routed to the MMIO log instead.
 */
class RiscvCore
{
  public:
    /**
     * @param mem_bytes size of flat data/instruction memory
     * @param mmio_base first MMIO address
     */
    explicit RiscvCore(std::size_t mem_bytes = 64 * 1024,
                       std::uint32_t mmio_base = 0x4000'0000u);

    /** Load a program at @p base (word-aligned). */
    void loadProgram(const std::vector<rv::Insn> &program,
                     std::uint32_t base = 0);

    /**
     * Run until ecall or @p max_insns executed.
     * @return number of instructions retired.
     */
    std::uint64_t run(std::uint64_t max_insns = 1'000'000);

    std::uint32_t reg(int index) const;
    void setReg(int index, std::uint32_t value);

    std::uint32_t pc() const { return pc_; }
    void setPc(std::uint32_t pc) { pc_ = pc; }

    std::uint32_t loadWord(std::uint32_t address) const;
    void storeWord(std::uint32_t address, std::uint32_t value);

    const std::vector<MmioWrite> &mmioWrites() const
    {
        return mmioWrites_;
    }

    bool halted() const { return halted_; }

    /** Cycle estimate: 1 cycle/insn + branch/mem penalties. */
    std::uint64_t cycleEstimate() const { return cycles_; }

  private:
    void execute(rv::Insn insn);

    std::vector<std::uint8_t> memory_;
    std::uint32_t mmioBase_;
    std::uint32_t regs_[32] = {};
    std::uint32_t pc_ = 0;
    bool halted_ = false;
    std::uint64_t cycles_ = 0;
    std::vector<MmioWrite> mmioWrites_;
};

} // namespace fc::sim

#endif // FC_SIM_RISCV_H
