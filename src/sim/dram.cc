#include "sim/dram.h"

#include <algorithm>
#include <cmath>

namespace fc::sim {

Cycles
Dram::streamCycles(std::uint64_t bytes) const
{
    if (bytes == 0)
        return 0;
    const double bytes_per_cycle = config_.peak_gbps *
                                   config_.streamed_efficiency /
                                   config_.core_ghz;
    return static_cast<Cycles>(
        std::ceil(static_cast<double>(bytes) / bytes_per_cycle));
}

Cycles
Dram::randomCycles(std::uint64_t accesses,
                   std::uint32_t useful_bytes) const
{
    if (accesses == 0)
        return 0;
    // Every touch moves a whole burst; misses add the activate
    // penalty. Requests overlap across banks/queues.
    const std::uint64_t bytes =
        accesses * std::max(config_.burst_bytes, useful_bytes);
    const Cycles transfer = streamCycles(bytes);
    const double misses =
        static_cast<double>(accesses) * (1.0 - config_.random_row_hit);
    const Cycles stall = static_cast<Cycles>(
        misses * static_cast<double>(config_.row_miss_penalty) /
        std::max(1u, config_.parallelism));
    return transfer + stall;
}

} // namespace fc::sim
