/**
 * @file
 * Parallel-schedule latency helpers.
 *
 * Block-parallel execution assigns whole blocks to compute lanes; the
 * simulator reproduces the hardware scheduler's longest-processing-
 * time-first policy to obtain the makespan over a lane pool.
 */

#ifndef FC_SIM_SCHEDULE_H
#define FC_SIM_SCHEDULE_H

#include <cstdint>
#include <vector>

#include "sim/cycles.h"

namespace fc::sim {

/**
 * Makespan of scheduling @p task_cycles onto @p lanes identical lanes
 * with the LPT greedy heuristic (tasks sorted by decreasing length,
 * each assigned to the least-loaded lane). Matches a work-stealing
 * hardware dispatcher closely for the block-size distributions that
 * partitioning produces.
 */
Cycles lptMakespan(std::vector<Cycles> task_cycles, std::size_t lanes);

/** Sum of task cycles (serial execution). */
Cycles serialLatency(const std::vector<Cycles> &task_cycles);

} // namespace fc::sim

#endif // FC_SIM_SCHEDULE_H
