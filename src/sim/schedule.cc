#include "sim/schedule.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace fc::sim {

Cycles
lptMakespan(std::vector<Cycles> task_cycles, std::size_t lanes)
{
    fc_assert(lanes > 0, "need at least one lane");
    if (task_cycles.empty())
        return 0;
    std::sort(task_cycles.begin(), task_cycles.end(),
              std::greater<Cycles>());
    // Min-heap of lane finish times.
    std::priority_queue<Cycles, std::vector<Cycles>,
                        std::greater<Cycles>>
        lanes_heap;
    for (std::size_t i = 0; i < lanes; ++i)
        lanes_heap.push(0);
    Cycles makespan = 0;
    for (const Cycles t : task_cycles) {
        Cycles lane = lanes_heap.top();
        lanes_heap.pop();
        lane += t;
        makespan = std::max(makespan, lane);
        lanes_heap.push(lane);
    }
    return makespan;
}

Cycles
serialLatency(const std::vector<Cycles> &task_cycles)
{
    Cycles total = 0;
    for (const Cycles t : task_cycles)
        total += t;
    return total;
}

} // namespace fc::sim
