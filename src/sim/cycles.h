/**
 * @file
 * Cycle/time base types for the transaction-level simulator.
 */

#ifndef FC_SIM_CYCLES_H
#define FC_SIM_CYCLES_H

#include <cstdint>

namespace fc::sim {

/** Clock cycles at the accelerator core frequency. */
using Cycles = std::uint64_t;

/** Picojoules. */
using PicoJoules = double;

/** Convert cycles at @p freq_ghz to seconds. */
inline double
cyclesToSeconds(Cycles cycles, double freq_ghz)
{
    return static_cast<double>(cycles) / (freq_ghz * 1e9);
}

/** Convert cycles at @p freq_ghz to milliseconds. */
inline double
cyclesToMs(Cycles cycles, double freq_ghz)
{
    return cyclesToSeconds(cycles, freq_ghz) * 1e3;
}

/** ceil(a / b) for positive integers. */
inline std::uint64_t
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

} // namespace fc::sim

#endif // FC_SIM_CYCLES_H
