#include "sim/riscv.h"

#include <cstring>

#include "common/logging.h"

namespace fc::sim {

namespace rv {

namespace {

Insn
rType(std::uint32_t funct7, int rs2, int rs1, std::uint32_t funct3,
      int rd, std::uint32_t opcode)
{
    return (funct7 << 25) | (static_cast<std::uint32_t>(rs2) << 20) |
           (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
           (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

Insn
iType(std::int32_t imm, int rs1, std::uint32_t funct3, int rd,
      std::uint32_t opcode)
{
    return (static_cast<std::uint32_t>(imm & 0xfff) << 20) |
           (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
           (static_cast<std::uint32_t>(rd) << 7) | opcode;
}

Insn
sType(std::int32_t imm, int rs2, int rs1, std::uint32_t funct3,
      std::uint32_t opcode)
{
    const std::uint32_t uimm = static_cast<std::uint32_t>(imm);
    return (((uimm >> 5) & 0x7f) << 25) |
           (static_cast<std::uint32_t>(rs2) << 20) |
           (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
           ((uimm & 0x1f) << 7) | opcode;
}

Insn
bType(std::int32_t imm, int rs2, int rs1, std::uint32_t funct3)
{
    const std::uint32_t uimm = static_cast<std::uint32_t>(imm);
    return (((uimm >> 12) & 1) << 31) | (((uimm >> 5) & 0x3f) << 25) |
           (static_cast<std::uint32_t>(rs2) << 20) |
           (static_cast<std::uint32_t>(rs1) << 15) | (funct3 << 12) |
           (((uimm >> 1) & 0xf) << 8) | (((uimm >> 11) & 1) << 7) |
           0x63u;
}

} // namespace

Insn addi(int rd, int rs1, std::int32_t imm)
{
    return iType(imm, rs1, 0, rd, 0x13);
}
Insn andi(int rd, int rs1, std::int32_t imm)
{
    return iType(imm, rs1, 7, rd, 0x13);
}
Insn ori(int rd, int rs1, std::int32_t imm)
{
    return iType(imm, rs1, 6, rd, 0x13);
}
Insn xori(int rd, int rs1, std::int32_t imm)
{
    return iType(imm, rs1, 4, rd, 0x13);
}
Insn slli(int rd, int rs1, int shamt)
{
    return iType(shamt & 0x1f, rs1, 1, rd, 0x13);
}
Insn srli(int rd, int rs1, int shamt)
{
    return iType(shamt & 0x1f, rs1, 5, rd, 0x13);
}
Insn add(int rd, int rs1, int rs2)
{
    return rType(0x00, rs2, rs1, 0, rd, 0x33);
}
Insn sub(int rd, int rs1, int rs2)
{
    return rType(0x20, rs2, rs1, 0, rd, 0x33);
}
Insn mul(int rd, int rs1, int rs2)
{
    return rType(0x01, rs2, rs1, 0, rd, 0x33);
}
Insn mulhu(int rd, int rs1, int rs2)
{
    return rType(0x01, rs2, rs1, 3, rd, 0x33);
}
Insn divu(int rd, int rs1, int rs2)
{
    return rType(0x01, rs2, rs1, 5, rd, 0x33);
}
Insn remu(int rd, int rs1, int rs2)
{
    return rType(0x01, rs2, rs1, 7, rd, 0x33);
}
Insn and_(int rd, int rs1, int rs2)
{
    return rType(0x00, rs2, rs1, 7, rd, 0x33);
}
Insn or_(int rd, int rs1, int rs2)
{
    return rType(0x00, rs2, rs1, 6, rd, 0x33);
}
Insn xor_(int rd, int rs1, int rs2)
{
    return rType(0x00, rs2, rs1, 4, rd, 0x33);
}
Insn slt(int rd, int rs1, int rs2)
{
    return rType(0x00, rs2, rs1, 2, rd, 0x33);
}
Insn sltu(int rd, int rs1, int rs2)
{
    return rType(0x00, rs2, rs1, 3, rd, 0x33);
}
Insn lui(int rd, std::int32_t imm20)
{
    return (static_cast<std::uint32_t>(imm20) << 12) |
           (static_cast<std::uint32_t>(rd) << 7) | 0x37u;
}
Insn auipc(int rd, std::int32_t imm20)
{
    return (static_cast<std::uint32_t>(imm20) << 12) |
           (static_cast<std::uint32_t>(rd) << 7) | 0x17u;
}
Insn lw(int rd, int rs1, std::int32_t offset)
{
    return iType(offset, rs1, 2, rd, 0x03);
}
Insn sw(int rs2, int rs1, std::int32_t offset)
{
    return sType(offset, rs2, rs1, 2, 0x23);
}
Insn beq(int rs1, int rs2, std::int32_t offset)
{
    return bType(offset, rs2, rs1, 0);
}
Insn bne(int rs1, int rs2, std::int32_t offset)
{
    return bType(offset, rs2, rs1, 1);
}
Insn blt(int rs1, int rs2, std::int32_t offset)
{
    return bType(offset, rs2, rs1, 4);
}
Insn bgeu(int rs1, int rs2, std::int32_t offset)
{
    return bType(offset, rs2, rs1, 7);
}

Insn
jal(int rd, std::int32_t offset)
{
    const std::uint32_t uimm = static_cast<std::uint32_t>(offset);
    return (((uimm >> 20) & 1) << 31) | (((uimm >> 1) & 0x3ff) << 21) |
           (((uimm >> 11) & 1) << 20) | (((uimm >> 12) & 0xff) << 12) |
           (static_cast<std::uint32_t>(rd) << 7) | 0x6fu;
}

Insn
jalr(int rd, int rs1, std::int32_t offset)
{
    return iType(offset, rs1, 0, rd, 0x67);
}

Insn ecall() { return 0x00000073u; }

std::vector<Insn>
li(int rd, std::uint32_t value)
{
    const std::int32_t lo =
        static_cast<std::int32_t>(value << 20) >> 20; // sign-extend 12
    std::uint32_t hi = (value - static_cast<std::uint32_t>(lo)) >> 12;
    std::vector<Insn> out;
    out.push_back(lui(rd, static_cast<std::int32_t>(hi)));
    out.push_back(addi(rd, rd, lo));
    return out;
}

} // namespace rv

RiscvCore::RiscvCore(std::size_t mem_bytes, std::uint32_t mmio_base)
    : memory_(mem_bytes, 0), mmioBase_(mmio_base)
{}

void
RiscvCore::loadProgram(const std::vector<rv::Insn> &program,
                       std::uint32_t base)
{
    fc_assert(base % 4 == 0, "program base must be word-aligned");
    fc_assert(base + program.size() * 4 <= memory_.size(),
              "program does not fit in memory");
    for (std::size_t i = 0; i < program.size(); ++i) {
        std::memcpy(memory_.data() + base + i * 4, &program[i], 4);
    }
    pc_ = base;
    halted_ = false;
}

std::uint32_t
RiscvCore::reg(int index) const
{
    fc_assert(index >= 0 && index < 32, "bad register x%d", index);
    return regs_[index];
}

void
RiscvCore::setReg(int index, std::uint32_t value)
{
    fc_assert(index >= 0 && index < 32, "bad register x%d", index);
    if (index != 0)
        regs_[index] = value;
}

std::uint32_t
RiscvCore::loadWord(std::uint32_t address) const
{
    fc_assert(address + 4 <= memory_.size(), "load 0x%x out of range",
              address);
    std::uint32_t value;
    std::memcpy(&value, memory_.data() + address, 4);
    return value;
}

void
RiscvCore::storeWord(std::uint32_t address, std::uint32_t value)
{
    if (address >= mmioBase_) {
        mmioWrites_.push_back({address, value});
        return;
    }
    fc_assert(address + 4 <= memory_.size(), "store 0x%x out of range",
              address);
    std::memcpy(memory_.data() + address, &value, 4);
}

std::uint64_t
RiscvCore::run(std::uint64_t max_insns)
{
    std::uint64_t retired = 0;
    while (!halted_ && retired < max_insns) {
        fc_assert(pc_ + 4 <= memory_.size(), "pc 0x%x out of range",
                  pc_);
        rv::Insn insn;
        std::memcpy(&insn, memory_.data() + pc_, 4);
        execute(insn);
        ++retired;
    }
    return retired;
}

void
RiscvCore::execute(rv::Insn insn)
{
    const std::uint32_t opcode = insn & 0x7f;
    const int rd = static_cast<int>((insn >> 7) & 0x1f);
    const int rs1 = static_cast<int>((insn >> 15) & 0x1f);
    const int rs2 = static_cast<int>((insn >> 20) & 0x1f);
    const std::uint32_t funct3 = (insn >> 12) & 0x7;
    const std::uint32_t funct7 = insn >> 25;
    const std::int32_t imm_i =
        static_cast<std::int32_t>(insn) >> 20;
    std::uint32_t next_pc = pc_ + 4;
    ++cycles_; // base CPI of 1

    auto x = [&](int r) { return regs_[r]; };
    auto set = [&](int r, std::uint32_t v) {
        if (r != 0)
            regs_[r] = v;
    };

    switch (opcode) {
      case 0x13: { // OP-IMM
        switch (funct3) {
          case 0:
            set(rd, x(rs1) + static_cast<std::uint32_t>(imm_i));
            break;
          case 1:
            set(rd, x(rs1) << (imm_i & 0x1f));
            break;
          case 2:
            set(rd, static_cast<std::int32_t>(x(rs1)) < imm_i ? 1 : 0);
            break;
          case 3:
            set(rd, x(rs1) < static_cast<std::uint32_t>(imm_i) ? 1 : 0);
            break;
          case 4:
            set(rd, x(rs1) ^ static_cast<std::uint32_t>(imm_i));
            break;
          case 5:
            if (funct7 & 0x20)
                set(rd, static_cast<std::uint32_t>(
                            static_cast<std::int32_t>(x(rs1)) >>
                            (imm_i & 0x1f)));
            else
                set(rd, x(rs1) >> (imm_i & 0x1f));
            break;
          case 6:
            set(rd, x(rs1) | static_cast<std::uint32_t>(imm_i));
            break;
          case 7:
            set(rd, x(rs1) & static_cast<std::uint32_t>(imm_i));
            break;
        }
        break;
      }
      case 0x33: { // OP
        if (funct7 == 0x01) { // M extension
            const std::uint64_t a = x(rs1), b = x(rs2);
            const std::int64_t sa =
                static_cast<std::int32_t>(x(rs1));
            const std::int64_t sb =
                static_cast<std::int32_t>(x(rs2));
            cycles_ += funct3 >= 4 ? 16 : 2; // div slower than mul
            switch (funct3) {
              case 0:
                set(rd, static_cast<std::uint32_t>(a * b));
                break;
              case 1:
                set(rd, static_cast<std::uint32_t>(
                            static_cast<std::uint64_t>(sa * sb) >> 32));
                break;
              case 2:
                set(rd, static_cast<std::uint32_t>(
                            static_cast<std::uint64_t>(
                                sa * static_cast<std::int64_t>(b)) >>
                            32));
                break;
              case 3:
                set(rd, static_cast<std::uint32_t>((a * b) >> 32));
                break;
              case 4:
                set(rd, sb == 0
                            ? 0xffffffffu
                            : static_cast<std::uint32_t>(sa / sb));
                break;
              case 5:
                set(rd, b == 0 ? 0xffffffffu
                               : static_cast<std::uint32_t>(a / b));
                break;
              case 6:
                set(rd, sb == 0 ? static_cast<std::uint32_t>(sa)
                                : static_cast<std::uint32_t>(sa % sb));
                break;
              case 7:
                set(rd, b == 0 ? static_cast<std::uint32_t>(a)
                               : static_cast<std::uint32_t>(a % b));
                break;
            }
        } else {
            switch (funct3) {
              case 0:
                set(rd, funct7 & 0x20 ? x(rs1) - x(rs2)
                                      : x(rs1) + x(rs2));
                break;
              case 1:
                set(rd, x(rs1) << (x(rs2) & 0x1f));
                break;
              case 2:
                set(rd, static_cast<std::int32_t>(x(rs1)) <
                                static_cast<std::int32_t>(x(rs2))
                            ? 1
                            : 0);
                break;
              case 3:
                set(rd, x(rs1) < x(rs2) ? 1 : 0);
                break;
              case 4:
                set(rd, x(rs1) ^ x(rs2));
                break;
              case 5:
                if (funct7 & 0x20)
                    set(rd, static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(x(rs1)) >>
                                (x(rs2) & 0x1f)));
                else
                    set(rd, x(rs1) >> (x(rs2) & 0x1f));
                break;
              case 6:
                set(rd, x(rs1) | x(rs2));
                break;
              case 7:
                set(rd, x(rs1) & x(rs2));
                break;
            }
        }
        break;
      }
      case 0x37: // LUI
        set(rd, insn & 0xfffff000u);
        break;
      case 0x17: // AUIPC
        set(rd, pc_ + (insn & 0xfffff000u));
        break;
      case 0x03: { // LOAD (lw only in our programs)
        fc_assert(funct3 == 2, "only lw supported (funct3=%u)", funct3);
        const std::uint32_t addr =
            x(rs1) + static_cast<std::uint32_t>(imm_i);
        set(rd, loadWord(addr));
        cycles_ += 1; // memory access
        break;
      }
      case 0x23: { // STORE (sw only)
        fc_assert(funct3 == 2, "only sw supported (funct3=%u)", funct3);
        const std::int32_t imm_s = static_cast<std::int32_t>(
            ((insn >> 25) << 5) | ((insn >> 7) & 0x1f));
        const std::int32_t simm =
            (imm_s << 20) >> 20; // sign-extend 12 bits
        const std::uint32_t addr =
            x(rs1) + static_cast<std::uint32_t>(simm);
        storeWord(addr, x(rs2));
        cycles_ += 1;
        break;
      }
      case 0x63: { // BRANCH
        const std::uint32_t uimm =
            (((insn >> 31) & 1) << 12) | (((insn >> 7) & 1) << 11) |
            (((insn >> 25) & 0x3f) << 5) | (((insn >> 8) & 0xf) << 1);
        const std::int32_t offset =
            (static_cast<std::int32_t>(uimm << 19)) >> 19;
        bool taken = false;
        switch (funct3) {
          case 0:
            taken = x(rs1) == x(rs2);
            break;
          case 1:
            taken = x(rs1) != x(rs2);
            break;
          case 4:
            taken = static_cast<std::int32_t>(x(rs1)) <
                    static_cast<std::int32_t>(x(rs2));
            break;
          case 5:
            taken = static_cast<std::int32_t>(x(rs1)) >=
                    static_cast<std::int32_t>(x(rs2));
            break;
          case 6:
            taken = x(rs1) < x(rs2);
            break;
          case 7:
            taken = x(rs1) >= x(rs2);
            break;
          default:
            fc_panic("bad branch funct3 %u", funct3);
        }
        if (taken) {
            next_pc = pc_ + static_cast<std::uint32_t>(offset);
            cycles_ += 2; // pipeline flush
        }
        break;
      }
      case 0x6f: { // JAL
        const std::uint32_t uimm =
            (((insn >> 31) & 1) << 20) | (((insn >> 12) & 0xff) << 12) |
            (((insn >> 20) & 1) << 11) | (((insn >> 21) & 0x3ff) << 1);
        const std::int32_t offset =
            (static_cast<std::int32_t>(uimm << 11)) >> 11;
        set(rd, pc_ + 4);
        next_pc = pc_ + static_cast<std::uint32_t>(offset);
        cycles_ += 2;
        break;
      }
      case 0x67: { // JALR
        const std::uint32_t target =
            (x(rs1) + static_cast<std::uint32_t>(imm_i)) & ~1u;
        set(rd, pc_ + 4);
        next_pc = target;
        cycles_ += 2;
        break;
      }
      case 0x73: // SYSTEM: ecall halts
        halted_ = true;
        break;
      default:
        fc_panic("unsupported opcode 0x%02x at pc 0x%x", opcode, pc_);
    }
    pc_ = next_pc;
}

} // namespace fc::sim
