/**
 * @file
 * Lightweight statistics counters for the simulator and library.
 *
 * A StatGroup is a named bag of scalar counters and distributions; the
 * simulator components own one each and the report code renders them.
 */

#ifndef FC_COMMON_STATS_H
#define FC_COMMON_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fc {

/** A scalar accumulating counter. */
class Counter
{
  public:
    void operator+=(double v) { value_ += v; }
    void operator++() { value_ += 1.0; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Streaming distribution: count / sum / min / max / mean / stddev
 * without storing samples.
 */
class Distribution
{
  public:
    void
    sample(double v)
    {
        ++count_;
        sum_ += v;
        sumSq_ += v * v;
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    double
    stddev() const
    {
        if (count_ < 2)
            return 0.0;
        const double m = mean();
        const double var =
            std::max(0.0, sumSq_ / count_ - m * m);
        return std::sqrt(var);
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = sumSq_ = 0.0;
        min_ = 1e300;
        max_ = -1e300;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 1e300;
    double max_ = -1e300;
};

/** Named collection of counters, for component-level bookkeeping. */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    Counter &counter(const std::string &key) { return counters_[key]; }
    Distribution &dist(const std::string &key) { return dists_[key]; }

    double
    counterValue(const std::string &key) const
    {
        const auto it = counters_.find(key);
        return it == counters_.end() ? 0.0 : it->second.value();
    }

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Distribution> &dists() const
    {
        return dists_;
    }
    const std::string &name() const { return name_; }

    void
    reset()
    {
        for (auto &kv : counters_)
            kv.second.reset();
        for (auto &kv : dists_)
            kv.second.reset();
    }

  private:
    std::string name_;
    std::map<std::string, Counter> counters_;
    std::map<std::string, Distribution> dists_;
};

} // namespace fc

#endif // FC_COMMON_STATS_H
