/**
 * @file
 * Fundamental geometric types shared across the FractalCloud library.
 */

#ifndef FC_COMMON_TYPES_H
#define FC_COMMON_TYPES_H

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <ostream>

namespace fc {

/** Index of a point inside a point cloud. */
using PointIdx = std::uint32_t;

/** Sentinel for "no point". */
inline constexpr PointIdx kInvalidPoint =
    std::numeric_limits<PointIdx>::max();

/**
 * A 3-component single-precision vector.
 *
 * Used for both spatial coordinates and generic 3D arithmetic. Kept
 * deliberately small (12 bytes, trivially copyable) so point clouds can
 * store millions of them contiguously.
 */
struct Vec3
{
    float x = 0.0f;
    float y = 0.0f;
    float z = 0.0f;

    constexpr Vec3() = default;
    constexpr Vec3(float xx, float yy, float zz) : x(xx), y(yy), z(zz) {}

    constexpr float operator[](int dim) const
    {
        return dim == 0 ? x : (dim == 1 ? y : z);
    }

    float &
    at(int dim)
    {
        return dim == 0 ? x : (dim == 1 ? y : z);
    }

    constexpr Vec3
    operator+(const Vec3 &o) const
    {
        return {x + o.x, y + o.y, z + o.z};
    }

    constexpr Vec3
    operator-(const Vec3 &o) const
    {
        return {x - o.x, y - o.y, z - o.z};
    }

    constexpr Vec3
    operator*(float s) const
    {
        return {x * s, y * s, z * s};
    }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    constexpr bool
    operator==(const Vec3 &o) const
    {
        return x == o.x && y == o.y && z == o.z;
    }

    /** Squared Euclidean norm. */
    constexpr float norm2() const { return x * x + y * y + z * z; }

    /** Euclidean norm. */
    float norm() const { return std::sqrt(norm2()); }
};

/** Squared Euclidean distance between two points. */
constexpr float
distance2(const Vec3 &a, const Vec3 &b)
{
    const float dx = a.x - b.x;
    const float dy = a.y - b.y;
    const float dz = a.z - b.z;
    return dx * dx + dy * dy + dz * dz;
}

/** Euclidean distance between two points. */
inline float
distance(const Vec3 &a, const Vec3 &b)
{
    return std::sqrt(distance2(a, b));
}

inline std::ostream &
operator<<(std::ostream &os, const Vec3 &v)
{
    return os << "(" << v.x << ", " << v.y << ", " << v.z << ")";
}

/**
 * Axis-aligned bounding box.
 *
 * The empty box is represented with +inf/-inf extrema so that extending
 * by any point yields a valid box.
 */
struct Aabb
{
    Vec3 lo{std::numeric_limits<float>::infinity(),
            std::numeric_limits<float>::infinity(),
            std::numeric_limits<float>::infinity()};
    Vec3 hi{-std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity(),
            -std::numeric_limits<float>::infinity()};

    bool empty() const { return lo.x > hi.x; }

    void
    extend(const Vec3 &p)
    {
        lo.x = std::min(lo.x, p.x);
        lo.y = std::min(lo.y, p.y);
        lo.z = std::min(lo.z, p.z);
        hi.x = std::max(hi.x, p.x);
        hi.y = std::max(hi.y, p.y);
        hi.z = std::max(hi.z, p.z);
    }

    void
    extend(const Aabb &o)
    {
        if (o.empty())
            return;
        extend(o.lo);
        extend(o.hi);
    }

    bool
    contains(const Vec3 &p) const
    {
        return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y &&
               p.z >= lo.z && p.z <= hi.z;
    }

    Vec3
    center() const
    {
        return {(lo.x + hi.x) * 0.5f, (lo.y + hi.y) * 0.5f,
                (lo.z + hi.z) * 0.5f};
    }

    Vec3 extent() const { return hi - lo; }

    /**
     * Midpoint of one axis: (max+min)/2, the Fractal split value.
     * Halve-then-add: the naive sum overflows to inf for spans
     * beyond FLT_MAX (identical rounding for normal floats, since
     * halving just steps the exponent).
     */
    float
    midpoint(int dim) const
    {
        return lo[dim] * 0.5f + hi[dim] * 0.5f;
    }

    /** Longest axis index (0=x, 1=y, 2=z). */
    int
    longestAxis() const
    {
        const Vec3 e = extent();
        if (e.x >= e.y && e.x >= e.z)
            return 0;
        return e.y >= e.z ? 1 : 2;
    }
};

} // namespace fc

#endif // FC_COMMON_TYPES_H
