#include "common/table.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace fc {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    fc_assert(!header_.empty(), "table requires at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    fc_assert(cells.size() == header_.size(),
              "row arity %zu != header arity %zu", cells.size(),
              header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream os;
    auto emit_sep = [&] {
        os << '+';
        for (std::size_t c = 0; c < widths.size(); ++c) {
            for (std::size_t i = 0; i < widths[c] + 2; ++i)
                os << '-';
            os << '+';
        }
        os << '\n';
    };
    auto emit_row = [&](const std::vector<std::string> &row) {
        os << '|';
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << ' ' << row[c];
            for (std::size_t i = row[c].size(); i < widths[c] + 1; ++i)
                os << ' ';
            os << '|';
        }
        os << '\n';
    };

    emit_sep();
    emit_row(header_);
    emit_sep();
    for (const auto &row : rows_)
        emit_row(row);
    emit_sep();
    return os.str();
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

std::string
Table::renderCsv() const
{
    std::ostringstream os;
    for (std::size_t c = 0; c < header_.size(); ++c)
        os << (c ? "," : "") << csvEscape(header_[c]);
    os << '\n';
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << (c ? "," : "") << csvEscape(row[c]);
        os << '\n';
    }
    return os.str();
}

bool
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << renderCsv();
    return static_cast<bool>(out);
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::mult(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*fx", precision, v);
    return buf;
}

} // namespace fc
