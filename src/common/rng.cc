#include "common/rng.h"

#include <cmath>

namespace fc {

float
Pcg32::normal()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    // Box-Muller transform on two uniforms in (0, 1].
    float u1;
    do {
        u1 = uniform();
    } while (u1 <= 1e-12f);
    const float u2 = uniform();
    const float mag = std::sqrt(-2.0f * std::log(u1));
    const float two_pi = 6.28318530717958647692f;
    spare_ = mag * std::sin(two_pi * u2);
    hasSpare_ = true;
    return mag * std::cos(two_pi * u2);
}

} // namespace fc
