/**
 * @file
 * Counting replacements for the global allocation operators.
 *
 * Including this header REPLACES the program's global operator
 * new/delete family (all of it: array, sized, aligned, and nothrow
 * forms) with malloc/posix_memalign-backed versions that bump one
 * atomic counter, read via fc::heapAllocCount(). The workspace
 * steady-state test (tests/test_workspace.cc) and the memory-churn
 * bench (bench/bench_memory_churn.cc) both measure allocation deltas
 * with it; keeping the hook in one header keeps their counting rules
 * from drifting (e.g. an allocation moving onto the aligned path
 * must be seen by both binaries).
 *
 * Include from exactly ONE translation unit per binary — the
 * definitions are deliberately non-inline so a second inclusion
 * fails the link instead of silently double-counting. Never include
 * from library code.
 */

#ifndef FC_COMMON_ALLOC_HOOK_H
#define FC_COMMON_ALLOC_HOOK_H

#include <cstdlib>
#include <new>

// The counter itself (and fc::heapAllocCount()) lives in
// common/alloc_count.h so reader-only TUs can include it without
// pulling in the operator replacements below.
#include "common/alloc_count.h"

namespace fc {
namespace detail {

inline void *
countedAlloc(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size == 0 ? 1 : size);
}

inline void *
countedAlignedAlloc(std::size_t size, std::size_t align)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    void *p = nullptr;
    if (posix_memalign(&p,
                       align < sizeof(void *) ? sizeof(void *) : align,
                       size == 0 ? align : size) != 0)
        return nullptr;
    return p;
}

} // namespace detail
} // namespace fc

// The replaced operators pair malloc/posix_memalign with free by
// construction; the compiler cannot see that pairing across the
// replacement boundary and would flag free() on new'ed pointers.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t size)
{
    void *p = fc::detail::countedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    void *p = fc::detail::countedAlloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return fc::detail::countedAlloc(size);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return fc::detail::countedAlloc(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = fc::detail::countedAlignedAlloc(
        size, static_cast<std::size_t>(align));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    void *p = fc::detail::countedAlignedAlloc(
        size, static_cast<std::size_t>(align));
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}
void
operator delete[](void *p) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

#endif // FC_COMMON_ALLOC_HOOK_H
