/**
 * @file
 * Deterministic PCG32 random number generator.
 *
 * Every stochastic component in the library (dataset synthesis, FPS
 * seeding, weight initialization) draws from a seeded Pcg32 so that
 * tests and benches are reproducible bit-for-bit across runs and
 * platforms, independent of libstdc++'s distribution implementations.
 */

#ifndef FC_COMMON_RNG_H
#define FC_COMMON_RNG_H

#include <cstdint>

namespace fc {

/**
 * PCG-XSH-RR 64/32 generator (O'Neill, 2014).
 */
class Pcg32
{
  public:
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        state_ = 0u;
        inc_ = (stream << 1u) | 1u;
        next();
        state_ += seed;
        next();
    }

    /** Next uniform 32-bit value. */
    std::uint32_t
    next()
    {
        const std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        const std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        const std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Uniform float in [0, 1). */
    float
    uniform()
    {
        return static_cast<float>(next() >> 8) * (1.0f / 16777216.0f);
    }

    /** Uniform float in [lo, hi). */
    float
    uniform(float lo, float hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint32_t
    bounded(std::uint32_t bound)
    {
        if (bound == 0)
            return 0;
        const std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            const std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /**
     * Standard normal variate (Box-Muller, one value per call; the
     * second value is cached).
     */
    float normal();

    /** Normal variate with given mean and standard deviation. */
    float
    normal(float mean, float stddev)
    {
        return mean + stddev * normal();
    }

  private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
    bool hasSpare_ = false;
    float spare_ = 0.0f;
};

} // namespace fc

#endif // FC_COMMON_RNG_H
