/**
 * @file
 * IEEE 754 binary16 (half precision) emulation.
 *
 * FractalCloud computes in 16-bit half-precision floating point "to
 * align with all SOTA works and preserve network accuracy" (paper
 * §VI-A). The simulator and the NN substrate store activations and
 * weights as fp16 and compute in fp32, matching typical fp16 MAC
 * hardware with fp32 accumulation.
 */

#ifndef FC_COMMON_FP16_H
#define FC_COMMON_FP16_H

#include <cstdint>
#include <cstring>

namespace fc {

/** Convert a single-precision float to its binary16 bit pattern. */
std::uint16_t fp32ToFp16Bits(float value);

/** Convert a binary16 bit pattern to single precision. */
float fp16BitsToFp32(std::uint16_t bits);

/**
 * Half-precision storage type.
 *
 * Arithmetic promotes to float; assignment rounds to nearest-even
 * binary16, which models the precision loss of the hardware datapath.
 */
class Fp16
{
  public:
    Fp16() = default;
    Fp16(float value) : bits_(fp32ToFp16Bits(value)) {}

    operator float() const { return fp16BitsToFp32(bits_); }

    Fp16 &
    operator=(float value)
    {
        bits_ = fp32ToFp16Bits(value);
        return *this;
    }

    std::uint16_t bits() const { return bits_; }

    static Fp16
    fromBits(std::uint16_t bits)
    {
        Fp16 h;
        h.bits_ = bits;
        return h;
    }

  private:
    std::uint16_t bits_ = 0;
};

/** Round a float through binary16 precision (round-to-nearest-even). */
inline float
fp16Round(float value)
{
    return fp16BitsToFp32(fp32ToFp16Bits(value));
}

} // namespace fc

#endif // FC_COMMON_FP16_H
