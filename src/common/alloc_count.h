/**
 * @file
 * The shared allocation counter behind common/alloc_hook.h.
 *
 * alloc_hook.h replaces the global operator new/delete family and may
 * be included from exactly ONE translation unit per binary (its
 * operator definitions are deliberately non-inline). Tests in the
 * same binary that only want to READ the counter include this header
 * instead: fc::heapAllocCount() and the inline counter variable are
 * shared across TUs, so a reader TU observes the hook TU's counts
 * without redefining the operators. In a binary without the hook TU
 * the counter simply stays at zero.
 */

#ifndef FC_COMMON_ALLOC_COUNT_H
#define FC_COMMON_ALLOC_COUNT_H

#include <atomic>
#include <cstdint>

namespace fc {

namespace detail {
inline std::atomic<std::uint64_t> g_heap_allocs{0};
} // namespace detail

/** Allocations observed so far (monotonic; read deltas). */
inline std::uint64_t
heapAllocCount()
{
    return detail::g_heap_allocs.load(std::memory_order_relaxed);
}

} // namespace fc

#endif // FC_COMMON_ALLOC_COUNT_H
