/**
 * @file
 * ASCII table and CSV rendering used by the bench harness to print the
 * paper's tables and figures as aligned text.
 */

#ifndef FC_COMMON_TABLE_H
#define FC_COMMON_TABLE_H

#include <string>
#include <vector>

namespace fc {

/**
 * Column-aligned ASCII table.
 *
 * Usage:
 * @code
 *   Table t({"workload", "speedup", "energy"});
 *   t.addRow({"PN++ (c) 1K", "6.8", "66"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Render with box-drawing separators. */
    std::string render() const;

    /** Render as CSV (RFC-4180 quoting for commas/quotes). */
    std::string renderCsv() const;

    /** Write the CSV rendering to a file; returns success. */
    bool writeCsv(const std::string &path) const;

    std::size_t rowCount() const { return rows_.size(); }

    /** Format helper: fixed-precision float to string. */
    static std::string num(double v, int precision = 2);

    /** Format helper: "12.3x" style multiplier. */
    static std::string mult(double v, int precision = 1);

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fc

#endif // FC_COMMON_TABLE_H
