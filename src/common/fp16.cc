#include "common/fp16.h"

#include <bit>

namespace fc {

std::uint16_t
fp32ToFp16Bits(float value)
{
    const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
    const std::uint32_t sign = (f >> 16) & 0x8000u;
    std::int32_t exponent =
        static_cast<std::int32_t>((f >> 23) & 0xffu) - 127 + 15;
    std::uint32_t mantissa = f & 0x7fffffu;

    if (((f >> 23) & 0xffu) == 0xffu) {
        // Inf / NaN: keep a quiet-NaN payload bit if any mantissa bit set.
        return static_cast<std::uint16_t>(
            sign | 0x7c00u | (mantissa ? 0x200u : 0u));
    }

    if (exponent >= 0x1f) {
        // Overflow to infinity.
        return static_cast<std::uint16_t>(sign | 0x7c00u);
    }

    if (exponent <= 0) {
        if (exponent < -10) {
            // Underflows to signed zero.
            return static_cast<std::uint16_t>(sign);
        }
        // Subnormal: shift mantissa (with implicit leading 1) right.
        mantissa |= 0x800000u;
        const int shift = 14 - exponent;
        std::uint32_t sub = mantissa >> shift;
        // Round to nearest even.
        const std::uint32_t rem = mantissa & ((1u << shift) - 1u);
        const std::uint32_t half = 1u << (shift - 1);
        if (rem > half || (rem == half && (sub & 1u)))
            ++sub;
        return static_cast<std::uint16_t>(sign | sub);
    }

    // Normal number: round mantissa from 23 to 10 bits, nearest even.
    std::uint32_t out = sign |
        (static_cast<std::uint32_t>(exponent) << 10) | (mantissa >> 13);
    const std::uint32_t rem = mantissa & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (out & 1u)))
        ++out; // Carry may roll into the exponent; that is correct.
    return static_cast<std::uint16_t>(out);
}

float
fp16BitsToFp32(std::uint16_t bits)
{
    const std::uint32_t sign = static_cast<std::uint32_t>(bits & 0x8000u)
                               << 16;
    const std::uint32_t exponent = (bits >> 10) & 0x1fu;
    std::uint32_t mantissa = bits & 0x3ffu;

    std::uint32_t f;
    if (exponent == 0) {
        if (mantissa == 0) {
            f = sign; // Signed zero.
        } else {
            // Subnormal: normalize.
            int e = -1;
            std::uint32_t m = mantissa;
            do {
                ++e;
                m <<= 1;
            } while ((m & 0x400u) == 0);
            f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
                ((m & 0x3ffu) << 13);
        }
    } else if (exponent == 0x1f) {
        f = sign | 0x7f800000u | (mantissa << 13);
    } else {
        f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
    }
    return std::bit_cast<float>(f);
}

} // namespace fc
