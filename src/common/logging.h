/**
 * @file
 * Status / error reporting helpers in the gem5 tradition.
 *
 * - panic():  an internal invariant was violated (library bug); aborts.
 * - fatal():  the caller supplied an impossible configuration; exits.
 * - warn():   something works but is suspicious.
 * - inform(): progress messages.
 */

#ifndef FC_COMMON_LOGGING_H
#define FC_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace fc {

/** Verbosity levels for inform(). */
enum class LogLevel { Silent = 0, Normal = 1, Verbose = 2 };

/** Global log level; benches set Silent to keep tables clean. */
LogLevel &logLevel();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg, LogLevel level);

std::string formatMessage(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace fc

/** Abort with message: internal invariant violated. */
#define fc_panic(...)                                                      \
    ::fc::detail::panicImpl(__FILE__, __LINE__,                            \
                            ::fc::detail::formatMessage(__VA_ARGS__))

/** Exit with message: unusable user configuration. */
#define fc_fatal(...)                                                      \
    ::fc::detail::fatalImpl(::fc::detail::formatMessage(__VA_ARGS__))

/** Non-fatal warning. */
#define fc_warn(...)                                                       \
    ::fc::detail::warnImpl(::fc::detail::formatMessage(__VA_ARGS__))

/** Progress message (respects fc::logLevel()). */
#define fc_inform(...)                                                     \
    ::fc::detail::informImpl(::fc::detail::formatMessage(__VA_ARGS__),     \
                             ::fc::LogLevel::Normal)

/** Assert an invariant with a formatted message. */
#define fc_assert(cond, ...)                                               \
    do {                                                                   \
        if (!(cond))                                                       \
            fc_panic("assertion '%s' failed: %s", #cond,                   \
                     ::fc::detail::formatMessage(__VA_ARGS__).c_str());    \
    } while (0)

#endif // FC_COMMON_LOGGING_H
