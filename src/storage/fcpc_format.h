/**
 * @file
 * On-disk layout of the FractalCloud point-cloud container (.fcpc).
 *
 * Design goal (ROADMAP direction 3, "Joint Optimization of Storage
 * and Loading"): the file layout IS the in-memory layout, so loading
 * a block is pointer binding, not parsing. A PointCloud keeps two
 * coordinate views — AoS Vec3 for random access and the SoA x/y/z
 * mirror for the core::simd kernels — and a transposition at load
 * time would be a per-point pass, so the container stores BOTH,
 * trading ~1.27x coordinate bytes for a zero-work load. Features are
 * row-major [n x feature_dim] and labels are plain int32, exactly as
 * PointCloud owns them.
 *
 * File layout (all integers little-endian, all offsets absolute file
 * offsets, every section 64-byte aligned to match core::Arena's
 * cache-line alignment):
 *
 *   FileHeader                              (64 bytes)
 *   block 0 sections: coords | x | y | z | [features] | [labels]
 *   block 1 sections: ...
 *   ...
 *   BlockDesc[block_count]                  (the index)
 *
 * The index lives at the END so the writer can stream blocks without
 * buffering the dataset; the header (rewritten last) points at it.
 * Every section and the index carry an FNV-1a 64 checksum, so a
 * truncated or bit-flipped file is detected before any pointer into
 * the mapping escapes the reader.
 *
 * Versioning: kMagic + kVersion gate the reader; any layout change
 * bumps kVersion. Readers reject newer versions instead of guessing.
 */

#ifndef FC_STORAGE_FCPC_FORMAT_H
#define FC_STORAGE_FCPC_FORMAT_H

#include <cstddef>
#include <cstdint>

namespace fc::storage {

/** "FCPC" in the file's first four bytes. */
inline constexpr std::uint32_t kFcpcMagic = 0x43504346u; // 'F''C''P''C' LE

/** Current container version. */
inline constexpr std::uint32_t kFcpcVersion = 1;

/** Written as 0x01020304 by a little-endian writer; a reader seeing
 *  any other value is on a foreign-endian host and must refuse the
 *  zero-copy path. */
inline constexpr std::uint32_t kFcpcEndianTag = 0x01020304u;

/** Section alignment: every column starts on a 64-byte boundary
 *  (cache line; also satisfies any SIMD load the kernels use). */
inline constexpr std::size_t kFcpcAlign = 64;

/** Fixed 64-byte file header at offset 0. */
struct FcpcFileHeader
{
    std::uint32_t magic;        ///< kFcpcMagic
    std::uint32_t version;      ///< kFcpcVersion
    std::uint32_t endian_tag;   ///< kFcpcEndianTag
    std::uint32_t header_bytes; ///< sizeof(FcpcFileHeader)
    std::uint64_t block_count;  ///< number of BlockDesc entries
    std::uint64_t index_offset; ///< offset of BlockDesc[block_count]
    std::uint64_t file_bytes;   ///< total file size (truncation gate)
    std::uint64_t index_checksum; ///< FNV-1a 64 of the index bytes
    std::uint8_t reserved[16];  ///< zero; future use
};
static_assert(sizeof(FcpcFileHeader) == 64,
              "header must stay exactly one cache line");

/** One block (one PointCloud) in the index. Offsets are absolute and
 *  64-byte aligned; features_offset/labels_offset are 0 when the
 *  block has no features/labels. */
struct FcpcBlockDesc
{
    std::uint64_t placement_key; ///< consistent-hash key (ShardMap)
    std::uint64_t num_points;
    std::uint32_t feature_dim; ///< 0 = no feature section
    std::uint32_t has_labels;  ///< 0/1 = label section absent/present
    std::uint64_t coords_offset;   ///< AoS Vec3[num_points]
    std::uint64_t x_offset;        ///< float[num_points] (SoA column)
    std::uint64_t y_offset;        ///< float[num_points]
    std::uint64_t z_offset;        ///< float[num_points]
    std::uint64_t features_offset; ///< float[num_points*feature_dim]
    std::uint64_t labels_offset;   ///< int32[num_points]
    std::uint64_t coords_checksum;
    std::uint64_t x_checksum;
    std::uint64_t y_checksum;
    std::uint64_t z_checksum;
    std::uint64_t features_checksum;
    std::uint64_t labels_checksum;
    std::uint64_t reserved; ///< zero; future use
};
static_assert(sizeof(FcpcBlockDesc) == 128,
              "index entries are two cache lines each");

/** FNV-1a 64 over a byte range — tiny, dependency-free, and fast
 *  enough that the validation pass doubles as the page-touch that
 *  warms the mapping. */
inline std::uint64_t
fnv1a64(const void *data, std::size_t bytes,
        std::uint64_t seed = 0xcbf29ce484222325ull)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

/** Round @p offset up to the section alignment. */
inline std::uint64_t
alignUp(std::uint64_t offset)
{
    return (offset + (kFcpcAlign - 1)) & ~static_cast<std::uint64_t>(
                                             kFcpcAlign - 1);
}

} // namespace fc::storage

#endif // FC_STORAGE_FCPC_FORMAT_H
