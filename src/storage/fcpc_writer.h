/**
 * @file
 * Streaming .fcpc writer: open → append blocks → finish.
 *
 * Blocks are written as they arrive (no dataset-sized buffering); the
 * index and the final header land in finish(). Each appended cloud
 * becomes one block whose sections mirror PointCloud's in-memory
 * layout (see fcpc_format.h), so the reader can bind pointers into
 * the mapping instead of decoding.
 */

#ifndef FC_STORAGE_FCPC_WRITER_H
#define FC_STORAGE_FCPC_WRITER_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "dataset/point_cloud.h"
#include "storage/fcpc_format.h"

namespace fc::storage {

/**
 * Writes one .fcpc file. Not thread-safe; one writer per file.
 *
 * Usage:
 *   FcpcWriter w;
 *   if (!w.open(path)) ...;
 *   w.append(cloud_a, key_a);
 *   w.append(cloud_b, key_b);
 *   if (!w.finish()) ...;
 */
class FcpcWriter
{
  public:
    FcpcWriter() = default;
    ~FcpcWriter();

    FcpcWriter(const FcpcWriter &) = delete;
    FcpcWriter &operator=(const FcpcWriter &) = delete;

    /** Create/truncate @p path and write the header placeholder.
     *  @return false on I/O failure. */
    bool open(const std::string &path);

    /**
     * Append one cloud as the next block.
     *
     * @param placement_key consistent-hash key stored in the index;
     *        0 derives a deterministic per-file key from the block
     *        ordinal (ShardMap::mix), so every file has a usable
     *        keyspace even when the producer doesn't care.
     * @return false on I/O failure (the writer is then dead).
     */
    bool append(const data::PointCloud &cloud,
                std::uint64_t placement_key = 0);

    /** Write the index + final header and close. @return false on
     *  I/O failure; the file is only valid after finish() succeeds. */
    bool finish();

    /** Blocks appended so far. */
    std::size_t blockCount() const { return index_.size(); }

  private:
    /** Write @p bytes at the current (aligned) position, recording
     *  offset and checksum into @p offset / @p checksum. */
    bool writeSection(const void *data, std::size_t bytes,
                      std::uint64_t &offset, std::uint64_t &checksum);

    /** Pad the stream to the next kFcpcAlign boundary. */
    bool padToAlignment();

    std::ofstream out_;
    std::uint64_t pos_ = 0;
    std::vector<FcpcBlockDesc> index_;
    bool open_ = false;
    bool failed_ = false;
};

/**
 * One-call convenience: write @p clouds (one block each, index-derived
 * placement keys) to @p path. @return false on any I/O failure.
 */
bool writeFcpc(const std::vector<data::PointCloud> &clouds,
               const std::string &path);

} // namespace fc::storage

#endif // FC_STORAGE_FCPC_WRITER_H
