#include "storage/convert.h"

#include "dataset/io.h"
#include "storage/fcpc_writer.h"

namespace fc::storage {

namespace {

bool
writeSingle(const data::PointCloud &cloud, const std::string &path,
            std::uint64_t placement_key)
{
    FcpcWriter writer;
    return writer.open(path) &&
           writer.append(cloud, placement_key) && writer.finish();
}

} // namespace

bool
convertXyzToFcpc(const std::string &xyz_path,
                 const std::string &fcpc_path,
                 core::ThreadPool *pool, std::uint64_t placement_key)
{
    data::PointCloud cloud;
    if (!data::loadXyz(cloud, xyz_path, pool))
        return false;
    return writeSingle(cloud, fcpc_path, placement_key);
}

bool
convertPlyToFcpc(const std::string &ply_path,
                 const std::string &fcpc_path,
                 core::ThreadPool *pool, std::uint64_t placement_key)
{
    data::PointCloud cloud;
    if (!data::loadPly(cloud, ply_path, pool))
        return false;
    return writeSingle(cloud, fcpc_path, placement_key);
}

} // namespace fc::storage
