/**
 * @file
 * Read-ahead ring over an FcpcReader: overlap disk latency with
 * compute.
 *
 * A BlockPrefetcher keeps up to `depth` blocks ahead of the consumer
 * in flight on a ThreadPool. "Reading ahead" an mmap'd block means
 * running its checksum validation on a pool thread — that pass
 * faults every page of the block's sections into the page cache, so
 * by the time the consumer calls get() the zero-copy bind touches
 * only warm memory. The ring is keyed by block ordinal; each block
 * also carries its consistent-hash placement key (core::ShardMap),
 * so the serving layer can land a prefetched block on the shard that
 * will serve it (see serve/ingest.h).
 *
 * depth = 0 (or a null pool) degrades to a synchronous reader —
 * the prefetch-off reference the equality tests compare against.
 *
 * Thread-safety: one consumer thread calls get(); hint() may be
 * called from anywhere. Internal state is mutex-protected; the
 * destructor drains in-flight reads before returning (the pool must
 * outlive the prefetcher).
 */

#ifndef FC_STORAGE_PREFETCH_H
#define FC_STORAGE_PREFETCH_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/sharded_executor.h"
#include "dataset/point_cloud.h"
#include "storage/fcpc_reader.h"

namespace fc::storage {

/** Configuration of a BlockPrefetcher. */
struct PrefetchOptions
{
    /** Blocks kept in flight ahead of the consumer; 0 = synchronous
     *  (no read-ahead, the prefetch-off reference mode). */
    std::size_t depth = 4;

    /** Pool the read-ahead work runs on (a standalone pool, or any
     *  pool with idle capacity); null = synchronous. Must outlive
     *  the prefetcher. */
    core::ThreadPool *pool = nullptr;

    /** Shard count of the consumer's ShardMap keyspace; shardFor()
     *  maps a block's placement key through it. */
    unsigned num_shards = 1;

    /** How get() materializes clouds. */
    ReadMode mode = ReadMode::ZeroCopy;
};

/** Prefetch telemetry counters (racy snapshots, telemetry only). */
struct PrefetchStats
{
    std::size_t hits = 0;     ///< get() found the block ready
    std::size_t waits = 0;    ///< get() waited on an in-flight read
    std::size_t misses = 0;   ///< get() had to read synchronously
    std::size_t scheduled = 0; ///< read-ahead tasks launched
};

/**
 * Sequential-consumer read-ahead over one open FcpcReader.
 */
class BlockPrefetcher
{
  public:
    explicit BlockPrefetcher(std::shared_ptr<FcpcReader> reader,
                             const PrefetchOptions &options = {});
    ~BlockPrefetcher();

    BlockPrefetcher(const BlockPrefetcher &) = delete;
    BlockPrefetcher &operator=(const BlockPrefetcher &) = delete;

    /**
     * Materialize block @p block into @p out; schedules read-ahead
     * of the next `depth` blocks before (possibly) waiting, so the
     * disk stays busy while the caller computes.
     */
    FcpcStatus get(std::size_t block, data::PointCloud &out);

    /** Schedule @p block (and nothing else) without waiting. */
    void hint(std::size_t block);

    /** Shard (under options.num_shards) that block @p block's
     *  placement key consistently hashes to. */
    unsigned shardFor(std::size_t block) const;

    /** Placement key of @p block (from the file's index). */
    std::uint64_t
    placementKey(std::size_t block) const
    {
        return reader_->placementKey(block);
    }

    std::size_t blockCount() const { return reader_->blockCount(); }

    PrefetchStats stats() const;

  private:
    struct Slot
    {
        bool ready = false;
        FcpcStatus status = FcpcStatus::Ok;
        data::PointCloud cloud;
    };

    /** Launch an async read of @p block if absent (caller holds no
     *  lock). */
    void schedule(std::size_t block);

    std::shared_ptr<FcpcReader> reader_;
    PrefetchOptions options_;
    core::ShardMap shard_map_;

    mutable std::mutex mutex_;
    std::condition_variable cv_;
    std::map<std::size_t, Slot> slots_; ///< scheduled or ready blocks
    std::size_t inflight_ = 0; ///< tasks launched, not yet completed
    PrefetchStats stats_;
};

} // namespace fc::storage

#endif // FC_STORAGE_PREFETCH_H
