#include "storage/fcpc_writer.h"

#include <cstring>

#include "common/logging.h"
#include "core/sharded_executor.h"

namespace fc::storage {

namespace {

constexpr char kZeroPad[kFcpcAlign] = {};

} // namespace

FcpcWriter::~FcpcWriter()
{
    // An unfinished file is garbage by contract (no valid header);
    // nothing to do beyond closing the stream.
}

bool
FcpcWriter::open(const std::string &path)
{
    fc_assert(!open_, "FcpcWriter::open called twice");
    out_.open(path, std::ios::binary | std::ios::trunc);
    if (!out_)
        return false;
    // Placeholder header; finish() seeks back and writes the real one
    // (a reader opening the file before finish() sees magic == 0 and
    // rejects it).
    const FcpcFileHeader blank{};
    out_.write(reinterpret_cast<const char *>(&blank), sizeof blank);
    pos_ = sizeof blank;
    open_ = static_cast<bool>(out_);
    failed_ = !open_;
    return open_;
}

bool
FcpcWriter::padToAlignment()
{
    const std::uint64_t aligned = alignUp(pos_);
    if (aligned != pos_) {
        out_.write(kZeroPad, static_cast<std::streamsize>(aligned - pos_));
        pos_ = aligned;
    }
    return static_cast<bool>(out_);
}

bool
FcpcWriter::writeSection(const void *data, std::size_t bytes,
                         std::uint64_t &offset, std::uint64_t &checksum)
{
    if (!padToAlignment())
        return false;
    offset = pos_;
    checksum = fnv1a64(data, bytes);
    out_.write(static_cast<const char *>(data),
               static_cast<std::streamsize>(bytes));
    pos_ += bytes;
    return static_cast<bool>(out_);
}

bool
FcpcWriter::append(const data::PointCloud &cloud,
                   std::uint64_t placement_key)
{
    if (!open_ || failed_)
        return false;

    FcpcBlockDesc desc{};
    desc.num_points = cloud.size();
    desc.feature_dim = static_cast<std::uint32_t>(cloud.featureDim());
    desc.has_labels = cloud.hasLabels() ? 1u : 0u;
    desc.placement_key =
        placement_key != 0
            ? placement_key
            : core::ShardMap::mix(0x66637063u /* 'fcpc' */ +
                                  index_.size() + 1);

    const std::span<const Vec3> coords = cloud.coords();
    const core::simd::SoaView soa = cloud.soa();
    const std::size_t n = cloud.size();

    bool ok =
        writeSection(coords.data(), n * sizeof(Vec3),
                     desc.coords_offset, desc.coords_checksum) &&
        writeSection(soa.xs, n * sizeof(float), desc.x_offset,
                     desc.x_checksum) &&
        writeSection(soa.ys, n * sizeof(float), desc.y_offset,
                     desc.y_checksum) &&
        writeSection(soa.zs, n * sizeof(float), desc.z_offset,
                     desc.z_checksum);
    if (ok && desc.feature_dim > 0) {
        const std::span<const float> feats = cloud.features();
        ok = writeSection(feats.data(), feats.size() * sizeof(float),
                          desc.features_offset,
                          desc.features_checksum);
    }
    if (ok && desc.has_labels != 0) {
        const std::span<const std::int32_t> labels = cloud.labels();
        ok = writeSection(labels.data(),
                          labels.size() * sizeof(std::int32_t),
                          desc.labels_offset, desc.labels_checksum);
    }
    if (!ok) {
        failed_ = true;
        return false;
    }
    index_.push_back(desc);
    return true;
}

bool
FcpcWriter::finish()
{
    if (!open_ || failed_)
        return false;
    if (!padToAlignment()) {
        failed_ = true;
        return false;
    }

    FcpcFileHeader header{};
    header.magic = kFcpcMagic;
    header.version = kFcpcVersion;
    header.endian_tag = kFcpcEndianTag;
    header.header_bytes = sizeof(FcpcFileHeader);
    header.block_count = index_.size();
    header.index_offset = pos_;
    const std::size_t index_bytes =
        index_.size() * sizeof(FcpcBlockDesc);
    header.index_checksum =
        index_.empty() ? fnv1a64(nullptr, 0)
                       : fnv1a64(index_.data(), index_bytes);
    out_.write(reinterpret_cast<const char *>(index_.data()),
               static_cast<std::streamsize>(index_bytes));
    pos_ += index_bytes;
    header.file_bytes = pos_;

    out_.seekp(0);
    out_.write(reinterpret_cast<const char *>(&header), sizeof header);
    out_.flush();
    const bool ok = static_cast<bool>(out_);
    out_.close();
    open_ = false;
    failed_ = !ok;
    return ok;
}

bool
writeFcpc(const std::vector<data::PointCloud> &clouds,
          const std::string &path)
{
    FcpcWriter writer;
    if (!writer.open(path))
        return false;
    for (const data::PointCloud &cloud : clouds)
        if (!writer.append(cloud))
            return false;
    return writer.finish();
}

} // namespace fc::storage
