/**
 * @file
 * Legacy-format converters: parse a text cloud once (pool-parallel),
 * write it as .fcpc, and never parse it again — after conversion
 * every load is an mmap bind.
 */

#ifndef FC_STORAGE_CONVERT_H
#define FC_STORAGE_CONVERT_H

#include <cstdint>
#include <string>

namespace fc::core {
class ThreadPool;
} // namespace fc::core

namespace fc::storage {

/**
 * Parse @p xyz_path ("x y z [label]" lines) and write it to
 * @p fcpc_path as a one-block container.
 *
 * @param pool optional: chunk-parallel parse (bit-identical to
 *             serial)
 * @param placement_key block key in the index; 0 derives one
 * @return false on parse or I/O failure.
 */
bool convertXyzToFcpc(const std::string &xyz_path,
                      const std::string &fcpc_path,
                      core::ThreadPool *pool = nullptr,
                      std::uint64_t placement_key = 0);

/** Same for ASCII PLY (see data::loadPly for the accepted subset). */
bool convertPlyToFcpc(const std::string &ply_path,
                      const std::string &fcpc_path,
                      core::ThreadPool *pool = nullptr,
                      std::uint64_t placement_key = 0);

} // namespace fc::storage

#endif // FC_STORAGE_CONVERT_H
