#include "storage/fcpc_reader.h"

#include <cstring>
#include <fstream>

#include "common/logging.h"

#if defined(__unix__) || defined(__APPLE__)
#define FC_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define FC_HAVE_MMAP 0
#endif

namespace fc::storage {

const char *
fcpcStatusName(FcpcStatus status)
{
    switch (status) {
    case FcpcStatus::Ok: return "ok";
    case FcpcStatus::IoError: return "io-error";
    case FcpcStatus::BadMagic: return "bad-magic";
    case FcpcStatus::BadVersion: return "bad-version";
    case FcpcStatus::BadEndian: return "bad-endian";
    case FcpcStatus::Truncated: return "truncated";
    case FcpcStatus::BadIndex: return "bad-index";
    case FcpcStatus::BadChecksum: return "bad-checksum";
    case FcpcStatus::BadBlock: return "bad-block";
    }
    return "unknown";
}

/**
 * The immutable file image. Owns either an mmap'd range or a heap
 * buffer (fallback); zero-copy clouds keep a shared_ptr to this, so
 * the bytes outlive both the reader and the file descriptor.
 */
class FcpcReader::Mapping
{
  public:
    static std::shared_ptr<const Mapping>
    create(const std::string &path)
    {
#if FC_HAVE_MMAP
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd >= 0) {
            struct stat st{};
            if (::fstat(fd, &st) == 0 && st.st_size > 0) {
                void *base =
                    ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                           PROT_READ, MAP_PRIVATE, fd, 0);
                ::close(fd); // the mapping holds its own reference
                if (base != MAP_FAILED) {
                    auto map = std::make_shared<Mapping>();
                    map->base_ = static_cast<const std::byte *>(base);
                    map->bytes_ = static_cast<std::size_t>(st.st_size);
                    map->mmapped_ = true;
                    return map;
                }
                return nullptr;
            }
            ::close(fd);
            return nullptr;
        }
        return nullptr;
#else
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (!in)
            return nullptr;
        const std::streamoff bytes = in.tellg();
        if (bytes <= 0)
            return nullptr;
        auto map = std::make_shared<Mapping>();
        map->heap_.resize(static_cast<std::size_t>(bytes));
        in.seekg(0);
        in.read(reinterpret_cast<char *>(map->heap_.data()), bytes);
        if (!in)
            return nullptr;
        map->base_ = map->heap_.data();
        map->bytes_ = map->heap_.size();
        return map;
#endif
    }

    Mapping() = default;

    ~Mapping()
    {
#if FC_HAVE_MMAP
        if (mmapped_ && base_ != nullptr)
            ::munmap(const_cast<std::byte *>(base_), bytes_);
#endif
    }

    Mapping(const Mapping &) = delete;
    Mapping &operator=(const Mapping &) = delete;

    const std::byte *data() const { return base_; }
    std::size_t size() const { return bytes_; }
    bool memoryMapped() const { return mmapped_; }

  private:
    const std::byte *base_ = nullptr;
    std::size_t bytes_ = 0;
    bool mmapped_ = false;
#if !FC_HAVE_MMAP
    std::vector<std::byte> heap_; ///< fallback storage only
#endif
};

FcpcStatus
FcpcReader::open(const std::string &path, const ReadOptions &options)
{
    map_.reset();
    index_.clear();
    validated_.reset();

    std::shared_ptr<const Mapping> map = Mapping::create(path);
    if (map == nullptr || map->size() < sizeof(FcpcFileHeader))
        return status_ = map == nullptr ? FcpcStatus::IoError
                                        : FcpcStatus::Truncated;

    FcpcFileHeader header;
    std::memcpy(&header, map->data(), sizeof header);
    if (header.magic != kFcpcMagic)
        return status_ = FcpcStatus::BadMagic;
    if (header.endian_tag != kFcpcEndianTag)
        return status_ = FcpcStatus::BadEndian;
    if (header.version > kFcpcVersion)
        return status_ = FcpcStatus::BadVersion;
    if (header.header_bytes != sizeof(FcpcFileHeader))
        return status_ = FcpcStatus::BadMagic;
    if (header.file_bytes != map->size())
        return status_ = FcpcStatus::Truncated;

    const std::uint64_t index_bytes =
        header.block_count * sizeof(FcpcBlockDesc);
    if (header.index_offset > map->size() ||
        index_bytes > map->size() - header.index_offset)
        return status_ = FcpcStatus::BadIndex;

    std::vector<FcpcBlockDesc> index(header.block_count);
    std::memcpy(index.data(), map->data() + header.index_offset,
                index_bytes);
    const std::uint64_t index_sum =
        index.empty() ? fnv1a64(nullptr, 0)
                      : fnv1a64(index.data(), index_bytes);
    if (index_sum != header.index_checksum)
        return status_ = FcpcStatus::BadIndex;

    map_ = std::move(map);
    index_ = std::move(index);
    if (const FcpcStatus layout = validateLayout();
        layout != FcpcStatus::Ok) {
        map_.reset();
        index_.clear();
        return status_ = layout;
    }
    if (!index_.empty()) {
        validated_ =
            std::make_unique<std::atomic<std::uint8_t>[]>(index_.size());
        for (std::size_t i = 0; i < index_.size(); ++i)
            validated_[i].store(0, std::memory_order_relaxed);
    }

    // Residency policy, applied only after the file validated — a
    // corrupt file is rejected without paying for its pages.
#if FC_HAVE_MMAP
    if (map_->memoryMapped()) {
        if (options.willneed)
            (void)::madvise(
                const_cast<std::byte *>(map_->data()), map_->size(),
                MADV_WILLNEED); // advisory; failure changes nothing
        if (options.populate) {
            // One volatile byte per page forces the fault now; the
            // kernel's readahead (boosted by willneed above when both
            // are set) turns the walk into sequential I/O.
            const std::size_t page = static_cast<std::size_t>(
                ::sysconf(_SC_PAGESIZE) > 0 ? ::sysconf(_SC_PAGESIZE)
                                            : 4096);
            const volatile std::byte *base = map_->data();
            for (std::size_t off = 0; off < map_->size(); off += page)
                (void)base[off];
        }
    }
#else
    (void)options; // heap fallback is resident by construction
#endif
    return status_ = FcpcStatus::Ok;
}

FcpcStatus
FcpcReader::validateLayout() const
{
    // Every section must lie inside the file; this is the structural
    // half of validation (cheap, done once at open). The content half
    // (checksums) is per-block and lazy.
    const std::size_t file_bytes = map_->size();
    for (const FcpcBlockDesc &d : index_) {
        const auto fits = [file_bytes](std::uint64_t off,
                                       std::uint64_t bytes) {
            return off <= file_bytes && bytes <= file_bytes - off &&
                   off % kFcpcAlign == 0;
        };
        const std::uint64_t n = d.num_points;
        if (!fits(d.coords_offset, n * sizeof(Vec3)) ||
            !fits(d.x_offset, n * sizeof(float)) ||
            !fits(d.y_offset, n * sizeof(float)) ||
            !fits(d.z_offset, n * sizeof(float)))
            return FcpcStatus::BadBlock;
        if (d.feature_dim > 0 &&
            !fits(d.features_offset,
                  n * d.feature_dim * sizeof(float)))
            return FcpcStatus::BadBlock;
        if (d.has_labels != 0 &&
            !fits(d.labels_offset, n * sizeof(std::int32_t)))
            return FcpcStatus::BadBlock;
    }
    return FcpcStatus::Ok;
}

std::uint64_t
FcpcReader::placementKey(std::size_t i) const
{
    fc_assert(i < index_.size(), "block %zu out of range (%zu)", i,
              index_.size());
    return index_[i].placement_key;
}

std::size_t
FcpcReader::blockPoints(std::size_t i) const
{
    fc_assert(i < index_.size(), "block %zu out of range (%zu)", i,
              index_.size());
    return index_[i].num_points;
}

std::size_t
FcpcReader::blockBytes(std::size_t i) const
{
    fc_assert(i < index_.size(), "block %zu out of range (%zu)", i,
              index_.size());
    const FcpcBlockDesc &d = index_[i];
    std::size_t bytes =
        d.num_points * (sizeof(Vec3) + 3 * sizeof(float));
    bytes += d.num_points * d.feature_dim * sizeof(float);
    if (d.has_labels != 0)
        bytes += d.num_points * sizeof(std::int32_t);
    return bytes;
}

FcpcStatus
FcpcReader::validateBlock(std::size_t i)
{
    if (!isOpen())
        return status_;
    if (i >= index_.size())
        return FcpcStatus::BadBlock;
    // Memoized: the release store pairs with the acquire load, so a
    // thread seeing "ok" also sees any page the checksum pass
    // faulted in (the prefetcher's whole point).
    const std::uint8_t memo =
        validated_[i].load(std::memory_order_acquire);
    if (memo != 0)
        return memo == 1 ? FcpcStatus::Ok
                         : static_cast<FcpcStatus>(memo);

    const FcpcBlockDesc &d = index_[i];
    const std::byte *base = map_->data();
    const std::uint64_t n = d.num_points;
    const auto check = [base](std::uint64_t off, std::uint64_t bytes,
                              std::uint64_t expected) {
        return fnv1a64(base + off, bytes) == expected;
    };
    bool ok = check(d.coords_offset, n * sizeof(Vec3),
                    d.coords_checksum) &&
              check(d.x_offset, n * sizeof(float), d.x_checksum) &&
              check(d.y_offset, n * sizeof(float), d.y_checksum) &&
              check(d.z_offset, n * sizeof(float), d.z_checksum);
    if (ok && d.feature_dim > 0)
        ok = check(d.features_offset,
                   n * d.feature_dim * sizeof(float),
                   d.features_checksum);
    if (ok && d.has_labels != 0)
        ok = check(d.labels_offset, n * sizeof(std::int32_t),
                   d.labels_checksum);

    const FcpcStatus result =
        ok ? FcpcStatus::Ok : FcpcStatus::BadChecksum;
    validated_[i].store(
        ok ? 1 : static_cast<std::uint8_t>(result),
        std::memory_order_release);
    return result;
}

FcpcStatus
FcpcReader::readBlock(std::size_t i, data::PointCloud &out,
                      ReadMode mode)
{
    if (!isOpen())
        return status_;
    if (i >= index_.size())
        return FcpcStatus::BadBlock;
    if (const FcpcStatus v = validateBlock(i); v != FcpcStatus::Ok)
        return v;

    const FcpcBlockDesc &d = index_[i];
    const std::byte *base = map_->data();
    data::ExternalCloudView view;
    view.size = d.num_points;
    view.coords =
        reinterpret_cast<const Vec3 *>(base + d.coords_offset);
    view.x = reinterpret_cast<const float *>(base + d.x_offset);
    view.y = reinterpret_cast<const float *>(base + d.y_offset);
    view.z = reinterpret_cast<const float *>(base + d.z_offset);
    view.feature_dim = d.feature_dim;
    if (d.feature_dim > 0)
        view.features =
            reinterpret_cast<const float *>(base + d.features_offset);
    if (d.has_labels != 0)
        view.labels = reinterpret_cast<const std::int32_t *>(
            base + d.labels_offset);

    out.bindExternal(view, map_);
    if (mode == ReadMode::Copy)
        out.detach();
    return FcpcStatus::Ok;
}

std::size_t
FcpcReader::liveAliases() const
{
    if (map_ == nullptr)
        return 0;
    const long uses = map_.use_count();
    return uses > 1 ? static_cast<std::size_t>(uses - 1) : 0;
}

std::size_t
FcpcReader::mappedBytes() const
{
    return map_ != nullptr ? map_->size() : 0;
}

bool
FcpcReader::isMemoryMapped() const
{
    return map_ != nullptr && map_->memoryMapped();
}

} // namespace fc::storage
