/**
 * @file
 * Memory-mapped .fcpc reader: zero-copy block materialization.
 *
 * open() maps the whole file (mmap where available, a single read
 * into one heap buffer otherwise) and validates header + index.
 * readBlock() materializes a PointCloud:
 *
 *   - ReadMode::ZeroCopy binds the cloud's arrays straight into the
 *     mapping (PointCloud::bindExternal) — no per-point copies and no
 *     per-point heap allocations; the cloud holds a keepalive on the
 *     mapping, so it stays valid even if the reader is destroyed
 *     first (liveAliases() diagnoses that situation).
 *   - ReadMode::Copy deep-copies into an owning cloud — the safe
 *     fallback for callers that will mutate heavily or want the
 *     mapping released promptly.
 *
 * Section checksums are verified on first access to each block (and
 * remembered), so corruption is caught before any aliased pointer is
 * used; the verification pass doubles as the page-touch that makes
 * prefetching overlap disk latency with compute.
 */

#ifndef FC_STORAGE_FCPC_READER_H
#define FC_STORAGE_FCPC_READER_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dataset/point_cloud.h"
#include "storage/fcpc_format.h"

namespace fc::storage {

/** Why open()/readBlock() refused. */
enum class FcpcStatus : std::uint8_t {
    Ok,
    IoError,     ///< open/stat/map/read failed
    BadMagic,    ///< not an .fcpc file (or unfinished writer output)
    BadVersion,  ///< container version newer than this reader
    BadEndian,   ///< foreign-endian file; zero-copy impossible
    Truncated,   ///< file shorter than the header says
    BadIndex,    ///< index out of bounds or checksum mismatch
    BadChecksum, ///< a block section failed its checksum
    BadBlock,    ///< block id out of range / sections out of bounds
};

const char *fcpcStatusName(FcpcStatus status);

/** How readBlock materializes the cloud. */
enum class ReadMode : std::uint8_t {
    ZeroCopy, ///< alias the mapping (copy-on-write on first mutation)
    Copy,     ///< deep-copy into owning vectors
};

/**
 * open()-time page residency policy. By default the mapping is
 * demand-paged: the first pass over each block (usually the
 * prefetcher's checksum walk) eats one major fault per page. Cold
 * scans that will touch the whole file anyway can hint or force
 * residency up front instead.
 */
struct ReadOptions
{
    /** madvise(MADV_WILLNEED) the whole mapping after validation:
     *  asks the kernel to start readahead immediately, overlapping
     *  disk latency with whatever runs between open() and the first
     *  readBlock(). Advisory and free; no-op without mmap. */
    bool willneed = false;

    /** Touch one byte per page after validation, forcing every page
     *  resident before open() returns (a portable MAP_POPULATE).
     *  Trades a longer open() for fault-free readBlock()s — the
     *  right call before latency-measured serving. Implies nothing
     *  about willneed; combining both is harmless. No-op without
     *  mmap (the heap fallback is resident by construction). */
    bool populate = false;
};

/**
 * One open .fcpc file. Thread-safe for concurrent readBlock calls
 * once open() returned Ok (validation state is atomic; the mapping is
 * immutable).
 */
class FcpcReader
{
  public:
    FcpcReader() = default;
    ~FcpcReader() = default;

    FcpcReader(const FcpcReader &) = delete;
    FcpcReader &operator=(const FcpcReader &) = delete;

    /** Map and validate @p path, then apply @p options' residency
     *  policy (see ReadOptions). On failure the reader stays closed
     *  and status() says why. */
    FcpcStatus open(const std::string &path,
                    const ReadOptions &options = {});

    bool isOpen() const { return map_ != nullptr; }
    FcpcStatus status() const { return status_; }

    /** Blocks in the file (0 when closed). */
    std::size_t blockCount() const { return index_.size(); }

    /** Consistent-hash placement key of block @p i (ShardMap
     *  keyspace). */
    std::uint64_t placementKey(std::size_t i) const;

    /** Points in block @p i. */
    std::size_t blockPoints(std::size_t i) const;

    /** Bytes of block @p i's sections (excluding padding). */
    std::size_t blockBytes(std::size_t i) const;

    /**
     * Materialize block @p i into @p out. ZeroCopy performs zero
     * per-point work: six pointer binds plus a checksum pass on first
     * access. Returns BadChecksum/BadBlock without touching @p out on
     * a corrupt block.
     */
    FcpcStatus readBlock(std::size_t i, data::PointCloud &out,
                         ReadMode mode = ReadMode::ZeroCopy);

    /**
     * Verify block @p i's section checksums now (idempotent; cached).
     * The prefetcher calls this on pool threads so the page faults
     * and the checksum pass happen off the consumer's critical path.
     */
    FcpcStatus validateBlock(std::size_t i);

    /**
     * Zero-copy clouds still aliasing the mapping, excluding the
     * reader's own reference. A nonzero value at reader destruction
     * is NOT a bug (the mapping lives until the last cloud drops it)
     * but is worth surfacing when a caller expected the file closed.
     */
    std::size_t liveAliases() const;

    /** Total mapped bytes (0 when closed). */
    std::size_t mappedBytes() const;

    /** True when the platform mmap path is active (false = the heap
     *  read fallback, e.g. no sys/mman.h). */
    bool isMemoryMapped() const;

  private:
    /** Immutable file image + unmap/free on last release. */
    class Mapping;

    const FcpcBlockDesc &desc(std::size_t i) const { return index_[i]; }
    FcpcStatus validateLayout() const;

    std::shared_ptr<const Mapping> map_;
    std::vector<FcpcBlockDesc> index_; ///< copied out of the mapping
    /** Per-block validation memo: 0 unknown, 1 ok, else the failed
     *  FcpcStatus. unique_ptr keeps FcpcReader movable-free but the
     *  atomics stable. */
    std::unique_ptr<std::atomic<std::uint8_t>[]> validated_;
    FcpcStatus status_ = FcpcStatus::IoError;
};

} // namespace fc::storage

#endif // FC_STORAGE_FCPC_READER_H
