#include "storage/prefetch.h"

#include "common/logging.h"

namespace fc::storage {

BlockPrefetcher::BlockPrefetcher(std::shared_ptr<FcpcReader> reader,
                                 const PrefetchOptions &options)
    : reader_(std::move(reader)), options_(options),
      shard_map_(options.num_shards == 0 ? 1 : options.num_shards)
{
    fc_assert(reader_ != nullptr, "prefetcher needs a reader");
}

BlockPrefetcher::~BlockPrefetcher()
{
    // Detached read tasks capture `this`; block until the last one
    // retires so destruction never races a fill.
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return inflight_ == 0; });
}

unsigned
BlockPrefetcher::shardFor(std::size_t block) const
{
    return shard_map_.shardFor(reader_->placementKey(block));
}

PrefetchStats
BlockPrefetcher::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
BlockPrefetcher::schedule(std::size_t block)
{
    if (options_.pool == nullptr || options_.depth == 0 ||
        block >= reader_->blockCount())
        return;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (slots_.count(block) != 0)
            return; // already scheduled (or ready and unconsumed)
        slots_.emplace(block, Slot{});
        ++inflight_;
        ++stats_.scheduled;
    }
    options_.pool->submitDetached([this, block] {
        // The validation pass is the useful work: it faults the
        // block's pages in and verifies checksums off the consumer's
        // critical path. The bind itself is six pointers.
        data::PointCloud cloud;
        const FcpcStatus status =
            reader_->readBlock(block, cloud, options_.mode);
        std::lock_guard<std::mutex> lock(mutex_);
        Slot &slot = slots_[block];
        slot.status = status;
        if (status == FcpcStatus::Ok)
            slot.cloud = std::move(cloud);
        slot.ready = true;
        --inflight_;
        cv_.notify_all();
    });
}

void
BlockPrefetcher::hint(std::size_t block)
{
    schedule(block);
}

FcpcStatus
BlockPrefetcher::get(std::size_t block, data::PointCloud &out)
{
    if (block >= reader_->blockCount())
        return FcpcStatus::BadBlock;

    // Keep the ring full: this block plus the next `depth`.
    const std::size_t last =
        std::min(block + options_.depth, reader_->blockCount() - 1);
    for (std::size_t b = block; b <= last; ++b)
        schedule(b);

    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = slots_.find(block);
    if (it == slots_.end()) {
        // Synchronous mode (no pool / depth 0), or a random-access
        // consumer outran the ring.
        ++stats_.misses;
        lock.unlock();
        return reader_->readBlock(block, out, options_.mode);
    }
    if (it->second.ready)
        ++stats_.hits;
    else
        ++stats_.waits;
    cv_.wait(lock, [&] { return it->second.ready; });
    const FcpcStatus status = it->second.status;
    if (status == FcpcStatus::Ok)
        out = std::move(it->second.cloud);
    slots_.erase(it);
    return status;
}

} // namespace fc::storage
