#include "dataset/synthetic.h"

#include <cmath>

namespace fc::data {

namespace {
constexpr float kTwoPi = 6.28318530717958647692f;
} // namespace

Vec3
sampleSphereSurface(Pcg32 &rng, float radius)
{
    // Marsaglia: z uniform in [-1,1], angle uniform.
    const float z = rng.uniform(-1.0f, 1.0f);
    const float phi = rng.uniform(0.0f, kTwoPi);
    const float r = std::sqrt(std::max(0.0f, 1.0f - z * z));
    return {radius * r * std::cos(phi), radius * r * std::sin(phi),
            radius * z};
}

Vec3
sampleBall(Pcg32 &rng, float radius)
{
    const Vec3 dir = sampleSphereSurface(rng, 1.0f);
    const float r = radius * std::cbrt(rng.uniform());
    return dir * r;
}

Vec3
sampleBoxSurface(Pcg32 &rng, const Vec3 &half_extent)
{
    // Pick a face with probability proportional to its area.
    const float ax = half_extent.y * half_extent.z;
    const float ay = half_extent.x * half_extent.z;
    const float az = half_extent.x * half_extent.y;
    const float total = 2.0f * (ax + ay + az);
    float pick = rng.uniform(0.0f, total);
    const float sign = rng.uniform() < 0.5f ? -1.0f : 1.0f;
    const float u = rng.uniform(-1.0f, 1.0f);
    const float v = rng.uniform(-1.0f, 1.0f);
    if (pick < 2.0f * ax) {
        return {sign * half_extent.x, u * half_extent.y,
                v * half_extent.z};
    }
    pick -= 2.0f * ax;
    if (pick < 2.0f * ay) {
        return {u * half_extent.x, sign * half_extent.y,
                v * half_extent.z};
    }
    return {u * half_extent.x, v * half_extent.y, sign * half_extent.z};
}

Vec3
sampleCylinderSurface(Pcg32 &rng, float radius, float height)
{
    const float phi = rng.uniform(0.0f, kTwoPi);
    const float z = rng.uniform(-0.5f, 0.5f) * height;
    return {radius * std::cos(phi), radius * std::sin(phi), z};
}

Vec3
sampleConeSurface(Pcg32 &rng, float radius, float height)
{
    // Area element grows linearly with distance from apex; sample
    // sqrt-uniform in the slant parameter.
    const float t = std::sqrt(rng.uniform());
    const float phi = rng.uniform(0.0f, kTwoPi);
    const float r = radius * t;
    const float z = height * (0.5f - t); // apex at +height/2
    return {r * std::cos(phi), r * std::sin(phi), z};
}

Vec3
sampleTorusSurface(Pcg32 &rng, float major, float minor)
{
    // Rejection sampling for the non-uniform circumference weight.
    for (;;) {
        const float u = rng.uniform(0.0f, kTwoPi);
        const float v = rng.uniform(0.0f, kTwoPi);
        const float w = rng.uniform();
        const float weight =
            (major + minor * std::cos(v)) / (major + minor);
        if (w <= weight) {
            const float r = major + minor * std::cos(v);
            return {r * std::cos(u), r * std::sin(u),
                    minor * std::sin(v)};
        }
    }
}

Vec3
samplePlanePatch(Pcg32 &rng, const Vec3 &origin, const Vec3 &u,
                 const Vec3 &v)
{
    const float a = rng.uniform();
    const float b = rng.uniform();
    return origin + u * a + v * b;
}

Vec3
sampleGaussianBlob(Pcg32 &rng, const Vec3 &center, float sigma)
{
    return {rng.normal(center.x, sigma), rng.normal(center.y, sigma),
            rng.normal(center.z, sigma)};
}

PointCloud
makeLidarFrame(Pcg32 &rng, std::size_t num_points,
               std::size_t num_obstacles)
{
    PointCloud cloud;
    cloud.coords().reserve(num_points);

    struct Obstacle
    {
        Vec3 center;
        Vec3 half;
    };
    std::vector<Obstacle> obstacles;
    obstacles.reserve(num_obstacles);
    for (std::size_t i = 0; i < num_obstacles; ++i) {
        const float range = rng.uniform(4.0f, 40.0f);
        const float theta = rng.uniform(0.0f, kTwoPi);
        obstacles.push_back(
            {{range * std::cos(theta), range * std::sin(theta),
              rng.uniform(0.5f, 1.5f)},
             {rng.uniform(0.4f, 2.5f), rng.uniform(0.4f, 2.5f),
              rng.uniform(0.5f, 1.8f)}});
    }

    // 60% of the budget goes to ground returns whose density decays
    // with range (1/r sampling), 40% to obstacle surfaces. Labels:
    // 0 = ground, 1..num_obstacles = obstacle ids.
    const std::size_t ground_n = num_points * 3 / 5;
    for (std::size_t i = 0; i < ground_n; ++i) {
        const float r = 2.0f + 58.0f * rng.uniform() * rng.uniform();
        const float theta = rng.uniform(0.0f, kTwoPi);
        cloud.addPoint({r * std::cos(theta), r * std::sin(theta),
                        rng.normal(0.0f, 0.02f)},
                       0);
    }
    const std::size_t obs_n = num_points - ground_n;
    for (std::size_t i = 0; i < obs_n; ++i) {
        const std::size_t k =
            obstacles.empty() ? 0 : rng.bounded(static_cast<std::uint32_t>(
                                        obstacles.size()));
        if (obstacles.empty()) {
            cloud.addPoint({0, 0, 0}, 0);
            continue;
        }
        const Obstacle &ob = obstacles[k];
        const Vec3 p = sampleBoxSurface(rng, ob.half) + ob.center;
        cloud.addPoint(p, static_cast<std::int32_t>(k + 1));
    }
    return cloud;
}

} // namespace fc::data
