#include "dataset/shapenet.h"

#include <array>

#include "common/logging.h"
#include "common/rng.h"
#include "dataset/synthetic.h"

namespace fc::data {

namespace {

struct PartSpec
{
    // Offsets/extents are in object-local units before normalization.
    Vec3 offset;
    Vec3 extent;
    int kind; // 0=box surface, 1=cylinder, 2=cone, 3=sphere
    float weight; // share of points
};

using CategorySpec = std::array<PartSpec, kShapeNetMaxParts>;

/**
 * Category recipes. Part counts differ per category, as in real
 * ShapeNet (airplane: 4, mug: 2, ...). Unused slots have weight 0.
 */
const std::array<std::pair<int, CategorySpec>, kShapeNetNumCategories> &
categoryTable()
{
    static const std::array<std::pair<int, CategorySpec>,
                            kShapeNetNumCategories>
        table = {{
            // airplane: body / wings / tail / engines
            {4,
             {{{{0, 0, 0}, {0.2f, 0.2f, 1.2f}, 1, 0.4f},
               {{0, 0, 0.1f}, {1.4f, 0.06f, 0.25f}, 0, 0.35f},
               {{0, 0.25f, -1.0f}, {0.5f, 0.3f, 0.1f}, 0, 0.15f},
               {{0.55f, -0.1f, 0.2f}, {0.1f, 0.1f, 0.35f}, 1, 0.10f},
               {{}, {}, 0, 0.0f}}}},
            // bag: body / handle
            {2,
             {{{{0, 0, 0}, {0.6f, 0.3f, 0.7f}, 0, 0.8f},
               {{0, 0, 0.8f}, {0.4f, 0.08f, 0.2f}, 4, 0.2f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // cap: crown / peak
            {2,
             {{{{0, 0, 0}, {0.6f, 0.6f, 0.35f}, 3, 0.7f},
               {{0, 0.6f, -0.1f}, {0.5f, 0.45f, 0.05f}, 0, 0.3f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // car: body / roof / wheels
            {3,
             {{{{0, 0, 0}, {1.0f, 0.45f, 0.3f}, 0, 0.55f},
               {{0, 0, 0.45f}, {0.55f, 0.4f, 0.18f}, 0, 0.2f},
               {{0.6f, 0.4f, -0.3f}, {0.2f, 0.08f, 0.2f}, 1, 0.25f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // chair: seat / back / legs / arms
            {4,
             {{{{0, 0, 0}, {0.5f, 0.5f, 0.06f}, 0, 0.35f},
               {{0, -0.5f, 0.55f}, {0.5f, 0.05f, 0.5f}, 0, 0.3f},
               {{0.4f, 0.4f, -0.5f}, {0.05f, 0.05f, 0.5f}, 1, 0.25f},
               {{0.5f, 0, 0.25f}, {0.05f, 0.3f, 0.05f}, 1, 0.10f},
               {{}, {}, 0, 0.0f}}}},
            // earphone: cups / band
            {2,
             {{{{0.5f, 0, 0}, {0.22f, 0.22f, 0.1f}, 1, 0.6f},
               {{0, 0, 0.4f}, {0.55f, 0.08f, 0.3f}, 4, 0.4f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // guitar: body / neck / head
            {3,
             {{{{0, 0, -0.4f}, {0.5f, 0.15f, 0.6f}, 0, 0.6f},
               {{0, 0, 0.55f}, {0.07f, 0.05f, 0.55f}, 0, 0.3f},
               {{0, 0, 1.15f}, {0.12f, 0.06f, 0.12f}, 0, 0.10f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // knife: blade / handle
            {2,
             {{{{0, 0, 0.35f}, {0.08f, 0.02f, 0.65f}, 0, 0.6f},
               {{0, 0, -0.45f}, {0.07f, 0.05f, 0.3f}, 1, 0.4f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // lamp: base / pole / shade
            {3,
             {{{{0, 0, -0.8f}, {0.4f, 0.4f, 0.05f}, 1, 0.2f},
               {{0, 0, 0}, {0.05f, 0.05f, 0.8f}, 1, 0.3f},
               {{0, 0, 0.8f}, {0.45f, 0.45f, 0.3f}, 2, 0.5f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // laptop: base / screen
            {2,
             {{{{0, 0, 0}, {0.6f, 0.45f, 0.03f}, 0, 0.5f},
               {{0, -0.45f, 0.4f}, {0.6f, 0.03f, 0.4f}, 0, 0.5f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // motorbike: frame / wheels / seat / handlebars
            {4,
             {{{{0, 0, 0}, {0.8f, 0.12f, 0.25f}, 0, 0.35f},
               {{0.65f, 0, -0.25f}, {0.3f, 0.06f, 0.3f}, 1, 0.35f},
               {{-0.15f, 0, 0.3f}, {0.3f, 0.15f, 0.06f}, 0, 0.15f},
               {{0.55f, 0, 0.45f}, {0.05f, 0.3f, 0.05f}, 1, 0.15f},
               {{}, {}, 0, 0.0f}}}},
            // mug: body / handle
            {2,
             {{{{0, 0, 0}, {0.45f, 0.45f, 0.55f}, 1, 0.8f},
               {{0.55f, 0, 0}, {0.2f, 0.06f, 0.25f}, 4, 0.2f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // pistol: barrel / grip / trigger
            {3,
             {{{{0.2f, 0, 0.15f}, {0.45f, 0.06f, 0.1f}, 0, 0.5f},
               {{-0.2f, 0, -0.25f}, {0.1f, 0.07f, 0.3f}, 0, 0.35f},
               {{0.0f, 0, -0.05f}, {0.06f, 0.03f, 0.08f}, 4, 0.15f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // rocket: body / fins / nose
            {3,
             {{{{0, 0, 0}, {0.2f, 0.2f, 0.9f}, 1, 0.6f},
               {{0.25f, 0, -0.8f}, {0.25f, 0.03f, 0.25f}, 0, 0.2f},
               {{0, 0, 1.05f}, {0.2f, 0.2f, 0.3f}, 2, 0.2f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // skateboard: deck / wheels / trucks
            {3,
             {{{{0, 0, 0}, {0.8f, 0.2f, 0.02f}, 0, 0.6f},
               {{0.55f, 0.15f, -0.12f}, {0.07f, 0.04f, 0.07f}, 1, 0.25f},
               {{0.55f, 0, -0.06f}, {0.12f, 0.1f, 0.03f}, 0, 0.15f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
            // table: top / legs
            {2,
             {{{{0, 0, 0.4f}, {0.8f, 0.55f, 0.05f}, 0, 0.65f},
               {{0.65f, 0.45f, -0.2f}, {0.05f, 0.05f, 0.6f}, 1, 0.35f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f},
               {{}, {}, 0, 0.0f}}}},
        }};
    return table;
}

Vec3
samplePart(Pcg32 &rng, const PartSpec &part)
{
    Vec3 p;
    switch (part.kind) {
      case 0:
        p = sampleBoxSurface(rng, part.extent);
        break;
      case 1:
        p = sampleCylinderSurface(
            rng, std::max(part.extent.x, part.extent.y),
            2.0f * part.extent.z);
        break;
      case 2:
        p = sampleConeSurface(rng, part.extent.x, 2.0f * part.extent.z);
        break;
      case 3:
        p = sampleSphereSurface(rng, part.extent.x);
        p.z *= part.extent.z / std::max(part.extent.x, 1e-6f);
        break;
      case 4:
        p = sampleTorusSurface(rng, part.extent.x, part.extent.y);
        break;
      default:
        fc_panic("unknown part kind %d", part.kind);
    }
    return p + part.offset;
}

} // namespace

int
shapeNetPartCount(int category)
{
    fc_assert(category >= 0 && category < kShapeNetNumCategories,
              "category %d out of range", category);
    return categoryTable()[static_cast<std::size_t>(category)].first;
}

std::string
shapeNetCategoryName(int category)
{
    static const std::array<const char *, kShapeNetNumCategories> names = {
        "airplane", "bag",    "cap",    "car",       "chair",
        "earphone", "guitar", "knife",  "lamp",      "laptop",
        "motorbike", "mug",   "pistol", "rocket",    "skateboard",
        "table",
    };
    fc_assert(category >= 0 && category < kShapeNetNumCategories,
              "category %d out of range", category);
    return names[static_cast<std::size_t>(category)];
}

PointCloud
makeShapeNetObject(int category, std::size_t num_points,
                   std::uint64_t seed)
{
    const auto &entry =
        categoryTable()[static_cast<std::size_t>(category)];
    const int parts = entry.first;
    const CategorySpec &spec = entry.second;

    Pcg32 rng(seed, 0xabcdef1234567890ULL ^
                        static_cast<std::uint64_t>(category));
    PointCloud cloud;
    cloud.coords().reserve(num_points);

    float total_weight = 0.0f;
    for (int k = 0; k < parts; ++k)
        total_weight += spec[static_cast<std::size_t>(k)].weight;

    // Mirror symmetric parts (wings, legs, wheels) across x.
    for (std::size_t i = 0; i < num_points; ++i) {
        float pick = rng.uniform(0.0f, total_weight);
        int part = 0;
        for (int k = 0; k < parts; ++k) {
            const float w = spec[static_cast<std::size_t>(k)].weight;
            if (pick < w) {
                part = k;
                break;
            }
            pick -= w;
        }
        Vec3 p = samplePart(rng, spec[static_cast<std::size_t>(part)]);
        if (spec[static_cast<std::size_t>(part)].offset.x > 0.05f &&
            rng.uniform() < 0.5f) {
            p.x = -p.x;
        }
        p.x += rng.normal(0.0f, 0.004f);
        p.y += rng.normal(0.0f, 0.004f);
        p.z += rng.normal(0.0f, 0.004f);
        cloud.addPoint(p, part);
    }
    cloud.normalizeToUnitSphere();
    return cloud;
}

} // namespace fc::data
