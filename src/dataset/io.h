/**
 * @file
 * Point-cloud file I/O: ASCII PLY (with optional per-point labels)
 * and plain XYZ. Lets users round-trip the synthetic datasets into
 * standard visualization tools and load external clouds into the
 * pipeline.
 *
 * Both loaders run over an optional core::ThreadPool: the file body
 * is cut into byte chunks (boundaries advanced to line breaks — a
 * pure function of the bytes, never of the thread count), each chunk
 * is parsed independently, and the pieces are spliced in chunk
 * order. A null pool runs the same chunks inline, so the parallel
 * result is bit-identical to the serial one at any thread count.
 * For the binary fast path that skips parsing entirely, see
 * storage/fcpc_reader.h.
 */

#ifndef FC_DATASET_IO_H
#define FC_DATASET_IO_H

#include <string>

#include "dataset/point_cloud.h"

namespace fc::core {
class ThreadPool;
} // namespace fc::core

namespace fc::data {

/**
 * Write an ASCII PLY file. Labels (when present) are stored as a
 * `label` int property; features are not serialized.
 * @return false on I/O failure.
 */
bool savePly(const PointCloud &cloud, const std::string &path);

/**
 * Read an ASCII PLY produced by savePly (or any ASCII PLY whose
 * vertex element starts with float x/y/z, optionally followed by an
 * int label property).
 * @param cloud output (replaced on success)
 * @param pool  optional: parse body chunks over this pool
 *              (bit-identical to the serial parse)
 * @return false on parse or I/O failure.
 */
bool loadPly(PointCloud &cloud, const std::string &path,
             core::ThreadPool *pool = nullptr);

/** Write whitespace-separated "x y z [label]" lines. */
bool saveXyz(const PointCloud &cloud, const std::string &path);

/**
 * Read "x y z [label]" lines (comments starting with '#' skipped).
 * @param pool optional: parse chunks over this pool (bit-identical
 *             to the serial parse)
 */
bool loadXyz(PointCloud &cloud, const std::string &path,
             core::ThreadPool *pool = nullptr);

} // namespace fc::data

#endif // FC_DATASET_IO_H
