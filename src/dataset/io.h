/**
 * @file
 * Point-cloud file I/O: ASCII PLY (with optional per-point labels)
 * and plain XYZ. Lets users round-trip the synthetic datasets into
 * standard visualization tools and load external clouds into the
 * pipeline.
 */

#ifndef FC_DATASET_IO_H
#define FC_DATASET_IO_H

#include <string>

#include "dataset/point_cloud.h"

namespace fc::data {

/**
 * Write an ASCII PLY file. Labels (when present) are stored as a
 * `label` int property; features are not serialized.
 * @return false on I/O failure.
 */
bool savePly(const PointCloud &cloud, const std::string &path);

/**
 * Read an ASCII PLY produced by savePly (or any ASCII PLY whose
 * vertex element starts with float x/y/z, optionally followed by an
 * int label property).
 * @param cloud output (replaced on success)
 * @return false on parse or I/O failure.
 */
bool loadPly(PointCloud &cloud, const std::string &path);

/** Write whitespace-separated "x y z [label]" lines. */
bool saveXyz(const PointCloud &cloud, const std::string &path);

/** Read "x y z [label]" lines (comments starting with '#' skipped). */
bool loadXyz(PointCloud &cloud, const std::string &path);

} // namespace fc::data

#endif // FC_DATASET_IO_H
