/**
 * @file
 * ModelNet40-like procedural classification dataset.
 *
 * The real ModelNet40 supplies 1K-point object clouds in 40 classes.
 * Here each class is a parametric composite of surface primitives with
 * per-instance jitter in its shape parameters, normalized to the unit
 * sphere — enough structural variety that a fixed-feature PNN plus a
 * nearest-centroid head separates classes, which is all the accuracy
 * proxy (DESIGN.md §4.2) requires.
 */

#ifndef FC_DATASET_MODELNET_H
#define FC_DATASET_MODELNET_H

#include <cstdint>
#include <string>
#include <vector>

#include "dataset/point_cloud.h"

namespace fc::data {

/** Number of object classes (matches ModelNet40). */
inline constexpr int kModelNetNumClasses = 40;

/** Human-readable class name (synthetic family name). */
std::string modelNetClassName(int class_id);

/**
 * Generate one object instance.
 *
 * @param class_id   class in [0, kModelNetNumClasses)
 * @param num_points points per cloud (paper uses 1K)
 * @param seed       instance seed (shape jitter + sampling noise)
 */
PointCloud makeModelNetObject(int class_id, std::size_t num_points,
                              std::uint64_t seed);

/** A labelled set of object instances. */
struct ObjectDataset
{
    std::vector<PointCloud> clouds;
    std::vector<int> labels;
};

/**
 * Generate a balanced dataset: @p per_class instances of every class.
 * Seeds are derived from @p seed so train/test splits are disjoint
 * when given different base seeds.
 */
ObjectDataset makeModelNetDataset(std::size_t per_class,
                                  std::size_t num_points,
                                  std::uint64_t seed);

} // namespace fc::data

#endif // FC_DATASET_MODELNET_H
