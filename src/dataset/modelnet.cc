#include "dataset/modelnet.h"

#include <array>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "dataset/synthetic.h"

namespace fc::data {

namespace {

/**
 * Each class is defined by a recipe: a blend of primitive surfaces with
 * class-specific proportions and parameter ranges. Families repeat
 * with different parameter regimes to reach 40 distinct classes, the
 * way ModelNet repeats furniture archetypes at different aspect
 * ratios.
 */
enum class Family
{
    Sphere,
    Box,
    Cylinder,
    Cone,
    Torus,
    TableLike,  // flat top + legs
    ChairLike,  // seat + back + legs
    LampLike,   // pole + shade cone
    StackedBoxes,
    RingStack,  // stacked tori
};

struct Recipe
{
    Family family;
    float scale_a; // primary parameter (radius / half extent)
    float scale_b; // secondary parameter (height / minor radius)
    float jitter;  // surface noise sigma
};

constexpr int kFamilies = 10;

Recipe
classRecipe(int class_id, Pcg32 &rng)
{
    const int family = class_id % kFamilies;
    const int variant = class_id / kFamilies; // 0..3
    const float va = 0.55f + 0.3f * static_cast<float>(variant);
    const float vb = 1.45f - 0.3f * static_cast<float>(variant);
    Recipe r;
    r.family = static_cast<Family>(family);
    r.scale_a = va * rng.uniform(0.9f, 1.1f);
    r.scale_b = vb * rng.uniform(0.9f, 1.1f);
    r.jitter = 0.004f + 0.002f * static_cast<float>(variant);
    return r;
}

void
emitFamily(PointCloud &cloud, const Recipe &r, std::size_t n, Pcg32 &rng)
{
    switch (r.family) {
      case Family::Sphere:
        for (std::size_t i = 0; i < n; ++i)
            cloud.addPoint(sampleSphereSurface(rng, r.scale_a));
        break;
      case Family::Box:
        for (std::size_t i = 0; i < n; ++i)
            cloud.addPoint(sampleBoxSurface(
                rng, {r.scale_a, r.scale_a * 0.8f, r.scale_b}));
        break;
      case Family::Cylinder:
        for (std::size_t i = 0; i < n; ++i)
            cloud.addPoint(
                sampleCylinderSurface(rng, r.scale_a, 2.0f * r.scale_b));
        break;
      case Family::Cone:
        for (std::size_t i = 0; i < n; ++i)
            cloud.addPoint(
                sampleConeSurface(rng, r.scale_a, 2.0f * r.scale_b));
        break;
      case Family::Torus:
        for (std::size_t i = 0; i < n; ++i)
            cloud.addPoint(
                sampleTorusSurface(rng, r.scale_a, 0.3f * r.scale_b));
        break;
      case Family::TableLike: {
        const std::size_t top = n * 7 / 10;
        for (std::size_t i = 0; i < top; ++i) {
            Vec3 p = sampleBoxSurface(
                rng, {r.scale_a, r.scale_a, 0.05f * r.scale_b});
            p.z += r.scale_b;
            cloud.addPoint(p);
        }
        for (std::size_t i = top; i < n; ++i) {
            const int leg = static_cast<int>(rng.bounded(4));
            const float sx = (leg & 1) ? 1.0f : -1.0f;
            const float sy = (leg & 2) ? 1.0f : -1.0f;
            Vec3 p = sampleCylinderSurface(rng, 0.06f * r.scale_a,
                                           2.0f * r.scale_b);
            p.x += sx * 0.8f * r.scale_a;
            p.y += sy * 0.8f * r.scale_a;
            cloud.addPoint(p);
        }
        break;
      }
      case Family::ChairLike: {
        const std::size_t seat = n / 2;
        const std::size_t back = n / 4;
        for (std::size_t i = 0; i < seat; ++i) {
            Vec3 p = sampleBoxSurface(
                rng, {r.scale_a, r.scale_a, 0.06f * r.scale_b});
            cloud.addPoint(p);
        }
        for (std::size_t i = 0; i < back; ++i) {
            Vec3 p = sampleBoxSurface(
                rng, {r.scale_a, 0.05f * r.scale_a, r.scale_b});
            p.y -= r.scale_a;
            p.z += r.scale_b;
            cloud.addPoint(p);
        }
        for (std::size_t i = seat + back; i < n; ++i) {
            const int leg = static_cast<int>(rng.bounded(4));
            const float sx = (leg & 1) ? 1.0f : -1.0f;
            const float sy = (leg & 2) ? 1.0f : -1.0f;
            Vec3 p = sampleCylinderSurface(rng, 0.05f * r.scale_a,
                                           1.6f * r.scale_b);
            p.x += sx * 0.8f * r.scale_a;
            p.y += sy * 0.8f * r.scale_a;
            p.z -= r.scale_b;
            cloud.addPoint(p);
        }
        break;
      }
      case Family::LampLike: {
        const std::size_t pole = n / 3;
        for (std::size_t i = 0; i < pole; ++i)
            cloud.addPoint(sampleCylinderSurface(rng, 0.06f * r.scale_a,
                                                 3.0f * r.scale_b));
        for (std::size_t i = pole; i < n; ++i) {
            Vec3 p = sampleConeSurface(rng, r.scale_a, r.scale_b);
            p.z += 1.5f * r.scale_b;
            cloud.addPoint(p);
        }
        break;
      }
      case Family::StackedBoxes: {
        const std::size_t per = n / 3 + 1;
        for (std::size_t i = 0; i < n; ++i) {
            const int level = static_cast<int>(i / per);
            const float shrink =
                1.0f - 0.28f * static_cast<float>(level);
            Vec3 p = sampleBoxSurface(
                rng, {r.scale_a * shrink, r.scale_a * shrink,
                      0.3f * r.scale_b});
            p.z += 0.62f * r.scale_b * static_cast<float>(level);
            cloud.addPoint(p);
        }
        break;
      }
      case Family::RingStack: {
        const std::size_t per = n / 3 + 1;
        for (std::size_t i = 0; i < n; ++i) {
            const int level = static_cast<int>(i / per);
            Vec3 p = sampleTorusSurface(
                rng, r.scale_a * (1.0f - 0.2f * level),
                0.18f * r.scale_b);
            p.z += 0.45f * r.scale_b * static_cast<float>(level);
            cloud.addPoint(p);
        }
        break;
      }
    }
}

} // namespace

std::string
modelNetClassName(int class_id)
{
    static const std::array<const char *, kFamilies> family_names = {
        "sphere", "box",   "cylinder", "cone",    "torus",
        "table",  "chair", "lamp",     "stack",   "rings",
    };
    fc_assert(class_id >= 0 && class_id < kModelNetNumClasses,
              "class id %d out of range", class_id);
    const int family = class_id % kFamilies;
    const int variant = class_id / kFamilies;
    return std::string(family_names[static_cast<std::size_t>(family)]) +
           "_v" + std::to_string(variant);
}

PointCloud
makeModelNetObject(int class_id, std::size_t num_points,
                   std::uint64_t seed)
{
    fc_assert(class_id >= 0 && class_id < kModelNetNumClasses,
              "class id %d out of range", class_id);
    Pcg32 rng(seed, 0x9e3779b97f4a7c15ULL ^
                        static_cast<std::uint64_t>(class_id));
    const Recipe recipe = classRecipe(class_id, rng);
    PointCloud cloud;
    cloud.coords().reserve(num_points);
    emitFamily(cloud, recipe, num_points, rng);
    // Surface jitter models sensor noise.
    for (Vec3 &p : cloud.coords()) {
        p.x += rng.normal(0.0f, recipe.jitter);
        p.y += rng.normal(0.0f, recipe.jitter);
        p.z += rng.normal(0.0f, recipe.jitter);
    }
    cloud.normalizeToUnitSphere();
    return cloud;
}

ObjectDataset
makeModelNetDataset(std::size_t per_class, std::size_t num_points,
                    std::uint64_t seed)
{
    ObjectDataset ds;
    ds.clouds.reserve(per_class * kModelNetNumClasses);
    ds.labels.reserve(per_class * kModelNetNumClasses);
    for (int c = 0; c < kModelNetNumClasses; ++c) {
        for (std::size_t i = 0; i < per_class; ++i) {
            const std::uint64_t instance_seed =
                seed * 1000003ULL + static_cast<std::uint64_t>(c) * 131ULL +
                i;
            ds.clouds.push_back(
                makeModelNetObject(c, num_points, instance_seed));
            ds.labels.push_back(c);
        }
    }
    return ds;
}

} // namespace fc::data
