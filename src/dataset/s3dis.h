/**
 * @file
 * S3DIS-like procedural indoor-scene dataset for semantic segmentation.
 *
 * Real S3DIS scans cover office rooms: large planar surfaces (floor,
 * ceiling, walls) plus dense furniture clusters, with strongly
 * non-uniform point density and a small fraction of outliers (the
 * paper reports 0.5-2.5% in §VI-D). The generator reproduces those
 * density statistics, which drive every hardware result in the paper:
 * block balance, search-space sizes, and cache behaviour.
 *
 * Scene sizes span the paper's evaluation range: 4K-289K points, and
 * up to 1M for the asymptotic study.
 */

#ifndef FC_DATASET_S3DIS_H
#define FC_DATASET_S3DIS_H

#include <cstdint>

#include "dataset/point_cloud.h"

namespace fc::data {

/** Semantic classes, a subset of the 13 S3DIS classes. */
enum class S3disClass : std::int32_t
{
    Floor = 0,
    Ceiling = 1,
    Wall = 2,
    Table = 3,
    Chair = 4,
    Bookcase = 5,
    Clutter = 6,
    NumClasses = 7,
};

inline constexpr int kS3disNumClasses =
    static_cast<int>(S3disClass::NumClasses);

/** Scene-shape controls for stress experiments. */
struct SceneOptions
{
    /** Room half extents in metres. */
    Vec3 room_half{4.0f, 3.0f, 1.5f};
    /** Furniture clusters (each is a dense region). */
    std::size_t num_clusters = 10;
    /** Fraction of points that are uniform outliers (0.005-0.025). */
    float outlier_fraction = 0.015f;
    /**
     * Density contrast: ratio of cluster to structural point density.
     * Real scans concentrate points on furniture near the scanner.
     */
    float cluster_density_boost = 6.0f;
    /**
     * Adversarial mode for the imbalance study (§VI-D): two distant
     * dense regions and nothing else.
     */
    bool adversarial_two_clusters = false;
};

/**
 * Generate one indoor scene with per-point semantic labels.
 *
 * @param num_points total points (4K..1M)
 * @param seed       scene seed
 * @param options    scene-shape controls
 */
PointCloud makeS3disScene(std::size_t num_points, std::uint64_t seed,
                          const SceneOptions &options = {});

} // namespace fc::data

#endif // FC_DATASET_S3DIS_H
