/**
 * @file
 * ShapeNet-Part-like procedural part-segmentation dataset.
 *
 * Objects are composites of 2-5 labelled parts (e.g. an "airplane" has
 * body / wings / tail / engines). The per-point part label is the
 * segmentation ground truth used by the accuracy proxy.
 */

#ifndef FC_DATASET_SHAPENET_H
#define FC_DATASET_SHAPENET_H

#include <cstdint>
#include <string>

#include "dataset/point_cloud.h"

namespace fc::data {

/** Number of object categories (real ShapeNet-Part has 16). */
inline constexpr int kShapeNetNumCategories = 16;

/** Maximum number of parts per category. */
inline constexpr int kShapeNetMaxParts = 5;

/** Number of parts for one category. */
int shapeNetPartCount(int category);

/** Category name. */
std::string shapeNetCategoryName(int category);

/**
 * Generate one part-labelled object (labels in [0, partCount)).
 *
 * @param category   category in [0, kShapeNetNumCategories)
 * @param num_points points per cloud (paper uses 2K)
 * @param seed       instance seed
 */
PointCloud makeShapeNetObject(int category, std::size_t num_points,
                              std::uint64_t seed);

} // namespace fc::data

#endif // FC_DATASET_SHAPENET_H
