/**
 * @file
 * Procedural point-sampling primitives used to build the synthetic
 * datasets (DESIGN.md §4, substitution 1).
 *
 * All samplers draw from a caller-provided Pcg32 so composite scenes
 * are deterministic.
 */

#ifndef FC_DATASET_SYNTHETIC_H
#define FC_DATASET_SYNTHETIC_H

#include <cstddef>

#include "common/rng.h"
#include "common/types.h"
#include "dataset/point_cloud.h"

namespace fc::data {

/** Uniform sample on a sphere surface of given radius. */
Vec3 sampleSphereSurface(Pcg32 &rng, float radius);

/** Uniform sample inside a solid ball. */
Vec3 sampleBall(Pcg32 &rng, float radius);

/** Uniform sample on the surface of an axis-aligned box. */
Vec3 sampleBoxSurface(Pcg32 &rng, const Vec3 &half_extent);

/** Uniform sample on a cylinder side surface (axis = z). */
Vec3 sampleCylinderSurface(Pcg32 &rng, float radius, float height);

/** Uniform sample on a cone side surface (apex up, axis = z). */
Vec3 sampleConeSurface(Pcg32 &rng, float radius, float height);

/** Uniform sample on a torus surface (major/minor radii, axis = z). */
Vec3 sampleTorusSurface(Pcg32 &rng, float major, float minor);

/** Uniform sample on an axis-aligned rectangle in a given plane. */
Vec3 samplePlanePatch(Pcg32 &rng, const Vec3 &origin, const Vec3 &u,
                      const Vec3 &v);

/** Gaussian blob around a centre. */
Vec3 sampleGaussianBlob(Pcg32 &rng, const Vec3 &center, float sigma);

/**
 * Append @p n samples drawn by @p sampler-like callables to a cloud
 * with an optional label.
 */
template <typename Sampler>
void
appendSamples(PointCloud &cloud, std::size_t n, std::int32_t label,
              Sampler &&sampler)
{
    for (std::size_t i = 0; i < n; ++i)
        cloud.addPoint(sampler(), label);
}

/**
 * Simulated spinning-LiDAR frame: points on concentric elevation rings
 * intersected with a synthetic ground plane and random obstacles.
 * Mirrors the 30K-300K points/frame regime of automotive sensors
 * (paper §I). Density falls off with range, as for a real scanner.
 *
 * @param rng          seeded generator
 * @param num_points   approximate output size
 * @param num_obstacles number of box-like obstacles in the scene
 */
PointCloud makeLidarFrame(Pcg32 &rng, std::size_t num_points,
                          std::size_t num_obstacles = 12);

} // namespace fc::data

#endif // FC_DATASET_SYNTHETIC_H
