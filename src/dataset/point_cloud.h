/**
 * @file
 * Point cloud container: spatial coordinates plus an optional dense
 * feature matrix and per-point labels.
 *
 * Coordinates are stored as a contiguous array of Vec3; features are a
 * row-major [numPoints x featureDim] matrix. This mirrors the paper's
 * split between the coordinate stream consumed by point operations and
 * the feature stream consumed by gathering / MLPs (§II-A).
 *
 * A structure-of-arrays mirror of the coordinates (xs/ys/zs) feeds the
 * core::simd distance kernels. It is maintained lazily: mutators only
 * mark it dirty, and soa() rebuilds on demand. The rebuild is
 * first-touch safe: an atomic dirty flag plus a rebuild mutex let any
 * number of threads call soa() concurrently on a shared cloud — the
 * first one in rebuilds, the rest wait, and every later call is a
 * lock-free acquire load. The bulk writers on the warm inference path
 * (subsetInto, permuted) fill the mirror directly while they copy
 * coordinates, so steady-state requests never rebuild and never
 * allocate (vectors shrink within retained capacity).
 *
 * Storage comes in two modes:
 *
 *   - Owning (the default): every array lives in a std::vector owned
 *     by the cloud. All mutators work.
 *   - External (zero-copy): the arrays alias caller-provided memory —
 *     in practice an mmap'd .fcpc block (storage/fcpc_reader.h) whose
 *     on-disk layout is exactly the in-memory one (AoS coords + SoA
 *     columns + row-major features), so materializing a cloud binds
 *     six pointers and copies nothing. A shared keepalive handle
 *     guarantees the memory outlives the cloud even if the reader
 *     that produced it is destroyed first. The first mutation
 *     detach()es: the cloud deep-copies into owning vectors and drops
 *     the alias, so external clouds behave like value clouds
 *     everywhere — reads are zero-copy, writes copy-on-write.
 */

#ifndef FC_DATASET_POINT_CLOUD_H
#define FC_DATASET_POINT_CLOUD_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/simd.h"

namespace fc::data {

/**
 * Non-owning view of externally stored point-cloud arrays (the
 * zero-copy binding handed to PointCloud::bindExternal). All pointers
 * alias caller-owned memory; coords/x/y/z must each hold @p size
 * elements, features @p size x @p feature_dim row-major floats (null
 * when feature_dim == 0), labels @p size ints (null when unlabeled).
 */
struct ExternalCloudView
{
    std::size_t size = 0;
    const Vec3 *coords = nullptr;
    const float *x = nullptr;
    const float *y = nullptr;
    const float *z = nullptr;
    const float *features = nullptr;
    std::size_t feature_dim = 0;
    const std::int32_t *labels = nullptr;
};

/**
 * A point cloud of n points with optional features and labels.
 */
class PointCloud
{
  public:
    PointCloud() = default;

    /** Construct with coordinates only. */
    explicit PointCloud(std::vector<Vec3> coords)
        : coords_(std::move(coords))
    {}

    /** Deep copy; copies of an external cloud share the alias (and
     *  its keepalive) without copying point data. */
    PointCloud(const PointCloud &other) { assignFrom(other); }

    PointCloud &
    operator=(const PointCloud &other)
    {
        if (this != &other)
            assignFrom(other);
        return *this;
    }

    PointCloud(PointCloud &&other) noexcept { moveFrom(other); }

    PointCloud &
    operator=(PointCloud &&other) noexcept
    {
        if (this != &other)
            moveFrom(other);
        return *this;
    }

    std::size_t
    size() const
    {
        return external_ ? ext_.size : coords_.size();
    }

    bool empty() const { return size() == 0; }

    const Vec3 &
    operator[](std::size_t i) const
    {
        return external_ ? ext_.coords[i] : coords_[i];
    }

    Vec3 &
    operator[](std::size_t i)
    {
        detach();
        markCoordsDirty();
        return coords_[i];
    }

    /** Read-only coordinate array (aliases the mapping when
     *  external). */
    std::span<const Vec3>
    coords() const
    {
        return external_ ? std::span<const Vec3>{ext_.coords, ext_.size}
                         : std::span<const Vec3>{coords_};
    }

    /** Mutable coordinate vector; detaches an external cloud first
     *  (copy-on-write). */
    std::vector<Vec3> &
    coords()
    {
        detach();
        markCoordsDirty();
        return coords_;
    }

    /**
     * Structure-of-arrays view of the coordinates for core::simd
     * kernels; rebuilt here if a mutator ran since the last call.
     *
     * Safe to call concurrently with other soa() (and any const)
     * calls, even on a dirty cloud: the first caller rebuilds under
     * an internal mutex, everyone else waits, and subsequent calls
     * are a single acquire load. Not safe to race against mutators —
     * mutation is owner-only, as everywhere on this class. A caller
     * that keeps mutating through a reference obtained from a
     * non-const accessor after calling soa() must call
     * markCoordsDirty() itself. External clouds return the mapped
     * columns directly (never dirty, never rebuilt).
     */
    core::simd::SoaView soa() const;

    /** Force the next soa() call to rebuild. */
    void
    markCoordsDirty()
    {
        soa_dirty_.store(true, std::memory_order_release);
    }

    /** Feature channel count (0 when the cloud has no features). */
    std::size_t featureDim() const { return featureDim_; }

    /** Row-major [size x featureDim] feature matrix. */
    std::span<const float>
    features() const
    {
        return external_
                   ? std::span<const float>{ext_.features,
                                            ext_.size * featureDim_}
                   : std::span<const float>{features_};
    }

    std::vector<float> &
    features()
    {
        detach();
        return features_;
    }

    /** Feature row for one point. */
    std::span<const float>
    featureRow(std::size_t i) const
    {
        const float *base = external_ ? ext_.features : features_.data();
        return {base + i * featureDim_, featureDim_};
    }

    std::span<float>
    featureRow(std::size_t i)
    {
        detach();
        return {features_.data() + i * featureDim_, featureDim_};
    }

    /** Allocate (zero-filled) features with @p dim channels. */
    void allocateFeatures(std::size_t dim);

    /** Per-point integer labels (empty if unlabeled). */
    std::span<const std::int32_t>
    labels() const
    {
        return external_
                   ? std::span<const std::int32_t>{ext_.labels,
                                                   ext_.labels != nullptr
                                                       ? ext_.size
                                                       : 0}
                   : std::span<const std::int32_t>{labels_};
    }

    std::vector<std::int32_t> &
    labels()
    {
        detach();
        return labels_;
    }

    bool
    hasLabels() const
    {
        return external_ ? ext_.labels != nullptr : !labels_.empty();
    }

    void
    addPoint(const Vec3 &p)
    {
        detach();
        coords_.push_back(p);
        markCoordsDirty();
    }

    void
    addPoint(const Vec3 &p, std::int32_t label)
    {
        detach();
        coords_.push_back(p);
        labels_.push_back(label);
        markCoordsDirty();
    }

    /** Bounding box of all coordinates. */
    Aabb bounds() const;

    /**
     * Return a new cloud with the given point order; features and
     * labels (when present) are permuted consistently. Used to realize
     * the DFT memory layout after partitioning.
     */
    PointCloud permuted(const std::vector<PointIdx> &order) const;

    /** Subset selection; indices may repeat. */
    PointCloud subset(const std::vector<PointIdx> &indices) const;

    /** In-place subset selection: @p out is rewritten reusing its
     *  capacity (the allocation-free steady-state path). @p out must
     *  not alias this cloud. */
    void subsetInto(const std::vector<PointIdx> &indices,
                    PointCloud &out) const;

    /**
     * Normalize coordinates to fit the unit sphere centred at the
     * origin (standard ModelNet preprocessing).
     */
    void normalizeToUnitSphere();

    /**
     * Bind this cloud to externally stored arrays (zero-copy mode).
     * Existing owned storage is cleared (capacity retained); no
     * per-point work and no heap allocation happens here. @p owner is
     * a keepalive handle the cloud retains — typically the mmap of a
     * .fcpc file — so the view stays valid for the cloud's whole
     * lifetime regardless of who else releases it.
     */
    void bindExternal(const ExternalCloudView &view,
                      std::shared_ptr<const void> owner);

    /** True when the cloud aliases external storage. */
    bool isExternal() const { return external_; }

    /**
     * Deep-copy external storage into owned vectors and drop the
     * alias (and its keepalive). No-op on owning clouds. Called
     * automatically by every mutator, so external clouds are
     * copy-on-write.
     */
    void detach();

    /** Bytes of coordinate storage (3 x fp16 per point, padded to 8B). */
    std::size_t
    coordBytesFp16() const
    {
        return size() * 8;
    }

    /** Bytes of feature storage at fp16. */
    std::size_t
    featureBytesFp16() const
    {
        return size() * featureDim_ * 2;
    }

  private:
    void rebuildSoa() const;

    /** Reset to owning mode with empty (capacity-retaining) vectors;
     *  the bulk writers call this before overwriting @c this. */
    void resetToOwned();

    void assignFrom(const PointCloud &other);
    void moveFrom(PointCloud &other) noexcept;

    std::vector<Vec3> coords_;
    std::vector<float> features_;
    std::size_t featureDim_ = 0;
    std::vector<std::int32_t> labels_;

    // External (zero-copy) storage: when external_ is set, ext_
    // aliases ext_owner_'s memory and the vectors above are empty.
    bool external_ = false;
    ExternalCloudView ext_;
    std::shared_ptr<const void> ext_owner_;

    // Lazy SoA mirror of coords_ (see soa()); mutable because a const
    // soa() call may rebuild it. The atomic flag + mutex implement
    // safe concurrent first touch (double-checked rebuild-once).
    mutable std::vector<float> soa_x_;
    mutable std::vector<float> soa_y_;
    mutable std::vector<float> soa_z_;
    mutable std::atomic<bool> soa_dirty_{true};
    mutable std::mutex soa_mutex_;
};

} // namespace fc::data

#endif // FC_DATASET_POINT_CLOUD_H
