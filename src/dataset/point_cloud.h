/**
 * @file
 * Point cloud container: spatial coordinates plus an optional dense
 * feature matrix and per-point labels.
 *
 * Coordinates are stored as a contiguous array of Vec3; features are a
 * row-major [numPoints x featureDim] matrix. This mirrors the paper's
 * split between the coordinate stream consumed by point operations and
 * the feature stream consumed by gathering / MLPs (§II-A).
 *
 * A structure-of-arrays mirror of the coordinates (xs/ys/zs) feeds the
 * core::simd distance kernels. It is maintained lazily: mutators only
 * mark it dirty, and soa() rebuilds on demand. The bulk writers on the
 * warm inference path (subsetInto, permuted) fill it directly while
 * they copy coordinates, so steady-state requests never rebuild and
 * never allocate (vectors shrink within retained capacity).
 */

#ifndef FC_DATASET_POINT_CLOUD_H
#define FC_DATASET_POINT_CLOUD_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.h"
#include "core/simd.h"

namespace fc::data {

/**
 * A point cloud of n points with optional features and labels.
 */
class PointCloud
{
  public:
    PointCloud() = default;

    /** Construct with coordinates only. */
    explicit PointCloud(std::vector<Vec3> coords)
        : coords_(std::move(coords))
    {}

    std::size_t size() const { return coords_.size(); }
    bool empty() const { return coords_.empty(); }

    const Vec3 &operator[](std::size_t i) const { return coords_[i]; }

    Vec3 &
    operator[](std::size_t i)
    {
        soa_dirty_ = true;
        return coords_[i];
    }

    const std::vector<Vec3> &coords() const { return coords_; }

    std::vector<Vec3> &
    coords()
    {
        soa_dirty_ = true;
        return coords_;
    }

    /**
     * Structure-of-arrays view of the coordinates for core::simd
     * kernels; rebuilt here if a mutator ran since the last call.
     *
     * Not safe to call concurrently while dirty — ops that fan rows
     * out to the thread pool warm it with a serial soa() first. A
     * caller that keeps mutating through a reference obtained from a
     * non-const accessor after calling soa() must call
     * markCoordsDirty() itself.
     */
    core::simd::SoaView soa() const;

    /** Force the next soa() call to rebuild. */
    void markCoordsDirty() { soa_dirty_ = true; }

    /** Feature channel count (0 when the cloud has no features). */
    std::size_t featureDim() const { return featureDim_; }

    /** Row-major [size x featureDim] feature matrix. */
    const std::vector<float> &features() const { return features_; }
    std::vector<float> &features() { return features_; }

    /** Feature row for one point. */
    std::span<const float>
    featureRow(std::size_t i) const
    {
        return {features_.data() + i * featureDim_, featureDim_};
    }

    std::span<float>
    featureRow(std::size_t i)
    {
        return {features_.data() + i * featureDim_, featureDim_};
    }

    /** Allocate (zero-filled) features with @p dim channels. */
    void allocateFeatures(std::size_t dim);

    /** Per-point integer labels (empty if unlabeled). */
    const std::vector<std::int32_t> &labels() const { return labels_; }
    std::vector<std::int32_t> &labels() { return labels_; }
    bool hasLabels() const { return !labels_.empty(); }

    void
    addPoint(const Vec3 &p)
    {
        coords_.push_back(p);
        soa_dirty_ = true;
    }

    void
    addPoint(const Vec3 &p, std::int32_t label)
    {
        coords_.push_back(p);
        labels_.push_back(label);
        soa_dirty_ = true;
    }

    /** Bounding box of all coordinates. */
    Aabb bounds() const;

    /**
     * Return a new cloud with the given point order; features and
     * labels (when present) are permuted consistently. Used to realize
     * the DFT memory layout after partitioning.
     */
    PointCloud permuted(const std::vector<PointIdx> &order) const;

    /** Subset selection; indices may repeat. */
    PointCloud subset(const std::vector<PointIdx> &indices) const;

    /** In-place subset selection: @p out is rewritten reusing its
     *  capacity (the allocation-free steady-state path). @p out must
     *  not alias this cloud. */
    void subsetInto(const std::vector<PointIdx> &indices,
                    PointCloud &out) const;

    /**
     * Normalize coordinates to fit the unit sphere centred at the
     * origin (standard ModelNet preprocessing).
     */
    void normalizeToUnitSphere();

    /** Bytes of coordinate storage (3 x fp16 per point, padded to 8B). */
    std::size_t
    coordBytesFp16() const
    {
        return coords_.size() * 8;
    }

    /** Bytes of feature storage at fp16. */
    std::size_t
    featureBytesFp16() const
    {
        return coords_.size() * featureDim_ * 2;
    }

  private:
    void rebuildSoa() const;

    std::vector<Vec3> coords_;
    std::vector<float> features_;
    std::size_t featureDim_ = 0;
    std::vector<std::int32_t> labels_;

    // Lazy SoA mirror of coords_ (see soa()); mutable because a const
    // soa() call may rebuild it.
    mutable std::vector<float> soa_x_;
    mutable std::vector<float> soa_y_;
    mutable std::vector<float> soa_z_;
    mutable bool soa_dirty_ = true;
};

} // namespace fc::data

#endif // FC_DATASET_POINT_CLOUD_H
