#include "dataset/s3dis.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "dataset/synthetic.h"

namespace fc::data {

namespace {

struct Cluster
{
    Vec3 center;
    Vec3 half;
    S3disClass label;
};

} // namespace

PointCloud
makeS3disScene(std::size_t num_points, std::uint64_t seed,
               const SceneOptions &options)
{
    fc_assert(num_points >= 16, "scene needs at least 16 points");
    Pcg32 rng(seed, 0x5851f42d4c957f2dULL);
    PointCloud cloud;
    cloud.coords().reserve(num_points);
    const Vec3 rh = options.room_half;

    if (options.adversarial_two_clusters) {
        // Two dense, well-separated blobs; worst case for spatial
        // partitioning balance (paper §VI-D).
        const Vec3 c0{-rh.x * 0.8f, -rh.y * 0.8f, 0.0f};
        const Vec3 c1{rh.x * 0.8f, rh.y * 0.8f, 0.0f};
        for (std::size_t i = 0; i < num_points; ++i) {
            const Vec3 c = (i % 2 == 0) ? c0 : c1;
            cloud.addPoint(sampleGaussianBlob(rng, c, 0.35f),
                           static_cast<std::int32_t>(S3disClass::Clutter));
        }
        return cloud;
    }

    // Budget split: structural surfaces vs furniture clusters vs
    // outliers. Clusters get a density boost over their area share.
    const std::size_t outlier_n = static_cast<std::size_t>(
        static_cast<float>(num_points) * options.outlier_fraction);
    const float boost = options.cluster_density_boost;
    const float cluster_share = boost / (boost + 2.0f);
    const std::size_t cluster_n = static_cast<std::size_t>(
        static_cast<float>(num_points - outlier_n) * cluster_share);
    const std::size_t structure_n = num_points - outlier_n - cluster_n;

    // --- Structural surfaces: floor, ceiling, 4 walls. -----------------
    struct Surface
    {
        Vec3 origin, u, v;
        S3disClass label;
        float area;
    };
    std::vector<Surface> surfaces;
    const float lx = 2.0f * rh.x, ly = 2.0f * rh.y, lz = 2.0f * rh.z;
    surfaces.push_back({{-rh.x, -rh.y, -rh.z},
                        {lx, 0, 0},
                        {0, ly, 0},
                        S3disClass::Floor,
                        lx * ly});
    surfaces.push_back({{-rh.x, -rh.y, rh.z},
                        {lx, 0, 0},
                        {0, ly, 0},
                        S3disClass::Ceiling,
                        lx * ly});
    surfaces.push_back({{-rh.x, -rh.y, -rh.z},
                        {lx, 0, 0},
                        {0, 0, lz},
                        S3disClass::Wall,
                        lx * lz});
    surfaces.push_back({{-rh.x, rh.y, -rh.z},
                        {lx, 0, 0},
                        {0, 0, lz},
                        S3disClass::Wall,
                        lx * lz});
    surfaces.push_back({{-rh.x, -rh.y, -rh.z},
                        {0, ly, 0},
                        {0, 0, lz},
                        S3disClass::Wall,
                        ly * lz});
    surfaces.push_back({{rh.x, -rh.y, -rh.z},
                        {0, ly, 0},
                        {0, 0, lz},
                        S3disClass::Wall,
                        ly * lz});
    float total_area = 0.0f;
    for (const Surface &s : surfaces)
        total_area += s.area;
    for (std::size_t i = 0; i < structure_n; ++i) {
        float pick = rng.uniform(0.0f, total_area);
        const Surface *chosen = &surfaces.back();
        for (const Surface &s : surfaces) {
            if (pick < s.area) {
                chosen = &s;
                break;
            }
            pick -= s.area;
        }
        Vec3 p = samplePlanePatch(rng, chosen->origin, chosen->u,
                                  chosen->v);
        p.x += rng.normal(0.0f, 0.01f);
        p.y += rng.normal(0.0f, 0.01f);
        p.z += rng.normal(0.0f, 0.01f);
        cloud.addPoint(p, static_cast<std::int32_t>(chosen->label));
    }

    // --- Furniture clusters: dense boxes/blobs on the floor. -----------
    std::vector<Cluster> clusters;
    clusters.reserve(options.num_clusters);
    static const S3disClass kFurniture[] = {
        S3disClass::Table, S3disClass::Chair, S3disClass::Bookcase,
        S3disClass::Clutter};
    for (std::size_t k = 0; k < options.num_clusters; ++k) {
        Cluster c;
        c.half = {rng.uniform(0.2f, 0.7f), rng.uniform(0.2f, 0.7f),
                  rng.uniform(0.2f, 0.6f)};
        // Keep furniture inside the room: the cluster extent must not
        // poke through the floor or walls.
        c.center = {rng.uniform(-rh.x * 0.85f + c.half.x,
                                rh.x * 0.85f - c.half.x),
                    rng.uniform(-rh.y * 0.85f + c.half.y,
                                rh.y * 0.85f - c.half.y),
                    rng.uniform(-rh.z + c.half.z, -rh.z * 0.2f)};
        c.label = kFurniture[rng.bounded(4)];
        clusters.push_back(c);
    }
    // Cluster sizes follow a power-ish law: some clusters much denser,
    // mirroring the heavy-tailed density of real scans.
    std::vector<float> weights(clusters.size());
    float wsum = 0.0f;
    for (std::size_t k = 0; k < clusters.size(); ++k) {
        weights[k] = 1.0f / static_cast<float>(k + 1);
        wsum += weights[k];
    }
    for (std::size_t i = 0; i < cluster_n && !clusters.empty(); ++i) {
        float pick = rng.uniform(0.0f, wsum);
        std::size_t k = clusters.size() - 1;
        for (std::size_t j = 0; j < clusters.size(); ++j) {
            if (pick < weights[j]) {
                k = j;
                break;
            }
            pick -= weights[j];
        }
        const Cluster &c = clusters[k];
        Vec3 p = sampleBoxSurface(rng, c.half) + c.center;
        p.x += rng.normal(0.0f, 0.008f);
        p.y += rng.normal(0.0f, 0.008f);
        p.z += rng.normal(0.0f, 0.008f);
        cloud.addPoint(p, static_cast<std::int32_t>(c.label));
    }

    // --- Outliers: uniform in an inflated room volume. ------------------
    for (std::size_t i = 0; i < outlier_n; ++i) {
        cloud.addPoint({rng.uniform(-rh.x * 1.3f, rh.x * 1.3f),
                        rng.uniform(-rh.y * 1.3f, rh.y * 1.3f),
                        rng.uniform(-rh.z * 1.3f, rh.z * 1.3f)},
                       static_cast<std::int32_t>(S3disClass::Clutter));
    }

    return cloud;
}

} // namespace fc::data
