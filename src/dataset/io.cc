#include "dataset/io.h"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "core/parallel.h"

namespace fc::data {

namespace {

/**
 * Both text loaders share one chunked parser: the body is cut at
 * fixed byte strides (advanced to the next newline), each chunk is
 * parsed into local arrays with std::from_chars, and the pieces are
 * spliced in chunk order. Chunk boundaries depend only on the bytes,
 * and every line is parsed by the same routine, so the result is
 * bit-identical whether the chunks run inline (pool == nullptr) or
 * across any number of threads.
 */

/** Byte stride per parse chunk (before advancing to a newline).
 *  64 KiB ≈ 3-4K lines: coarse enough to amortize task dispatch,
 *  fine enough that a handful of chunks saturate a small pool. */
constexpr std::size_t kParseChunkBytes = 64 * 1024;

const char *
skipBlanks(const char *p, const char *end)
{
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r'))
        ++p;
    return p;
}

bool
parseFloat(const char *&p, const char *end, float &value)
{
    p = skipBlanks(p, end);
    const std::from_chars_result r = std::from_chars(p, end, value);
    if (r.ec != std::errc{})
        return false;
    p = r.ptr;
    return true;
}

bool
parseInt(const char *&p, const char *end, std::int32_t &value)
{
    p = skipBlanks(p, end);
    const std::from_chars_result r = std::from_chars(p, end, value);
    if (r.ec != std::errc{})
        return false;
    p = r.ptr;
    return true;
}

/** What one body line contained. */
enum class LineKind : std::uint8_t {
    Blank,   ///< empty or (in XYZ mode) a '#' comment
    Point,   ///< x y z
    Labeled, ///< x y z label
    Error,   ///< malformed
};

/** Parse one line (no trailing newline). @p allow_comments enables
 *  the XYZ '#' rule; PLY bodies have no comments. */
LineKind
parseLine(const char *p, const char *end, bool allow_comments, Vec3 &out,
          std::int32_t &label)
{
    p = skipBlanks(p, end);
    if (p == end)
        return LineKind::Blank;
    if (allow_comments && *p == '#')
        return LineKind::Blank;
    if (!parseFloat(p, end, out.x) || !parseFloat(p, end, out.y) ||
        !parseFloat(p, end, out.z))
        return LineKind::Error;
    if (parseInt(p, end, label))
        return LineKind::Labeled;
    return LineKind::Point;
}

/** Output of one chunk's parse. */
struct ParsedChunk
{
    std::vector<Vec3> coords;
    std::vector<std::int32_t> labels; ///< one per Labeled line
    std::size_t labeled = 0;
    bool ok = true;
};

/**
 * Chunk boundaries for [begin, end) of @p data: fixed strides
 * advanced past the next '\n'. Pure function of the bytes — never of
 * the pool — so the parallel splice reproduces the serial parse
 * byte for byte.
 */
std::vector<std::size_t>
chunkBounds(const char *data, std::size_t begin, std::size_t end)
{
    std::vector<std::size_t> bounds;
    bounds.push_back(begin);
    for (std::size_t next = begin + kParseChunkBytes; next < end;
         next += kParseChunkBytes) {
        const void *nl = std::memchr(data + next, '\n', end - next);
        const std::size_t cut =
            nl == nullptr
                ? end
                : static_cast<std::size_t>(
                      static_cast<const char *>(nl) - data) +
                      1;
        if (cut > bounds.back() && cut < end)
            bounds.push_back(cut);
        if (cut >= end)
            break;
    }
    bounds.push_back(end);
    return bounds;
}

/** Parse every line of [begin, end). */
void
parseChunk(const char *data, std::size_t begin, std::size_t end,
           bool allow_comments, ParsedChunk &out)
{
    std::size_t pos = begin;
    while (pos < end) {
        const void *nl = std::memchr(data + pos, '\n', end - pos);
        const std::size_t line_end =
            nl == nullptr ? end
                          : static_cast<std::size_t>(
                                static_cast<const char *>(nl) - data);
        Vec3 p;
        std::int32_t label = 0;
        switch (parseLine(data + pos, data + line_end, allow_comments,
                          p, label)) {
        case LineKind::Blank:
            break;
        case LineKind::Point:
            out.coords.push_back(p);
            break;
        case LineKind::Labeled:
            out.coords.push_back(p);
            out.labels.push_back(label);
            ++out.labeled;
            break;
        case LineKind::Error:
            out.ok = false;
            return;
        }
        pos = line_end + 1;
    }
}

/** How parseBody treats a trailing integer column. */
enum class LabelPolicy : std::uint8_t {
    Auto,    ///< XYZ rule: all labeled, or none, or error
    Require, ///< labeled PLY: every row must carry its label
    Ignore,  ///< unlabeled PLY: extra numeric columns are discarded
};

/**
 * Parse [begin, end) of @p data into @p cloud, chunked over @p pool.
 * @return false on any malformed line (or a LabelPolicy violation).
 */
bool
parseBody(const char *data, std::size_t begin, std::size_t end,
          bool allow_comments, LabelPolicy policy,
          core::ThreadPool *pool, PointCloud &cloud)
{
    const std::vector<std::size_t> bounds =
        chunkBounds(data, begin, end);
    const std::size_t num_chunks = bounds.size() - 1;
    std::vector<ParsedChunk> chunks(num_chunks);
    core::parallelFor(pool, 0, num_chunks, 1,
                      [&](std::size_t cb, std::size_t ce) {
                          for (std::size_t c = cb; c < ce; ++c)
                              parseChunk(data, bounds[c],
                                         bounds[c + 1],
                                         allow_comments, chunks[c]);
                      });

    std::size_t total = 0;
    std::size_t labeled = 0;
    for (const ParsedChunk &c : chunks) {
        if (!c.ok)
            return false;
        total += c.coords.size();
        labeled += c.labeled;
    }
    if (policy == LabelPolicy::Auto && labeled != 0 &&
        labeled != total)
        return false; // mixed labeled/unlabeled rows
    if (policy == LabelPolicy::Require && labeled != total)
        return false;

    PointCloud result;
    std::vector<Vec3> &coords = result.coords();
    coords.reserve(total);
    for (const ParsedChunk &c : chunks)
        coords.insert(coords.end(), c.coords.begin(), c.coords.end());
    if (policy != LabelPolicy::Ignore && labeled == total &&
        total != 0) {
        std::vector<std::int32_t> &labels = result.labels();
        labels.reserve(total);
        for (const ParsedChunk &c : chunks)
            labels.insert(labels.end(), c.labels.begin(),
                          c.labels.end());
    }
    cloud = std::move(result);
    return true;
}

/** Slurp a whole file. @return false on open/read failure. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    if (!in)
        return false;
    const std::streamoff bytes = in.tellg();
    out.resize(static_cast<std::size_t>(std::max<std::streamoff>(
        bytes, 0)));
    in.seekg(0);
    if (!out.empty())
        in.read(out.data(),
                static_cast<std::streamsize>(out.size()));
    return static_cast<bool>(in);
}

} // namespace

bool
savePly(const PointCloud &cloud, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    const bool labeled = cloud.hasLabels();
    out << "ply\nformat ascii 1.0\n"
        << "comment FractalCloud point cloud\n"
        << "element vertex " << cloud.size() << "\n"
        << "property float x\nproperty float y\nproperty float z\n";
    if (labeled)
        out << "property int label\n";
    out << "end_header\n";
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        out << cloud[i].x << ' ' << cloud[i].y << ' ' << cloud[i].z;
        if (labeled)
            out << ' ' << cloud.labels()[i];
        out << '\n';
    }
    return static_cast<bool>(out);
}

bool
loadPly(PointCloud &cloud, const std::string &path,
        core::ThreadPool *pool)
{
    std::string bytes;
    if (!readFile(path, bytes))
        return false;

    // Header parse (serial: a handful of short lines).
    std::size_t pos = 0;
    const auto nextLine = [&bytes, &pos](std::string &line) {
        if (pos >= bytes.size())
            return false;
        const void *nl =
            std::memchr(bytes.data() + pos, '\n', bytes.size() - pos);
        const std::size_t line_end =
            nl == nullptr ? bytes.size()
                          : static_cast<std::size_t>(
                                static_cast<const char *>(nl) -
                                bytes.data());
        line.assign(bytes, pos, line_end - pos);
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        pos = line_end + 1;
        return true;
    };

    std::string line;
    if (!nextLine(line) || line != "ply")
        return false;
    std::size_t vertices = 0;
    bool labeled = false;
    int property_index = 0;
    bool header_done = false;
    while (nextLine(line)) {
        std::istringstream ls(line);
        std::string token;
        ls >> token;
        if (token == "end_header") {
            header_done = true;
            break;
        }
        if (token == "element") {
            std::string kind;
            ls >> kind >> vertices;
            if (kind != "vertex")
                return false;
        } else if (token == "property") {
            std::string type, name;
            ls >> type >> name;
            // Expect x, y, z first; any following int property is
            // treated as the label.
            if (property_index >= 3 &&
                (type == "int" || type == "uchar"))
                labeled = true;
            ++property_index;
        }
    }
    if (!header_done)
        return false;

    PointCloud result;
    if (!parseBody(bytes.data(), std::min(pos, bytes.size()),
                   bytes.size(), /*allow_comments=*/false,
                   labeled ? LabelPolicy::Require
                           : LabelPolicy::Ignore,
                   pool, result))
        return false;
    if (result.size() != vertices)
        return false;
    cloud = std::move(result);
    return true;
}

bool
saveXyz(const PointCloud &cloud, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    const bool labeled = cloud.hasLabels();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        out << cloud[i].x << ' ' << cloud[i].y << ' ' << cloud[i].z;
        if (labeled)
            out << ' ' << cloud.labels()[i];
        out << '\n';
    }
    return static_cast<bool>(out);
}

bool
loadXyz(PointCloud &cloud, const std::string &path,
        core::ThreadPool *pool)
{
    std::string bytes;
    if (!readFile(path, bytes))
        return false;
    PointCloud result;
    if (!parseBody(bytes.data(), 0, bytes.size(),
                   /*allow_comments=*/true, LabelPolicy::Auto, pool,
                   result))
        return false;
    cloud = std::move(result);
    return true;
}

} // namespace fc::data
