#include "dataset/io.h"

#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace fc::data {

bool
savePly(const PointCloud &cloud, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    const bool labeled = cloud.hasLabels();
    out << "ply\nformat ascii 1.0\n"
        << "comment FractalCloud point cloud\n"
        << "element vertex " << cloud.size() << "\n"
        << "property float x\nproperty float y\nproperty float z\n";
    if (labeled)
        out << "property int label\n";
    out << "end_header\n";
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        out << cloud[i].x << ' ' << cloud[i].y << ' ' << cloud[i].z;
        if (labeled)
            out << ' ' << cloud.labels()[i];
        out << '\n';
    }
    return static_cast<bool>(out);
}

bool
loadPly(PointCloud &cloud, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    if (!std::getline(in, line) || line != "ply")
        return false;

    std::size_t vertices = 0;
    bool labeled = false;
    int property_index = 0;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string token;
        ls >> token;
        if (token == "end_header")
            break;
        if (token == "element") {
            std::string kind;
            ls >> kind >> vertices;
            if (kind != "vertex")
                return false;
        } else if (token == "property") {
            std::string type, name;
            ls >> type >> name;
            // Expect x, y, z first; any following int property is
            // treated as the label.
            if (property_index >= 3 &&
                (type == "int" || type == "uchar"))
                labeled = true;
            ++property_index;
        }
    }

    PointCloud result;
    result.coords().reserve(vertices);
    for (std::size_t i = 0; i < vertices; ++i) {
        if (!std::getline(in, line))
            return false;
        std::istringstream ls(line);
        Vec3 p;
        ls >> p.x >> p.y >> p.z;
        if (!ls)
            return false;
        if (labeled) {
            std::int32_t label = 0;
            ls >> label;
            result.addPoint(p, label);
        } else {
            result.addPoint(p);
        }
    }
    cloud = std::move(result);
    return true;
}

bool
saveXyz(const PointCloud &cloud, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return false;
    const bool labeled = cloud.hasLabels();
    for (std::size_t i = 0; i < cloud.size(); ++i) {
        out << cloud[i].x << ' ' << cloud[i].y << ' ' << cloud[i].z;
        if (labeled)
            out << ' ' << cloud.labels()[i];
        out << '\n';
    }
    return static_cast<bool>(out);
}

bool
loadXyz(PointCloud &cloud, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return false;
    PointCloud result;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        Vec3 p;
        ls >> p.x >> p.y >> p.z;
        if (!ls)
            return false;
        std::int32_t label;
        if (ls >> label)
            result.addPoint(p, label);
        else
            result.addPoint(p);
    }
    if (!result.labels().empty() &&
        result.labels().size() != result.size()) {
        return false; // mixed labeled/unlabeled rows
    }
    cloud = std::move(result);
    return true;
}

} // namespace fc::data
