#include "dataset/point_cloud.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fc::data {

core::simd::SoaView
PointCloud::soa() const
{
    if (external_)
        return {ext_.x, ext_.y, ext_.z};
    // Double-checked rebuild-once: the acquire load pairs with the
    // release store below, so a thread that observes "clean" also
    // observes the rebuilt mirror. Concurrent first-touch callers
    // serialize on the mutex; steady-state callers never take it.
    if (soa_dirty_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lock(soa_mutex_);
        if (soa_dirty_.load(std::memory_order_relaxed)) {
            rebuildSoa();
            soa_dirty_.store(false, std::memory_order_release);
        }
    }
    return {soa_x_.data(), soa_y_.data(), soa_z_.data()};
}

void
PointCloud::rebuildSoa() const
{
    const std::size_t n = coords_.size();
    soa_x_.resize(n);
    soa_y_.resize(n);
    soa_z_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        soa_x_[i] = coords_[i].x;
        soa_y_[i] = coords_[i].y;
        soa_z_[i] = coords_[i].z;
    }
}

void
PointCloud::bindExternal(const ExternalCloudView &view,
                         std::shared_ptr<const void> owner)
{
    fc_assert(view.coords != nullptr && view.x != nullptr &&
                  view.y != nullptr && view.z != nullptr,
              "external view must provide AoS coords and SoA columns");
    fc_assert(view.feature_dim == 0 || view.features != nullptr,
              "external view declares %zu feature channels but no data",
              view.feature_dim);
    coords_.clear();
    features_.clear();
    labels_.clear();
    soa_x_.clear();
    soa_y_.clear();
    soa_z_.clear();
    external_ = true;
    ext_ = view;
    ext_owner_ = std::move(owner);
    featureDim_ = view.feature_dim;
    // The mapped columns ARE the mirror; the lazy flag is moot until
    // a mutator detaches, at which point detach() re-arms it.
    soa_dirty_.store(false, std::memory_order_release);
}

void
PointCloud::detach()
{
    if (!external_)
        return;
    const ExternalCloudView view = ext_;
    external_ = false;
    ext_ = {};
    coords_.assign(view.coords, view.coords + view.size);
    if (view.feature_dim > 0)
        features_.assign(view.features,
                         view.features + view.size * view.feature_dim);
    else
        features_.clear();
    featureDim_ = view.feature_dim;
    if (view.labels != nullptr)
        labels_.assign(view.labels, view.labels + view.size);
    else
        labels_.clear();
    markCoordsDirty();
    ext_owner_.reset(); // last: the view above aliased this memory
}

void
PointCloud::resetToOwned()
{
    external_ = false;
    ext_ = {};
    ext_owner_.reset();
}

void
PointCloud::assignFrom(const PointCloud &other)
{
    coords_ = other.coords_;
    features_ = other.features_;
    featureDim_ = other.featureDim_;
    labels_ = other.labels_;
    external_ = other.external_;
    ext_ = other.ext_;
    ext_owner_ = other.ext_owner_;
    if (other.soa_dirty_.load(std::memory_order_acquire)) {
        soa_x_.clear();
        soa_y_.clear();
        soa_z_.clear();
        soa_dirty_.store(true, std::memory_order_release);
    } else {
        soa_x_ = other.soa_x_;
        soa_y_ = other.soa_y_;
        soa_z_ = other.soa_z_;
        soa_dirty_.store(false, std::memory_order_release);
    }
}

void
PointCloud::moveFrom(PointCloud &other) noexcept
{
    coords_ = std::move(other.coords_);
    features_ = std::move(other.features_);
    featureDim_ = other.featureDim_;
    labels_ = std::move(other.labels_);
    external_ = other.external_;
    ext_ = other.ext_;
    ext_owner_ = std::move(other.ext_owner_);
    soa_x_ = std::move(other.soa_x_);
    soa_y_ = std::move(other.soa_y_);
    soa_z_ = std::move(other.soa_z_);
    soa_dirty_.store(
        other.soa_dirty_.load(std::memory_order_acquire),
        std::memory_order_release);
    other.external_ = false;
    other.ext_ = {};
    other.featureDim_ = 0;
    other.soa_dirty_.store(true, std::memory_order_release);
}

void
PointCloud::allocateFeatures(std::size_t dim)
{
    detach();
    featureDim_ = dim;
    features_.assign(coords_.size() * dim, 0.0f);
}

Aabb
PointCloud::bounds() const
{
    Aabb box;
    for (const Vec3 &p : coords())
        box.extend(p);
    return box;
}

PointCloud
PointCloud::permuted(const std::vector<PointIdx> &order) const
{
    fc_assert(order.size() == size(),
              "permutation arity %zu != cloud size %zu", order.size(),
              size());
    const std::span<const Vec3> src = coords();
    PointCloud out;
    out.coords_.resize(src.size());
    out.soa_x_.resize(src.size());
    out.soa_y_.resize(src.size());
    out.soa_z_.resize(src.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        const Vec3 &p = src[order[i]];
        out.coords_[i] = p;
        out.soa_x_[i] = p.x;
        out.soa_y_[i] = p.y;
        out.soa_z_[i] = p.z;
    }
    out.soa_dirty_.store(false, std::memory_order_release);
    if (featureDim_ > 0) {
        const std::span<const float> feat = features();
        out.featureDim_ = featureDim_;
        out.features_.resize(feat.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            const float *from = feat.data() + order[i] * featureDim_;
            float *dst = out.features_.data() + i * featureDim_;
            std::copy(from, from + featureDim_, dst);
        }
    }
    if (hasLabels()) {
        const std::span<const std::int32_t> lab = labels();
        out.labels_.resize(lab.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            out.labels_[i] = lab[order[i]];
    }
    return out;
}

void
PointCloud::subsetInto(const std::vector<PointIdx> &indices,
                       PointCloud &out) const
{
    fc_assert(&out != this, "subsetInto cannot run in place");
    out.resetToOwned();
    const std::span<const Vec3> src = coords();
    out.coords_.resize(indices.size());
    out.soa_x_.resize(indices.size());
    out.soa_y_.resize(indices.size());
    out.soa_z_.resize(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const PointIdx idx = indices[i];
        fc_assert(idx < src.size(), "subset index %u out of range",
                  idx);
        const Vec3 &p = src[idx];
        out.coords_[i] = p;
        out.soa_x_[i] = p.x;
        out.soa_y_[i] = p.y;
        out.soa_z_[i] = p.z;
    }
    out.soa_dirty_.store(false, std::memory_order_release);
    out.featureDim_ = featureDim_;
    out.features_.resize(indices.size() * featureDim_);
    if (featureDim_ > 0) {
        const std::span<const float> feat = features();
        for (std::size_t i = 0; i < indices.size(); ++i) {
            const float *from =
                feat.data() + indices[i] * featureDim_;
            std::copy(from, from + featureDim_,
                      out.features_.data() + i * featureDim_);
        }
    }
    if (hasLabels()) {
        const std::span<const std::int32_t> lab = labels();
        out.labels_.resize(indices.size());
        for (std::size_t i = 0; i < indices.size(); ++i)
            out.labels_[i] = lab[indices[i]];
    } else {
        out.labels_.clear();
    }
}

PointCloud
PointCloud::subset(const std::vector<PointIdx> &indices) const
{
    PointCloud out;
    subsetInto(indices, out);
    return out;
}

void
PointCloud::normalizeToUnitSphere()
{
    detach();
    markCoordsDirty();
    if (coords_.empty())
        return;
    Vec3 centroid{0, 0, 0};
    for (const Vec3 &p : coords_)
        centroid += p;
    const float inv_n = 1.0f / static_cast<float>(coords_.size());
    centroid = centroid * inv_n;
    float max_r2 = 0.0f;
    for (Vec3 &p : coords_) {
        p = p - centroid;
        max_r2 = std::max(max_r2, p.norm2());
    }
    if (max_r2 <= 0.0f)
        return;
    const float inv_r = 1.0f / std::sqrt(max_r2);
    for (Vec3 &p : coords_)
        p = p * inv_r;
}

} // namespace fc::data
