#include "dataset/point_cloud.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fc::data {

core::simd::SoaView
PointCloud::soa() const
{
    if (soa_dirty_)
        rebuildSoa();
    return {soa_x_.data(), soa_y_.data(), soa_z_.data()};
}

void
PointCloud::rebuildSoa() const
{
    const std::size_t n = coords_.size();
    soa_x_.resize(n);
    soa_y_.resize(n);
    soa_z_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
        soa_x_[i] = coords_[i].x;
        soa_y_[i] = coords_[i].y;
        soa_z_[i] = coords_[i].z;
    }
    soa_dirty_ = false;
}

void
PointCloud::allocateFeatures(std::size_t dim)
{
    featureDim_ = dim;
    features_.assign(coords_.size() * dim, 0.0f);
}

Aabb
PointCloud::bounds() const
{
    Aabb box;
    for (const Vec3 &p : coords_)
        box.extend(p);
    return box;
}

PointCloud
PointCloud::permuted(const std::vector<PointIdx> &order) const
{
    fc_assert(order.size() == coords_.size(),
              "permutation arity %zu != cloud size %zu", order.size(),
              coords_.size());
    PointCloud out;
    out.coords_.resize(coords_.size());
    out.soa_x_.resize(coords_.size());
    out.soa_y_.resize(coords_.size());
    out.soa_z_.resize(coords_.size());
    for (std::size_t i = 0; i < order.size(); ++i) {
        const Vec3 &p = coords_[order[i]];
        out.coords_[i] = p;
        out.soa_x_[i] = p.x;
        out.soa_y_[i] = p.y;
        out.soa_z_[i] = p.z;
    }
    out.soa_dirty_ = false;
    if (featureDim_ > 0) {
        out.featureDim_ = featureDim_;
        out.features_.resize(features_.size());
        for (std::size_t i = 0; i < order.size(); ++i) {
            const float *src = features_.data() + order[i] * featureDim_;
            float *dst = out.features_.data() + i * featureDim_;
            std::copy(src, src + featureDim_, dst);
        }
    }
    if (!labels_.empty()) {
        out.labels_.resize(labels_.size());
        for (std::size_t i = 0; i < order.size(); ++i)
            out.labels_[i] = labels_[order[i]];
    }
    return out;
}

void
PointCloud::subsetInto(const std::vector<PointIdx> &indices,
                       PointCloud &out) const
{
    fc_assert(&out != this, "subsetInto cannot run in place");
    out.coords_.resize(indices.size());
    out.soa_x_.resize(indices.size());
    out.soa_y_.resize(indices.size());
    out.soa_z_.resize(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        const PointIdx idx = indices[i];
        fc_assert(idx < coords_.size(), "subset index %u out of range",
                  idx);
        const Vec3 &p = coords_[idx];
        out.coords_[i] = p;
        out.soa_x_[i] = p.x;
        out.soa_y_[i] = p.y;
        out.soa_z_[i] = p.z;
    }
    out.soa_dirty_ = false;
    out.featureDim_ = featureDim_;
    out.features_.resize(indices.size() * featureDim_);
    if (featureDim_ > 0) {
        for (std::size_t i = 0; i < indices.size(); ++i) {
            const float *src =
                features_.data() + indices[i] * featureDim_;
            std::copy(src, src + featureDim_,
                      out.features_.data() + i * featureDim_);
        }
    }
    if (!labels_.empty()) {
        out.labels_.resize(indices.size());
        for (std::size_t i = 0; i < indices.size(); ++i)
            out.labels_[i] = labels_[indices[i]];
    } else {
        out.labels_.clear();
    }
}

PointCloud
PointCloud::subset(const std::vector<PointIdx> &indices) const
{
    PointCloud out;
    subsetInto(indices, out);
    return out;
}

void
PointCloud::normalizeToUnitSphere()
{
    soa_dirty_ = true;
    if (coords_.empty())
        return;
    Vec3 centroid{0, 0, 0};
    for (const Vec3 &p : coords_)
        centroid += p;
    const float inv_n = 1.0f / static_cast<float>(coords_.size());
    centroid = centroid * inv_n;
    float max_r2 = 0.0f;
    for (Vec3 &p : coords_) {
        p = p - centroid;
        max_r2 = std::max(max_r2, p.norm2());
    }
    if (max_r2 <= 0.0f)
        return;
    const float inv_r = 1.0f / std::sqrt(max_r2);
    for (Vec3 &p : coords_)
        p = p * inv_r;
}

} // namespace fc::data
