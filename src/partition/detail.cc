#include "partition/detail.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace fc::part::detail {

void
replaySplits(BlockTree &tree, NodeIdx node_idx, const SplitRec *rec,
             PartitionStats &stats)
{
    if (rec == nullptr)
        return;
    stats += rec->local;
    if (rec->dim < 0)
        return; // all-degenerate leaf: stats only
    const std::uint32_t begin = tree.node(node_idx).begin;
    const std::uint32_t end = tree.node(node_idx).end;
    const std::uint16_t depth = tree.node(node_idx).depth;

    BlockNode left;
    left.begin = begin;
    left.end = rec->split;
    left.parent = node_idx;
    left.depth = static_cast<std::uint16_t>(depth + 1);
    BlockNode right;
    right.begin = rec->split;
    right.end = end;
    right.parent = node_idx;
    right.depth = static_cast<std::uint16_t>(depth + 1);

    const NodeIdx left_idx = tree.addNode(left);
    const NodeIdx right_idx = tree.addNode(right);
    BlockNode &parent = tree.node(node_idx);
    parent.left = left_idx;
    parent.right = right_idx;
    parent.splitDim = rec->dim;
    parent.splitValue = rec->value;

    replaySplits(tree, left_idx, rec->left.get(), stats);
    replaySplits(tree, right_idx, rec->right.get(), stats);
}

void
computeBounds(BlockTree &tree, const data::PointCloud &cloud)
{
    // Leaves first (any order), then internal nodes children-before-
    // parent. Nodes are appended parent-before-child by all builders,
    // so a reverse sweep sees children first.
    for (std::size_t i = tree.numNodes(); i-- > 0;) {
        BlockNode &n = tree.node(static_cast<NodeIdx>(i));
        n.bounds = Aabb{};
        if (n.isLeaf()) {
            for (std::uint32_t pos = n.begin; pos < n.end; ++pos)
                n.bounds.extend(cloud[tree.order()[pos]]);
        } else {
            n.bounds.extend(tree.node(n.left).bounds);
            n.bounds.extend(tree.node(n.right).bounds);
        }
    }
}

std::uint32_t
splitRange(std::vector<PointIdx> &order, const data::PointCloud &cloud,
           std::uint32_t begin, std::uint32_t end, int dim,
           float split_value)
{
    auto first = order.begin() + begin;
    auto last = order.begin() + end;
    auto mid = std::partition(first, last, [&](PointIdx idx) {
        return cloud[idx][dim] < split_value;
    });
    return static_cast<std::uint32_t>(mid - order.begin());
}

std::uint32_t
splitRange(BlockTree &tree, const data::PointCloud &cloud,
           std::uint32_t begin, std::uint32_t end, int dim,
           float split_value)
{
    return splitRange(tree.order(), cloud, begin, end, dim,
                      split_value);
}

std::pair<float, float>
rangeExtrema(const std::vector<PointIdx> &order,
             const data::PointCloud &cloud, std::uint32_t begin,
             std::uint32_t end, int dim)
{
    fc_assert(begin < end, "extrema over empty range");
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (std::uint32_t pos = begin; pos < end; ++pos) {
        const float v = cloud[order[pos]][dim];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    return {lo, hi};
}

} // namespace fc::part::detail
