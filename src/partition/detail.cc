#include "partition/detail.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace fc::part::detail {

void
replaySplits(BlockTree &tree, NodeIdx node_idx, const SplitRec *rec,
             PartitionStats &stats)
{
    if (rec == nullptr)
        return;
    stats += rec->local;
    if (rec->dim < 0)
        return; // all-degenerate leaf: stats only
    const std::uint32_t begin = tree.node(node_idx).begin;
    const std::uint32_t end = tree.node(node_idx).end;
    const std::uint16_t depth = tree.node(node_idx).depth;

    BlockNode left;
    left.begin = begin;
    left.end = rec->split;
    left.parent = node_idx;
    left.depth = static_cast<std::uint16_t>(depth + 1);
    BlockNode right;
    right.begin = rec->split;
    right.end = end;
    right.parent = node_idx;
    right.depth = static_cast<std::uint16_t>(depth + 1);

    const NodeIdx left_idx = tree.addNode(left);
    const NodeIdx right_idx = tree.addNode(right);
    BlockNode &parent = tree.node(node_idx);
    parent.left = left_idx;
    parent.right = right_idx;
    parent.splitDim = rec->dim;
    parent.splitValue = rec->value;

    replaySplits(tree, left_idx, rec->left, stats);
    replaySplits(tree, right_idx, rec->right, stats);
}

void
computeBounds(BlockTree &tree, const data::PointCloud &cloud)
{
    // Leaves first (any order), then internal nodes children-before-
    // parent. Nodes are appended parent-before-child by all builders,
    // so a reverse sweep sees children first.
    for (std::size_t i = tree.numNodes(); i-- > 0;) {
        BlockNode &n = tree.node(static_cast<NodeIdx>(i));
        n.bounds = Aabb{};
        if (n.isLeaf()) {
            for (std::uint32_t pos = n.begin; pos < n.end; ++pos)
                n.bounds.extend(cloud[tree.order()[pos]]);
        } else {
            n.bounds.extend(tree.node(n.left).bounds);
            n.bounds.extend(tree.node(n.right).bounds);
        }
    }
}

namespace {

/**
 * The chunked root-split: std::partition each fixed-grain chunk
 * independently, then merge two-way in chunk order (left halves
 * first, right halves after). Chunk boundaries depend only on the
 * slice and kSplitGrain, so the arrangement is a pure function of the
 * input regardless of the pool.
 */
std::uint32_t
chunkedSplitRange(std::vector<PointIdx> &order,
                  const data::PointCloud &cloud, std::uint32_t begin,
                  std::uint32_t end, int dim, float split_value,
                  core::ThreadPool *pool, core::Arena *arena)
{
    const std::uint32_t size = end - begin;
    const std::uint32_t num_chunks =
        (size + kSplitGrain - 1) / kSplitGrain;

    // Staging: chunk mid/offset tables and the merge scratch come
    // from the caller's arena when it has one (warm rebuilds then
    // never touch the heap); the heap vectors are the cold fallback.
    // Every slot is written before it is read, so the spans stay
    // uninitialized.
    std::vector<std::uint32_t> heap_u32;
    std::vector<PointIdx> heap_merged;
    std::uint32_t *mids;
    std::uint32_t *left_at;
    std::uint32_t *right_at;
    PointIdx *merged;
    if (arena != nullptr) {
        mids = arena->allocSpan<std::uint32_t>(num_chunks).data();
        left_at = arena->allocSpan<std::uint32_t>(num_chunks).data();
        right_at = arena->allocSpan<std::uint32_t>(num_chunks).data();
        merged = arena->allocSpan<PointIdx>(size).data();
    } else {
        heap_u32.resize(3 * static_cast<std::size_t>(num_chunks));
        heap_merged.resize(size);
        mids = heap_u32.data();
        left_at = heap_u32.data() + num_chunks;
        right_at = heap_u32.data() + 2 * static_cast<std::size_t>(num_chunks);
        merged = heap_merged.data();
    }

    // Phase 1: partition every chunk in place.
    core::parallelFor(
        pool, begin, end, kSplitGrain,
        [&](std::size_t cb, std::size_t ce) {
            auto mid = std::partition(
                order.begin() + cb, order.begin() + ce,
                [&](PointIdx idx) {
                    return cloud[idx][dim] < split_value;
                });
            mids[(cb - begin) / kSplitGrain] = static_cast<std::uint32_t>(
                mid - order.begin());
        });

    // Exclusive prefix sums of per-chunk left/right counts give each
    // chunk its disjoint destination in the merged arrangement.
    std::uint32_t total_left = 0;
    for (std::uint32_t c = 0; c < num_chunks; ++c) {
        left_at[c] = total_left;
        total_left += mids[c] - (begin + c * kSplitGrain);
    }
    std::uint32_t right_cursor = total_left;
    for (std::uint32_t c = 0; c < num_chunks; ++c) {
        right_at[c] = right_cursor;
        const std::uint32_t chunk_end =
            std::min(end, begin + (c + 1) * kSplitGrain);
        right_cursor += chunk_end - mids[c];
    }

    // Phase 2: scatter chunks into a scratch copy of the slice, then
    // copy back. Each chunk owns disjoint destination ranges.
    core::parallelFor(
        pool, 0, num_chunks, 1, [&](std::size_t cb, std::size_t ce) {
            for (std::size_t c = cb; c < ce; ++c) {
                const std::uint32_t chunk_begin =
                    begin + static_cast<std::uint32_t>(c) * kSplitGrain;
                const std::uint32_t chunk_end = std::min(
                    end,
                    begin + (static_cast<std::uint32_t>(c) + 1) *
                                kSplitGrain);
                std::copy(order.begin() + chunk_begin,
                          order.begin() + mids[c],
                          merged + left_at[c]);
                std::copy(order.begin() + mids[c],
                          order.begin() + chunk_end,
                          merged + right_at[c]);
            }
        });
    core::parallelFor(pool, 0, size, kSplitGrain,
                      [&](std::size_t cb, std::size_t ce) {
                          std::copy(merged + cb, merged + ce,
                                    order.begin() + begin + cb);
                      });
    return begin + total_left;
}

} // namespace

std::uint32_t
splitRange(std::vector<PointIdx> &order, const data::PointCloud &cloud,
           std::uint32_t begin, std::uint32_t end, int dim,
           float split_value, core::ThreadPool *pool, core::Arena *arena)
{
    if (end - begin >= kSplitParallelCutoff)
        return chunkedSplitRange(order, cloud, begin, end, dim,
                                 split_value, pool, arena);
    auto first = order.begin() + begin;
    auto last = order.begin() + end;
    auto mid = std::partition(first, last, [&](PointIdx idx) {
        return cloud[idx][dim] < split_value;
    });
    return static_cast<std::uint32_t>(mid - order.begin());
}

std::uint32_t
splitRange(BlockTree &tree, const data::PointCloud &cloud,
           std::uint32_t begin, std::uint32_t end, int dim,
           float split_value, core::ThreadPool *pool, core::Arena *arena)
{
    return splitRange(tree.order(), cloud, begin, end, dim, split_value,
                      pool, arena);
}

void
medianSplit(std::vector<PointIdx> &order, const data::PointCloud &cloud,
            std::uint32_t begin, std::uint32_t end, int dim,
            core::ThreadPool *pool, core::Arena *arena)
{
    fc_assert(end - begin >= 2, "median split needs >= 2 points");
    const std::uint32_t target = begin + (end - begin) / 2;
    if (end - begin < kSplitParallelCutoff) {
        std::nth_element(order.begin() + begin, order.begin() + target,
                         order.begin() + end,
                         [&](PointIdx a, PointIdx b) {
                             return cloud[a][dim] < cloud[b][dim];
                         });
        return;
    }

    // Deterministic quickselect: narrow [lo, hi) around the fixed
    // median position with extrema-midpoint pivots and parallel
    // partitions. Every pivot is a pure function of the slice
    // contents, so the arrangement is thread-count independent.
    std::uint32_t lo = begin, hi = end;
    while (hi - lo > 1) {
        const auto [minv, maxv] =
            rangeExtrema(order, cloud, lo, hi, dim, pool, arena);
        if (!(minv < maxv))
            break; // Ties on this axis — or an all-NaN interval,
                   // whose inverted extrema would never converge.
        // Halve-then-add: minv + (maxv - minv) * 0.5f overflows to
        // inf when the range exceeds FLT_MAX, and an inf pivot sends
        // every element one way forever.
        float pivot = minv * 0.5f + maxv * 0.5f;
        // Float midpoints of adjacent values can round back onto the
        // minimum, and infinite extrema yield inf/NaN midpoints; fall
        // back to the maximum so both sides stay non-empty and the
        // interval strictly shrinks.
        if (!(pivot > minv && pivot <= maxv))
            pivot = maxv;
        const std::uint32_t mid =
            splitRange(order, cloud, lo, hi, dim, pivot, pool, arena);
        if (target < mid)
            hi = mid;
        else
            lo = mid;
    }
}

std::pair<float, float>
rangeExtrema(const std::vector<PointIdx> &order,
             const data::PointCloud &cloud, std::uint32_t begin,
             std::uint32_t end, int dim, core::ThreadPool *pool,
             core::Arena *arena)
{
    fc_assert(begin < end, "extrema over empty range");
    const auto scan = [&](std::uint32_t b, std::uint32_t e) {
        float lo = std::numeric_limits<float>::infinity();
        float hi = -std::numeric_limits<float>::infinity();
        for (std::uint32_t pos = b; pos < e; ++pos) {
            const float v = cloud[order[pos]][dim];
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        return std::pair<float, float>{lo, hi};
    };
    if (pool == nullptr || end - begin < kSplitParallelCutoff)
        return scan(begin, end);
    // Min/max folds are exact whatever the chunking, so (unlike the
    // splits) this may take the serial path whenever no pool exists.
    return core::parallelReduce(
        pool, begin, end, kSplitGrain,
        std::pair<float, float>{std::numeric_limits<float>::infinity(),
                                -std::numeric_limits<float>::infinity()},
        [&](std::size_t cb, std::size_t ce) {
            return scan(static_cast<std::uint32_t>(cb),
                        static_cast<std::uint32_t>(ce));
        },
        [](std::pair<float, float> &acc,
           std::pair<float, float> &&chunk) {
            acc.first = std::min(acc.first, chunk.first);
            acc.second = std::max(acc.second, chunk.second);
        },
        arena);
}

} // namespace fc::part::detail
