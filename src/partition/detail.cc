#include "partition/detail.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace fc::part::detail {

void
computeBounds(BlockTree &tree, const data::PointCloud &cloud)
{
    // Leaves first (any order), then internal nodes children-before-
    // parent. Nodes are appended parent-before-child by all builders,
    // so a reverse sweep sees children first.
    for (std::size_t i = tree.numNodes(); i-- > 0;) {
        BlockNode &n = tree.node(static_cast<NodeIdx>(i));
        n.bounds = Aabb{};
        if (n.isLeaf()) {
            for (std::uint32_t pos = n.begin; pos < n.end; ++pos)
                n.bounds.extend(cloud[tree.order()[pos]]);
        } else {
            n.bounds.extend(tree.node(n.left).bounds);
            n.bounds.extend(tree.node(n.right).bounds);
        }
    }
}

std::uint32_t
splitRange(BlockTree &tree, const data::PointCloud &cloud,
           std::uint32_t begin, std::uint32_t end, int dim,
           float split_value)
{
    auto first = tree.order().begin() + begin;
    auto last = tree.order().begin() + end;
    auto mid = std::partition(first, last, [&](PointIdx idx) {
        return cloud[idx][dim] < split_value;
    });
    return static_cast<std::uint32_t>(mid - tree.order().begin());
}

std::pair<float, float>
rangeExtrema(const BlockTree &tree, const data::PointCloud &cloud,
             std::uint32_t begin, std::uint32_t end, int dim)
{
    fc_assert(begin < end, "extrema over empty range");
    float lo = std::numeric_limits<float>::infinity();
    float hi = -std::numeric_limits<float>::infinity();
    for (std::uint32_t pos = begin; pos < end; ++pos) {
        const float v = cloud[tree.order()[pos]][dim];
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    return {lo, hi};
}

} // namespace fc::part::detail
